#!/usr/bin/env python3
"""Compare a fresh bench JSON against a checked-in baseline.

The CI perf-regression gate: walks both JSON documents in parallel and
checks every *gated* numeric leaf against the baseline with a relative
tolerance (default 25%):

  - keys ending in ``_per_sec`` and keys starting with ``speedup``
    are throughput metrics - FAIL when fresh < baseline * (1 - tol);
  - keys ending in ``_mb`` or ``_bytes`` (``peak_rss_mb``, the arena and
    job-store introspection counters) are footprint metrics - FAIL when
    fresh > max(baseline * (1 + tol), baseline + abs_slack);
  - keys ending in ``_latency_us`` (the streaming service's ingest
    latencies) are latency metrics - gated like footprints (lower is
    better) with their own absolute slack (default 100 us), since a
    near-zero latency baseline must not become a zero-budget gate;
  - every other leaf (wall times, counts, labels) is informational.

The absolute-slack floor on footprint metrics exists for zero (or tiny)
baselines: a relative tolerance alone turns ``store_cold_bytes: 0`` into
a zero-budget gate where the first byte ever spent fails CI.  The floor
grants every footprint metric a small absolute allowance (default 1 MiB
for ``_bytes``, 1 MB for ``_mb`` - override with --abs-slack-bytes /
--abs-slack-mb) on top of the relative band, which is negligible against
real footprints but keeps zero baselines honest instead of impossible.

A gated metric present in the baseline but missing from the fresh run is
a failure too (a silently dropped phase must not pass the gate).

Refreshing baselines: run the bench on the reference runner class (the
CI runner - numbers from other machines are not comparable) and commit
the JSON, e.g.
  ./build/bench_scale --quick --json bench/baselines/BENCH_scale.json

Usage:
  compare_bench.py --baseline bench/baselines/BENCH_scale.json \
                   --fresh BENCH_scale.json [--tolerance 0.25] \
                   [--abs-slack-bytes N] [--abs-slack-mb X]

Exit codes: 0 ok, 1 regression, 2 bad invocation/structure.
"""

import argparse
import json
import sys


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def gate_kind(key):
    """'higher', 'lower', or None (not gated)."""
    if key.endswith("_per_sec") or key.startswith("speedup"):
        return "higher"
    if key.endswith("_mb") or key.endswith("_bytes") \
            or key.endswith("_latency_us"):
        return "lower"
    return None


def abs_slack(key, args):
    """The absolute allowance of a lower-is-better metric."""
    if key.endswith("_mb"):
        return args.abs_slack_mb
    if key.endswith("_latency_us"):
        return args.abs_slack_latency_us
    return args.abs_slack_bytes


def walk(baseline, fresh, path, out):
    """Collect (path, key, kind, base, fresh_or_None) per gated leaf."""
    if isinstance(baseline, dict):
        for key, base_value in baseline.items():
            here = f"{path}.{key}" if path else key
            fresh_value = fresh.get(key) if isinstance(fresh, dict) else None
            kind = gate_kind(key)
            if is_number(base_value) and kind:
                out.append((here, key, kind, base_value,
                            fresh_value if is_number(fresh_value) else None))
            elif isinstance(base_value, (dict, list)):
                walk(base_value, fresh_value, here, out)
    elif isinstance(baseline, list):
        for i, base_value in enumerate(baseline):
            fresh_value = (fresh[i] if isinstance(fresh, list)
                           and i < len(fresh) else None)
            walk(base_value, fresh_value, f"{path}[{i}]", out)


def severity(kind, base, new):
    """How far past the bar a failed metric is: the regression factor
    (>1 = worse), direction-normalized so throughput drops and footprint
    growth sort on one scale.  Zero denominators (a throughput metric
    collapsing to 0, or footprint growth over a 0 baseline) rank ahead
    of every finite factor without printing inf."""
    if kind == "higher":
        return base / new if new else float("1e308")
    return new / base if base else float("1e308")


def print_failure_table(rows):
    """The triage view on failure: every regressed metric in one table,
    worst offender first, so a 40-leaf run with three regressions leads
    with the three instead of burying them in the scrolled-past log."""
    ranked = sorted(rows, key=lambda r: severity(r[1], r[2], r[3]),
                    reverse=True)
    width = max(len(r[0]) for r in ranked)
    print("\nregressions, worst first (x = fresh/baseline):")
    print(f"  {'metric':<{width}}  {'x':>8}  {'baseline':>14}  "
          f"{'fresh':>14}  better")
    for path, kind, base, new in ranked:
        ratio = f"{new / base:.3f}" if base else "n/a"
        print(f"  {path:<{width}}  {ratio:>8}  {base:>14g}  {new:>14g}  "
              f"{kind}")


def main():
    parser = argparse.ArgumentParser(
        description="bench JSON perf-regression gate")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    parser.add_argument("--abs-slack-bytes", type=float, default=1048576,
                        help="absolute allowance for *_bytes footprint "
                             "metrics (default 1 MiB; keeps zero baselines "
                             "from gating at zero budget)")
    parser.add_argument("--abs-slack-mb", type=float, default=1.0,
                        help="absolute allowance for *_mb footprint "
                             "metrics (default 1.0 MB)")
    parser.add_argument("--abs-slack-latency-us", type=float, default=100.0,
                        help="absolute allowance for *_latency_us metrics "
                             "(default 100 us)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    gated = []
    walk(baseline, fresh, "", gated)
    if not gated:
        print("error: baseline contains no gated metrics", file=sys.stderr)
        return 2

    failures = 0
    failed_rows = []
    for path, key, kind, base, new in gated:
        if new is None:
            print(f"FAIL {path}: missing from fresh run (baseline {base:g})")
            failures += 1
            continue
        if kind == "higher":
            ok = new >= base * (1.0 - args.tolerance)
        else:
            slack = abs_slack(key, args)
            ok = new <= max(base * (1.0 + args.tolerance), base + slack)
        verdict = "ok" if ok else "REGRESSION"
        if base:
            detail = f"x{new / base:.3f}"
        else:
            # A ratio against a zero baseline is meaningless (inf/nan);
            # report the absolute change instead.
            detail = f"{new - base:+g} vs zero baseline"
        print(f"{verdict:>10}  {path}: baseline {base:g} -> fresh {new:g} "
              f"({detail}, {kind} is better)")
        if not ok:
            failures += 1
            failed_rows.append((path, kind, base, new))

    if failures:
        if failed_rows:
            print_failure_table(failed_rows)
        print(f"\n{failures} gated metric(s) regressed beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print(f"\nall {len(gated)} gated metrics within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
