// E-EXT — the paper's deferred directions, quantified:
//
//  1. Moldable vs malleable (§2.2): "malleability is much more easily
//     usable from the scheduling point of view" — compare the MRT
//     moldable schedule against EQUI / max-speedup malleable execution on
//     identical instances (off-line and on-line), plus the reallocation-
//     cost ablation.
//  2. Clairvoyant vs non-clairvoyant (§4.2): the price of not knowing
//     execution times under the doubling-budget strategy, and the budget
//     ablation.
#include <iostream>

#include "core/report.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/admission.h"
#include "pt/allotment.h"
#include "pt/backfill.h"
#include "pt/batch.h"
#include "pt/malleable.h"
#include "pt/mrt.h"
#include "pt/nonclairvoyant.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

JobSet instance(std::uint64_t seed, Time window) {
  Rng rng(seed);
  MoldableWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 16;
  spec.sequential_fraction = 0.2;
  spec.arrival_window = window;
  return make_moldable_workload(spec, rng);
}

double mean_flow_of(const JobSet& jobs,
                    const std::map<JobId, Time>& completion) {
  double flow = 0.0;
  for (const Job& j : jobs) flow += completion.at(j.id) - j.release;
  return flow / static_cast<double>(jobs.size());
}

void moldable_vs_malleable() {
  const int m = 32;
  std::cout << "=== E-EXT/1: moldable vs malleable (m = " << m
            << ", 80 jobs, 3 seeds averaged) ===\n\n";
  for (const bool online : {false, true}) {
    TextTable table({"scheduler", "Cmax ratio", "mean flow"});
    double mrt_c = 0, mrt_f = 0, eq_c = 0, eq_f = 0, ms_c = 0, ms_f = 0,
           pen_c = 0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
      const JobSet jobs = instance(300 + r, online ? 30.0 : 0.0);
      const Time lb = cmax_lower_bound(jobs, m);

      const Schedule mold = online
                                ? online_moldable_schedule(jobs, m).schedule
                                : mrt_schedule(jobs, m).schedule;
      const Metrics mm = compute_metrics(jobs, mold);
      mrt_c += mm.cmax / lb / reps;
      mrt_f += mm.mean_flow / reps;

      MalleableOptions eq;
      const MalleableSchedule me = malleable_schedule(jobs, m, eq);
      eq_c += me.makespan / lb / reps;
      eq_f += mean_flow_of(jobs, me.completion) / reps;

      MalleableOptions mx;
      mx.policy = MalleablePolicy::kMaxSpeedup;
      const MalleableSchedule mg = malleable_schedule(jobs, m, mx);
      ms_c += mg.makespan / lb / reps;
      ms_f += mean_flow_of(jobs, mg.completion) / reps;

      MalleableOptions paid;
      paid.realloc_penalty = 0.5;
      pen_c += malleable_schedule(jobs, m, paid).makespan / lb / reps;
    }
    std::cout << (online ? "--- on-line (arrival window 30) ---\n"
                         : "--- off-line (all released at 0) ---\n");
    table.add_row({online ? "MRT batches (moldable)" : "MRT (moldable)",
                   fmt(mrt_c, 3), fmt(mrt_f, 2)});
    table.add_row({"malleable EQUI", fmt(eq_c, 3), fmt(eq_f, 2)});
    table.add_row({"malleable max-speedup", fmt(ms_c, 3), fmt(ms_f, 2)});
    table.add_row(
        {"malleable EQUI, realloc cost 0.5", fmt(pen_c, 3), "-"});
    std::cout << table.to_string() << "\n";
  }
  std::cout << "the §2.2 claim quantified: dynamic reallocation removes "
               "the allotment-guessing problem entirely (no λ search, no "
               "batches) and matches or beats the moldable guarantee — "
               "when the runtime supports it and reallocation is cheap.\n\n";
}

void clairvoyance_premium() {
  const int m = 32;
  std::cout << "=== E-EXT/2: the price of non-clairvoyance (§4.2) ===\n\n";
  TextTable table({"scheduler", "Cmax ratio", "kills", "wasted / useful"});
  const int reps = 3;

  double cl_ratio = 0;
  for (int r = 0; r < reps; ++r) {
    const JobSet jobs = instance(500 + r, 30.0);
    const Schedule s = online_moldable_schedule(jobs, m).schedule;
    cl_ratio += s.makespan() / cmax_lower_bound(jobs, m) / reps;
  }
  table.add_row({"clairvoyant (MRT batches)", fmt(cl_ratio, 3), "0", "0"});

  for (const double b0 : {0.25, 1.0, 4.0}) {
    double ratio = 0, kills = 0, waste = 0;
    for (int r = 0; r < reps; ++r) {
      const JobSet jobs = instance(500 + r, 30.0);
      const JobSet rigid = fix_canonical(jobs, cmax_lower_bound(jobs, m), m);
      const NonClairvoyantResult nc =
          nonclairvoyant_schedule(rigid, m, {b0, 2.0});
      double useful = 0.0;
      for (const Job& j : rigid) useful += j.min_work();
      ratio += nc.makespan / cmax_lower_bound(jobs, m) / reps;
      kills += static_cast<double>(nc.kills) / reps;
      waste += nc.wasted_work / useful / reps;
    }
    table.add_row({"non-clairvoyant, b0=" + fmt(b0), fmt(ratio, 3),
                   fmt(kills, 1), fmt(waste, 3)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "doubling budgets bound the damage: wasted work stays below "
               "twice the useful work (the geometric-series bound) and the "
               "makespan within a small factor of the clairvoyant schedule "
               "— but the clairvoyant §4.2 algorithm is strictly better, "
               "which is why the paper assumes runtime estimates are "
               "available.\n";
}

void rejection_tradeoff() {
  // §3's rejection criterion: with hard due dates, compare scheduling
  // everything (and paying tardiness) against admission control (zero
  // tardiness, some jobs turned away) as the deadline tightness varies.
  const int m = 32;
  std::cout << "=== E-EXT/3: rejection vs tardiness (§3) ===\n\n";
  TextTable table({"due-date slack", "late jobs (no rejection)",
                   "sum tardiness", "rejected jobs", "rejected weight %"});
  for (const double slack : {1.5, 3.0, 6.0, 12.0}) {
    double late = 0, tard = 0, rejected = 0, rej_weight = 0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
      Rng rng(static_cast<std::uint64_t>(700 + r));
      RigidWorkloadSpec spec;
      spec.count = 120;
      spec.max_procs = 8;
      spec.arrival_window = 40.0;
      JobSet jobs = make_rigid_workload(spec, rng);
      double total_weight = 0.0;
      for (Job& j : jobs) {
        j.due = j.release + j.time(j.min_procs) * slack;
        total_weight += j.weight;
      }
      const Metrics all =
          compute_metrics(jobs, conservative_backfill(jobs, m));
      late += static_cast<double>(all.late_count) / reps;
      tard += all.sum_tardiness / reps;
      const AdmissionResult adm = schedule_with_admission(jobs, m);
      rejected += static_cast<double>(adm.rejected.size()) / reps;
      rej_weight += 100.0 * adm.rejected_weight / total_weight / reps;
    }
    table.add_row({fmt(slack), fmt(late, 1), fmt(tard, 1), fmt(rejected, 1),
                   fmt(rej_weight, 1)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "tight deadlines force the choice the paper lists under "
               "'other criteria': either many late jobs or explicit "
               "rejection with a service guarantee for the rest.\n";
}

}  // namespace

int main() {
  moldable_vs_malleable();
  clairvoyance_premium();
  rejection_tradeoff();
  return 0;
}
