// E-DLT — Divisible Load distribution policies (§2.1, §5.2).
//
// Compares, on a homogeneous bus and on the heterogeneous CIMENT star:
//   * single-round closed form,
//   * multi-round (uniform and geometric chunking) for several round
//     counts,
//   * dynamic work stealing (fixed / guided / factoring chunks),
// against the steady-state bound volume/throughput.  The paper's claims to
// check: single-round is optimal on latency-free platforms (makespan ≈
// steady-state bound for large volumes); with per-message latency,
// multi-round / dynamic distribution wins at small chunk counts; work
// stealing pays latency per chunk but adapts without any rate knowledge.
#include <iostream>
#include <vector>

#include "core/report.h"
#include "dlt/dlt.h"
#include "dlt/tree.h"
#include "platform/platform.h"

namespace {

using namespace lgs;

void run_platform(const std::string& name, const DltPlatform& p,
                  double volume) {
  const SteadyState ss = steady_state(p);
  const double bound = volume / ss.throughput;
  std::cout << "--- " << name << ": volume " << fmt(volume)
            << ", steady-state bound " << fmt(bound) << " ---\n";

  TextTable table({"strategy", "rounds/chunks", "makespan",
                   "vs steady-state", "largest share"});
  const auto emit = [&](const DltPlan& plan) {
    double biggest = 0.0;
    for (double a : plan.alpha) biggest = std::max(biggest, a);
    table.add_row({plan.strategy, fmt(plan.rounds), fmt(plan.makespan, 2),
                   fmt(plan.makespan / bound, 3), fmt(biggest, 2)});
  };

  emit(single_round_star(p, volume));
  for (int rounds : {2, 5, 10}) emit(multi_round(p, volume, rounds, 1.0));
  for (int rounds : {5, 10}) emit(multi_round(p, volume, rounds, 2.0));
  const double chunk = volume / 200.0;
  emit(work_stealing(p, volume, chunk, ChunkPolicy::kFixed));
  emit(work_stealing(p, volume, chunk, ChunkPolicy::kGuided));
  emit(work_stealing(p, volume, chunk, ChunkPolicy::kFactoring));
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "=== E-DLT: divisible-load distribution policies ===\n\n";

  // Latency-free bus: single round should be essentially optimal.
  run_platform("homogeneous bus, no latency",
               DltPlatform::homogeneous_bus(16, 0.02, 1.0, 0.0), 1000.0);

  // Bus with per-message latency: multi-round amortizes the start-up.
  run_platform("homogeneous bus, 0.2s latency",
               DltPlatform::homogeneous_bus(16, 0.02, 1.0, 0.2), 1000.0);

  // The CIMENT star (heterogeneous clusters as aggregate workers).
  run_platform("CIMENT star (Fig. 3)",
               DltPlatform::from_grid(ciment_grid()), 100000.0);

  // Gather-back ablation: results returned as a mirror of distribution.
  std::cout << "--- gather-back (mirror) ablation, bus 16x ---\n";
  TextTable table({"gather ratio", "makespan"});
  const DltPlatform p = DltPlatform::homogeneous_bus(16, 0.02, 1.0);
  for (double ratio : {0.0, 0.1, 0.5, 1.0})
    table.add_row(
        {fmt(ratio), fmt(single_round_bus(p, 1000.0, ratio).makespan, 2)});
  std::cout << table.to_string() << "\n";

  // Tree-network distribution (reference [4]): the CIMENT grid as a
  // two-level tree (WAN -> front-ends -> node aggregates).
  std::cout << "--- tree distribution on CIMENT (WAN -> front-ends -> "
               "nodes), volume 100000 ---\n";
  const DltTreePlan tp = tree_distribute(ciment_tree(), 100000.0);
  TextTable tree_table({"node", "load share (%)"});
  for (std::size_t i = 0; i < tp.node.size(); ++i)
    tree_table.add_row({tp.node[i], fmt(100.0 * tp.alpha[i] / 100000.0, 2)});
  std::cout << tree_table.to_string();
  std::cout << "tree makespan " << fmt(tp.makespan, 2)
            << " (equivalent rate " << fmt(1.0 / tp.equivalent.comp, 1)
            << " units/s) vs flat star "
            << fmt(single_round_star(DltPlatform::from_grid(ciment_grid()),
                                     100000.0)
                       .makespan,
                   2)
            << " — the WAN hop costs the difference.\n";
  return 0;
}
