// E-BE / E-DEC — the two multi-cluster policies of §5.2 on the CIMENT
// platform.
//
// Centralized: multi-parametric grid jobs run best-effort in the holes of
// the local schedules; killed on local demand and resubmitted.  Reported:
// utilization lift, kill/resubmission counts, wasted work, and the
// non-disturbance check (local records identical with and without grid
// jobs).  Ablation ✧6: the kill-victim selection policy.
//
// Decentralized: all jobs go through their home cluster, clusters exchange
// work.  Reported per policy: global utilization, migrations, mean flow,
// and per-community fairness (mean slowdown).
#include <iostream>

#include "core/report.h"
#include "core/rng.h"
#include "grid/besteffort.h"
#include "grid/exchange.h"
#include "grid/global.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

std::vector<JobSet> community_locals(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> locals(4);
  locals[0] = make_community_workload(Community::kNumericalPhysics, 24, rng,
                                      0, 0.03, 60.0);
  locals[1] = make_community_workload(Community::kAstrophysics, 24, rng, 100,
                                      0.03, 60.0);
  locals[2] = make_community_workload(Community::kComputerScience, 60, rng,
                                      200, 0.03, 60.0);
  locals[3] = make_community_workload(Community::kMedicalResearch, 30, rng,
                                      300, 0.03, 60.0);
  return locals;
}

void centralized() {
  std::cout << "=== E-BE: centralized best-effort grid on CIMENT ===\n\n";
  const LightGrid grid = ciment_grid();
  const std::vector<ParametricBag> bags = {
      {"medical-campaign", 50000, 0.08, 2, 1.0}};

  TextTable table({"kill policy", "local unaffected", "grid done",
                   "kills", "wasted (proc-s)", "util local", "util total"});
  for (auto policy : {OnlineCluster::KillPolicy::kYoungestFirst,
                      OnlineCluster::KillPolicy::kOldestFirst,
                      OnlineCluster::KillPolicy::kLongestRemaining}) {
    OnlineCluster::Options opts;
    opts.kill_policy = policy;
    const CentralizedResult res =
        run_centralized(grid, community_locals(42), bags, opts);
    long kills = 0;
    double wasted = 0.0, ul = 0.0, ut = 0.0;
    for (const ClusterOutcome& c : res.clusters) {
      kills += c.be.killed;
      wasted += c.be.wasted_time;
      ul += c.utilization_local / res.clusters.size();
      ut += c.utilization_total / res.clusters.size();
    }
    const char* name =
        policy == OnlineCluster::KillPolicy::kYoungestFirst ? "youngest-first"
        : policy == OnlineCluster::KillPolicy::kOldestFirst ? "oldest-first"
                                                            : "longest-left";
    table.add_row({name, res.local_unaffected ? "YES" : "NO(!)",
                   fmt(res.grid_runs_completed), fmt(kills), fmt(wasted, 1),
                   fmt(ul, 3), fmt(ut, 3)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "paper property: local users keep the exact same schedule "
               "('local unaffected' must be YES on every row)\n\n";
}

/// Workload for the exchange study: the big clusters run their usual load
/// while the smallest cluster (bi-Athlon-B, 48 procs) drowns under a burst
/// of computer-science jobs — the situation exchange policies exist for.
std::vector<JobSet> lopsided_locals(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> locals(4);
  locals[0] = make_community_workload(Community::kNumericalPhysics, 30, rng,
                                      0, 0.03, 20.0);
  locals[1] = make_community_workload(Community::kAstrophysics, 30, rng, 100,
                                      0.03, 20.0);
  locals[2] = make_community_workload(Community::kMedicalResearch, 30, rng,
                                      200, 0.03, 20.0);
  locals[3] = make_community_workload(Community::kComputerScience, 600, rng,
                                      300, 1.0, 10.0);
  return locals;
}

void decentralized() {
  std::cout << "=== E-DEC: decentralized load exchange on CIMENT ===\n\n";
  const LightGrid grid = ciment_grid();

  TextTable table({"policy", "migrations", "mean flow", "global util",
                   "worst community slowdown"});
  for (const ExchangeOptions opts :
       {ExchangeOptions{ExchangePolicy::kIsolated, 0.5, 0.05},
        ExchangeOptions{ExchangePolicy::kThreshold, 0.5, 0.05},
        ExchangeOptions{ExchangePolicy::kThreshold, 0.1, 0.05},
        ExchangeOptions{ExchangePolicy::kEconomic, 0.5, 0.05}}) {
    const ExchangeResult res =
        run_exchange(grid, lopsided_locals(43), opts);
    double worst = 0.0;
    for (const CommunityOutcome& c : res.communities)
      worst = std::max(worst, c.mean_slowdown);
    std::string label = to_string(opts.policy);
    if (opts.policy == ExchangePolicy::kThreshold)
      label += " (theta=" + fmt(opts.wait_threshold) + ")";
    table.add_row({label, fmt(res.migrations), fmt(res.mean_flow, 3),
                   fmt(res.global_utilization, 3), fmt(worst, 2)});
  }
  // The §5.2 "big global optimization" reference: an omniscient ECT
  // scheduler placing every job across all clusters at once.
  {
    JobSet all;
    for (const JobSet& w : lopsided_locals(43)) {
      JobSet copy = w;
      append_workload(all, std::move(copy));
    }
    const GlobalSchedule gs = global_ect_schedule(grid, all);
    double flow = 0.0;
    for (const Job& j : all) flow += gs.find(j.id)->end() - j.release;
    table.add_row({"global ECT (omniscient)", "-",
                   fmt(flow / all.size(), 3), "-", "-"});
  }
  std::cout << table.to_string() << "\n";

  std::cout << "per-community fairness under the economic policy:\n";
  const ExchangeResult eco = run_exchange(
      grid, lopsided_locals(43), {ExchangePolicy::kEconomic, 5.0, 0.5});
  TextTable fair({"community", "jobs", "mean wait", "mean slowdown"});
  const char* names[] = {"numerical-physics", "astrophysics",
                         "medical-research", "computer-science"};
  for (const CommunityOutcome& c : eco.communities)
    fair.add_row({c.community < 4 ? names[c.community] : "?", fmt(c.jobs),
                  fmt(c.mean_wait, 3), fmt(c.mean_slowdown, 2)});
  std::cout << fair.to_string();
}

void volatility() {
  // §1's "versatility of the resources": nodes appear and disappear while
  // the best-effort grid runs.  Sweep the churn intensity on one cluster
  // and report the damage — best-effort jobs absorb most of it.
  std::cout << "=== E-VOL: node volatility under best-effort load ===\n\n";
  TextTable table({"capacity drops", "local preemptions",
                   "local wasted (proc-s)", "BE kills", "BE wasted",
                   "grid runs done"});
  for (const int churn : {0, 4, 12, 24}) {
    Rng rng(2000 + churn);
    Simulator sim;
    Cluster desc{0, "volatile", 32, 1, 1.0, Interconnect::kGigabitEthernet,
                 "Linux", 0};
    OnlineCluster cluster(sim, desc);
    CentralServer server({{"campaign", 4000, 0.2, 2, 1.0}});
    cluster.set_besteffort_source(server.make_source());
    for (int i = 0; i < 40; ++i) {
      cluster.submit_local(Job::rigid(static_cast<JobId>(i),
                                      static_cast<int>(rng.uniform_int(1, 8)),
                                      rng.uniform(1.0, 6.0),
                                      rng.uniform(0.0, 30.0)));
    }
    for (int c = 0; c < churn; ++c) {
      const Time down = rng.uniform(1.0, 40.0);
      const int cap = static_cast<int>(rng.uniform_int(10, 24));
      sim.at(down, [&cluster, cap] { cluster.set_capacity(cap); });
      sim.at(down + rng.uniform(0.5, 3.0),
             [&cluster] { cluster.set_capacity(32); });
    }
    sim.run();
    table.add_row({fmt(churn), fmt(cluster.volatility_stats().local_preemptions),
                   fmt(cluster.volatility_stats().local_wasted, 1),
                   fmt(cluster.besteffort_stats().killed),
                   fmt(cluster.besteffort_stats().wasted_time, 1),
                   fmt(server.completed())});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "best-effort runs are evicted first, shielding local jobs "
               "from most of the churn — the same mechanism that protects "
               "them from grid load protects them from node loss.\n";
}

}  // namespace

int main() {
  centralized();
  decentralized();
  volatility();
  return 0;
}
