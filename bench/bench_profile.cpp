// BENCH_profile — throughput of the availability-profile core.
//
// Pits the production flat-skyline lgs::Profile against the historical
// std::map-based delta representation (tests/reference_profile.h) on
// profiles with 10k–100k breakpoints: used_at lookups, fits checks,
// earliest_fit queries, and commit/release cycles.  Results are asserted
// identical between the two implementations while timing, and emitted as
// JSON (stdout, plus a file with --json PATH).
//
// Usage: bench_profile [--quick] [--json PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/profile.h"
#include "core/rng.h"
#include "reference_profile.h"

namespace {

using lgs::Profile;
using lgs::ReferenceProfile;
using lgs::Rng;
using lgs::Time;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Query {
  Time from;
  Time dur;
  int procs;
};

struct SizeResult {
  std::size_t breakpoints = 0;
  std::size_t queries = 0;
  double sky_used_at_s = 0, ref_used_at_s = 0;
  double sky_fits_s = 0, ref_fits_s = 0;
  double sky_earliest_s = 0, ref_earliest_s = 0;
  double sky_commit_s = 0, ref_commit_s = 0;

  double speedup_earliest() const { return ref_earliest_s / sky_earliest_s; }
};

struct Workload {
  int m = 64;
  Time window = 0;
};

/// Build both profiles with `blocks` committed allotments arranged in 8
/// phase-shifted sequential columns (total usage never exceeds m, every
/// block contributes two non-merging breakpoints).  Two of every 16 rows
/// are left empty: periodic full-machine gaps, so even machine-wide
/// queries find a berth after a bounded sweep.
Workload build(std::size_t blocks, Profile& sky, ReferenceProfile& ref) {
  Workload w;
  const int ncols = 8;
  const int procs_per_col = w.m / ncols;
  const Time slot = 10.0;
  const Time dur = 8.0;  // < slot: a gap per block keeps breakpoints apart
  sky.reserve(2 * blocks + 16);
  std::size_t placed = 0;
  for (std::size_t i = 0; placed < blocks; ++i) {
    const int col = static_cast<int>(i % ncols);
    const std::size_t row = i / ncols;
    if (row % 16 >= 14) continue;  // machine-wide gap rows
    const Time start = static_cast<double>(row) * slot + 1.2345 * col;
    sky.commit(start, dur, procs_per_col);
    ref.load_unchecked(start, dur, procs_per_col);
    w.window = start + dur;
    ++placed;
  }
  return w;
}

SizeResult run_size(std::size_t breakpoints, std::size_t nqueries,
                    std::uint64_t seed) {
  SizeResult res;
  res.queries = nqueries;

  Profile sky(64);
  ReferenceProfile ref(64);
  const Workload w = build(breakpoints / 2, sky, ref);
  res.breakpoints = sky.breakpoint_count();
  if (res.breakpoints != ref.breakpoints().size())
    throw std::logic_error("construction diverged");

  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(nqueries);
  for (std::size_t i = 0; i < nqueries; ++i) {
    // Mostly small requests that fit inside a column gap near `from`,
    // plus a tail of wider/longer ones that force longer sweeps.
    const bool hard = (i % 16) == 0;
    Query q;
    q.from = rng.uniform(0.0, w.window);
    // Hard queries need most of the machine for longer than a column gap:
    // only the periodic full-machine gap rows (width ~13) can host them.
    q.dur = hard ? rng.uniform(5.0, 12.0) : rng.uniform(0.1, 1.9);
    q.procs = hard ? static_cast<int>(rng.uniform_int(48, 64))
                   : static_cast<int>(rng.uniform_int(1, 8));
    queries.push_back(q);
  }

  long long sink = 0;  // divergence check doubling as a do-not-optimize sink

  auto t0 = std::chrono::steady_clock::now();
  for (const Query& q : queries) sink += sky.used_at(q.from);
  res.sky_used_at_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  for (const Query& q : queries) sink -= ref.used_at(q.from);
  res.ref_used_at_s = seconds_since(t0);
  if (sink != 0) throw std::logic_error("used_at diverged");

  t0 = std::chrono::steady_clock::now();
  for (const Query& q : queries) sink += sky.fits(q.from, q.dur, q.procs);
  res.sky_fits_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  for (const Query& q : queries) sink -= ref.fits(q.from, q.dur, q.procs);
  res.ref_fits_s = seconds_since(t0);
  if (sink != 0) throw std::logic_error("fits diverged");

  std::vector<Time> sky_at(queries.size()), ref_at(queries.size());
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries.size(); ++i)
    sky_at[i] = sky.earliest_fit(queries[i].from, queries[i].dur,
                                 queries[i].procs);
  res.sky_earliest_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries.size(); ++i)
    ref_at[i] = ref.earliest_fit(queries[i].from, queries[i].dur,
                                 queries[i].procs);
  res.ref_earliest_s = seconds_since(t0);
  if (sky_at != ref_at) throw std::logic_error("earliest_fit diverged");

  // Commit/release cycles at the found starts (1/4 of the query set so the
  // map reference stays within budget at 100k breakpoints).
  const std::size_t ncycles = queries.size() / 4;
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ncycles; ++i) {
    sky.commit(sky_at[i], queries[i].dur, queries[i].procs);
    sky.release(sky_at[i], queries[i].dur, queries[i].procs);
  }
  res.sky_commit_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ncycles; ++i) {
    ref.commit(ref_at[i], queries[i].dur, queries[i].procs);
    ref.release(ref_at[i], queries[i].dur, queries[i].procs);
  }
  res.ref_commit_s = seconds_since(t0);

  return res;
}

std::string to_json(const std::vector<SizeResult>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"profile\",\n  \"machines\": 64,\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    out << "    {\"breakpoints\": " << r.breakpoints
        << ", \"queries\": " << r.queries
        << ",\n     \"skyline\": {\"used_at_s\": " << r.sky_used_at_s
        << ", \"fits_s\": " << r.sky_fits_s
        << ", \"earliest_fit_s\": " << r.sky_earliest_s
        << ", \"commit_release_s\": " << r.sky_commit_s << "}"
        << ",\n     \"map_ref\": {\"used_at_s\": " << r.ref_used_at_s
        << ", \"fits_s\": " << r.ref_fits_s
        << ", \"earliest_fit_s\": " << r.ref_earliest_s
        << ", \"commit_release_s\": " << r.ref_commit_s << "}"
        << ",\n     \"speedup_earliest_fit\": " << r.speedup_earliest() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_profile [--quick] [--json PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{10000, 30000}
            : std::vector<std::size_t>{10000, 30000, 100000};
  const std::size_t nqueries = quick ? 500 : 2000;

  std::vector<SizeResult> results;
  for (std::size_t b : sizes) {
    results.push_back(run_size(b, nqueries, /*seed=*/42 + b));
    const SizeResult& r = results.back();
    std::cerr << "B=" << r.breakpoints << "  earliest_fit skyline "
              << r.sky_earliest_s << "s vs map " << r.ref_earliest_s
              << "s  (x" << r.speedup_earliest() << ")\n";
  }

  const std::string json = to_json(results);
  std::cout << json;
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << json;
    if (!f) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cerr << "wrote " << json_path << "\n";
  }

  // Non-zero exit when the headline speedup regresses below 10x on the
  // >=10k-breakpoint profiles (the acceptance bar), so CI catches it.
  for (const SizeResult& r : results)
    if (r.breakpoints >= 10000 && r.speedup_earliest() < 10.0) {
      std::cerr << "FAIL: earliest_fit speedup below 10x at B="
                << r.breakpoints << "\n";
      return 1;
    }
  return 0;
}
