// R-MRT / R-BATCH / R-SMART / R-BICRIT — the §4 results table.
//
// The paper quotes performance ratios for its four algorithmic building
// blocks.  This bench measures each algorithm's worst observed ratio
// against the corresponding lower bound over a randomized instance sweep
// and prints it next to the paper's guarantee.  Measured ratios must stay
// below the quoted guarantee (they are typically far below: guarantees are
// worst-case, the sweep is average-case).
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/report.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/batch.h"
#include "pt/bicriteria.h"
#include "pt/localsearch.h"
#include "pt/mrt.h"
#include "pt/smart.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

struct Sweep {
  double worst = 0.0;
  double mean = 0.0;
  int count = 0;

  void add(double ratio) {
    worst = std::max(worst, ratio);
    mean += ratio;
    ++count;
  }
  double avg() const { return count ? mean / count : 0.0; }
};

JobSet moldable_instance(int n, int m, std::uint64_t seed, Time window) {
  Rng rng(seed);
  MoldableWorkloadSpec spec;
  spec.count = n;
  spec.max_procs = std::max(2, m / 2);
  spec.sequential_fraction = 0.3;
  spec.arrival_window = window;
  return make_moldable_workload(spec, rng);
}

}  // namespace

int main() {
  const std::vector<int> machines = {16, 64, 128};
  const std::vector<int> sizes = {20, 80, 200};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};

  Sweep mrt, batch, smart_unweighted, smart_weighted, bicrit_cmax, bicrit_wc;

  for (int m : machines) {
    for (int n : sizes) {
      for (std::uint64_t seed : seeds) {
        // R-MRT: off-line moldable makespan (3/2 + ε).
        {
          const JobSet jobs = moldable_instance(n, m, seed, 0.0);
          const MrtResult r = mrt_schedule(jobs, m);
          mrt.add(r.schedule.makespan() / cmax_lower_bound(jobs, m));
        }
        // R-BATCH: on-line batches around MRT (3 + ε).
        {
          const JobSet jobs = moldable_instance(n, m, seed + 100, 50.0);
          const BatchResult r = online_moldable_schedule(jobs, m);
          batch.add(r.schedule.makespan() / cmax_lower_bound(jobs, m));
        }
        // R-SMART: rigid Σ wᵢCᵢ shelves (8 / 8.53).
        {
          Rng rng(seed + 200);
          RigidWorkloadSpec spec;
          spec.count = n;
          spec.max_procs = std::max(2, m / 2);
          const JobSet uw = make_rigid_workload(spec, rng);
          const Metrics mu = compute_metrics(uw, smart_schedule(uw, m));
          smart_unweighted.add(mu.sum_weighted /
                               sum_weighted_completion_lower_bound(uw, m));
          spec.w_min = 1.0;
          spec.w_max = 10.0;
          const JobSet w = make_rigid_workload(spec, rng);
          const Metrics mw = compute_metrics(w, smart_schedule(w, m));
          smart_weighted.add(mw.sum_weighted /
                             sum_weighted_completion_lower_bound(w, m));
        }
        // R-BICRIT: simultaneous Cmax and Σ wᵢCᵢ (4ρ each).
        {
          const JobSet jobs = moldable_instance(n, m, seed + 300, 20.0);
          const Schedule s = bicriteria_schedule(jobs, m).schedule;
          const Metrics metrics = compute_metrics(jobs, s);
          bicrit_cmax.add(metrics.cmax / cmax_lower_bound(jobs, m));
          bicrit_wc.add(metrics.sum_weighted /
                        sum_weighted_completion_lower_bound(jobs, m));
        }
      }
    }
  }

  std::cout << "=== §4 guarantees: paper vs measured (ratios to lower "
               "bounds, "
            << machines.size() * sizes.size() * seeds.size()
            << " instances per row) ===\n\n";
  TextTable table(
      {"result", "algorithm", "criterion", "paper ratio", "measured worst",
       "measured mean"});
  table.add_row({"R-MRT", "MRT two-shelf (off-line moldable)", "Cmax",
                 "1.5+eps", fmt(mrt.worst), fmt(mrt.avg())});
  table.add_row({"R-BATCH", "batch doubling around MRT (on-line)", "Cmax",
                 "3+eps", fmt(batch.worst), fmt(batch.avg())});
  table.add_row({"R-SMART", "SMART power-of-2 shelves", "Sum Ci", "8",
                 fmt(smart_unweighted.worst), fmt(smart_unweighted.avg())});
  table.add_row({"R-SMART", "SMART power-of-2 shelves", "Sum wiCi", "8.53",
                 fmt(smart_weighted.worst), fmt(smart_weighted.avg())});
  table.add_row({"R-BICRIT", "bi-criteria doubling batches", "Cmax",
                 "4*rho", fmt(bicrit_cmax.worst), fmt(bicrit_cmax.avg())});
  table.add_row({"R-BICRIT", "bi-criteria doubling batches", "Sum wiCi",
                 "4*rho", fmt(bicrit_wc.worst), fmt(bicrit_wc.avg())});
  std::cout << table.to_string() << "\n";

  // Hard check: measured worst must respect the quoted bands (vs LB <= OPT).
  int failures = 0;
  const auto check = [&](const char* what, double measured, double band) {
    if (measured > band) {
      std::cout << "VIOLATION: " << what << " measured " << measured
                << " > guarantee " << band << "\n";
      ++failures;
    }
  };
  // The ratios are measured against lower bounds, not OPT; on sparse
  // instances (n close to m) LB = max(area, pmax) sits visibly below OPT,
  // so MRT's certified 1.5+eps (vs OPT) shows up as up to ~1.75 vs LB.
  check("MRT", mrt.worst, 1.75);
  check("batch", batch.worst, 3.1);
  check("SMART unweighted", smart_unweighted.worst, 8.0);
  check("SMART weighted", smart_weighted.worst, 8.53);
  std::cout << (failures == 0 ? "all measured ratios within the paper's bands\n"
                              : "RATIO VIOLATIONS PRESENT\n");

  // Sandwich OPT: the lower bound underestimates it, an annealed local
  // search over allotments overestimates it — so MRT's true distance to
  // OPT lies between ratio-to-LS and ratio-to-LB.
  {
    Sweep vs_ls;
    for (std::uint64_t seed : seeds) {
      const JobSet jobs = moldable_instance(60, 32, seed + 900, 0.0);
      const Time mrt_ms = mrt_schedule(jobs, 32).schedule.makespan();
      const Time ls_ms = local_search_moldable(jobs, 32, {2000, seed, 0.02})
                             .schedule.makespan();
      vs_ls.add(mrt_ms / ls_ms);
    }
    std::cout << "\nOPT sandwich (n=60, m=32): MRT / local-search-estimate "
              << "worst " << fmt(vs_ls.worst, 3) << ", mean "
              << fmt(vs_ls.avg(), 3)
              << " — MRT's real distance to OPT is at most this, well "
                 "inside 1.5+eps.\n";
  }
  return failures == 0 ? 0 : 1;
}
