// R-MRT / R-BATCH / R-SMART / R-BICRIT — the §4 results table.
//
// The paper quotes performance ratios for its four algorithmic building
// blocks.  This bench measures each algorithm's worst observed ratio
// against the corresponding lower bound over a randomized instance sweep
// and prints it next to the paper's guarantee.  Measured ratios must stay
// below the quoted guarantee (they are typically far below: guarantees are
// worst-case, the sweep is average-case).
// The instance sweep itself runs on the experiment engine's thread pool
// (exp/sweep.h): each (machines, size, seed) cell measures its ratios
// independently into a pre-assigned slot, and the reduction into the
// accumulators below walks the slots in grid order — so the printed
// worst/mean figures are bit-identical to the historical serial loop at
// any thread count.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/report.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "exp/sweep.h"
#include "pt/batch.h"
#include "pt/bicriteria.h"
#include "pt/localsearch.h"
#include "pt/mrt.h"
#include "pt/smart.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

struct Sweep {
  double worst = 0.0;
  double mean = 0.0;
  int count = 0;

  void add(double ratio) {
    worst = std::max(worst, ratio);
    mean += ratio;
    ++count;
  }
  double avg() const { return count ? mean / count : 0.0; }
};

JobSet moldable_instance(int n, int m, std::uint64_t seed, Time window) {
  Rng rng(seed);
  MoldableWorkloadSpec spec;
  spec.count = n;
  spec.max_procs = std::max(2, m / 2);
  spec.sequential_fraction = 0.3;
  spec.arrival_window = window;
  return make_moldable_workload(spec, rng);
}

}  // namespace

/// Ratios measured by one (machines, size, seed) cell of the sweep.
struct CellRatios {
  double mrt = 0.0;
  double batch = 0.0;
  double smart_uw = 0.0;
  double smart_w = 0.0;
  double bicrit_cmax = 0.0;
  double bicrit_wc = 0.0;
};

CellRatios measure_cell(int m, int n, std::uint64_t seed) {
  CellRatios out;
  // R-MRT: off-line moldable makespan (3/2 + ε).
  {
    const JobSet jobs = moldable_instance(n, m, seed, 0.0);
    const MrtResult r = mrt_schedule(jobs, m);
    out.mrt = r.schedule.makespan() / cmax_lower_bound(jobs, m);
  }
  // R-BATCH: on-line batches around MRT (3 + ε).
  {
    const JobSet jobs = moldable_instance(n, m, seed + 100, 50.0);
    const BatchResult r = online_moldable_schedule(jobs, m);
    out.batch = r.schedule.makespan() / cmax_lower_bound(jobs, m);
  }
  // R-SMART: rigid Σ wᵢCᵢ shelves (8 / 8.53).
  {
    Rng rng(seed + 200);
    RigidWorkloadSpec spec;
    spec.count = n;
    spec.max_procs = std::max(2, m / 2);
    const JobSet uw = make_rigid_workload(spec, rng);
    const Metrics mu = compute_metrics(uw, smart_schedule(uw, m));
    out.smart_uw =
        mu.sum_weighted / sum_weighted_completion_lower_bound(uw, m);
    spec.w_min = 1.0;
    spec.w_max = 10.0;
    const JobSet w = make_rigid_workload(spec, rng);
    const Metrics mw = compute_metrics(w, smart_schedule(w, m));
    out.smart_w = mw.sum_weighted / sum_weighted_completion_lower_bound(w, m);
  }
  // R-BICRIT: simultaneous Cmax and Σ wᵢCᵢ (4ρ each).
  {
    const JobSet jobs = moldable_instance(n, m, seed + 300, 20.0);
    const Schedule s = bicriteria_schedule(jobs, m).schedule;
    const Metrics metrics = compute_metrics(jobs, s);
    out.bicrit_cmax = metrics.cmax / cmax_lower_bound(jobs, m);
    out.bicrit_wc =
        metrics.sum_weighted / sum_weighted_completion_lower_bound(jobs, m);
  }
  return out;
}

int main() {
  const std::vector<int> machines = {16, 64, 128};
  const std::vector<int> sizes = {20, 80, 200};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};

  struct Cell {
    int m, n;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (int m : machines)
    for (int n : sizes)
      for (std::uint64_t seed : seeds) cells.push_back({m, n, seed});

  std::vector<CellRatios> measured(cells.size());
  parallel_for_index(cells.size(), /*threads=*/0, [&](std::size_t i) {
    measured[i] = measure_cell(cells[i].m, cells[i].n, cells[i].seed);
  });

  Sweep mrt, batch, smart_unweighted, smart_weighted, bicrit_cmax, bicrit_wc;
  for (const CellRatios& r : measured) {
    mrt.add(r.mrt);
    batch.add(r.batch);
    smart_unweighted.add(r.smart_uw);
    smart_weighted.add(r.smart_w);
    bicrit_cmax.add(r.bicrit_cmax);
    bicrit_wc.add(r.bicrit_wc);
  }

  std::cout << "=== §4 guarantees: paper vs measured (ratios to lower "
               "bounds, "
            << machines.size() * sizes.size() * seeds.size()
            << " instances per row) ===\n\n";
  TextTable table(
      {"result", "algorithm", "criterion", "paper ratio", "measured worst",
       "measured mean"});
  table.add_row({"R-MRT", "MRT two-shelf (off-line moldable)", "Cmax",
                 "1.5+eps", fmt(mrt.worst), fmt(mrt.avg())});
  table.add_row({"R-BATCH", "batch doubling around MRT (on-line)", "Cmax",
                 "3+eps", fmt(batch.worst), fmt(batch.avg())});
  table.add_row({"R-SMART", "SMART power-of-2 shelves", "Sum Ci", "8",
                 fmt(smart_unweighted.worst), fmt(smart_unweighted.avg())});
  table.add_row({"R-SMART", "SMART power-of-2 shelves", "Sum wiCi", "8.53",
                 fmt(smart_weighted.worst), fmt(smart_weighted.avg())});
  table.add_row({"R-BICRIT", "bi-criteria doubling batches", "Cmax",
                 "4*rho", fmt(bicrit_cmax.worst), fmt(bicrit_cmax.avg())});
  table.add_row({"R-BICRIT", "bi-criteria doubling batches", "Sum wiCi",
                 "4*rho", fmt(bicrit_wc.worst), fmt(bicrit_wc.avg())});
  std::cout << table.to_string() << "\n";

  // Hard check: measured worst must respect the quoted bands (vs LB <= OPT).
  int failures = 0;
  const auto check = [&](const char* what, double measured, double band) {
    if (measured > band) {
      std::cout << "VIOLATION: " << what << " measured " << measured
                << " > guarantee " << band << "\n";
      ++failures;
    }
  };
  // The ratios are measured against lower bounds, not OPT; on sparse
  // instances (n close to m) LB = max(area, pmax) sits visibly below OPT,
  // so MRT's certified 1.5+eps (vs OPT) shows up as up to ~1.75 vs LB.
  check("MRT", mrt.worst, 1.75);
  check("batch", batch.worst, 3.1);
  check("SMART unweighted", smart_unweighted.worst, 8.0);
  check("SMART weighted", smart_weighted.worst, 8.53);
  std::cout << (failures == 0 ? "all measured ratios within the paper's bands\n"
                              : "RATIO VIOLATIONS PRESENT\n");

  // Sandwich OPT: the lower bound underestimates it, an annealed local
  // search over allotments overestimates it — so MRT's true distance to
  // OPT lies between ratio-to-LS and ratio-to-LB.
  {
    std::vector<double> ratios(seeds.size());
    parallel_for_index(seeds.size(), /*threads=*/0, [&](std::size_t i) {
      const std::uint64_t seed = seeds[i];
      const JobSet jobs = moldable_instance(60, 32, seed + 900, 0.0);
      const Time mrt_ms = mrt_schedule(jobs, 32).schedule.makespan();
      const Time ls_ms = local_search_moldable(jobs, 32, {2000, seed, 0.02})
                             .schedule.makespan();
      ratios[i] = mrt_ms / ls_ms;
    });
    Sweep vs_ls;
    for (double r : ratios) vs_ls.add(r);
    std::cout << "\nOPT sandwich (n=60, m=32): MRT / local-search-estimate "
              << "worst " << fmt(vs_ls.worst, 3) << ", mean "
              << fmt(vs_ls.avg(), 3)
              << " — MRT's real distance to OPT is at most this, well "
                 "inside 1.5+eps.\n";
  }
  return failures == 0 ? 0 : 1;
}
