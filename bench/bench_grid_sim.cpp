// E-GRID — the multi-cluster grid engine across its sweep axes: cluster
// count × heterogeneity skew × routing policy.
//
// Every cell is one full GridSim run (local community workloads per
// cluster, a best-effort campaign trickling into the holes, node
// volatility) executed on the parallel experiment engine; every cell's
// outcome passes validate_grid_result.  Exits non-zero on any violation
// — the CI grid smoke job relies on that and uploads BENCH_grid.json.
//
// Usage: bench_grid_sim [--quick] [--profile] [--threads N] [--seeds K]
//                       [--json PATH]
//
// --profile prints the embedded profiler's zone/counter summary to
// stderr.  The JSON report carries the zone tree under "profile"
// whenever the profiler is compiled in (-DLGS_PROFILING stays ON).
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/profiler.h"
#include "core/report.h"
#include "exp/grid_sweep.h"

int main(int argc, char** argv) {
  using namespace lgs;

  bool quick = false;
  bool profile = false;
  int threads = 0;
  int seeds = -1;  // -1 = not given on the command line
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_grid_sim [--quick] [--profile] "
                   "[--threads N] [--seeds K] [--json PATH]\n";
      return 2;
    }
  }

  GridSweepSpec spec;
  spec.cluster_counts = quick ? std::vector<int>{2} : std::vector<int>{2, 4, 6};
  spec.skews = quick ? std::vector<double>{1.0, 2.0}
                     : std::vector<double>{1.0, 2.0, 4.0};
  // Queue-policy axis (policy registry names): the classical submission
  // systems plus conservative backfilling running on-line.
  spec.policies = quick
                      ? std::vector<std::string>{"fcfs-list", "conservative-bf"}
                      : std::vector<std::string>{"fcfs-list", "easy-backfill",
                                                 "conservative-bf"};
  spec.base_seed = 2004;
  spec.replicates = seeds >= 0 ? seeds : (quick ? 1 : 3);
  spec.jobs_per_cluster = quick ? 20 : 40;
  spec.besteffort_runs = quick ? 600 : 2500;
  spec.volatility.events = 3;
  spec.volatility.window = 30.0;
  spec.threads = threads;

  std::cout << "=== E-GRID: multi-cluster grid sweep ("
            << spec.cluster_counts.size() << " cluster counts x "
            << spec.skews.size() << " skews x " << spec.routings.size()
            << " routings x " << spec.policies.size() << " policies x "
            << spec.replicate_seeds().size() << " seeds) ===\n\n";

  const GridSweepResult result = run_grid_sweep(spec);
  std::cout << spec.cell_count() << " cells on " << result.threads_used
            << " threads in " << fmt(result.wall_ms, 1) << " ms\n\n";

  // --seeds 0 is a legal (empty) sweep: nothing to tabulate.
  const std::vector<std::uint64_t> seeds_used = spec.replicate_seeds();
  const std::uint64_t first_seed = seeds_used.empty() ? 0 : seeds_used.front();
  for (int n : seeds_used.empty() ? std::vector<int>{} : spec.cluster_counts) {
    for (double skew : spec.skews) {
      std::cout << "--- " << n << " clusters, skew " << fmt(skew, 1)
                << " (seed " << first_seed << ") ---\n";
      TextTable table({"routing", "policy", "mean flow", "mean wait",
                       "global util", "migrations", "BE kills", "preempted"});
      for (const GridCellResult& c : result.cells) {
        if (c.cell.seed != first_seed || c.cell.clusters != n ||
            c.cell.skew != skew)
          continue;
        table.add_row({to_string(c.cell.routing), c.cell.policy,
                       fmt(c.mean_flow, 3), fmt(c.mean_wait, 3),
                       fmt(c.global_utilization, 3), fmt(c.migrations),
                       fmt(c.be_kills), fmt(c.local_preemptions)});
      }
      std::cout << table.to_string() << "\n";
    }
  }

  // One snapshot serves both the stderr summary and the JSON section:
  // the sweep is done, so the zone tree is complete and quiescent.
  const prof::Snapshot prof_snap = prof::snapshot();
  if (profile) std::cerr << prof::summary(prof_snap);

  if (!json_path.empty()) {
    write_grid_report(json_path, spec, result,
                      prof::enabled() ? &prof_snap : nullptr);
    std::cerr << "wrote " << json_path << "\n";
  }

  if (result.violation_count > 0) {
    std::cerr << "VALIDATION FAILURES: " << result.violation_count
              << " violation(s) across the grid sweep\n";
    for (const GridCellResult& c : result.cells)
      for (const std::string& v : c.violations)
        std::cerr << "  " << to_string(c.cell.routing) << " / "
                  << c.cell.policy << " on " << c.cell.clusters
                  << " clusters (skew " << fmt(c.cell.skew, 1) << ", seed "
                  << c.cell.seed << "): " << v << "\n";
    return 1;
  }
  std::cout << "all " << spec.cell_count()
            << " grid cells passed validate_grid_result()\n";
  return 0;
}
