// MICRO — google-benchmark microbenchmarks of the algorithmic kernels:
// how expensive are the schedulers themselves?  (The paper's algorithms
// must run inside a production batch manager, so scheduler latency
// matters.)
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>

#include "core/proc_assign.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "dlt/dlt.h"
#include "pt/backfill.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"
#include "pt/shelves.h"
#include "pt/smart.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

JobSet moldable_jobs(int n, int max_procs, Time window = 0.0) {
  Rng rng(12345);
  MoldableWorkloadSpec spec;
  spec.count = n;
  spec.max_procs = max_procs;
  spec.arrival_window = window;
  return make_moldable_workload(spec, rng);
}

JobSet rigid_jobs(int n, int max_procs, Time window = 0.0) {
  Rng rng(54321);
  RigidWorkloadSpec spec;
  spec.count = n;
  spec.max_procs = max_procs;
  spec.arrival_window = window;
  return make_rigid_workload(spec, rng);
}

void BM_MrtSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const JobSet jobs = moldable_jobs(n, m / 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(mrt_schedule(jobs, m).schedule.makespan());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MrtSchedule)->Args({50, 64})->Args({200, 64})->Args({200, 256});

void BM_Bicriteria(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const JobSet jobs = moldable_jobs(n, 20, 0.2 * n);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bicriteria_schedule(jobs, 100).schedule.makespan());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Bicriteria)->Arg(100)->Arg(500)->Arg(1000);

void BM_FfdhShelves(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const JobSet jobs = rigid_jobs(n, 16);
  for (auto _ : state)
    benchmark::DoNotOptimize(shelf_schedule_rigid(jobs, 64).makespan());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FfdhShelves)->Arg(100)->Arg(1000)->Arg(5000);

void BM_SmartShelves(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const JobSet jobs = rigid_jobs(n, 16);
  for (auto _ : state)
    benchmark::DoNotOptimize(smart_schedule(jobs, 64).makespan());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SmartShelves)->Arg(100)->Arg(1000);

void BM_ConservativeBackfill(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const JobSet jobs = rigid_jobs(n, 16, 100.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(conservative_backfill(jobs, 64).makespan());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConservativeBackfill)->Arg(100)->Arg(500);

void BM_EasyBackfill(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const JobSet jobs = rigid_jobs(n, 16, 100.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(easy_backfill(jobs, 64).makespan());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EasyBackfill)->Arg(100)->Arg(500);

void BM_ProcAssign(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const JobSet jobs = rigid_jobs(n, 16);
  const Schedule base = shelf_schedule_rigid(jobs, 64);
  for (auto _ : state) {
    Schedule s = base;
    benchmark::DoNotOptimize(assign_processors(s));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProcAssign)->Arg(100)->Arg(1000);

void BM_DltStarClosedForm(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Rng rng(7);
  DltPlatform p;
  for (int i = 0; i < workers; ++i)
    p.workers.push_back(
        {rng.uniform(0.01, 0.5), rng.uniform(0.5, 3.0), 0.001});
  for (auto _ : state)
    benchmark::DoNotOptimize(single_round_star(p, 1e4).makespan);
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK(BM_DltStarClosedForm)->Arg(8)->Arg(64)->Arg(512);

void BM_DltWorkStealing(benchmark::State& state) {
  const DltPlatform p = DltPlatform::homogeneous_bus(16, 0.02, 1.0, 0.01);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        work_stealing(p, 1000.0, 1.0, ChunkPolicy::kGuided).makespan);
}
BENCHMARK(BM_DltWorkStealing);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < events; ++i)
      sim.at(static_cast<Time>(i % 97), [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1000)->Arg(100000);

// Guard for the Simulator overflow path: captures past kInlineCallback
// bytes live in pooled overflow blocks recycled through a free list —
// per-event heap allocation (the old std::function behavior) regresses
// this benchmark by an allocation + capture copy per event.
void BM_SimulatorHeavyCallbackDrain(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  // 256 bytes of capture: far past any SBO, cheap to fill.
  struct BigCapture {
    std::array<std::uint64_t, 32> payload{};
  };
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < events; ++i) {
      BigCapture big;
      big.payload[0] = static_cast<std::uint64_t>(i);
      sim.at(static_cast<Time>(i % 97),
             [big, &sum] { sum += big.payload[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorHeavyCallbackDrain)->Arg(1000)->Arg(100000);

void BM_LowerBounds(benchmark::State& state) {
  const JobSet jobs = moldable_jobs(static_cast<int>(state.range(0)), 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmax_lower_bound(jobs, 64));
    benchmark::DoNotOptimize(sum_weighted_completion_lower_bound(jobs, 64));
  }
}
BENCHMARK(BM_LowerBounds)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
