// E-STREAM — the streaming service mode end to end: live ingestion over
// the bounded SPSC pipeline under a real producer thread, and the
// checkpoint/restore cycle that makes the service restartable.
//
// Phase 1 (stream): a producer thread pushes a release-ordered
// make_large_trace_store workload into StreamGridSim while the service
// thread ingests, advances the engine and emits NDJSON completion
// records.  Reports engine events/sec, ingest throughput, and the
// ingest latency (push -> absorbed into engine state) sampled per row.
//
// Phase 2 (checkpoint): the SAME workload is replayed three ways —
// batch GridSim, uninterrupted streaming, and streaming interrupted by
// a mid-run checkpoint()/restore() split — and the three result digests
// (tests/grid_golden_scenarios.h) must be BIT-IDENTICAL.  Any
// divergence exits non-zero: the CI stream-smoke job relies on that and
// uploads BENCH_stream.json, gated by compare_bench.py against the
// committed baseline.
//
// Usage: bench_stream [--quick] [--jobs N] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "grid_golden_scenarios.h"
#include "sim/stream_sim.h"
#include "workload/generators.h"

namespace {

using namespace lgs;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The bench grid: 8 heterogeneous clusters, jobs no wider than the
/// narrowest so nothing needs the fallback path.
LightGrid bench_grid() { return make_skewed_grid(8, 32, 2.0); }

GridSimOptions bench_options() {
  GridSimOptions opts;
  opts.routing = GridRouting::kThreshold;
  opts.wait_threshold = 4.0;
  opts.cluster.policy = "fcfs-list";
  return opts;
}

/// Checkpoint-phase options: volatility churn and a best-effort
/// campaign on top, so the snapshot covers every engine subsystem.
GridSimOptions checkpoint_options() {
  GridSimOptions opts = bench_options();
  opts.bags = {{"stream-bag", 200, 0.5, 2, 1.0}};
  opts.volatility.events = 4;
  opts.volatility.window = 50.0;
  opts.volatility.floor_fraction = 0.6;
  opts.volatility_seed = 99;
  return opts;
}

JobStore bench_trace(std::size_t jobs) {
  LargeTraceSpec spec;
  spec.max_procs = 16;  // narrowest cluster of the skew-2 ladder
  spec.communities = 8;
  spec.target_capacity = bench_grid().total_processors();
  spec.load = 0.8;
  return make_large_trace_store(jobs, /*seed=*/20040426, spec);
}

/// Rows in the exact order the batch engine routes them: grouped by
/// home cluster (community % n, store order within the group), then
/// stably sorted by effective release.
std::vector<HotJob> route_ordered_rows(const JobStore& store,
                                       std::size_t clusters) {
  ArenaVec<GridPending> pending;
  group_pending_by_home(store, clusters, pending);
  std::vector<std::uint32_t> order(pending.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return effective_grid_release(
                                store[pending[a].index].release) <
                            effective_grid_release(
                                store[pending[b].index].release);
                   });
  std::vector<HotJob> rows;
  rows.reserve(order.size());
  for (const std::uint32_t i : order)
    rows.push_back(store[pending[i].index]);
  return rows;
}

struct StreamPhase {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double jobs_per_sec = 0.0;
  double ingest_mean_latency_us = 0.0;
  double ingest_p99_latency_us = 0.0;
  std::uint64_t records_emitted = 0;
  std::uint64_t sink_bytes = 0;
};

StreamPhase run_stream_phase(const JobStore& store,
                             const std::vector<HotJob>& rows) {
  StreamPhase out;
  StreamGridSim::Options sopts;
  sopts.ring_capacity = 1024;
  sopts.batch = 256;
  std::uint64_t sink_bytes = 0;
  StreamGridSim svc(bench_grid(), bench_options(), sopts,
                    [&](const std::string& line) {
                      sink_bytes += line.size() + 1;  // + the "\n" framing
                    });

  // Push instants, stamped by the producer right before each push; the
  // ring's release/acquire publish makes reading them from the service
  // side safe once the row arrived.
  std::vector<Clock::time_point> pushed(rows.size());
  const Clock::time_point t0 = Clock::now();
  std::thread producer([&] {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      pushed[i] = Clock::now();
      svc.push(rows[i]);
    }
    svc.close();
  });

  // Drive poll() manually so each batch's rows get their absorption
  // stamp: latency = push -> the poll that ingested the row returned.
  std::vector<double> latency_us(rows.size(), 0.0);
  std::size_t seen = 0;
  while (svc.poll(store.tables())) {
    const Clock::time_point now = Clock::now();
    for (; seen < svc.ingested(); ++seen)
      latency_us[seen] =
          std::chrono::duration<double, std::micro>(now - pushed[seen])
              .count();
  }
  producer.join();
  out.wall_s = seconds_since(t0);

  out.events = svc.grid_sim().simulator().executed();
  out.events_per_sec = out.wall_s > 0 ? out.events / out.wall_s : 0.0;
  out.jobs_per_sec = out.wall_s > 0 ? rows.size() / out.wall_s : 0.0;
  out.records_emitted = svc.records_emitted();
  out.sink_bytes = sink_bytes;
  if (!latency_us.empty()) {
    out.ingest_mean_latency_us =
        std::accumulate(latency_us.begin(), latency_us.end(), 0.0) /
        latency_us.size();
    std::vector<double> sorted = latency_us;
    std::sort(sorted.begin(), sorted.end());
    out.ingest_p99_latency_us = sorted[sorted.size() * 99 / 100];
  }
  return out;
}

struct CheckpointPhase {
  bool digests_match = false;
  std::uint64_t checkpoint_bytes = 0;
  double checkpoints_per_sec = 0.0;
  double restore_wall_s = 0.0;
  std::uint64_t digest = 0;
};

CheckpointPhase run_checkpoint_phase(const JobStore& store,
                                     const std::vector<HotJob>& rows) {
  CheckpointPhase out;
  const GridSimOptions opts = checkpoint_options();

  // Reference 1: the batch engine on the same store.
  GridSim batch(bench_grid(), opts);
  batch.submit_store(store);
  const std::uint64_t batch_digest =
      digest_grid_result(batch, batch.run());

  StreamGridSim::Options sopts;
  sopts.ring_capacity = rows.size() + 1;
  sopts.batch = 256;

  // Reference 2: uninterrupted streaming.
  StreamGridSim whole(bench_grid(), opts, sopts, nullptr);
  whole.push_n(rows.data(), rows.size());
  whole.close();
  const std::uint64_t whole_digest =
      digest_grid_result(whole.grid_sim(), whole.serve(store.tables()));

  // Candidate: ingest half, checkpoint, restore into a fresh service,
  // re-feed the suffix, drain.
  const std::size_t cut = rows.size() / 2;
  StreamGridSim first(bench_grid(), opts, sopts, nullptr);
  first.push_n(rows.data(), cut);
  while (first.ingested() < cut) first.poll(store.tables());

  const Clock::time_point save0 = Clock::now();
  std::vector<unsigned char> blob = first.checkpoint();
  int save_iters = 1;
  while (seconds_since(save0) < 0.05) {
    blob = first.checkpoint();
    ++save_iters;
  }
  const double save_wall = seconds_since(save0);
  out.checkpoint_bytes = blob.size();
  out.checkpoints_per_sec = save_wall > 0 ? save_iters / save_wall : 0.0;

  StreamGridSim second(bench_grid(), opts, sopts, nullptr);
  const Clock::time_point restore0 = Clock::now();
  second.restore(blob);
  out.restore_wall_s = seconds_since(restore0);
  second.push_n(rows.data() + cut, rows.size() - cut);
  second.close();
  const std::uint64_t split_digest =
      digest_grid_result(second.grid_sim(), second.serve(store.tables()));

  out.digest = batch_digest;
  out.digests_match =
      batch_digest == whole_digest && whole_digest == split_digest;
  if (!out.digests_match) {
    std::cerr << "DIGEST DIVERGENCE:\n"
              << "  batch               " << std::hex << batch_digest << "\n"
              << "  streaming           " << whole_digest << "\n"
              << "  checkpoint/restore  " << split_digest << std::dec << "\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  long jobs_arg = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_arg = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_stream [--quick] [--jobs N] [--json PATH]\n";
      return 2;
    }
  }
  const std::size_t stream_jobs =
      jobs_arg > 0 ? static_cast<std::size_t>(jobs_arg)
                   : (quick ? 20000 : 200000);
  const std::size_t checkpoint_jobs = quick ? 4000 : 20000;

  std::cout << "=== E-STREAM: streaming service mode (" << stream_jobs
            << " jobs streamed, " << checkpoint_jobs
            << " through checkpoint/restore) ===\n\n";

  const JobStore stream_store = bench_trace(stream_jobs);
  const std::vector<HotJob> stream_rows = route_ordered_rows(stream_store, 8);
  const StreamPhase stream = run_stream_phase(stream_store, stream_rows);

  TextTable stream_table({"metric", "value"});
  stream_table.add_row({"wall_s", fmt(stream.wall_s, 3)});
  stream_table.add_row({"events", fmt(double(stream.events))});
  stream_table.add_row({"events_per_sec", fmt(stream.events_per_sec, 0)});
  stream_table.add_row({"jobs_per_sec", fmt(stream.jobs_per_sec, 0)});
  stream_table.add_row(
      {"ingest_mean_latency_us", fmt(stream.ingest_mean_latency_us, 1)});
  stream_table.add_row(
      {"ingest_p99_latency_us", fmt(stream.ingest_p99_latency_us, 1)});
  stream_table.add_row({"records_emitted", fmt(double(stream.records_emitted))});
  stream_table.add_row({"sink_bytes", fmt(double(stream.sink_bytes))});
  std::cout << "--- stream phase ---\n" << stream_table.to_string() << "\n";

  const JobStore cp_store = bench_trace(checkpoint_jobs);
  const std::vector<HotJob> cp_rows = route_ordered_rows(cp_store, 8);
  const CheckpointPhase cp = run_checkpoint_phase(cp_store, cp_rows);

  TextTable cp_table({"metric", "value"});
  cp_table.add_row({"digests_match", cp.digests_match ? "yes" : "NO"});
  cp_table.add_row({"checkpoint_bytes", fmt(double(cp.checkpoint_bytes))});
  cp_table.add_row({"checkpoints_per_sec", fmt(cp.checkpoints_per_sec, 1)});
  cp_table.add_row({"restore_wall_s", fmt(cp.restore_wall_s, 4)});
  std::cout << "--- checkpoint phase ---\n" << cp_table.to_string() << "\n";

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("bench").value("stream");
    w.key("quick").value(quick);
    w.key("clusters").value(8);
    w.key("stream");
    w.begin_object();
    w.key("jobs").value(static_cast<std::uint64_t>(stream_jobs));
    w.key("wall_s").value(stream.wall_s);
    w.key("events").value(stream.events);
    w.key("events_per_sec").value(stream.events_per_sec);
    w.key("jobs_per_sec").value(stream.jobs_per_sec);
    w.key("ingest_mean_latency_us").value(stream.ingest_mean_latency_us);
    w.key("ingest_p99_latency_us").value(stream.ingest_p99_latency_us);
    w.key("records_emitted").value(stream.records_emitted);
    w.key("sink_bytes").value(stream.sink_bytes);
    w.end_object();
    w.key("checkpoint");
    w.begin_object();
    w.key("jobs").value(static_cast<std::uint64_t>(checkpoint_jobs));
    w.key("digests_match").value(cp.digests_match);
    w.key("checkpoint_bytes").value(cp.checkpoint_bytes);
    w.key("checkpoints_per_sec").value(cp.checkpoints_per_sec);
    w.key("restore_wall_s").value(cp.restore_wall_s);
    w.end_object();
    w.end_object();
    write_file(json_path, w.str());
    std::cerr << "wrote " << json_path << "\n";
  }

  if (!cp.digests_match) {
    std::cerr << "FAIL: checkpoint/restore replay diverged from the "
                 "uninterrupted run\n";
    return 1;
  }
  std::cout << "checkpoint/restore replay bit-identical to batch and "
               "uninterrupted streaming\n";
  return 0;
}
