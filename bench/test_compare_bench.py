#!/usr/bin/env python3
"""Self-tests for the perf-regression gate (bench/compare_bench.py).

Pure stdlib, registered as a ctest (``compare_bench_selftest``): the
gate guards every CI perf run, so its own failure modes — above all the
zero-baseline trap, where ``store_cold_bytes: 0`` used to mean "the
first byte ever spent fails CI" — are pinned here.

Each test drives the real script through a subprocess on temp JSON
files and asserts on the exit code (0 ok, 1 regression, 2 bad input).

Run directly:  python3 bench/test_compare_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")
REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_gate(baseline, fresh, *extra_args):
    """Write both docs to temp files, run the gate, return the result."""
    with tempfile.TemporaryDirectory() as d:
        base_path = os.path.join(d, "baseline.json")
        fresh_path = os.path.join(d, "fresh.json")
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        with open(fresh_path, "w") as f:
            json.dump(fresh, f)
        return subprocess.run(
            [sys.executable, SCRIPT, "--baseline", base_path,
             "--fresh", fresh_path, *extra_args],
            capture_output=True, text=True)


class ZeroBaselineTest(unittest.TestCase):
    """The trap this suite exists for: footprint metrics with base 0."""

    def test_small_growth_over_zero_bytes_passes(self):
        # 0 -> 4 KiB is well inside the 1 MiB absolute slack: the gate
        # must not fail the first byte ever spent against a 0 baseline.
        r = run_gate({"store_cold_bytes": 0}, {"store_cold_bytes": 4096})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_large_growth_over_zero_bytes_fails(self):
        # Past the absolute slack the gate still bites.
        r = run_gate({"store_cold_bytes": 0},
                     {"store_cold_bytes": 64 * 1024 * 1024})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_zero_mb_uses_mb_slack(self):
        r = run_gate({"peak_rss_mb": 0.0}, {"peak_rss_mb": 0.5})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        r = run_gate({"peak_rss_mb": 0.0}, {"peak_rss_mb": 8.0})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_abs_slack_flags_override_defaults(self):
        r = run_gate({"store_cold_bytes": 0}, {"store_cold_bytes": 4096},
                     "--abs-slack-bytes", "1024")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        r = run_gate({"peak_rss_mb": 0.0}, {"peak_rss_mb": 8.0},
                     "--abs-slack-mb", "16")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_zero_baseline_report_has_no_inf_ratio(self):
        r = run_gate({"store_cold_bytes": 0}, {"store_cold_bytes": 4096})
        self.assertNotIn("inf", r.stdout)
        self.assertIn("zero baseline", r.stdout)

    def test_zero_throughput_baseline_passes_and_reports(self):
        # A "higher is better" metric with base 0 can only improve.
        r = run_gate({"jobs_per_sec": 0}, {"jobs_per_sec": 1000.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("inf", r.stdout)


class SlackFloorTest(unittest.TestCase):
    """max(base * (1 + tol), base + slack): both bands must hold."""

    def test_relative_band_dominates_large_baselines(self):
        # 100 MiB baseline: 25% relative beats the 1 MiB slack.
        base = 100 * 1024 * 1024
        r = run_gate({"arena_peak_bytes": base},
                     {"arena_peak_bytes": int(base * 1.20)})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        r = run_gate({"arena_peak_bytes": base},
                     {"arena_peak_bytes": int(base * 1.30)})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_absolute_band_dominates_tiny_baselines(self):
        # 1 KiB baseline: +400% but well under 1 MiB absolute — ok.
        r = run_gate({"store_hot_bytes": 1024}, {"store_hot_bytes": 5120})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


class GateDirectionTest(unittest.TestCase):
    def test_throughput_regression_fails(self):
        r = run_gate({"events_per_sec": 1000.0}, {"events_per_sec": 700.0})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_throughput_within_tolerance_passes(self):
        r = run_gate({"events_per_sec": 1000.0}, {"events_per_sec": 800.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_sharded_grid_throughput_regression_fails(self):
        # The grid_sharded phase's events_per_sec is a gate leaf like
        # any other *_per_sec key: losing the sharding speedup (e.g. a
        # barrier bug serializing the workers) must fail CI.
        base = {"phases": {"grid_sharded": {"events_per_sec": 2000000.0}}}
        fresh = {"phases": {"grid_sharded": {"events_per_sec": 1000000.0}}}
        r = run_gate(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("grid_sharded", r.stdout)

    def test_speedup_prefix_is_gated_higher(self):
        r = run_gate({"speedup_vs_ref": 4.0}, {"speedup_vs_ref": 1.5})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_footprint_growth_fails(self):
        r = run_gate({"peak_rss_mb": 100.0}, {"peak_rss_mb": 150.0})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_footprint_shrink_passes(self):
        r = run_gate({"peak_rss_mb": 100.0}, {"peak_rss_mb": 50.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_ungated_leaves_are_informational(self):
        r = run_gate({"wall_s": 1.0, "events_per_sec": 100.0},
                     {"wall_s": 99.0, "events_per_sec": 100.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


class LatencyGateTest(unittest.TestCase):
    """*_latency_us leaves (the streaming service's ingest latencies):
    lower is better, with a latency-sized absolute slack."""

    def test_latency_regression_fails(self):
        r = run_gate({"ingest_p99_latency_us": 2000.0},
                     {"ingest_p99_latency_us": 4000.0})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_latency_improvement_and_tolerance_pass(self):
        r = run_gate({"ingest_p99_latency_us": 2000.0},
                     {"ingest_p99_latency_us": 1000.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        r = run_gate({"ingest_p99_latency_us": 2000.0},
                     {"ingest_p99_latency_us": 2400.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_tiny_latency_baseline_gets_latency_slack_not_bytes(self):
        # A 2 us baseline regressing to 50 us is inside the 100 us
        # absolute slack — but a jump to 500 us is a real regression and
        # must NOT be forgiven by the (huge) _bytes slack.
        r = run_gate({"ingest_mean_latency_us": 2.0},
                     {"ingest_mean_latency_us": 50.0})
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        r = run_gate({"ingest_mean_latency_us": 2.0},
                     {"ingest_mean_latency_us": 500.0})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_latency_slack_flag_override(self):
        r = run_gate({"ingest_mean_latency_us": 2.0},
                     {"ingest_mean_latency_us": 500.0},
                     "--abs-slack-latency-us", "1000")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


class StructureTest(unittest.TestCase):
    def test_missing_gated_metric_fails(self):
        r = run_gate({"events_per_sec": 1000.0}, {})
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("missing from fresh run", r.stdout)

    def test_nested_lists_are_walked(self):
        base = {"sizes": [{"phases": {"grid": {"jobs_per_sec": 1000.0}}},
                          {"phases": {"grid": {"jobs_per_sec": 2000.0}}}]}
        good = {"sizes": [{"phases": {"grid": {"jobs_per_sec": 990.0}}},
                          {"phases": {"grid": {"jobs_per_sec": 1990.0}}}]}
        bad = {"sizes": [{"phases": {"grid": {"jobs_per_sec": 990.0}}},
                         {"phases": {"grid": {"jobs_per_sec": 100.0}}}]}
        self.assertEqual(run_gate(base, good).returncode, 0)
        self.assertEqual(run_gate(base, bad).returncode, 1)

    def test_no_gated_metrics_is_a_structure_error(self):
        r = run_gate({"wall_s": 1.0}, {"wall_s": 1.0})
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_unreadable_fresh_file_is_a_structure_error(self):
        with tempfile.TemporaryDirectory() as d:
            base_path = os.path.join(d, "baseline.json")
            with open(base_path, "w") as f:
                json.dump({"events_per_sec": 1.0}, f)
            r = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", base_path,
                 "--fresh", os.path.join(d, "missing.json")],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_tolerance_flag_respected(self):
        r = run_gate({"events_per_sec": 1000.0}, {"events_per_sec": 950.0},
                     "--tolerance", "0.01")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)


class CommittedBaselineTest(unittest.TestCase):
    """Acceptance check: the real committed baseline must tolerate a
    fresh run whose store_cold_bytes went from 0 to a small positive
    value (the exact shape that used to hard-fail the gate)."""

    def test_cold_bytes_growth_passes_against_committed_baseline(self):
        path = os.path.join(REPO, "bench", "baselines", "BENCH_scale.json")
        with open(path) as f:
            baseline = json.load(f)
        fresh = json.loads(json.dumps(baseline))  # deep copy
        for size in fresh.get("sizes", []):
            size["memory"]["store_cold_bytes"] += 64 * 1024
        with tempfile.TemporaryDirectory() as d:
            fresh_path = os.path.join(d, "fresh.json")
            with open(fresh_path, "w") as f:
                json.dump(fresh, f)
            r = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", path,
                 "--fresh", fresh_path],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_committed_baseline_carries_the_sharded_gate_leaf(self):
        # The sharded phase must actually be wired into the committed
        # baseline (a silently missing key would make the lower-bound
        # gate vacuous): halving its throughput has to fail.
        path = os.path.join(REPO, "bench", "baselines", "BENCH_scale.json")
        with open(path) as f:
            baseline = json.load(f)
        fresh = json.loads(json.dumps(baseline))  # deep copy
        sizes = fresh.get("sizes", [])
        self.assertTrue(sizes)
        for size in sizes:
            phase = size["phases"]["grid_sharded"]
            phase["events_per_sec"] *= 0.5
        with tempfile.TemporaryDirectory() as d:
            fresh_path = os.path.join(d, "fresh.json")
            with open(fresh_path, "w") as f:
                json.dump(fresh, f)
            r = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", path,
                 "--fresh", fresh_path],
                capture_output=True, text=True)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("grid_sharded", r.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
