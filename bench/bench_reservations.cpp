// E-RSV — reservations (§5.1): "including support for such reservations
// into a scheduling algorithm is a difficult problem.  A batch algorithm
// could try to ensure that batch boundaries match the beginning and the
// end of the reservations, but that would likely be inefficient."
//
// We quantify that remark: conservative backfilling around reservation
// windows (profile-based, jobs flow through holes) versus the naive
// batch-aligned strategy that drains the machine before every reservation
// boundary.  Sweep over reservation density.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/report.h"
#include "core/rng.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/allotment.h"
#include "pt/backfill.h"
#include "pt/shelves.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

/// The naive strategy the paper warns about: between consecutive
/// reservation boundaries, schedule with FFDH shelves only jobs that fit
/// entirely inside the window; everything else waits.
Schedule batch_aligned(const JobSet& jobs, int m,
                       const std::vector<Reservation>& rsv) {
  std::vector<Time> bounds = {0.0};
  for (const Reservation& r : rsv) {
    bounds.push_back(r.start);
    bounds.push_back(r.end);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  Schedule out(m);
  std::vector<bool> done(jobs.size(), false);
  std::size_t remaining = jobs.size();
  std::size_t bi = 0;
  Time window_start = 0.0;
  while (remaining > 0) {
    const Time window_end =
        bi < bounds.size() ? bounds[bi] : kTimeInfinity;
    // Capacity available in this window = m minus overlapping reservations.
    int reserved = 0;
    for (const Reservation& r : rsv)
      if (r.start < window_end - kTimeEps &&
          r.end > window_start + kTimeEps)
        reserved = std::max(reserved, r.procs);
    const int avail = m - reserved;
    if (avail > 0) {
      // Greedily shelf-pack released jobs that fit the window entirely.
      JobSet batch;
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (done[i] || jobs[i].release > window_start + kTimeEps) continue;
        if (jobs[i].min_procs > avail) continue;
        batch.push_back(Job::rigid(jobs[i].id, jobs[i].min_procs,
                                   jobs[i].time(jobs[i].min_procs)));
        members.push_back(i);
      }
      // Drop jobs from the end until the packing fits the window.
      while (!batch.empty()) {
        Schedule packed = shelf_schedule_rigid(batch, avail);
        if (packed.makespan() <= window_end - window_start + kTimeEps) {
          for (const Assignment& a : packed.assignments())
            out.add(a.job, a.start + window_start, a.nprocs, a.duration);
          for (std::size_t i : members) done[i] = true;
          remaining -= members.size();
          break;
        }
        batch.pop_back();
        members.pop_back();
      }
    }
    if (bi >= bounds.size() && remaining > 0) {
      // Past the last boundary with work left: schedule the rest freely.
      JobSet rest;
      for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!done[i])
          rest.push_back(Job::rigid(jobs[i].id, jobs[i].min_procs,
                                    jobs[i].time(jobs[i].min_procs)));
      Schedule packed = shelf_schedule_rigid(rest, m);
      const Time base = std::max(window_start, out.makespan());
      for (const Assignment& a : packed.assignments())
        out.add(a.job, a.start + base, a.nprocs, a.duration);
      break;
    }
    window_start = window_end;
    ++bi;
  }
  return out;
}

}  // namespace

int main() {
  const int m = 32;
  std::cout << "=== E-RSV: scheduling around reservations (§5.1), m = " << m
            << " ===\n\n";

  TextTable table({"reservations", "reserved frac", "conservative Cmax",
                   "batch-aligned Cmax", "penalty of naive batching"});
  for (int n_rsv : {0, 2, 4, 8}) {
    double cons_sum = 0, naive_sum = 0;
    const int reps = 3;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(static_cast<std::uint64_t>(n_rsv) * 100 + rep);
      RigidWorkloadSpec spec;
      spec.count = 80;
      spec.max_procs = 8;
      spec.arrival_window = 30.0;
      const JobSet jobs = make_rigid_workload(spec, rng);
      std::vector<Reservation> rsv;
      for (int i = 0; i < n_rsv; ++i) {
        const Time start = rng.uniform(5.0, 120.0);
        rsv.push_back({start, start + rng.uniform(5.0, 20.0),
                       static_cast<int>(rng.uniform_int(4, m / 4))});
      }
      const Schedule cons = conservative_backfill(jobs, m, rsv);
      ValidateOptions vopts;
      vopts.reservations = rsv;
      if (!is_valid(jobs, cons, vopts))
        std::cout << "WARNING: conservative schedule invalid!\n";
      const Schedule naive = batch_aligned(jobs, m, rsv);
      cons_sum += cons.makespan() / reps;
      naive_sum += naive.makespan() / reps;
    }
    table.add_row({fmt(n_rsv), fmt(n_rsv * 12.5 / 100.0, 2),
                   fmt(cons_sum, 2), fmt(naive_sum, 2),
                   fmt(naive_sum / cons_sum, 2) + "x"});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "paper's remark verified when the right column exceeds 1: "
               "aligning batch boundaries with reservations wastes the "
               "capacity left beside and between reservations.\n";
  return 0;
}
