// FIG3 / FIG1 — the platform artifacts: builds the CIMENT light grid
// exactly as drawn in Fig. 3 (4 largest clusters, their node counts and
// interconnects), prints its inventory, and runs a heterogeneous sanity
// workload through the simulator to show the platform behaving as a light
// grid (Fig. 1): local queues per cluster, strong inter-cluster
// heterogeneity.
#include <iostream>

#include "core/report.h"
#include "core/rng.h"
#include "dlt/dlt.h"
#include "grid/besteffort.h"
#include "platform/platform.h"
#include "workload/generators.h"

int main() {
  using namespace lgs;

  const LightGrid grid = ciment_grid();
  std::cout << "=== Fig. 3: the 4 largest clusters of the CIMENT project "
               "===\n\n";
  std::cout << grid.inventory() << "\n";

  TextTable table({"cluster", "nodes", "cpus", "speed", "network",
                   "lat (us)", "bw (units/s)"});
  for (const Cluster& c : grid.clusters) {
    const Link l = c.link();
    table.add_row({c.name, fmt(c.nodes), fmt(c.processors()), fmt(c.speed),
                   to_string(c.net), fmt(l.latency * 1e6), fmt(l.bandwidth)});
  }
  std::cout << table.to_string() << "\n";

  // Sanity run: each community submits to its home cluster; verify the
  // platform sustains the load and report per-cluster utilization.
  Rng rng(2026);
  std::vector<JobSet> locals(4);
  locals[0] = make_community_workload(Community::kNumericalPhysics, 20, rng,
                                      0, 0.05, 40.0);
  locals[1] = make_community_workload(Community::kAstrophysics, 20, rng, 100,
                                      0.05, 40.0);
  locals[2] = make_community_workload(Community::kComputerScience, 40, rng,
                                      200, 0.05, 40.0);
  locals[3] = make_community_workload(Community::kMedicalResearch, 20, rng,
                                      300, 0.05, 40.0);
  const CentralizedResult res = run_centralized(grid, locals, {});
  std::cout << "heterogeneous sanity run (no grid jobs), horizon "
            << fmt(res.horizon) << ":\n";
  TextTable util({"cluster", "local jobs", "mean wait", "mean slowdown",
                  "utilization"});
  for (std::size_t i = 0; i < res.clusters.size(); ++i) {
    const ClusterOutcome& c = res.clusters[i];
    util.add_row({grid.clusters[i].name, fmt(locals[i].size()),
                  fmt(c.local_mean_wait), fmt(c.local_mean_slowdown),
                  fmt(c.utilization_local)});
  }
  std::cout << util.to_string() << "\n";

  // The same platform as a DLT star (used by E-DLT and §5.2).
  const DltPlatform star = DltPlatform::from_grid(grid);
  std::cout << "as a divisible-load star (per-cluster aggregate workers):\n";
  TextTable dlt({"cluster", "comm (s/unit)", "comp (s/unit)", "latency (s)"});
  for (std::size_t i = 0; i < star.workers.size(); ++i)
    dlt.add_row({grid.clusters[i].name, fmt(star.workers[i].comm, 6),
                 fmt(star.workers[i].comp, 6),
                 fmt(star.workers[i].latency, 6)});
  std::cout << dlt.to_string();
  return 0;
}
