// E-MIX — the three §5.1 strategies for workloads mixing rigid and
// moldable jobs, swept over the rigid fraction 0..1.
//
// Also carries ablation ✧4: canonical allotment at the area bound versus
// minimal-work allotment for the a-priori strategy.
#include <iostream>
#include <vector>

#include "core/report.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/allotment.h"
#include "pt/backfill.h"
#include "pt/mix.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

JobSet mixed_instance(double rigid_fraction, std::uint64_t seed) {
  Rng rng(seed);
  const int total = 120;
  const int rigid_n = static_cast<int>(total * rigid_fraction);
  MoldableWorkloadSpec mspec;
  mspec.count = total - rigid_n;
  mspec.max_procs = 16;
  JobSet jobs = make_moldable_workload(mspec, rng);
  RigidWorkloadSpec rspec;
  rspec.count = rigid_n;
  rspec.max_procs = 16;
  append_workload(jobs, make_rigid_workload(rspec, rng));
  return jobs;
}

}  // namespace

int main() {
  const int m = 48;
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  const int reps = 3;

  std::cout << "=== E-MIX: rigid+moldable strategies (§5.1), m = " << m
            << ", 120 jobs, Cmax ratio vs lower bound ===\n\n";

  TextTable table({"rigid fraction", "separate-phases", "a-priori-allotment",
                   "rigid-into-batches"});
  std::vector<Series> series = {{"separate", {}, {}},
                                {"a-priori", {}, {}},
                                {"batches", {}, {}}};
  for (double frac : fractions) {
    double ratio[3] = {0, 0, 0};
    for (int r = 0; r < reps; ++r) {
      const JobSet jobs = mixed_instance(frac, 100 * r + 7);
      const Time lb = cmax_lower_bound(jobs, m);
      int si = 0;
      for (MixStrategy strat :
           {MixStrategy::kSeparatePhases, MixStrategy::kAprioriAllotment,
            MixStrategy::kRigidIntoBatches}) {
        const Schedule s = schedule_mixed(jobs, m, strat);
        ratio[si++] += s.makespan() / lb / reps;
      }
    }
    table.add_row_numeric({frac, ratio[0], ratio[1], ratio[2]});
    for (int si = 0; si < 3; ++si) {
      series[static_cast<std::size_t>(si)].x.push_back(frac);
      series[static_cast<std::size_t>(si)].y.push_back(ratio[si]);
    }
  }
  std::cout << table.to_string() << "\n";
  std::cout << ascii_plot(series, 60, 14,
                          "Cmax ratio vs rigid fraction (lower is better)")
            << "\n";

  // Ablation ✧4: allotment target for the a-priori strategy.  Canonical at
  // the area bound keeps jobs narrow (low work) but long; canonical at a
  // quarter of the bound spends processors for speed; best-time maximizes
  // parallelism regardless of waste.
  std::cout << "--- ablation: a-priori allotment target (0.5 rigid "
               "fraction) ---\n";
  TextTable ab({"allotment", "Cmax ratio", "SumWC ratio", "mean flow"});
  enum class Target { kAreaLb, kQuarterLb, kBestTime };
  for (const Target target :
       {Target::kAreaLb, Target::kQuarterLb, Target::kBestTime}) {
    double cr = 0, wr = 0, flow = 0;
    for (int r = 0; r < reps; ++r) {
      const JobSet jobs = mixed_instance(0.5, 100 * r + 7);
      const Time lb = cmax_lower_bound(jobs, m);
      JobSet rigidized;
      switch (target) {
        case Target::kAreaLb:
          rigidized = fix_canonical(jobs, lb, m);
          break;
        case Target::kQuarterLb:
          rigidized = fix_canonical(jobs, lb / 4, m);
          break;
        case Target::kBestTime: {
          std::vector<int> allot(jobs.size());
          for (std::size_t i = 0; i < jobs.size(); ++i)
            allot[i] = best_time_allotment(jobs[i], m);
          rigidized = fix_allotments(jobs, allot);
          break;
        }
      }
      const Schedule s = conservative_backfill(rigidized, m);
      const Metrics metrics = compute_metrics(rigidized, s);
      cr += metrics.cmax / lb / reps;
      wr += metrics.sum_weighted /
            sum_weighted_completion_lower_bound(jobs, m) / reps;
      flow += metrics.mean_flow / reps;
    }
    const char* name = target == Target::kAreaLb      ? "canonical @ area LB"
                       : target == Target::kQuarterLb ? "canonical @ LB/4"
                                                      : "best-time (greedy)";
    ab.add_row({name, fmt(cr, 3), fmt(wr, 3), fmt(flow, 2)});
  }
  std::cout << ab.to_string();
  return 0;
}
