// FIG2 — reproduces Figure 2 of the paper: the bi-criteria moldable
// scheduler simulated on a cluster of 100 machines, with parallel and
// non-parallel job families.  Two panels:
//   top:    Σ wᵢCᵢ ratio (schedule / lower bound) vs number of tasks
//   bottom: Cmax ratio vs number of tasks
// The paper plots n = 0..1000; we sweep the same range.  Shape targets:
// ratios start high for tiny instances and settle in the ~1–2.8 band.
//
// Usage: fig2_bicriteria [--ablation] [--csv PREFIX]
//   --ablation also sweeps the batch growth factor {1.5, 2, 3} (DESIGN ✧5).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/bicriteria.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

struct Point {
  int n;
  double wc_ratio;
  double cmax_ratio;
};

Point run_one(int n, bool parallel, double factor, std::uint64_t seed) {
  Rng rng(seed);
  MoldableWorkloadSpec spec;
  spec.count = n;
  spec.t1_min = 1.0;
  spec.t1_max = 50.0;
  spec.max_procs = 20;
  spec.sequential_fraction = parallel ? 0.25 : 1.0;
  spec.arrival_window = 0.2 * n;  // steady trickle, as an on-line system sees
  spec.w_min = 1.0;
  spec.w_max = 5.0;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const int m = 100;

  BicriteriaOptions opts;
  opts.factor = factor;
  const Schedule s = bicriteria_schedule(jobs, m, opts).schedule;
  const Metrics metrics = compute_metrics(jobs, s);
  Point p;
  p.n = n;
  p.wc_ratio =
      metrics.sum_weighted / sum_weighted_completion_lower_bound(jobs, m);
  p.cmax_ratio = metrics.cmax / cmax_lower_bound(jobs, m);
  return p;
}

void sweep(double factor, const std::string& csv_prefix) {
  const std::vector<int> sizes = {10,  25,  50,  100, 200, 300, 400,
                                  500, 600, 700, 800, 900, 1000};
  const int reps = 3;

  Series wc_np{"Non Parallel", {}, {}}, wc_p{"Parallel", {}, {}};
  Series cm_np{"Non Parallel", {}, {}}, cm_p{"Parallel", {}, {}};
  TextTable table({"tasks", "WiCi ratio (NP)", "WiCi ratio (P)",
                   "Cmax ratio (NP)", "Cmax ratio (P)"});

  for (int n : sizes) {
    double wc[2] = {0, 0}, cm[2] = {0, 0};
    for (int r = 0; r < reps; ++r) {
      for (int parallel = 0; parallel < 2; ++parallel) {
        const Point p = run_one(n, parallel != 0, factor,
                                1000ull * n + 10ull * r + parallel);
        wc[parallel] += p.wc_ratio / reps;
        cm[parallel] += p.cmax_ratio / reps;
      }
    }
    wc_np.x.push_back(n);
    wc_np.y.push_back(wc[0]);
    wc_p.x.push_back(n);
    wc_p.y.push_back(wc[1]);
    cm_np.x.push_back(n);
    cm_np.y.push_back(cm[0]);
    cm_p.x.push_back(n);
    cm_p.y.push_back(cm[1]);
    table.add_row_numeric({static_cast<double>(n), wc[0], wc[1], cm[0], cm[1]});
  }

  std::cout << "=== Fig. 2 (growth factor " << factor
            << "): bi-criteria on 100 machines ===\n\n";
  std::cout << table.to_string() << "\n";
  std::cout << ascii_plot({wc_np, wc_p}, 72, 16,
                          "WiCi ratio vs number of tasks (Fig. 2 top)")
            << "\n";
  std::cout << ascii_plot({cm_np, cm_p}, 72, 16,
                          "Cmax ratio vs number of tasks (Fig. 2 bottom)")
            << "\n";
  if (!csv_prefix.empty()) {
    write_file(csv_prefix + "_factor" + fmt(factor) + ".csv", table.to_csv());
    std::cout << "csv written to " << csv_prefix << "_factor" << fmt(factor)
              << ".csv\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool ablation = false;
  std::string csv_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablation") == 0) ablation = true;
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
      csv_prefix = argv[++i];
  }
  sweep(2.0, csv_prefix);
  if (ablation) {
    sweep(1.5, csv_prefix);
    sweep(3.0, csv_prefix);
  }
  return 0;
}
