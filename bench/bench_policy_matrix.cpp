// E-POL — the title question: which policy for which application?
//
// Runs the full policy × application sweep on the parallel experiment
// engine (src/exp/sweep.h), prints the recommendation per (class,
// criterion) for the first replicate, and reports the engine's speedup
// over the serial oracle.  Exits non-zero if any cell's schedule fails
// core/validate — the CI sweep smoke job relies on that.
//
// Usage: bench_policy_matrix [--quick] [--threads N] [--seeds K]
//                            [--json PATH] [--compare-serial]
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "exp/report_sink.h"
#include "exp/sweep.h"
#include "policy/policy.h"

int main(int argc, char** argv) {
  using namespace lgs;

  bool quick = false;
  bool compare_serial = false;
  int threads = 0;
  int seeds = -1;  // -1 = not given on the command line
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--compare-serial") == 0) {
      compare_serial = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_policy_matrix [--quick] [--threads N] "
                   "[--seeds K] [--json PATH] [--compare-serial]\n";
      return 2;
    }
  }

  // Contention matters: with too few jobs per processor every policy
  // degenerates to "start everything now" and FCFS trivially wins.
  SweepSpec spec;
  spec.machine_sizes = {32};
  spec.jobs_per_class = quick ? 40 : 150;
  spec.base_seed = 2004;
  // An explicit --seeds wins; otherwise 2 replicates in quick mode, 4 full.
  spec.replicates = seeds >= 0 ? seeds : (quick ? 2 : 4);
  spec.threads = threads;

  std::cout << "=== E-POL: policy x application sweep (m = "
            << spec.machine_sizes.front() << ", " << spec.jobs_per_class
            << " jobs per class, " << spec.replicates << " seeds) ===\n\n";

  const SweepResult result = run_sweep(spec);
  std::cout << spec.cell_count() << " cells on " << result.threads_used
            << " threads in " << fmt(result.wall_ms, 1) << " ms\n\n";

  const std::uint64_t first_seed = spec.replicate_seeds().front();
  const auto matrix = matrix_from_sweep(spec, result, 32, first_seed);
  for (const MatrixRow& row : matrix) {
    std::cout << "--- application class: " << to_string(row.app) << " ---\n";
    TextTable table({"policy", "Cmax ratio", "SumWC ratio", "mean flow",
                     "max flow", "utilization"});
    for (const PolicyScore& s : row.scores) {
      table.add_row({s.policy, fmt(s.cmax_ratio, 3),
                     fmt(s.sum_wc_ratio, 3), fmt(s.mean_flow, 2),
                     fmt(s.max_flow, 2), fmt(s.utilization, 3)});
    }
    std::cout << table.to_string();
    std::cout << "best for Cmax: " << row.best_for_cmax
              << " | best for SumWC: " << row.best_for_sum_wc
              << " | best for max flow: " << row.best_for_max_flow
              << "\n\n";
  }

  std::cout << "=== recommendation summary (seed " << first_seed
            << ") ===\n";
  TextTable rec({"application", "Cmax", "SumWC", "max flow"});
  for (const MatrixRow& row : matrix)
    rec.add_row({to_string(row.app), row.best_for_cmax, row.best_for_sum_wc,
                 row.best_for_max_flow});
  std::cout << rec.to_string() << "\n";
  std::cout << paper_guidance() << "\n";

  if (compare_serial) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t seed : spec.replicate_seeds())
      (void)evaluate_policy_matrix_serial(32, spec.jobs_per_class, seed);
    const double serial_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    std::cout << "serial oracle: " << fmt(serial_ms, 1) << " ms; engine: "
              << fmt(result.wall_ms, 1) << " ms on " << result.threads_used
              << " threads -> speedup " << fmt(serial_ms / result.wall_ms, 2)
              << "x\n";
  }

  if (!json_path.empty()) {
    write_sweep_report(json_path, spec, result);
    std::cerr << "wrote " << json_path << "\n";
  }

  if (result.violation_count > 0) {
    std::cerr << "VALIDATION FAILURES: " << result.violation_count
              << " violation(s) across the sweep\n";
    for (const CellResult& c : result.cells)
      for (const std::string& v : c.violations)
        std::cerr << "  " << c.cell.policy << " on "
                  << to_string(c.cell.app) << " (m=" << c.cell.machines
                  << ", seed=" << c.cell.seed << "): " << v << "\n";
    return 1;
  }
  std::cout << "all " << spec.cell_count()
            << " cell schedules passed validate()\n";
  return 0;
}
