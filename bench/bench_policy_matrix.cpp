// E-POL — the title question: which policy for which application?
//
// Runs every scheduling policy of the library on every application class
// the paper motivates, scores them on the §3 criteria, and prints the
// recommendation per (class, criterion).  This is the quantitative version
// of the paper's qualitative conclusion that no single policy dominates.
#include <iostream>

#include "core/report.h"
#include "policy/policy.h"

int main() {
  using namespace lgs;
  // Contention matters: with too few jobs per processor every policy
  // degenerates to "start everything now" and FCFS trivially wins.
  const int m = 32;
  const int jobs = 150;

  std::cout << "=== E-POL: policy x application matrix (m = " << m << ", "
            << jobs << " jobs per class) ===\n\n";

  const auto matrix = evaluate_policy_matrix(m, jobs, /*seed=*/2004);
  for (const MatrixRow& row : matrix) {
    std::cout << "--- application class: " << to_string(row.app) << " ---\n";
    TextTable table({"policy", "Cmax ratio", "SumWC ratio", "mean flow",
                     "max flow", "utilization"});
    for (const PolicyScore& s : row.scores) {
      table.add_row({to_string(s.policy), fmt(s.cmax_ratio, 3),
                     fmt(s.sum_wc_ratio, 3), fmt(s.mean_flow, 2),
                     fmt(s.max_flow, 2), fmt(s.utilization, 3)});
    }
    std::cout << table.to_string();
    std::cout << "best for Cmax: " << to_string(row.best_for_cmax)
              << " | best for SumWC: " << to_string(row.best_for_sum_wc)
              << " | best for max flow: " << to_string(row.best_for_max_flow)
              << "\n\n";
  }

  std::cout << "=== recommendation summary ===\n";
  TextTable rec({"application", "Cmax", "SumWC", "max flow"});
  for (const MatrixRow& row : matrix)
    rec.add_row({to_string(row.app), to_string(row.best_for_cmax),
                 to_string(row.best_for_sum_wc),
                 to_string(row.best_for_max_flow)});
  std::cout << rec.to_string() << "\n";
  std::cout << paper_guidance();
  return 0;
}
