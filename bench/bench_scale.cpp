// BENCH_scale — million-job replay throughput of the dynamic engines.
//
// Generates a large synthetic SWF-like trace (workload::make_large_trace,
// Lublin-style bursty arrivals) and replays it online twice per size:
// once through a single OnlineCluster the width of the whole machine
// pool, and once through a 16-cluster GridSim splitting the trace by
// community.  Each phase reports wall time, simulator events/sec and
// jobs/sec; each size reports the process peak RSS.  Every replay is
// validated (nothing left queued/running, record counts match) and the
// binary exits non-zero on any violation, so CI can gate on it.
//
// The consolidated JSON is the perf-trajectory artifact: CI runs
// `bench_scale --quick --json BENCH_scale.json` and compares the
// throughput numbers against bench/baselines/BENCH_scale.json with
// bench/compare_bench.py (fail on >25% events/sec regression).
//
// Every phase is measured best-of-N (--repeat, default 3): the replay
// is deterministic, so the fastest repetition is the one least disturbed
// by scheduler noise — what a regression gate should compare.
//
// Usage: bench_scale [--quick] [--json PATH] [--clusters K] [--repeat N]
#include <sys/resource.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/grid_sim.h"
#include "sim/online_cluster.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Linux reports ru_maxrss in kilobytes.
double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct PhaseResult {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double jobs_per_sec = 0.0;
};

struct SizeResult {
  std::size_t jobs = 0;
  PhaseResult generate;
  PhaseResult online_cluster;
  PhaseResult grid_sim;
};

/// Feed arrivals through ONE pending event walking the release-sorted
/// trace — constant event-queue footprint regardless of trace size (the
/// same discipline GridSim::run uses internally).
struct ArrivalPump {
  Simulator& sim;
  OnlineCluster& cluster;
  const JobSet& jobs;
  std::size_t cursor = 0;

  void prime() {
    if (cursor < jobs.size())
      sim.at(jobs[cursor].release, [this] { fire(); }, /*priority=*/-2);
  }
  void fire() {
    const Time now = sim.now();
    while (cursor < jobs.size() && jobs[cursor].release <= now) {
      Job j = jobs[cursor++];
      j.release = 0.0;  // submit at the arrival instant, no deferral timer
      cluster.submit_local(j);
    }
    prime();
  }
};

int failures = 0;

void fail(const std::string& what) {
  std::cerr << "VIOLATION: " << what << "\n";
  ++failures;
}

/// Keep `candidate` when it is the fastest repetition so far.
void keep_best(PhaseResult& best, const PhaseResult& candidate) {
  if (best.wall_s == 0.0 || candidate.wall_s < best.wall_s)
    best = candidate;
}

SizeResult run_size(std::size_t n, int clusters, std::uint64_t seed,
                    int repeat) {
  SizeResult res;
  res.jobs = n;

  LargeTraceSpec spec;
  spec.max_procs = 64;
  spec.communities = clusters;  // every cluster gets a community's stream
  spec.target_capacity = clusters * 64;
  spec.load = 0.85;

  JobSet trace;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    trace = make_large_trace(n, seed, spec);
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.generate, phase);
  }

  for (int rep = 0; rep < repeat; ++rep) {
    // Phase: one cluster the width of the whole pool.
    Simulator sim;
    Cluster desc;
    desc.id = 0;
    desc.name = "pool";
    desc.nodes = spec.target_capacity;
    desc.cpus_per_node = 1;
    OnlineCluster cluster(sim, desc);
    cluster.reserve_submissions(n);
    ArrivalPump pump{sim, cluster, trace};
    const auto t0 = std::chrono::steady_clock::now();
    pump.prime();
    sim.run();
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    phase.events = sim.executed();
    phase.events_per_sec =
        static_cast<double>(sim.executed()) / phase.wall_s;
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.online_cluster, phase);
    if (cluster.queued_jobs() != 0 || cluster.running_local_jobs() != 0)
      fail("online_cluster replay did not drain");
    if (cluster.local_records().size() != n)
      fail("online_cluster lost submissions");
  }

  for (int rep = 0; rep < repeat; ++rep) {
    // Phase: 16-cluster grid, trace split by community.
    GridSimOptions opts;  // isolated routing, FCFS — the throughput bar
    GridSim grid(make_skewed_grid(clusters, 64, /*skew=*/1.0), opts);
    const auto t0 = std::chrono::steady_clock::now();
    grid.submit_workloads(
        split_by_community(trace, static_cast<std::size_t>(clusters)));
    const GridSimResult result = grid.run();
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    phase.events = grid.simulator().executed();
    phase.events_per_sec =
        static_cast<double>(phase.events) / phase.wall_s;
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.grid_sim, phase);
    if (result.jobs_completed != static_cast<long>(n))
      fail("grid replay lost submissions");
    for (const std::string& v : validate_grid_result(grid, result))
      fail("grid replay: " + v);
  }

  return res;
}

void phase_json(std::ostringstream& out, const char* name,
                const PhaseResult& p, bool with_events) {
  out << "      \"" << name << "\": {\"wall_s\": " << p.wall_s;
  if (with_events)
    out << ", \"events\": " << p.events
        << ", \"events_per_sec\": " << p.events_per_sec;
  out << ", \"jobs_per_sec\": " << p.jobs_per_sec << "}";
}

std::string to_json(const std::vector<SizeResult>& results, int clusters,
                    bool quick) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"scale\",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"clusters\": " << clusters
      << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    out << "    {\"jobs\": " << r.jobs << ",\n     \"phases\": {\n";
    phase_json(out, "generate", r.generate, false);
    out << ",\n";
    phase_json(out, "online_cluster", r.online_cluster, true);
    out << ",\n";
    phase_json(out, "grid_sim", r.grid_sim, true);
    out << "\n     }}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // ru_maxrss is a process-wide high-water mark, so one honest number
  // for the whole run (dominated by the largest size) instead of a
  // misleading monotone per-size column.
  out << "  ],\n  \"peak_rss_mb\": " << peak_rss_mb() << "\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int clusters = 16;
  int repeat = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      clusters = std::atoi(argv[++i]);
      if (clusters < 1) {
        std::cerr << "error: --clusters must be >= 1\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) {
        std::cerr << "error: --repeat must be >= 1\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_scale [--quick] [--json PATH] "
                   "[--clusters K] [--repeat N]\n";
      return 2;
    }
  }

  // Quick sizes are chosen so the shortest gated phase still runs
  // ~100ms+: long enough that best-of-N throughput is stable under the
  // 25% CI gate tolerance, short enough for every-commit CI.
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{100000, 300000}
            : std::vector<std::size_t>{100000, 1000000};

  std::vector<SizeResult> results;
  for (std::size_t n : sizes) {
    results.push_back(run_size(n, clusters, /*seed=*/42, repeat));
    const SizeResult& r = results.back();
    std::cerr << "jobs=" << r.jobs << "  online " << r.online_cluster.wall_s
              << "s (" << static_cast<long>(r.online_cluster.events_per_sec)
              << " ev/s)  grid " << r.grid_sim.wall_s << "s ("
              << static_cast<long>(r.grid_sim.events_per_sec)
              << " ev/s)  rss " << peak_rss_mb() << " MB\n";
  }

  const std::string json = to_json(results, clusters, quick);
  std::cout << json;
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << json;
    if (!f) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cerr << "wrote " << json_path << "\n";
  }
  return failures == 0 ? 0 : 1;
}
