// BENCH_scale — million-job replay throughput of the dynamic engines.
//
// Generates a large synthetic SWF-like trace (workload::make_large_trace,
// Lublin-style bursty arrivals) and replays it online twice per size:
// once through a single OnlineCluster the width of the whole machine
// pool, and once through a 16-cluster GridSim splitting the trace by
// community.  Each phase reports wall time, simulator events/sec and
// jobs/sec; each size reports the process peak RSS plus the replay
// arena's allocator introspection (bytes reserved/peak, block counts)
// and the job store's hot/cold slab footprint.  Every replay is
// validated (nothing left queued/running, record counts match) and the
// binary exits non-zero on any violation, so CI can gate on it.
//
// Memory discipline: the trace is built once into a JobStore (64-byte
// hot rows, no per-job heap), each replay draws every allocation from
// ONE Arena that is reset (blocks kept) between repetitions, and the
// grid phase borrows the store via submit_store — zero job copies on
// the replay path.
//
// The consolidated JSON is the perf-trajectory artifact: CI runs
// `bench_scale --quick --json BENCH_scale.json` and compares the
// throughput numbers against bench/baselines/BENCH_scale.json with
// bench/compare_bench.py (fail on >25% events/sec regression).
//
// Every phase is measured best-of-N (--repeat, default 3): the replay
// is deterministic, so the fastest repetition is the one least disturbed
// by scheduler noise — what a regression gate should compare.
//
// Usage: bench_scale [--quick] [--profile] [--json PATH] [--clusters K]
//                    [--repeat N] [--grid-threads T] [--sizes N,N,...]
//                    [--shard-placement lpt|round-robin]
//
// --grid-threads sets the worker count of the grid_sharded phase (the
// same 16-cluster grid point replayed through sim/shard_sim.h); 0 (the
// default) resolves to min(8, hardware_concurrency).
//
// --sizes overrides the built-in size ladder with an explicit
// comma-separated job-count list.  This is how the big scale point is
// reached without inflating every-commit CI:
//   bench_scale --sizes 10000000 --clusters 64 --repeat 1
// replays ten million jobs through a 64-cluster grid (peak_rss_mb in
// the JSON stays a gated leaf, so a memory blow-up at scale fails the
// run that exercises it).  CI keeps the quick ladder and additionally
// smokes a scaled-down 64-cluster point via --sizes.
//
// --shard-placement selects the cluster->shard strategy of the
// grid_sharded phase (default lpt; round-robin is the legacy layout).
// Placement is outcome-neutral by the determinism contract — this knob
// exists to measure what load-aware placement buys, not to change
// results.
//
// Each size point exports `shard_efficiency` = sharded events/sec over
// serial grid events/sec.  The name deliberately avoids the gated
// *_per_sec suffix: on small runners (or --grid-threads 1) the ratio
// hovers around or below 1 and would flap a throughput gate; it is a
// trajectory metric, read from the uploaded artifacts.
//
// --profile prints the embedded profiler's zone/counter summary to
// stderr; the JSON always carries the zone tree under "profile" (empty
// when the build compiled the profiler out with -DLGS_PROFILING=OFF).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/arena.h"
#include "core/profiler.h"
#include "core/report.h"
#include "sim/grid_sim.h"
#include "sim/online_cluster.h"
#include "sim/shard_sim.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Linux reports ru_maxrss in kilobytes.
double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct PhaseResult {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double jobs_per_sec = 0.0;
  /// Profiler counter deltas over the repetition (identical across reps:
  /// the replay is deterministic), divided by the best wall time to make
  /// the per-phase *_per_sec gate leaves.  Zero when compiled out.
  std::uint64_t dispatch_cycles = 0;
  std::uint64_t routes = 0;
  std::uint64_t arrival_batches = 0;
};

/// Counter delta between two profiler snapshots (0 when compiled out —
/// both snapshots report 0 for every name).
std::uint64_t counter_delta(const prof::Snapshot& before,
                            const prof::Snapshot& after,
                            const char* name) {
  return after.counter(name) - before.counter(name);
}

/// Allocator introspection for one size point: the replay arena's
/// counters after the last repetition plus the trace store's slab
/// footprint.  Exported under "memory" in the JSON; the *_bytes leaves
/// are upper-bound gated by compare_bench.py.
struct MemoryResult {
  std::size_t store_hot_bytes = 0;
  std::size_t store_cold_bytes = 0;
  ArenaStats arena;
};

struct SizeResult {
  std::size_t jobs = 0;
  PhaseResult generate;
  PhaseResult online_cluster;
  PhaseResult grid_sim;
  PhaseResult grid_sharded;
  int shard_threads = 0;  ///< workers used by the grid_sharded phase
  MemoryResult memory;
};

/// Feed arrivals through ONE pending event walking the release-sorted
/// trace — constant event-queue footprint regardless of trace size (the
/// same discipline GridSim::run uses internally).  Submissions are hot
/// store rows: 64 bytes copied per job, never a fat Job.
struct ArrivalPump {
  Simulator& sim;
  OnlineCluster& cluster;
  const JobStore& jobs;
  std::size_t cursor = 0;

  void prime() {
    if (cursor < jobs.size())
      sim.at(jobs[cursor].release, [this] { fire(); }, /*priority=*/-2);
  }
  void fire() {
    const Time now = sim.now();
    while (cursor < jobs.size() && jobs[cursor].release <= now) {
      HotJob h = jobs[cursor++];
      h.release = 0.0;  // submit at the arrival instant, no deferral timer
      cluster.submit_local(h, jobs.tables());
    }
    prime();
  }
};

int failures = 0;

void fail(const std::string& what) {
  std::cerr << "VIOLATION: " << what << "\n";
  ++failures;
}

/// Keep `candidate` when it is the fastest repetition so far.
void keep_best(PhaseResult& best, const PhaseResult& candidate) {
  if (best.wall_s == 0.0 || candidate.wall_s < best.wall_s)
    best = candidate;
}

SizeResult run_size(std::size_t n, int clusters, std::uint64_t seed,
                    int repeat, int grid_threads, ShardPlacement placement) {
  SizeResult res;
  res.jobs = n;

  LargeTraceSpec spec;
  spec.max_procs = 64;
  spec.communities = clusters;  // every cluster gets a community's stream
  spec.target_capacity = clusters * 64;
  spec.load = 0.85;

  JobStore trace;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    trace = make_large_trace_store(n, seed, spec);
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.generate, phase);
  }
  res.memory.store_hot_bytes = trace.hot_bytes();
  res.memory.store_cold_bytes = trace.cold_bytes();

  // One replay arena for every repetition of both phases: reset()
  // between reps keeps the blocks, so after the first rep the engines
  // run with zero allocator traffic.
  Arena arena;

  for (int rep = 0; rep < repeat; ++rep) {
    // Phase: one cluster the width of the whole pool.
    arena.reset();
    Simulator sim{ArenaRef(arena)};
    Cluster desc;
    desc.id = 0;
    desc.name = "pool";
    desc.nodes = spec.target_capacity;
    desc.cpus_per_node = 1;
    OnlineCluster cluster(sim, desc, OnlineCluster::Options{},
                          ArenaRef(arena));
    cluster.reserve_submissions(n);
    ArrivalPump pump{sim, cluster, trace};
    const prof::Snapshot before = prof::snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    pump.prime();
    sim.run();
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    phase.dispatch_cycles =
        counter_delta(before, prof::snapshot(), "cluster.dispatch_cycles");
    phase.events = sim.executed();
    phase.events_per_sec =
        static_cast<double>(sim.executed()) / phase.wall_s;
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.online_cluster, phase);
    if (cluster.queued_jobs() != 0 || cluster.running_local_jobs() != 0)
      fail("online_cluster replay did not drain");
    if (cluster.local_records().size() != n)
      fail("online_cluster lost submissions");
  }

  for (int rep = 0; rep < repeat; ++rep) {
    // Phase: 16-cluster grid borrowing the store (no split, no copies).
    arena.reset();
    GridSimOptions opts;  // isolated routing, FCFS — the throughput bar
    GridSim grid(make_skewed_grid(clusters, 64, /*skew=*/1.0), opts, &arena);
    const prof::Snapshot before = prof::snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    grid.submit_store(trace);
    const GridSimResult result = grid.run();
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    const prof::Snapshot after = prof::snapshot();
    phase.dispatch_cycles =
        counter_delta(before, after, "cluster.dispatch_cycles");
    phase.routes = counter_delta(before, after, "grid.routes");
    phase.arrival_batches =
        counter_delta(before, after, "grid.arrival_batches");
    phase.events = grid.simulator().executed();
    phase.events_per_sec =
        static_cast<double>(phase.events) / phase.wall_s;
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.grid_sim, phase);
    if (result.jobs_completed != static_cast<long>(n))
      fail("grid replay lost submissions");
    for (const std::string& v : validate_grid_result(grid, result))
      fail("grid replay: " + v);
    if (rep + 1 == repeat) res.memory.arena = grid.arena_stats();
  }

  for (int rep = 0; rep < repeat; ++rep) {
    // Phase: the SAME grid point replayed through the sharded engine
    // (sim/shard_sim.h) — isolated routing, no bags, so the static
    // no-barrier strategy fans the clusters out across worker threads.
    // Bit-identical to grid_sim by the determinism contract; this phase
    // measures what the parallelism buys.
    arena.reset();
    GridSimOptions opts;
    ShardGridSim grid(make_skewed_grid(clusters, 64, /*skew=*/1.0), opts,
                      grid_threads, &arena, placement);
    res.shard_threads = grid.shard_count();
    const prof::Snapshot before = prof::snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    grid.submit_store(trace);
    const GridSimResult result = grid.run();
    PhaseResult phase;
    phase.wall_s = seconds_since(t0);
    const prof::Snapshot after = prof::snapshot();
    phase.dispatch_cycles =
        counter_delta(before, after, "cluster.dispatch_cycles");
    phase.routes = counter_delta(before, after, "grid.routes");
    phase.arrival_batches =
        counter_delta(before, after, "grid.arrival_batches");
    phase.events = grid.events_executed();
    phase.events_per_sec =
        static_cast<double>(phase.events) / phase.wall_s;
    phase.jobs_per_sec = static_cast<double>(n) / phase.wall_s;
    keep_best(res.grid_sharded, phase);
    if (result.jobs_completed != static_cast<long>(n))
      fail("sharded grid replay lost submissions");
    for (const std::string& v : validate_grid_result(grid, result))
      fail("sharded grid replay: " + v);
  }

  return res;
}

void phase_json(JsonWriter& w, const char* name, const PhaseResult& p,
                bool with_events) {
  w.key(name).begin_object();
  w.key("wall_s").value(p.wall_s);
  if (with_events) {
    w.key("events").value(static_cast<std::uint64_t>(p.events));
    w.key("events_per_sec").value(p.events_per_sec);
  }
  w.key("jobs_per_sec").value(p.jobs_per_sec);
  // Per-phase profiler counters, normalized by the best wall time —
  // finer-grained gate leaves than raw events/sec (a dispatch-path or
  // routing regression moves these even when the event mix shifts).
  // Emitted only when the profiler is compiled in, so an OFF build's
  // JSON cannot silently gate the leaves against a zeroed numerator.
  if (prof::enabled()) {
    if (p.dispatch_cycles > 0)
      w.key("dispatch_cycles_per_sec")
          .value(static_cast<double>(p.dispatch_cycles) / p.wall_s);
    if (p.routes > 0)
      w.key("routes_per_sec")
          .value(static_cast<double>(p.routes) / p.wall_s);
    if (p.arrival_batches > 0)
      w.key("arrival_batches_per_sec")
          .value(static_cast<double>(p.arrival_batches) / p.wall_s);
  }
  w.end_object();
}

std::string to_json(const std::vector<SizeResult>& results, int clusters,
                    bool quick, ShardPlacement placement) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("scale");
  w.key("quick").value(quick);
  w.key("clusters").value(clusters);
  w.key("shard_placement").value(to_string(placement));
  w.key("sizes").begin_array();
  for (const SizeResult& r : results) {
    w.begin_object();
    w.key("jobs").value(static_cast<std::uint64_t>(r.jobs));
    w.key("phases").begin_object();
    phase_json(w, "generate", r.generate, false);
    phase_json(w, "online_cluster", r.online_cluster, true);
    phase_json(w, "grid_sim", r.grid_sim, true);
    phase_json(w, "grid_sharded", r.grid_sharded, true);
    w.end_object();
    // Worker count of the sharded phase (an input echo, not a gate key:
    // no *_per_sec / *_bytes suffix).
    w.key("shard_threads").value(r.shard_threads);
    // Sharded-over-serial throughput ratio for the SAME grid point.
    // Deliberately NOT named *_per_sec / speedup*: on single-core
    // runners (and --grid-threads 1) the coordinator overhead puts the
    // ratio at or below 1, so gating it would flap — it is a scaling
    // trajectory metric for the uploaded artifacts.
    if (r.grid_sim.events_per_sec > 0.0)
      w.key("shard_efficiency")
          .value(r.grid_sharded.events_per_sec / r.grid_sim.events_per_sec);
    // Allocator introspection: the trace store's slabs and the replay
    // arena's counters after the final grid repetition.  The *_bytes
    // leaves are deterministic for a given (n, seed, spec), so
    // compare_bench.py upper-bound gates them like peak_rss_mb.
    const MemoryResult& m = r.memory;
    w.key("memory").begin_object();
    w.key("store_hot_bytes").value(static_cast<std::uint64_t>(m.store_hot_bytes));
    w.key("store_cold_bytes").value(static_cast<std::uint64_t>(m.store_cold_bytes));
    w.key("arena_reserved_bytes")
        .value(static_cast<std::uint64_t>(m.arena.bytes_reserved));
    w.key("arena_peak_bytes")
        .value(static_cast<std::uint64_t>(m.arena.bytes_peak));
    w.key("arena_blocks").value(static_cast<std::uint64_t>(m.arena.blocks));
    w.key("arena_oversized_blocks")
        .value(static_cast<std::uint64_t>(m.arena.oversized_blocks));
    w.key("arena_resets").value(static_cast<std::uint64_t>(m.arena.resets));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  // ru_maxrss is a process-wide high-water mark, so one honest number
  // for the whole run (dominated by the largest size) instead of a
  // misleading monotone per-size column.
  w.key("peak_rss_mb").value(peak_rss_mb());
  // Whole-run zone tree + counters.  The keys inside deliberately avoid
  // the gated *_per_sec / *_bytes / *_mb suffixes: the profile is an
  // observability artifact, not a gate surface (walls here include every
  // repetition, not best-of-N).
  w.key("profile");
  prof::write_json(w, prof::snapshot());
  w.end_object();
  return w.str();
}

}  // namespace

/// Parse a comma-separated list of positive job counts ("1000,10000000").
/// Returns false on any malformed or non-positive entry.
bool parse_sizes(const std::string& csv, std::vector<std::size_t>* out) {
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) return false;
    std::size_t consumed = 0;
    unsigned long long v = 0;
    try {
      v = std::stoull(item, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != item.size() || v == 0) return false;
    out->push_back(static_cast<std::size_t>(v));
  }
  return !out->empty();
}

int main(int argc, char** argv) {
  bool quick = false;
  bool profile = false;
  int clusters = 16;
  int repeat = 3;
  int grid_threads = 0;  // 0 = auto: min(8, hardware_concurrency)
  ShardPlacement placement = ShardPlacement::kLpt;
  std::vector<std::size_t> explicit_sizes;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      clusters = std::atoi(argv[++i]);
      if (clusters < 1) {
        std::cerr << "error: --clusters must be >= 1\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) {
        std::cerr << "error: --repeat must be >= 1\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--grid-threads") == 0 && i + 1 < argc) {
      grid_threads = std::atoi(argv[++i]);
      if (grid_threads < 0) {
        std::cerr << "error: --grid-threads must be >= 0\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sizes") == 0 && i + 1 < argc) {
      explicit_sizes.clear();
      if (!parse_sizes(argv[++i], &explicit_sizes)) {
        std::cerr << "error: --sizes wants a comma-separated list of "
                     "positive job counts (e.g. 100000,10000000)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shard-placement") == 0 &&
               i + 1 < argc) {
      try {
        placement = shard_placement_from_string(argv[++i]);
      } catch (const std::invalid_argument&) {
        std::cerr << "error: --shard-placement wants lpt or round-robin\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_scale [--quick] [--profile] [--json PATH] "
                   "[--clusters K] [--repeat N] [--grid-threads T] "
                   "[--sizes N,N,...] [--shard-placement lpt|round-robin]\n";
      return 2;
    }
  }
  if (grid_threads == 0)
    grid_threads = static_cast<int>(std::min<unsigned>(
        8, std::max<unsigned>(1, std::thread::hardware_concurrency())));

  // Quick sizes are chosen so the shortest gated phase still runs
  // ~100ms+: long enough that best-of-N throughput is stable under the
  // 25% CI gate tolerance, short enough for every-commit CI.  --sizes
  // replaces the ladder outright (the 10M scale point is opt-in:
  // `--sizes 10000000 --clusters 64 --repeat 1`).
  const std::vector<std::size_t> sizes =
      !explicit_sizes.empty()
          ? explicit_sizes
          : (quick ? std::vector<std::size_t>{100000, 300000}
                   : std::vector<std::size_t>{100000, 1000000});

  std::vector<SizeResult> results;
  for (std::size_t n : sizes) {
    results.push_back(
        run_size(n, clusters, /*seed=*/42, repeat, grid_threads, placement));
    const SizeResult& r = results.back();
    std::cerr << "jobs=" << r.jobs << "  online " << r.online_cluster.wall_s
              << "s (" << static_cast<long>(r.online_cluster.events_per_sec)
              << " ev/s)  grid " << r.grid_sim.wall_s << "s ("
              << static_cast<long>(r.grid_sim.events_per_sec)
              << " ev/s)  sharded[" << r.shard_threads << "t] "
              << r.grid_sharded.wall_s << "s ("
              << static_cast<long>(r.grid_sharded.events_per_sec)
              << " ev/s)  rss " << peak_rss_mb() << " MB\n";
  }

  if (profile) std::cerr << prof::summary(prof::snapshot());

  const std::string json = to_json(results, clusters, quick, placement);
  std::cout << json;
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << json;
    if (!f) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    std::cerr << "wrote " << json_path << "\n";
  }
  return failures == 0 ? 0 : 1;
}
