// Quickstart: schedule a handful of moldable jobs on one cluster with
// every registered scheduling policy and inspect the results.
//
//   $ ./quickstart
//
// Walks through: building jobs with execution-time models, enumerating
// the policy registry (policy/registry.h) and running every policy by
// name on the same workload, scoring each on the §3 criteria, and
// rendering a Gantt chart of the best-makespan schedule on concrete
// processors.
#include <iostream>

#include "core/proc_assign.h"
#include "core/report.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "policy/registry.h"

int main() {
  using namespace lgs;
  const int m = 8;  // one small cluster

  // A mixed submission: two moldable solvers, one stubborn rigid job, a
  // few sequential post-processing tasks.
  JobSet jobs;
  jobs.push_back(Job::moldable(0, ExecModel::amdahl(40.0, 0.05), 1, 8));
  jobs.push_back(Job::moldable(1, ExecModel::power_law(24.0, 0.8), 1, 6));
  jobs.push_back(Job::rigid(2, 4, 5.0));
  jobs.push_back(Job::sequential(3, 6.0));
  jobs.push_back(Job::sequential(4, 3.0, /*release=*/0.0, /*weight=*/4.0));
  jobs.push_back(Job::moldable(5, ExecModel::comm_penalty(30.0, 0.5), 1, 8));

  std::cout << "jobs:\n";
  TextTable jt({"id", "kind", "t(1)", "t(best)", "procs", "weight"});
  for (const Job& j : jobs)
    jt.add_row({fmt(j.id), to_string(j.kind), fmt(j.model.time(1), 2),
                fmt(j.best_time(m), 2),
                fmt(j.min_procs) + ".." + fmt(j.max_procs), fmt(j.weight)});
  std::cout << jt.to_string() << "\n";

  // --- Every registered policy, by name (no hand-rolled list). ----------
  const Time cmax_lb = cmax_lower_bound(jobs, m);
  const double wc_lb = sum_weighted_completion_lower_bound(jobs, m);
  std::cout << "policy registry: " << registered_policy_names().size()
            << " policies (Cmax lower bound " << fmt(cmax_lb, 2)
            << ", Sum wiCi lower bound " << fmt(wc_lb, 2) << ")\n";

  TextTable cmp({"policy", "Cmax", "Sum wiCi", "mean flow", "utilization"});
  std::string best_name;
  Schedule best(m);
  Time best_cmax = kTimeInfinity;
  for (const std::string& name : registered_policy_names()) {
    const Schedule s = make_policy(name)->schedule(jobs, m);
    if (!is_valid(jobs, s)) {
      std::cout << "unexpected: invalid schedule from " << name << "\n";
      return 1;
    }
    const Metrics metrics = compute_metrics(jobs, s);
    cmp.add_row({name, fmt(metrics.cmax, 2), fmt(metrics.sum_weighted, 2),
                 fmt(metrics.mean_flow, 2), fmt(metrics.utilization, 3)});
    if (metrics.cmax < best_cmax) {
      best_cmax = metrics.cmax;
      best_name = name;
      best = s;
    }
  }
  std::cout << cmp.to_string() << "\n";

  // --- The winner on concrete processors. -------------------------------
  std::cout << "best makespan: " << best_name << " at " << fmt(best_cmax, 2)
            << " (ratio " << fmt(best_cmax / cmax_lb, 3) << ")\n";
  if (assign_processors(best)) std::cout << gantt_ascii(best, 70) << "\n";
  std::cout << "every policy above also runs on-line: pass its name as\n"
               "OnlineCluster::Options::policy (sim/online_cluster.h) or\n"
               "sweep it as a GridSweepSpec::policies axis.\n";
  return 0;
}
