// Quickstart: schedule a handful of moldable jobs on one cluster with the
// paper's algorithms and inspect the result.
//
//   $ ./quickstart
//
// Walks through: building jobs with execution-time models, running the MRT
// off-line scheduler (§4.1) and the bi-criteria batch scheduler (§4.4),
// scoring both on the §3 criteria, and rendering a Gantt chart on concrete
// processors.
#include <iostream>

#include "core/proc_assign.h"
#include "core/report.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"

int main() {
  using namespace lgs;
  const int m = 8;  // one small cluster

  // A mixed submission: two moldable solvers, one stubborn rigid job, a
  // few sequential post-processing tasks.
  JobSet jobs;
  jobs.push_back(Job::moldable(0, ExecModel::amdahl(40.0, 0.05), 1, 8));
  jobs.push_back(Job::moldable(1, ExecModel::power_law(24.0, 0.8), 1, 6));
  jobs.push_back(Job::rigid(2, 4, 5.0));
  jobs.push_back(Job::sequential(3, 6.0));
  jobs.push_back(Job::sequential(4, 3.0, /*release=*/0.0, /*weight=*/4.0));
  jobs.push_back(Job::moldable(5, ExecModel::comm_penalty(30.0, 0.5), 1, 8));

  std::cout << "jobs:\n";
  TextTable jt({"id", "kind", "t(1)", "t(best)", "procs", "weight"});
  for (const Job& j : jobs)
    jt.add_row({fmt(j.id), to_string(j.kind), fmt(j.model.time(1), 2),
                fmt(j.best_time(m), 2),
                fmt(j.min_procs) + ".." + fmt(j.max_procs), fmt(j.weight)});
  std::cout << jt.to_string() << "\n";

  // --- Off-line makespan: the MRT two-shelf algorithm (3/2 + ε). --------
  const MrtResult mrt = mrt_schedule(jobs, m);
  std::cout << "MRT (off-line Cmax): makespan " << fmt(mrt.schedule.makespan(), 2)
            << ", lower bound " << fmt(mrt.lower_bound, 2) << ", accepted λ "
            << fmt(mrt.lambda, 2) << "\n";

  Schedule gantt = mrt.schedule;
  if (assign_processors(gantt))
    std::cout << gantt_ascii(gantt, 70) << "\n";

  // --- Bi-criteria batches: good Cmax *and* Σ wᵢCᵢ at once (§4.4). ------
  const Schedule bi = bicriteria_schedule(jobs, m).schedule;
  if (!is_valid(jobs, bi)) {
    std::cout << "unexpected: invalid schedule\n";
    return 1;
  }
  const Metrics mm = compute_metrics(jobs, mrt.schedule);
  const Metrics mb = compute_metrics(jobs, bi);
  TextTable cmp({"criterion", "MRT", "bi-criteria", "lower bound"});
  cmp.add_row({"Cmax", fmt(mm.cmax, 2), fmt(mb.cmax, 2),
               fmt(cmax_lower_bound(jobs, m), 2)});
  cmp.add_row({"Sum wiCi", fmt(mm.sum_weighted, 2), fmt(mb.sum_weighted, 2),
               fmt(sum_weighted_completion_lower_bound(jobs, m), 2)});
  cmp.add_row({"mean flow", fmt(mm.mean_flow, 2), fmt(mb.mean_flow, 2), "-"});
  cmp.add_row({"utilization", fmt(mm.utilization, 3), fmt(mb.utilization, 3),
               "-"});
  std::cout << cmp.to_string() << "\n";
  std::cout << "note how the bi-criteria schedule trades a little makespan "
               "for a much better weighted completion time (the heavy job 4 "
               "finishes early).\n";
  return 0;
}
