// Example: run a small policy sweep on the parallel experiment engine
// and write the JSON report.
//
// Demonstrates the SweepSpec grid (policy × application × seed ×
// machine size), multi-replicate seeding derived from one base seed,
// and the report sink.  See README "Running experiment sweeps".
#include <iostream>

#include "core/report.h"
#include "exp/report_sink.h"
#include "exp/sweep.h"

int main() {
  using namespace lgs;

  SweepSpec spec;
  // Policies by registry name — any registered policy can join the axis.
  spec.policies = {"fcfs-list", "easy-backfill", "mrt-batches",
                   "bi-criteria"};
  spec.apps = {ApplicationClass::kRigidParallel,
               ApplicationClass::kMoldableParallel,
               ApplicationClass::kMixedCampus};
  spec.machine_sizes = {16, 64};
  spec.base_seed = 2004;
  spec.replicates = 3;  // seeds derived via derive_cell_seed(base, r)
  spec.jobs_per_class = 60;

  std::cout << "running " << spec.cell_count() << " cells...\n";
  const SweepResult result = run_sweep(spec);
  std::cout << "done in " << fmt(result.wall_ms, 1) << " ms on "
            << result.threads_used << " threads; "
            << result.violation_count << " violations\n\n";

  // Recommendations of the first replicate on the big machine.
  const std::uint64_t seed = spec.replicate_seeds().front();
  TextTable rec({"application", "Cmax", "SumWC", "max flow"});
  for (const MatrixRow& row : matrix_from_sweep(spec, result, 64, seed))
    rec.add_row({to_string(row.app), row.best_for_cmax, row.best_for_sum_wc,
                 row.best_for_max_flow});
  std::cout << rec.to_string() << "\n";

  // Slowest cells: where does the sweep spend its time?
  const CellResult* slowest = &result.cells.front();
  for (const CellResult& c : result.cells)
    if (c.wall_ms > slowest->wall_ms) slowest = &c;
  std::cout << "slowest cell: " << slowest->cell.policy << " on "
            << to_string(slowest->cell.app) << " (m=" << slowest->cell.machines
            << ") at " << fmt(slowest->wall_ms, 2) << " ms\n";

  write_sweep_report("sweep_report.json", spec, result);
  std::cout << "wrote sweep_report.json\n";
  return result.violation_count == 0 ? 0 : 1;
}
