// Example: planning a multi-parametric campaign as a Divisible Load
// (§2.1 and §5.2: "this kind of jobs are related to the divisible tasks
// model … optimal solutions can be computed in polynomial time").
//
//   $ ./multiparametric_dlt
//
// A campaign of 200,000 short runs is treated as a divisible volume and
// planned on the CIMENT star: closed-form single round, multi-round, work
// stealing, and the steady-state throughput bound.
#include <iostream>

#include "core/report.h"
#include "dlt/dlt.h"
#include "platform/platform.h"

int main() {
  using namespace lgs;

  const LightGrid grid = ciment_grid();
  const DltPlatform star = DltPlatform::from_grid(grid);
  const double volume = 200000.0;  // unit-work runs

  const SteadyState ss = steady_state(star);
  std::cout << "CIMENT as a divisible-load star; campaign volume "
            << fmt(volume) << " unit runs\n";
  std::cout << "steady-state throughput " << fmt(ss.throughput, 2)
            << " runs/s -> horizon bound " << fmt(volume / ss.throughput, 1)
            << " s\n\n";

  TextTable rates({"cluster", "rate (runs/s)", "bound"});
  for (std::size_t i = 0; i < star.workers.size(); ++i) {
    const bool compute_bound =
        ss.rate[i] >= 1.0 / star.workers[i].comp - 1e-9;
    rates.add_row({grid.clusters[i].name, fmt(ss.rate[i], 2),
                   compute_bound ? "compute-bound" : "bandwidth-bound"});
  }
  std::cout << rates.to_string() << "\n";

  TextTable plans({"strategy", "makespan (s)", "vs bound", "shares"});
  const auto emit = [&](const DltPlan& plan) {
    std::string shares;
    for (std::size_t i = 0; i < plan.alpha.size(); ++i) {
      if (i) shares += "/";
      shares += fmt(100.0 * plan.alpha[i] / volume, 0);
    }
    plans.add_row({plan.strategy, fmt(plan.makespan, 1),
                   fmt(plan.makespan / (volume / ss.throughput), 3),
                   shares + " %"});
  };
  emit(single_round_star(star, volume));
  emit(multi_round(star, volume, 5, 2.0));
  emit(work_stealing(star, volume, volume / 500.0, ChunkPolicy::kGuided));
  std::cout << plans.to_string() << "\n";

  std::cout << "the single-round plan is the §5.2 'optimal in polynomial "
               "time' solution; work stealing gets close without knowing "
               "any rates, which is why CiGri uses best-effort dynamic "
               "distribution in practice.\n";
  return 0;
}
