// Example: operating the CIMENT light grid (§5.2) on the multi-cluster
// engine (sim/grid_sim).
//
//   $ ./example_ciment_grid
//
// Four communities submit their usual workloads to their own clusters
// (§1.2 submission rules: local priority files, untouched habits).  A
// medical-research parameter sweep of 20,000 runs is submitted to the
// central server and trickles onto idle processors as killable
// best-effort jobs, while the decentralized routing policies are
// compared side by side.  The example checks the guarantee the paper
// promises: local users keep the exact same schedule whether or not the
// grid campaign runs.
#include <iostream>

#include "core/report.h"
#include "core/rng.h"
#include "sim/grid_sim.h"
#include "workload/generators.h"

namespace {

using namespace lgs;

std::vector<JobSet> community_locals() {
  Rng rng(7);
  std::vector<JobSet> locals(4);
  locals[0] = make_community_workload(Community::kNumericalPhysics, 20, rng,
                                      0, 0.05, 48.0);
  locals[1] = make_community_workload(Community::kAstrophysics, 16, rng, 100,
                                      0.05, 48.0);
  locals[2] = make_community_workload(Community::kComputerScience, 40, rng,
                                      200, 0.05, 48.0);
  locals[3] = make_community_workload(Community::kMedicalResearch, 16, rng,
                                      300, 0.05, 48.0);
  return locals;
}

/// One full engine run; the engine is returned alongside the result so
/// the non-disturbance check can inspect per-cluster records afterwards.
struct RunOutcome {
  std::unique_ptr<GridSim> sim;
  GridSimResult result;
};

RunOutcome run_once(const LightGrid& grid, GridRouting routing,
                    bool with_campaign,
                    const std::string& policy = "fcfs-list") {
  GridSimOptions opts;
  opts.routing = routing;
  opts.cluster.policy = policy;  // queue policy, by registry name
  opts.wait_threshold = 2.0;
  opts.migration_penalty = 0.1;
  if (with_campaign)
    opts.bags.push_back(ParametricBag{"protein-screen", 20000, 0.1, 2, 1.0});
  RunOutcome out;
  out.sim = std::make_unique<GridSim>(grid, opts);
  out.sim->submit_workloads(community_locals());
  out.result = out.sim->run();
  return out;
}

/// The §5.2 non-disturbance property: identical local records with and
/// without the grid campaign.
bool local_unaffected(const GridSim& with, const GridSim& without) {
  if (with.cluster_count() != without.cluster_count()) return false;
  for (std::size_t i = 0; i < with.cluster_count(); ++i) {
    const auto& a = with.cluster(i).local_records();
    const auto& b = without.cluster(i).local_records();
    if (a.size() != b.size()) return false;
    for (std::size_t k = 0; k < a.size(); ++k)
      if (a[k].id != b[k].id || !almost_equal(a[k].submit, b[k].submit) ||
          !almost_equal(a[k].start, b[k].start) ||
          !almost_equal(a[k].finish, b[k].finish))
        return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace lgs;

  const LightGrid grid = ciment_grid();
  std::cout << grid.inventory() << "\n";
  std::cout << "grid campaign: 20000 runs of 0.1 units each\n\n";

  // Per-cluster view under isolated routing (the paper's baseline).
  const RunOutcome with_campaign = run_once(grid, GridRouting::kIsolated, true);
  const GridSimResult& res = with_campaign.result;
  TextTable table({"cluster", "local wait", "local slowdown", "util local",
                   "util total", "BE done", "BE killed", "wasted"});
  for (std::size_t i = 0; i < res.clusters.size(); ++i) {
    const GridClusterOutcome& c = res.clusters[i];
    table.add_row({grid.clusters[i].name, fmt(c.local_mean_wait, 2),
                   fmt(c.local_mean_slowdown, 2),
                   fmt(c.utilization_local, 3), fmt(c.utilization_total, 3),
                   fmt(c.be.completed), fmt(c.be.killed),
                   fmt(c.be.wasted_time, 1)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "campaign: " << res.grid_runs_completed << "/"
            << res.grid_runs_total << " runs completed, "
            << res.grid_resubmissions << " resubmissions after kills\n\n";

  // Routing comparison, campaign running throughout.
  TextTable routes({"routing", "mean flow", "mean wait", "migrations",
                    "global util"});
  for (GridRouting r :
       {GridRouting::kIsolated, GridRouting::kThreshold,
        GridRouting::kEconomic, GridRouting::kGlobalPlan}) {
    const GridSimResult rr = run_once(grid, r, true).result;
    routes.add_row({to_string(r), fmt(rr.mean_flow, 3), fmt(rr.mean_wait, 3),
                    fmt(rr.migrations), fmt(rr.global_utilization, 3)});
  }
  std::cout << routes.to_string() << "\n";

  // Submission-system comparison: any registered queue policy can drive
  // each cluster's dispatch (isolated routing, campaign running).
  TextTable pols({"queue policy", "mean flow", "mean wait", "mean slowdown",
                  "global util"});
  for (const char* policy :
       {"fcfs-list", "easy-backfill", "conservative-bf", "mrt-batches"}) {
    const GridSimResult rr =
        run_once(grid, GridRouting::kIsolated, true, policy).result;
    pols.add_row({policy, fmt(rr.mean_flow, 3), fmt(rr.mean_wait, 3),
                  fmt(rr.mean_slowdown, 3), fmt(rr.global_utilization, 3)});
  }
  std::cout << pols.to_string() << "\n";

  // Non-disturbance check: rerun isolated without the campaign and
  // compare every local record.
  const RunOutcome without_campaign =
      run_once(grid, GridRouting::kIsolated, false);
  const bool unaffected =
      local_unaffected(*with_campaign.sim, *without_campaign.sim);
  std::cout << "local schedules identical to a grid-free run: "
            << (unaffected ? "YES" : "NO — BUG") << "\n";
  return unaffected ? 0 : 1;
}
