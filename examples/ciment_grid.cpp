// Example: operating the CIMENT light grid (§5.2, centralized vision).
//
//   $ ./ciment_grid
//
// Four communities submit their usual workloads to their own clusters
// (§1.2 submission rules: local priority files, untouched habits).  A
// medical-research parameter sweep of 20,000 runs is submitted to the
// central server and trickles onto idle processors as killable
// best-effort jobs.  The example prints the guarantees the paper promises:
// local users keep the exact same schedule, the grid work still completes.
#include <iostream>

#include "core/report.h"
#include "core/rng.h"
#include "grid/besteffort.h"
#include "workload/generators.h"

int main() {
  using namespace lgs;

  const LightGrid grid = ciment_grid();
  std::cout << grid.inventory() << "\n";

  Rng rng(7);
  std::vector<JobSet> locals(4);
  locals[0] = make_community_workload(Community::kNumericalPhysics, 20, rng,
                                      0, 0.05, 48.0);
  locals[1] = make_community_workload(Community::kAstrophysics, 16, rng, 100,
                                      0.05, 48.0);
  locals[2] = make_community_workload(Community::kComputerScience, 40, rng,
                                      200, 0.05, 48.0);
  locals[3] = make_community_workload(Community::kMedicalResearch, 16, rng,
                                      300, 0.05, 48.0);

  const ParametricBag campaign{"protein-screen", 20000, 0.1, 2, 1.0};
  std::cout << "grid campaign: " << campaign.runs << " runs of "
            << fmt(campaign.run_time) << " units each\n\n";

  const CentralizedResult res = run_centralized(grid, locals, {campaign});

  TextTable table({"cluster", "local wait", "local slowdown", "util local",
                   "util total", "BE done", "BE killed", "wasted"});
  for (std::size_t i = 0; i < res.clusters.size(); ++i) {
    const ClusterOutcome& c = res.clusters[i];
    table.add_row({grid.clusters[i].name, fmt(c.local_mean_wait, 2),
                   fmt(c.local_mean_slowdown, 2),
                   fmt(c.utilization_local, 3), fmt(c.utilization_total, 3),
                   fmt(c.be.completed), fmt(c.be.killed),
                   fmt(c.be.wasted_time, 1)});
  }
  std::cout << table.to_string() << "\n";

  std::cout << "campaign: " << res.grid_runs_completed << "/"
            << res.grid_runs_total << " runs completed, "
            << res.grid_resubmissions << " resubmissions after kills\n";
  std::cout << "local schedules identical to a grid-free run: "
            << (res.local_unaffected ? "YES" : "NO — BUG") << "\n";
  return res.local_unaffected ? 0 : 1;
}
