// Example: an on-line scheduling session (§4.2) — jobs arrive over time,
// the cluster schedules them in batches with the MRT algorithm inside,
// and we compare against plain FCFS and the bi-criteria scheduler.
//
//   $ ./online_batches [seed]
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/allotment.h"
#include "pt/batch.h"
#include "pt/bicriteria.h"
#include "pt/rigid_list.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace lgs;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1u;
  const int m = 32;

  Rng rng(seed);
  MoldableWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 16;
  spec.sequential_fraction = 0.3;
  spec.arrival_window = 40.0;  // on-line: jobs trickle in
  const JobSet jobs = make_moldable_workload(spec, rng);
  std::cout << "on-line session: " << jobs.size() << " jobs over "
            << fmt(spec.arrival_window) << " time units, m = " << m << "\n\n";

  // 1. The paper's on-line scheduler: batches around MRT (3 + ε).
  const BatchResult batches = online_moldable_schedule(jobs, m);
  // 2. Naive FCFS with a-priori allotments.
  const Schedule fcfs = list_schedule_rigid(
      fix_canonical(jobs, cmax_lower_bound(jobs, m), m), m);
  // 3. Bi-criteria doubling batches.
  const Schedule bi = bicriteria_schedule(jobs, m).schedule;

  const Metrics mb = compute_metrics(jobs, batches.schedule);
  const Metrics mf = compute_metrics(jobs, fcfs);
  const Metrics mx = compute_metrics(jobs, bi);
  const Time lb = cmax_lower_bound(jobs, m);
  const double wlb = sum_weighted_completion_lower_bound(jobs, m);

  TextTable table({"scheduler", "Cmax (ratio)", "SumWC (ratio)", "mean flow",
                   "max flow"});
  const auto row = [&](const char* name, const Metrics& metrics) {
    table.add_row({name,
                   fmt(metrics.cmax, 1) + " (" + fmt(metrics.cmax / lb, 2) + ")",
                   fmt(metrics.sum_weighted, 0) + " (" +
                       fmt(metrics.sum_weighted / wlb, 2) + ")",
                   fmt(metrics.mean_flow, 1), fmt(metrics.max_flow, 1)});
  };
  row("MRT batches (3+eps)", mb);
  row("FCFS list", mf);
  row("bi-criteria", mx);
  std::cout << table.to_string() << "\n";
  std::cout << "MRT ran " << batches.batches
            << " batches; each batch is an off-line 3/2+eps problem "
               "(Shmoys' doubling argument gives the on-line factor 2).\n";
  return 0;
}
