// Example: replay a Standard Workload Format trace through the paper's
// schedulers — offline on one cluster, then online across a whole light
// grid (sim/grid_sim) with the trace split by community.
//
//   $ ./example_trace_replay [trace.swf] [machines]
//
// Without arguments a small synthetic trace is generated, so the example
// runs self-contained; point it at any Parallel Workloads Archive trace
// to replay real submissions.
#include <cstdlib>
#include <iostream>

#include "core/proc_assign.h"
#include "core/report.h"
#include "core/rng.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/backfill.h"
#include "pt/rigid_list.h"
#include "sim/grid_sim.h"
#include "workload/generators.h"
#include "workload/swf.h"

int main(int argc, char** argv) {
  using namespace lgs;

  int m = argc > 2 ? std::atoi(argv[2]) : 64;
  JobSet jobs;
  SwfParseStats stats;
  if (argc > 1) {
    SwfOptions opts;
    opts.max_jobs = 500;  // keep the replay snappy
    jobs = load_swf_file(argv[1], opts, &stats);
    std::cout << "loaded " << jobs.size() << " jobs from " << argv[1]
              << " (" << stats.dropped_invalid
              << " invalid lines dropped)\n";
  } else {
    // Synthesize a trace, write it out, read it back — demonstrating the
    // round trip a real archive trace would take.
    Rng rng(99);
    RigidWorkloadSpec spec;
    spec.count = 200;
    spec.max_procs = 16;
    spec.arrival_window = 120.0;
    JobSet synthetic = make_rigid_workload(spec, rng);
    // Scatter the jobs over a few user communities so the grid replay
    // below has something to split on.
    for (Job& j : synthetic)
      j.community = static_cast<int>(j.id % 4);
    const std::string path = "/tmp/lgs_synthetic.swf";
    write_file(path, to_swf(synthetic, nullptr, "synthetic lgs trace"));
    jobs = load_swf_file(path, {}, &stats);
    std::cout << "synthesized " << jobs.size() << " jobs (round-tripped "
              << "through " << path << ", " << stats.dropped_invalid
              << " dropped)\n";
  }
  for (const Job& j : jobs)
    if (j.min_procs > m) m = j.min_procs;  // widen for oversized trace jobs

  const Time lb = cmax_lower_bound(jobs, m);
  TextTable table({"scheduler", "Cmax", "ratio", "mean wait", "max slowdown"});
  const auto score = [&](const char* name, const Schedule& s) {
    if (!is_valid(jobs, s)) {
      std::cout << "invalid schedule from " << name << "!\n";
      return;
    }
    const Metrics metrics = compute_metrics(jobs, s);
    double wait = 0;
    for (const Job& j : jobs)
      wait += s.find(j.id)->start - j.release;
    table.add_row({name, fmt(metrics.cmax, 1), fmt(metrics.cmax / lb, 3),
                   fmt(wait / jobs.size(), 2), fmt(metrics.max_slowdown, 1)});
  };
  score("strict FCFS",
        list_schedule_rigid(jobs, m, {ListOrder::kSubmission, true}));
  score("EASY backfilling", easy_backfill(jobs, m));
  score("conservative bf", conservative_backfill(jobs, m));
  std::cout << "\noffline replay on " << m
            << " processors (Cmax lower bound " << fmt(lb, 1) << "):\n"
            << table.to_string() << "\n";

  // Online grid replay: split the trace across a 3-cluster heterogeneous
  // grid by community (each user community keeps its home cluster) and
  // compare routing × queue policy on the multi-cluster engine — the
  // queue policy is any registry name, the same roster as offline.
  const LightGrid grid = make_skewed_grid(3, m, 2.0);
  std::cout << "grid replay on " << grid.clusters.size()
            << " clusters (skew 2.0, " << grid.total_processors()
            << " processors total), trace split by community:\n";
  TextTable gtable({"routing", "queue policy", "mean flow", "mean wait",
                    "migrations", "global util"});
  for (GridRouting r :
       {GridRouting::kIsolated, GridRouting::kEconomic,
        GridRouting::kGlobalPlan}) {
    for (const char* policy : {"fcfs-list", "easy-backfill"}) {
      GridSimOptions opts;
      opts.routing = r;
      opts.cluster.policy = policy;
      GridSim sim(grid, opts);
      sim.submit_workloads(split_by_community(jobs, grid.clusters.size()));
      const GridSimResult res = sim.run();
      gtable.add_row({to_string(r), policy, fmt(res.mean_flow, 2),
                      fmt(res.mean_wait, 2), fmt(res.migrations),
                      fmt(res.global_utilization, 3)});
    }
  }
  std::cout << gtable.to_string() << "\n";

  // Export the conservative schedule for inspection.
  Schedule best = conservative_backfill(jobs, m);
  write_file("/tmp/lgs_replay.swf", to_swf(jobs, &best, "lgs replay"));
  if (m <= 64 && assign_processors(best))
    write_file("/tmp/lgs_replay.svg", gantt_svg(best));
  std::cout << "wrote /tmp/lgs_replay.swf"
            << (m <= 64 ? " and /tmp/lgs_replay.svg" : "") << "\n";
  return 0;
}
