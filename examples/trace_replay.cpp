// Example: replay a Standard Workload Format trace through the paper's
// schedulers and export the result as SWF + SVG.
//
//   $ ./trace_replay [trace.swf] [machines]
//
// Without arguments a small synthetic trace is generated, so the example
// runs self-contained; point it at any Parallel Workloads Archive trace
// to replay real submissions.
#include <cstdlib>
#include <iostream>

#include "core/proc_assign.h"
#include "core/report.h"
#include "core/rng.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/backfill.h"
#include "pt/rigid_list.h"
#include "workload/generators.h"
#include "workload/swf.h"

int main(int argc, char** argv) {
  using namespace lgs;

  int m = argc > 2 ? std::atoi(argv[2]) : 64;
  JobSet jobs;
  if (argc > 1) {
    SwfOptions opts;
    opts.max_jobs = 500;  // keep the replay snappy
    jobs = load_swf_file(argv[1], opts);
    std::cout << "loaded " << jobs.size() << " jobs from " << argv[1]
              << "\n";
  } else {
    // Synthesize a trace, write it out, read it back — demonstrating the
    // round trip a real archive trace would take.
    Rng rng(99);
    RigidWorkloadSpec spec;
    spec.count = 200;
    spec.max_procs = 16;
    spec.arrival_window = 120.0;
    const JobSet synthetic = make_rigid_workload(spec, rng);
    const std::string path = "/tmp/lgs_synthetic.swf";
    write_file(path, to_swf(synthetic, nullptr, "synthetic lgs trace"));
    jobs = load_swf_file(path);
    std::cout << "synthesized " << jobs.size() << " jobs (round-tripped "
              << "through " << path << ")\n";
  }
  for (const Job& j : jobs)
    if (j.min_procs > m) m = j.min_procs;  // widen for oversized trace jobs

  const Time lb = cmax_lower_bound(jobs, m);
  TextTable table({"scheduler", "Cmax", "ratio", "mean wait", "max slowdown"});
  const auto score = [&](const char* name, const Schedule& s) {
    if (!is_valid(jobs, s)) {
      std::cout << "invalid schedule from " << name << "!\n";
      return;
    }
    const Metrics metrics = compute_metrics(jobs, s);
    double wait = 0;
    for (const Job& j : jobs)
      wait += s.find(j.id)->start - j.release;
    table.add_row({name, fmt(metrics.cmax, 1), fmt(metrics.cmax / lb, 3),
                   fmt(wait / jobs.size(), 2), fmt(metrics.max_slowdown, 1)});
  };
  score("strict FCFS",
        list_schedule_rigid(jobs, m, {ListOrder::kSubmission, true}));
  score("EASY backfilling", easy_backfill(jobs, m));
  score("conservative bf", conservative_backfill(jobs, m));
  std::cout << "\nreplay on " << m << " processors (Cmax lower bound "
            << fmt(lb, 1) << "):\n"
            << table.to_string() << "\n";

  // Export the conservative schedule for inspection.
  Schedule best = conservative_backfill(jobs, m);
  write_file("/tmp/lgs_replay.swf", to_swf(jobs, &best, "lgs replay"));
  if (m <= 64 && assign_processors(best))
    write_file("/tmp/lgs_replay.svg", gantt_svg(best));
  std::cout << "wrote /tmp/lgs_replay.swf"
            << (m <= 64 ? " and /tmp/lgs_replay.svg" : "") << "\n";
  return 0;
}
