// Failure injection: node volatility (§1, "some nodes can appear or
// disappear") on the on-line cluster engine.
#include <gtest/gtest.h>

#include <deque>

#include "core/rng.h"
#include "sim/online_cluster.h"

namespace lgs {
namespace {

Cluster small_cluster(int nodes) {
  return {0, "volatile", nodes, 1, 1.0, Interconnect::kGigabitEthernet,
          "Linux", 0};
}

TEST(Volatility, ShrinkPreemptsAndRestartsLocalJob) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(4));
  cluster.submit_local(Job::rigid(0, 4, 10.0));
  // Half the machine disappears at t = 3.
  sim.at(3.0, [&] { cluster.set_capacity(2); });
  // And comes back at t = 5.
  sim.at(5.0, [&] { cluster.set_capacity(4); });
  sim.run();
  const auto& recs = cluster.local_records();
  ASSERT_EQ(recs.size(), 1u);
  // Restarted at 5 from scratch: finishes at 15.
  EXPECT_DOUBLE_EQ(recs[0].finish, 15.0);
  EXPECT_EQ(cluster.volatility_stats().local_preemptions, 1);
  EXPECT_DOUBLE_EQ(cluster.volatility_stats().local_wasted, 4 * 3.0);
}

// Regression: with EASY backfilling on, a capacity shrink below the queue
// head's width used to crash dispatch() — the shadow reservation asked the
// availability profile (sized by current capacity) for more processors
// than it has.  The head must instead wait for capacity to return.
TEST(Volatility, ShrinkBelowHeadWidthWithEasyBackfill) {
  Simulator sim;
  OnlineCluster::Options opts;
  opts.policy = "easy-backfill";
  OnlineCluster cluster(sim, small_cluster(4), opts);
  cluster.submit_local(Job::rigid(0, 4, 10.0));  // running, full machine
  cluster.submit_local(Job::rigid(1, 4, 5.0));   // queued head, full width
  cluster.submit_local(Job::sequential(2, 2.0)); // narrow candidate
  sim.at(3.0, [&] { cluster.set_capacity(2); });
  sim.at(6.0, [&] { cluster.set_capacity(4); });
  sim.run();
  const auto& recs = cluster.local_records();
  ASSERT_EQ(recs.size(), 3u);
  for (const LocalJobRecord& r : recs) EXPECT_GT(r.finish, 0.0);
  EXPECT_EQ(cluster.volatility_stats().local_preemptions, 1);
}

TEST(Volatility, BestEffortEvictedBeforeLocalJobs) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(4));
  std::deque<Time> bag(2, 100.0);
  long be_kills = 0;
  BestEffortSource src;
  src.request = [&](int k) {
    std::vector<Time> out;
    while (static_cast<int>(out.size()) < k && !bag.empty()) {
      out.push_back(bag.front());
      bag.pop_front();
    }
    return out;
  };
  src.on_kill = [&](Time d) {
    bag.push_front(d);
    ++be_kills;
  };
  src.on_done = [] {};
  cluster.submit_local(Job::rigid(0, 2, 20.0));  // 2 procs local
  cluster.set_besteffort_source(std::move(src)); // 2 procs best-effort
  sim.at(5.0, [&] { cluster.set_capacity(2); }); // lose half the machine
  sim.run(30.0);
  EXPECT_EQ(be_kills, 2) << "both grid runs die before any local job";
  EXPECT_EQ(cluster.volatility_stats().local_preemptions, 0);
  EXPECT_DOUBLE_EQ(cluster.local_records()[0].finish, 20.0);
}

TEST(Volatility, GrowthDispatchesWaitingJob) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(4));
  sim.at(0.0, [&] { cluster.set_capacity(1); });
  cluster.submit_local(Job::rigid(0, 4, 2.0));  // cannot run on 1 proc
  sim.at(7.0, [&] { cluster.set_capacity(4); });
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.local_records()[0].start, 7.0);
}

TEST(Volatility, RejectsBadCapacity) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(4));
  EXPECT_THROW(cluster.set_capacity(0), std::invalid_argument);
  EXPECT_THROW(cluster.set_capacity(5), std::invalid_argument);
}

// Property: under random capacity churn every submitted job still
// completes, and accounting stays consistent.
class VolatilityChurn : public ::testing::TestWithParam<int> {};

TEST_P(VolatilityChurn, AllJobsSurviveChurn) {
  Rng rng(GetParam());
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(8));
  const int jobs = 30;
  for (int i = 0; i < jobs; ++i) {
    Job j = Job::rigid(static_cast<JobId>(i),
                       static_cast<int>(rng.uniform_int(1, 4)),
                       rng.uniform(0.5, 4.0), rng.uniform(0.0, 20.0));
    cluster.submit_local(j);
  }
  // Random capacity changes, never below the widest job (4).
  for (int c = 0; c < 15; ++c) {
    const Time when = rng.uniform(0.0, 40.0);
    const int cap = static_cast<int>(rng.uniform_int(4, 8));
    sim.at(when, [&cluster, cap] { cluster.set_capacity(cap); });
  }
  sim.run();
  const auto& recs = cluster.local_records();
  ASSERT_EQ(recs.size(), static_cast<std::size_t>(jobs));
  for (const LocalJobRecord& r : recs) {
    EXPECT_GT(r.finish, 0.0) << "job " << r.id << " never completed";
    EXPECT_GE(r.start, r.submit - kTimeEps);
    EXPECT_GT(r.finish, r.start);
  }
  EXPECT_GE(cluster.volatility_stats().capacity_changes, 15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolatilityChurn,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lgs
