// Unit tests for the job model (core/job.h).
#include <gtest/gtest.h>

#include "core/job.h"

namespace lgs {
namespace {

TEST(Job, RigidConstructor) {
  const Job j = Job::rigid(3, 4, 12.5, 2.0, 1.5);
  EXPECT_EQ(j.id, 3u);
  EXPECT_EQ(j.kind, JobKind::kRigid);
  EXPECT_EQ(j.min_procs, 4);
  EXPECT_EQ(j.max_procs, 4);
  EXPECT_DOUBLE_EQ(j.time(4), 12.5);
  EXPECT_DOUBLE_EQ(j.work(4), 50.0);
  EXPECT_DOUBLE_EQ(j.release, 2.0);
  EXPECT_DOUBLE_EQ(j.weight, 1.5);
}

TEST(Job, SequentialConstructor) {
  const Job j = Job::sequential(1, 8.0);
  EXPECT_EQ(j.min_procs, 1);
  EXPECT_EQ(j.max_procs, 1);
  EXPECT_DOUBLE_EQ(j.best_time(128), 8.0);
}

TEST(Job, MoldableBestTime) {
  const Job j = Job::moldable(0, ExecModel::power_law(32.0, 1.0), 1, 8);
  EXPECT_DOUBLE_EQ(j.best_time(4), 8.0);   // clamped by machine
  EXPECT_DOUBLE_EQ(j.best_time(64), 4.0);  // clamped by max_procs
}

TEST(Job, TimeRejectsOutOfRangeAllotment) {
  const Job j = Job::moldable(0, ExecModel::power_law(32.0, 1.0), 2, 8);
  EXPECT_THROW(j.time(1), std::invalid_argument);
  EXPECT_THROW(j.time(9), std::invalid_argument);
  EXPECT_NO_THROW(j.time(2));
}

TEST(Job, MinWorkUsesSmallestAllotment) {
  // Amdahl work increases with procs, so min work is at min_procs.
  const Job j = Job::moldable(0, ExecModel::amdahl(10.0, 0.5), 2, 8);
  EXPECT_DOUBLE_EQ(j.min_work(), 2 * j.time(2));
}

TEST(JobSet, TotalMinWorkAndMaxRelease) {
  JobSet jobs;
  jobs.push_back(Job::sequential(0, 4.0, 1.0));
  jobs.push_back(Job::rigid(1, 2, 3.0, 5.0));
  EXPECT_DOUBLE_EQ(total_min_work(jobs), 4.0 + 6.0);
  EXPECT_DOUBLE_EQ(max_release(jobs), 5.0);
  EXPECT_DOUBLE_EQ(max_release({}), 0.0);
}

TEST(JobSet, CheckJobsetAcceptsValid) {
  JobSet jobs = {Job::sequential(0, 1.0), Job::rigid(1, 4, 2.0)};
  EXPECT_NO_THROW(check_jobset(jobs, 8));
}

TEST(JobSet, CheckJobsetRejections) {
  EXPECT_THROW(check_jobset({Job::rigid(0, 9, 1.0)}, 8),
               std::invalid_argument);  // wider than machine
  Job bad_release = Job::sequential(0, 1.0);
  bad_release.release = -1.0;
  EXPECT_THROW(check_jobset({bad_release}, 8), std::invalid_argument);
  Job bad_weight = Job::sequential(0, 1.0);
  bad_weight.weight = -2.0;
  EXPECT_THROW(check_jobset({bad_weight}, 8), std::invalid_argument);
  Job bad_range = Job::moldable(0, ExecModel::sequential(1.0), 3, 2);
  EXPECT_THROW(check_jobset({bad_range}, 8), std::invalid_argument);
  Job rigid_range = Job::rigid(0, 2, 1.0);
  rigid_range.max_procs = 4;  // rigid must have degenerate range
  EXPECT_THROW(check_jobset({rigid_range}, 8), std::invalid_argument);
  Job no_id;
  EXPECT_THROW(check_jobset({no_id}, 8), std::invalid_argument);
  EXPECT_THROW(check_jobset({}, 0), std::invalid_argument);
}

TEST(JobKind, ToString) {
  EXPECT_STREQ(to_string(JobKind::kRigid), "rigid");
  EXPECT_STREQ(to_string(JobKind::kMoldable), "moldable");
  EXPECT_STREQ(to_string(JobKind::kMalleable), "malleable");
}

}  // namespace
}  // namespace lgs
