// A user registration that grabs a built-in policy name must not leave
// the registry half-poisoned (policy/registry.h).  This binary's static
// initializer registers "fcfs-list" before the lazy built-in
// registration can run; every registry accessor must then report the
// same clear diagnosis — not a misleading duplicate error from a
// re-run, half-finished built-in registration.
//
// Deliberately a separate test binary: the collision is process-wide by
// design, so it cannot share a process with the working-registry tests.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "policy/registry.h"

namespace lgs {
namespace {

class Imposter : public SchedulingPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "fcfs-list";
    return n;
  }
  Schedule schedule(const JobSet&, int m) const override {
    return Schedule(m);
  }
  std::unique_ptr<QueuePolicy> make_queue_policy() const override {
    return nullptr;
  }
};

LGS_REGISTER_POLICY(imposter, "fcfs-list",
                    [] { return std::make_unique<Imposter>(); });

// A user-vs-user duplicate must not std::terminate before main() either:
// the second registration defers its error to the same diagnosis.
LGS_REGISTER_POLICY(dup_a, "dup-policy",
                    [] { return std::make_unique<Imposter>(); });
LGS_REGISTER_POLICY(dup_b, "dup-policy",
                    [] { return std::make_unique<Imposter>(); });

TEST(RegistryCollision, BuiltinNameCollisionIsDiagnosedOnEveryAccess) {
  // Repeated access must yield the same diagnosis (no retry, no
  // "policy 'fcfs-list' already registered" from a half-done re-run).
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      registered_policy_names();
      FAIL() << "the built-in name collision must surface";
    } catch (const std::logic_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("fcfs-list"), std::string::npos) << what;
      EXPECT_NE(what.find("built-in"), std::string::npos) << what;
      EXPECT_NE(what.find("user registration"), std::string::npos) << what;
      // The user-vs-user duplicate is part of the same diagnosis.
      EXPECT_NE(what.find("dup-policy"), std::string::npos) << what;
    }
  }
  EXPECT_THROW(make_policy("easy-backfill"), std::logic_error);
  EXPECT_THROW(make_queue_policy("mrt-batches"), std::logic_error);
  EXPECT_THROW(is_registered_policy("fcfs-list"), std::logic_error);
}

}  // namespace
}  // namespace lgs
