// Streaming service mode (sim/stream_sim.h): live ingestion over the
// bounded SPSC pipeline must replay BIT-IDENTICAL to the batch engine —
// the same pinned golden digests — including across a mid-stream
// checkpoint/restore split, under real producer-thread backpressure,
// and with the NDJSON sink observing every completion exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "grid_golden_scenarios.h"
#include "sim/stream_sim.h"

namespace lgs {
namespace {

/// The golden workload as a store plus the exact order the batch engine
/// routes it: grouped by home cluster (community % n, store order
/// within each group), then stably sorted by effective release — the
/// order a live submission front-end would naturally produce.
struct GoldenStream {
  JobStore store;
  std::vector<HotJob> feed;  ///< rows in batch route order
};

GoldenStream golden_stream(std::size_t clusters) {
  GoldenStream gs{to_job_store(golden_workload()), {}};
  ArenaVec<GridPending> pending;
  group_pending_by_home(gs.store, clusters, pending);
  std::vector<std::uint32_t> order(pending.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return effective_grid_release(
                                gs.store[pending[a].index].release) <
                            effective_grid_release(
                                gs.store[pending[b].index].release);
                   });
  gs.feed.reserve(order.size());
  for (const std::uint32_t i : order)
    gs.feed.push_back(gs.store[pending[i].index]);
  return gs;
}

/// Streaming-capable golden scenarios (kGlobalPlan needs the whole
/// trace up front and is rejected by begin_streaming).
std::vector<std::size_t> streamable_scenarios() { return {0, 1, 2}; }

TEST(StreamSim, MatchesBatchGoldenDigests) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const auto scenarios = golden_scenarios();
  const auto digests = golden_digests();
  const GoldenStream gs = golden_stream(4);
  for (const std::size_t i : streamable_scenarios()) {
    StreamGridSim::Options sopts;
    sopts.ring_capacity = gs.feed.size() + 1;
    sopts.batch = 37;  // odd batch: ingestion splits must not matter
    StreamGridSim svc(make_skewed_grid(4, 24, 2.0),
                      golden_options(scenarios[i]), sopts, nullptr);
    svc.push_n(gs.feed.data(), gs.feed.size());
    svc.close();
    const GridSimResult res = svc.serve(gs.store.tables());
    EXPECT_EQ(digest_grid_result(svc.grid_sim(), res), digests[i].digest)
        << scenarios[i].name;
  }
}

TEST(StreamSim, GlobalPlanRoutingIsRejected) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[3];
  ASSERT_EQ(sc.routing, GridRouting::kGlobalPlan);
  StreamGridSim svc(make_skewed_grid(4, 24, 2.0), golden_options(sc), {},
                    nullptr);
  const GoldenStream gs = golden_stream(4);
  svc.push(gs.feed[0]);
  EXPECT_THROW(svc.poll(gs.store.tables()), std::invalid_argument);
}

TEST(StreamSim, BackpressureUnderRealProducerThread) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const auto scenarios = golden_scenarios();
  const auto digests = golden_digests();
  const GoldenStream gs = golden_stream(4);
  StreamGridSim::Options sopts;
  sopts.ring_capacity = 4;  // tiny ring: the producer blocks constantly
  sopts.batch = 3;
  StreamGridSim svc(make_skewed_grid(4, 24, 2.0),
                    golden_options(scenarios[0]), sopts, nullptr);
  std::thread producer([&] {
    for (const HotJob& h : gs.feed) svc.push(h);
    svc.close();
  });
  const GridSimResult res = svc.serve(gs.store.tables());
  producer.join();
  EXPECT_EQ(digest_grid_result(svc.grid_sim(), res), digests[0].digest);
  EXPECT_EQ(svc.ingested(), gs.feed.size());
}

TEST(StreamSim, NdjsonSinkSeesEveryCompletionOnce) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[0];
  const GoldenStream gs = golden_stream(4);
  std::vector<std::string> lines;
  StreamGridSim::Options sopts;
  sopts.ring_capacity = gs.feed.size() + 1;
  sopts.metrics_interval = 5.0;
  StreamGridSim svc(make_skewed_grid(4, 24, 2.0), golden_options(sc), sopts,
                    [&](const std::string& line) { lines.push_back(line); });
  svc.push_n(gs.feed.data(), gs.feed.size());
  svc.close();
  svc.serve(gs.store.tables());

  std::size_t job_lines = 0, metrics_lines = 0;
  for (const std::string& line : lines) {
    // One self-contained JSON document per sink call: single-line,
    // object-framed, type-tagged.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.rfind("{\"type\":\"job\",", 0) == 0) {
      ++job_lines;
      EXPECT_NE(line.find("\"cluster\":"), std::string::npos);
      EXPECT_NE(line.find("\"finish\":"), std::string::npos);
    } else {
      ASSERT_EQ(line.rfind("{\"type\":\"metrics\",", 0), 0u) << line;
      ++metrics_lines;
      EXPECT_NE(line.find("\"pending_events\":"), std::string::npos);
    }
  }
  std::size_t total_records = 0;
  for (std::size_t c = 0; c < svc.grid_sim().cluster_count(); ++c)
    total_records += svc.grid_sim().cluster(c).local_records().size();
  EXPECT_EQ(job_lines, total_records);
  EXPECT_EQ(svc.records_emitted(), total_records);
  EXPECT_GT(metrics_lines, 0u);
}

TEST(StreamSim, MidStreamCheckpointRestoreIsBitIdentical) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const auto scenarios = golden_scenarios();
  const auto digests = golden_digests();
  const GoldenStream gs = golden_stream(4);
  const LightGrid grid = make_skewed_grid(4, 24, 2.0);

  for (const std::size_t i : streamable_scenarios()) {
    const GridSimOptions opts = golden_options(scenarios[i]);
    for (const std::size_t cut : {std::size_t{1}, gs.feed.size() / 3,
                                  2 * gs.feed.size() / 3}) {
      // Interrupted service: ingest the prefix, snapshot, abandon.
      std::vector<std::string> first_lines;
      StreamGridSim::Options sopts;
      sopts.ring_capacity = gs.feed.size() + 1;
      sopts.batch = 29;
      StreamGridSim first(grid, opts, sopts,
                          [&](const std::string& l) { first_lines.push_back(l); });
      first.push_n(gs.feed.data(), cut);
      while (first.ingested() < cut) first.poll(gs.store.tables());
      ASSERT_EQ(first.ingested(), cut);
      const std::vector<unsigned char> blob = first.checkpoint();

      // Restored service: re-feed the not-yet-ingested suffix and drain.
      std::vector<std::string> rest_lines;
      StreamGridSim second(grid, opts, sopts,
                           [&](const std::string& l) { rest_lines.push_back(l); });
      second.restore(blob);
      ASSERT_EQ(second.ingested(), cut);
      second.push_n(gs.feed.data() + cut, gs.feed.size() - cut);
      second.close();
      const GridSimResult res = second.serve(gs.store.tables());

      EXPECT_EQ(digest_grid_result(second.grid_sim(), res),
                digests[i].digest)
          << scenarios[i].name << " cut=" << cut;

      // The split emits every record exactly once across both halves.
      std::size_t total_records = 0;
      for (std::size_t c = 0; c < second.grid_sim().cluster_count(); ++c)
        total_records +=
            second.grid_sim().cluster(c).local_records().size();
      EXPECT_EQ(first_lines.size() + rest_lines.size(), total_records)
          << scenarios[i].name << " cut=" << cut;
    }
  }
}

TEST(StreamSim, LifecycleGuards) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[0];
  const GoldenStream gs = golden_stream(4);
  StreamGridSim svc(make_skewed_grid(4, 24, 2.0), golden_options(sc), {},
                    nullptr);
  EXPECT_THROW(svc.result(), std::logic_error);
  svc.close();
  svc.serve(gs.store.tables());
  EXPECT_TRUE(svc.done());
  EXPECT_THROW(svc.checkpoint(), std::logic_error);
  // A used service cannot be restored into.
  StreamGridSim other(make_skewed_grid(4, 24, 2.0), golden_options(sc), {},
                      nullptr);
  const std::vector<unsigned char> junk;
  EXPECT_THROW(svc.restore(junk), std::logic_error);
  // And a fresh one rejects garbage bytes outright.
  EXPECT_THROW(other.restore(junk), CheckpointError);
}

}  // namespace
}  // namespace lgs
