// Tests for abstract-to-concrete processor assignment (core/proc_assign.h).
#include <gtest/gtest.h>

#include "core/proc_assign.h"
#include "core/rng.h"
#include "core/validate.h"
#include "pt/shelves.h"
#include "reference_proc_assign.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(ProcAssign, SimpleTwoJobs) {
  Schedule s(3);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 0.0, 1, 5.0);
  ASSERT_TRUE(assign_processors(s));
  EXPECT_EQ(s.assignments()[0].procs.size(), 2u);
  EXPECT_EQ(s.assignments()[1].procs.size(), 1u);
  // Lowest ids first, no overlap.
  EXPECT_EQ(s.assignments()[0].procs[0], 0);
  EXPECT_EQ(s.assignments()[0].procs[1], 1);
  EXPECT_EQ(s.assignments()[1].procs[0], 2);
}

TEST(ProcAssign, ReusesFreedProcessors) {
  Schedule s(2);
  s.add(0, 0.0, 2, 1.0);
  s.add(1, 1.0, 2, 1.0);  // starts exactly when job 0 ends
  ASSERT_TRUE(assign_processors(s));
}

TEST(ProcAssign, FailsOnOvercommit) {
  Schedule s(2);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 2.0, 1, 1.0);  // demand 3 > 2
  EXPECT_FALSE(assign_processors(s));
  // Untouched on failure.
  EXPECT_TRUE(s.assignments()[0].procs.empty());
}

TEST(ProcAssign, DeterministicAcrossRuns) {
  const auto build = [] {
    Schedule s(4);
    s.add(2, 0.0, 2, 3.0);
    s.add(1, 0.0, 1, 1.0);
    s.add(3, 1.0, 2, 2.0);
    EXPECT_TRUE(assign_processors(s));
    return s;
  };
  const Schedule a = build(), b = build();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.assignments()[i].procs, b.assignments()[i].procs);
}

// Property: any valid abstract schedule produced by the shelf packer can be
// realized, and the realization passes full concrete validation.
class ProcAssignProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProcAssignProperty, ShelfSchedulesAlwaysRealizable) {
  Rng rng(GetParam());
  RigidWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 16;
  const JobSet jobs = make_rigid_workload(spec, rng);
  Schedule s = shelf_schedule_rigid(jobs, 32);
  ASSERT_TRUE(assign_processors(s));
  const auto violations = validate(jobs, s);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  for (const Assignment& a : s.assignments())
    EXPECT_EQ(static_cast<int>(a.procs.size()), a.nprocs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcAssignProperty,
                         ::testing::Values(1, 2, 3, 17, 42, 1234));

// Differential gate for the interval-run allocator: the optimized sweep
// must produce BIT-identical processor id lists to the std::set-based
// implementation it replaced (tests/reference_proc_assign.h).
class ProcAssignDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // A capacity-valid schedule from the shelf packer plus a tail of
  // randomly timed jobs (some of which overcommit at high seeds' draws,
  // exercising the failure path of both implementations).
  Schedule build(std::uint64_t seed, int m, bool force_valid) {
    Rng rng(seed);
    RigidWorkloadSpec spec;
    spec.count = 80;
    spec.max_procs = m / 2;
    const JobSet jobs = make_rigid_workload(spec, rng);
    if (force_valid) return shelf_schedule_rigid(jobs, m);
    Schedule s(m);
    for (const Job& j : jobs)
      s.add(j.id, rng.uniform(0.0, 40.0), j.min_procs, j.time(j.min_procs));
    return s;
  }
};

TEST_P(ProcAssignDifferential, LowestFirstMatchesSetOracle) {
  for (const bool force_valid : {true, false}) {
    Schedule optimized = build(GetParam(), 32, force_valid);
    Schedule reference = optimized;
    const bool got = assign_processors(optimized);
    const bool want = reference_assign_processors(reference);
    ASSERT_EQ(got, want);
    if (!got) continue;
    for (std::size_t i = 0; i < optimized.size(); ++i)
      EXPECT_EQ(optimized.assignments()[i].procs,
                reference.assignments()[i].procs)
          << "assignment " << i << " diverged";
  }
}

TEST_P(ProcAssignDifferential, ContiguousFirstFitMatchesSetOracle) {
  for (const bool force_valid : {true, false}) {
    Schedule optimized = build(GetParam(), 32, force_valid);
    Schedule reference = optimized;
    const bool got = assign_processors_contiguous(optimized);
    const bool want = reference_assign_processors_contiguous(reference);
    ASSERT_EQ(got, want);
    if (!got) {
      // Failure must leave the schedule untouched in both.
      for (const Assignment& a : optimized.assignments())
        EXPECT_TRUE(a.procs.empty());
      continue;
    }
    for (std::size_t i = 0; i < optimized.size(); ++i)
      EXPECT_EQ(optimized.assignments()[i].procs,
                reference.assignments()[i].procs)
          << "assignment " << i << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcAssignDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace lgs
