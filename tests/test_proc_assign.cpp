// Tests for abstract-to-concrete processor assignment (core/proc_assign.h).
#include <gtest/gtest.h>

#include "core/proc_assign.h"
#include "core/rng.h"
#include "core/validate.h"
#include "pt/shelves.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(ProcAssign, SimpleTwoJobs) {
  Schedule s(3);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 0.0, 1, 5.0);
  ASSERT_TRUE(assign_processors(s));
  EXPECT_EQ(s.assignments()[0].procs.size(), 2u);
  EXPECT_EQ(s.assignments()[1].procs.size(), 1u);
  // Lowest ids first, no overlap.
  EXPECT_EQ(s.assignments()[0].procs[0], 0);
  EXPECT_EQ(s.assignments()[0].procs[1], 1);
  EXPECT_EQ(s.assignments()[1].procs[0], 2);
}

TEST(ProcAssign, ReusesFreedProcessors) {
  Schedule s(2);
  s.add(0, 0.0, 2, 1.0);
  s.add(1, 1.0, 2, 1.0);  // starts exactly when job 0 ends
  ASSERT_TRUE(assign_processors(s));
}

TEST(ProcAssign, FailsOnOvercommit) {
  Schedule s(2);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 2.0, 1, 1.0);  // demand 3 > 2
  EXPECT_FALSE(assign_processors(s));
  // Untouched on failure.
  EXPECT_TRUE(s.assignments()[0].procs.empty());
}

TEST(ProcAssign, DeterministicAcrossRuns) {
  const auto build = [] {
    Schedule s(4);
    s.add(2, 0.0, 2, 3.0);
    s.add(1, 0.0, 1, 1.0);
    s.add(3, 1.0, 2, 2.0);
    EXPECT_TRUE(assign_processors(s));
    return s;
  };
  const Schedule a = build(), b = build();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.assignments()[i].procs, b.assignments()[i].procs);
}

// Property: any valid abstract schedule produced by the shelf packer can be
// realized, and the realization passes full concrete validation.
class ProcAssignProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProcAssignProperty, ShelfSchedulesAlwaysRealizable) {
  Rng rng(GetParam());
  RigidWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 16;
  const JobSet jobs = make_rigid_workload(spec, rng);
  Schedule s = shelf_schedule_rigid(jobs, 32);
  ASSERT_TRUE(assign_processors(s));
  const auto violations = validate(jobs, s);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  for (const Assignment& a : s.assignments())
    EXPECT_EQ(static_cast<int>(a.procs.size()), a.nprocs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcAssignProperty,
                         ::testing::Values(1, 2, 3, 17, 42, 1234));

}  // namespace
}  // namespace lgs
