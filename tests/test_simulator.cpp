// Tests for the DES kernel (sim/simulator.h).
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace lgs {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, EqualTimesByPriorityThenInsertion) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(0); }, /*priority=*/5);
  sim.at(1.0, [&] { order.push_back(1); }, /*priority=*/-1);
  sim.at(1.0, [&] { order.push_back(2); }, /*priority=*/5);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time fired = -1;
  sim.at(5.0, [&] { sim.after(2.0, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 7.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(fired);
  // The stale cancellation must not suppress later events either.
  bool later = false;
  sim.at(2.0, [&] { later = true; });
  sim.run();
  EXPECT_TRUE(later);
}

TEST(Simulator, CancelledIdsErasedWhenPopped) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(sim.at(static_cast<Time>(i),
                         [] { FAIL() << "cancelled event fired"; }));
  for (EventId id : ids) sim.cancel(id);
  EXPECT_EQ(sim.pending_cancellations(), 100u);
  sim.run();
  EXPECT_EQ(sim.executed(), 0u);
  EXPECT_EQ(sim.pending_cancellations(), 0u) << "cancelled_ leaked";
}

TEST(Simulator, StaleCancellationsDoNotAccumulateAcrossRuns) {
  // Cancelling already-fired events over and over (a natural pattern in
  // the online-cluster engine: kill the completion event of a job that
  // may have completed) must not grow internal state without bound.
  Simulator sim;
  for (int round = 0; round < 50; ++round) {
    const EventId id = sim.after(1.0, [] {});
    sim.run();
    sim.cancel(id);  // already fired: a no-op...
    sim.run();       // ...flushed once the queue drains
    EXPECT_EQ(sim.pending_cancellations(), 0u) << "round " << round;
  }
}

TEST(Simulator, CancellationSurvivesHorizonPause) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(10.0, [&] { fired = true; });
  sim.at(1.0, [] {});
  sim.cancel(id);
  sim.run(5.0);  // queue still holds the cancelled event...
  EXPECT_EQ(sim.pending_cancellations(), 1u);
  sim.run();  // ...which must stay cancelled when the run resumes
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_cancellations(), 0u);
}

TEST(Simulator, CancelPreservesEqualTimePriorityOrdering) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(0); }, /*priority=*/5);
  const EventId mid = sim.at(1.0, [&] { order.push_back(1); },
                             /*priority=*/0);
  sim.at(1.0, [&] { order.push_back(2); }, /*priority=*/-3);
  sim.at(1.0, [&] { order.push_back(3); }, /*priority=*/5);
  sim.cancel(mid);
  sim.run();
  // Priority order (-3, then 5s by insertion) unchanged by the erased
  // middle event.
  EXPECT_EQ(order, (std::vector<int>{2, 0, 3}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, HorizonStopsEarly) {
  Simulator sim;
  int count = 0;
  sim.at(1.0, [&] { ++count; });
  sim.at(10.0, [&] { ++count; });
  sim.run(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();  // resumes with the pending event
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.at(5.0, [&] {
    EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, CascadingEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.after(1.0, chain);
  };
  sim.at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

}  // namespace
}  // namespace lgs
