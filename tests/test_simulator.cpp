// Tests for the DES kernel (sim/simulator.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "reference_simulator.h"
#include "sim/simulator.h"

namespace lgs {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, EqualTimesByPriorityThenInsertion) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(0); }, /*priority=*/5);
  sim.at(1.0, [&] { order.push_back(1); }, /*priority=*/-1);
  sim.at(1.0, [&] { order.push_back(2); }, /*priority=*/5);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time fired = -1;
  sim.at(5.0, [&] { sim.after(2.0, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 7.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(fired);
  // The stale cancellation must not suppress later events either.
  bool later = false;
  sim.at(2.0, [&] { later = true; });
  sim.run();
  EXPECT_TRUE(later);
}

TEST(Simulator, CancelledIdsErasedWhenPopped) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(sim.at(static_cast<Time>(i),
                         [] { FAIL() << "cancelled event fired"; }));
  for (EventId id : ids) sim.cancel(id);
  EXPECT_EQ(sim.pending_cancellations(), 100u);
  sim.run();
  EXPECT_EQ(sim.executed(), 0u);
  EXPECT_EQ(sim.pending_cancellations(), 0u) << "cancelled_ leaked";
}

TEST(Simulator, StaleCancellationsDoNotAccumulateAcrossRuns) {
  // Cancelling already-fired events over and over (a natural pattern in
  // the online-cluster engine: kill the completion event of a job that
  // may have completed) must not grow internal state without bound.
  Simulator sim;
  for (int round = 0; round < 50; ++round) {
    const EventId id = sim.after(1.0, [] {});
    sim.run();
    sim.cancel(id);  // already fired: a no-op...
    sim.run();       // ...flushed once the queue drains
    EXPECT_EQ(sim.pending_cancellations(), 0u) << "round " << round;
  }
}

TEST(Simulator, StaleCancellationsStayBoundedWithoutDrain) {
  // The streaming-mode shape: the queue NEVER drains (a far-future
  // sentinel pins it), so the drain-flush of the previous test never
  // runs.  Repeated cancel-after-fire must still stay bounded — the
  // consumed-id watermark rejects ids below the smallest pending id,
  // and the periodic prune evicts the rest.
  Simulator sim;
  sim.at(1e9, [] {});  // sentinel: keeps the queue non-empty throughout
  for (int round = 0; round < 10000; ++round) {
    const EventId id = sim.after(1.0, [] {});
    sim.run(sim.now() + 2.0);  // fires the event, sentinel still queued
    sim.cancel(id);            // always stale
    ASSERT_LE(sim.pending_cancellations(), 64u) << "round " << round;
  }
  EXPECT_GE(sim.executed(), 10000u);
}

TEST(Simulator, WatermarkRejectsConsumedIdsOutright) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(sim.at(static_cast<Time>(i), [] {}));
  sim.run();  // drains: every id so far is consumed
  EXPECT_EQ(sim.consumed_watermark(), ids.back() + 1);
  for (EventId id : ids) sim.cancel(id);
  // All below the watermark: rejected without ever entering the set.
  EXPECT_EQ(sim.pending_cancellations(), 0u);
}

TEST(Simulator, LowIdScheduledFarAheadStaysCancellable) {
  // The watermark is a *lower bound on pending ids*, not "largest id
  // fired": an early-created event living far in the future must stay
  // cancellable while hundreds of later-created events fire before it.
  Simulator sim;
  bool fired = false;
  const EventId early = sim.at(1000.0, [&] { fired = true; });
  for (int i = 0; i < 200; ++i) sim.at(static_cast<Time>(i), [] {});
  sim.run(500.0);  // fires all 200 later-created events
  EXPECT_LE(sim.consumed_watermark(), early);
  sim.cancel(early);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed(), 200u);
}

TEST(Simulator, CancellationSurvivesHorizonPause) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(10.0, [&] { fired = true; });
  sim.at(1.0, [] {});
  sim.cancel(id);
  sim.run(5.0);  // queue still holds the cancelled event...
  EXPECT_EQ(sim.pending_cancellations(), 1u);
  sim.run();  // ...which must stay cancelled when the run resumes
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_cancellations(), 0u);
}

TEST(Simulator, CancelPreservesEqualTimePriorityOrdering) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(0); }, /*priority=*/5);
  const EventId mid = sim.at(1.0, [&] { order.push_back(1); },
                             /*priority=*/0);
  sim.at(1.0, [&] { order.push_back(2); }, /*priority=*/-3);
  sim.at(1.0, [&] { order.push_back(3); }, /*priority=*/5);
  sim.cancel(mid);
  sim.run();
  // Priority order (-3, then 5s by insertion) unchanged by the erased
  // middle event.
  EXPECT_EQ(order, (std::vector<int>{2, 0, 3}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, HorizonStopsEarly) {
  Simulator sim;
  int count = 0;
  sim.at(1.0, [&] { ++count; });
  sim.at(10.0, [&] { ++count; });
  sim.run(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();  // resumes with the pending event
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.at(5.0, [&] {
    EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, CancelOfFutureIdIsRejected) {
  // A cancellation may only target an id at()/after() actually returned.
  // Unvalidated insertion used to poison the *next* scheduled event: the
  // guessed id was stored, the future event received that id, and fired
  // never happened.
  Simulator sim;
  const EventId last = sim.at(1.0, [] {});
  sim.cancel(last + 1);  // never scheduled: must be a no-op...
  EXPECT_EQ(sim.pending_cancellations(), 0u);
  bool fired = false;
  sim.at(2.0, [&] { fired = true; });  // ...so this event (id last+1) fires
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelOfZeroAndFarFutureIdsIsNoop) {
  Simulator sim;
  sim.cancel(0);  // the engines' "no event" sentinel
  sim.cancel(123456789);
  EXPECT_EQ(sim.pending_cancellations(), 0u);
  int count = 0;
  for (int i = 0; i < 5; ++i) sim.at(1.0 + i, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 5);
}

TEST(Simulator, SlotSlabStaysFlatAcrossManyEvents) {
  // The slab recycles callback slots: scheduling/firing 100k events with
  // bounded concurrency must not grow the slot count past the peak
  // number of simultaneously pending events.
  Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 100000; ++i)
    sim.at(static_cast<Time>(i % 97), [&fired] { ++fired; });
  // All 100k are pending at once here — that IS the peak.
  const std::size_t peak = sim.slot_capacity();
  EXPECT_GE(peak, 100000u);
  sim.run();
  EXPECT_EQ(fired, 100000u);
  // Sequential schedule-fire cycles reuse the freed slots.
  for (int i = 0; i < 100000; ++i) {
    sim.after(1.0, [&fired] { ++fired; });
    sim.run();
  }
  EXPECT_EQ(sim.slot_capacity(), peak) << "slots leaked per event";
  EXPECT_EQ(sim.overflow_blocks_allocated(), 0u)
      << "small captures must stay inline";
}

TEST(Simulator, LargeCapturesUseRecycledOverflowBlocks) {
  Simulator sim;
  struct Big {
    std::array<std::uint64_t, 32> payload{};
  };
  static_assert(sizeof(Big) > Simulator::kInlineCallback);
  std::uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) {
    Big big;
    big.payload[0] = static_cast<std::uint64_t>(i);
    sim.after(1.0, [big, &sum] { sum += big.payload[0]; });
    sim.run();
  }
  EXPECT_EQ(sum, 999ull * 1000 / 2);
  EXPECT_EQ(sim.overflow_blocks_allocated(), 1u)
      << "overflow blocks must recycle through the free list";
}

TEST(Simulator, NonTrivialCapturesAreDestroyed) {
  const auto tracker = std::make_shared<int>(42);
  {
    Simulator sim;
    sim.at(1.0, [tracker] {});       // fired: destroyed by run()
    sim.at(2.0, [tracker] {});       // cancelled: destroyed on pop
    const EventId id = sim.at(3.0, [tracker] {});
    sim.cancel(id);
    sim.at(5.0, [tracker] {});  // never fired (horizon): destroyed by dtor
    EXPECT_EQ(tracker.use_count(), 5);
    sim.run(4.0);
    EXPECT_EQ(tracker.use_count(), 2) << "fired/cancelled captures leaked";
  }
  EXPECT_EQ(tracker.use_count(), 1) << "pending capture leaked at dtor";
}

// Differential oracle: randomized event scripts must execute in exactly
// the same (time, tag) sequence on the slab-slot kernel and on the
// std::function kernel it replaced (tests/reference_simulator.h).
TEST(Simulator, MatchesReferenceKernelOnRandomScripts) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    struct Op {
      Time t;
      int priority;
      int tag;
      bool cancel_previous;
      Time nested_delay;  // > 0: the callback schedules a follow-up
    };
    std::vector<Op> script;
    for (int i = 0; i < 400; ++i) {
      Op op;
      op.t = rng.uniform(0.0, 50.0);
      op.priority = static_cast<int>(rng.uniform_int(-2, 2));
      op.tag = i;
      op.cancel_previous = rng.flip(0.2);
      op.nested_delay = rng.flip(0.3) ? rng.uniform(0.1, 5.0) : 0.0;
      script.push_back(op);
    }

    const auto replay = [&script](auto& sim) {
      using Id = std::uint64_t;  // both kernels' EventId
      std::vector<std::pair<Time, int>> trace;
      std::vector<Id> ids;
      for (const Op& op : script) {
        const Time nested = op.nested_delay;
        const int tag = op.tag;
        Id id;
        if (nested > 0.0) {
          auto& s = sim;
          id = sim.at(op.t,
                      [&s, &trace, tag, nested] {
                        trace.emplace_back(s.now(), tag);
                        s.after(nested, [&s, &trace, tag] {
                          trace.emplace_back(s.now(), ~tag);
                        });
                      },
                      op.priority);
        } else {
          auto& s = sim;
          id = sim.at(op.t,
                      [&s, &trace, tag] { trace.emplace_back(s.now(), tag); },
                      op.priority);
        }
        if (op.cancel_previous && !ids.empty())
          sim.cancel(ids[ids.size() / 2]);
        ids.push_back(id);
      }
      sim.run(40.0);  // horizon pause mid-script...
      sim.run();      // ...then drain
      return trace;
    };

    Simulator production;
    ReferenceSimulator reference;
    const auto got = replay(production);
    const auto want = replay(reference);
    ASSERT_EQ(got, want) << "kernel diverged from oracle at seed " << seed;
    EXPECT_EQ(production.executed(), reference.executed());
  }
}

TEST(Simulator, CascadingEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.after(1.0, chain);
  };
  sim.at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, PendingIteratorSeesLiveEventsOnly) {
  Simulator sim;
  const EventId a = sim.at(3.0, [] {}, /*priority=*/1);
  const EventId b = sim.at(1.0, [] {});
  const EventId c = sim.at(2.0, [] {});
  sim.cancel(c);  // cancelled entries must be invisible

  std::vector<Simulator::PendingEvent> seen;
  for (const Simulator::PendingEvent& e : sim.pending_events())
    seen.push_back(e);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(sim.pending_count(), 2u);
  std::sort(seen.begin(), seen.end(),
            [](const Simulator::PendingEvent& x,
               const Simulator::PendingEvent& y) { return x.id < y.id; });
  EXPECT_EQ(seen[0].id, a);
  EXPECT_DOUBLE_EQ(seen[0].t, 3.0);
  EXPECT_EQ(seen[0].priority, 1);
  EXPECT_EQ(seen[1].id, b);
  EXPECT_DOUBLE_EQ(seen[1].t, 1.0);

  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.pending_events().begin(), sim.pending_events().end());
}

TEST(Simulator, RestoreEventReplaysOriginalTieBreakOrder) {
  // The uninterrupted run: three same-instant events fire in insertion
  // order.  A "restored" kernel re-schedules them in a DIFFERENT call
  // order but under their original ids — and must fire them in the
  // original order anyway, because the queue key (t, priority, id) is
  // reproduced exactly.
  std::vector<int> order;
  Simulator sim;
  sim.at(5.0, [&] { order.push_back(1); });  // id 1
  sim.at(5.0, [&] { order.push_back(2); });  // id 2
  sim.at(5.0, [&] { order.push_back(3); });  // id 3

  Simulator restored;
  restored.reset_for_restore(/*now=*/2.0, /*next_id=*/4, /*executed=*/7);
  EXPECT_DOUBLE_EQ(restored.now(), 2.0);
  EXPECT_EQ(restored.next_event_id(), 4u);
  EXPECT_EQ(restored.executed(), 7u);
  std::vector<int> order2;
  restored.restore_event(5.0, 0, 3, [&] { order2.push_back(3); });
  restored.restore_event(5.0, 0, 1, [&] { order2.push_back(1); });
  restored.restore_event(5.0, 0, 2, [&] { order2.push_back(2); });

  sim.run();
  restored.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(order2, order);
  EXPECT_EQ(restored.executed(), 10u);  // 7 restored + 3 fired
  // New events after the restore continue the pinned id sequence.
  EXPECT_EQ(restored.next_event_id(), 4u);
}

TEST(Simulator, ResetForRestoreDropsPendingState) {
  Simulator sim;
  bool fired = false;
  sim.at(1.0, [&] { fired = true; });
  const EventId doomed = sim.at(2.0, [&] { fired = true; });
  sim.cancel(doomed);
  sim.reset_for_restore(/*now=*/0.5, /*next_id=*/10, /*executed=*/0);
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.pending_cancellations(), 0u);
  sim.run();
  EXPECT_FALSE(fired);  // the dropped events never fire
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);
}

TEST(Simulator, RestoreEventRejectsBadIds) {
  Simulator sim;
  sim.reset_for_restore(/*now=*/0.0, /*next_id=*/5, /*executed=*/0);
  EXPECT_THROW(sim.restore_event(1.0, 0, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.restore_event(1.0, 0, 5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.restore_event(1.0, 0, 9, [] {}), std::invalid_argument);
  sim.restore_event(1.0, 0, 4, [] {});  // in [1, next_id) is fine
  sim.run();
}

}  // namespace
}  // namespace lgs
