// Tests for admission control / rejection (pt/admission.h), §3.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/metrics.h"
#include "pt/admission.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Admission, AdmitsEverythingWithoutDueDates) {
  JobSet jobs = {Job::sequential(0, 5.0), Job::rigid(1, 2, 3.0)};
  const AdmissionResult r = schedule_with_admission(jobs, 4);
  EXPECT_TRUE(r.rejected.empty());
  EXPECT_TRUE(is_valid(jobs, r.schedule));
}

TEST(Admission, RejectsImpossibleDeadline) {
  JobSet jobs;
  Job j = Job::sequential(0, 10.0);
  j.due = 5.0;  // cannot possibly finish
  jobs.push_back(j);
  const AdmissionResult r = schedule_with_admission(jobs, 4);
  ASSERT_EQ(r.rejected.size(), 1u);
  EXPECT_EQ(r.rejected[0], 0u);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_DOUBLE_EQ(r.rejected_weight, 1.0);
}

TEST(Admission, RejectsWhenQueueMakesItLate) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 1, 10.0));  // occupies the machine
  Job tight = Job::sequential(1, 2.0);
  tight.due = 5.0;  // would need to start by 3; machine busy until 10
  jobs.push_back(tight);
  const AdmissionResult r = schedule_with_admission(jobs, 1);
  ASSERT_EQ(r.rejected.size(), 1u);
  EXPECT_EQ(r.rejected[0], 1u);
  EXPECT_DOUBLE_EQ(r.schedule.find(0)->start, 0.0);
}

TEST(Admission, AdmittedJobsFitInHoles) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 2, 10.0));  // half of 4 procs
  Job ok = Job::sequential(1, 2.0);
  ok.due = 3.0;  // fits beside job 0
  jobs.push_back(ok);
  const AdmissionResult r = schedule_with_admission(jobs, 4);
  EXPECT_TRUE(r.rejected.empty());
  EXPECT_DOUBLE_EQ(r.schedule.find(1)->start, 0.0);
}

TEST(Admission, RejectsMoldable) {
  JobSet jobs = {Job::moldable(0, ExecModel::sequential(1.0), 1, 2)};
  EXPECT_THROW(schedule_with_admission(jobs, 4), std::invalid_argument);
}

// The defining property: an admission schedule never has a late job.
class AdmissionProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdmissionProperty, NoAdmittedJobIsLate) {
  Rng rng(GetParam());
  RigidWorkloadSpec spec;
  spec.count = 100;
  spec.max_procs = 8;
  spec.arrival_window = 30.0;
  JobSet jobs = make_rigid_workload(spec, rng);
  // Tight random due dates: plenty of rejections expected.
  for (Job& j : jobs)
    if (rng.flip(0.7))
      j.due = j.release + j.time(j.min_procs) * rng.uniform(1.0, 4.0);

  const AdmissionResult r = schedule_with_admission(jobs, 16);
  // Validate only the admitted subset.
  JobSet admitted;
  for (const Job& j : jobs)
    if (std::find(r.rejected.begin(), r.rejected.end(), j.id) ==
        r.rejected.end())
      admitted.push_back(j);
  const auto violations = validate(admitted, r.schedule);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  const Metrics m = compute_metrics(admitted, r.schedule);
  EXPECT_EQ(m.late_count, 0) << "admission must guarantee zero tardiness";
  EXPECT_DOUBLE_EQ(m.sum_tardiness, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace lgs
