// Tests for shelf / strip-packing algorithms (pt/shelves.h).
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/shelves.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Shelves, SingleShelfWhenAllFit) {
  JobSet jobs = {Job::rigid(0, 2, 5.0), Job::rigid(1, 2, 3.0)};
  const auto shelves =
      build_shelves(jobs, 4, ShelfPolicy::kFirstFitDecreasing);
  ASSERT_EQ(shelves.size(), 1u);
  EXPECT_EQ(shelves[0].used_procs, 4);
  EXPECT_DOUBLE_EQ(shelves[0].height, 5.0);
}

TEST(Shelves, DecreasingOrderDefinesHeights) {
  // FFDH: first job of each shelf is its tallest.
  JobSet jobs = {Job::rigid(0, 3, 2.0), Job::rigid(1, 3, 9.0),
                 Job::rigid(2, 3, 4.0)};
  const auto shelves =
      build_shelves(jobs, 4, ShelfPolicy::kFirstFitDecreasing);
  ASSERT_EQ(shelves.size(), 3u);
  EXPECT_DOUBLE_EQ(shelves[0].height, 9.0);
  EXPECT_DOUBLE_EQ(shelves[1].height, 4.0);
  EXPECT_DOUBLE_EQ(shelves[2].height, 2.0);
}

TEST(Shelves, FirstFitReusesEarlierShelves) {
  // Heights 10, 10, 5; widths 3, 2, 2 on m=4: NFDH closes shelf 1 after the
  // first job + cannot fit the second (3+2>4) -> shelf 2; the third job
  // fits shelf 2 under NFDH and FFDH alike, but a width-1 job later shows
  // the difference.
  JobSet jobs = {Job::rigid(0, 3, 10.0), Job::rigid(1, 2, 10.0),
                 Job::rigid(2, 2, 5.0), Job::rigid(3, 1, 4.0)};
  const auto ff = build_shelves(jobs, 4, ShelfPolicy::kFirstFitDecreasing);
  const auto nf = build_shelves(jobs, 4, ShelfPolicy::kNextFitDecreasing);
  // FFDH puts job 3 back into shelf 0 (3+1 <= 4); NFDH cannot revisit it
  // and must open a third shelf (the current one is full: 2+2+1 > 4).
  ASSERT_EQ(ff.size(), 2u);
  EXPECT_EQ(ff[0].items.size(), 2u);
  ASSERT_EQ(nf.size(), 3u);
  EXPECT_EQ(nf[0].items.size(), 1u);
}

TEST(Shelves, ScheduleStacksShelves) {
  JobSet jobs = {Job::rigid(0, 4, 5.0), Job::rigid(1, 4, 3.0)};
  const Schedule s = shelf_schedule_rigid(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, s));
  EXPECT_DOUBLE_EQ(s.makespan(), 8.0);
  EXPECT_DOUBLE_EQ(s.find(1)->start, 5.0);
}

TEST(Shelves, RejectsMoldable) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(8, 1.0), 1, 8)};
  EXPECT_THROW(build_shelves(jobs, 8, ShelfPolicy::kFirstFitDecreasing),
               std::invalid_argument);
}

TEST(Shelves, EmptySet) {
  EXPECT_TRUE(shelf_schedule_rigid({}, 4).empty());
}

// ---------------------------------------------------------------------------
// FFDH quality: classical guarantee FFDH <= 1.7·OPT + h_max, and the lower
// bound satisfies LB >= max(area/m, h_max) >= OPT/…; we assert the safe
// consequence makespan <= 2.7·LB + h_max over random instances.
// ---------------------------------------------------------------------------

class ShelfProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShelfProperty, ValidAndWithinStripPackingBound) {
  Rng rng(GetParam());
  RigidWorkloadSpec spec;
  spec.count = 150;
  spec.max_procs = 13;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const int m = 29;
  Time hmax = 0;
  for (const Job& j : jobs) hmax = std::max(hmax, j.time(j.min_procs));

  for (ShelfPolicy policy : {ShelfPolicy::kFirstFitDecreasing,
                             ShelfPolicy::kNextFitDecreasing}) {
    const Schedule s = shelf_schedule_rigid(jobs, m, policy);
    const auto violations = validate(jobs, s);
    EXPECT_TRUE(violations.empty()) << describe(violations);
    EXPECT_LE(s.makespan(), 2.7 * cmax_lower_bound(jobs, m) + hmax);
    EXPECT_EQ(s.size(), jobs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShelfProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace lgs
