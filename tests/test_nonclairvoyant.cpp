// Tests for non-clairvoyant doubling-budget scheduling
// (pt/nonclairvoyant.h), the §4.2 case the paper sets aside.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/nonclairvoyant.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(NonClairvoyant, ShortJobCompletesFirstTry) {
  JobSet jobs = {Job::sequential(0, 0.5)};
  const NonClairvoyantResult r = nonclairvoyant_schedule(jobs, 4, {1.0, 2.0});
  EXPECT_EQ(r.kills, 0);
  EXPECT_DOUBLE_EQ(r.wasted_work, 0.0);
  EXPECT_DOUBLE_EQ(r.completion.at(0), 0.5);
  EXPECT_EQ(r.attempts.size(), 1u);
}

TEST(NonClairvoyant, LongJobDoublesUntilDone) {
  // Duration 5 with b0=1: attempts 1, 2, 4, 8(completes at true 5).
  JobSet jobs = {Job::sequential(0, 5.0)};
  const NonClairvoyantResult r = nonclairvoyant_schedule(jobs, 1, {1.0, 2.0});
  EXPECT_EQ(r.kills, 3);
  EXPECT_DOUBLE_EQ(r.wasted_work, 1.0 + 2.0 + 4.0);
  // Completion = 1 + 2 + 4 + 5 = 12.
  EXPECT_DOUBLE_EQ(r.completion.at(0), 12.0);
  EXPECT_EQ(r.attempts.size(), 4u);
}

TEST(NonClairvoyant, BudgetMatchingDurationNoKill) {
  JobSet jobs = {Job::sequential(0, 2.0)};
  const NonClairvoyantResult r = nonclairvoyant_schedule(jobs, 1, {2.0, 2.0});
  EXPECT_EQ(r.kills, 0);
  EXPECT_DOUBLE_EQ(r.completion.at(0), 2.0);
}

TEST(NonClairvoyant, WastedWorkWithinDoublingBound) {
  // Classic property for growth 2 with restart-from-scratch: per job the
  // killed budgets sum to b0(2^k − 1) < 2·p, so total wasted work stays
  // below twice the useful work.
  Rng rng(3);
  RigidWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 8;
  spec.t_min = 0.5;
  spec.t_max = 50.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const NonClairvoyantResult r =
      nonclairvoyant_schedule(jobs, 16, {0.5, 2.0});
  double useful = 0.0;
  for (const Job& j : jobs) useful += j.min_work();
  EXPECT_LT(r.wasted_work, 2.0 * useful);
  EXPECT_EQ(r.completion.size(), jobs.size());
}

TEST(NonClairvoyant, AttemptsAreCapacityValid) {
  Rng rng(5);
  RigidWorkloadSpec spec;
  spec.count = 50;
  spec.max_procs = 6;
  spec.arrival_window = 20.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const NonClairvoyantResult r =
      nonclairvoyant_schedule(jobs, 12, {1.0, 2.0});
  EXPECT_LE(r.attempts.peak_demand(), 12);
  // Completions never beat the clairvoyant lower bound.
  Time last = 0.0;
  for (const auto& [id, c] : r.completion) last = std::max(last, c);
  EXPECT_GE(last, cmax_lower_bound(jobs, 12) - kTimeEps);
  // Release dates respected by every attempt.
  ValidateOptions opts;
  opts.require_all_jobs = false;
  // attempts contains duplicates by design; only check capacity/releases
  // via the dedicated fields below.
  for (const Assignment& a : r.attempts.assignments()) {
    const Job* j = nullptr;
    for (const Job& cand : jobs)
      if (cand.id == a.job) j = &cand;
    ASSERT_NE(j, nullptr);
    EXPECT_GE(a.start, j->release - kTimeEps);
  }
}

TEST(NonClairvoyant, ClairvoyancePremiumIsBounded) {
  // The whole point: not knowing durations costs a constant factor, not
  // more.  Compare against the clairvoyant lower bound.
  Rng rng(9);
  RigidWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 8;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const NonClairvoyantResult r =
      nonclairvoyant_schedule(jobs, 16, {1.0, 2.0});
  EXPECT_LE(r.makespan, 8.0 * cmax_lower_bound(jobs, 16));
}

TEST(NonClairvoyant, RejectsBadInput) {
  JobSet moldable = {Job::moldable(0, ExecModel::sequential(1.0), 1, 2)};
  EXPECT_THROW(nonclairvoyant_schedule(moldable, 4), std::invalid_argument);
  JobSet ok = {Job::sequential(0, 1.0)};
  EXPECT_THROW(nonclairvoyant_schedule(ok, 4, {0.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(nonclairvoyant_schedule(ok, 4, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(NonClairvoyant, EmptySet) {
  const NonClairvoyantResult r = nonclairvoyant_schedule({}, 4);
  EXPECT_TRUE(r.attempts.empty());
  EXPECT_EQ(r.kills, 0);
}

}  // namespace
}  // namespace lgs
