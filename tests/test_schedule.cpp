// Unit tests for the schedule container (core/schedule.h).
#include <gtest/gtest.h>

#include "core/schedule.h"

namespace lgs {
namespace {

TEST(Schedule, EmptySchedule) {
  const Schedule s(4);
  EXPECT_EQ(s.machines(), 4);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  EXPECT_EQ(s.peak_demand(), 0);
  EXPECT_EQ(s.find(0), nullptr);
}

TEST(Schedule, RejectsBadMachineCount) {
  EXPECT_THROW(Schedule(0), std::invalid_argument);
}

TEST(Schedule, MakespanAndCompletion) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 3.0, 1, 4.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 7.0);
  EXPECT_DOUBLE_EQ(s.completion(0), 5.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 7.0);
  EXPECT_THROW(s.completion(9), std::invalid_argument);
}

TEST(Schedule, PeakDemandSweep) {
  Schedule s(8);
  s.add(0, 0.0, 3, 10.0);
  s.add(1, 2.0, 4, 3.0);  // overlaps job 0: peak 7
  s.add(2, 5.0, 1, 1.0);  // job 1 ended exactly at 5: no double count
  EXPECT_EQ(s.peak_demand(), 7);
}

TEST(Schedule, BackToBackShelvesDontDoubleCount) {
  Schedule s(4);
  s.add(0, 0.0, 4, 2.0);
  s.add(1, 2.0, 4, 2.0);
  EXPECT_EQ(s.peak_demand(), 4);
}

TEST(Schedule, ShiftMovesEverything) {
  Schedule s(2);
  s.add(0, 1.0, 1, 2.0);
  s.shift(10.0);
  EXPECT_DOUBLE_EQ(s.find(0)->start, 11.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 13.0);
}

TEST(Schedule, AppendRequiresSameMachines) {
  Schedule a(2), b(2), c(3);
  b.add(0, 0.0, 1, 1.0);
  a.append(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_THROW(a.append(c), std::invalid_argument);
}

// The JobId→index map and the cached makespan must stay correct through
// shift/append (the batch-concatenation path used by pt/mix and pt/batch).
TEST(Schedule, CompletionStaysCorrectAfterShiftAndAppend) {
  Schedule a(4);
  a.add(0, 0.0, 2, 5.0);
  a.add(1, 1.0, 1, 2.0);
  EXPECT_DOUBLE_EQ(a.completion(0), 5.0);  // warm the caches

  a.shift(10.0);
  EXPECT_DOUBLE_EQ(a.completion(0), 15.0);
  EXPECT_DOUBLE_EQ(a.completion(1), 13.0);
  EXPECT_DOUBLE_EQ(a.makespan(), 15.0);

  Schedule b(4);
  b.add(2, 0.0, 4, 1.0);
  b.shift(a.makespan());
  a.append(b);
  EXPECT_DOUBLE_EQ(a.completion(2), 16.0);
  EXPECT_DOUBLE_EQ(a.makespan(), 16.0);
  EXPECT_EQ(a.peak_demand(), 4);
  // Duplicate ids resolve to the first occurrence, as before.
  Schedule c(4);
  c.add(0, 100.0, 1, 1.0);
  a.append(c);
  EXPECT_DOUBLE_EQ(a.find(0)->start, 10.0);
}

// The incrementally-shifted makespan cache must agree with a cold
// recompute even through negative time (makespan floors at 0 either way).
TEST(Schedule, NegativeShiftKeepsMakespanConsistent) {
  Schedule s(2);
  s.add(0, 5.0, 1, 2.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 7.0);  // warm the cache
  s.shift(-20.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);  // warm cache, clamped
  s.assignments();                      // invalidate -> cold recompute
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  s.shift(20.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 7.0);  // exact through the round trip
}

TEST(Schedule, CachesRebuildAfterMutableAccess) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 5.0, 4, 1.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  EXPECT_EQ(s.peak_demand(), 4);

  s.assignments()[1].start = 2.0;   // now overlaps job 0
  s.assignments()[1].duration = 2.0;
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_EQ(s.peak_demand(), 6);
  EXPECT_DOUBLE_EQ(s.completion(1), 4.0);

  s.clear();
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  EXPECT_EQ(s.peak_demand(), 0);
  EXPECT_EQ(s.find(0), nullptr);
}

TEST(Schedule, GanttAsciiRendersDemandProfile) {
  Schedule s(2);
  s.add(0, 0.0, 2, 1.0);
  const std::string g = gantt_ascii(s, 40);
  EXPECT_NE(g.find("demand"), std::string::npos);
  EXPECT_EQ(gantt_ascii(Schedule(2)), "(empty schedule)\n");
}

TEST(Schedule, GanttAsciiRendersProcessorRows) {
  Schedule s(2);
  Assignment a;
  a.job = 0;
  a.start = 0.0;
  a.nprocs = 2;
  a.duration = 4.0;
  a.procs = {0, 1};
  s.add(a);
  const std::string g = gantt_ascii(s, 40);
  EXPECT_NE(g.find("p0"), std::string::npos);
  EXPECT_NE(g.find("p1"), std::string::npos);
  EXPECT_NE(g.find('A'), std::string::npos);
}

}  // namespace
}  // namespace lgs
