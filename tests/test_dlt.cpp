// Tests for the Divisible Load library (dlt/dlt.h), §2.1.
#include <gtest/gtest.h>

#include <numeric>

#include "dlt/dlt.h"

namespace lgs {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(DltBus, FractionsConserveVolume) {
  const DltPlatform p = DltPlatform::homogeneous_bus(5, 0.1, 1.0);
  const DltPlan plan = single_round_bus(p, 100.0);
  EXPECT_NEAR(sum(plan.alpha), 100.0, 1e-6);
  // Geometric decrease: earlier-served workers get more.
  for (std::size_t i = 1; i < plan.alpha.size(); ++i)
    EXPECT_LT(plan.alpha[i], plan.alpha[i - 1]);
}

TEST(DltBus, AllWorkersFinishSimultaneously) {
  const double c = 0.2, w = 1.5;
  const DltPlatform p = DltPlatform::homogeneous_bus(4, c, w);
  const DltPlan plan = single_round_bus(p, 50.0);
  // Worker i receives after Σ_{k<=i} c·α_k and computes w·α_i.
  double bus = 0.0;
  for (std::size_t i = 0; i < plan.alpha.size(); ++i) {
    bus += c * plan.alpha[i];
    EXPECT_NEAR(bus + w * plan.alpha[i], plan.makespan, 1e-6)
        << "worker " << i;
  }
}

TEST(DltBus, MoreWorkersNeverHurt) {
  double prev = kTimeInfinity;
  for (int n : {1, 2, 4, 8, 16}) {
    const DltPlan plan =
        single_round_bus(DltPlatform::homogeneous_bus(n, 0.05, 1.0), 100.0);
    EXPECT_LT(plan.makespan, prev);
    prev = plan.makespan;
  }
}

TEST(DltBus, InfiniteBandwidthEqualSplit) {
  const DltPlan plan =
      single_round_bus(DltPlatform::homogeneous_bus(4, 0.0, 2.0), 100.0);
  for (double a : plan.alpha) EXPECT_NEAR(a, 25.0, 1e-9);
  EXPECT_NEAR(plan.makespan, 50.0, 1e-9);
}

TEST(DltBus, RejectsHeterogeneousPlatform) {
  DltPlatform p = DltPlatform::homogeneous_bus(3, 0.1, 1.0);
  p.workers[1].comp = 2.0;
  EXPECT_THROW(single_round_bus(p, 10.0), std::invalid_argument);
  EXPECT_THROW(single_round_bus(DltPlatform::homogeneous_bus(3, 0.1, 1.0), 0),
               std::invalid_argument);
}

TEST(DltBus, GatherBackExtendsMakespan) {
  const DltPlatform p = DltPlatform::homogeneous_bus(4, 0.1, 1.0);
  const DltPlan without = single_round_bus(p, 100.0);
  const DltPlan with = single_round_bus(p, 100.0, /*gather_ratio=*/0.5);
  EXPECT_NEAR(with.makespan, without.makespan + 0.1 * 0.5 * 100.0, 1e-9);
}

TEST(DltStar, MatchesBusOnHomogeneousPlatform) {
  const DltPlatform p = DltPlatform::homogeneous_bus(6, 0.1, 1.0);
  const DltPlan bus = single_round_bus(p, 80.0);
  const DltPlan star = single_round_star(p, 80.0);
  EXPECT_NEAR(bus.makespan, star.makespan, 1e-6);
  for (std::size_t i = 0; i < p.workers.size(); ++i)
    EXPECT_NEAR(bus.alpha[i], star.alpha[i], 1e-6);
}

TEST(DltStar, HeterogeneousSimultaneousFinish) {
  DltPlatform p;
  p.workers = {{0.05, 0.8, 0.0}, {0.2, 1.0, 0.0}, {0.1, 2.0, 0.0}};
  const DltPlan plan = single_round_star(p, 60.0);
  EXPECT_NEAR(sum(plan.alpha), 60.0, 1e-6);
  // Service order is increasing comm: workers 0, 2, 1.
  double bus = 0.0;
  for (std::size_t idx : {0u, 2u, 1u}) {
    bus += p.workers[idx].comm * plan.alpha[idx];
    EXPECT_NEAR(bus + p.workers[idx].comp * plan.alpha[idx], plan.makespan,
                1e-6);
  }
}

TEST(DltStar, SlowWorkerDroppedWhenLatencyDominates) {
  DltPlatform p;
  p.workers = {{0.01, 1.0, 0.0}, {5.0, 1.0, 100.0}};  // worker 1 is hopeless
  const DltPlan plan = single_round_star(p, 1.0);
  EXPECT_NEAR(plan.alpha[1], 0.0, 1e-9);
  EXPECT_NEAR(plan.alpha[0], 1.0, 1e-9);
}

TEST(DltStar, FromGridUsesClusterAggregates) {
  const DltPlatform p = DltPlatform::from_grid(ciment_grid());
  ASSERT_EQ(p.workers.size(), 4u);
  // Itanium cluster: fastest network and most compute.
  EXPECT_LT(p.workers[0].comm, p.workers[2].comm);
  EXPECT_LT(p.workers[0].comp, p.workers[3].comp);
  const DltPlan plan = single_round_star(p, 1000.0);
  EXPECT_NEAR(sum(plan.alpha), 1000.0, 1e-6);
}

TEST(DltMultiRound, ConservesVolume) {
  const DltPlatform p = DltPlatform::homogeneous_bus(4, 0.1, 1.0, 0.5);
  for (int rounds : {1, 2, 5, 10}) {
    const DltPlan plan = multi_round(p, 100.0, rounds, 2.0);
    EXPECT_NEAR(sum(plan.alpha), 100.0, 1e-6) << rounds << " rounds";
    EXPECT_EQ(plan.rounds, rounds);
    EXPECT_GT(plan.makespan, 0.0);
  }
}

TEST(DltMultiRound, UniformVsGeometricStrategyNames) {
  const DltPlatform p = DltPlatform::homogeneous_bus(3, 0.1, 1.0);
  EXPECT_EQ(multi_round(p, 10.0, 3, 1.0).strategy, "multi-round-uniform");
  EXPECT_EQ(multi_round(p, 10.0, 3, 2.0).strategy, "multi-round-geometric");
  EXPECT_THROW(multi_round(p, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(multi_round(p, 10.0, 2, 0.0), std::invalid_argument);
}

TEST(DltSteadyState, RespectsConstraints) {
  DltPlatform p;
  p.workers = {{0.1, 1.0, 0.0}, {0.3, 0.5, 0.0}, {0.5, 2.0, 0.0}};
  const SteadyState ss = steady_state(p);
  double bus = 0.0;
  for (std::size_t i = 0; i < p.workers.size(); ++i) {
    EXPECT_LE(ss.rate[i], 1.0 / p.workers[i].comp + 1e-9);
    bus += p.workers[i].comm * ss.rate[i];
  }
  EXPECT_LE(bus, 1.0 + 1e-9);
  EXPECT_NEAR(ss.throughput, sum(ss.rate), 1e-12);
  EXPECT_GT(ss.throughput, 0.0);
}

TEST(DltSteadyState, BandwidthBoundBinds) {
  // One-port master with slow links: throughput limited by Σ c x = 1.
  DltPlatform p;
  p.workers = {{1.0, 0.001, 0.0}, {1.0, 0.001, 0.0}};
  const SteadyState ss = steady_state(p);
  EXPECT_NEAR(ss.throughput, 1.0, 1e-6);
}

TEST(DltSteadyState, ComputeBoundBinds) {
  DltPlatform p;
  p.workers = {{0.0001, 2.0, 0.0}, {0.0001, 2.0, 0.0}};
  const SteadyState ss = steady_state(p);
  EXPECT_NEAR(ss.throughput, 1.0, 1e-3);  // 2 workers × 0.5/s
}

TEST(DltStealing, ConservesVolumeAllPolicies) {
  const DltPlatform p = DltPlatform::homogeneous_bus(4, 0.05, 1.0, 0.01);
  for (ChunkPolicy policy :
       {ChunkPolicy::kFixed, ChunkPolicy::kGuided, ChunkPolicy::kFactoring}) {
    const DltPlan plan = work_stealing(p, 100.0, 1.0, policy);
    EXPECT_NEAR(sum(plan.alpha), 100.0, 1e-6);
    EXPECT_GT(plan.makespan, 0.0);
    // Cannot beat the perfect-parallelism bound.
    EXPECT_GE(plan.makespan, 100.0 * 1.0 / 4 - 1e-9);
  }
}

TEST(DltStealing, GuidedUsesFewerChunksThanFixed) {
  const DltPlatform p = DltPlatform::homogeneous_bus(4, 0.05, 1.0);
  const DltPlan fixed = work_stealing(p, 100.0, 0.5, ChunkPolicy::kFixed);
  const DltPlan guided = work_stealing(p, 100.0, 0.5, ChunkPolicy::kGuided);
  EXPECT_LT(guided.rounds, fixed.rounds);
}

TEST(DltStealing, RejectsBadArguments) {
  const DltPlatform p = DltPlatform::homogeneous_bus(2, 0.1, 1.0);
  EXPECT_THROW(work_stealing(p, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(work_stealing(p, 10.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace lgs
