// Tests for the Standard Workload Format reader/writer (workload/swf.h).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/report.h"
#include "core/validate.h"
#include "pt/backfill.h"
#include "workload/swf.h"

namespace lgs {
namespace {

const char* kSample =
    "; Sample SWF trace\n"
    "; Computer: test cluster\n"
    "1 0 5 100 4 -1 -1 4 120 -1 1 7 1 -1 1 -1 -1 -1\n"
    "2 10 0 50 1 -1 -1 1 60 -1 1 8 1 -1 1 -1 -1 -1\n"
    "3 20 2 200 8 -1 -1 8 240 -1 1 7 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesBasicTrace) {
  const JobSet jobs = parse_swf(kSample);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id, 0u);  // renumbered densely
  EXPECT_DOUBLE_EQ(jobs[0].release, 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].time(4), 100.0);
  EXPECT_EQ(jobs[0].min_procs, 4);
  EXPECT_EQ(jobs[0].community, 7);  // user id
  EXPECT_DOUBLE_EQ(jobs[1].release, 10.0);
  EXPECT_EQ(jobs[2].min_procs, 8);
  check_jobset(jobs, 16);
}

TEST(Swf, TimeScaleApplied) {
  SwfOptions opts;
  opts.time_scale = 0.01;
  const JobSet jobs = parse_swf(kSample, opts);
  EXPECT_DOUBLE_EQ(jobs[0].time(4), 1.0);
  EXPECT_DOUBLE_EQ(jobs[1].release, 0.1);
}

TEST(Swf, MaxJobsCap) {
  SwfOptions opts;
  opts.max_jobs = 2;
  EXPECT_EQ(parse_swf(kSample, opts).size(), 2u);
}

TEST(Swf, SkipsInvalidJobs) {
  const std::string text =
      "1 0 -1 -1 4 -1 -1 4 -1 -1 0 1 1 -1 1 -1 -1 -1\n"  // no run time
      "2 0 -1 50 -1 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"  // no procs
      "3 0 -1 50 2 -1 -1 2 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
  EXPECT_EQ(parse_swf(text).size(), 1u);
  SwfOptions strict;
  strict.skip_invalid = false;
  EXPECT_THROW(parse_swf(text, strict), std::invalid_argument);
}

TEST(Swf, RequestedProcsPreference) {
  const std::string text =
      "1 0 -1 50 2 -1 -1 6 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
  EXPECT_EQ(parse_swf(text)[0].min_procs, 2);
  SwfOptions opts;
  opts.prefer_requested_procs = true;
  EXPECT_EQ(parse_swf(text, opts)[0].min_procs, 6);
}

TEST(Swf, RejectsMalformedLine) {
  EXPECT_THROW(parse_swf("1 2 3\n"), std::invalid_argument);
  EXPECT_TRUE(parse_swf("; only comments\n\n").empty());
}

TEST(Swf, RoundTripThroughWriter) {
  const JobSet jobs = parse_swf(kSample);
  const std::string text = to_swf(jobs);
  const JobSet again = parse_swf(text);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].release, jobs[i].release);
    EXPECT_EQ(again[i].min_procs, jobs[i].min_procs);
    EXPECT_DOUBLE_EQ(again[i].time(again[i].min_procs),
                     jobs[i].time(jobs[i].min_procs));
  }
}

TEST(Swf, WriterIncludesScheduleResults) {
  const JobSet jobs = parse_swf(kSample);
  const Schedule s = conservative_backfill(jobs, 16);
  const std::string text = to_swf(jobs, &s, "scheduled by lgs");
  EXPECT_NE(text.find("scheduled by lgs"), std::string::npos);
  // Status field 1 (completed) must appear for scheduled jobs.
  const JobSet again = parse_swf(text);
  EXPECT_EQ(again.size(), jobs.size());
}

TEST(Swf, FileRoundTrip) {
  const std::string path = "/tmp/lgs_swf_test.swf";
  write_file(path, kSample);
  const JobSet jobs = load_swf_file(path);
  EXPECT_EQ(jobs.size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(load_swf_file("/nonexistent.swf"), std::runtime_error);
}

TEST(Swf, TraceDrivesScheduler) {
  // End to end: parse, schedule, validate.
  const JobSet jobs = parse_swf(kSample);
  const Schedule s = conservative_backfill(jobs, 8);
  EXPECT_TRUE(is_valid(jobs, s));
}

}  // namespace
}  // namespace lgs
