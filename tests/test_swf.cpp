// Tests for the Standard Workload Format reader/writer (workload/swf.h).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/report.h"
#include "core/rng.h"
#include "core/validate.h"
#include "pt/backfill.h"
#include "workload/generators.h"
#include "workload/swf.h"

namespace lgs {
namespace {

const char* kSample =
    "; Sample SWF trace\n"
    "; Computer: test cluster\n"
    "1 0 5 100 4 -1 -1 4 120 -1 1 7 1 -1 1 -1 -1 -1\n"
    "2 10 0 50 1 -1 -1 1 60 -1 1 8 1 -1 1 -1 -1 -1\n"
    "3 20 2 200 8 -1 -1 8 240 -1 1 7 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesBasicTrace) {
  const JobSet jobs = parse_swf(kSample);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id, 0u);  // renumbered densely
  EXPECT_DOUBLE_EQ(jobs[0].release, 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].time(4), 100.0);
  EXPECT_EQ(jobs[0].min_procs, 4);
  EXPECT_EQ(jobs[0].community, 7);  // user id
  EXPECT_DOUBLE_EQ(jobs[1].release, 10.0);
  EXPECT_EQ(jobs[2].min_procs, 8);
  check_jobset(jobs, 16);
}

TEST(Swf, TimeScaleApplied) {
  SwfOptions opts;
  opts.time_scale = 0.01;
  const JobSet jobs = parse_swf(kSample, opts);
  EXPECT_DOUBLE_EQ(jobs[0].time(4), 1.0);
  EXPECT_DOUBLE_EQ(jobs[1].release, 0.1);
}

TEST(Swf, MaxJobsCap) {
  SwfOptions opts;
  opts.max_jobs = 2;
  EXPECT_EQ(parse_swf(kSample, opts).size(), 2u);
}

TEST(Swf, SkipsInvalidJobs) {
  const std::string text =
      "1 0 -1 -1 4 -1 -1 4 -1 -1 0 1 1 -1 1 -1 -1 -1\n"  // no run time
      "2 0 -1 50 -1 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"  // no procs
      "3 0 -1 50 2 -1 -1 2 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
  EXPECT_EQ(parse_swf(text).size(), 1u);
  SwfOptions strict;
  strict.skip_invalid = false;
  EXPECT_THROW(parse_swf(text, strict), std::invalid_argument);
}

TEST(Swf, RequestedProcsPreference) {
  const std::string text =
      "1 0 -1 50 2 -1 -1 6 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
  EXPECT_EQ(parse_swf(text)[0].min_procs, 2);
  SwfOptions opts;
  opts.prefer_requested_procs = true;
  EXPECT_EQ(parse_swf(text, opts)[0].min_procs, 6);
}

TEST(Swf, RejectsMalformedLine) {
  EXPECT_THROW(parse_swf("1 2 3\n"), std::invalid_argument);
  EXPECT_TRUE(parse_swf("; only comments\n\n").empty());
}

TEST(Swf, ToleratesCrlfAndTabSeparators) {
  // The same trace as kSample, saved by a Windows tool: CRLF endings and
  // tab-separated fields (both occur in archive traces).
  std::string crlf;
  for (const char* p = kSample; *p != '\0'; ++p) {
    if (*p == '\n')
      crlf += "\r\n";
    else if (*p == ' ')
      crlf += '\t';
    else
      crlf += *p;
  }
  const JobSet plain = parse_swf(kSample);
  const JobSet windows = parse_swf(crlf);
  ASSERT_EQ(windows.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(windows[i].min_procs, plain[i].min_procs);
    EXPECT_DOUBLE_EQ(windows[i].release, plain[i].release);
    EXPECT_DOUBLE_EQ(windows[i].time(windows[i].min_procs),
                     plain[i].time(plain[i].min_procs));
    EXPECT_EQ(windows[i].community, plain[i].community);
  }
  // A lone CR line and a comment ending in CR are both skipped.
  EXPECT_TRUE(parse_swf("\r\n; comment\r\n").empty());
}

TEST(Swf, ReportsDroppedJobCounts) {
  const std::string text =
      "1 0 -1 -1 4 -1 -1 4 -1 -1 0 1 1 -1 1 -1 -1 -1\n"    // no run time
      "2 0 -1 50 -1 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1\n"  // no procs
      "; a comment, not a data line\n"
      "UnixStartTime: 0\n"  // a header line that lost its ';'
      "3 0 -1 50 2 -1 -1 2 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
  SwfParseStats stats;
  const JobSet jobs = parse_swf(text, {}, &stats);
  EXPECT_EQ(jobs.size(), 1u);
  EXPECT_EQ(stats.data_lines, 4);
  EXPECT_EQ(stats.parsed, 1);
  EXPECT_EQ(stats.dropped_invalid, 3);
  // In strict mode the malformed header line throws instead.
  SwfOptions strict;
  strict.skip_invalid = false;
  EXPECT_THROW(parse_swf("NoSemicolonHeader 1\nx y z\n", strict),
               std::invalid_argument);
  // A clean trace drops nothing.
  SwfParseStats clean;
  parse_swf(kSample, {}, &clean);
  EXPECT_EQ(clean.dropped_invalid, 0);
  EXPECT_EQ(clean.parsed, 3);
  // The file path fills stats too.
  const std::string path = "/tmp/lgs_swf_stats.swf";
  write_file(path, text);
  SwfParseStats from_file;
  load_swf_file(path, {}, &from_file);
  EXPECT_EQ(from_file.dropped_invalid, 3);
  std::remove(path.c_str());
}

TEST(Swf, GeneratedWorkloadRoundTripIdentity) {
  // parse_swf -> to_swf -> parse_swf must be the identity on a generated
  // rigid workload: with max_digits10 serialization every time survives
  // bit-for-bit, so EXPECT_EQ (not NEAR) on the doubles is deliberate.
  Rng rng(2004);
  RigidWorkloadSpec spec;
  spec.count = 120;
  spec.max_procs = 32;
  spec.arrival_window = 500.0;
  JobSet jobs = make_rigid_workload(spec, rng);
  for (Job& j : jobs) j.community = static_cast<int>(j.id % 7) + 1;

  const JobSet once = parse_swf(to_swf(jobs));
  ASSERT_EQ(once.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(once[i].release, jobs[i].release);
    EXPECT_EQ(once[i].min_procs, jobs[i].min_procs);
    EXPECT_EQ(once[i].time(once[i].min_procs),
              jobs[i].time(jobs[i].min_procs));
    EXPECT_EQ(once[i].community, jobs[i].community);
  }
  // And the full cycle is a fixed point: serializing the reparse
  // reproduces the exact same bytes.
  EXPECT_EQ(to_swf(once), to_swf(jobs));
}

TEST(Swf, RoundTripIdentityThroughTimeScale) {
  Rng rng(7);
  RigidWorkloadSpec spec;
  spec.count = 40;
  spec.arrival_window = 100.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const std::string text = to_swf(jobs);
  SwfOptions scaled;
  scaled.time_scale = 1.0 / 3600.0;  // seconds -> hours
  const JobSet hours = parse_swf(text, scaled);
  ASSERT_EQ(hours.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(hours[i].release, jobs[i].release * scaled.time_scale);
    EXPECT_EQ(hours[i].time(hours[i].min_procs),
              jobs[i].time(jobs[i].min_procs) * scaled.time_scale);
  }
}

TEST(Swf, RoundTripIdentityThroughRequestedProcs) {
  // to_swf writes min_procs as allocated (field 5) and max_procs as
  // requested (field 8); for rigid jobs the two agree, so both parser
  // paths reconstruct the same workload.
  Rng rng(13);
  RigidWorkloadSpec spec;
  spec.count = 30;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const std::string text = to_swf(jobs);
  SwfOptions requested;
  requested.prefer_requested_procs = true;
  const JobSet via_requested = parse_swf(text, requested);
  const JobSet via_allocated = parse_swf(text);
  ASSERT_EQ(via_requested.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(via_requested[i].min_procs, jobs[i].min_procs);
    EXPECT_EQ(via_requested[i].min_procs, via_allocated[i].min_procs);
  }
  EXPECT_EQ(to_swf(via_requested), to_swf(via_allocated));
}

TEST(Swf, RoundTripThroughWriter) {
  const JobSet jobs = parse_swf(kSample);
  const std::string text = to_swf(jobs);
  const JobSet again = parse_swf(text);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].release, jobs[i].release);
    EXPECT_EQ(again[i].min_procs, jobs[i].min_procs);
    EXPECT_DOUBLE_EQ(again[i].time(again[i].min_procs),
                     jobs[i].time(jobs[i].min_procs));
  }
}

TEST(Swf, WriterIncludesScheduleResults) {
  const JobSet jobs = parse_swf(kSample);
  const Schedule s = conservative_backfill(jobs, 16);
  const std::string text = to_swf(jobs, &s, "scheduled by lgs");
  EXPECT_NE(text.find("scheduled by lgs"), std::string::npos);
  // Status field 1 (completed) must appear for scheduled jobs.
  const JobSet again = parse_swf(text);
  EXPECT_EQ(again.size(), jobs.size());
}

TEST(Swf, FileRoundTrip) {
  const std::string path = "/tmp/lgs_swf_test.swf";
  write_file(path, kSample);
  const JobSet jobs = load_swf_file(path);
  EXPECT_EQ(jobs.size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(load_swf_file("/nonexistent.swf"), std::runtime_error);
}

TEST(Swf, TraceDrivesScheduler) {
  // End to end: parse, schedule, validate.
  const JobSet jobs = parse_swf(kSample);
  const Schedule s = conservative_backfill(jobs, 8);
  EXPECT_TRUE(is_valid(jobs, s));
}

}  // namespace
}  // namespace lgs
