// Tests for the parallel experiment engine (exp/sweep.h): the
// determinism-proving harness.  The engine's contract is *bit-identical*
// results regardless of thread count or scheduling order, checked here
// differentially against the serial oracle and across 1/2/N threads.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "exp/report_sink.h"
#include "exp/sweep.h"

namespace lgs {
namespace {

// Exact (bitwise) equality of scores: the engine promises determinism,
// not approximate agreement — EXPECT_EQ on doubles is deliberate.
void expect_scores_identical(const PolicyScore& a, const PolicyScore& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.cmax_ratio, b.cmax_ratio);
  EXPECT_EQ(a.sum_wc_ratio, b.sum_wc_ratio);
  EXPECT_EQ(a.mean_flow, b.mean_flow);
  EXPECT_EQ(a.max_flow, b.max_flow);
  EXPECT_EQ(a.utilization, b.utilization);
}

void expect_matrices_identical(const std::vector<MatrixRow>& a,
                               const std::vector<MatrixRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].app, b[r].app);
    EXPECT_EQ(a[r].best_for_cmax, b[r].best_for_cmax);
    EXPECT_EQ(a[r].best_for_sum_wc, b[r].best_for_sum_wc);
    EXPECT_EQ(a[r].best_for_max_flow, b[r].best_for_max_flow);
    ASSERT_EQ(a[r].scores.size(), b[r].scores.size());
    for (std::size_t p = 0; p < a[r].scores.size(); ++p)
      expect_scores_identical(a[r].scores[p], b[r].scores[p]);
  }
}

TEST(Sweep, ParallelMatrixBitIdenticalToSerialOracle) {
  const int m = 16;
  const int jobs = 30;
  const std::uint64_t seed = 7;
  const auto oracle = evaluate_policy_matrix_serial(m, jobs, seed);
  const auto engine = evaluate_policy_matrix(m, jobs, seed);
  expect_matrices_identical(oracle, engine);
}

TEST(Sweep, BitIdenticalAcrossOneTwoAndNThreads) {
  SweepSpec spec;
  spec.machine_sizes = {8, 16};
  spec.seeds = {3, 11};
  spec.jobs_per_class = 20;

  std::vector<SweepResult> runs;
  for (int threads : {1, 2, 0}) {  // 0 = hardware_concurrency
    spec.threads = threads;
    runs.push_back(run_sweep(spec));
  }

  ASSERT_EQ(runs[0].cells.size(), spec.cell_count());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].cells.size(), runs[0].cells.size());
    for (std::size_t i = 0; i < runs[0].cells.size(); ++i) {
      const CellResult& a = runs[0].cells[i];
      const CellResult& b = runs[r].cells[i];
      EXPECT_EQ(a.cell.index, b.cell.index);
      EXPECT_EQ(a.cell.policy, b.cell.policy);
      EXPECT_EQ(a.cell.app, b.cell.app);
      EXPECT_EQ(a.cell.seed, b.cell.seed);
      EXPECT_EQ(a.cell.machines, b.cell.machines);
      EXPECT_EQ(a.cmax, b.cmax);
      EXPECT_EQ(a.sum_weighted, b.sum_weighted);
      expect_scores_identical(a.score, b.score);
      EXPECT_EQ(a.violations, b.violations);
    }
  }
}

TEST(Sweep, EveryCellScheduleValidates) {
  SweepSpec spec;
  spec.machine_sizes = {16};
  spec.seeds = {5};
  spec.jobs_per_class = 25;
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.violation_count, 0u);
  for (const CellResult& c : result.cells)
    EXPECT_TRUE(c.violations.empty())
        << c.cell.policy << " on " << to_string(c.cell.app);
}

TEST(Sweep, GridExpansionCoversEveryCoordinateOnce) {
  SweepSpec spec;
  spec.machine_sizes = {8, 32};
  spec.seeds = {1, 2, 3};
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), spec.cell_count());
  ASSERT_EQ(cells.size(),
            spec.policies.size() * spec.apps.size() * 3u * 2u);
  std::set<std::tuple<std::string, int, std::uint64_t, int>> seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    seen.insert({cells[i].policy, static_cast<int>(cells[i].app),
                 cells[i].seed, cells[i].machines});
  }
  EXPECT_EQ(seen.size(), cells.size()) << "duplicate grid coordinates";
}

TEST(Sweep, DerivedCellSeedsAreStableAndDistinct) {
  // Pinned values: the derivation is part of the reproducibility
  // contract — changing it silently would invalidate archived reports.
  EXPECT_EQ(derive_cell_seed(2004, 0), derive_cell_seed(2004, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i)
    seen.insert(derive_cell_seed(2004, i));
  EXPECT_EQ(seen.size(), 1000u) << "derived seeds collide";
  EXPECT_NE(derive_cell_seed(1, 0), derive_cell_seed(2, 0));

  SweepSpec derived;
  derived.base_seed = 42;
  derived.replicates = 3;
  const auto seeds = derived.replicate_seeds();
  ASSERT_EQ(seeds.size(), 3u);
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(seeds[static_cast<std::size_t>(r)],
              derive_cell_seed(42, static_cast<std::uint64_t>(r)));
}

TEST(Sweep, ParallelForIndexVisitsEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  parallel_for_index(n, 4, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);

  // Degenerate sizes.
  parallel_for_index(0, 4, [&](std::size_t) { FAIL() << "n = 0 ran"; });
  int single = 0;
  parallel_for_index(1, 8, [&](std::size_t) { ++single; });
  EXPECT_EQ(single, 1);
}

TEST(Sweep, ParallelForIndexPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_index(100, 4,
                         [](std::size_t i) {
                           if (i == 37) throw std::runtime_error("cell 37");
                         }),
      std::runtime_error);
}

TEST(Sweep, ReportJsonContainsCellsAndMatrix) {
  SweepSpec spec;
  spec.machine_sizes = {8};
  spec.seeds = {9};
  spec.jobs_per_class = 10;
  const SweepResult result = run_sweep(spec);
  const std::string json = sweep_report_json(spec, result);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"best_for_cmax\""), std::string::npos);
  // One record per cell.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"cmax_ratio\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, spec.cell_count());
}

TEST(Sweep, ReportJsonIsDeterministic) {
  SweepSpec spec;
  spec.machine_sizes = {8};
  spec.seeds = {13};
  spec.jobs_per_class = 10;
  spec.threads = 1;
  std::string first = sweep_report_json(spec, run_sweep(spec));
  spec.threads = 3;
  std::string second = sweep_report_json(spec, run_sweep(spec));
  // Timing and thread fields legitimately differ; scores must not.
  // Compare the documents with wall_ms / threads lines stripped.
  const auto strip = [](const std::string& doc) {
    std::string out;
    std::size_t start = 0;
    while (start < doc.size()) {
      std::size_t end = doc.find('\n', start);
      if (end == std::string::npos) end = doc.size();
      const std::string line = doc.substr(start, end - start);
      if (line.find("wall_ms") == std::string::npos &&
          line.find("threads") == std::string::npos)
        out += line + "\n";
      start = end + 1;
    }
    return out;
  };
  EXPECT_EQ(strip(first), strip(second));
}

TEST(Sweep, MatrixFromSweepRejectsUnknownReplicate) {
  SweepSpec spec;
  spec.machine_sizes = {8};
  spec.seeds = {1};
  spec.jobs_per_class = 5;
  const SweepResult result = run_sweep(spec);
  EXPECT_THROW(matrix_from_sweep(spec, result, 999, 1),
               std::invalid_argument);
  EXPECT_THROW(matrix_from_sweep(spec, result, 8, 999),
               std::invalid_argument);
}

}  // namespace
}  // namespace lgs
