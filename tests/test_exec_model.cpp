// Unit + property tests for the execution-time models (core/exec_model.h).
#include <gtest/gtest.h>

#include <cmath>

#include "core/exec_model.h"

namespace lgs {
namespace {

TEST(ExecModel, SequentialIsConstant) {
  const ExecModel m = ExecModel::sequential(7.5);
  EXPECT_DOUBLE_EQ(m.time(1), 7.5);
  EXPECT_DOUBLE_EQ(m.time(64), 7.5);
  EXPECT_TRUE(m.is_sequential());
  EXPECT_EQ(m.useful_limit(64), 1);
}

TEST(ExecModel, AmdahlMatchesFormula) {
  const ExecModel m = ExecModel::amdahl(100.0, 0.1);
  EXPECT_DOUBLE_EQ(m.time(1), 100.0);
  EXPECT_DOUBLE_EQ(m.time(10), 100.0 * (0.1 + 0.9 / 10));
  EXPECT_NEAR(m.time(1000000), 10.0, 0.1);  // asymptote = serial fraction
}

TEST(ExecModel, PowerLawPerfectSpeedup) {
  const ExecModel m = ExecModel::power_law(64.0, 1.0);
  EXPECT_DOUBLE_EQ(m.time(64), 1.0);
  EXPECT_DOUBLE_EQ(m.work(64), 64.0);  // linear speedup: constant work
  EXPECT_DOUBLE_EQ(m.work(1), 64.0);
}

TEST(ExecModel, CommPenaltyClampsAtOptimum) {
  // t1 = 100, c = 1: unclamped curve minimized near k = 10.
  const ExecModel m = ExecModel::comm_penalty(100.0, 1.0);
  const int best = m.useful_limit(1000);
  EXPECT_NEAR(best, 10, 1);
  // Beyond the optimum the time must not increase.
  EXPECT_DOUBLE_EQ(m.time(best), m.time(best + 5));
  EXPECT_DOUBLE_EQ(m.time(best), m.time(1000));
}

TEST(ExecModel, TableIsMonotonized) {
  // A non-monotone table (time goes back up at k=3) must be clamped.
  const ExecModel m = ExecModel::table({10.0, 6.0, 8.0, 5.0});
  EXPECT_DOUBLE_EQ(m.time(1), 10.0);
  EXPECT_DOUBLE_EQ(m.time(2), 6.0);
  EXPECT_DOUBLE_EQ(m.time(3), 6.0);  // clamped
  EXPECT_DOUBLE_EQ(m.time(4), 5.0);
  EXPECT_DOUBLE_EQ(m.time(9), 5.0);  // beyond table: best value
}

TEST(ExecModel, TableUsefulLimit) {
  const ExecModel m = ExecModel::table({10.0, 6.0, 6.0, 6.0});
  EXPECT_EQ(m.useful_limit(4), 2);
  EXPECT_EQ(m.useful_limit(1), 1);
}

TEST(ExecModel, InvalidArguments) {
  EXPECT_THROW(ExecModel::sequential(0.0), std::invalid_argument);
  EXPECT_THROW(ExecModel::sequential(-1.0), std::invalid_argument);
  EXPECT_THROW(ExecModel::amdahl(10.0, -0.1), std::invalid_argument);
  EXPECT_THROW(ExecModel::amdahl(10.0, 1.1), std::invalid_argument);
  EXPECT_THROW(ExecModel::power_law(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ExecModel::power_law(10.0, 1.5), std::invalid_argument);
  EXPECT_THROW(ExecModel::comm_penalty(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(ExecModel::table({}), std::invalid_argument);
  EXPECT_THROW(ExecModel::table({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW(ExecModel::sequential(1.0).time(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep: every model family must satisfy the §4 monotony
// assumptions — time non-increasing, work non-decreasing.
// ---------------------------------------------------------------------------

struct ModelCase {
  const char* name;
  ExecModel model;
};

class MonotonyTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(MonotonyTest, TimeNonIncreasing) {
  const ExecModel& m = GetParam().model;
  for (int k = 1; k < 256; ++k)
    EXPECT_LE(m.time(k + 1), m.time(k) + 1e-12) << "at k=" << k;
}

TEST_P(MonotonyTest, WorkNonDecreasing) {
  const ExecModel& m = GetParam().model;
  for (int k = 1; k < 256; ++k)
    EXPECT_GE(m.work(k + 1), m.work(k) - 1e-9) << "at k=" << k;
}

TEST_P(MonotonyTest, UsefulLimitIsArgmin) {
  const ExecModel& m = GetParam().model;
  const int lim = m.useful_limit(256);
  ASSERT_GE(lim, 1);
  ASSERT_LE(lim, 256);
  EXPECT_NEAR(m.time(lim), m.time(256), 1e-12);
  if (lim > 1) {
    EXPECT_GT(m.time(lim - 1), m.time(256) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MonotonyTest,
    ::testing::Values(
        ModelCase{"seq", ExecModel::sequential(5.0)},
        ModelCase{"amdahl_lo", ExecModel::amdahl(40.0, 0.02)},
        ModelCase{"amdahl_hi", ExecModel::amdahl(40.0, 0.6)},
        ModelCase{"power_half", ExecModel::power_law(64.0, 0.5)},
        ModelCase{"power_one", ExecModel::power_law(64.0, 1.0)},
        ModelCase{"penalty_small", ExecModel::comm_penalty(100.0, 0.05)},
        ModelCase{"penalty_big", ExecModel::comm_penalty(100.0, 5.0)},
        ModelCase{"table", ExecModel::table({9, 5, 4, 4, 3.5, 3.2})}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lgs
