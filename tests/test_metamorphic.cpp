// Metamorphic properties across the scheduling library: relations that
// must hold between runs on transformed inputs, independent of absolute
// quality.  These catch bugs that per-instance validation cannot.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/backfill.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"
#include "pt/shelves.h"
#include "pt/smart.h"
#include "workload/generators.h"

namespace lgs {
namespace {

JobSet moldable_instance(int seed, int n, int maxp, Time window = 0.0) {
  Rng rng(static_cast<std::uint64_t>(seed));
  MoldableWorkloadSpec spec;
  spec.count = n;
  spec.max_procs = maxp;
  spec.sequential_fraction = 0.3;
  spec.arrival_window = window;
  return make_moldable_workload(spec, rng);
}

/// Multiply every job's execution time (and release) by `c`.
JobSet scaled(const JobSet& jobs, double c) {
  JobSet out;
  for (const Job& j : jobs) {
    // Rebuild via a table over the admissible range to scale exactly.
    std::vector<Time> times;
    const int hi = j.max_procs;
    times.reserve(static_cast<std::size_t>(hi));
    for (int k = 1; k <= hi; ++k)
      times.push_back(k < j.min_procs ? c * j.model.time(j.min_procs)
                                      : c * j.model.time(k));
    Job copy = j;
    copy.model = ExecModel::table(std::move(times));
    copy.release = j.release * c;
    out.push_back(std::move(copy));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Time-scaling invariance: scaling all durations by c scales the makespan
// by (almost exactly) c for the deterministic algorithms.
// ---------------------------------------------------------------------------

class ScalingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScalingProperty, MrtScalesLinearly) {
  const JobSet jobs = moldable_instance(GetParam(), 40, 8);
  const JobSet big = scaled(jobs, 16.0);
  const Time base = mrt_schedule(jobs, 16).schedule.makespan();
  const Time scaled_ms = mrt_schedule(big, 16).schedule.makespan();
  // Binary-search epsilons introduce small wiggle; 3% is far tighter than
  // any real regression.
  EXPECT_NEAR(scaled_ms / base, 16.0, 16.0 * 0.03);
}

TEST_P(ScalingProperty, ShelvesScaleExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  RigidWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 8;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const JobSet big = scaled(jobs, 7.0);
  const Time base = shelf_schedule_rigid(jobs, 16).makespan();
  EXPECT_NEAR(shelf_schedule_rigid(big, 16).makespan(), 7.0 * base,
              1e-6 * base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingProperty, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Machine monotonicity: more machines never hurt (for the bound-driven
// algorithms, within search tolerance).
// ---------------------------------------------------------------------------

class MachineMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(MachineMonotonicity, MrtNeverWorseOnBiggerMachine) {
  const JobSet jobs = moldable_instance(GetParam() + 10, 50, 8);
  Time prev = kTimeInfinity;
  for (int m : {8, 16, 32, 64}) {
    const Time ms = mrt_schedule(jobs, m).schedule.makespan();
    EXPECT_LE(ms, prev * 1.05) << "m=" << m;  // 5% search tolerance
    prev = ms;
  }
}

TEST_P(MachineMonotonicity, ConservativeBackfillMonotone) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  RigidWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 8;
  spec.arrival_window = 30.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  Time prev = kTimeInfinity;
  for (int m : {8, 16, 32}) {
    const Time ms = conservative_backfill(jobs, m).makespan();
    EXPECT_LE(ms, prev + kTimeEps) << "m=" << m;
    prev = ms;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineMonotonicity,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Determinism: identical inputs give bit-identical schedules.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, AllSchedulersDeterministic) {
  const JobSet jobs = moldable_instance(GetParam() + 20, 60, 10, 20.0);
  const auto snapshot = [](const Schedule& s) {
    std::vector<std::tuple<JobId, Time, int, Time>> out;
    for (const Assignment& a : s.assignments())
      out.emplace_back(a.job, a.start, a.nprocs, a.duration);
    return out;
  };
  EXPECT_EQ(snapshot(bicriteria_schedule(jobs, 24).schedule),
            snapshot(bicriteria_schedule(jobs, 24).schedule));

  JobSet offline = jobs;
  for (Job& j : offline) j.release = 0;
  EXPECT_EQ(snapshot(mrt_schedule(offline, 24).schedule),
            snapshot(mrt_schedule(offline, 24).schedule));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Weight monotonicity for Σ wᵢCᵢ-aware algorithms: raising one job's
// weight never pushes its completion later under SMART.
// ---------------------------------------------------------------------------

class WeightMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(WeightMonotonicity, SmartFavorsHeavierJob) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 40);
  RigidWorkloadSpec spec;
  spec.count = 50;
  spec.max_procs = 8;
  JobSet jobs = make_rigid_workload(spec, rng);
  const JobId target = jobs[jobs.size() / 2].id;

  const Time before = smart_schedule(jobs, 16).completion(target);
  for (Job& j : jobs)
    if (j.id == target) j.weight *= 100.0;
  const Time after = smart_schedule(jobs, 16).completion(target);
  EXPECT_LE(after, before + kTimeEps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightMonotonicity,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Subset monotonicity of lower bounds: adding a job never lowers them.
// ---------------------------------------------------------------------------

TEST(LowerBoundMonotonicity, GrowsWithJobs) {
  const JobSet jobs = moldable_instance(77, 40, 8);
  JobSet prefix;
  Time prev_cmax = 0.0;
  double prev_wc = 0.0;
  for (const Job& j : jobs) {
    prefix.push_back(j);
    const Time c = cmax_lower_bound(prefix, 16);
    const double w = sum_weighted_completion_lower_bound(prefix, 16);
    EXPECT_GE(c, prev_cmax - kTimeEps);
    EXPECT_GE(w, prev_wc - 1e-9);
    prev_cmax = c;
    prev_wc = w;
  }
}

}  // namespace
}  // namespace lgs
