// Checkpoint/restore: a batch replay snapshotted at time T and restored
// into a fresh engine must finish BIT-IDENTICAL to the uninterrupted
// run — the same pinned golden digests of tests/test_replay_golden.cpp,
// across all four routing modes, volatility churn and the best-effort
// layer.  Plus the framing rejections: truncation, corruption, version
// skew, config mismatch.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "grid_golden_scenarios.h"
#include "sim/grid_sim.h"

namespace lgs {
namespace {

/// Checkpoint instants exercised per scenario: before the first event,
/// mid-churn, and late in the arrival window.
const Time kCheckpointTimes[] = {0.0, 0.75, 7.25, 21.5};

GridSim make_engine(const GoldenScenario& sc) {
  return GridSim(make_skewed_grid(4, 24, 2.0), golden_options(sc));
}

void submit_golden(GridSim& sim) {
  sim.submit_workloads(split_by_community(golden_workload(), 4));
}

TEST(Checkpoint, RunToResumeMatchesUninterruptedRun) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const auto scenarios = golden_scenarios();
  const auto digests = golden_digests();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    GridSim sim = make_engine(scenarios[i]);
    submit_golden(sim);
    sim.run_to(7.25);
    const GridSimResult res = sim.resume();
    EXPECT_EQ(digest_grid_result(sim, res), digests[i].digest)
        << scenarios[i].name;
  }
}

TEST(Checkpoint, RestoreReproducesGoldenDigests) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const auto scenarios = golden_scenarios();
  const auto digests = golden_digests();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (const Time t : kCheckpointTimes) {
      GridSim writer = make_engine(scenarios[i]);
      submit_golden(writer);
      writer.run_to(t);
      const std::vector<unsigned char> blob = writer.checkpoint();

      GridSim reader = make_engine(scenarios[i]);
      reader.restore(blob);
      const GridSimResult res = reader.resume();
      EXPECT_EQ(digest_grid_result(reader, res), digests[i].digest)
          << scenarios[i].name << " @ t=" << t;
    }
  }
}

TEST(Checkpoint, DoubleCheckpointIsStable) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  // checkpoint() is a const observation: two snapshots at the same
  // quiescent point are byte-identical, and a restored engine
  // re-snapshots to the same bytes.
  const GoldenScenario sc = golden_scenarios()[0];
  GridSim writer = make_engine(sc);
  submit_golden(writer);
  writer.run_to(7.25);
  const std::vector<unsigned char> a = writer.checkpoint();
  const std::vector<unsigned char> b = writer.checkpoint();
  EXPECT_EQ(a, b);

  GridSim reader = make_engine(sc);
  reader.restore(a);
  EXPECT_EQ(reader.checkpoint(), a);
}

TEST(Checkpoint, RejectsTruncatedSnapshot) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[0];
  GridSim writer = make_engine(sc);
  submit_golden(writer);
  writer.run_to(0.75);
  std::vector<unsigned char> blob = writer.checkpoint();
  blob.resize(blob.size() - 7);
  GridSim reader = make_engine(sc);
  EXPECT_THROW(reader.restore(blob), CheckpointError);
  blob.resize(4);  // shorter than the header
  EXPECT_THROW(reader.restore(blob), CheckpointError);
}

TEST(Checkpoint, RejectsCorruptedSnapshot) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[0];
  GridSim writer = make_engine(sc);
  submit_golden(writer);
  writer.run_to(0.75);
  std::vector<unsigned char> blob = writer.checkpoint();
  blob[blob.size() / 2] ^= 0x40;
  GridSim reader = make_engine(sc);
  EXPECT_THROW(reader.restore(blob), CheckpointError);
}

TEST(Checkpoint, RejectsVersionSkew) {
  // Hand-assemble an otherwise valid (checksummed) blob carrying a
  // future format version: the reader must refuse it outright.
  std::vector<unsigned char> blob(kCheckpointMagic,
                                  kCheckpointMagic + sizeof kCheckpointMagic);
  const std::uint32_t version = kCheckpointVersion + 1;
  for (int i = 0; i < 4; ++i)
    blob.push_back(static_cast<unsigned char>((version >> (8 * i)) & 0xff));
  const std::uint64_t sum =
      checkpoint_fnv1a(kCheckpointFnvBasis, blob.data(), blob.size());
  for (int i = 0; i < 8; ++i)
    blob.push_back(static_cast<unsigned char>((sum >> (8 * i)) & 0xff));
  EXPECT_THROW(CheckpointReader r(blob), CheckpointError);
}

TEST(Checkpoint, RejectsForeignBytes) {
  const std::string junk = "this is not a snapshot, not even close....";
  const std::vector<unsigned char> blob(junk.begin(), junk.end());
  EXPECT_THROW(CheckpointReader r(blob), CheckpointError);
}

TEST(Checkpoint, RejectsConfigMismatch) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[0];
  GridSim writer = make_engine(sc);
  submit_golden(writer);
  writer.run_to(0.75);
  const std::vector<unsigned char> blob = writer.checkpoint();

  GridSimOptions other = golden_options(sc);
  other.volatility_seed += 1;  // any config drift must be caught
  GridSim reader(make_skewed_grid(4, 24, 2.0), other);
  EXPECT_THROW(reader.restore(blob), CheckpointError);

  GridSim smaller(make_skewed_grid(3, 24, 2.0), golden_options(sc));
  EXPECT_THROW(smaller.restore(blob), CheckpointError);
}

TEST(Checkpoint, LifecycleGuards) {
  if (!rng_matches_reference_library()) GTEST_SKIP();
  const GoldenScenario sc = golden_scenarios()[0];
  GridSim sim = make_engine(sc);
  EXPECT_THROW(sim.checkpoint(), std::logic_error);
  EXPECT_THROW(sim.resume(), std::logic_error);
  submit_golden(sim);
  sim.run_to(0.75);
  const std::vector<unsigned char> blob = sim.checkpoint();
  // A used engine cannot be restored into.
  EXPECT_THROW(sim.restore(blob), std::logic_error);
  sim.resume();
}

TEST(CheckpointFraming, PrimitiveRoundTrip) {
  CheckpointWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159);
  w.f64(-0.0);
  w.str("hello snapshot");
  const unsigned char raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);
  const std::vector<unsigned char> blob = w.finish();

  CheckpointReader r(blob);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.14159);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // raw IEEE bits, not a text trip
  EXPECT_EQ(r.str(), "hello snapshot");
  unsigned char back[3] = {0, 0, 0};
  r.bytes(back, sizeof back);
  EXPECT_EQ(back[2], 3);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.u8(), CheckpointError);
}

TEST(CheckpointFraming, ByteRunLengthMismatchRejected) {
  CheckpointWriter w;
  const unsigned char raw[4] = {9, 9, 9, 9};
  w.bytes(raw, sizeof raw);
  const std::vector<unsigned char> blob = w.finish();
  CheckpointReader r(blob);
  unsigned char back[8];
  EXPECT_THROW(r.bytes(back, sizeof back), CheckpointError);
}

}  // namespace
}  // namespace lgs
