// Tests for malleable scheduling (pt/malleable.h), §2.2's third PT class.
#include <gtest/gtest.h>

#include "pt/malleable.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Malleable, SingleJobUsesWholeMachine) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(16.0, 1.0), 1, 16)};
  const MalleableSchedule s = malleable_schedule(jobs, 16);
  EXPECT_TRUE(validate_malleable(jobs, 16, s).empty());
  EXPECT_NEAR(s.makespan, 1.0, 1e-9);  // 16 work on 16 perfect procs
  EXPECT_NEAR(s.completion.at(0), 1.0, 1e-9);
}

TEST(Malleable, EquiSplitsEvenly) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(8.0, 1.0), 1, 8),
                 Job::moldable(1, ExecModel::power_law(8.0, 1.0), 1, 8)};
  const MalleableSchedule s = malleable_schedule(jobs, 8);
  EXPECT_TRUE(validate_malleable(jobs, 8, s).empty());
  // Two identical perfect jobs sharing 8 procs: both finish at 2.0.
  EXPECT_NEAR(s.completion.at(0), 2.0, 1e-9);
  EXPECT_NEAR(s.completion.at(1), 2.0, 1e-9);
}

TEST(Malleable, GrowsWhenCompetitorFinishes) {
  // Job 1 is short; after it completes, job 0 should widen and finish
  // earlier than it would on a fixed half-machine allotment.
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(16.0, 1.0), 1, 8),
                 Job::moldable(1, ExecModel::power_law(2.0, 1.0), 1, 8)};
  const MalleableSchedule s = malleable_schedule(jobs, 8);
  EXPECT_TRUE(validate_malleable(jobs, 8, s).empty());
  // Job 1: 2 seq-work on 4 procs = 0.5.  Job 0: progress 0.5*4=2 of 16 by
  // then, remaining 14 on 8 procs = 1.75 -> 2.25 total.
  EXPECT_NEAR(s.completion.at(1), 0.5, 1e-9);
  EXPECT_NEAR(s.completion.at(0), 2.25, 1e-9);
  // A moldable (fixed 4-proc) run would have taken 4.0.
  EXPECT_LT(s.completion.at(0), 4.0);
}

TEST(Malleable, ReleaseDatesCreateIdleThenAdmit) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(4.0, 1.0), 1, 4,
                               /*release=*/10.0)};
  const MalleableSchedule s = malleable_schedule(jobs, 4);
  EXPECT_TRUE(validate_malleable(jobs, 4, s).empty());
  EXPECT_NEAR(s.completion.at(0), 11.0, 1e-9);
  EXPECT_GE(s.phases.front().start, 10.0 - kTimeEps);
}

TEST(Malleable, RigidJobsKeepFixedWidth) {
  JobSet jobs = {Job::rigid(0, 4, 3.0),
                 Job::moldable(1, ExecModel::power_law(4.0, 1.0), 1, 8)};
  const MalleableSchedule s = malleable_schedule(jobs, 8);
  EXPECT_TRUE(validate_malleable(jobs, 8, s).empty());
  for (const MalleablePhase& ph : s.phases) {
    const auto it = ph.allotment.find(0);
    if (it != ph.allotment.end()) {
      EXPECT_EQ(it->second, 4);
    }
  }
}

TEST(Malleable, MaxSpeedupPrefersEfficientJob) {
  // Job 0 scales perfectly (capped at 6 procs), job 1 barely: max-speedup
  // gives job 0 the lion's share and job 1 the leftovers.
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(8.0, 1.0), 1, 6),
                 Job::moldable(1, ExecModel::amdahl(8.0, 0.9), 1, 8)};
  MalleableOptions opts;
  opts.policy = MalleablePolicy::kMaxSpeedup;
  const MalleableSchedule s = malleable_schedule(jobs, 8, opts);
  EXPECT_TRUE(validate_malleable(jobs, 8, s).empty());
  ASSERT_FALSE(s.phases.empty());
  const MalleablePhase& first = s.phases.front();
  EXPECT_GT(first.allotment.at(0), first.allotment.at(1));
}

TEST(Malleable, ReallocPenaltySlowsCompletion) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(16.0, 1.0), 1, 8),
                 Job::moldable(1, ExecModel::power_law(2.0, 1.0), 1, 8)};
  MalleableOptions penalized;
  penalized.realloc_penalty = 0.5;
  const MalleableSchedule free_re = malleable_schedule(jobs, 8);
  const MalleableSchedule paid = malleable_schedule(jobs, 8, penalized);
  EXPECT_TRUE(validate_malleable(jobs, 8, paid).empty());
  EXPECT_GE(paid.completion.at(0), free_re.completion.at(0) - kTimeEps);
}

TEST(Malleable, EmptySet) {
  const MalleableSchedule s = malleable_schedule({}, 4);
  EXPECT_TRUE(s.phases.empty());
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
}

TEST(Malleable, PolicyNames) {
  EXPECT_STREQ(to_string(MalleablePolicy::kEqui), "equi-partition");
  EXPECT_STREQ(to_string(MalleablePolicy::kMaxSpeedup), "max-speedup");
}

// ---------------------------------------------------------------------------
// Properties over random instances and both policies.
// ---------------------------------------------------------------------------

struct MalleableCase {
  int seed;
  MalleablePolicy policy;
  double penalty;
};

class MalleableProperty : public ::testing::TestWithParam<MalleableCase> {};

TEST_P(MalleableProperty, ValidAndConservative) {
  const MalleableCase& param = GetParam();
  Rng rng(param.seed);
  MoldableWorkloadSpec spec;
  spec.count = 40;
  spec.max_procs = 12;
  spec.arrival_window = param.seed % 2 ? 20.0 : 0.0;
  spec.sequential_fraction = 0.25;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const int m = 24;
  MalleableOptions opts;
  opts.policy = param.policy;
  opts.realloc_penalty = param.penalty;
  const MalleableSchedule s = malleable_schedule(jobs, m, opts);

  const auto problems = validate_malleable(jobs, m, s);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_LE(s.peak_demand(), m);
  EXPECT_EQ(s.completion.size(), jobs.size());
  // Makespan can never beat the area bound.
  double area = 0.0;
  for (const Job& j : jobs) area += j.model.time(1);  // perfect-speedup work
  EXPECT_GE(s.makespan * m, area * 0.999 - kTimeEps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MalleableProperty,
    ::testing::Values(MalleableCase{1, MalleablePolicy::kEqui, 0.0},
                      MalleableCase{2, MalleablePolicy::kEqui, 0.0},
                      MalleableCase{3, MalleablePolicy::kEqui, 0.2},
                      MalleableCase{4, MalleablePolicy::kMaxSpeedup, 0.0},
                      MalleableCase{5, MalleablePolicy::kMaxSpeedup, 0.0},
                      MalleableCase{6, MalleablePolicy::kMaxSpeedup, 0.2},
                      MalleableCase{7, MalleablePolicy::kEqui, 0.0},
                      MalleableCase{8, MalleablePolicy::kMaxSpeedup, 0.0}));

}  // namespace
}  // namespace lgs
