// Differential harness for the sharded grid engine (sim/shard_sim.h):
// the parallel replay must be BIT-identical to the serial GridSim.
//
// Three layers of evidence, from pinned to randomized:
//  * the four golden scenarios reproduce the pinned serial FNV-1a
//    digests at 1, 2, 4 and hardware-concurrency worker threads;
//  * sharded-vs-serial digest equality holds on ANY standard library
//    (no reference-Rng skip — both engines draw the same streams);
//  * a 200-round randomized small-grid fuzz (random routing, policies,
//    kill policies, volatility, bags, seeds, thread counts, placement)
//    compares the drained engines field by field — every record, every
//    stats block, bitwise on doubles;
//  * an explicit central-server matrix (kill policy × ≥2 shards) pins
//    the coupled-lockstep strategy against serial digests, and the
//    placement tests pin that the LPT partition is deterministic,
//    balanced, and outcome-neutral.
// Plus unit tests for the SPSC mailbox the static strategies stream
// arrivals through (core/spsc_ring.h), including the push_n/pop_n bulk
// operations the streaming path batches with.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/spsc_ring.h"
#include "grid_golden_scenarios.h"

namespace lgs {
namespace {

// ---------------------------------------------------------------------------
// SPSC mailbox
// ---------------------------------------------------------------------------

TEST(SpscRing, FifoOrderAndWraparound) {
  SpscRing<int> ring(4);  // rounds to 4: wraps many times below
  int next_out = 0, queued = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ++queued;
    // Drain to a varying target occupancy (0..3) so the indices wrap at
    // every phase offset.
    while (queued > i % 4) {
      const int* p = ring.peek();
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(*p, next_out++);
      ring.pop();
      --queued;
    }
  }
  while (const int* p = ring.peek()) {
    EXPECT_EQ(*p, next_out++);
    ring.pop();
  }
  EXPECT_EQ(next_out, 1000);
}

TEST(SpscRing, TryPushFailsOnlyWhenFull) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  ring.peek();
  ring.pop();
  EXPECT_TRUE(ring.try_push(3));
}

TEST(SpscRing, WaitPeekDrainsResidueAfterClose) {
  SpscRing<int> ring(8);
  ring.push(7);
  ring.push(8);
  ring.close();
  const int* p = ring.wait_peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
  ring.pop();
  p = ring.wait_peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 8);
  ring.pop();
  EXPECT_EQ(ring.wait_peek(), nullptr);  // closed AND drained
}

TEST(SpscRing, BulkPushPopWraparound) {
  SpscRing<int> ring(8);
  int in = 0, out = 0;
  int ibuf[5], obuf[8];
  // Varying batch sizes shift the ring offset every iteration, so the
  // two-segment memcpy split is exercised at every phase.
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(iter % 5);
    for (std::size_t i = 0; i < n; ++i) ibuf[i] = in++;
    ASSERT_EQ(ring.try_push_n(ibuf, n), n);
    ASSERT_EQ(ring.pop_n(obuf, 8), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(obuf[i], out++);
  }
  EXPECT_EQ(out, in);
  EXPECT_EQ(ring.pop_n(obuf, 8), 0u);
}

TEST(SpscRing, TryPushNPartialWhenNearlyFull) {
  SpscRing<int> ring(4);
  int buf[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push_n(buf, 6), 4u);  // partial: only 4 slots free
  EXPECT_EQ(ring.try_push_n(buf, 1), 0u);  // full
  int obuf[4];
  ASSERT_EQ(ring.pop_n(obuf, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(obuf[i], i);
}

TEST(SpscRing, WaitPopNDrainsResidueAfterClose) {
  SpscRing<int> ring(8);
  const int items[3] = {7, 8, 9};
  ring.push_n(items, 3);
  ring.close();  // close mid-batch: the residue must still drain
  int obuf[2];
  ASSERT_EQ(ring.wait_pop_n(obuf, 2), 2u);
  EXPECT_EQ(obuf[0], 7);
  EXPECT_EQ(obuf[1], 8);
  ASSERT_EQ(ring.wait_pop_n(obuf, 2), 1u);
  EXPECT_EQ(obuf[0], 9);
  EXPECT_EQ(ring.wait_pop_n(obuf, 2), 0u);  // closed AND drained
}

TEST(SpscRing, CrossThreadBulkStreamKeepsOrder) {
  constexpr int kItems = 60000;
  SpscRing<int> ring(64);
  std::thread producer([&ring] {
    int next = 0;
    int batch[17];
    while (next < kItems) {
      std::size_t n = 1 + static_cast<std::size_t>(next % 17);
      if (next + static_cast<int>(n) > kItems)
        n = static_cast<std::size_t>(kItems - next);
      for (std::size_t i = 0; i < n; ++i) batch[i] = next++;
      ring.push_n(batch, n);
    }
    ring.close();
  });
  int expected = 0;
  bool ordered = true;
  int buf[16];
  while (const std::size_t n = ring.wait_pop_n(buf, 16)) {
    for (std::size_t i = 0; i < n; ++i)
      ordered = ordered && (buf[i] == expected++);
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected, kItems);
}

TEST(SpscRing, CrossThreadStreamKeepsOrder) {
  constexpr int kItems = 50000;
  SpscRing<int> ring(64);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems; ++i) ring.push(i);
    ring.close();
  });
  long long sum = 0;
  int expected = 0;
  bool ordered = true;
  while (const int* p = ring.wait_peek()) {
    ordered = ordered && (*p == expected++);
    sum += *p;
    ring.pop();
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected, kItems);
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

// ---------------------------------------------------------------------------
// Golden scenarios, sharded
// ---------------------------------------------------------------------------

std::vector<int> golden_thread_counts() {
  std::vector<int> counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) counts.push_back(hw);
  return counts;
}

TEST(ShardSim, GoldenDigestsMatchPinnedSerialValues) {
  if (!rng_matches_reference_library())
    GTEST_SKIP() << "non-reference standard library: golden digests do not "
                    "apply (they pin libstdc++ distribution draws)";
  const std::vector<GoldenScenario> scenarios = golden_scenarios();
  const std::vector<GoldenDigest> expected = golden_digests();
  ASSERT_EQ(scenarios.size(), expected.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (const int threads : golden_thread_counts()) {
      SCOPED_TRACE(scenarios[i].name + " @ " + std::to_string(threads) +
                   " threads");
      EXPECT_EQ(run_golden_scenario_sharded(scenarios[i], threads),
                expected[i].digest)
          << "sharded replay diverged from the pinned serial digest";
    }
  }
}

// The library-agnostic half of the differential: even where the pinned
// values do not apply (foreign stdlib draws different workloads), the
// sharded engine must still agree with the serial one bit for bit.
TEST(ShardSim, ShardedEqualsSerialOnAnyLibrary) {
  for (const GoldenScenario& sc : golden_scenarios()) {
    const std::uint64_t serial = run_golden_scenario(sc);
    for (const int threads : golden_thread_counts()) {
      SCOPED_TRACE(sc.name + " @ " + std::to_string(threads) + " threads");
      EXPECT_EQ(run_golden_scenario_sharded(sc, threads), serial);
    }
  }
}

TEST(ShardSim, CentralServerRunsOnMultipleShards) {
  // PR 8 forced one shard whenever best-effort bags were configured;
  // the coupled-lockstep strategy lifted that — the grant FIFO now
  // replays serially on N shards.
  GridSimOptions opts = golden_options(golden_scenarios().front());
  ASSERT_FALSE(opts.bags.empty());
  ShardGridSim sim(make_skewed_grid(4, 24, 2.0), opts, /*threads=*/4);
  EXPECT_EQ(sim.shard_count(), 4)
      << "bags must no longer force single-shard execution";
}

// Explicit central-server matrix: every kill policy × ≥2 shards must
// reproduce the serial digest on both bag scenarios (isolated streams
// into the static tail after campaign completion, threshold into the
// windowed tail).
TEST(ShardSim, CentralServerKillPolicyMatrixMatchesSerial) {
  static const OnlineCluster::KillPolicy kKills[] = {
      OnlineCluster::KillPolicy::kYoungestFirst,
      OnlineCluster::KillPolicy::kOldestFirst,
      OnlineCluster::KillPolicy::kLongestRemaining};
  for (const GoldenScenario& sc : golden_scenarios()) {
    GridSimOptions base = golden_options(sc);
    if (base.bags.empty()) continue;
    for (const OnlineCluster::KillPolicy kill : kKills) {
      GridSimOptions opts = base;
      opts.cluster.kill_policy = kill;
      GridSim serial(make_skewed_grid(4, 24, 2.0), opts);
      serial.submit_workloads(split_by_community(golden_workload(), 4));
      const GridSimResult serial_res = serial.run();
      const std::uint64_t want = digest_grid_result(serial, serial_res);
      for (const int threads : golden_thread_counts()) {
        if (threads < 2) continue;
        SCOPED_TRACE(sc.name + " kill=" + std::to_string(static_cast<int>(kill)) +
                     " @ " + std::to_string(threads) + " threads");
        ShardGridSim sharded(make_skewed_grid(4, 24, 2.0), opts, threads);
        sharded.submit_workloads(split_by_community(golden_workload(), 4));
        const GridSimResult res = sharded.run();
        EXPECT_GE(sharded.shard_count(), 2);
        EXPECT_EQ(digest_grid_result(sharded, res), want);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Placement: LPT partition, deterministic and outcome-neutral
// ---------------------------------------------------------------------------

TEST(ShardPlacementTest, RoundRobinKeepsLegacyLayout) {
  GridSimOptions opts;
  ShardGridSim sim(make_skewed_grid(6, 24, 2.0), opts, /*threads=*/4,
                   nullptr, ShardPlacement::kRoundRobin);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(sim.shard_of(i), static_cast<int>(i % 4));
}

TEST(ShardPlacementTest, LptTieBreaksByClusterThenShardIndex) {
  // skew 1.0: every cluster costs the same, so the LPT order is the
  // cluster index order and ties on shard load resolve to the lowest
  // shard index — the assignment alternates deterministically.
  GridSimOptions opts;
  ShardGridSim sim(make_skewed_grid(5, 8, 1.0), opts, /*threads=*/2,
                   nullptr, ShardPlacement::kLpt);
  EXPECT_EQ(sim.shard_of(0), 0);
  EXPECT_EQ(sim.shard_of(1), 1);
  EXPECT_EQ(sim.shard_of(2), 0);
  EXPECT_EQ(sim.shard_of(3), 1);
  EXPECT_EQ(sim.shard_of(4), 0);
}

TEST(ShardPlacementTest, LptBalancesSkewedLadderBetterThanRoundRobin) {
  const LightGrid grid = make_skewed_grid(8, 64, 4.0);
  GridSimOptions opts;
  const std::size_t kShards = 2;
  const auto max_load = [&](ShardPlacement p) {
    ShardGridSim sim(grid, opts, static_cast<int>(kShards), nullptr, p);
    std::vector<double> load(kShards, 0.0);
    for (std::size_t i = 0; i < grid.clusters.size(); ++i)
      load[static_cast<std::size_t>(sim.shard_of(i))] +=
          grid.clusters[i].processors();
    return *std::max_element(load.begin(), load.end());
  };
  double total = 0.0, largest = 0.0;
  for (const Cluster& c : grid.clusters) {
    total += c.processors();
    largest = std::max(largest, static_cast<double>(c.processors()));
  }
  const double lpt = max_load(ShardPlacement::kLpt);
  const double rr = max_load(ShardPlacement::kRoundRobin);
  // The geometric ladder is exactly the shape round-robin mishandles.
  EXPECT_LT(lpt, rr);
  // Graham's LPT bound: max load <= (4/3 - 1/3m) * OPT, with
  // OPT >= max(average, largest item).
  const double opt_lb = std::max(total / kShards, largest);
  EXPECT_LE(lpt, (4.0 / 3.0 - 1.0 / (3.0 * kShards)) * opt_lb + 1e-9);
}

std::uint64_t run_sharded_with_placement(const GoldenScenario& sc, int threads,
                                         ShardPlacement placement) {
  ShardGridSim sim(make_skewed_grid(4, 24, 2.0), golden_options(sc), threads,
                   nullptr, placement);
  sim.submit_workloads(split_by_community(golden_workload(), 4));
  const GridSimResult res = sim.run();
  return digest_grid_result(sim, res);
}

// The determinism contract keys every per-cluster stream by cluster
// index, so WHERE a cluster runs can never change WHAT it computes:
// both placements must produce the same digest on every scenario.
TEST(ShardPlacementTest, PlacementChoiceNeverChangesReplayDigests) {
  for (const GoldenScenario& sc : golden_scenarios()) {
    for (const int threads : {2, 3}) {
      SCOPED_TRACE(sc.name + " @ " + std::to_string(threads) + " threads");
      EXPECT_EQ(run_sharded_with_placement(sc, threads, ShardPlacement::kLpt),
                run_sharded_with_placement(sc, threads,
                                           ShardPlacement::kRoundRobin));
    }
  }
}

TEST(ShardSim, ThreadCountClampsToClusterCount) {
  GridSimOptions opts;
  ShardGridSim sim(make_skewed_grid(3, 8, 1.0), opts, /*threads=*/16);
  EXPECT_EQ(sim.shard_count(), 3);
}

// ---------------------------------------------------------------------------
// Randomized small-grid fuzz: field-by-field drain-state comparison
// ---------------------------------------------------------------------------

void expect_identical_outcome(const GridSim& serial_sim,
                              const GridSimResult& serial,
                              const ShardGridSim& sharded_sim,
                              const GridSimResult& sharded) {
  ASSERT_EQ(serial_sim.cluster_count(), sharded_sim.cluster_count());
  for (std::size_t c = 0; c < serial_sim.cluster_count(); ++c) {
    SCOPED_TRACE("cluster " + std::to_string(c));
    const OnlineCluster& a = serial_sim.cluster(c);
    const OnlineCluster& b = sharded_sim.cluster(c);
    ASSERT_EQ(a.local_records().size(), b.local_records().size());
    for (std::size_t r = 0; r < a.local_records().size(); ++r) {
      const LocalJobRecord& ra = a.local_records()[r];
      const LocalJobRecord& rb = b.local_records()[r];
      SCOPED_TRACE("record " + std::to_string(r));
      EXPECT_EQ(ra.id, rb.id);
      EXPECT_EQ(ra.community, rb.community);
      EXPECT_EQ(ra.submit, rb.submit);  // bitwise: no tolerance anywhere
      EXPECT_EQ(ra.start, rb.start);
      EXPECT_EQ(ra.finish, rb.finish);
      EXPECT_EQ(ra.procs, rb.procs);
      EXPECT_EQ(ra.best_duration, rb.best_duration);
    }
    const BestEffortStats& ba = a.besteffort_stats();
    const BestEffortStats& bb = b.besteffort_stats();
    EXPECT_EQ(ba.started, bb.started);
    EXPECT_EQ(ba.completed, bb.completed);
    EXPECT_EQ(ba.killed, bb.killed);
    EXPECT_EQ(ba.wasted_time, bb.wasted_time);
    EXPECT_EQ(ba.completed_time, bb.completed_time);
    const VolatilityStats& va = a.volatility_stats();
    const VolatilityStats& vb = b.volatility_stats();
    EXPECT_EQ(va.capacity_changes, vb.capacity_changes);
    EXPECT_EQ(va.local_preemptions, vb.local_preemptions);
    EXPECT_EQ(va.local_wasted, vb.local_wasted);
  }
  EXPECT_EQ(serial.horizon, sharded.horizon);
  EXPECT_EQ(serial.jobs_completed, sharded.jobs_completed);
  EXPECT_EQ(serial.migrations, sharded.migrations);
  EXPECT_EQ(serial.mean_flow, sharded.mean_flow);
  EXPECT_EQ(serial.mean_wait, sharded.mean_wait);
  EXPECT_EQ(serial.mean_slowdown, sharded.mean_slowdown);
  EXPECT_EQ(serial.grid_runs_total, sharded.grid_runs_total);
  EXPECT_EQ(serial.grid_runs_completed, sharded.grid_runs_completed);
  EXPECT_EQ(serial.grid_resubmissions, sharded.grid_resubmissions);
  ASSERT_EQ(serial.communities.size(), sharded.communities.size());
  for (std::size_t i = 0; i < serial.communities.size(); ++i) {
    EXPECT_EQ(serial.communities[i].community,
              sharded.communities[i].community);
    EXPECT_EQ(serial.communities[i].jobs, sharded.communities[i].jobs);
    EXPECT_EQ(serial.communities[i].mean_wait,
              sharded.communities[i].mean_wait);
  }
}

struct FuzzCase {
  LightGrid grid;
  GridSimOptions opts;
  JobSet workload;
  std::size_t clusters;
  int threads;
  ShardPlacement placement;
};

FuzzCase make_fuzz_case(std::uint64_t round) {
  Rng rng(mix_seed(0x5ca1ab1eull, round));
  FuzzCase fc;
  fc.clusters = 2 + rng.uniform_int(0, 3);  // 2..5
  fc.grid = make_skewed_grid(static_cast<int>(fc.clusters),
                             4 + static_cast<int>(rng.uniform_int(0, 8)),
                             1.0 + rng.uniform(0.0, 1.5));
  static const GridRouting kRoutings[] = {
      GridRouting::kIsolated, GridRouting::kThreshold, GridRouting::kEconomic,
      GridRouting::kGlobalPlan};
  fc.opts.routing = kRoutings[rng.uniform_int(0, 3)];
  fc.opts.cluster.policy =
      rng.uniform_int(0, 1) == 0 ? "fcfs-list" : "easy-backfill";
  static const OnlineCluster::KillPolicy kKills[] = {
      OnlineCluster::KillPolicy::kYoungestFirst,
      OnlineCluster::KillPolicy::kOldestFirst,
      OnlineCluster::KillPolicy::kLongestRemaining};
  fc.opts.cluster.kill_policy = kKills[rng.uniform_int(0, 2)];
  fc.opts.wait_threshold = rng.uniform(1.0, 8.0);
  fc.opts.migration_penalty = rng.uniform(0.0, 2.0);
  if (rng.uniform_int(0, 3) == 0)  // every 4th round: best-effort layer
    fc.opts.bags = {{"fuzz-bag", 10 + static_cast<int>(rng.uniform_int(0, 30)),
                     rng.uniform(0.2, 1.0), 1, rng.uniform(0.3, 1.5)}};
  if (rng.uniform_int(0, 2) != 0) {  // 2 of 3 rounds: volatility churn
    fc.opts.volatility.events = 1 + static_cast<int>(rng.uniform_int(0, 4));
    fc.opts.volatility.window = rng.uniform(5.0, 25.0);
    fc.opts.volatility.floor_fraction = rng.uniform(0.3, 0.8);
    fc.opts.volatility_seed = mix_seed(round, 17);
  }
  const int per_community = 6 + static_cast<int>(rng.uniform_int(0, 10));
  for (std::size_t c = 0; c < fc.clusters; ++c) {
    Rng wrng(mix_seed(round * 1000 + 1, c));
    append_workload(fc.workload,
                    make_community_workload(
                        static_cast<Community>(c % 4), per_community, wrng,
                        /*first_id=*/static_cast<JobId>(c * 1000),
                        /*time_scale=*/0.05,
                        /*arrival_window=*/rng.uniform(5.0, 20.0)));
  }
  fc.threads = 2 + static_cast<int>(round % 3);  // 2..4 workers
  // Placement is outcome-neutral; alternating it across rounds fuzzes
  // that claim alongside everything else.
  fc.placement =
      round % 2 == 0 ? ShardPlacement::kLpt : ShardPlacement::kRoundRobin;
  return fc;
}

TEST(ShardSim, RandomizedSmallGridFuzzMatchesSerialFieldByField) {
  constexpr std::uint64_t kRounds = 200;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const FuzzCase fc = make_fuzz_case(round);

    GridSim serial(fc.grid, fc.opts);
    serial.submit_workloads(split_by_community(fc.workload, fc.clusters));
    const GridSimResult serial_res = serial.run();

    ShardGridSim sharded(fc.grid, fc.opts, fc.threads, nullptr, fc.placement);
    sharded.submit_workloads(split_by_community(fc.workload, fc.clusters));
    const GridSimResult sharded_res = sharded.run();

    expect_identical_outcome(serial, serial_res, sharded, sharded_res);
    EXPECT_TRUE(validate_grid_result(sharded, sharded_res).empty());
    if (::testing::Test::HasFailure()) break;  // one full dump is enough
  }
}

// Finite horizons cut both engines at the same instant: arrivals beyond
// the horizon never route, shard clocks all end exactly at the horizon,
// and the partially-run record state still agrees bitwise.
TEST(ShardSim, FiniteHorizonCutMatchesSerial) {
  for (const GoldenScenario& sc : golden_scenarios()) {
    SCOPED_TRACE(sc.name);
    const Time horizon = 15.0;  // mid-run: inside the arrival window

    GridSim serial(make_skewed_grid(4, 24, 2.0), golden_options(sc));
    serial.submit_workloads(split_by_community(golden_workload(), 4));
    const GridSimResult serial_res = serial.run(horizon);

    ShardGridSim sharded(make_skewed_grid(4, 24, 2.0), golden_options(sc),
                         /*threads=*/3);
    sharded.submit_workloads(split_by_community(golden_workload(), 4));
    const GridSimResult sharded_res = sharded.run(horizon);

    EXPECT_EQ(serial_res.horizon, sharded_res.horizon);
    EXPECT_EQ(digest_grid_result(serial, serial_res),
              digest_grid_result(sharded, sharded_res));
  }
}

// The submit_store path of the sharded engine must agree with its
// submit_workloads path (and hence with serial) — same grouping, same
// release-date tie-breaks.
TEST(ShardSim, StorePathMatchesWorkloadPath) {
  const GoldenScenario sc = golden_scenarios()[2];  // economic + volatility
  const std::uint64_t via_workloads = run_golden_scenario_sharded(sc, 3);
  Arena arena;
  const JobStore store = to_job_store(golden_workload(), ArenaRef(arena));
  ShardGridSim sim(make_skewed_grid(4, 24, 2.0), golden_options(sc),
                   /*threads=*/3, &arena);
  sim.submit_store(store);
  const GridSimResult res = sim.run();
  EXPECT_EQ(digest_grid_result(sim, res), via_workloads);
}

}  // namespace
}  // namespace lgs
