// Tests for the Pareto utilities (criteria/pareto.h) and the §4.4 claim
// that Cmax and Σ wᵢCᵢ are genuinely antagonistic.
#include <gtest/gtest.h>

#include "criteria/metrics.h"
#include "criteria/pareto.h"
#include "policy/policy.h"

namespace lgs {
namespace {

TEST(Pareto, Dominance) {
  const BiPoint x{"x", 1.0, 2.0};
  const BiPoint y{"y", 2.0, 3.0};
  const BiPoint z{"z", 1.0, 2.0};
  const BiPoint w{"w", 0.5, 5.0};
  EXPECT_TRUE(dominates(x, y));
  EXPECT_FALSE(dominates(y, x));
  EXPECT_FALSE(dominates(x, z));  // equal: no strict improvement
  EXPECT_FALSE(dominates(x, w));  // incomparable
  EXPECT_FALSE(dominates(w, x));
}

TEST(Pareto, FrontExtraction) {
  const std::vector<BiPoint> pts = {
      {"a", 1.0, 9.0}, {"b", 2.0, 5.0}, {"c", 3.0, 6.0},  // c dominated by b
      {"d", 4.0, 1.0}, {"e", 2.0, 5.0},                   // duplicate of b
  };
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].label, "a");
  EXPECT_EQ(front[1].label, "b");
  EXPECT_EQ(front[2].label, "d");
}

TEST(Pareto, FrontOfEmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}).empty());
  const auto one = pareto_front({{"solo", 3.0, 4.0}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].label, "solo");
}

TEST(Pareto, SlackZeroOnFront) {
  const std::vector<BiPoint> front = {{"a", 1.0, 9.0}, {"b", 4.0, 1.0}};
  EXPECT_DOUBLE_EQ(pareto_slack({"a", 1.0, 9.0}, front), 0.0);
  EXPECT_DOUBLE_EQ(pareto_slack({"q", 0.5, 20.0}, front), 0.0);  // undominated
  // (2, 18) is dominated by a=(1,9): slack = min(2/1, 18/9) - 1 = 1.
  EXPECT_NEAR(pareto_slack({"p", 2.0, 18.0}, front), 1.0, 1e-12);
  // Mildly dominated point has small slack.
  EXPECT_NEAR(pareto_slack({"r", 1.1, 9.1}, front), 0.011, 0.01);
}

// The §4.4 premise, measured: across the policy set on a contended
// workload, the (Cmax, ΣwC) front contains more than one policy — no
// single policy wins both criteria — and the bi-criteria algorithm sits
// close to the front.
TEST(Pareto, CriteriaAreAntagonisticAcrossPolicies) {
  const int m = 24;
  const JobSet jobs = make_application_workload(
      ApplicationClass::kMoldableParallel, 120, m, 31);
  std::vector<BiPoint> pts;
  BiPoint bicrit;
  for (PolicyKind policy : all_policies()) {
    const Schedule s = run_policy(policy, jobs, m);
    const Metrics metrics = compute_metrics(jobs, s);
    const BiPoint p{to_string(policy), metrics.cmax, metrics.sum_weighted};
    pts.push_back(p);
    if (policy == PolicyKind::kBicriteria) bicrit = p;
  }
  const auto front = pareto_front(pts);
  EXPECT_GE(front.size(), 1u);
  // The bi-criteria policy must be within 60% slack of the front on this
  // on-line workload (its guarantee is a constant factor on both axes).
  EXPECT_LE(pareto_slack(bicrit, front), 0.6);
}

}  // namespace
}  // namespace lgs
