// Tests for the grid axes of the experiment engine (exp/grid_sweep.h):
// the acceptance gate is bit-identical results across 1/2/N sweep
// threads, plus pure cells, full grid expansion, and a clean validator
// on every cell.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/rng.h"
#include "exp/grid_sweep.h"

namespace lgs {
namespace {

/// A small but non-trivial sweep: heterogeneous grids, all routings,
/// best-effort campaign and volatility both on.
GridSweepSpec small_spec() {
  GridSweepSpec spec;
  spec.cluster_counts = {2, 3};
  spec.skews = {1.0, 2.0};
  spec.seeds = {5, 21};
  spec.jobs_per_cluster = 12;
  spec.besteffort_runs = 200;
  spec.volatility.events = 2;
  spec.volatility.window = 20.0;
  return spec;
}

void expect_cells_identical(const GridCellResult& a, const GridCellResult& b) {
  // Exact (bitwise) equality: the engine promises determinism, not
  // approximate agreement — EXPECT_EQ on doubles is deliberate.
  EXPECT_EQ(a.cell.index, b.cell.index);
  EXPECT_EQ(a.cell.clusters, b.cell.clusters);
  EXPECT_EQ(a.cell.skew, b.cell.skew);
  EXPECT_EQ(a.cell.routing, b.cell.routing);
  EXPECT_EQ(a.cell.policy, b.cell.policy);
  EXPECT_EQ(a.cell.seed, b.cell.seed);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.mean_flow, b.mean_flow);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.global_utilization, b.global_utilization);
  EXPECT_EQ(a.grid_runs_completed, b.grid_runs_completed);
  EXPECT_EQ(a.grid_resubmissions, b.grid_resubmissions);
  EXPECT_EQ(a.be_kills, b.be_kills);
  EXPECT_EQ(a.local_preemptions, b.local_preemptions);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(GridSweep, BitIdenticalAcrossOneTwoAndNThreads) {
  GridSweepSpec spec = small_spec();
  std::vector<GridSweepResult> runs;
  for (int threads : {1, 2, 0}) {  // 0 = hardware_concurrency
    spec.threads = threads;
    runs.push_back(run_grid_sweep(spec));
  }
  ASSERT_EQ(runs[0].cells.size(), spec.cell_count());
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].cells.size(), runs[0].cells.size());
    for (std::size_t i = 0; i < runs[0].cells.size(); ++i)
      expect_cells_identical(runs[0].cells[i], runs[r].cells[i]);
  }
}

TEST(GridSweep, EvaluateCellIsPure) {
  const GridSweepSpec spec = small_spec();
  const auto cells = expand_grid_cells(spec);
  // The most loaded cell: largest grid, skewed, economic routing.
  const GridCell& cell = cells[cells.size() - 2];
  expect_cells_identical(evaluate_grid_cell(spec, cell),
                         evaluate_grid_cell(spec, cell));
}

TEST(GridSweep, ExpansionCoversEveryCoordinateOnce) {
  const GridSweepSpec spec = small_spec();
  const auto cells = expand_grid_cells(spec);
  ASSERT_EQ(cells.size(), spec.cell_count());
  ASSERT_EQ(cells.size(), 2u * 2u * spec.routings.size() * 2u);
  std::set<std::tuple<int, double, int, std::string, std::uint64_t>> seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    seen.insert({cells[i].clusters, cells[i].skew,
                 static_cast<int>(cells[i].routing), cells[i].policy,
                 cells[i].seed});
  }
  EXPECT_EQ(seen.size(), cells.size()) << "duplicate grid coordinates";
}

TEST(GridSweep, EveryCellValidates) {
  GridSweepSpec spec = small_spec();
  const GridSweepResult result = run_grid_sweep(spec);
  EXPECT_EQ(result.violation_count, 0u);
  for (const GridCellResult& c : result.cells)
    EXPECT_TRUE(c.violations.empty())
        << to_string(c.cell.routing) << " on " << c.cell.clusters
        << " clusters, skew " << c.cell.skew;
}

// The registry unlock: conservative backfilling and a batch policy (via
// the §4.2 adapter) running *online* inside full grid simulations — with
// best-effort campaign and node volatility on — every cell clean under
// validate_grid_result.
TEST(GridSweep, PolicyAxisRunsConservativeAndBatchPoliciesOnline) {
  GridSweepSpec spec = small_spec();
  spec.cluster_counts = {2};
  spec.skews = {2.0};
  spec.seeds = {5};
  spec.routings = {GridRouting::kIsolated, GridRouting::kEconomic};
  spec.policies = {"conservative-bf", "smart-shelves"};
  const GridSweepResult result = run_grid_sweep(spec);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.violation_count, 0u);
  for (const GridCellResult& c : result.cells) {
    EXPECT_TRUE(c.violations.empty())
        << c.cell.policy << " under " << to_string(c.cell.routing) << ": "
        << (c.violations.empty() ? "" : c.violations.front());
    EXPECT_GT(c.jobs, 0) << c.cell.policy;
    EXPECT_GT(c.grid_runs_completed, 0) << c.cell.policy;
  }
}

// An empty policies axis falls back to the base submission system: a
// caller who only sets cluster.policy is never silently overridden.
TEST(GridSweep, EmptyPolicyAxisUsesClusterPolicy) {
  GridSweepSpec spec = small_spec();
  spec.cluster.policy = "easy-backfill";
  ASSERT_TRUE(spec.policies.empty());
  const auto effective = spec.effective_policies();
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(effective.front(), "easy-backfill");
  for (const GridCell& c : expand_grid_cells(spec))
    EXPECT_EQ(c.policy, "easy-backfill");
}

// Different queue policies must actually produce different grid dynamics
// (the axis is live, not cosmetic).
TEST(GridSweep, PolicyAxisChangesTheOutcome) {
  GridSweepSpec spec = small_spec();
  spec.cluster_counts = {2};
  spec.skews = {1.0};
  spec.seeds = {5};
  spec.routings = {GridRouting::kIsolated};
  spec.policies = {"fcfs-list", "smart-shelves"};
  spec.volatility.events = 0;  // isolate the policy effect
  const GridSweepResult result = run_grid_sweep(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.violation_count, 0u);
  EXPECT_NE(result.cells[0].mean_wait, result.cells[1].mean_wait)
      << "fcfs-list and smart-shelves agreed on every start time";
}

TEST(GridSweep, WorkloadsAreKeyedOnClusterIndex) {
  const GridSweepSpec spec = small_spec();
  GridCell two{0, 2, 1.0, GridRouting::kIsolated, "fcfs-list", 5};
  GridCell three{0, 3, 1.0, GridRouting::kIsolated, "fcfs-list", 5};
  const auto w2 = make_grid_workloads(spec, two);
  const auto w3 = make_grid_workloads(spec, three);
  ASSERT_EQ(w2.size(), 2u);
  ASSERT_EQ(w3.size(), 3u);
  // Adding a cluster must not perturb the other clusters' workloads.
  for (std::size_t c = 0; c < 2; ++c) {
    ASSERT_EQ(w2[c].size(), w3[c].size());
    for (std::size_t k = 0; k < w2[c].size(); ++k) {
      EXPECT_EQ(w2[c][k].release, w3[c][k].release);
      EXPECT_EQ(w2[c][k].min_procs, w3[c][k].min_procs);
    }
  }
}

TEST(GridSweep, ReplicateSeedsDeriveFromSharedMixer) {
  GridSweepSpec spec;
  spec.base_seed = 42;
  spec.replicates = 3;
  const auto seeds = spec.replicate_seeds();
  ASSERT_EQ(seeds.size(), 3u);
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(seeds[static_cast<std::size_t>(r)],
              mix_seed(42, static_cast<std::uint64_t>(r)));
}

// Timing and thread fields legitimately differ between runs; everything
// else must not — compare reports with wall_ms / threads(/grid_threads)
// lines stripped.
std::string strip_timing_lines(const std::string& doc) {
  std::string out;
  std::size_t start = 0;
  while (start < doc.size()) {
    std::size_t end = doc.find('\n', start);
    if (end == std::string::npos) end = doc.size();
    const std::string line = doc.substr(start, end - start);
    // arena_peak_bytes is allocator-layout metadata: a sharded cell
    // splits its allocations across per-shard arenas, so the peak sum
    // legitimately differs from the serial single-arena figure while
    // every simulation outcome still byte-matches.
    if (line.find("wall_ms") == std::string::npos &&
        line.find("threads") == std::string::npos &&
        line.find("arena_peak_bytes") == std::string::npos)
      out += line + "\n";
    start = end + 1;
  }
  return out;
}

TEST(GridSweep, ReportJsonIsDeterministicAcrossThreadCounts) {
  GridSweepSpec spec = small_spec();
  spec.threads = 1;
  const std::string first = grid_report_json(spec, run_grid_sweep(spec));
  spec.threads = 3;
  const std::string second = grid_report_json(spec, run_grid_sweep(spec));
  EXPECT_EQ(strip_timing_lines(first), strip_timing_lines(second));
}

// The inner grid_threads axis (sim/shard_sim.h): every cell replayed
// through the sharded engine must reproduce the serial cells bit for
// bit at every worker count.  Bags are dropped here so the cells take
// the barrier-free streaming strategies; the coupled central-server
// strategy is covered by the test below.
TEST(GridSweep, InnerGridThreadsAxisIsBitIdentical) {
  GridSweepSpec spec = small_spec();
  spec.besteffort_runs = 0;
  spec.threads = 2;  // outer cell pool and inner shards compose
  ASSERT_EQ(spec.grid_threads, 1);
  const GridSweepResult serial = run_grid_sweep(spec);
  for (int grid_threads : {2, 3, 0}) {  // 0 = hardware_concurrency
    SCOPED_TRACE(grid_threads);
    spec.grid_threads = grid_threads;
    const GridSweepResult sharded = run_grid_sweep(spec);
    ASSERT_EQ(sharded.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i)
      expect_cells_identical(serial.cells[i], sharded.cells[i]);
  }
}

// With the central best-effort server on (small_spec's default), the
// sharded engine runs the coupled-lockstep strategy on N shards — and
// must STILL byte-match the serial report once the timing/thread lines
// are stripped.
TEST(GridSweep, GridThreadsReportMatchesSerialReportWithBags) {
  GridSweepSpec spec = small_spec();
  spec.threads = 1;
  const std::string serial = grid_report_json(spec, run_grid_sweep(spec));
  spec.grid_threads = 4;
  const std::string sharded = grid_report_json(spec, run_grid_sweep(spec));
  EXPECT_EQ(strip_timing_lines(serial), strip_timing_lines(sharded));
}

TEST(GridSweep, ReportJsonContainsEveryCell) {
  GridSweepSpec spec = small_spec();
  spec.threads = 2;
  const GridSweepResult result = run_grid_sweep(spec);
  const std::string json = grid_report_json(spec, result);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"global-plan\""), std::string::npos);
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"mean_flow\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, spec.cell_count());
}

}  // namespace
}  // namespace lgs
