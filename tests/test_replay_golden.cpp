// Differential gate for the million-job hot-path overhaul: full-stack
// grid replays must stay BIT-identical to the pre-overhaul engines.
//
// The expected digests below were captured from the implementation before
// the Simulator event representation, the proc-assign free-list and the
// GridSim/OnlineCluster dispatch paths were optimized (see
// tests/grid_golden_scenarios.h).  They cover every dynamic layer at
// once: routing (all four GridRouting modes), queue policies (FCFS and
// EASY), best-effort kills/resubmissions and volatility preemption.
#include <gtest/gtest.h>

#include "grid_golden_scenarios.h"

namespace lgs {
namespace {

TEST(ReplayGolden, FullStackDigestsUnchanged) {
  if (!rng_matches_reference_library())
    GTEST_SKIP() << "non-reference standard library: golden digests do not "
                    "apply (they pin libstdc++ distribution draws)";
  const std::vector<GoldenScenario> scenarios = golden_scenarios();
  const std::vector<GoldenDigest> expected = golden_digests();
  ASSERT_EQ(scenarios.size(), expected.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    EXPECT_EQ(scenarios[i].name, expected[i].name);
    EXPECT_EQ(run_golden_scenario(scenarios[i]), expected[i].digest)
        << "optimized engine diverged from the pre-overhaul implementation";
  }
}

TEST(ReplayGolden, DigestIsDeterministicAcrossRuns) {
  const GoldenScenario sc = golden_scenarios().front();
  EXPECT_EQ(run_golden_scenario(sc), run_golden_scenario(sc));
}

// The arena/store replay path (borrowed JobStore + submit_store + an
// external reset-reused arena) must reproduce the SAME pinned digests as
// the fat-Job path: the memory architecture is not allowed to change a
// single bit of any replay.
TEST(ReplayGolden, StorePathDigestsUnchanged) {
  if (!rng_matches_reference_library())
    GTEST_SKIP() << "non-reference standard library: golden digests do not "
                    "apply (they pin libstdc++ distribution draws)";
  const std::vector<GoldenScenario> scenarios = golden_scenarios();
  const std::vector<GoldenDigest> expected = golden_digests();
  ASSERT_EQ(scenarios.size(), expected.size());
  Arena arena;  // shared across scenarios: reset-reuse on the real engine
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    arena.reset();
    EXPECT_EQ(run_golden_scenario_store(scenarios[i], arena),
              expected[i].digest)
        << "arena/store replay diverged from the fat-Job path";
  }
}

}  // namespace
}  // namespace lgs
