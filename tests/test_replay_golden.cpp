// Differential gate for the million-job hot-path overhaul: full-stack
// grid replays must stay BIT-identical to the pre-overhaul engines.
//
// The expected digests below were captured from the implementation before
// the Simulator event representation, the proc-assign free-list and the
// GridSim/OnlineCluster dispatch paths were optimized (see
// tests/grid_golden_scenarios.h).  They cover every dynamic layer at
// once: routing (all four GridRouting modes), queue policies (FCFS and
// EASY), best-effort kills/resubmissions and volatility preemption.
#include <gtest/gtest.h>

#include "grid_golden_scenarios.h"

namespace lgs {
namespace {

struct Expected {
  const char* name;
  std::uint64_t digest;
};

// Captured from the pre-overhaul implementation (commit c853b3d) with
// libstdc++'s distribution algorithms.
constexpr Expected kExpected[] = {
    {"isolated-fcfs-bags-vol", 0x2ea19de7c3954cf2ull},
    {"threshold-easy-bags", 0xb5e4be5273c9e79full},
    {"economic-fcfs-vol", 0x6e90d7f2490c5b24ull},
    {"global-plan-easy", 0xf3dff33f17c00882ull},
};

TEST(ReplayGolden, FullStackDigestsUnchanged) {
  if (!rng_matches_reference_library())
    GTEST_SKIP() << "non-reference standard library: golden digests do not "
                    "apply (they pin libstdc++ distribution draws)";
  const std::vector<GoldenScenario> scenarios = golden_scenarios();
  ASSERT_EQ(scenarios.size(), std::size(kExpected));
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    EXPECT_EQ(scenarios[i].name, kExpected[i].name);
    EXPECT_EQ(run_golden_scenario(scenarios[i]), kExpected[i].digest)
        << "optimized engine diverged from the pre-overhaul implementation";
  }
}

TEST(ReplayGolden, DigestIsDeterministicAcrossRuns) {
  const GoldenScenario sc = golden_scenarios().front();
  EXPECT_EQ(run_golden_scenario(sc), run_golden_scenario(sc));
}

// The arena/store replay path (borrowed JobStore + submit_store + an
// external reset-reused arena) must reproduce the SAME pinned digests as
// the fat-Job path: the memory architecture is not allowed to change a
// single bit of any replay.
TEST(ReplayGolden, StorePathDigestsUnchanged) {
  if (!rng_matches_reference_library())
    GTEST_SKIP() << "non-reference standard library: golden digests do not "
                    "apply (they pin libstdc++ distribution draws)";
  const std::vector<GoldenScenario> scenarios = golden_scenarios();
  ASSERT_EQ(scenarios.size(), std::size(kExpected));
  Arena arena;  // shared across scenarios: reset-reuse on the real engine
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    arena.reset();
    EXPECT_EQ(run_golden_scenario_store(scenarios[i], arena),
              kExpected[i].digest)
        << "arena/store replay diverged from the fat-Job path";
  }
}

}  // namespace
}  // namespace lgs
