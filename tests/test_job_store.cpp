// JobStore hot/cold SoA storage tests: differential against the legacy
// fat-Job path (iteration order, values, execution-time curves must be
// bit-identical), the store-building workload entry points, and the
// no-full-trace-copy regression bar for grid replays over a borrowed
// store.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/arena.h"
#include "core/job.h"
#include "core/job_store.h"
#include "sim/grid_sim.h"
#include "workload/generators.h"
#include "workload/swf.h"

namespace lgs {
namespace {

/// One job of every ExecModel variant (plus rigid, whose constant table
/// compacts to kRigidConst), with non-default scalars everywhere.
JobSet diverse_jobs() {
  JobSet jobs;
  jobs.push_back(Job::sequential(0, 3.5, /*release=*/1.0, /*weight=*/2.0));
  jobs.push_back(
      Job::moldable(1, ExecModel::amdahl(10.0, 0.2), 1, 16, 0.5, 1.5));
  jobs.push_back(
      Job::moldable(2, ExecModel::power_law(8.0, 0.7), 2, 32, 2.0, 0.5));
  jobs.push_back(
      Job::moldable(3, ExecModel::comm_penalty(12.0, 0.3), 1, 64, 0.0, 1.0));
  jobs.push_back(Job::moldable(
      4, ExecModel::table({9.0, 5.0, 4.0, 3.75, 3.7}), 1, 8, 4.0, 3.0));
  jobs.push_back(Job::rigid(5, 4, 2.25, 6.0, 1.25));
  int c = 0;
  for (Job& j : jobs) {
    j.community = c++ % 3;
    j.due = 10.0 + j.release;
  }
  return jobs;
}

TEST(JobStore, HotRowIsOneCacheLine) {
  EXPECT_EQ(sizeof(HotJob), 64u);
}

TEST(JobStore, DifferentialAgainstJobSet) {
  const JobSet jobs = diverse_jobs();
  const JobStore store = to_job_store(jobs);
  ASSERT_EQ(store.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    const Job& j = jobs[i];
    const HotJob& h = store[i];
    // Same iteration order, same scalar fields.
    EXPECT_EQ(h.id, j.id);
    EXPECT_EQ(h.kind, j.kind);
    EXPECT_EQ(h.release, j.release);
    EXPECT_EQ(h.weight, j.weight);
    EXPECT_EQ(h.due, j.due);
    EXPECT_EQ(h.min_procs, j.min_procs);
    EXPECT_EQ(h.max_procs, j.max_procs);
    EXPECT_EQ(h.community, j.community);
    // Bit-identical execution-time curve through the compact handle.
    for (int k = j.min_procs; k <= j.max_procs; ++k) {
      ASSERT_EQ(store.time(i, k), j.time(k)) << "k=" << k;
    }
    EXPECT_EQ(store.best_time(i, 128), j.best_time(128));
    EXPECT_EQ(store.useful_limit(i, j.max_procs),
              j.model.useful_limit(j.max_procs));
  }
}

TEST(JobStore, RoundTripThroughJobSetIsExact) {
  const JobSet jobs = diverse_jobs();
  const JobStore store = to_job_store(jobs);
  const JobSet back = store.to_jobset();
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(back[i].id, jobs[i].id);
    EXPECT_EQ(back[i].kind, jobs[i].kind);
    EXPECT_EQ(back[i].release, jobs[i].release);
    EXPECT_EQ(back[i].weight, jobs[i].weight);
    EXPECT_EQ(back[i].due, jobs[i].due);
    EXPECT_EQ(back[i].min_procs, jobs[i].min_procs);
    EXPECT_EQ(back[i].max_procs, jobs[i].max_procs);
    EXPECT_EQ(back[i].community, jobs[i].community);
    for (int k = jobs[i].min_procs; k <= jobs[i].max_procs; ++k)
      ASSERT_EQ(back[i].time(k), jobs[i].time(k)) << "k=" << k;
  }
}

TEST(JobStore, AppendRigidMatchesFatRigid) {
  JobStore direct;
  direct.append_rigid(7, 5, 3.25, 1.5, 2.5);
  JobStore viaFat;
  viaFat.append(Job::rigid(7, 5, 3.25, 1.5, 2.5));
  ASSERT_EQ(direct.size(), 1u);
  ASSERT_EQ(viaFat.size(), 1u);
  const HotJob& a = direct[0];
  const HotJob& b = viaFat[0];
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.release, b.release);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.min_procs, b.min_procs);
  EXPECT_EQ(a.max_procs, b.max_procs);
  EXPECT_EQ(a.exec_kind, ExecKind::kRigidConst);
  EXPECT_EQ(b.exec_kind, ExecKind::kRigidConst);
  EXPECT_EQ(a.exec_a, b.exec_a);
  // No table pool entry for either: rigid constants live inline.
  EXPECT_EQ(direct.tables().tables(), 0u);
  EXPECT_EQ(viaFat.tables().tables(), 0u);
  EXPECT_THROW(direct.append_rigid(8, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(direct.append_rigid(8, 1, 0.0), std::invalid_argument);
}

TEST(JobStore, ArenaBackedStoreReadsIdentical) {
  const JobSet jobs = diverse_jobs();
  Arena arena;
  const JobStore store = to_job_store(jobs, ArenaRef(arena));
  EXPECT_GE(arena.stats().bytes_used, store.size() * sizeof(HotJob));
  for (std::size_t i = 0; i < jobs.size(); ++i)
    for (int k = jobs[i].min_procs; k <= jobs[i].max_procs; ++k)
      ASSERT_EQ(store.time(i, k), jobs[i].time(k));
}

TEST(JobStore, LargeTraceStoreMatchesLegacyGenerator) {
  const LargeTraceSpec spec;
  const JobStore store = make_large_trace_store(2000, 424242, spec);
  const JobSet legacy = make_large_trace(2000, 424242, spec);
  ASSERT_EQ(store.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_EQ(store[i].id, legacy[i].id);
    ASSERT_EQ(store[i].release, legacy[i].release);
    ASSERT_EQ(store[i].community, legacy[i].community);
    ASSERT_EQ(store[i].min_procs, legacy[i].min_procs);
    ASSERT_EQ(store[i].max_procs, legacy[i].max_procs);
    ASSERT_EQ(store.time(i, store[i].min_procs),
              legacy[i].time(legacy[i].min_procs));
  }
  // Rigid-only trace: the cold slab stays empty.
  EXPECT_EQ(store.tables().tables(), 0u);
}

TEST(JobStore, SwfStoreMatchesLegacyParse) {
  const std::string text =
      "; header comment\n"
      "1 0 -1 100 4 -1 -1 8 120 -1 1 3 -1 -1 -1 -1 -1 -1\n"
      "2 50 -1 200 1 -1 -1 1 -1 -1 1 7 -1 -1 -1 -1 -1 -1\n"
      "3 60 -1 -1 2 -1 -1 2 -1 -1 0 2 -1 -1 -1 -1 -1 -1\n"  // invalid run
      "4 75.5 -1 10 16 -1 -1 16 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  SwfOptions opts;
  opts.time_scale = 0.5;
  SwfParseStats legacy_stats, store_stats;
  const JobSet legacy = parse_swf(text, opts, &legacy_stats);
  const JobStore store = parse_swf_store(text, opts, &store_stats);
  ASSERT_EQ(store.size(), legacy.size());
  EXPECT_EQ(store_stats.data_lines, legacy_stats.data_lines);
  EXPECT_EQ(store_stats.parsed, legacy_stats.parsed);
  EXPECT_EQ(store_stats.dropped_invalid, legacy_stats.dropped_invalid);
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_EQ(store[i].id, legacy[i].id);
    ASSERT_EQ(store[i].release, legacy[i].release);
    ASSERT_EQ(store[i].community, legacy[i].community);
    ASSERT_EQ(store[i].min_procs, legacy[i].min_procs);
    ASSERT_EQ(store.time(i, store[i].min_procs),
              legacy[i].time(legacy[i].min_procs));
  }
}

// The regression bar of the arena refactor: a grid replay over a
// borrowed JobStore must not deep-copy a single Job — submissions flow
// as 64-byte hot rows end to end.  job_copy_count() is a process-wide
// relaxed counter, so this pins the WHOLE replay path, including any
// accidental fat-Job materialization inside the engines.
TEST(JobStore, GridReplayOverStoreCopiesNoJobs) {
  const JobStore store = make_large_trace_store(500, 7, LargeTraceSpec{});
  Arena arena;
  GridSimOptions opts;  // isolated routing, FCFS
  GridSim sim(make_skewed_grid(4, 64, 1.0), opts, &arena);

  const std::uint64_t copies_before = job_copy_count();
  sim.submit_store(store);
  const GridSimResult res = sim.run();
  const std::uint64_t copies_after = job_copy_count();

  EXPECT_EQ(res.jobs_completed, 500);
  EXPECT_EQ(copies_after - copies_before, 0u)
      << "grid replay over a borrowed store deep-copied fat Jobs";
}

// split_by_community takes the set by value and moves each job into its
// bucket: an rvalue split is copy-free too.
TEST(JobStore, SplitByCommunityRvalueCopiesNoJobs) {
  JobSet jobs = make_large_trace(300, 11);
  const std::uint64_t before = job_copy_count();
  const std::vector<JobSet> buckets = split_by_community(std::move(jobs), 4);
  EXPECT_EQ(job_copy_count() - before, 0u);
  std::size_t total = 0;
  for (const JobSet& b : buckets) total += b.size();
  EXPECT_EQ(total, 300u);
}

}  // namespace
}  // namespace lgs
