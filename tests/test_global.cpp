// Tests for the global heterogeneous ECT scheduler (grid/global.h).
#include <gtest/gtest.h>

#include "core/validate.h"
#include "grid/global.h"
#include "workload/generators.h"

namespace lgs {
namespace {

LightGrid hetero_grid() {
  LightGrid g;
  g.name = "hetero";
  g.clusters = {
      {0, "fast", 4, 1, 2.0, Interconnect::kMyrinet, "Linux", 0},
      {1, "slow", 8, 1, 1.0, Interconnect::kFastEthernet, "Linux", 1},
  };
  return g;
}

TEST(GlobalEct, PrefersFasterCluster) {
  const LightGrid grid = hetero_grid();
  JobSet jobs = {Job::sequential(0, 10.0)};
  const GlobalSchedule s = global_ect_schedule(grid, jobs);
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0].cluster, 0);  // completes at 5 vs 10
  EXPECT_DOUBLE_EQ(s.items[0].duration, 5.0);
}

TEST(GlobalEct, SpillsToSlowClusterUnderLoad) {
  const LightGrid grid = hetero_grid();
  JobSet jobs;
  // 9 sequential jobs of 10: the fast cluster (4 procs, speed 2) hosts two
  // waves ending at 5 and 10; the ninth job would end at 15 there, so ECT
  // sends it to the slow cluster (ends at 10).
  for (int i = 0; i < 9; ++i)
    jobs.push_back(Job::sequential(static_cast<JobId>(i), 10.0));
  const GlobalSchedule s = global_ect_schedule(grid, jobs);
  int on_slow = 0;
  for (const GlobalAssignment& a : s.items)
    if (a.cluster == 1) ++on_slow;
  EXPECT_GT(on_slow, 0);
  EXPECT_LE(s.makespan, 10.0 + kTimeEps);  // nothing needs a second round
}

TEST(GlobalEct, WideJobGoesWhereItFits) {
  const LightGrid grid = hetero_grid();
  JobSet jobs = {Job::rigid(0, 6, 4.0)};  // wider than the fast cluster
  const GlobalSchedule s = global_ect_schedule(grid, jobs);
  EXPECT_EQ(s.items[0].cluster, 1);
}

TEST(GlobalEct, ThrowsWhenNoClusterFits) {
  const LightGrid grid = hetero_grid();
  JobSet jobs = {Job::rigid(0, 9, 1.0)};
  EXPECT_THROW(global_ect_schedule(grid, jobs), std::invalid_argument);
  EXPECT_THROW(global_cmax_lower_bound(grid, jobs), std::invalid_argument);
}

TEST(GlobalEct, ClusterViewsAreValidSchedules) {
  const LightGrid grid = hetero_grid();
  Rng rng(5);
  RigidWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 4;
  spec.arrival_window = 20.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const GlobalSchedule s = global_ect_schedule(grid, jobs);

  for (const Cluster& c : grid.clusters) {
    const Schedule view = s.cluster_view(grid, c.id);
    // Scale jobs to the cluster speed so the standard validator applies.
    JobSet scaled;
    for (const Job& j : jobs)
      if (s.find(j.id)->cluster == c.id)
        scaled.push_back(Job::rigid(j.id, j.min_procs,
                                    j.time(j.min_procs) / c.speed,
                                    j.release, j.weight));
    const auto violations = validate(scaled, view);
    EXPECT_TRUE(violations.empty()) << c.name << "\n" << describe(violations);
  }
}

TEST(GlobalEct, RespectsLowerBound) {
  const LightGrid grid = ciment_grid();
  Rng rng(6);
  MoldableWorkloadSpec spec;
  spec.count = 120;
  spec.max_procs = 32;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const GlobalSchedule s = global_ect_schedule(grid, jobs);
  const Time lb = global_cmax_lower_bound(grid, jobs);
  EXPECT_GE(s.makespan, lb - kTimeEps);
  EXPECT_LE(s.makespan, 5.0 * lb) << "ECT should stay near the bound";
}

TEST(GlobalEct, LptOrderHelpsMakespan) {
  const LightGrid grid = hetero_grid();
  Rng rng(7);
  RigidWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 4;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const Time fcfs =
      global_ect_schedule(grid, jobs, GlobalOrder::kSubmission).makespan;
  const Time lpt =
      global_ect_schedule(grid, jobs, GlobalOrder::kLongestFirst).makespan;
  EXPECT_LE(lpt, fcfs * 1.05) << "LPT should not lose badly off-line";
}

}  // namespace
}  // namespace lgs
