// Tests for greedy list scheduling (pt/rigid_list.h).
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "workload/generators.h"
#include "pt/rigid_list.h"

namespace lgs {
namespace {

TEST(RigidList, SequentialFillsMachines) {
  JobSet jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(Job::sequential(static_cast<JobId>(i), 2.0));
  const Schedule s = list_schedule_rigid(jobs, 2);
  EXPECT_TRUE(is_valid(jobs, s));
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);  // 4 unit-pairs on 2 machines
}

TEST(RigidList, RespectsReleaseDates) {
  JobSet jobs = {Job::sequential(0, 1.0, 10.0)};
  const Schedule s = list_schedule_rigid(jobs, 4);
  EXPECT_DOUBLE_EQ(s.find(0)->start, 10.0);
}

TEST(RigidList, GreedyBackfillsAroundWideJob) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 4, 10.0));     // occupies everything
  jobs.push_back(Job::rigid(1, 4, 1.0, 1.0)); // must wait for job 0
  jobs.push_back(Job::sequential(2, 2.0, 1.0));
  // Greedy (non-strict): job 2 cannot fit beside job 0 (4 procs taken)...
  const Schedule greedy = list_schedule_rigid(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, greedy));
  // ...but with 5 machines it starts at its release even though job 1
  // (earlier in the queue) is still waiting.
  const Schedule wide = list_schedule_rigid(jobs, 5);
  EXPECT_DOUBLE_EQ(wide.find(2)->start, 1.0);
  // Strict FCFS forbids the jump.
  const Schedule strict =
      list_schedule_rigid(jobs, 5, {ListOrder::kSubmission, true});
  EXPECT_GT(strict.find(2)->start, 1.0);
  EXPECT_TRUE(is_valid(jobs, strict));
}

TEST(RigidList, RejectsMoldableInput) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(8, 1.0), 1, 8)};
  EXPECT_THROW(list_schedule_rigid(jobs, 8), std::invalid_argument);
}

TEST(RigidList, LptOrderSchedulesLongJobsFirst) {
  JobSet jobs = {Job::sequential(0, 1.0), Job::sequential(1, 9.0)};
  const Schedule s = list_schedule_rigid(jobs, 1, {ListOrder::kLongestFirst, false});
  EXPECT_DOUBLE_EQ(s.find(1)->start, 0.0);
  const Schedule spt = list_schedule_rigid(jobs, 1, {ListOrder::kShortestFirst, false});
  EXPECT_DOUBLE_EQ(spt.find(0)->start, 0.0);
}

TEST(RigidList, EmptyJobSet) {
  const Schedule s = list_schedule_rigid({}, 4);
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// Properties over random instances and all queue orders.
// ---------------------------------------------------------------------------

struct ListCase {
  int seed;
  ListOrder order;
  bool strict;
};

class RigidListProperty : public ::testing::TestWithParam<ListCase> {};

TEST_P(RigidListProperty, ValidAndBounded) {
  const ListCase& param = GetParam();
  Rng rng(param.seed);
  RigidWorkloadSpec spec;
  spec.count = 120;
  spec.max_procs = 10;
  spec.arrival_window = param.seed % 2 ? 50.0 : 0.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const int m = 20;
  const Schedule s =
      list_schedule_rigid(jobs, m, {param.order, param.strict});
  const auto violations = validate(jobs, s);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  // Off-line greedy list scheduling of rigid tasks is (2 - 1/m)-competitive
  // with max-proc demand <= m/2; keep a generous sanity band that any
  // reasonable list schedule must satisfy.
  const Time lb = cmax_lower_bound(jobs, m);
  EXPECT_LE(s.makespan(), 4.0 * lb) << "suspiciously bad list schedule";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RigidListProperty,
    ::testing::Values(ListCase{1, ListOrder::kSubmission, false},
                      ListCase{2, ListOrder::kSubmission, true},
                      ListCase{3, ListOrder::kLongestFirst, false},
                      ListCase{4, ListOrder::kShortestFirst, false},
                      ListCase{5, ListOrder::kWidestFirst, false},
                      ListCase{6, ListOrder::kWeightDensity, false},
                      ListCase{7, ListOrder::kLongestFirst, true},
                      ListCase{8, ListOrder::kWidestFirst, true}));

}  // namespace
}  // namespace lgs
