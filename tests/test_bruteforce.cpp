// Brute-force and numeric cross-checks: the library's closed forms and
// data structures verified against naive reference implementations on
// small instances — the strongest form of correctness evidence we can
// produce without the authors' code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/profile.h"
#include "core/rng.h"
#include "criteria/metrics.h"
#include "dlt/dlt.h"
#include "pt/shelves.h"
#include "pt/smart.h"
#include "workload/generators.h"

namespace lgs {
namespace {

// ---------------------------------------------------------------------------
// DLT: the two-worker star closed form must beat every split found by an
// exhaustive grid search over (α₀, α₁).
// ---------------------------------------------------------------------------

double simulate_two_worker(const DltPlatform& p, double a0, double a1) {
  // One-port sequential service in the solver's order (increasing comm).
  const bool zero_first = p.workers[0].comm <= p.workers[1].comm;
  const DltWorker& w0 = p.workers[zero_first ? 0 : 1];
  const DltWorker& w1 = p.workers[zero_first ? 1 : 0];
  const double s0 = zero_first ? a0 : a1;
  const double s1 = zero_first ? a1 : a0;
  const double send0 = w0.latency + w0.comm * s0;
  const double f0 = send0 + w0.comp * s0;
  const double f1 = send0 + w1.latency + w1.comm * s1 + w1.comp * s1;
  return std::max(f0, f1);
}

TEST(BruteForce, DltTwoWorkerClosedFormIsOptimal) {
  DltPlatform p;
  p.workers = {{0.1, 1.0, 0.02}, {0.3, 0.6, 0.05}};
  const double volume = 25.0;
  const DltPlan plan = single_round_star(p, volume);

  double best = kTimeInfinity;
  const int grid = 4000;
  for (int i = 0; i <= grid; ++i) {
    const double a0 = volume * i / grid;
    best = std::min(best, simulate_two_worker(p, a0, volume - a0));
  }
  // The closed form must match the grid optimum (up to grid resolution).
  EXPECT_NEAR(plan.makespan, best, best * 1e-3);
  EXPECT_LE(best, plan.makespan + best * 1e-3);
}

TEST(BruteForce, DltBusPerturbationsNeverImprove) {
  const DltPlatform p = DltPlatform::homogeneous_bus(4, 0.1, 1.0);
  const double volume = 40.0;
  const DltPlan plan = single_round_bus(p, volume);
  const auto makespan_of = [&](const std::vector<double>& alpha) {
    double bus = 0.0, worst = 0.0;
    for (std::size_t i = 0; i < alpha.size(); ++i) {
      bus += p.workers[i].comm * alpha[i];
      worst = std::max(worst, bus + p.workers[i].comp * alpha[i]);
    }
    return worst;
  };
  const double base = makespan_of(plan.alpha);
  EXPECT_NEAR(base, plan.makespan, 1e-9);
  // Move mass between every pair: never better.
  for (std::size_t i = 0; i < plan.alpha.size(); ++i) {
    for (std::size_t j = 0; j < plan.alpha.size(); ++j) {
      if (i == j) continue;
      std::vector<double> perturbed = plan.alpha;
      const double delta = std::min(0.05 * volume, perturbed[i]);
      perturbed[i] -= delta;
      perturbed[j] += delta;
      EXPECT_GE(makespan_of(perturbed), base - 1e-9)
          << "moving load " << i << "->" << j << " improved the optimum";
    }
  }
}

TEST(BruteForce, SteadyStateMatchesGridSearchTwoWorkers) {
  DltPlatform p;
  p.workers = {{0.2, 1.5, 0.0}, {0.4, 0.7, 0.0}};
  const SteadyState ss = steady_state(p);
  double best = 0.0;
  const int grid = 2000;
  for (int i = 0; i <= grid; ++i) {
    const double x0 = (1.0 / p.workers[0].comp) * i / grid;
    const double bus_left = 1.0 - p.workers[0].comm * x0;
    if (bus_left < 0) continue;
    const double x1 =
        std::min(1.0 / p.workers[1].comp, bus_left / p.workers[1].comm);
    best = std::max(best, x0 + x1);
  }
  EXPECT_NEAR(ss.throughput, best, best * 1e-3);
  EXPECT_GE(ss.throughput, best - best * 1e-3);
}

// ---------------------------------------------------------------------------
// Profile vs a naive time-sampled reference.
// ---------------------------------------------------------------------------

class NaiveProfile {
 public:
  explicit NaiveProfile(int m) : m_(m) {}
  void commit(Time s, Time d, int k) { blocks_.push_back({s, s + d, k}); }
  int used_at(Time t) const {
    int used = 0;
    for (const auto& b : blocks_)
      if (t >= b.s && t < b.e) used += b.k;
    return used;
  }
  bool fits(Time s, Time d, int k) const {
    // Sample the window densely plus all block edges.
    std::vector<Time> points = {s};
    for (const auto& b : blocks_) {
      if (b.s > s && b.s < s + d) points.push_back(b.s);
      if (b.e > s && b.e < s + d) points.push_back(b.e);
    }
    for (Time t : points)
      if (used_at(t) + k > m_) return false;
    return true;
  }

 private:
  struct B {
    Time s, e;
    int k;
  };
  int m_;
  std::vector<B> blocks_;
};

TEST(BruteForce, ProfileAgreesWithNaiveReference) {
  Rng rng(4242);
  Profile fast(12);
  NaiveProfile slow(12);
  for (int step = 0; step < 300; ++step) {
    const int k = static_cast<int>(rng.uniform_int(1, 6));
    const Time d = rng.uniform(0.5, 5.0);
    const Time from = rng.uniform(0.0, 40.0);
    const Time start = fast.earliest_fit(from, d, k);
    ASSERT_TRUE(slow.fits(start, d, k))
        << "earliest_fit returned an infeasible slot at step " << step;
    // And it really is earliest among a sample of earlier candidates.
    for (int probe = 0; probe < 8; ++probe) {
      const Time t = rng.uniform(from, std::max(from, start - 1e-6));
      if (t < start - 1e-6 && slow.fits(t, d, k))
        FAIL() << "missed an earlier feasible slot at step " << step;
    }
    fast.commit(start, d, k);
    slow.commit(start, d, k);
  }
}

// ---------------------------------------------------------------------------
// SMART's Smith-rule shelf ordering vs all permutations of the shelves.
// ---------------------------------------------------------------------------

TEST(BruteForce, SmartShelfOrderIsPermutationOptimal) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    RigidWorkloadSpec spec;
    spec.count = 12;
    spec.max_procs = 4;
    spec.w_min = 1.0;
    spec.w_max = 6.0;
    const JobSet jobs = make_rigid_workload(spec, rng);
    const int m = 8;
    const Schedule smart = smart_schedule(jobs, m);
    const Metrics ms = compute_metrics(jobs, smart);

    // Recover the shelf decomposition from the schedule (equal starts).
    std::vector<Time> starts;
    for (const Assignment& a : smart.assignments())
      if (std::find_if(starts.begin(), starts.end(), [&](Time t) {
            return almost_equal(t, a.start);
          }) == starts.end())
        starts.push_back(a.start);
    if (starts.size() > 7) continue;  // keep factorial small

    struct ShelfInfo {
      Time height = 0.0;
      std::vector<const Assignment*> members;
    };
    std::vector<ShelfInfo> shelves(starts.size());
    std::sort(starts.begin(), starts.end());
    for (const Assignment& a : smart.assignments()) {
      for (std::size_t si = 0; si < starts.size(); ++si) {
        if (almost_equal(a.start, starts[si])) {
          shelves[si].members.push_back(&a);
          break;
        }
      }
    }
    // Shelf heights must be the power-of-two *class* heights SMART
    // ordered by (the trailing shelf's gap-to-makespan is shorter than
    // its class height, since the schedule ends at the last completion).
    Time pmin = kTimeInfinity;
    for (const Job& j : jobs) pmin = std::min(pmin, j.time(j.min_procs));
    for (ShelfInfo& sh : shelves) {
      Time hmax = 0.0;
      for (const Assignment* a : sh.members)
        hmax = std::max(hmax, a->duration);
      const int cls = std::max(
          0, static_cast<int>(std::ceil(std::log2(hmax / pmin) - 1e-12)));
      sh.height = pmin * std::ldexp(1.0, cls);
    }

    // Smith's rule provably minimizes the *shelf-end-charged* objective
    // Σ (shelf weight) · (shelf completion) over shelf permutations; check
    // SMART's chosen order (the identity, since shelves were recovered in
    // start order) achieves that optimum.
    std::unordered_map<JobId, double> weight;
    for (const Job& j : jobs) weight[j.id] = j.weight;
    const auto charged = [&](const std::vector<std::size_t>& order) {
      Time base = 0.0;
      double wc = 0.0;
      for (std::size_t si : order) {
        base += shelves[si].height;
        for (const Assignment* a : shelves[si].members)
          wc += weight[a->job] * base;
      }
      return wc;
    };
    std::vector<std::size_t> perm(shelves.size());
    std::iota(perm.begin(), perm.end(), 0);
    const double smart_charged = charged(perm);
    double best_charged = smart_charged;
    do {
      best_charged = std::min(best_charged, charged(perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_LE(smart_charged, best_charged * (1.0 + 1e-9))
        << "trial " << trial;
    // Sanity: the real Σ wᵢCᵢ is never worse than the charged relaxation.
    EXPECT_LE(ms.sum_weighted, smart_charged * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace lgs
