// Tests for the embedded profiler (core/profiler.h): counter exactness
// against the simulator's own executed() count, zone-tree shape across
// the nested engines, thread-local correctness under the sweep pool,
// snapshot/reset semantics and the report renderers.
//
// Every accumulation assertion is guarded on prof::enabled() so the
// same binary passes in an -DLGS_PROFILING=OFF build, where the macros
// compile to nothing and snapshot() returns an empty disabled Snapshot.
// Counter/zone checks always use before/after *deltas*: the registry is
// process-wide and other tests in this binary accumulate into it too.
#include <gtest/gtest.h>

#include <string>

#include "core/profiler.h"
#include "core/report.h"
#include "core/rng.h"
#include "exp/grid_sweep.h"
#include "sim/grid_sim.h"
#include "sim/shard_sim.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace lgs {
namespace {

std::uint64_t counter_delta(const prof::Snapshot& before,
                            const prof::Snapshot& after,
                            const std::string& name) {
  return after.counter(name) - before.counter(name);
}

/// Total calls of the zone `name` wherever it appears in the tree
/// (root or nested — the call tree keys zones by path, so the same
/// site can show up under several parents).
std::uint64_t zone_calls(const std::vector<prof::ZoneReport>& zones,
                         const std::string& name) {
  std::uint64_t calls = 0;
  for (const prof::ZoneReport& z : zones) {
    if (z.name == name) calls += z.calls;
    calls += zone_calls(z.children, name);
  }
  return calls;
}

TEST(Profiler, EnabledMatchesBuildConfiguration) {
#if LGS_PROFILING
  EXPECT_TRUE(prof::enabled());
  EXPECT_TRUE(prof::snapshot().enabled);
#else
  EXPECT_FALSE(prof::enabled());
  EXPECT_FALSE(prof::snapshot().enabled);
#endif
}

TEST(Profiler, SimEventsCounterMatchesSimulatorExecuted) {
  const prof::Snapshot before = prof::snapshot();
  Simulator sim;
  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i)
    sim.at(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), static_cast<std::uint64_t>(kEvents));
  if (!prof::enabled()) return;
  const prof::Snapshot after = prof::snapshot();
  // Exactness, not approximation: the counter increments once per
  // executed event, nowhere else.
  EXPECT_EQ(counter_delta(before, after, "sim.events"), sim.executed());
}

TEST(Profiler, CancelledSkipsCountedSeparatelyFromExecutions) {
  const prof::Snapshot before = prof::snapshot();
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(sim.at(static_cast<Time>(i), [] {}));
  for (int i = 0; i < 10; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(sim.executed(), 5u);
  if (!prof::enabled()) return;
  const prof::Snapshot after = prof::snapshot();
  EXPECT_EQ(counter_delta(before, after, "sim.events"), 5u);
  EXPECT_EQ(counter_delta(before, after, "sim.cancelled_skips"), 5u);
}

TEST(Profiler, GridRunNestsSimRunInTheZoneTree) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  const prof::Snapshot before = prof::snapshot();
  GridSimOptions opts;
  GridSim grid(make_skewed_grid(2, 8, 1.0), opts);
  Rng rng(7);
  JobSet jobs = make_community_workload(Community::kComputerScience, 40, rng,
                                        0, 1.0, 10.0);
  grid.submit_workloads(split_by_community(std::move(jobs), 2));
  (void)grid.run();
  const prof::Snapshot after = prof::snapshot();

  const prof::ZoneReport* grid_zone = after.find_zone("grid.run");
  ASSERT_NE(grid_zone, nullptr);
  // Nesting: GridSim::run drives the kernel, so sim.run must appear as
  // a child of grid.run, not as a sibling root.
  const prof::ZoneReport* sim_zone = after.find_zone("grid.run/sim.run");
  ASSERT_NE(sim_zone, nullptr);
  EXPECT_GE(counter_delta(before, after, "grid.routes"), 40u);
  EXPECT_GE(counter_delta(before, after, "grid.arrival_batches"), 1u);
  EXPECT_GE(counter_delta(before, after, "cluster.dispatch_cycles"), 1u);
}

TEST(Profiler, ZoneInvariantsHoldAcrossTheTree) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  GridSimOptions opts;
  GridSim grid(make_skewed_grid(2, 8, 1.0), opts);
  Rng rng(11);
  JobSet jobs = make_community_workload(Community::kComputerScience, 30, rng,
                                        0, 1.0, 10.0);
  grid.submit_workloads(split_by_community(std::move(jobs), 2));
  (void)grid.run();
  const prof::Snapshot snap = prof::snapshot();

  // Every zone: non-negative self time, inclusive wall >= sum of the
  // children's walls (within the clamp), calls consistent.
  struct Check {
    static void walk(const std::vector<prof::ZoneReport>& zones) {
      for (const prof::ZoneReport& z : zones) {
        EXPECT_GE(z.self_s, 0.0) << z.name;
        EXPECT_GE(z.wall_s, 0.0) << z.name;
        EXPECT_GT(z.calls, 0u) << z.name;
        double child_wall = 0.0;
        for (const prof::ZoneReport& c : z.children) child_wall += c.wall_s;
        EXPECT_LE(z.self_s, z.wall_s + 1e-12) << z.name;
        EXPECT_NEAR(z.self_s + child_wall, z.wall_s, 1e-9) << z.name;
        walk(z.children);
      }
    }
  };
  Check::walk(snap.roots);
}

TEST(Profiler, SweepPoolThreadsMergeWithoutLosingCells) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  GridSweepSpec spec;
  spec.cluster_counts = {2};
  spec.skews = {1.0, 2.0};
  spec.seeds = {5};
  spec.jobs_per_cluster = 8;
  spec.besteffort_runs = 50;
  const prof::Snapshot before = prof::snapshot();
  spec.threads = 2;  // fresh pool threads: retirement-merge path
  const GridSweepResult two = run_grid_sweep(spec);
  spec.threads = 1;
  const GridSweepResult one = run_grid_sweep(spec);
  const prof::Snapshot after = prof::snapshot();
  // Both runs' cells land in the merged tree — the pool's exited worker
  // threads retire into the aggregate rather than dropping their trees.
  const std::uint64_t cells =
      zone_calls(after.roots, "grid_sweep.cell") -
      zone_calls(before.roots, "grid_sweep.cell");
  EXPECT_EQ(cells, static_cast<std::uint64_t>(one.cells.size() +
                                              two.cells.size()));
  // Main (the threads=1 run executes cells inline) plus at least one
  // retired pool worker.  Not >= 3: a worker that loses every steal
  // race runs zero cells and never registers a thread state.
  EXPECT_GE(after.threads_merged, 2);
}

TEST(Profiler, HighWaterMergesByMaxAndCountBySum) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  const prof::Snapshot before = prof::snapshot();
  LGS_PROF_COUNT("test.unique_sum_counter", 3);
  LGS_PROF_COUNT("test.unique_sum_counter", 4);
  LGS_PROF_HIGHWATER("test.unique_hw_counter", 9);
  LGS_PROF_HIGHWATER("test.unique_hw_counter", 2);
  const prof::Snapshot after = prof::snapshot();
  EXPECT_EQ(counter_delta(before, after, "test.unique_sum_counter"), 7u);
  EXPECT_EQ(after.counter("test.unique_hw_counter"), 9u);
  bool found_hw = false;
  for (const prof::CounterReport& c : after.counters)
    if (c.name == "test.unique_hw_counter") found_hw = c.high_water;
  EXPECT_TRUE(found_hw);
}

TEST(Profiler, ResetClearsAccumulationButKeepsLiveThreadsUsable) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  {
    LGS_PROF_ZONE("test.reset_probe_zone");
    LGS_PROF_COUNT("test.reset_probe_counter", 5);
  }
  EXPECT_GE(prof::snapshot().counter("test.reset_probe_counter"), 5u);
  prof::reset();
  const prof::Snapshot cleared = prof::snapshot();
  EXPECT_EQ(cleared.counter("test.reset_probe_counter"), 0u);
  // Zero-call zones left behind in live threads must not resurface.
  EXPECT_EQ(zone_calls(cleared.roots, "test.reset_probe_zone"), 0u);
  // And the thread keeps accumulating normally afterwards.
  {
    LGS_PROF_ZONE("test.reset_probe_zone");
    LGS_PROF_COUNT("test.reset_probe_counter", 2);
  }
  const prof::Snapshot again = prof::snapshot();
  EXPECT_EQ(again.counter("test.reset_probe_counter"), 2u);
  EXPECT_EQ(zone_calls(again.roots, "test.reset_probe_zone"), 1u);
}

TEST(Profiler, FindZoneWalksPathsAndMissesCleanly) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  {
    LGS_PROF_ZONE("test.outer_zone");
    LGS_PROF_ZONE("test.inner_zone");
  }
  const prof::Snapshot snap = prof::snapshot();
  ASSERT_NE(snap.find_zone("test.outer_zone"), nullptr);
  ASSERT_NE(snap.find_zone("test.outer_zone/test.inner_zone"), nullptr);
  EXPECT_EQ(snap.find_zone("test.outer_zone/no_such_zone"), nullptr);
  EXPECT_EQ(snap.find_zone("no_such_zone"), nullptr);
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
}

TEST(Profiler, RenderersProduceWellFormedOutput) {
  const prof::Snapshot snap = prof::snapshot();
  JsonWriter w;
  prof::write_json(w, snap);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"zones\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  const std::string text = prof::summary(snap);
  EXPECT_FALSE(text.empty());
  if (!prof::enabled()) {
    EXPECT_NE(text.find("compiled out"), std::string::npos);
  }
}

JobSet sharding_probe_workload() {
  JobSet jobs;
  for (int c = 0; c < 4; ++c) {
    Rng rng(mix_seed(21, static_cast<std::uint64_t>(c)));
    append_workload(jobs,
                    make_community_workload(static_cast<Community>(c), 25, rng,
                                            static_cast<JobId>(c) * 100, 1.0,
                                            10.0));
  }
  return jobs;
}

// Multi-producer retirement merge: four shard workers accumulate
// "sim.events" into four private thread states that retire at join; the
// merged counter must equal the engine's own executed() sum EXACTLY —
// no lost updates, no double counts.
TEST(Profiler, ShardWorkerCountersSurviveRetiredThreadMerge) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  const prof::Snapshot before = prof::snapshot();
  GridSimOptions opts;  // isolated, no bags: static strategy, live workers
  ShardGridSim grid(make_skewed_grid(4, 8, 1.5), opts, /*threads=*/4);
  ASSERT_EQ(grid.shard_count(), 4);
  grid.submit_workloads(split_by_community(sharding_probe_workload(), 4));
  (void)grid.run();
  const prof::Snapshot after = prof::snapshot();
  EXPECT_EQ(counter_delta(before, after, "sim.events"),
            grid.events_executed());
  // One grid.shard_run zone entry per worker thread, all surviving the
  // retired-thread merge.
  EXPECT_EQ(zone_calls(after.roots, "grid.shard_run") -
                zone_calls(before.roots, "grid.shard_run"),
            4u);
  EXPECT_GE(after.threads_merged, 2);
}

// Reconciliation against the serial engine: the serial replay's only
// events with no shard counterpart are its arrival-pump firings (the
// sharded engine drives arrivals from outside the queues), so
//   serial sim.events - serial grid.arrival_batches == sharded sim.events
// — and the dynamic strategies must report their barrier waits.
TEST(Profiler, ShardedEventTotalsReconcileWithSerialCounter) {
  if (!prof::enabled()) GTEST_SKIP() << "profiler compiled out";
  GridSimOptions opts;
  opts.routing = GridRouting::kEconomic;  // dynamic: barrier windows
  opts.volatility.events = 3;
  opts.volatility.window = 10.0;
  opts.volatility_seed = 5;

  const prof::Snapshot s0 = prof::snapshot();
  GridSim serial(make_skewed_grid(4, 8, 1.5), opts);
  serial.submit_workloads(split_by_community(sharding_probe_workload(), 4));
  (void)serial.run();
  const prof::Snapshot s1 = prof::snapshot();
  ShardGridSim sharded(make_skewed_grid(4, 8, 1.5), opts, /*threads=*/4);
  ASSERT_EQ(sharded.shard_count(), 4);
  sharded.submit_workloads(split_by_community(sharding_probe_workload(), 4));
  (void)sharded.run();
  const prof::Snapshot s2 = prof::snapshot();

  const std::uint64_t serial_events = counter_delta(s0, s1, "sim.events");
  const std::uint64_t serial_batches =
      counter_delta(s0, s1, "grid.arrival_batches");
  const std::uint64_t sharded_events = counter_delta(s1, s2, "sim.events");
  EXPECT_EQ(sharded_events, sharded.events_executed());
  EXPECT_EQ(sharded_events, serial_events - serial_batches);
  // Every worker acknowledges every window plus the final drain.
  EXPECT_GE(counter_delta(s1, s2, "grid.shard_barrier_waits"), 4u);
}

TEST(Profiler, DisabledMacrosDoNotEvaluateArguments) {
#if !LGS_PROFILING
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  LGS_PROF_COUNT("test.off_counter", bump());
  LGS_PROF_HIGHWATER("test.off_hw", bump());
  EXPECT_EQ(evaluations, 0) << "disabled macros must not evaluate args";
  static_assert(std::is_empty_v<prof::detail::ZoneScope>,
                "disabled ZoneScope must be an empty type");
#else
  GTEST_SKIP() << "argument-elision contract only applies when OFF";
#endif
}

}  // namespace
}  // namespace lgs
