// SwfStreamParser: the incremental parser must be byte-identical to the
// batch parse_swf_store on any chunking of the same text — same JobStore
// rows, same SwfParseStats, same exceptions.  parse_swf_store itself
// delegates to the stream parser (one whole-text feed), so these
// differentials pin the chunk-boundary reassembly logic specifically.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "workload/swf.h"
#include "workload/swf_stream.h"

namespace lgs {
namespace {

/// A deliberately messy trace: comments, CRLF endings, tab separators,
/// leading whitespace, blank lines, malformed/droppable rows, and a
/// final line without a terminator.
const char kMessyTrace[] =
    "; SWF header comment\r\n"
    ";  another ; comment line\n"
    "\n"
    "   \t  \n"
    "1 0.0 -1 10.0 4 -1 -1 4 -1 -1 1 7 -1 -1 -1 -1 -1 -1\n"
    "2\t1.5\t-1\t3.25\t2\t-1\t-1\t2\t-1\t-1\t1\t3\t-1\t-1\t-1\t-1\t-1\t-1\r\n"
    "  3 2.0 -1 5.0 0 -1 -1 0 -1 -1 1 2 -1 -1 -1 -1 -1 -1\n"
    "4 -3.5 -1 2.0 1 -1 -1 2 -1 -1 1 0 -1 -1 -1 -1 -1 -1\r\n"
    "5 4.0 -1 0.0 8 -1 -1 8 -1 -1 1 9 -1 -1 -1 -1 -1 -1\n"
    "6 5.0 -1 1.0 3 -1 -1 5 -1 -1 1 11 -1 -1 -1 -1 -1 -1";

void expect_same_rows(const JobStore& a, const JobStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const HotJob& x = a[i];
    const HotJob& y = b[i];
    EXPECT_EQ(x.id, y.id) << "row " << i;
    EXPECT_EQ(x.release, y.release) << "row " << i;
    EXPECT_EQ(x.weight, y.weight) << "row " << i;
    EXPECT_EQ(x.due, y.due) << "row " << i;
    EXPECT_EQ(x.exec_a, y.exec_a) << "row " << i;
    EXPECT_EQ(x.exec_b, y.exec_b) << "row " << i;
    EXPECT_EQ(x.exec_c, y.exec_c) << "row " << i;
    EXPECT_EQ(x.min_procs, y.min_procs) << "row " << i;
    EXPECT_EQ(x.max_procs, y.max_procs) << "row " << i;
    EXPECT_EQ(x.community, y.community) << "row " << i;
    EXPECT_EQ(x.exec_kind, y.exec_kind) << "row " << i;
    EXPECT_EQ(x.kind, y.kind) << "row " << i;
  }
}

void expect_same_stats(const SwfParseStats& a, const SwfParseStats& b) {
  EXPECT_EQ(a.data_lines, b.data_lines);
  EXPECT_EQ(a.parsed, b.parsed);
  EXPECT_EQ(a.dropped_invalid, b.dropped_invalid);
}

/// Feed `text` in chunks drawn from `rng` and compare against the batch
/// parse with the same options.
void differential(const std::string& text, const SwfOptions& opts, Rng& rng,
                  std::size_t max_chunk) {
  SwfParseStats batch_stats;
  const JobStore batch = parse_swf_store(text, opts, &batch_stats);

  SwfStreamParser p(opts);
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t n = std::min<std::size_t>(
        text.size() - pos,
        static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<int>(max_chunk))));
    p.feed(text.data() + pos, n);
    pos += n;
  }
  p.finish();

  expect_same_stats(batch_stats, p.stats());
  expect_same_rows(batch, p.store());
}

TEST(SwfStream, MatchesBatchOnRandomChunkings) {
  Rng rng(2024);
  const std::string text(kMessyTrace);
  for (int round = 0; round < 40; ++round) {
    differential(text, SwfOptions{}, rng, /*max_chunk=*/7);
    differential(text, SwfOptions{}, rng, /*max_chunk=*/64);
  }
}

TEST(SwfStream, ByteAtATimeFeed) {
  const std::string text(kMessyTrace);
  SwfParseStats batch_stats;
  const JobStore batch = parse_swf_store(text, {}, &batch_stats);

  SwfStreamParser p;
  for (char c : text) p.feed(&c, 1);
  p.finish();
  expect_same_stats(batch_stats, p.stats());
  expect_same_rows(batch, p.store());
}

TEST(SwfStream, OptionVariantsMatchBatch) {
  Rng rng(7);
  const std::string text(kMessyTrace);
  SwfOptions opts;
  opts.prefer_requested_procs = true;
  opts.time_scale = 1.0 / 3600.0;
  for (int round = 0; round < 10; ++round) differential(text, opts, rng, 16);
}

TEST(SwfStream, MaxJobsStopsMidStream) {
  Rng rng(99);
  const std::string text(kMessyTrace);
  SwfOptions opts;
  opts.max_jobs = 2;
  for (int round = 0; round < 10; ++round) differential(text, opts, rng, 9);

  // Stats freeze the moment the cap is reached — trailing lines are
  // never even counted, exactly like the batch parser's early break.
  SwfStreamParser p(opts);
  p.feed(text);
  EXPECT_TRUE(p.done());
  p.finish();
  EXPECT_EQ(p.stats().parsed, 2);
  SwfParseStats batch_stats;
  parse_swf_store(text, opts, &batch_stats);
  EXPECT_EQ(batch_stats.data_lines, p.stats().data_lines);
}

TEST(SwfStream, StrictModeThrowsLikeBatch) {
  SwfOptions strict;
  strict.skip_invalid = false;
  const std::string bad = "1 0.0 -1 10.0 0 -1 -1 0 -1 -1 1 7\n";
  EXPECT_THROW(parse_swf_store(bad, strict), std::invalid_argument);
  SwfStreamParser p(strict);
  EXPECT_THROW(p.feed(bad), std::invalid_argument);

  const std::string short_line = "1 2 3\n";
  SwfStreamParser q(strict);
  EXPECT_THROW(q.feed(short_line), std::invalid_argument);
}

TEST(SwfStream, FinalUnterminatedLineParsesAtFinish) {
  const std::string text = "1 0.0 -1 10.0 4 -1 -1 4 -1 -1 1 7";
  SwfStreamParser p;
  p.feed(text);
  EXPECT_EQ(p.store().size(), 0u);  // no terminator yet
  p.finish();
  EXPECT_EQ(p.store().size(), 1u);
  EXPECT_EQ(p.stats().parsed, 1);
}

TEST(SwfStream, LifecycleGuards) {
  SwfStreamParser p;
  EXPECT_THROW(p.take_store(), std::logic_error);
  p.finish();
  p.finish();  // idempotent
  EXPECT_THROW(p.feed("x", 1), std::logic_error);
  const JobStore s = p.take_store();
  EXPECT_EQ(s.size(), 0u);
}

TEST(SwfStream, EmptyAndCommentOnlyInputs) {
  SwfStreamParser p;
  p.finish();
  EXPECT_EQ(p.stats().data_lines, 0);

  SwfStreamParser q;
  q.feed(std::string("; only a comment\n;\n\n"));
  q.finish();
  EXPECT_EQ(q.stats().data_lines, 0);
  EXPECT_EQ(q.store().size(), 0u);
}

TEST(SwfStream, ChunkedFileLoadMatchesWholeTextParse) {
  // load_swf_file_store streams the file through the incremental parser;
  // the result must equal parsing the file contents as one string.
  const std::string path = ::testing::TempDir() + "lgs_swf_stream_test.swf";
  {
    std::ofstream out(path, std::ios::binary);
    out << kMessyTrace;
  }
  SwfParseStats file_stats, text_stats;
  const JobStore from_file = load_swf_file_store(path, {}, &file_stats);
  const JobStore from_text =
      parse_swf_store(std::string(kMessyTrace), {}, &text_stats);
  expect_same_stats(file_stats, text_stats);
  expect_same_rows(from_file, from_text);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lgs
