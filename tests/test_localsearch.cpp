// Tests for the local-search allotment optimizer (pt/localsearch.h).
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/localsearch.h"
#include "pt/mrt.h"
#include "workload/generators.h"

namespace lgs {
namespace {

JobSet instance(int seed, int n = 50, int maxp = 12) {
  Rng rng(static_cast<std::uint64_t>(seed));
  MoldableWorkloadSpec spec;
  spec.count = n;
  spec.max_procs = maxp;
  spec.sequential_fraction = 0.2;
  return make_moldable_workload(spec, rng);
}

TEST(LocalSearch, NeverWorseThanStart) {
  const JobSet jobs = instance(1);
  const LocalSearchResult r = local_search_moldable(jobs, 24, {500, 7, 0.02});
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  EXPECT_LE(r.schedule.makespan(), r.initial_makespan + kTimeEps);
  EXPECT_GE(r.schedule.makespan(), cmax_lower_bound(jobs, 24) - kTimeEps);
}

TEST(LocalSearch, DeterministicInSeed) {
  const JobSet jobs = instance(2);
  const Time a = local_search_moldable(jobs, 24, {300, 42, 0.02})
                     .schedule.makespan();
  const Time b = local_search_moldable(jobs, 24, {300, 42, 0.02})
                     .schedule.makespan();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(LocalSearch, ZeroIterationsIsJustTheStart) {
  const JobSet jobs = instance(3);
  const LocalSearchResult r = local_search_moldable(jobs, 24, {0, 1, 0.0});
  EXPECT_DOUBLE_EQ(r.schedule.makespan(), r.initial_makespan);
  EXPECT_EQ(r.accepted_moves, 0);
}

TEST(LocalSearch, SandwichesMrt) {
  // The point of the module: LB <= local-search <= useful upper reference
  // close to MRT's result.  On easy instances local search should land at
  // or below MRT's makespan.
  const JobSet jobs = instance(4, 60, 10);
  const int m = 20;
  const Time mrt = mrt_schedule(jobs, m).schedule.makespan();
  const Time ls =
      local_search_moldable(jobs, m, {3000, 11, 0.02}).schedule.makespan();
  EXPECT_LE(ls, mrt * 1.02) << "local search should refine past MRT";
  EXPECT_GE(ls, cmax_lower_bound(jobs, m) - kTimeEps);
}

TEST(LocalSearch, HandlesRigidOnlyInstances) {
  Rng rng(5);
  RigidWorkloadSpec spec;
  spec.count = 30;
  spec.max_procs = 6;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const LocalSearchResult r = local_search_moldable(jobs, 12, {200, 1, 0.02});
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  // Nothing to move: every proposal lands on the same allotment.
  EXPECT_DOUBLE_EQ(r.schedule.makespan(), r.initial_makespan);
}

TEST(LocalSearch, RejectsBadInput) {
  JobSet jobs = {Job::sequential(0, 1.0, /*release=*/1.0)};
  EXPECT_THROW(local_search_moldable(jobs, 4), std::invalid_argument);
  JobSet ok = {Job::sequential(0, 1.0)};
  EXPECT_THROW(local_search_moldable(ok, 4, {-1, 1, 0.0}),
               std::invalid_argument);
}

TEST(LocalSearch, EmptySet) {
  const LocalSearchResult r = local_search_moldable({}, 4);
  EXPECT_TRUE(r.schedule.empty());
}

}  // namespace
}  // namespace lgs
