// Tests for the MRT two-shelf dual approximation (pt/mrt.h), §4.1.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/mrt.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Mrt, SingleJobIsTight) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(64.0, 1.0), 1, 64)};
  const MrtResult r = mrt_schedule(jobs, 64);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  // One perfectly parallel job: optimal = 1.0; MRT must land within 3/2+ε.
  EXPECT_LE(r.schedule.makespan(), 1.5 * (1.0 + 0.03));
}

TEST(Mrt, SequentialJobsBehaveLikePacking) {
  JobSet jobs;
  for (int i = 0; i < 16; ++i)
    jobs.push_back(Job::sequential(static_cast<JobId>(i), 1.0));
  const MrtResult r = mrt_schedule(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  // 16 unit jobs on 4 machines: optimal 4.
  EXPECT_LE(r.schedule.makespan(), 6.0 + kTimeEps);
  EXPECT_GE(r.schedule.makespan(), 4.0 - kTimeEps);
}

TEST(Mrt, EmptyJobSet) {
  const MrtResult r = mrt_schedule({}, 8);
  EXPECT_TRUE(r.schedule.empty());
}

TEST(Mrt, RejectsReleaseDates) {
  JobSet jobs = {Job::sequential(0, 1.0, /*release=*/5.0)};
  EXPECT_THROW(mrt_schedule(jobs, 4), std::invalid_argument);
}

TEST(Mrt, GuaranteeFieldsConsistent) {
  Rng rng(99);
  MoldableWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 16;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const MrtOptions opts{0.02};
  const MrtResult r = mrt_schedule(jobs, 32, opts);
  EXPECT_GE(r.lambda, r.lower_bound - kTimeEps);
  // The two-shelf structure bounds the makespan by 3λ/2.
  EXPECT_LE(r.schedule.makespan(), 1.5 * r.lambda + kTimeEps);
}

// ---------------------------------------------------------------------------
// The headline property (§4.1): on random monotone instances the schedule is
// valid and the makespan stays within the dual-approximation band of the
// lower bound.  Since LB <= OPT, ratio-to-LB <= 1.5(1+ε) certifies the
// 3/2 + ε guarantee whenever the λ search terminates at a certified-
// infeasible lower λ; we assert the slightly looser empirical band 1.6.
// ---------------------------------------------------------------------------

struct MrtCase {
  int seed;
  int machines;
  int jobs;
};

class MrtProperty : public ::testing::TestWithParam<MrtCase> {};

TEST_P(MrtProperty, ValidAndWithinBand) {
  const MrtCase& param = GetParam();
  Rng rng(param.seed);
  MoldableWorkloadSpec spec;
  spec.count = param.jobs;
  spec.max_procs = std::max(2, param.machines / 2);
  spec.sequential_fraction = 0.3;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const MrtResult r = mrt_schedule(jobs, param.machines);

  const auto violations = validate(jobs, r.schedule);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  EXPECT_EQ(r.schedule.size(), jobs.size());

  const Time lb = cmax_lower_bound(jobs, param.machines);
  EXPECT_LE(r.schedule.makespan(), 1.6 * lb)
      << "m=" << param.machines << " n=" << param.jobs;
  EXPECT_LE(r.schedule.makespan(), 1.5 * r.lambda + kTimeEps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrtProperty,
    ::testing::Values(MrtCase{1, 8, 10}, MrtCase{2, 8, 60}, MrtCase{3, 16, 30},
                      MrtCase{4, 16, 120}, MrtCase{5, 64, 40},
                      MrtCase{6, 64, 200}, MrtCase{7, 128, 100},
                      MrtCase{8, 256, 150}, MrtCase{9, 32, 32},
                      MrtCase{10, 100, 300}));

// All-moldable (no sequential) and all-sequential extremes.
class MrtExtremes : public ::testing::TestWithParam<int> {};

TEST_P(MrtExtremes, PureWorkloads) {
  Rng rng(GetParam());
  MoldableWorkloadSpec spec;
  spec.count = 50;
  spec.max_procs = 16;
  spec.sequential_fraction = GetParam() % 2 ? 1.0 : 0.0;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const MrtResult r = mrt_schedule(jobs, 32);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  // All-sequential extremes on a wide machine hit the LB-vs-OPT granularity
  // gap (LB = max(area, pmax) can sit well below OPT when n ≈ m); the
  // certified guarantee is vs OPT, so allow the slightly wider 1.75 band.
  EXPECT_LE(r.schedule.makespan(),
            1.75 * cmax_lower_bound(jobs, 32) + kTimeEps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtExtremes,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace lgs
