// Tests for the centralized best-effort grid (grid/besteffort.h), §5.2.
#include <gtest/gtest.h>

#include "grid/besteffort.h"

namespace lgs {
namespace {

LightGrid two_cluster_grid() {
  LightGrid g;
  g.name = "mini";
  g.clusters = {
      {0, "alpha", 4, 1, 1.0, Interconnect::kGigabitEthernet, "Linux", 0},
      {1, "beta", 2, 1, 2.0, Interconnect::kFastEthernet, "Linux", 1},
  };
  return g;
}

TEST(CentralServer, BagAccounting) {
  CentralServer server({{"bag", 10, 0.5, 2, 1.0}});
  EXPECT_EQ(server.total_runs(), 10);
  EXPECT_EQ(server.pending(), 10);
  BestEffortSource src = server.make_source();
  const auto grants = src.request(3);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_DOUBLE_EQ(grants[0], 0.5);
  EXPECT_EQ(server.pending(), 7);
  src.on_kill(0.5);
  EXPECT_EQ(server.pending(), 8);
  EXPECT_EQ(server.resubmissions(), 1);
  src.on_done();
  EXPECT_EQ(server.completed(), 1);
}

TEST(CentralServer, GrantsCappedByRequest) {
  CentralServer server({{"bag", 2, 1.0, 2, 1.0}});
  BestEffortSource src = server.make_source();
  EXPECT_EQ(src.request(10).size(), 2u);
  EXPECT_EQ(src.request(10).size(), 0u);
}

TEST(Centralized, GridJobsFillIdleClusters) {
  const LightGrid grid = two_cluster_grid();
  // No local jobs at all: the grid bag has the machines to itself.
  const std::vector<JobSet> locals = {{}, {}};
  const CentralizedResult res =
      run_centralized(grid, locals, {{"campaign", 60, 1.0, 2, 1.0}});
  EXPECT_EQ(res.grid_runs_completed, 60);
  EXPECT_EQ(res.grid_resubmissions, 0);
  EXPECT_TRUE(res.local_unaffected);
  for (const ClusterOutcome& c : res.clusters) {
    EXPECT_EQ(c.be.killed, 0);
    EXPECT_GT(c.utilization_total, 0.5);
    EXPECT_DOUBLE_EQ(c.utilization_local, 0.0);
  }
}

TEST(Centralized, LocalJobsNeverDisturbed) {
  const LightGrid grid = two_cluster_grid();
  std::vector<JobSet> locals(2);
  // Bursty local load on cluster 0 so kills must happen.
  for (int i = 0; i < 10; ++i)
    locals[0].push_back(
        Job::rigid(static_cast<JobId>(i), 4, 2.0, 3.0 * i + 1.0));
  for (int i = 0; i < 5; ++i)
    locals[1].push_back(
        Job::sequential(static_cast<JobId>(100 + i), 4.0, 2.0 * i));
  const CentralizedResult res =
      run_centralized(grid, locals, {{"campaign", 200, 0.7, 2, 1.0}});
  EXPECT_TRUE(res.local_unaffected)
      << "best-effort jobs must not delay local jobs";
  EXPECT_EQ(res.grid_runs_completed, 200);
  // The bursty cluster must have produced kills and resubmissions.
  EXPECT_GT(res.clusters[0].be.killed, 0);
  EXPECT_EQ(res.grid_resubmissions,
            res.clusters[0].be.killed + res.clusters[1].be.killed);
  EXPECT_GT(res.clusters[0].be.wasted_time, 0.0);
  // Utilization with grid jobs dominates local-only utilization.
  for (const ClusterOutcome& c : res.clusters)
    EXPECT_GE(c.utilization_total, c.utilization_local - 1e-12);
}

TEST(Centralized, EveryRunEventuallyCompletes) {
  const LightGrid grid = two_cluster_grid();
  std::vector<JobSet> locals(2);
  for (int i = 0; i < 20; ++i)
    locals[0].push_back(
        Job::rigid(static_cast<JobId>(i), 3, 1.0, 0.8 * i));
  const CentralizedResult res =
      run_centralized(grid, locals, {{"campaign", 50, 0.3, 2, 1.0}});
  EXPECT_EQ(res.grid_runs_completed, res.grid_runs_total);
  EXPECT_EQ(res.grid_runs_total, 50);
}

TEST(Centralized, NoBagMeansPureLocal) {
  const LightGrid grid = two_cluster_grid();
  std::vector<JobSet> locals(2);
  locals[0].push_back(Job::sequential(0, 5.0));
  const CentralizedResult res = run_centralized(grid, locals, {});
  EXPECT_EQ(res.grid_runs_total, 0);
  EXPECT_TRUE(res.local_unaffected);
  EXPECT_GT(res.clusters[0].utilization_local, 0.0);
}

TEST(Centralized, KillPolicyAblation) {
  const LightGrid grid = two_cluster_grid();
  std::vector<JobSet> locals(2);
  for (int i = 0; i < 8; ++i)
    locals[0].push_back(
        Job::rigid(static_cast<JobId>(i), 4, 1.5, 4.0 * i + 2.0));
  for (auto policy : {OnlineCluster::KillPolicy::kYoungestFirst,
                      OnlineCluster::KillPolicy::kOldestFirst,
                      OnlineCluster::KillPolicy::kLongestRemaining}) {
    OnlineCluster::Options opts;
    opts.kill_policy = policy;
    const CentralizedResult res = run_centralized(
        grid, locals, {{"campaign", 100, 0.9, 2, 1.0}}, opts);
    EXPECT_TRUE(res.local_unaffected);
    EXPECT_EQ(res.grid_runs_completed, 100);
  }
}

}  // namespace
}  // namespace lgs
