// Tests for the on-line batch transformation (pt/batch.h), §4.2.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/batch.h"
#include "pt/mrt.h"
#include "pt/shelves.h"
#include "pt/allotment.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Batch, AllReleasedAtZeroIsOneBatch) {
  JobSet jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(Job::sequential(static_cast<JobId>(i), 1.0));
  const BatchResult r = online_moldable_schedule(jobs, 4);
  EXPECT_EQ(r.batches, 1);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
}

TEST(Batch, LateArrivalOpensNewBatch) {
  JobSet jobs;
  jobs.push_back(Job::sequential(0, 10.0));
  jobs.push_back(Job::sequential(1, 1.0, /*release=*/2.0));  // arrives mid-batch
  const BatchResult r = online_moldable_schedule(jobs, 4);
  EXPECT_EQ(r.batches, 2);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  // The second batch opens when the first finishes.
  EXPECT_GE(r.schedule.find(1)->start, 10.0 - kTimeEps);
}

TEST(Batch, IdleGapBeforeLateRelease) {
  JobSet jobs = {Job::sequential(0, 1.0, /*release=*/100.0)};
  const BatchResult r = online_moldable_schedule(jobs, 4);
  EXPECT_EQ(r.batches, 1);
  EXPECT_DOUBLE_EQ(r.schedule.find(0)->start, 100.0);
}

TEST(Batch, EmptySet) {
  EXPECT_TRUE(online_moldable_schedule({}, 4).schedule.empty());
}

TEST(Batch, WorksWithAnyOfflineAlgo) {
  JobSet jobs;
  for (int i = 0; i < 20; ++i)
    jobs.push_back(
        Job::rigid(static_cast<JobId>(i), 1 + i % 4, 2.0, i * 0.5));
  const BatchResult r =
      batch_schedule(jobs, 8, [](const JobSet& batch, int m) {
        return shelf_schedule_rigid(batch, m);
      });
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  EXPECT_GE(r.batches, 2);
}

// ---------------------------------------------------------------------------
// §4.2 property: batching a ρ-approximation yields 2ρ on-line.  With the MRT
// inner algorithm (3/2 + ε) the band is 3 + ε against OPT ≥ LB; empirical
// runs sit well below — assert the certified 3.1·LB.
// ---------------------------------------------------------------------------

class BatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(BatchProperty, OnlineMoldableWithinTwiceOfflineBand) {
  Rng rng(GetParam());
  MoldableWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 12;
  spec.arrival_window = 60.0;
  spec.sequential_fraction = 0.4;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const int m = 24;
  const BatchResult r = online_moldable_schedule(jobs, m);
  const auto violations = validate(jobs, r.schedule);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  EXPECT_LE(r.schedule.makespan(), 3.1 * cmax_lower_bound(jobs, m));
  EXPECT_GE(r.batches, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace lgs
