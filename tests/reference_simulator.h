// The std::function-based DES kernel the slab-slot Simulator replaced —
// kept verbatim as the differential-test oracle (tests/test_simulator.cpp
// replays randomized event scripts through both kernels and requires
// identical execution sequences), the same role tests/reference_profile.h
// plays for the availability-profile core.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace lgs {

class ReferenceSimulator {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  Time now() const { return now_; }

  EventId at(Time t, Callback cb, int priority = 0) {
    if (t < now_ - kTimeEps)
      throw std::invalid_argument("cannot schedule an event in the past");
    const EventId id = next_id_++;
    queue_.push(Ev{t, priority, id, std::move(cb)});
    return id;
  }

  EventId after(Time delay, Callback cb, int priority = 0) {
    return at(now_ + delay, std::move(cb), priority);
  }

  void cancel(EventId id) {
    // Mirrors the production kernel's id validation (never-scheduled and
    // future ids are rejected; see test CancelOfFutureIdIsRejected).
    if (id == 0 || id >= next_id_) return;
    cancelled_.insert(id);
  }

  void run(Time horizon = kTimeInfinity) {
    while (!queue_.empty()) {
      if (queue_.top().t > horizon) break;
      Ev ev = std::move(const_cast<Ev&>(queue_.top()));
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) continue;
      now_ = ev.t;
      ++executed_;
      ev.cb();
    }
    if (queue_.empty()) cancelled_.clear();
    if (now_ < horizon && horizon != kTimeInfinity) now_ = horizon;
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Ev {
    Time t;
    int priority;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace lgs
