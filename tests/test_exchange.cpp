// Tests for decentralized load exchange (grid/exchange.h), §5.2.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "grid/exchange.h"

namespace lgs {
namespace {

LightGrid two_cluster_grid() {
  LightGrid g;
  g.name = "mini";
  g.clusters = {
      {0, "alpha", 4, 1, 1.0, Interconnect::kGigabitEthernet, "Linux", 0},
      {1, "beta", 4, 1, 1.0, Interconnect::kFastEthernet, "Linux", 1},
  };
  return g;
}

std::vector<JobSet> lopsided_workload() {
  // Cluster 0 drowning, cluster 1 idle.
  std::vector<JobSet> w(2);
  for (int i = 0; i < 24; ++i) {
    Job j = Job::sequential(static_cast<JobId>(i), 10.0, 0.1 * i);
    j.community = 0;
    w[0].push_back(std::move(j));
  }
  return w;
}

TEST(Exchange, IsolatedNeverMigrates) {
  const ExchangeResult res =
      run_exchange(two_cluster_grid(), lopsided_workload(),
                   {ExchangePolicy::kIsolated, 10.0, 1.0});
  EXPECT_EQ(res.migrations, 0);
  EXPECT_GT(res.mean_flow, 0.0);
}

TEST(Exchange, EconomicBalancesLopsidedLoad) {
  const ExchangeOptions isolated{ExchangePolicy::kIsolated, 10.0, 1.0};
  const ExchangeOptions economic{ExchangePolicy::kEconomic, 10.0, 1.0};
  const ExchangeResult iso =
      run_exchange(two_cluster_grid(), lopsided_workload(), isolated);
  const ExchangeResult eco =
      run_exchange(two_cluster_grid(), lopsided_workload(), economic);
  EXPECT_GT(eco.migrations, 0);
  EXPECT_LT(eco.mean_flow, iso.mean_flow)
      << "exchanging work must help a drowning cluster";
  EXPECT_LT(eco.horizon, iso.horizon + kTimeEps);
}

TEST(Exchange, ThresholdMigratesOnlyUnderPressure) {
  // Huge threshold: behaves like isolated.
  const ExchangeResult calm =
      run_exchange(two_cluster_grid(), lopsided_workload(),
                   {ExchangePolicy::kThreshold, 1e9, 1.0});
  EXPECT_EQ(calm.migrations, 0);
  // Tiny threshold: migrates.
  const ExchangeResult eager =
      run_exchange(two_cluster_grid(), lopsided_workload(),
                   {ExchangePolicy::kThreshold, 0.5, 1.0});
  EXPECT_GT(eager.migrations, 0);
}

TEST(Exchange, CommunityAccounting) {
  std::vector<JobSet> w(2);
  Job a = Job::sequential(0, 5.0);
  a.community = 3;
  Job b = Job::sequential(1, 5.0);
  b.community = 7;
  w[0].push_back(a);
  w[1].push_back(b);
  const ExchangeResult res = run_exchange(two_cluster_grid(), w, {});
  ASSERT_EQ(res.communities.size(), 2u);
  EXPECT_EQ(res.communities[0].community, 3);
  EXPECT_EQ(res.communities[0].jobs, 1);
  EXPECT_EQ(res.communities[1].community, 7);
  EXPECT_GE(res.communities[0].mean_slowdown, 1.0 - 1e-9);
}

TEST(Exchange, WideJobStaysWhereItFits) {
  LightGrid g = two_cluster_grid();
  g.clusters[1].nodes = 2;  // too small for a 4-wide job
  std::vector<JobSet> w(2);
  // Load cluster 0 heavily, then submit a 4-wide job: economic must NOT
  // migrate it to the tiny cluster.
  for (int i = 0; i < 10; ++i)
    w[0].push_back(Job::sequential(static_cast<JobId>(i), 10.0));
  w[0].push_back(Job::rigid(100, 4, 1.0, 0.5));
  const ExchangeResult res =
      run_exchange(g, w, {ExchangePolicy::kEconomic, 10.0, 1.0});
  EXPECT_GT(res.mean_flow, 0.0);  // completed without throwing
}

Cluster four_proc_cluster(ClusterId id) {
  return {id, "ew", 4, 1, 1.0, Interconnect::kGigabitEthernet, "Linux", 0};
}

TEST(Exchange, ExpectedWaitIsWidthAware) {
  Simulator sim;
  OnlineCluster cluster(sim, four_proc_cluster(0));
  cluster.submit_local(Job::rigid(0, 2, 10.0));  // 2 procs until t=10
  cluster.submit_local(Job::rigid(1, 1, 4.0));   // 1 proc until t=4
  // Backlog: (2*10 + 1*4) / 4 = 6 processor-seconds per processor.
  EXPECT_NEAR(cluster.expected_wait(1), 6.0, 1e-9);
  // A 2-wide job frees up at t=4 (the 1-wide completion) — still below
  // the backlog, so the signal stays 6.
  EXPECT_NEAR(cluster.expected_wait(2), 6.0, 1e-9);
  // A full-width job cannot start before the last completion at t=10:
  // the width term dominates the backlog.
  EXPECT_NEAR(cluster.expected_wait(4), 10.0, 1e-9);
  sim.run();
  // Drained cluster: no wait at any width.
  EXPECT_DOUBLE_EQ(cluster.expected_wait(1), 0.0);
  EXPECT_DOUBLE_EQ(cluster.expected_wait(4), 0.0);
  EXPECT_THROW(cluster.expected_wait(0), std::invalid_argument);
}

TEST(Exchange, ExpectedWaitIsInfiniteBeyondShrunkCapacity) {
  Simulator sim;
  OnlineCluster cluster(sim, four_proc_cluster(0));
  cluster.set_capacity(2);  // volatility took half the nodes
  // Wider than the usable capacity: unbounded until nodes return — the
  // signal must repel routing instead of reporting a tiny backlog.
  EXPECT_EQ(cluster.expected_wait(3), kTimeInfinity);
  EXPECT_EQ(cluster.expected_wait(4), kTimeInfinity);
  // Within the shrunk capacity the signal stays finite.
  EXPECT_DOUBLE_EQ(cluster.expected_wait(2), 0.0);
  cluster.set_capacity(4);
  EXPECT_DOUBLE_EQ(cluster.expected_wait(4), 0.0);
  sim.run();
}

TEST(Exchange, ThresholdRoutingSeesWidthPressure) {
  Simulator sim;
  std::vector<std::unique_ptr<OnlineCluster>> clusters;
  clusters.push_back(
      std::make_unique<OnlineCluster>(sim, four_proc_cluster(0)));
  clusters.push_back(
      std::make_unique<OnlineCluster>(sim, four_proc_cluster(1)));
  clusters[0]->submit_local(Job::sequential(0, 12.0));  // 1 proc until 12
  const ExchangeOptions opts{ExchangePolicy::kThreshold, 5.0, 1.0};
  // A narrow job sees only the backlog (12/4 = 3 < threshold): stays home.
  EXPECT_EQ(exchange_target(clusters, 0, Job::rigid(1, 1, 1.0), opts), 0u);
  // A full-width job must wait 12 s for the running job — over the
  // threshold, and the idle cluster 1 wins by more than the penalty.
  EXPECT_EQ(exchange_target(clusters, 0, Job::rigid(2, 4, 1.0), opts), 1u);
  sim.run();
}

TEST(Exchange, PolicyNames) {
  EXPECT_STREQ(to_string(ExchangePolicy::kIsolated), "isolated");
  EXPECT_STREQ(to_string(ExchangePolicy::kThreshold), "threshold");
  EXPECT_STREQ(to_string(ExchangePolicy::kEconomic), "economic");
}

TEST(Exchange, RejectsTooManyWorkloads) {
  std::vector<JobSet> w(3);
  EXPECT_THROW(run_exchange(two_cluster_grid(), w, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lgs
