// Tests for decentralized load exchange (grid/exchange.h), §5.2.
#include <gtest/gtest.h>

#include "grid/exchange.h"

namespace lgs {
namespace {

LightGrid two_cluster_grid() {
  LightGrid g;
  g.name = "mini";
  g.clusters = {
      {0, "alpha", 4, 1, 1.0, Interconnect::kGigabitEthernet, "Linux", 0},
      {1, "beta", 4, 1, 1.0, Interconnect::kFastEthernet, "Linux", 1},
  };
  return g;
}

std::vector<JobSet> lopsided_workload() {
  // Cluster 0 drowning, cluster 1 idle.
  std::vector<JobSet> w(2);
  for (int i = 0; i < 24; ++i) {
    Job j = Job::sequential(static_cast<JobId>(i), 10.0, 0.1 * i);
    j.community = 0;
    w[0].push_back(std::move(j));
  }
  return w;
}

TEST(Exchange, IsolatedNeverMigrates) {
  const ExchangeResult res =
      run_exchange(two_cluster_grid(), lopsided_workload(),
                   {ExchangePolicy::kIsolated, 10.0, 1.0});
  EXPECT_EQ(res.migrations, 0);
  EXPECT_GT(res.mean_flow, 0.0);
}

TEST(Exchange, EconomicBalancesLopsidedLoad) {
  const ExchangeOptions isolated{ExchangePolicy::kIsolated, 10.0, 1.0};
  const ExchangeOptions economic{ExchangePolicy::kEconomic, 10.0, 1.0};
  const ExchangeResult iso =
      run_exchange(two_cluster_grid(), lopsided_workload(), isolated);
  const ExchangeResult eco =
      run_exchange(two_cluster_grid(), lopsided_workload(), economic);
  EXPECT_GT(eco.migrations, 0);
  EXPECT_LT(eco.mean_flow, iso.mean_flow)
      << "exchanging work must help a drowning cluster";
  EXPECT_LT(eco.horizon, iso.horizon + kTimeEps);
}

TEST(Exchange, ThresholdMigratesOnlyUnderPressure) {
  // Huge threshold: behaves like isolated.
  const ExchangeResult calm =
      run_exchange(two_cluster_grid(), lopsided_workload(),
                   {ExchangePolicy::kThreshold, 1e9, 1.0});
  EXPECT_EQ(calm.migrations, 0);
  // Tiny threshold: migrates.
  const ExchangeResult eager =
      run_exchange(two_cluster_grid(), lopsided_workload(),
                   {ExchangePolicy::kThreshold, 0.5, 1.0});
  EXPECT_GT(eager.migrations, 0);
}

TEST(Exchange, CommunityAccounting) {
  std::vector<JobSet> w(2);
  Job a = Job::sequential(0, 5.0);
  a.community = 3;
  Job b = Job::sequential(1, 5.0);
  b.community = 7;
  w[0].push_back(a);
  w[1].push_back(b);
  const ExchangeResult res = run_exchange(two_cluster_grid(), w, {});
  ASSERT_EQ(res.communities.size(), 2u);
  EXPECT_EQ(res.communities[0].community, 3);
  EXPECT_EQ(res.communities[0].jobs, 1);
  EXPECT_EQ(res.communities[1].community, 7);
  EXPECT_GE(res.communities[0].mean_slowdown, 1.0 - 1e-9);
}

TEST(Exchange, WideJobStaysWhereItFits) {
  LightGrid g = two_cluster_grid();
  g.clusters[1].nodes = 2;  // too small for a 4-wide job
  std::vector<JobSet> w(2);
  // Load cluster 0 heavily, then submit a 4-wide job: economic must NOT
  // migrate it to the tiny cluster.
  for (int i = 0; i < 10; ++i)
    w[0].push_back(Job::sequential(static_cast<JobId>(i), 10.0));
  w[0].push_back(Job::rigid(100, 4, 1.0, 0.5));
  const ExchangeResult res =
      run_exchange(g, w, {ExchangePolicy::kEconomic, 10.0, 1.0});
  EXPECT_GT(res.mean_flow, 0.0);  // completed without throwing
}

TEST(Exchange, PolicyNames) {
  EXPECT_STREQ(to_string(ExchangePolicy::kIsolated), "isolated");
  EXPECT_STREQ(to_string(ExchangePolicy::kThreshold), "threshold");
  EXPECT_STREQ(to_string(ExchangePolicy::kEconomic), "economic");
}

TEST(Exchange, RejectsTooManyWorkloads) {
  std::vector<JobSet> w(3);
  EXPECT_THROW(run_exchange(two_cluster_grid(), w, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lgs
