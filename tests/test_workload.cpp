// Tests for the workload generators (workload/generators.h).
#include <gtest/gtest.h>

#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Workload, DeterministicInSeed) {
  MoldableWorkloadSpec spec;
  spec.count = 50;
  spec.arrival_window = 100.0;
  Rng a(7), b(7), c(8);
  const JobSet ja = make_moldable_workload(spec, a);
  const JobSet jb = make_moldable_workload(spec, b);
  const JobSet jc = make_moldable_workload(spec, c);
  ASSERT_EQ(ja.size(), jb.size());
  bool all_equal_c = ja.size() == jc.size();
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_DOUBLE_EQ(ja[i].release, jb[i].release);
    EXPECT_DOUBLE_EQ(ja[i].model.time(1), jb[i].model.time(1));
    if (all_equal_c && ja[i].model.time(1) != jc[i].model.time(1))
      all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c) << "different seeds should differ";
}

TEST(Workload, SpecBoundsRespected) {
  MoldableWorkloadSpec spec;
  spec.count = 200;
  spec.t1_min = 2.0;
  spec.t1_max = 20.0;
  spec.max_procs = 8;
  spec.arrival_window = 50.0;
  spec.w_min = 1.0;
  spec.w_max = 3.0;
  Rng rng(1);
  const JobSet jobs = make_moldable_workload(spec, rng);
  ASSERT_EQ(jobs.size(), 200u);
  for (const Job& j : jobs) {
    EXPECT_GE(j.model.time(1), 2.0 - 1e-9);
    EXPECT_LE(j.model.time(1), 20.0 + 1e-9);
    EXPECT_LE(j.max_procs, 8);
    EXPECT_GE(j.release, 0.0);
    EXPECT_LE(j.release, 50.0);
    EXPECT_GE(j.weight, 1.0);
    EXPECT_LE(j.weight, 3.0);
  }
  check_jobset(jobs, 64);
}

TEST(Workload, SequentialWorkloadIsAllSequential) {
  MoldableWorkloadSpec spec;
  spec.count = 40;
  Rng rng(2);
  const JobSet jobs = make_sequential_workload(spec, rng);
  for (const Job& j : jobs) {
    EXPECT_EQ(j.max_procs, 1);
    EXPECT_EQ(j.kind, JobKind::kRigid);
  }
}

TEST(Workload, RigidWorkload) {
  RigidWorkloadSpec spec;
  spec.count = 100;
  spec.max_procs = 16;
  Rng rng(3);
  const JobSet jobs = make_rigid_workload(spec, rng);
  for (const Job& j : jobs) {
    EXPECT_EQ(j.min_procs, j.max_procs);
    EXPECT_GE(j.min_procs, 1);
    EXPECT_LE(j.min_procs, 16);
  }
}

TEST(Workload, CommunityProfiles) {
  Rng rng(4);
  const JobSet phys =
      make_community_workload(Community::kNumericalPhysics, 30, rng);
  for (const Job& j : phys) {
    EXPECT_EQ(j.max_procs, 1);           // long sequential jobs
    EXPECT_GE(j.model.time(1), 24.0);    // at least a day (hours scale)
    EXPECT_EQ(j.community, 0);
  }
  const JobSet astro =
      make_community_workload(Community::kAstrophysics, 30, rng, 100);
  for (const Job& j : astro) {
    EXPECT_GE(j.id, 100u);  // first_id honored
    EXPECT_GT(j.max_procs, 1);
    EXPECT_EQ(j.community, 1);
  }
  const JobSet cs =
      make_community_workload(Community::kComputerScience, 30, rng);
  double mean_cs = 0;
  for (const Job& j : cs) mean_cs += j.model.time(1);
  mean_cs /= 30;
  EXPECT_LT(mean_cs, 24.0) << "debug jobs are short";
}

TEST(Workload, BagExpansion) {
  ParametricBag bag;
  bag.runs = 500;
  bag.run_time = 0.25;
  bag.community = 2;
  const JobSet jobs = expand_bag(bag, 1000, 5.0);
  ASSERT_EQ(jobs.size(), 500u);
  EXPECT_EQ(jobs.front().id, 1000u);
  EXPECT_EQ(jobs.back().id, 1499u);
  for (const Job& j : jobs) {
    EXPECT_DOUBLE_EQ(j.model.time(1), 0.25);
    EXPECT_DOUBLE_EQ(j.release, 5.0);
    EXPECT_EQ(j.community, 2);
  }
}

TEST(Workload, AppendRenumbersIds) {
  JobSet base = {Job::sequential(0, 1.0), Job::sequential(1, 1.0)};
  JobSet extra = {Job::sequential(0, 2.0), Job::sequential(1, 2.0)};
  append_workload(base, std::move(extra));
  ASSERT_EQ(base.size(), 4u);
  EXPECT_EQ(base[2].id, 2u);
  EXPECT_EQ(base[3].id, 3u);
  check_jobset(base, 4);
}

TEST(Workload, CommunityNames) {
  EXPECT_STREQ(to_string(Community::kNumericalPhysics), "numerical-physics");
  EXPECT_STREQ(to_string(Community::kMedicalResearch), "medical-research");
}

// --- property / metamorphic tests -----------------------------------

// Full-field equality, not just spot checks: two generators seeded
// identically must agree on every observable of every job.
void expect_jobsets_identical(const JobSet& a, const JobSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].release, b[i].release);
    EXPECT_EQ(a[i].weight, b[i].weight);
    EXPECT_EQ(a[i].due, b[i].due);
    EXPECT_EQ(a[i].min_procs, b[i].min_procs);
    EXPECT_EQ(a[i].max_procs, b[i].max_procs);
    EXPECT_EQ(a[i].community, b[i].community);
    for (int k = a[i].min_procs; k <= a[i].max_procs;
         k = k < 4 ? k + 1 : k * 2)
      EXPECT_EQ(a[i].model.time(k), b[i].model.time(k));
  }
}

TEST(WorkloadProperty, SameSeedIdenticalJobSetAllGenerators) {
  MoldableWorkloadSpec mspec;
  mspec.count = 60;
  mspec.arrival_window = 40.0;
  mspec.w_min = 1.0;
  mspec.w_max = 5.0;
  mspec.sequential_fraction = 0.3;
  {
    Rng a(99), b(99);
    expect_jobsets_identical(make_moldable_workload(mspec, a),
                             make_moldable_workload(mspec, b));
  }
  RigidWorkloadSpec rspec;
  rspec.count = 60;
  rspec.arrival_window = 40.0;
  {
    Rng a(99), b(99);
    expect_jobsets_identical(make_rigid_workload(rspec, a),
                             make_rigid_workload(rspec, b));
  }
  for (Community c :
       {Community::kNumericalPhysics, Community::kAstrophysics,
        Community::kMedicalResearch, Community::kComputerScience}) {
    Rng a(99), b(99);
    expect_jobsets_identical(make_community_workload(c, 40, a, 0, 1.0, 25.0),
                             make_community_workload(c, 40, b, 0, 1.0, 25.0));
  }
}

TEST(WorkloadProperty, AppendRenumbersIdsContiguously) {
  Rng rng(5);
  MoldableWorkloadSpec spec;
  spec.count = 10;
  JobSet base = make_moldable_workload(spec, rng);
  // Chain several appends: ids must stay one dense contiguous range.
  for (int round = 0; round < 3; ++round) {
    spec.count = 7 + round;
    append_workload(base, make_moldable_workload(spec, rng));
  }
  ASSERT_EQ(base.size(), 10u + 7u + 8u + 9u);
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_EQ(base[i].id, static_cast<JobId>(i));
}

TEST(WorkloadProperty, AppendContinuesAfterSparseBaseIds) {
  JobSet base = {Job::sequential(4, 1.0), Job::sequential(17, 1.0)};
  append_workload(base, {Job::sequential(0, 2.0), Job::sequential(1, 2.0)});
  ASSERT_EQ(base.size(), 4u);
  EXPECT_EQ(base[2].id, 18u);  // max existing id + 1, ...
  EXPECT_EQ(base[3].id, 19u);  // ... then contiguous
}

TEST(WorkloadProperty, TimeScaleScalesAllTimesProportionally) {
  const double scale = 2.5;
  for (Community c :
       {Community::kNumericalPhysics, Community::kAstrophysics,
        Community::kMedicalResearch, Community::kComputerScience}) {
    Rng a(31), b(31);
    const JobSet unit = make_community_workload(c, 40, a, 0, 1.0, 30.0);
    const JobSet scaled = make_community_workload(c, 40, b, 0, scale, 30.0);
    ASSERT_EQ(unit.size(), scaled.size());
    for (std::size_t i = 0; i < unit.size(); ++i) {
      // Only execution times scale; the shape of the workload (procs,
      // releases, structure) is untouched.
      EXPECT_DOUBLE_EQ(scaled[i].model.time(1), scale * unit[i].model.time(1))
          << to_string(c) << " job " << i;
      EXPECT_EQ(scaled[i].max_procs, unit[i].max_procs);
      EXPECT_EQ(scaled[i].kind, unit[i].kind);
      EXPECT_EQ(scaled[i].release, unit[i].release);
    }
  }
}

TEST(WorkloadProperty, SequentialFractionOneMakesEveryJobRigidOnOneProc) {
  MoldableWorkloadSpec spec;
  spec.count = 80;
  spec.sequential_fraction = 1.0;
  spec.arrival_window = 20.0;
  Rng rng(12);
  const JobSet jobs = make_moldable_workload(spec, rng);
  ASSERT_EQ(jobs.size(), 80u);
  for (const Job& j : jobs) {
    EXPECT_EQ(j.kind, JobKind::kRigid);
    EXPECT_EQ(j.min_procs, 1);
    EXPECT_EQ(j.max_procs, 1);
  }
}

TEST(Workload, NegativeCountsRejected) {
  MoldableWorkloadSpec spec;
  spec.count = -1;
  Rng rng(1);
  EXPECT_THROW(make_moldable_workload(spec, rng), std::invalid_argument);
  ParametricBag bag;
  bag.runs = -5;
  EXPECT_THROW(expand_bag(bag, 0), std::invalid_argument);
}

TEST(LargeTrace, DeterministicAndWellFormed) {
  LargeTraceSpec spec;
  const JobSet a = make_large_trace(5000, 42, spec);
  const JobSet b = make_large_trace(5000, 42, spec);
  const JobSet c = make_large_trace(5000, 43, spec);
  ASSERT_EQ(a.size(), 5000u);
  bool differs = false;
  Time prev_release = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<JobId>(i)) << "dense ids in arrival order";
    EXPECT_EQ(a[i].kind, JobKind::kRigid);
    EXPECT_DOUBLE_EQ(a[i].release, b[i].release);
    EXPECT_DOUBLE_EQ(a[i].time(a[i].min_procs), b[i].time(b[i].min_procs));
    EXPECT_GE(a[i].release, prev_release) << "releases must be sorted";
    prev_release = a[i].release;
    EXPECT_GE(a[i].community, 0);
    EXPECT_LT(a[i].community, spec.communities);
    const int procs = a[i].min_procs;
    EXPECT_GE(procs, 1);
    EXPECT_LE(procs, spec.max_procs);
    EXPECT_EQ(procs & (procs - 1), 0) << "widths are powers of two";
    if (a[i].release != c[i].release) differs = true;
  }
  EXPECT_TRUE(differs) << "different seeds must differ";
}

TEST(LargeTrace, OffersConfiguredLoad) {
  LargeTraceSpec spec;
  spec.load = 0.8;
  const JobSet jobs = make_large_trace(20000, 7, spec);
  double work = 0.0;
  for (const Job& j : jobs) work += j.work(j.min_procs);
  const Time window = jobs.back().release;
  const double offered =
      work / (window * static_cast<double>(spec.target_capacity));
  // Arrival gaps are stochastic: the realized window wobbles around the
  // sized one, so allow a generous band.
  EXPECT_GT(offered, 0.6 * spec.load);
  EXPECT_LT(offered, 1.4 * spec.load);
}

TEST(LargeTrace, ArrivalsAreBursty) {
  LargeTraceSpec spec;
  spec.burst_intensity = 10.0;
  const JobSet jobs = make_large_trace(20000, 11, spec);
  // Classify gaps against the overall mean: a Lublin-style process puts
  // most arrivals inside tight bursts, with rare long lulls carrying
  // most of the elapsed time — a plain Poisson stream does neither.
  const double mean_gap = jobs.back().release / (jobs.size() - 1);
  std::size_t tight = 0;
  double lull_time = 0.0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double gap = jobs[i].release - jobs[i - 1].release;
    if (gap < 0.5 * mean_gap) ++tight;
    if (gap > 2.0 * mean_gap) lull_time += gap;
  }
  EXPECT_GT(static_cast<double>(tight) / jobs.size(), 0.6)
      << "most gaps should be burst-tight";
  EXPECT_GT(lull_time / jobs.back().release, 0.4)
      << "lulls should carry much of the window";
}

TEST(LargeTrace, RejectsBadSpecs) {
  LargeTraceSpec spec;
  spec.max_procs = 0;
  EXPECT_THROW(make_large_trace(10, 1, spec), std::invalid_argument);
  spec = {};
  spec.load = 0.0;
  EXPECT_THROW(make_large_trace(10, 1, spec), std::invalid_argument);
  spec = {};
  spec.burst_intensity = 0.5;
  EXPECT_THROW(make_large_trace(10, 1, spec), std::invalid_argument);
  EXPECT_TRUE(make_large_trace(0, 1).empty());
}

}  // namespace
}  // namespace lgs
