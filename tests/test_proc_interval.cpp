// Tests for the interval-run processor free-list (core/proc_interval.h):
// unit behavior, a randomized churn differential against a std::set
// oracle (the representation it replaced), and the fragmentation worst
// case where every other processor is taken.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/proc_interval.h"
#include "core/rng.h"

namespace lgs {
namespace {

std::vector<ProcId> expand(const std::vector<ProcRun>& runs) {
  std::vector<ProcId> out;
  expand_runs(runs, out);
  return out;
}

TEST(ProcIntervalSet, StartsAsOneRun) {
  ProcIntervalSet s(16);
  EXPECT_EQ(s.free_count(), 16);
  EXPECT_EQ(s.fragment_count(), 1u);
  EXPECT_EQ(s.runs(), (std::vector<ProcRun>{{0, 16}}));
}

TEST(ProcIntervalSet, AcquireLowestTakesAscendingIds) {
  ProcIntervalSet s(8);
  std::vector<ProcRun> a, b;
  ASSERT_TRUE(s.acquire_lowest(3, a));
  EXPECT_EQ(expand(a), (std::vector<ProcId>{0, 1, 2}));
  ASSERT_TRUE(s.acquire_lowest(2, b));
  EXPECT_EQ(expand(b), (std::vector<ProcId>{3, 4}));
  EXPECT_EQ(s.free_count(), 3);
  EXPECT_FALSE(s.acquire_lowest(4, b)) << "overcommit must take nothing";
  EXPECT_EQ(s.free_count(), 3);
}

TEST(ProcIntervalSet, AcquireSpansFragments) {
  ProcIntervalSet s(10);
  std::vector<ProcRun> low, mid, spanning;
  ASSERT_TRUE(s.acquire_lowest(2, low));   // holds [0,2)
  ASSERT_TRUE(s.acquire_lowest(3, mid));   // holds [2,5)
  s.release_all(low);                      // free: [0,2) and [5,10)
  EXPECT_EQ(s.fragment_count(), 2u);
  ASSERT_TRUE(s.acquire_lowest(4, spanning));
  EXPECT_EQ(expand(spanning), (std::vector<ProcId>{0, 1, 5, 6}));
  EXPECT_EQ(s.fragment_count(), 1u);
}

TEST(ProcIntervalSet, ReleaseMergesNeighbors) {
  ProcIntervalSet s(9);
  std::vector<ProcRun> a, b, c;
  ASSERT_TRUE(s.acquire_lowest(3, a));
  ASSERT_TRUE(s.acquire_lowest(3, b));
  ASSERT_TRUE(s.acquire_lowest(3, c));
  EXPECT_EQ(s.free_count(), 0);
  s.release_all(a);
  s.release_all(c);
  EXPECT_EQ(s.fragment_count(), 2u);
  s.release_all(b);  // merges both neighbors into one full run
  EXPECT_EQ(s.fragment_count(), 1u);
  EXPECT_EQ(s.runs(), (std::vector<ProcRun>{{0, 9}}));
}

TEST(ProcIntervalSet, DoubleReleaseThrows) {
  ProcIntervalSet s(4);
  std::vector<ProcRun> a;
  ASSERT_TRUE(s.acquire_lowest(2, a));
  s.release_all(a);
  EXPECT_THROW(s.release_all(a), std::logic_error);
  EXPECT_THROW(s.release(ProcRun{1, 3}), std::logic_error);
}

TEST(ProcIntervalSet, ContiguousFirstFit) {
  ProcIntervalSet s(12);
  std::vector<ProcRun> held;
  ASSERT_TRUE(s.acquire_lowest(4, held));  // [0,4) taken
  EXPECT_EQ(s.acquire_contiguous(3), 4);   // lowest base in [4,12)
  s.release(ProcRun{0, 4});                // free: [0,4) and [7,12)
  EXPECT_EQ(s.acquire_contiguous(5), 7) << "first fit skips the short run";
  EXPECT_EQ(s.acquire_contiguous(5), -1) << "nothing long enough left";
  EXPECT_EQ(s.acquire_contiguous(4), 0);
}

// Fragmentation worst case: every other processor held, so k = n/2
// maximal runs of length 1.  The interval set must track them exactly,
// refuse any contiguous request wider than 1, and still serve
// non-contiguous acquisition across all fragments.
TEST(ProcIntervalSet, AlternatingFragmentationWorstCase) {
  const int n = 256;
  ProcIntervalSet s(n);
  std::vector<std::vector<ProcRun>> singles(n);
  for (int p = 0; p < n; ++p)
    ASSERT_TRUE(s.acquire_lowest(1, singles[p]));
  EXPECT_EQ(s.free_count(), 0);
  for (int p = 0; p < n; p += 2) s.release_all(singles[p]);  // free evens
  EXPECT_EQ(s.free_count(), n / 2);
  EXPECT_EQ(s.fragment_count(), static_cast<std::size_t>(n / 2));
  EXPECT_EQ(s.acquire_contiguous(2), -1);
  EXPECT_EQ(s.acquire_contiguous(1), 0);
  s.release(ProcRun{0, 1});
  std::vector<ProcRun> all;
  ASSERT_TRUE(s.acquire_lowest(n / 2, all));
  EXPECT_EQ(all.size(), static_cast<std::size_t>(n / 2));
  std::vector<ProcId> ids = expand(all);
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(ids[i], static_cast<ProcId>(2 * i)) << "evens, ascending";
  EXPECT_EQ(s.fragment_count(), 0u);
  // Releasing odd singles next to held evens re-merges nothing...
  for (int p = 1; p < n; p += 2) s.release_all(singles[p]);
  EXPECT_EQ(s.fragment_count(), static_cast<std::size_t>(n / 2));
  // ...until the evens come back and the whole machine coalesces.
  s.release_all(all);
  EXPECT_EQ(s.fragment_count(), 1u);
  EXPECT_EQ(s.free_count(), n);
}

// Randomized churn differential: the interval set must agree with a
// plain std::set<ProcId> model on every acquire/release/volatility-style
// interleaving — ids taken, free count, and fragment structure.
class ProcIntervalChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcIntervalChurn, MatchesSetOracle) {
  const int n = 64;
  ProcIntervalSet fast(n);
  std::set<ProcId> oracle;
  for (ProcId p = 0; p < n; ++p) oracle.insert(p);

  Rng rng(GetParam());
  struct Held {
    std::vector<ProcRun> runs;
    std::vector<ProcId> ids;
  };
  std::vector<Held> held;
  for (int step = 0; step < 4000; ++step) {
    const bool acquire = held.empty() || rng.flip(0.55);
    if (acquire) {
      const int want = static_cast<int>(rng.uniform_int(1, 12));
      Held h;
      const bool ok = fast.acquire_lowest(want, h.runs);
      ASSERT_EQ(ok, static_cast<int>(oracle.size()) >= want);
      if (!ok) continue;
      for (int k = 0; k < want; ++k) {
        h.ids.push_back(*oracle.begin());
        oracle.erase(oracle.begin());
      }
      ASSERT_EQ(expand(h.runs), h.ids) << "acquired different ids";
      held.push_back(std::move(h));
    } else {
      const std::size_t victim =
          static_cast<std::size_t>(rng.uniform_int(0, held.size() - 1));
      fast.release_all(held[victim].runs);
      for (ProcId p : held[victim].ids) oracle.insert(p);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_EQ(fast.free_count(), static_cast<int>(oracle.size()));
    // Fragment structure must match the oracle's maximal runs.
    std::vector<ProcRun> expect;
    for (ProcId p : oracle) {
      if (!expect.empty() && expect.back().hi == p)
        ++expect.back().hi;
      else
        expect.push_back(ProcRun{p, p + 1});
    }
    ASSERT_EQ(fast.runs(), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcIntervalChurn,
                         ::testing::Values(1, 2, 3, 17, 42, 20260728));

}  // namespace
}  // namespace lgs
