// Test-only reference implementation of the availability profile.
//
// This is the original std::map<Time,int> delta representation that
// src/core/profile.{h,cpp} used before the flat skyline rework, kept as an
// executable specification: the differential tests (test_profile.cpp) and
// the throughput benchmark (bench/bench_profile.cpp) pit the production
// Profile against this one.  Hot paths are intentionally left quadratic
// (`earliest_fit` re-scans the map per candidate) — do NOT use outside
// tests/bench.
//
// The one deliberate difference from the historical code is the epsilon
// fix in fits(): the old version skipped breakpoints in
// (start, start + kTimeEps], so a usage increase there was counted neither
// by used_at(start) (events <= start) nor by the inner loop, and fits()
// could approve an interval that exceeds capacity.  The reference applies
// the corrected boundary rule so both implementations agree.
#pragma once

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/types.h"

namespace lgs {

class ReferenceProfile {
 public:
  explicit ReferenceProfile(int machines) : machines_(machines) {
    if (machines < 1) throw std::invalid_argument("machine count must be >= 1");
  }

  int machines() const { return machines_; }

  int used_at(Time t) const {
    int used = 0;
    for (const auto& [when, d] : delta_) {
      if (when > t) break;
      used += d;
    }
    return used;
  }

  int free_at(Time t) const { return machines_ - used_at(t); }

  bool fits(Time start, Time duration, int procs) const {
    if (procs > machines_) return false;
    const Time end = start + duration;
    if (used_at(start) + procs > machines_) return false;
    int used = 0;
    for (const auto& [when, d] : delta_) {
      used += d;
      if (when <= start) continue;  // already counted by used_at(start)
      if (when >= end - kTimeEps) break;
      if (used + procs > machines_) return false;
    }
    return true;
  }

  Time earliest_fit(Time from, Time duration, int procs) const {
    if (procs > machines_)
      throw std::invalid_argument("request exceeds machine size");
    if (fits(from, duration, procs)) return from;
    for (const auto& [when, d] : delta_) {
      (void)d;
      if (when <= from) continue;
      if (fits(when, duration, procs)) return when;
    }
    return delta_.empty() ? from : std::max(from, delta_.rbegin()->first);
  }

  void commit(Time start, Time duration, int procs) {
    if (!fits(start, duration, procs))
      throw std::logic_error("commit would exceed profile capacity");
    delta_[start] += procs;
    delta_[start + duration] -= procs;
  }

  void release(Time start, Time duration, int procs) {
    delta_[start] -= procs;
    delta_[start + duration] += procs;
    for (auto it = delta_.begin(); it != delta_.end();) {
      if (it->second == 0)
        it = delta_.erase(it);
      else
        ++it;
    }
  }

  /// Insert a block without the fits() capacity check — bench-only bulk
  /// construction (building a 100k-breakpoint profile through commit()
  /// would itself be quadratic and drown the measured phase).
  void load_unchecked(Time start, Time duration, int procs) {
    delta_[start] += procs;
    delta_[start + duration] -= procs;
  }

  std::vector<Time> breakpoints() const {
    std::vector<Time> out;
    out.reserve(delta_.size());
    for (const auto& [when, d] : delta_) {
      (void)d;
      out.push_back(when);
    }
    return out;
  }

 private:
  int machines_;
  std::map<Time, int> delta_;
};

}  // namespace lgs
