// Tests for the §3 criteria (criteria/metrics.h) and lower bounds
// (criteria/lower_bounds.h).
#include <gtest/gtest.h>

#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/backfill.h"
#include "pt/shelves.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Metrics, HandComputedSchedule) {
  JobSet jobs;
  jobs.push_back(Job::sequential(0, 4.0, /*release=*/0.0, /*weight=*/2.0));
  jobs.push_back(Job::rigid(1, 2, 3.0, /*release=*/1.0));
  jobs[1].due = 3.0;  // will be late

  Schedule s(4);
  s.add(0, 0.0, 1, 4.0);  // C0 = 4
  s.add(1, 2.0, 2, 3.0);  // C1 = 5, flow = 4, tardy by 2

  const Metrics m = compute_metrics(jobs, s);
  EXPECT_DOUBLE_EQ(m.cmax, 5.0);
  EXPECT_DOUBLE_EQ(m.sum_completion, 9.0);
  EXPECT_DOUBLE_EQ(m.sum_weighted, 2.0 * 4.0 + 1.0 * 5.0);
  EXPECT_DOUBLE_EQ(m.mean_flow, (4.0 + 4.0) / 2);
  EXPECT_DOUBLE_EQ(m.max_flow, 4.0);
  EXPECT_EQ(m.late_count, 1);
  EXPECT_DOUBLE_EQ(m.sum_tardiness, 2.0);
  EXPECT_DOUBLE_EQ(m.max_tardiness, 2.0);
  // Work = 4 + 6 = 10 over 4 procs * 5s.
  EXPECT_DOUBLE_EQ(m.utilization, 10.0 / 20.0);
  // Slowdown of job 0: flow 4 / best 4 = 1; job 1: 4 / 3.
  EXPECT_DOUBLE_EQ(m.max_slowdown, 4.0 / 3.0);
}

TEST(Metrics, ThrowsOnMissingJob) {
  JobSet jobs = {Job::sequential(0, 1.0)};
  Schedule s(2);
  EXPECT_THROW(compute_metrics(jobs, s), std::invalid_argument);
}

TEST(Metrics, Throughput) {
  Schedule s(2);
  s.add(0, 0.0, 1, 1.0);
  s.add(1, 0.0, 1, 3.0);
  s.add(2, 3.0, 1, 3.0);
  EXPECT_DOUBLE_EQ(throughput(s, 3.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(throughput(s, 10.0), 3.0 / 10.0);
  EXPECT_THROW(throughput(s, 0.0), std::invalid_argument);
}

TEST(LowerBounds, HandComputedCmax) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 4, 10.0));         // work 40
  jobs.push_back(Job::sequential(1, 2.0, 30.0));  // release 30 + 2
  // Area: 42 / 4 = 10.5; critical: max(10, 32) = 32.
  EXPECT_DOUBLE_EQ(cmax_lower_bound(jobs, 4), 32.0);
  jobs[1].release = 0.0;
  EXPECT_DOUBLE_EQ(cmax_lower_bound(jobs, 4), 10.5);
}

TEST(LowerBounds, SingleJobTight) {
  JobSet jobs = {Job::sequential(0, 7.0)};
  EXPECT_DOUBLE_EQ(cmax_lower_bound(jobs, 16), 7.0);
  EXPECT_DOUBLE_EQ(sum_weighted_completion_lower_bound(jobs, 16), 7.0);
}

TEST(LowerBounds, SquashedAreaDominatesOnManyJobs) {
  // 10 unit jobs on 1 machine: optimal ΣC = 1+2+...+10 = 55, and the
  // squashed-area bound is exact here.
  JobSet jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(Job::sequential(static_cast<JobId>(i), 1.0));
  EXPECT_DOUBLE_EQ(sum_completion_lower_bound(jobs, 1), 55.0);
}

// ---------------------------------------------------------------------------
// Property: lower bounds never exceed the value achieved by real schedules.
// ---------------------------------------------------------------------------

class LowerBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundProperty, BoundsBelowAchievedValues) {
  Rng rng(GetParam());
  RigidWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 12;
  spec.w_min = 1.0;
  spec.w_max = 5.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const int m = 24;

  const Schedule s = shelf_schedule_rigid(jobs, m);
  const Metrics metrics = compute_metrics(jobs, s);
  EXPECT_LE(cmax_lower_bound(jobs, m), metrics.cmax + kTimeEps);
  EXPECT_LE(sum_weighted_completion_lower_bound(jobs, m),
            metrics.sum_weighted * (1 + kRelEps));
  EXPECT_LE(sum_completion_lower_bound(jobs, m),
            metrics.sum_completion * (1 + kRelEps));

  const Schedule s2 = conservative_backfill(jobs, m);
  const Metrics m2 = compute_metrics(jobs, s2);
  EXPECT_LE(cmax_lower_bound(jobs, m), m2.cmax + kTimeEps);
  EXPECT_LE(sum_weighted_completion_lower_bound(jobs, m),
            m2.sum_weighted * (1 + kRelEps));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace lgs
