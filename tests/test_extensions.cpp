// Tests for the extension features: EDF list order (§3 tardiness),
// contiguous processor assignment, and SVG Gantt export.
#include <gtest/gtest.h>

#include "core/proc_assign.h"
#include "core/validate.h"
#include "criteria/metrics.h"
#include "pt/rigid_list.h"
#include "workload/generators.h"

namespace lgs {
namespace {

// --- EDF ------------------------------------------------------------------

TEST(Edf, MeetsDeadlinesFcfsWouldMiss) {
  JobSet jobs;
  Job relaxed = Job::sequential(0, 5.0);
  relaxed.due = 100.0;
  Job urgent = Job::sequential(1, 2.0);
  urgent.due = 3.0;
  jobs = {relaxed, urgent};

  const Schedule fcfs = list_schedule_rigid(jobs, 1);
  const Schedule edf =
      list_schedule_rigid(jobs, 1, {ListOrder::kEarliestDue, false});
  const Metrics mf = compute_metrics(jobs, fcfs);
  const Metrics me = compute_metrics(jobs, edf);
  EXPECT_EQ(mf.late_count, 1);  // urgent job finishes at 7 > 3
  EXPECT_EQ(me.late_count, 0);  // EDF runs it first
  EXPECT_TRUE(is_valid(jobs, edf));
}

TEST(Edf, JobsWithoutDueDatesGoLast) {
  JobSet jobs;
  Job no_due = Job::sequential(0, 1.0);  // due = kNoDueDate = +inf
  Job with_due = Job::sequential(1, 1.0);
  with_due.due = 10.0;
  jobs = {no_due, with_due};
  const Schedule edf =
      list_schedule_rigid(jobs, 1, {ListOrder::kEarliestDue, false});
  EXPECT_LT(edf.find(1)->start, edf.find(0)->start);
}

TEST(Edf, ReducesTardinessOnRandomInstances) {
  Rng rng(17);
  RigidWorkloadSpec spec;
  spec.count = 80;
  spec.max_procs = 6;
  JobSet jobs = make_rigid_workload(spec, rng);
  // Due dates proportional to size with random slack.
  for (Job& j : jobs)
    j.due = j.time(j.min_procs) * rng.uniform(2.0, 12.0);
  const Metrics mf =
      compute_metrics(jobs, list_schedule_rigid(jobs, 16));
  const Metrics me = compute_metrics(
      jobs, list_schedule_rigid(jobs, 16, {ListOrder::kEarliestDue, false}));
  EXPECT_LE(me.sum_tardiness, mf.sum_tardiness * 1.05)
      << "EDF should not be much worse on total tardiness";
}

// --- contiguous processor assignment ---------------------------------------

TEST(Contiguous, AssignsRangesWhenPossible) {
  Schedule s(8);
  s.add(0, 0.0, 3, 5.0);
  s.add(1, 0.0, 5, 5.0);
  ASSERT_TRUE(assign_processors_contiguous(s));
  for (const Assignment& a : s.assignments()) {
    for (std::size_t k = 1; k < a.procs.size(); ++k)
      EXPECT_EQ(a.procs[k], a.procs[k - 1] + 1) << "non-contiguous range";
  }
  JobSet jobs = {Job::rigid(0, 3, 5.0), Job::rigid(1, 5, 5.0)};
  EXPECT_TRUE(is_valid(jobs, s));
}

TEST(Contiguous, FailsOnFragmentation) {
  Schedule s(5);
  s.add(0, 0.0, 2, 10.0);  // takes 0,1
  s.add(1, 0.0, 1, 2.0);   // takes 2
  s.add(2, 0.0, 2, 10.0);  // takes 3,4
  s.add(3, 2.0, 1, 1.0);   // slot 2 free again: fits
  ASSERT_TRUE(assign_processors_contiguous(s));

  Schedule frag(5);
  frag.add(0, 0.0, 2, 10.0);  // 0,1
  frag.add(1, 0.0, 1, 2.0);   // 2
  frag.add(2, 0.0, 2, 10.0);  // 3,4
  frag.add(3, 2.0, 2, 1.0);   // needs 2 contiguous; only proc 2 is free
  EXPECT_FALSE(assign_processors_contiguous(frag));
  // The unconstrained variant also fails here (demand 2 > free 1)...
  EXPECT_FALSE(assign_processors(frag));
}

TEST(Contiguous, FragmentationOnlyFailure) {
  // Capacity is fine (2 free procs) but they are not adjacent: contiguous
  // fails, unconstrained succeeds.
  Schedule s(5);
  s.add(0, 0.0, 1, 10.0);  // proc 0
  s.add(1, 0.0, 1, 2.0);   // proc 1 (ends at 2)
  s.add(2, 0.0, 1, 10.0);  // proc 2
  s.add(3, 0.0, 1, 2.0);   // proc 3 (ends at 2)
  s.add(4, 0.0, 1, 10.0);  // proc 4
  s.add(5, 2.0, 2, 1.0);   // needs {1,3}: non-adjacent
  Schedule contiguous = s;
  EXPECT_FALSE(assign_processors_contiguous(contiguous));
  Schedule loose = s;
  EXPECT_TRUE(assign_processors(loose));
}

TEST(Contiguous, UntouchedOnFailure) {
  Schedule s(2);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 2.0, 1, 1.0);
  EXPECT_FALSE(assign_processors_contiguous(s));
  for (const Assignment& a : s.assignments())
    EXPECT_TRUE(a.procs.empty());
}

// --- SVG Gantt --------------------------------------------------------------

TEST(Svg, RendersRectPerProcessorSlot) {
  Schedule s(3);
  s.add(0, 0.0, 2, 4.0);
  s.add(1, 0.0, 1, 4.0);
  ASSERT_TRUE(assign_processors(s));
  const std::string svg = gantt_svg(s);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 3 processor-slots + 1 background rect.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 4u);
  EXPECT_NE(svg.find("job 0"), std::string::npos);
}

TEST(Svg, AbstractScheduleStillRenders) {
  Schedule s(4);
  s.add(0, 0.0, 4, 2.0);
  const std::string svg = gantt_svg(s);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("fill-opacity"), std::string::npos);
}

TEST(Svg, EmptyScheduleIsWellFormed) {
  const std::string svg = gantt_svg(Schedule(2));
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace lgs
