// Tests for the availability profile (core/profile.h).
#include <gtest/gtest.h>

#include <vector>

#include "core/profile.h"
#include "core/rng.h"
#include "reference_profile.h"

namespace lgs {
namespace {

TEST(Profile, EmptyIsAllFree) {
  Profile p(8);
  EXPECT_EQ(p.machines(), 8);
  EXPECT_EQ(p.used_at(0.0), 0);
  EXPECT_EQ(p.free_at(123.0), 8);
  EXPECT_TRUE(p.fits(0.0, 100.0, 8));
  EXPECT_FALSE(p.fits(0.0, 1.0, 9));
}

TEST(Profile, CommitChangesUsage) {
  Profile p(8);
  p.commit(2.0, 3.0, 5);
  EXPECT_EQ(p.used_at(1.9), 0);
  EXPECT_EQ(p.used_at(2.0), 5);   // right-continuous
  EXPECT_EQ(p.used_at(4.99), 5);
  EXPECT_EQ(p.used_at(5.0), 0);   // released exactly at end
}

TEST(Profile, FitsRespectsInteriorBreakpoints) {
  Profile p(8);
  p.commit(5.0, 2.0, 6);
  EXPECT_TRUE(p.fits(0.0, 5.0, 8));   // ends exactly at the busy window
  EXPECT_FALSE(p.fits(0.0, 6.0, 3));  // 6+3 > 8 inside [5,7)
  EXPECT_TRUE(p.fits(0.0, 6.0, 2));
  EXPECT_TRUE(p.fits(7.0, 10.0, 8));  // after the window
}

TEST(Profile, EarliestFitSkipsBusyIntervals) {
  Profile p(4);
  p.commit(0.0, 10.0, 3);
  // Needs 2 procs for 5: only 1 free until t=10.
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 5.0, 2), 10.0);
  // 1 proc fits right away.
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 5.0, 1), 0.0);
  // Request from the middle.
  EXPECT_DOUBLE_EQ(p.earliest_fit(3.0, 1.0, 1), 3.0);
}

TEST(Profile, EarliestFitFindsHole) {
  Profile p(4);
  p.commit(0.0, 2.0, 4);
  p.commit(5.0, 2.0, 4);
  // The hole [2,5) is exactly 3 seconds wide: a 4-second job only fits
  // after the second block, a 3-second one slides into the hole.
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 4.0, 1), 7.0);
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 3.0, 1), 2.0);
}

TEST(Profile, CommitThrowsOnOverflow) {
  Profile p(4);
  p.commit(0.0, 10.0, 3);
  EXPECT_THROW(p.commit(5.0, 1.0, 2), std::logic_error);
  EXPECT_THROW(p.earliest_fit(0.0, 1.0, 5), std::invalid_argument);
}

TEST(Profile, ReleaseUndoesCommit) {
  Profile p(4);
  p.commit(0.0, 10.0, 3);
  p.release(0.0, 10.0, 3);
  EXPECT_EQ(p.used_at(5.0), 0);
  EXPECT_TRUE(p.breakpoints().empty());  // map compacted
}

TEST(Profile, BreakpointsSorted) {
  Profile p(4);
  p.commit(5.0, 2.0, 1);
  p.commit(1.0, 1.0, 1);
  const auto bp = p.breakpoints();
  ASSERT_EQ(bp.size(), 4u);
  EXPECT_TRUE(std::is_sorted(bp.begin(), bp.end()));
}

TEST(Profile, RejectsBadMachineCount) {
  EXPECT_THROW(Profile(0), std::invalid_argument);
}

// Regression: a usage increase at a breakpoint w with
// start < w <= start + kTimeEps used to be counted neither by
// used_at(start) (events <= start) nor by the old inner loop (which
// skipped events <= start + kTimeEps), so fits() approved intervals that
// exceed capacity and commit() happily overcommitted.
TEST(Profile, FitsSeesIncreaseJustAfterStart) {
  Profile p(8);
  const Time w = kTimeEps / 2;  // 0 < w <= 0 + kTimeEps
  p.commit(w, 1.0, 5);
  EXPECT_EQ(p.used_at(0.0), 0);
  EXPECT_FALSE(p.fits(0.0, 1.0, 4));  // 5 + 4 > 8 on [w, 1)
  EXPECT_THROW(p.commit(0.0, 1.0, 4), std::logic_error);
  EXPECT_TRUE(p.fits(0.0, 1.0, 3));
  p.commit(0.0, 1.0, 3);  // 5 + 3 == 8: exactly full
  EXPECT_EQ(p.used_at(w), 8);
}

// Increases at (or within eps of) the interval *end* still cannot
// conflict: a job ending there has already left.
TEST(Profile, FitsIgnoresIncreaseAtEnd) {
  Profile p(4);
  p.commit(5.0, 2.0, 4);
  EXPECT_TRUE(p.fits(0.0, 5.0, 4));
  EXPECT_TRUE(p.fits(0.0, 5.0 - kTimeEps / 2, 4));
}

// Release must compact only the touched boundary breakpoints — and after
// arbitrary interleavings the breakpoint list stays minimal (no
// zero-width or redundant steps survive).
TEST(Profile, InterleavedCommitReleaseKeepsBreakpointsMinimal) {
  Profile p(8);
  p.commit(0.0, 5.0, 3);
  p.commit(5.0, 5.0, 3);  // seamless continuation: only {0, 10} remain
  EXPECT_EQ(p.breakpoints(), (std::vector<Time>{0.0, 10.0}));

  p.release(0.0, 5.0, 3);  // usage is now 3 on [5, 10) only
  EXPECT_EQ(p.breakpoints(), (std::vector<Time>{5.0, 10.0}));
  EXPECT_EQ(p.used_at(2.0), 0);
  EXPECT_EQ(p.used_at(7.0), 3);

  p.commit(2.0, 3.0, 2);  // abuts the remaining block
  EXPECT_EQ(p.breakpoints(), (std::vector<Time>{2.0, 5.0, 10.0}));
  p.release(2.0, 3.0, 2);
  p.release(5.0, 5.0, 3);
  EXPECT_TRUE(p.breakpoints().empty());
}

// ---------------------------------------------------------------------------
// Differential tests: the flat skyline Profile against the historical
// map-based implementation (tests/reference_profile.h) over fuzzed
// commit/release/query sequences.
// ---------------------------------------------------------------------------

class ProfileDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ProfileDifferential, MatchesMapReference) {
  Rng rng(GetParam());
  const int m = 1 + static_cast<int>(rng.uniform_int(1, 32));
  Profile sky(m);
  ReferenceProfile ref(m);

  struct Block {
    Time start, dur;
    int procs;
  };
  std::vector<Block> live;

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.5) {
      // Fuzzed commit at the earliest fit (keeps both in capacity).
      const int procs = 1 + static_cast<int>(rng.uniform_int(0, m - 1));
      const Time dur = rng.uniform(0.1, 20.0);
      const Time from = rng.uniform(0.0, 50.0);
      const Time at_sky = sky.earliest_fit(from, dur, procs);
      const Time at_ref = ref.earliest_fit(from, dur, procs);
      ASSERT_DOUBLE_EQ(at_sky, at_ref) << "step " << step;
      sky.commit(at_sky, dur, procs);
      ref.commit(at_ref, dur, procs);
      live.push_back({at_sky, dur, procs});
    } else if (roll < 0.75 && !live.empty()) {
      const std::size_t i = rng.uniform_int(0, live.size() - 1);
      sky.release(live[i].start, live[i].dur, live[i].procs);
      ref.release(live[i].start, live[i].dur, live[i].procs);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      // Pure queries, including boundary-hugging ones.
      const Time t = rng.uniform(-1.0, 80.0);
      ASSERT_EQ(sky.used_at(t), ref.used_at(t)) << "step " << step;
      const int procs = 1 + static_cast<int>(rng.uniform_int(0, m - 1));
      const Time dur = rng.uniform(0.0, 30.0);
      ASSERT_EQ(sky.fits(t, dur, procs), ref.fits(t, dur, procs))
          << "step " << step << " t=" << t << " dur=" << dur;
      ASSERT_DOUBLE_EQ(sky.earliest_fit(std::max(0.0, t), dur, procs),
                       ref.earliest_fit(std::max(0.0, t), dur, procs))
          << "step " << step;
    }
    // Levels agree at every breakpoint and just around it.
    for (Time bp : sky.breakpoints()) {
      ASSERT_EQ(sky.used_at(bp), ref.used_at(bp));
      ASSERT_EQ(sky.used_at(bp - 1e-7), ref.used_at(bp - 1e-7));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDifferential,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Property: a sequence of earliest_fit + commit never violates capacity.
TEST(Profile, GreedyFillNeverOverflows) {
  Profile p(16);
  // 50 requests with varying sizes; each committed at its earliest fit.
  for (int i = 0; i < 50; ++i) {
    const int procs = 1 + (i * 7) % 16;
    const Time dur = 1.0 + (i % 5);
    const Time start = p.earliest_fit(0.0, dur, procs);
    ASSERT_NO_THROW(p.commit(start, dur, procs)) << "request " << i;
  }
  for (Time t : p.breakpoints()) EXPECT_LE(p.used_at(t), 16);
}

}  // namespace
}  // namespace lgs
