// Tests for the availability profile (core/profile.h).
#include <gtest/gtest.h>

#include "core/profile.h"

namespace lgs {
namespace {

TEST(Profile, EmptyIsAllFree) {
  Profile p(8);
  EXPECT_EQ(p.machines(), 8);
  EXPECT_EQ(p.used_at(0.0), 0);
  EXPECT_EQ(p.free_at(123.0), 8);
  EXPECT_TRUE(p.fits(0.0, 100.0, 8));
  EXPECT_FALSE(p.fits(0.0, 1.0, 9));
}

TEST(Profile, CommitChangesUsage) {
  Profile p(8);
  p.commit(2.0, 3.0, 5);
  EXPECT_EQ(p.used_at(1.9), 0);
  EXPECT_EQ(p.used_at(2.0), 5);   // right-continuous
  EXPECT_EQ(p.used_at(4.99), 5);
  EXPECT_EQ(p.used_at(5.0), 0);   // released exactly at end
}

TEST(Profile, FitsRespectsInteriorBreakpoints) {
  Profile p(8);
  p.commit(5.0, 2.0, 6);
  EXPECT_TRUE(p.fits(0.0, 5.0, 8));   // ends exactly at the busy window
  EXPECT_FALSE(p.fits(0.0, 6.0, 3));  // 6+3 > 8 inside [5,7)
  EXPECT_TRUE(p.fits(0.0, 6.0, 2));
  EXPECT_TRUE(p.fits(7.0, 10.0, 8));  // after the window
}

TEST(Profile, EarliestFitSkipsBusyIntervals) {
  Profile p(4);
  p.commit(0.0, 10.0, 3);
  // Needs 2 procs for 5: only 1 free until t=10.
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 5.0, 2), 10.0);
  // 1 proc fits right away.
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 5.0, 1), 0.0);
  // Request from the middle.
  EXPECT_DOUBLE_EQ(p.earliest_fit(3.0, 1.0, 1), 3.0);
}

TEST(Profile, EarliestFitFindsHole) {
  Profile p(4);
  p.commit(0.0, 2.0, 4);
  p.commit(5.0, 2.0, 4);
  // The hole [2,5) is exactly 3 seconds wide: a 4-second job only fits
  // after the second block, a 3-second one slides into the hole.
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 4.0, 1), 7.0);
  EXPECT_DOUBLE_EQ(p.earliest_fit(0.0, 3.0, 1), 2.0);
}

TEST(Profile, CommitThrowsOnOverflow) {
  Profile p(4);
  p.commit(0.0, 10.0, 3);
  EXPECT_THROW(p.commit(5.0, 1.0, 2), std::logic_error);
  EXPECT_THROW(p.earliest_fit(0.0, 1.0, 5), std::invalid_argument);
}

TEST(Profile, ReleaseUndoesCommit) {
  Profile p(4);
  p.commit(0.0, 10.0, 3);
  p.release(0.0, 10.0, 3);
  EXPECT_EQ(p.used_at(5.0), 0);
  EXPECT_TRUE(p.breakpoints().empty());  // map compacted
}

TEST(Profile, BreakpointsSorted) {
  Profile p(4);
  p.commit(5.0, 2.0, 1);
  p.commit(1.0, 1.0, 1);
  const auto bp = p.breakpoints();
  ASSERT_EQ(bp.size(), 4u);
  EXPECT_TRUE(std::is_sorted(bp.begin(), bp.end()));
}

TEST(Profile, RejectsBadMachineCount) {
  EXPECT_THROW(Profile(0), std::invalid_argument);
}

// Property: a sequence of earliest_fit + commit never violates capacity.
TEST(Profile, GreedyFillNeverOverflows) {
  Profile p(16);
  // 50 requests with varying sizes; each committed at its earliest fit.
  for (int i = 0; i < 50; ++i) {
    const int procs = 1 + (i * 7) % 16;
    const Time dur = 1.0 + (i % 5);
    const Time start = p.earliest_fit(0.0, dur, procs);
    ASSERT_NO_THROW(p.commit(start, dur, procs)) << "request " << i;
  }
  for (Time t : p.breakpoints()) EXPECT_LE(p.used_at(t), 16);
}

}  // namespace
}  // namespace lgs
