// Tests for the platform model (platform/platform.h) — including the Fig. 3
// CIMENT inventory.
#include <gtest/gtest.h>

#include "platform/platform.h"

namespace lgs {
namespace {

TEST(Platform, CimentMatchesFigure3) {
  const LightGrid g = ciment_grid();
  ASSERT_EQ(g.clusters.size(), 4u);
  // 104 bi-Itanium2 / Myrinet
  EXPECT_EQ(g.clusters[0].nodes, 104);
  EXPECT_EQ(g.clusters[0].cpus_per_node, 2);
  EXPECT_EQ(g.clusters[0].net, Interconnect::kMyrinet);
  // 48 bi-P4 Xeon / GigE
  EXPECT_EQ(g.clusters[1].nodes, 48);
  EXPECT_EQ(g.clusters[1].net, Interconnect::kGigabitEthernet);
  // 40 + 24 bi-Athlon / 100 Mb
  EXPECT_EQ(g.clusters[2].nodes, 40);
  EXPECT_EQ(g.clusters[3].nodes, 24);
  EXPECT_EQ(g.clusters[2].net, Interconnect::kFastEthernet);
  // Total processors: (104+48+40+24) * 2 = 432 — "more than 500 machines"
  // refers to the whole project; Fig. 3 shows the 4 largest clusters.
  EXPECT_EQ(g.total_processors(), 432);
}

TEST(Platform, CimentIsHeterogeneousBetweenClusters) {
  const LightGrid g = ciment_grid();
  EXPECT_GT(g.clusters[0].speed, g.clusters[2].speed);
  EXPECT_GT(link_for(Interconnect::kMyrinet).bandwidth,
            link_for(Interconnect::kGigabitEthernet).bandwidth);
  EXPECT_GT(link_for(Interconnect::kGigabitEthernet).bandwidth,
            link_for(Interconnect::kFastEthernet).bandwidth);
  EXPECT_LT(link_for(Interconnect::kMyrinet).latency,
            link_for(Interconnect::kFastEthernet).latency);
}

TEST(Platform, InventoryListsAllClusters) {
  const std::string inv = ciment_grid().inventory();
  EXPECT_NE(inv.find("CIMENT"), std::string::npos);
  EXPECT_NE(inv.find("bi-Itanium2"), std::string::npos);
  EXPECT_NE(inv.find("Myrinet"), std::string::npos);
  EXPECT_NE(inv.find("432"), std::string::npos);
}

TEST(Platform, ClusterLookup) {
  const LightGrid g = ciment_grid();
  EXPECT_EQ(g.cluster(1).name, "bi-P4-Xeon");
  EXPECT_THROW(g.cluster(9), std::invalid_argument);
}

TEST(Platform, SingleCluster) {
  const LightGrid g = single_cluster(100);
  ASSERT_EQ(g.clusters.size(), 1u);
  EXPECT_EQ(g.total_processors(), 100);
  EXPECT_DOUBLE_EQ(g.clusters[0].speed, 1.0);
  EXPECT_THROW(single_cluster(0), std::invalid_argument);
}

TEST(Platform, LinkTransferTime) {
  const Link l{0.001, 100.0};
  EXPECT_DOUBLE_EQ(l.transfer_time(50.0), 0.001 + 0.5);
}

TEST(Platform, InterconnectNames) {
  EXPECT_STREQ(to_string(Interconnect::kMyrinet), "Myrinet");
  EXPECT_STREQ(to_string(Interconnect::kGigabitEthernet), "Giga Eth");
  EXPECT_STREQ(to_string(Interconnect::kFastEthernet), "Eth 100");
}

}  // namespace
}  // namespace lgs
