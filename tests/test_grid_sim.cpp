// Tests for the multi-cluster grid engine (sim/grid_sim.h): routing,
// best-effort non-disturbance, kill/resubmission bookkeeping, volatility
// determinism, and the grid-level validator.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/rng.h"
#include "sim/grid_sim.h"
#include "sim/shard_sim.h"
#include "workload/generators.h"

namespace lgs {
namespace {

LightGrid two_cluster_grid(int a = 4, int b = 4) {
  LightGrid g;
  g.name = "mini";
  g.clusters = {
      {0, "alpha", a, 1, 1.0, Interconnect::kGigabitEthernet, "Linux", 0},
      {1, "beta", b, 1, 1.0, Interconnect::kFastEthernet, "Linux", 1},
  };
  return g;
}

std::vector<JobSet> lopsided_workload() {
  // Cluster 0 drowning, cluster 1 idle.
  std::vector<JobSet> w(2);
  for (int i = 0; i < 24; ++i) {
    Job j = Job::sequential(static_cast<JobId>(i), 10.0, 0.1 * i);
    j.community = 0;
    w[0].push_back(std::move(j));
  }
  return w;
}

TEST(GridSim, IsolatedMatchesStandaloneClusters) {
  // With isolated routing and no grid extras, each cluster must behave
  // exactly like a standalone OnlineCluster fed the same jobs.
  const LightGrid grid = two_cluster_grid();
  std::vector<JobSet> w(2);
  Rng rng(11);
  w[0] = make_community_workload(Community::kComputerScience, 12, rng, 0,
                                 1.0, 10.0);
  w[1] = make_community_workload(Community::kAstrophysics, 8, rng, 100, 0.2,
                                 10.0);

  GridSim gs(grid, GridSimOptions{});
  gs.submit_workloads(w);
  const GridSimResult res = gs.run();

  for (std::size_t c = 0; c < 2; ++c) {
    Simulator solo_sim;
    OnlineCluster solo(solo_sim, grid.clusters[c]);
    for (const Job& j : w[c]) solo.submit_local(j);
    solo_sim.run();
    const auto& a = gs.cluster(c).local_records();
    const auto& b = solo.local_records();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].id, b[k].id);
      EXPECT_EQ(a[k].submit, b[k].submit);
      EXPECT_EQ(a[k].start, b[k].start);
      EXPECT_EQ(a[k].finish, b[k].finish);
    }
  }
  EXPECT_EQ(res.migrations, 0);
  EXPECT_TRUE(validate_grid_result(gs, res).empty());
}

TEST(GridSim, EconomicRoutingDrainsLopsidedLoad) {
  GridSimOptions iso;
  GridSim a(two_cluster_grid(), iso);
  a.submit_workloads(lopsided_workload());
  const GridSimResult ra = a.run();

  GridSimOptions eco;
  eco.routing = GridRouting::kEconomic;
  GridSim b(two_cluster_grid(), eco);
  b.submit_workloads(lopsided_workload());
  const GridSimResult rb = b.run();

  EXPECT_EQ(ra.migrations, 0);
  EXPECT_GT(rb.migrations, 0);
  EXPECT_LT(rb.mean_flow, ra.mean_flow)
      << "exchanging work must help a drowning cluster";
  EXPECT_TRUE(validate_grid_result(b, rb).empty());
}

TEST(GridSim, GlobalPlanRoutesEveryJobSomewhereSensible) {
  GridSimOptions opts;
  opts.routing = GridRouting::kGlobalPlan;
  GridSim gs(two_cluster_grid(), opts);
  gs.submit_workloads(lopsided_workload());
  const GridSimResult res = gs.run();
  EXPECT_EQ(res.jobs_completed, 24);
  EXPECT_GT(res.migrations, 0);  // the plan spreads the drowning cluster
  EXPECT_TRUE(validate_grid_result(gs, res).empty());
}

TEST(GridSim, BestEffortDoesNotDisturbLocalJobs) {
  // The §5.2 defining property on the multi-cluster engine: local
  // records identical with and without the grid campaign.
  const auto run_one = [](bool with_bags) {
    GridSimOptions opts;
    if (with_bags)
      opts.bags.push_back(ParametricBag{"campaign", 500, 0.2, 2, 1.0});
    auto gs = std::make_unique<GridSim>(two_cluster_grid(), opts);
    gs->submit_workloads(lopsided_workload());
    gs->run();
    return gs;
  };
  const auto with_bags = run_one(true);
  const auto without = run_one(false);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto& a = with_bags->cluster(c).local_records();
    const auto& b = without->cluster(c).local_records();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].start, b[k].start);
      EXPECT_EQ(a[k].finish, b[k].finish);
    }
  }
}

TEST(GridSim, KillsNotifyServerAndRunsComplete) {
  // Small cluster + staggered local jobs: best-effort runs get killed,
  // resubmitted by the server, and the campaign still finishes whole.
  GridSimOptions opts;
  opts.bags.push_back(ParametricBag{"campaign", 200, 1.0, 2, 1.0});
  GridSim gs(two_cluster_grid(2, 2), opts);
  for (int i = 0; i < 10; ++i)
    gs.submit(0, Job::rigid(static_cast<JobId>(i), 2, 2.0, 3.0 * i));
  const GridSimResult res = gs.run();
  EXPECT_EQ(res.grid_runs_completed, res.grid_runs_total);
  EXPECT_GT(res.grid_resubmissions, 0);
  long kills = 0;
  for (const GridClusterOutcome& c : res.clusters) kills += c.be.killed;
  EXPECT_EQ(kills, res.grid_resubmissions);
  EXPECT_TRUE(validate_grid_result(gs, res).empty());
}

TEST(GridSim, VolatilityIsDeterministicPerSeed) {
  const auto make_one = [] {
    GridSimOptions opts;
    opts.volatility.events = 5;
    opts.volatility.window = 10.0;
    opts.volatility_seed = 99;
    opts.bags.push_back(ParametricBag{"campaign", 300, 0.3, 2, 1.0});
    auto gs = std::make_unique<GridSim>(two_cluster_grid(8, 6), opts);
    gs->submit_workloads(lopsided_workload());
    return gs;
  };
  const auto a = make_one();
  const GridSimResult ra = a->run();
  const auto b = make_one();
  const GridSimResult rb = b->run();
  EXPECT_EQ(ra.horizon, rb.horizon);
  EXPECT_EQ(ra.mean_flow, rb.mean_flow);
  ASSERT_EQ(ra.clusters.size(), rb.clusters.size());
  long changes = 0;
  for (std::size_t c = 0; c < ra.clusters.size(); ++c) {
    EXPECT_EQ(ra.clusters[c].volatility.capacity_changes,
              rb.clusters[c].volatility.capacity_changes);
    changes += ra.clusters[c].volatility.capacity_changes;
  }
  // Overlapping outages merge into level changes, so the exact count is
  // below 2 * events * clusters — but churn must have happened.
  EXPECT_GT(changes, 0);
  EXPECT_TRUE(validate_grid_result(*a, ra).empty());
}

TEST(GridSim, VolatilityStreamsIgnoreShardAssignment) {
  // Each cluster's churn stream is keyed mix_seed(volatility_seed,
  // cluster_index) and drawn from a PRIVATE Rng — never from a shared
  // generator whose consumption order would depend on which shard (or
  // thread count) owns the cluster.  Replaying the same volatility-heavy
  // grid serially and sharded at several worker counts must therefore
  // produce IDENTICAL per-cluster VolatilityStats: round-robin
  // assignment changes with the shard count, the streams must not.
  const auto make_grid = [] {
    LightGrid g = make_skewed_grid(5, 8, 1.5);
    return g;
  };
  const auto make_jobs = [] {
    std::vector<JobSet> w(5);
    for (int c = 0; c < 5; ++c) {
      Rng rng(mix_seed(404, static_cast<std::uint64_t>(c)));
      w[c] = make_community_workload(static_cast<Community>(c % 4), 15, rng,
                                     static_cast<JobId>(c) * 100, 0.5, 20.0);
    }
    return w;
  };
  GridSimOptions opts;
  opts.routing = GridRouting::kEconomic;
  opts.volatility.events = 8;
  opts.volatility.window = 15.0;
  opts.volatility.floor_fraction = 0.5;
  opts.volatility_seed = 77;

  GridSim serial(make_grid(), opts);
  serial.submit_workloads(make_jobs());
  (void)serial.run();

  for (int threads : {1, 2, 3, 5}) {
    SCOPED_TRACE(threads);
    ShardGridSim sharded(make_grid(), opts, threads);
    sharded.submit_workloads(make_jobs());
    (void)sharded.run();
    ASSERT_EQ(sharded.cluster_count(), serial.cluster_count());
    for (std::size_t c = 0; c < serial.cluster_count(); ++c) {
      SCOPED_TRACE(c);
      const VolatilityStats& a = serial.cluster(c).volatility_stats();
      const VolatilityStats& b = sharded.cluster(c).volatility_stats();
      EXPECT_EQ(a.capacity_changes, b.capacity_changes);
      EXPECT_EQ(a.local_preemptions, b.local_preemptions);
      EXPECT_EQ(a.local_wasted, b.local_wasted);
    }
  }
}

TEST(GridSim, OverlappingOutagesComposeAsMinimum) {
  // Engineer two overlapping outages via a wide window and long
  // outages: at every instant the capacity must be the minimum over
  // the active outages, so it can never exceed the cluster total nor
  // snap back to full while a deeper outage is still in progress.
  // Checked indirectly: the run stays valid (set_capacity would throw
  // on an out-of-range level) and the simulation drains.
  GridSimOptions opts;
  opts.volatility.events = 6;
  opts.volatility.window = 4.0;  // dense -> overlaps guaranteed
  opts.volatility.outage_min = 2.0;
  opts.volatility.outage_max = 6.0;
  opts.volatility_seed = 3;
  GridSim gs(two_cluster_grid(8, 8), opts);
  gs.submit_workloads(lopsided_workload());
  const GridSimResult res = gs.run();
  EXPECT_EQ(res.jobs_completed, 24);
  EXPECT_TRUE(validate_grid_result(gs, res).empty());
}

TEST(GridSim, WideJobFallsBackToAClusterThatFits) {
  // Home cluster too small: the job must run on the big cluster instead
  // of crashing the engine, under every routing.
  for (GridRouting r : {GridRouting::kIsolated, GridRouting::kEconomic,
                        GridRouting::kGlobalPlan}) {
    GridSimOptions opts;
    opts.routing = r;
    GridSim gs(two_cluster_grid(2, 8), opts);
    gs.submit(0, Job::rigid(0, 6, 1.0));
    const GridSimResult res = gs.run();
    EXPECT_EQ(res.jobs_completed, 1) << to_string(r);
    EXPECT_EQ(res.migrations, 1) << to_string(r);
  }
  // Wider than every cluster: reported, not UB.
  GridSim gs(two_cluster_grid(2, 2), GridSimOptions{});
  gs.submit(0, Job::rigid(0, 16, 1.0));
  EXPECT_THROW(gs.run(), std::invalid_argument);
}

TEST(GridSim, GuardsAgainstMisuse) {
  GridSim gs(two_cluster_grid(), GridSimOptions{});
  EXPECT_THROW(gs.submit(7, Job::sequential(0, 1.0)),
               std::invalid_argument);
  std::vector<JobSet> three(3);
  EXPECT_THROW(gs.submit_workloads(three), std::invalid_argument);
  gs.run();
  EXPECT_THROW(gs.run(), std::logic_error);
  EXPECT_THROW(gs.submit(0, Job::sequential(0, 1.0)), std::logic_error);
  EXPECT_THROW((GridSim{LightGrid{}, GridSimOptions{}}),
               std::invalid_argument);
}

TEST(GridSim, SplitByCommunityKeepsEveryJobOnce) {
  JobSet jobs;
  for (int i = 0; i < 20; ++i) {
    Job j = Job::sequential(static_cast<JobId>(i), 1.0);
    j.community = i % 5;
    jobs.push_back(std::move(j));
  }
  const auto split = split_by_community(jobs, 3);
  ASSERT_EQ(split.size(), 3u);
  std::size_t total = 0;
  for (std::size_t h = 0; h < split.size(); ++h) {
    for (const Job& j : split[h])
      EXPECT_EQ(static_cast<std::size_t>(j.community) % 3, h);
    total += split[h].size();
  }
  EXPECT_EQ(total, jobs.size());
  EXPECT_THROW(split_by_community(jobs, 0), std::invalid_argument);
}

TEST(GridSim, SkewedGridShapes) {
  const LightGrid flat = make_skewed_grid(3, 32, 1.0);
  for (const Cluster& c : flat.clusters) {
    EXPECT_EQ(c.processors(), 32);
    EXPECT_DOUBLE_EQ(c.speed, 1.0);
  }
  const LightGrid skewed = make_skewed_grid(3, 32, 4.0);
  EXPECT_EQ(skewed.clusters[0].processors(), 32);
  EXPECT_EQ(skewed.clusters[2].processors(), 8);  // 32 / skew
  EXPECT_GT(skewed.clusters[2].speed, skewed.clusters[0].speed);
  for (std::size_t i = 1; i < skewed.clusters.size(); ++i)
    EXPECT_LE(skewed.clusters[i].processors(),
              skewed.clusters[i - 1].processors());
  // Single cluster: skew is irrelevant, size exact.
  EXPECT_EQ(make_skewed_grid(1, 16, 8.0).clusters[0].processors(), 16);
  EXPECT_THROW(make_skewed_grid(0, 32, 1.0), std::invalid_argument);
  EXPECT_THROW(make_skewed_grid(2, 32, 0.5), std::invalid_argument);
}

TEST(GridSim, RoutingNames) {
  EXPECT_STREQ(to_string(GridRouting::kIsolated), "isolated");
  EXPECT_STREQ(to_string(GridRouting::kThreshold), "threshold");
  EXPECT_STREQ(to_string(GridRouting::kEconomic), "economic");
  EXPECT_STREQ(to_string(GridRouting::kGlobalPlan), "global-plan");
  EXPECT_EQ(to_exchange_policy(GridRouting::kEconomic),
            ExchangePolicy::kEconomic);
  EXPECT_THROW(to_exchange_policy(GridRouting::kGlobalPlan),
               std::invalid_argument);
}

TEST(GridSim, ValidatorFlagsUnfinishedSimulations) {
  // Stop the clock before anything can run: the validator must complain
  // about queued work and the incomplete campaign.
  GridSimOptions opts;
  opts.bags.push_back(ParametricBag{"campaign", 50, 5.0, 2, 1.0});
  GridSim gs(two_cluster_grid(), opts);
  gs.submit(0, Job::sequential(0, 100.0, 1.0));
  const GridSimResult res = gs.run(/*horizon=*/2.0);
  EXPECT_FALSE(validate_grid_result(gs, res).empty());
}

}  // namespace
}  // namespace lgs
