// Tests for reporting utilities (core/report.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/report.h"

namespace lgs {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RejectsBadRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumericRows) {
  TextTable t({"x", "y"});
  t.add_row_numeric({1.23456, 2.0});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("1.235"), std::string::npos);
  EXPECT_NE(csv.find("2"), std::string::npos);
}

TEST(TextTable, CsvFormat) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Fmt, TrimsTrailingZeros) {
  EXPECT_EQ(fmt(2.0), "2");
  EXPECT_EQ(fmt(2.5), "2.5");
  EXPECT_EQ(fmt(2.126, 2), "2.13");
  EXPECT_EQ(fmt(0.0), "0");
}

TEST(AsciiPlot, RendersSeries) {
  Series s1{"one", {0, 1, 2, 3}, {1, 2, 3, 4}};
  Series s2{"two", {0, 1, 2, 3}, {4, 3, 2, 1}};
  const std::string plot = ascii_plot({s1, s2}, 40, 10, "title");
  EXPECT_NE(plot.find("title"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find("one"), std::string::npos);
  EXPECT_NE(plot.find("two"), std::string::npos);
}

TEST(AsciiPlot, HandlesDegenerateRanges) {
  Series s{"flat", {1, 1, 1}, {2, 2, 2}};
  EXPECT_NO_THROW(ascii_plot({s}));
  EXPECT_NO_THROW(ascii_plot({}));
}

TEST(WriteFile, RoundTrips) {
  const std::string path = "/tmp/lgs_report_test.csv";
  write_file(path, "x,y\n1,2\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(WriteFile, ThrowsOnBadPath) {
  EXPECT_THROW(write_file("/nonexistent-dir/x.csv", "data"),
               std::runtime_error);
}

}  // namespace
}  // namespace lgs
