// Golden replay scenarios pinning the dynamic engines bit-identical
// across hot-path rework (the same role tests/reference_profile.h plays
// for the availability-profile core).
//
// Each scenario runs the full online stack — GridSim routing, per-cluster
// dispatch, best-effort filling, volatility churn — on a fixed seed and
// folds every per-job record into one FNV-1a digest.  The digests stored
// in tests/test_replay_golden.cpp were captured from the implementation
// BEFORE the million-job hot-path overhaul (std::function events,
// std::set proc free-list, per-dispatch allocations); any behavioral
// drift in the optimized engines changes a digest and fails the test.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.h"
#include "sim/grid_sim.h"
#include "sim/online_cluster.h"
#include "sim/shard_sim.h"
#include "workload/generators.h"

namespace lgs {

/// FNV-1a over raw bytes — endianness-stable on every platform CI runs.
inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(h, &bits, sizeof bits);
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

/// The golden digests depend on libstdc++'s distribution algorithms; a
/// different standard library draws different workloads (not a bug).
/// Tests compare this canary first and skip on foreign libraries.
inline bool rng_matches_reference_library() {
  Rng rng(12345);
  return rng.uniform_int(0, 1000000) == 357630;
}

/// Fold a finished replay into one digest.  Templated over the engine:
/// GridSim and ShardGridSim expose the same cluster_count()/cluster()
/// surface, and the differential harness hashes both through the exact
/// same byte stream.
template <class GridEngine>
inline std::uint64_t digest_grid_result(const GridEngine& sim,
                                        const GridSimResult& res) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (std::size_t c = 0; c < sim.cluster_count(); ++c) {
    const OnlineCluster& cl = sim.cluster(c);
    for (const LocalJobRecord& r : cl.local_records()) {
      h = fnv1a_u64(h, r.id);
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.community));
      h = fnv1a_double(h, r.submit);
      h = fnv1a_double(h, r.start);
      h = fnv1a_double(h, r.finish);
      h = fnv1a_u64(h, static_cast<std::uint64_t>(r.procs));
    }
    const BestEffortStats& be = cl.besteffort_stats();
    h = fnv1a_u64(h, static_cast<std::uint64_t>(be.started));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(be.killed));
    h = fnv1a_double(h, be.wasted_time);
    h = fnv1a_double(h, be.completed_time);
    const VolatilityStats& vol = cl.volatility_stats();
    h = fnv1a_u64(h, static_cast<std::uint64_t>(vol.capacity_changes));
    h = fnv1a_u64(h, static_cast<std::uint64_t>(vol.local_preemptions));
    h = fnv1a_double(h, vol.local_wasted);
  }
  h = fnv1a_u64(h, static_cast<std::uint64_t>(res.migrations));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(res.jobs_completed));
  h = fnv1a_double(h, res.horizon);
  h = fnv1a_double(h, res.mean_flow);
  h = fnv1a_double(h, res.mean_slowdown);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(res.grid_resubmissions));
  return h;
}

struct GoldenScenario {
  std::string name;
  GridRouting routing;
  std::string policy;
  bool with_bags;
  int volatility_events;
};

/// One pinned golden digest (tests/test_replay_golden.cpp and
/// tests/test_shard_sim.cpp assert against the same table).
struct GoldenDigest {
  const char* name;
  std::uint64_t digest;
};

/// The pinned FNV-1a digests, captured from the pre-overhaul
/// implementation (commit c853b3d) with libstdc++'s distribution
/// algorithms — index-aligned with golden_scenarios().
inline std::vector<GoldenDigest> golden_digests() {
  return {
      {"isolated-fcfs-bags-vol", 0x2ea19de7c3954cf2ull},
      {"threshold-easy-bags", 0xb5e4be5273c9e79full},
      {"economic-fcfs-vol", 0x6e90d7f2490c5b24ull},
      {"global-plan-easy", 0xf3dff33f17c00882ull},
  };
}

inline std::vector<GoldenScenario> golden_scenarios() {
  return {
      {"isolated-fcfs-bags-vol", GridRouting::kIsolated, "fcfs-list", true, 6},
      {"threshold-easy-bags", GridRouting::kThreshold, "easy-backfill", true,
       0},
      {"economic-fcfs-vol", GridRouting::kEconomic, "fcfs-list", false, 4},
      {"global-plan-easy", GridRouting::kGlobalPlan, "easy-backfill", false,
       0},
  };
}

inline GridSimOptions golden_options(const GoldenScenario& sc) {
  GridSimOptions opts;
  opts.routing = sc.routing;
  opts.cluster.policy = sc.policy;
  opts.wait_threshold = 4.0;
  if (sc.with_bags)
    opts.bags = {{"golden-bag", 160, 0.5, 2, 1.0}};
  opts.volatility.events = sc.volatility_events;
  opts.volatility.window = 40.0;
  opts.volatility.floor_fraction = 0.6;
  opts.volatility_seed = 99;
  return opts;
}

inline JobSet golden_workload() {
  JobSet all;
  for (int c = 0; c < 4; ++c) {
    Rng rng(mix_seed(7777, static_cast<std::uint64_t>(c)));
    append_workload(all, make_community_workload(static_cast<Community>(c),
                                                 40, rng, /*first_id=*/0,
                                                 /*time_scale=*/0.05,
                                                 /*arrival_window=*/30.0));
  }
  return all;
}

/// Run one scenario on a fixed 4-cluster skewed grid with per-community
/// workloads (release dates spread over an arrival window, so dispatch,
/// routing, kills and volatility all interleave).
inline std::uint64_t run_golden_scenario(const GoldenScenario& sc) {
  GridSim sim(make_skewed_grid(4, 24, 2.0), golden_options(sc));
  sim.submit_workloads(split_by_community(golden_workload(), 4));
  const GridSimResult res = sim.run();
  return digest_grid_result(sim, res);
}

/// Same scenario through the arena/store path: the workload is compacted
/// into a borrowed JobStore, the engine draws every allocation from the
/// caller's arena (reusable across scenarios via reset()), and
/// submissions go through submit_store — the digest must match
/// run_golden_scenario bit for bit.
inline std::uint64_t run_golden_scenario_store(const GoldenScenario& sc,
                                               Arena& arena) {
  const JobStore store = to_job_store(golden_workload(), ArenaRef(arena));
  GridSim sim(make_skewed_grid(4, 24, 2.0), golden_options(sc), &arena);
  sim.submit_store(store);
  const GridSimResult res = sim.run();
  return digest_grid_result(sim, res);
}

/// Same scenario through the sharded engine (sim/shard_sim.h) at the
/// requested worker count — the parallel replay must reproduce the
/// pinned serial digests bit for bit at every thread count.
inline std::uint64_t run_golden_scenario_sharded(const GoldenScenario& sc,
                                                 int threads) {
  ShardGridSim sim(make_skewed_grid(4, 24, 2.0), golden_options(sc), threads);
  sim.submit_workloads(split_by_community(golden_workload(), 4));
  const GridSimResult res = sim.run();
  return digest_grid_result(sim, res);
}

}  // namespace lgs
