// The std::set<ProcId>-based processor-assignment sweep the interval-run
// allocator (core/proc_interval.h) replaced — kept verbatim as the
// differential-test oracle: tests/test_proc_assign.cpp requires the
// optimized assign_processors{,_contiguous} to produce bit-identical
// processor id lists on randomized schedules.
#pragma once

#include <algorithm>
#include <set>
#include <vector>

#include "core/schedule.h"

namespace lgs {

inline bool reference_assign_processors(Schedule& s) {
  struct Ev {
    Time t;
    bool is_start;
    std::size_t idx;  // index into assignments
  };
  auto& items = s.assignments();
  std::vector<Ev> events;
  events.reserve(items.size() * 2);
  for (std::size_t i = 0; i < items.size(); ++i) {
    events.push_back({items[i].start, true, i});
    events.push_back({items[i].end(), false, i});
  }
  // Ends strictly before starts at equal times so shelves can be stacked
  // back-to-back; ties broken by job id for determinism.
  std::sort(events.begin(), events.end(), [&](const Ev& a, const Ev& b) {
    if (!almost_equal(a.t, b.t)) return a.t < b.t;
    if (a.is_start != b.is_start) return !a.is_start;
    return items[a.idx].job < items[b.idx].job;
  });

  std::set<ProcId> free;
  for (ProcId p = 0; p < s.machines(); ++p) free.insert(p);

  std::vector<std::vector<ProcId>> chosen(items.size());
  for (const Ev& ev : events) {
    Assignment& a = items[ev.idx];
    if (ev.is_start) {
      if (static_cast<int>(free.size()) < a.nprocs) return false;
      auto it = free.begin();
      for (int k = 0; k < a.nprocs; ++k) {
        chosen[ev.idx].push_back(*it);
        it = free.erase(it);
      }
    } else {
      for (ProcId p : chosen[ev.idx]) free.insert(p);
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i)
    items[i].procs = std::move(chosen[i]);
  return true;
}

inline bool reference_assign_processors_contiguous(Schedule& s) {
  struct Ev {
    Time t;
    bool is_start;
    std::size_t idx;
  };
  auto& items = s.assignments();
  std::vector<Ev> events;
  events.reserve(items.size() * 2);
  for (std::size_t i = 0; i < items.size(); ++i) {
    events.push_back({items[i].start, true, i});
    events.push_back({items[i].end(), false, i});
  }
  std::sort(events.begin(), events.end(), [&](const Ev& a, const Ev& b) {
    if (!almost_equal(a.t, b.t)) return a.t < b.t;
    if (a.is_start != b.is_start) return !a.is_start;
    return items[a.idx].job < items[b.idx].job;
  });

  // Free set as ordered processor ids; a contiguous run is found by a
  // linear scan (m is small relative to event counts).
  std::set<ProcId> free;
  for (ProcId p = 0; p < s.machines(); ++p) free.insert(p);

  std::vector<std::vector<ProcId>> chosen(items.size());
  for (const Ev& ev : events) {
    Assignment& a = items[ev.idx];
    if (!ev.is_start) {
      for (ProcId p : chosen[ev.idx]) free.insert(p);
      continue;
    }
    // First fit: lowest base of a free run of length nprocs.
    ProcId base = -1;
    int run = 0;
    ProcId prev = -2;
    for (ProcId p : free) {
      if (p == prev + 1) {
        ++run;
      } else {
        base = p;
        run = 1;
      }
      prev = p;
      if (run == a.nprocs) {
        base = p - a.nprocs + 1;
        break;
      }
    }
    if (run < a.nprocs) return false;  // fragmented (or overcommitted)
    for (ProcId p = base; p < base + a.nprocs; ++p) {
      chosen[ev.idx].push_back(p);
      free.erase(p);
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i)
    items[i].procs = std::move(chosen[i]);
  return true;
}

}  // namespace lgs
