// Tests for conservative and EASY backfilling (pt/backfill.h).
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/backfill.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Conservative, FillsHoleWithoutDelayingAnyone) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 4, 10.0));        // full machine
  jobs.push_back(Job::rigid(1, 4, 5.0, 1.0));    // queued behind it
  jobs.push_back(Job::sequential(2, 2.0, 2.0));  // would fit... nowhere: no hole
  const Schedule s = conservative_backfill(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, s));
  EXPECT_DOUBLE_EQ(s.find(1)->start, 10.0);
  EXPECT_DOUBLE_EQ(s.find(2)->start, 15.0);

  // With one extra machine there is a permanent 1-proc hole: job 2 slides in.
  const Schedule s2 = conservative_backfill(jobs, 5);
  EXPECT_TRUE(is_valid(jobs, s2));
  EXPECT_DOUBLE_EQ(s2.find(2)->start, 2.0);
}

TEST(Conservative, HonorsReservations) {
  JobSet jobs = {Job::rigid(0, 4, 5.0)};
  const std::vector<Reservation> rsv = {{0.0, 8.0, 2}};  // half the machine
  const Schedule s = conservative_backfill(jobs, 4, rsv);
  ValidateOptions opts;
  opts.reservations = rsv;
  EXPECT_TRUE(is_valid(jobs, s, opts));
  EXPECT_DOUBLE_EQ(s.find(0)->start, 8.0);
}

TEST(Conservative, SmallJobsRunBesideReservation) {
  JobSet jobs = {Job::rigid(0, 2, 3.0), Job::sequential(1, 2.0)};
  const std::vector<Reservation> rsv = {{0.0, 10.0, 1}};
  const Schedule s = conservative_backfill(jobs, 4, rsv);
  ValidateOptions opts;
  opts.reservations = rsv;
  EXPECT_TRUE(is_valid(jobs, s, opts));
  EXPECT_DOUBLE_EQ(s.find(0)->start, 0.0);  // 2+1 <= 4: fits beside
  EXPECT_DOUBLE_EQ(s.find(1)->start, 0.0);
}

TEST(Conservative, RejectsOversizedReservation) {
  JobSet jobs = {Job::sequential(0, 1.0)};
  EXPECT_THROW(conservative_backfill(jobs, 4, {{0.0, 1.0, 5}}),
               std::invalid_argument);
}

TEST(Easy, BackfillsShortJobBehindStuckHead) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 3, 10.0));        // running
  jobs.push_back(Job::rigid(1, 4, 5.0, 1.0));    // stuck head (needs all 4)
  jobs.push_back(Job::sequential(2, 2.0, 1.0));  // short: fits before shadow
  const Schedule s = easy_backfill(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, s));
  EXPECT_DOUBLE_EQ(s.find(2)->start, 1.0);   // backfilled
  EXPECT_DOUBLE_EQ(s.find(1)->start, 10.0);  // head not delayed
}

TEST(Easy, DoesNotBackfillJobThatWouldDelayHead) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 3, 10.0));
  jobs.push_back(Job::rigid(1, 4, 5.0, 1.0));     // shadow at t=10
  jobs.push_back(Job::sequential(2, 20.0, 1.0));  // too long to backfill
  const Schedule s = easy_backfill(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, s));
  EXPECT_DOUBLE_EQ(s.find(1)->start, 10.0);
  EXPECT_GE(s.find(2)->start, 10.0);  // had to wait
}

TEST(Easy, BackfillsBesideHeadUsingSurplus) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 3, 10.0));         // leaves 2 procs free
  jobs.push_back(Job::rigid(1, 3, 5.0, 1.0));     // stuck head, shadow at 10
  jobs.push_back(Job::sequential(2, 20.0, 1.0));  // long but fits the surplus
  const Schedule s = easy_backfill(jobs, 5);
  EXPECT_TRUE(is_valid(jobs, s));
  // At the shadow (t=10) 5 procs free vs 3 needed: surplus 2, so the long
  // 1-proc job may run beside the head without delaying it.
  EXPECT_DOUBLE_EQ(s.find(2)->start, 1.0);
  EXPECT_DOUBLE_EQ(s.find(1)->start, 10.0);
}

// Regression: two running jobs whose finish times differ by sub-kTimeEps
// float noise (0.1*3 vs 0.3) must both count as finished when the clock
// reaches them — the profile-backed rewrite initially popped the wake-up
// events but kept counting the epsilon-later job as running, stalling.
TEST(Easy, SubEpsilonFinishSkewDoesNotStall) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 1, 0.1 * 3));  // 0.30000000000000004
  jobs.push_back(Job::rigid(1, 1, 0.3));
  jobs.push_back(Job::rigid(2, 2, 1.0));  // needs both procs
  const Schedule s = easy_backfill(jobs, 2);
  EXPECT_TRUE(is_valid(jobs, s));
  EXPECT_NEAR(s.find(2)->start, 0.3, 1e-6);
}

TEST(Backfill, RejectMoldable) {
  JobSet jobs = {Job::moldable(0, ExecModel::power_law(8, 1.0), 1, 8)};
  EXPECT_THROW(conservative_backfill(jobs, 8), std::invalid_argument);
  EXPECT_THROW(easy_backfill(jobs, 8), std::invalid_argument);
}

TEST(Backfill, EmptySet) {
  EXPECT_TRUE(conservative_backfill({}, 4).empty());
  EXPECT_TRUE(easy_backfill({}, 4).empty());
}

// ---------------------------------------------------------------------------
// Properties over random on-line instances.
// ---------------------------------------------------------------------------

class BackfillProperty : public ::testing::TestWithParam<int> {};

TEST_P(BackfillProperty, BothVariantsValidAndSane) {
  Rng rng(GetParam());
  RigidWorkloadSpec spec;
  spec.count = 100;
  spec.max_procs = 12;
  spec.arrival_window = 80.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const int m = 24;
  const Time lb = cmax_lower_bound(jobs, m);

  const Schedule cons = conservative_backfill(jobs, m);
  auto v = validate(jobs, cons);
  EXPECT_TRUE(v.empty()) << describe(v);
  EXPECT_LE(cons.makespan(), 4.0 * lb);

  const Schedule easy = easy_backfill(jobs, m);
  v = validate(jobs, easy);
  EXPECT_TRUE(v.empty()) << describe(v);
  EXPECT_LE(easy.makespan(), 4.0 * lb);
}

TEST_P(BackfillProperty, ConservativeWithRandomReservations) {
  Rng rng(GetParam() + 1000);
  RigidWorkloadSpec spec;
  spec.count = 60;
  spec.max_procs = 8;
  spec.arrival_window = 40.0;
  const JobSet jobs = make_rigid_workload(spec, rng);
  const int m = 16;
  std::vector<Reservation> rsv;
  for (int i = 0; i < 4; ++i) {
    const Time start = rng.uniform(0.0, 100.0);
    // Cap each reservation at m/4 so even fully overlapping reservations
    // stay within the machine (reservations must be feasible together).
    rsv.push_back({start, start + rng.uniform(1.0, 20.0),
                   static_cast<int>(rng.uniform_int(1, m / 4))});
  }
  const Schedule s = conservative_backfill(jobs, m, rsv);
  ValidateOptions opts;
  opts.reservations = rsv;
  const auto v = validate(jobs, s, opts);
  EXPECT_TRUE(v.empty()) << describe(v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackfillProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lgs
