// Arena memory subsystem tests: alignment (incl. over-aligned types),
// oversized-block fallback, nested scratch rewind, reset-reuse churn,
// ArenaRef heap fallback, and a differential test driving RingVec
// against std::deque through random mixed operations.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <random>
#include <vector>

#include "core/arena.h"

namespace lgs {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocRespectsRequestedAlignment) {
  Arena arena;
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                            std::size_t{16}, std::size_t{64}}) {
    // Deliberately misalign the bump pointer first.
    arena.alloc(1, 1);
    void* p = arena.alloc(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned_to(p, align)) << "align " << align;
    std::memset(p, 0xAB, 24);  // must be writable
  }
}

TEST(Arena, OverAlignedBeyondMaxAlignT) {
  Arena arena;
  constexpr std::size_t kAlign = 256;  // > alignof(std::max_align_t)
  arena.alloc(3, 1);
  void* p = arena.alloc(512, kAlign);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(aligned_to(p, kAlign));
  std::memset(p, 0xCD, 512);

  struct alignas(128) Wide {
    double d[16];
  };
  Wide* w = arena.alloc_array<Wide>(4);
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(aligned_to(w, alignof(Wide)));
  w[3].d[15] = 42.0;
  EXPECT_EQ(w[3].d[15], 42.0);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_size=*/4096);
  void* small = arena.alloc(64);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(arena.stats().oversized_blocks, 0u);

  // Larger than the block payload: dedicated block, still usable.
  const std::size_t big_size = 64 * 1024;
  unsigned char* big = static_cast<unsigned char*>(arena.alloc(big_size));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, big_size);
  EXPECT_EQ(big[0], 0x5A);
  EXPECT_EQ(big[big_size - 1], 0x5A);
  EXPECT_EQ(arena.stats().oversized_blocks, 1u);
  EXPECT_GE(arena.stats().bytes_used, big_size + 64);

  // The bump block keeps working after the oversized detour.
  void* after = arena.alloc(64);
  ASSERT_NE(after, nullptr);

  // reset() drops oversized blocks (they were sized for one request)
  // but keeps normal blocks for reuse.
  const std::size_t blocks_before = arena.stats().blocks;
  arena.reset();
  EXPECT_EQ(arena.stats().oversized_blocks, 0u);
  EXPECT_EQ(arena.stats().blocks, blocks_before);
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(Arena, NestedScratchRewindsInnermostFirst) {
  Arena arena;
  arena.alloc(100);
  const std::size_t base = arena.stats().bytes_used;

  const Arena::Mark outer = arena.mark();
  arena.alloc(1000);
  const std::size_t after_outer = arena.stats().bytes_used;
  {
    ArenaScratch inner(arena);
    inner.arena().alloc(5000);
    inner.arena().alloc(7000);
    EXPECT_GT(arena.stats().bytes_used, after_outer);
  }
  // Inner scratch dropped exactly its own allocations.
  EXPECT_EQ(arena.stats().bytes_used, after_outer);

  arena.rewind(outer);
  EXPECT_EQ(arena.stats().bytes_used, base);

  // The rewound space is reused: the next alloc lands where the first
  // post-mark alloc did.
  void* again = arena.alloc(8);
  arena.rewind(outer);
  EXPECT_EQ(arena.alloc(8), again);
}

TEST(Arena, ScratchRewindDropsOversizedBlocks) {
  Arena arena(/*block_size=*/4096);
  const Arena::Mark m = arena.mark();
  arena.alloc(32 * 1024);  // oversized
  EXPECT_EQ(arena.stats().oversized_blocks, 1u);
  arena.rewind(m);
  EXPECT_EQ(arena.stats().oversized_blocks, 0u);
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(Arena, ResetReusesBlocksAcrossChurn) {
  Arena arena(/*block_size=*/4096);
  std::size_t reserved_after_first = 0;
  void* first_ptr = nullptr;
  for (int round = 0; round < 10; ++round) {
    // ~3 blocks worth of traffic per round.
    void* p = arena.alloc(64, 64);
    if (round == 0) first_ptr = p;
    for (int i = 0; i < 100; ++i) arena.alloc(100);
    if (round == 0) {
      reserved_after_first = arena.stats().bytes_reserved;
      EXPECT_GT(arena.stats().blocks, 1u);
    } else {
      // Block churn is warm-up only: later rounds allocate nothing new
      // and the first allocation returns the same address.
      EXPECT_EQ(arena.stats().bytes_reserved, reserved_after_first);
      EXPECT_EQ(p, first_ptr);
    }
    arena.reset();
    EXPECT_EQ(arena.stats().bytes_used, 0u);
  }
  EXPECT_EQ(arena.stats().resets, 10u);
  EXPECT_GE(arena.stats().bytes_peak, 100u * 100u);
}

TEST(ArenaRef, DetachedFallsBackToHeap) {
  ArenaRef ref;
  EXPECT_FALSE(ref.attached());
  void* p = ref.allocate(128, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(aligned_to(p, 64));
  std::memset(p, 0, 128);
  ref.deallocate(p, 128, 64);  // must actually free (ASan job checks)
}

TEST(ArenaRef, AttachedAllocatesFromArenaAndSkipsDeallocate) {
  Arena arena;
  ArenaRef ref(arena);
  EXPECT_TRUE(ref.attached());
  void* p = ref.allocate(64, 16);
  const std::size_t used = arena.stats().bytes_used;
  EXPECT_GE(used, 64u);
  ref.deallocate(p, 64, 16);  // whole-lifetime release: a no-op
  EXPECT_EQ(arena.stats().bytes_used, used);
}

TEST(ArenaVec, GrowsFromArenaAndKeepsValues) {
  Arena arena;
  ArenaVec<int> v{ArenaAllocator<int>(ArenaRef(arena))};
  for (int i = 0; i < 10000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 10000u);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i * 3);
  EXPECT_GE(arena.stats().bytes_used, 10000u * sizeof(int));
}

// Differential: RingVec against std::deque under random mixed
// operations — covers push/pop at both ends plus the shorter-side
// shifting middle insert/erase the replay queue relies on.
TEST(RingVec, MatchesDequeUnderRandomOps) {
  Arena arena;
  RingVec<std::uint32_t> ring{ArenaRef(arena)};
  std::deque<std::uint32_t> ref;
  std::mt19937 rng(20040412u);

  for (int step = 0; step < 20000; ++step) {
    const unsigned op = rng() % 6;
    const std::uint32_t val = rng();
    if (op == 0 || ref.empty()) {
      ring.push_back(val);
      ref.push_back(val);
    } else if (op == 1) {
      ring.push_front(val);
      ref.push_front(val);
    } else if (op == 2) {
      ring.pop_front();
      ref.pop_front();
    } else if (op == 3) {
      ring.pop_back();
      ref.pop_back();
    } else if (op == 4) {
      const std::size_t i = rng() % (ref.size() + 1);
      ring.insert(i, val);
      ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(i), val);
    } else {
      const std::size_t i = rng() % ref.size();
      ring.erase(i);
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(ring.size(), ref.size()) << "step " << step;
    if (!ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front()) << "step " << step;
      ASSERT_EQ(ring.back(), ref.back()) << "step " << step;
    }
    // Full scan every 97 steps (and over a window otherwise) keeps the
    // test O(n) enough while still pinning every slot.
    if (step % 97 == 0) {
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ring[i], ref[i]) << "step " << step << " index " << i;
    }
  }
}

TEST(RingVec, ReserveAndClear) {
  RingVec<int> ring;  // detached ref: heap fallback
  ring.reserve(100);
  EXPECT_GE(ring.capacity(), 100u);
  for (int i = 0; i < 50; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), 50u);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(7);
  EXPECT_EQ(ring.front(), 7);
}

}  // namespace
}  // namespace lgs
