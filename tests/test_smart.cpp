// Tests for SMART shelf scheduling (pt/smart.h), §4.3.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/smart.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Smart, ShortHeavyShelfGoesFirst) {
  JobSet jobs;
  jobs.push_back(Job::rigid(0, 4, 8.0, 0.0, /*weight=*/1.0));  // long, light
  jobs.push_back(Job::rigid(1, 4, 1.0, 0.0, /*weight=*/10.0)); // short, heavy
  const Schedule s = smart_schedule(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, s));
  // Smith's rule: shelf of job 1 (1/10) before shelf of job 0 (8/1).
  EXPECT_LT(s.find(1)->start, s.find(0)->start);
}

TEST(Smart, JobsOfSameClassShareShelf) {
  JobSet jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(Job::rigid(static_cast<JobId>(i), 1, 1.0));
  const Schedule s = smart_schedule(jobs, 4);
  for (const Assignment& a : s.assignments())
    EXPECT_DOUBLE_EQ(a.start, 0.0);  // all in the first (only) shelf
}

TEST(Smart, PowerOfTwoClasses) {
  // Durations 1 and 3: classes 0 (height 1) and 2 (height 4).
  JobSet jobs = {Job::rigid(0, 2, 1.0), Job::rigid(1, 2, 3.0)};
  const Schedule s = smart_schedule(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, s));
  // Shelf order by Smith: 1/1 before 4/1 → job 0 at 0, job 1 at 1
  // (shelf heights are the power-of-two class heights, so job 1 starts at
  // the height of the first shelf).
  EXPECT_DOUBLE_EQ(s.find(0)->start, 0.0);
  EXPECT_DOUBLE_EQ(s.find(1)->start, 1.0);
}

TEST(Smart, RejectsReleaseDatesAndMoldable) {
  EXPECT_THROW(smart_schedule({Job::sequential(0, 1.0, 2.0)}, 4),
               std::invalid_argument);
  EXPECT_THROW(
      smart_schedule({Job::moldable(0, ExecModel::sequential(1.0), 1, 2)}, 4),
      std::invalid_argument);
}

TEST(Smart, EmptySet) { EXPECT_TRUE(smart_schedule({}, 4).empty()); }

// ---------------------------------------------------------------------------
// §4.3 quoted guarantees: 8 (unweighted) and 8.53 (weighted) on Σ wᵢCᵢ.
// The lower bound is ≤ OPT, so ratio-to-LB ≤ guarantee certifies the band.
// ---------------------------------------------------------------------------

struct SmartCase {
  int seed;
  bool weighted;
  bool sort_by_procs;
};

class SmartProperty : public ::testing::TestWithParam<SmartCase> {};

TEST_P(SmartProperty, WithinQuotedRatio) {
  const SmartCase& param = GetParam();
  Rng rng(param.seed);
  RigidWorkloadSpec spec;
  spec.count = 120;
  spec.max_procs = 14;
  if (param.weighted) {
    spec.w_min = 1.0;
    spec.w_max = 10.0;
  }
  const JobSet jobs = make_rigid_workload(spec, rng);
  const int m = 28;
  SmartOptions opts;
  opts.sort_by_procs = param.sort_by_procs;
  const Schedule s = smart_schedule(jobs, m, opts);
  const auto violations = validate(jobs, s);
  EXPECT_TRUE(violations.empty()) << describe(violations);

  const Metrics metrics = compute_metrics(jobs, s);
  const double lb = sum_weighted_completion_lower_bound(jobs, m);
  const double ratio = metrics.sum_weighted / lb;
  EXPECT_LE(ratio, param.weighted ? 8.53 : 8.0);
  EXPECT_GE(ratio, 1.0 - kRelEps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmartProperty,
    ::testing::Values(SmartCase{1, false, true}, SmartCase{2, false, true},
                      SmartCase{3, true, true}, SmartCase{4, true, true},
                      SmartCase{5, false, false}, SmartCase{6, true, false},
                      SmartCase{7, true, true}, SmartCase{8, false, true}));

}  // namespace
}  // namespace lgs
