// Cross-module integration tests: the library pieces combined the way the
// paper's CiGri system combines them.
#include <gtest/gtest.h>

#include "core/proc_assign.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "dlt/dlt.h"
#include "grid/besteffort.h"
#include "grid/exchange.h"
#include "policy/policy.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"
#include "workload/generators.h"

namespace lgs {
namespace {

// Fig. 2 in miniature: the bi-criteria scheduler on a 100-machine cluster,
// both workload families, ratios within the figure's plotted range.
TEST(Integration, Figure2Miniature) {
  const int m = 100;
  for (const bool parallel : {false, true}) {
    for (const int n : {50, 200}) {
      Rng rng(static_cast<std::uint64_t>(n) * 2 + parallel);
      MoldableWorkloadSpec spec;
      spec.count = n;
      spec.max_procs = 20;
      spec.sequential_fraction = parallel ? 0.3 : 1.0;
      spec.arrival_window = 20.0;
      spec.w_min = 1.0;
      spec.w_max = 5.0;
      const JobSet jobs = make_moldable_workload(spec, rng);
      const Schedule s = bicriteria_schedule(jobs, m).schedule;
      ASSERT_TRUE(is_valid(jobs, s));
      const Metrics metrics = compute_metrics(jobs, s);
      const double cmax_ratio = metrics.cmax / cmax_lower_bound(jobs, m);
      const double wc_ratio = metrics.sum_weighted /
                              sum_weighted_completion_lower_bound(jobs, m);
      // Fig. 2 plots ratios between 1 and ~2.8.
      EXPECT_GE(cmax_ratio, 1.0 - 1e-9);
      EXPECT_LE(cmax_ratio, 4.0);
      EXPECT_GE(wc_ratio, 1.0 - 1e-9);
      EXPECT_LE(wc_ratio, 5.0);
    }
  }
}

// The full CIMENT scenario: four communities submit to their clusters, a
// medical campaign runs best-effort on the whole grid.
TEST(Integration, CimentCentralizedScenario) {
  const LightGrid grid = ciment_grid();
  Rng rng(11);
  std::vector<JobSet> locals(4);
  locals[0] = make_community_workload(Community::kNumericalPhysics, 12, rng,
                                      0, 0.02, 50.0);
  locals[1] = make_community_workload(Community::kAstrophysics, 12, rng, 100,
                                      0.02, 50.0);
  locals[2] = make_community_workload(Community::kComputerScience, 20, rng,
                                      200, 0.02, 50.0);
  locals[3] = make_community_workload(Community::kMedicalResearch, 12, rng,
                                      300, 0.02, 50.0);
  // The campaign must be big enough to matter on 432 processors: 30000
  // runs of 0.1 units = 3000 processor-units of grid work.
  const CentralizedResult res = run_centralized(
      grid, locals, {{"med-campaign", 30000, 0.1, 2, 1.0}});
  EXPECT_TRUE(res.local_unaffected);
  EXPECT_EQ(res.grid_runs_completed, 30000);
  double util_total = 0.0, util_local = 0.0;
  for (const ClusterOutcome& c : res.clusters) {
    util_total += c.utilization_total;
    util_local += c.utilization_local;
  }
  EXPECT_GT(util_total / 4, 0.05) << "grid jobs should lift utilization";
  EXPECT_GT(util_total, util_local) << "best-effort work fills real holes";
}

// Decentralized exchange on CIMENT: economic beats isolated for a community
// whose own cluster is overloaded.
TEST(Integration, CimentExchangeScenario) {
  const LightGrid grid = ciment_grid();
  Rng rng(13);
  std::vector<JobSet> w(4);
  // Overload the smallest cluster (3) with CS debug jobs.
  w[3] = make_community_workload(Community::kComputerScience, 150, rng, 0,
                                 1.0, 10.0);
  const ExchangeResult iso =
      run_exchange(grid, w, {ExchangePolicy::kIsolated, 5.0, 0.5});
  const ExchangeResult eco =
      run_exchange(grid, w, {ExchangePolicy::kEconomic, 5.0, 0.5});
  EXPECT_GT(eco.migrations, 0);
  EXPECT_LE(eco.mean_flow, iso.mean_flow + kTimeEps);
}

// DLT planning for a campaign on the CIMENT star matches the steady-state
// prediction asymptotically (§5.2: multi-parametric jobs are the DLT case).
TEST(Integration, DltCampaignOnCiment) {
  const DltPlatform p = DltPlatform::from_grid(ciment_grid());
  const SteadyState ss = steady_state(p);
  const double volume = 1e5;
  const DltPlan plan = single_round_star(p, volume);
  // Single-round makespan is lower-bounded by the steady-state time.
  EXPECT_GE(plan.makespan, volume / ss.throughput - 1e-6);
  // And within a small factor of it for large volumes (latency amortized).
  EXPECT_LE(plan.makespan, 1.5 * volume / ss.throughput);
}

// MRT schedules realize on concrete processors end to end.
TEST(Integration, MrtToConcreteProcessors) {
  Rng rng(17);
  MoldableWorkloadSpec spec;
  spec.count = 40;
  spec.max_procs = 16;
  const JobSet jobs = make_moldable_workload(spec, rng);
  MrtResult r = mrt_schedule(jobs, 32);
  ASSERT_TRUE(assign_processors(r.schedule));
  const auto violations = validate(jobs, r.schedule);
  EXPECT_TRUE(violations.empty()) << describe(violations);
}

// The policy matrix agrees with the paper's broad expectations on at least
// one anchor: on moldable workloads, the moldable-aware policies are not
// dominated on Cmax by naive FCFS.
TEST(Integration, MoldablePoliciesBeatFcfsOnCmax) {
  const int m = 32;
  const JobSet jobs = make_application_workload(
      ApplicationClass::kMoldableParallel, 60, m, 23);
  const Schedule fcfs = run_policy(PolicyKind::kFcfsList, jobs, m);
  const Schedule mrt = run_policy(PolicyKind::kMrtBatches, jobs, m);
  const Metrics mf = compute_metrics(jobs, fcfs);
  const Metrics mm = compute_metrics(jobs, mrt);
  EXPECT_LE(mm.cmax, 1.5 * mf.cmax)
      << "MRT batches should be competitive with FCFS on makespan";
}

}  // namespace
}  // namespace lgs
