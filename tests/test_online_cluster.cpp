// Tests for the on-line cluster engine (sim/online_cluster.h).
#include <gtest/gtest.h>

#include <deque>

#include "sim/online_cluster.h"

namespace lgs {
namespace {

Cluster small_cluster(int nodes, double speed = 1.0) {
  return {0, "test", nodes, 1, speed, Interconnect::kGigabitEthernet, "Linux",
          0};
}

TEST(OnlineCluster, FcfsTwoJobs) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(2));
  cluster.submit_local(Job::rigid(0, 2, 5.0));
  cluster.submit_local(Job::rigid(1, 2, 3.0));
  sim.run();
  const auto& recs = cluster.local_records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(recs[0].finish, 5.0);
  EXPECT_DOUBLE_EQ(recs[1].start, 5.0);
  EXPECT_DOUBLE_EQ(recs[1].finish, 8.0);
  EXPECT_DOUBLE_EQ(recs[1].wait(), 5.0);
}

TEST(OnlineCluster, SpeedScalesDurations) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(1, /*speed=*/2.0));
  cluster.submit_local(Job::sequential(0, 10.0));
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.local_records()[0].finish, 5.0);
}

TEST(OnlineCluster, ReleaseDatesHonored) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(4));
  cluster.submit_local(Job::sequential(0, 1.0, /*release=*/7.0));
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.local_records()[0].submit, 7.0);
  EXPECT_DOUBLE_EQ(cluster.local_records()[0].start, 7.0);
}

TEST(OnlineCluster, MoldableJobsGetBestAllotment) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(8));
  cluster.submit_local(
      Job::moldable(0, ExecModel::power_law(16.0, 1.0), 1, 4));
  sim.run();
  EXPECT_EQ(cluster.local_records()[0].procs, 4);  // capped by max_procs
  EXPECT_DOUBLE_EQ(cluster.local_records()[0].finish, 4.0);
}

TEST(OnlineCluster, EasyBackfillOption) {
  Simulator sim;
  OnlineCluster::Options opts;
  opts.policy = "easy-backfill";
  OnlineCluster cluster(sim, small_cluster(4), opts);
  cluster.submit_local(Job::rigid(0, 3, 10.0));
  cluster.submit_local(Job::rigid(1, 4, 5.0, 1.0));     // stuck head
  cluster.submit_local(Job::sequential(2, 2.0, 1.0));   // short backfiller
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_DOUBLE_EQ(recs[2].start, 1.0);   // backfilled
  EXPECT_DOUBLE_EQ(recs[1].start, 10.0);  // head not delayed
}

// A controllable best-effort source for kill tests.
struct TestSource {
  std::deque<Time> bag;
  long kills = 0;
  long done = 0;

  BestEffortSource make() {
    BestEffortSource src;
    src.request = [this](int k) {
      std::vector<Time> out;
      while (static_cast<int>(out.size()) < k && !bag.empty()) {
        out.push_back(bag.front());
        bag.pop_front();
      }
      return out;
    };
    src.on_kill = [this](Time d) {
      bag.push_front(d);
      ++kills;
    };
    src.on_done = [this] { ++done; };
    return src;
  }
};

TEST(OnlineCluster, BestEffortFillsIdleProcessors) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(4));
  TestSource source;
  source.bag.assign(8, 1.0);  // eight 1-second runs
  cluster.set_besteffort_source(source.make());
  sim.run();
  EXPECT_EQ(source.done, 8);
  EXPECT_EQ(cluster.besteffort_stats().completed, 8);
  EXPECT_EQ(cluster.besteffort_stats().killed, 0);
  // 8 runs on 4 procs = 2 seconds.
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(OnlineCluster, LocalJobKillsBestEffort) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(2));
  TestSource source;
  source.bag.assign(2, 100.0);  // two long grid runs grab both procs
  cluster.set_besteffort_source(source.make());
  // A local job arrives at t=5 and needs both processors NOW.
  Job local = Job::rigid(0, 2, 3.0, 5.0);
  cluster.submit_local(local);
  sim.run();
  const auto& recs = cluster.local_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_DOUBLE_EQ(recs[0].start, 5.0) << "local job must not wait";
  EXPECT_EQ(source.kills, 2);
  EXPECT_DOUBLE_EQ(cluster.besteffort_stats().wasted_time, 10.0);  // 2×5s
  // Killed runs were resubmitted and eventually finish after the local job.
  EXPECT_EQ(source.done, 2);
}

TEST(OnlineCluster, KillPolicyChoosesVictim) {
  for (auto policy : {OnlineCluster::KillPolicy::kYoungestFirst,
                      OnlineCluster::KillPolicy::kOldestFirst,
                      OnlineCluster::KillPolicy::kLongestRemaining}) {
    Simulator sim;
    OnlineCluster::Options opts;
    opts.kill_policy = policy;
    OnlineCluster cluster(sim, small_cluster(2), opts);
    TestSource source;
    source.bag = {100.0, 50.0};
    cluster.set_besteffort_source(source.make());
    cluster.submit_local(Job::rigid(0, 1, 1.0, 5.0));  // kills exactly one
    sim.run();
    EXPECT_EQ(source.kills, 1) << "policy " << static_cast<int>(policy);
    EXPECT_EQ(source.done, 2);
  }
}

// Ablation over the three kill policies (DESIGN.md ✧6) on one fixed
// scenario with distinguishable victims: three best-effort runs — 50s and
// 100s both started at t=0, a 10s run started at t=2 — and a 1-wide local
// job arriving at t=5 that kills exactly one of them.
//   * youngest-first kills the t=2 run (wasted 5-2 = 3s);
//   * oldest-first kills the 50s run, first of the t=0 pair (wasted 5s);
//   * longest-remaining kills the 100s run, pushing the horizon to 106
//     (resubmitted at t=6 after the local job frees the processor).
TEST(OnlineCluster, KillPolicyAblationOrderAndAccounting) {
  struct Case {
    OnlineCluster::KillPolicy policy;
    double wasted;
    double horizon;
  };
  const Case cases[] = {
      {OnlineCluster::KillPolicy::kYoungestFirst, 3.0, 100.0},
      {OnlineCluster::KillPolicy::kOldestFirst, 5.0, 100.0},
      {OnlineCluster::KillPolicy::kLongestRemaining, 5.0, 106.0},
  };
  for (const Case& c : cases) {
    Simulator sim;
    OnlineCluster::Options opts;
    opts.kill_policy = c.policy;
    OnlineCluster cluster(sim, small_cluster(3), opts);
    TestSource source;
    source.bag = {50.0, 100.0, 10.0};
    cluster.submit_local(Job::rigid(0, 1, 2.0));  // holds a proc until t=2
    cluster.set_besteffort_source(source.make());
    cluster.submit_local(Job::rigid(1, 1, 1.0, 5.0));  // kills one run at 5
    sim.run();
    const int tag = static_cast<int>(c.policy);
    EXPECT_EQ(source.kills, 1) << "policy " << tag;
    EXPECT_EQ(source.done, 3) << "policy " << tag;
    const BestEffortStats& be = cluster.besteffort_stats();
    EXPECT_EQ(be.started, 4) << "3 first starts + 1 resubmission";
    EXPECT_EQ(be.completed, 3) << "policy " << tag;
    EXPECT_EQ(be.killed, 1) << "policy " << tag;
    EXPECT_DOUBLE_EQ(be.wasted_time, c.wasted) << "policy " << tag;
    // Every run eventually completes; total useful wall time is the same
    // whichever victim died (50 + 100 + 10).
    EXPECT_DOUBLE_EQ(be.completed_time, 160.0) << "policy " << tag;
    EXPECT_DOUBLE_EQ(sim.now(), c.horizon) << "policy " << tag;
  }
}

TEST(OnlineCluster, UtilizationIntegrals) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(2));
  cluster.submit_local(Job::rigid(0, 1, 4.0));
  sim.run();
  EXPECT_DOUBLE_EQ(cluster.local_busy_integral(), 4.0);
  EXPECT_DOUBLE_EQ(cluster.busy_integral(), 4.0);
}

TEST(OnlineCluster, ExpectedWaitGrowsWithQueue) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(1));
  EXPECT_DOUBLE_EQ(cluster.expected_wait(), 0.0);
  cluster.submit_local(Job::sequential(0, 10.0));
  cluster.submit_local(Job::sequential(1, 10.0));
  // One running (10s left) + one queued (10s) on one processor.
  EXPECT_NEAR(cluster.expected_wait(), 20.0, 1e-9);
  sim.run();
}

TEST(OnlineCluster, PriorityQueueJumpsAhead) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(1));
  cluster.submit_local(Job::sequential(0, 5.0));            // runs at 0
  cluster.submit_local(Job::sequential(1, 5.0));            // queue, prio 0
  cluster.submit_local(Job::sequential(2, 5.0), /*prio=*/5);  // jumps job 1
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_DOUBLE_EQ(recs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(recs[2].start, 5.0);   // high priority second
  EXPECT_DOUBLE_EQ(recs[1].start, 10.0);  // default queue last
}

TEST(OnlineCluster, EqualPriorityStaysFcfs) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(1));
  cluster.submit_local(Job::sequential(0, 1.0), 3);
  cluster.submit_local(Job::sequential(1, 1.0), 3);
  cluster.submit_local(Job::sequential(2, 1.0), 3);
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_LT(recs[0].start, recs[1].start);
  EXPECT_LT(recs[1].start, recs[2].start);
}

TEST(OnlineCluster, RejectsOversizedJob) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(2));
  EXPECT_THROW(cluster.submit_local(Job::rigid(0, 4, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lgs
