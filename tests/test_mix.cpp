// Tests for rigid+moldable mixing strategies (pt/mix.h), §5.1.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "pt/mix.h"
#include "workload/generators.h"

namespace lgs {
namespace {

JobSet mixed_workload(int seed, int n, int max_procs, Time window) {
  Rng rng(seed);
  MoldableWorkloadSpec mspec;
  mspec.count = n / 2;
  mspec.max_procs = max_procs;
  mspec.arrival_window = window;
  JobSet jobs = make_moldable_workload(mspec, rng);
  RigidWorkloadSpec rspec;
  rspec.count = n - n / 2;
  rspec.max_procs = max_procs;
  rspec.arrival_window = window;
  append_workload(jobs, make_rigid_workload(rspec, rng));
  return jobs;
}

TEST(Mix, SeparatePhasesOfflineOnly) {
  const JobSet jobs = mixed_workload(1, 20, 8, /*window=*/10.0);
  EXPECT_THROW(schedule_mixed(jobs, 16, MixStrategy::kSeparatePhases),
               std::invalid_argument);
}

TEST(Mix, StrategyNames) {
  EXPECT_STREQ(to_string(MixStrategy::kSeparatePhases), "separate-phases");
  EXPECT_STREQ(to_string(MixStrategy::kAprioriAllotment),
               "a-priori-allotment");
  EXPECT_STREQ(to_string(MixStrategy::kRigidIntoBatches),
               "rigid-into-batches");
}

TEST(Mix, PureRigidWorksUnderAllStrategies) {
  Rng rng(7);
  RigidWorkloadSpec spec;
  spec.count = 30;
  spec.max_procs = 6;
  const JobSet jobs = make_rigid_workload(spec, rng);
  for (MixStrategy strat :
       {MixStrategy::kSeparatePhases, MixStrategy::kAprioriAllotment,
        MixStrategy::kRigidIntoBatches}) {
    const Schedule s = schedule_mixed(jobs, 12, strat);
    EXPECT_TRUE(is_valid(jobs, s)) << to_string(strat);
  }
}

TEST(Mix, PureMoldableWorksUnderAllStrategies) {
  Rng rng(8);
  MoldableWorkloadSpec spec;
  spec.count = 30;
  spec.max_procs = 6;
  const JobSet jobs = make_moldable_workload(spec, rng);
  for (MixStrategy strat :
       {MixStrategy::kSeparatePhases, MixStrategy::kAprioriAllotment,
        MixStrategy::kRigidIntoBatches}) {
    const Schedule s = schedule_mixed(jobs, 12, strat);
    EXPECT_TRUE(is_valid(jobs, s)) << to_string(strat);
  }
}

// ---------------------------------------------------------------------------
// Property sweep over rigid fractions and strategies.
// ---------------------------------------------------------------------------

struct MixCase {
  int seed;
  MixStrategy strategy;
  bool online;
};

class MixProperty : public ::testing::TestWithParam<MixCase> {};

TEST_P(MixProperty, ValidAndBounded) {
  const MixCase& param = GetParam();
  const JobSet jobs =
      mixed_workload(param.seed, 60, 10, param.online ? 40.0 : 0.0);
  const int m = 20;
  const Schedule s = schedule_mixed(jobs, m, param.strategy);
  const auto violations = validate(jobs, s);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  // Generous sanity band on makespan for any reasonable strategy.
  EXPECT_LE(s.makespan(), 6.0 * cmax_lower_bound(jobs, m));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixProperty,
    ::testing::Values(
        MixCase{1, MixStrategy::kSeparatePhases, false},
        MixCase{2, MixStrategy::kSeparatePhases, false},
        MixCase{3, MixStrategy::kAprioriAllotment, false},
        MixCase{4, MixStrategy::kAprioriAllotment, true},
        MixCase{5, MixStrategy::kRigidIntoBatches, false},
        MixCase{6, MixStrategy::kRigidIntoBatches, true},
        MixCase{7, MixStrategy::kAprioriAllotment, true},
        MixCase{8, MixStrategy::kRigidIntoBatches, true}));

}  // namespace
}  // namespace lgs
