// Tests for allotment selection (pt/allotment.h).
#include <gtest/gtest.h>

#include "pt/allotment.h"

namespace lgs {
namespace {

Job wide_job() {
  // Perfect speedup, t(k) = 64/k, 1..64 procs.
  return Job::moldable(0, ExecModel::power_law(64.0, 1.0), 1, 64);
}

TEST(Allotment, CanonicalIsMinimalMeeting) {
  const Job j = wide_job();
  // t(k) <= 16 needs k >= 4.
  EXPECT_EQ(canonical_allotment(j, 16.0, 64), 4);
  EXPECT_EQ(canonical_allotment(j, 64.0, 64), 1);
  EXPECT_EQ(canonical_allotment(j, 1.0, 64), 64);
  // Infeasible target.
  EXPECT_EQ(canonical_allotment(j, 0.5, 64), 0);
  // Machine cap binds.
  EXPECT_EQ(canonical_allotment(j, 1.0, 32), 0);
}

TEST(Allotment, CanonicalMonotoneInTarget) {
  const Job j = Job::moldable(0, ExecModel::amdahl(100.0, 0.05), 1, 40);
  int prev = 41;
  for (Time t = 5.0; t < 120.0; t += 2.5) {
    const int k = canonical_allotment(j, t, 40);
    if (k == 0) continue;  // still infeasible
    EXPECT_LE(k, prev) << "larger targets need fewer processors";
    prev = k;
  }
}

TEST(Allotment, CanonicalRespectsMinProcs) {
  const Job j = Job::moldable(0, ExecModel::power_law(64.0, 1.0), 4, 64);
  EXPECT_EQ(canonical_allotment(j, 1000.0, 64), 4);
}

TEST(Allotment, MinWorkAndBestTime) {
  const Job j = wide_job();
  EXPECT_EQ(min_work_allotment(j, 64), 1);
  EXPECT_EQ(best_time_allotment(j, 64), 64);
  EXPECT_EQ(best_time_allotment(j, 16), 16);
  // Comm-penalty model: stops being useful past its optimum.
  const Job p = Job::moldable(1, ExecModel::comm_penalty(100.0, 1.0), 1, 64);
  EXPECT_LE(best_time_allotment(p, 64), 11);
  const Job narrow = Job::moldable(2, ExecModel::sequential(5.0), 2, 4);
  EXPECT_THROW(best_time_allotment(narrow, 1), std::invalid_argument);
  EXPECT_THROW(min_work_allotment(narrow, 1), std::invalid_argument);
}

TEST(Allotment, FixAllotmentsProducesRigidJobs) {
  JobSet jobs = {wide_job(), Job::sequential(1, 3.0, 2.0, 1.5)};
  const JobSet rigid = fix_allotments(jobs, {8, 1});
  ASSERT_EQ(rigid.size(), 2u);
  EXPECT_EQ(rigid[0].min_procs, 8);
  EXPECT_EQ(rigid[0].max_procs, 8);
  EXPECT_DOUBLE_EQ(rigid[0].time(8), 8.0);
  EXPECT_EQ(rigid[0].kind, JobKind::kRigid);
  // Metadata preserved.
  EXPECT_DOUBLE_EQ(rigid[1].release, 2.0);
  EXPECT_DOUBLE_EQ(rigid[1].weight, 1.5);
}

TEST(Allotment, FixAllotmentsValidation) {
  JobSet jobs = {wide_job()};
  EXPECT_THROW(fix_allotments(jobs, {}), std::invalid_argument);
  EXPECT_THROW(fix_allotments(jobs, {0}), std::invalid_argument);
  EXPECT_THROW(fix_allotments(jobs, {65}), std::invalid_argument);
}

TEST(Allotment, FixCanonicalFallsBackToBestTime) {
  // Target far below what the job can reach: fall back to best time.
  JobSet jobs = {Job::moldable(0, ExecModel::sequential(50.0), 1, 1)};
  const JobSet rigid = fix_canonical(jobs, 1.0, 8);
  EXPECT_EQ(rigid[0].min_procs, 1);
  EXPECT_DOUBLE_EQ(rigid[0].time(1), 50.0);
}

}  // namespace
}  // namespace lgs
