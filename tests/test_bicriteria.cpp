// Tests for the bi-criteria doubling-batch scheduler (pt/bicriteria.h),
// §4.4 — the algorithm behind Fig. 2.
#include <gtest/gtest.h>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "pt/bicriteria.h"
#include "workload/generators.h"

namespace lgs {
namespace {

TEST(Bicriteria, SingleJob) {
  JobSet jobs = {Job::sequential(0, 5.0)};
  const BicriteriaResult r = bicriteria_schedule(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  EXPECT_EQ(r.batches, 1);
}

TEST(Bicriteria, HeavyJobsFinishEarly) {
  JobSet jobs;
  for (int i = 0; i < 20; ++i)
    jobs.push_back(
        Job::sequential(static_cast<JobId>(i), 4.0, 0.0, i == 7 ? 50.0 : 1.0));
  const BicriteriaResult r = bicriteria_schedule(jobs, 2);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  // The heavy job is placed in the earliest batch it fits.
  Time heavy_completion = r.schedule.completion(7);
  int earlier = 0;
  for (const Job& j : jobs)
    if (r.schedule.completion(j.id) < heavy_completion - kTimeEps) ++earlier;
  EXPECT_LE(earlier, 2) << "heavy job should be among the first to finish";
}

TEST(Bicriteria, ReleaseDatesDelayBatches) {
  JobSet jobs;
  jobs.push_back(Job::sequential(0, 1.0));
  jobs.push_back(Job::sequential(1, 1.0, /*release=*/100.0));
  const BicriteriaResult r = bicriteria_schedule(jobs, 4);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  EXPECT_GE(r.schedule.find(1)->start, 100.0 - kTimeEps);
}

TEST(Bicriteria, RejectsBadFactor) {
  BicriteriaOptions opts;
  opts.factor = 1.0;
  EXPECT_THROW(bicriteria_schedule({Job::sequential(0, 1.0)}, 4, opts),
               std::invalid_argument);
}

TEST(Bicriteria, EmptySet) {
  EXPECT_TRUE(bicriteria_schedule({}, 4).schedule.empty());
}

TEST(Bicriteria, BatchesGrowGeometrically) {
  Rng rng(5);
  MoldableWorkloadSpec spec;
  spec.count = 120;
  spec.max_procs = 8;
  const JobSet jobs = make_moldable_workload(spec, rng);
  BicriteriaOptions opts;
  opts.factor = 2.0;
  const BicriteriaResult r = bicriteria_schedule(jobs, 16, opts);
  EXPECT_TRUE(is_valid(jobs, r.schedule));
  EXPECT_GE(r.batches, 2);  // cannot fit everything under the first deadline
}

// ---------------------------------------------------------------------------
// The §4.4 point: simultaneous guarantees on both criteria.  Empirically the
// ratios of Fig. 2 stay below ~2.8; we assert generous certified bands that
// still catch regressions (both ratios vs lower bounds).
// ---------------------------------------------------------------------------

struct BicritCase {
  int seed;
  int jobs;
  bool parallel;
  double factor;
};

class BicriteriaProperty : public ::testing::TestWithParam<BicritCase> {};

TEST_P(BicriteriaProperty, BothCriteriaBounded) {
  const BicritCase& param = GetParam();
  Rng rng(param.seed);
  MoldableWorkloadSpec spec;
  spec.count = param.jobs;
  spec.max_procs = 20;
  spec.sequential_fraction = param.parallel ? 0.2 : 1.0;
  spec.arrival_window = 30.0;
  spec.w_min = 1.0;
  spec.w_max = 4.0;
  const JobSet jobs = make_moldable_workload(spec, rng);
  const int m = 100;
  BicriteriaOptions opts;
  opts.factor = param.factor;
  const BicriteriaResult r = bicriteria_schedule(jobs, m, opts);

  const auto violations = validate(jobs, r.schedule);
  EXPECT_TRUE(violations.empty()) << describe(violations);
  const Metrics metrics = compute_metrics(jobs, r.schedule);
  EXPECT_LE(metrics.cmax, 6.0 * cmax_lower_bound(jobs, m));
  EXPECT_LE(metrics.sum_weighted,
            8.0 * sum_weighted_completion_lower_bound(jobs, m));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BicriteriaProperty,
    ::testing::Values(BicritCase{1, 50, true, 2.0},
                      BicritCase{2, 200, true, 2.0},
                      BicritCase{3, 50, false, 2.0},
                      BicritCase{4, 200, false, 2.0},
                      BicritCase{5, 400, true, 2.0},
                      BicritCase{6, 100, true, 1.5},
                      BicritCase{7, 100, true, 3.0},
                      BicritCase{8, 100, false, 1.5}));

}  // namespace
}  // namespace lgs
