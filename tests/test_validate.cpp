// Tests for the schedule validator (core/validate.h) — each violation kind
// must be caught, and valid schedules must pass.
#include <gtest/gtest.h>

#include "core/validate.h"

namespace lgs {
namespace {

JobSet two_jobs() {
  return {Job::rigid(0, 2, 5.0), Job::sequential(1, 3.0, /*release=*/4.0)};
}

TEST(Validate, AcceptsValidSchedule) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 4.0, 1, 3.0);
  EXPECT_TRUE(is_valid(two_jobs(), s));
}

TEST(Validate, CatchesMissingJob) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  const auto v = validate(two_jobs(), s);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].what.find("missing"), std::string::npos);
}

TEST(Validate, MissingJobOkWhenNotRequired) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  ValidateOptions opts;
  opts.require_all_jobs = false;
  EXPECT_TRUE(is_valid(two_jobs(), s, opts));
}

TEST(Validate, CatchesDuplicate) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  s.add(0, 6.0, 2, 5.0);
  s.add(1, 4.0, 1, 3.0);
  const auto v = validate(two_jobs(), s);
  ASSERT_FALSE(v.empty());
}

TEST(Validate, CatchesUnknownJob) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 4.0, 1, 3.0);
  s.add(77, 0.0, 1, 1.0);
  EXPECT_FALSE(is_valid(two_jobs(), s));
}

TEST(Validate, CatchesReleaseViolation) {
  Schedule s(4);
  s.add(0, 0.0, 2, 5.0);
  s.add(1, 1.0, 1, 3.0);  // released at 4
  EXPECT_FALSE(is_valid(two_jobs(), s));
  ValidateOptions opts;
  opts.check_release_dates = false;
  EXPECT_TRUE(is_valid(two_jobs(), s, opts));
}

TEST(Validate, CatchesShortDuration) {
  Schedule s(4);
  s.add(0, 0.0, 2, 4.0);  // needs 5.0 on 2 procs
  s.add(1, 4.0, 1, 3.0);
  EXPECT_FALSE(is_valid(two_jobs(), s));
}

TEST(Validate, PaddedDurationIsAllowed) {
  Schedule s(4);
  s.add(0, 0.0, 2, 6.0);  // padding beyond the model time is fine
  s.add(1, 4.0, 1, 3.0);
  EXPECT_TRUE(is_valid(two_jobs(), s));
}

TEST(Validate, CatchesBadAllotment) {
  Schedule s(4);
  s.add(0, 0.0, 3, 5.0);  // rigid at 2
  s.add(1, 4.0, 1, 3.0);
  EXPECT_FALSE(is_valid(two_jobs(), s));
}

TEST(Validate, CatchesCapacityOverflow) {
  JobSet jobs = {Job::rigid(0, 3, 5.0), Job::rigid(1, 2, 5.0)};
  Schedule s(4);
  s.add(0, 0.0, 3, 5.0);
  s.add(1, 2.0, 2, 5.0);  // 5 > 4 at t=2
  const auto v = validate(jobs, s);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].job, kInvalidJob);
  EXPECT_NE(v[0].what.find("demand"), std::string::npos);
}

TEST(Validate, ReservationsCountAgainstCapacity) {
  JobSet jobs = {Job::rigid(0, 3, 5.0)};
  Schedule s(4);
  s.add(0, 0.0, 3, 5.0);
  ValidateOptions opts;
  opts.reservations = {{2.0, 4.0, 2}};  // 3 + 2 > 4 during [2,4)
  EXPECT_FALSE(is_valid(jobs, s, opts));
  opts.reservations = {{6.0, 8.0, 2}};  // disjoint in time: fine
  EXPECT_TRUE(is_valid(jobs, s, opts));
}

TEST(Validate, CatchesConcreteProcOverlap) {
  JobSet jobs = {Job::rigid(0, 1, 5.0), Job::rigid(1, 1, 5.0)};
  Schedule s(2);
  Assignment a;
  a.job = 0;
  a.start = 0;
  a.nprocs = 1;
  a.duration = 5;
  a.procs = {0};
  s.add(a);
  a.job = 1;
  a.procs = {0};  // same processor, same window
  s.add(a);
  EXPECT_FALSE(is_valid(jobs, s));
}

TEST(Validate, CatchesProcsSizeMismatchAndRange) {
  JobSet jobs = {Job::rigid(0, 2, 5.0)};
  Schedule s(2);
  Assignment a;
  a.job = 0;
  a.start = 0;
  a.nprocs = 2;
  a.duration = 5;
  a.procs = {0};  // size 1 != nprocs 2
  s.add(a);
  EXPECT_FALSE(is_valid(jobs, s));

  Schedule s2(2);
  a.procs = {0, 5};  // id out of range
  s2.add(a);
  EXPECT_FALSE(is_valid(jobs, s2));
}

TEST(Validate, DescribeMentionsJobIds) {
  Schedule s(4);
  const auto v = validate(two_jobs(), s);
  const std::string text = describe(v);
  EXPECT_NE(text.find("job 0"), std::string::npos);
  EXPECT_NE(text.find("job 1"), std::string::npos);
}

}  // namespace
}  // namespace lgs
