// Tests for the policy recommendation layer (policy/policy.h).
#include <gtest/gtest.h>

#include "core/validate.h"
#include "policy/policy.h"

namespace lgs {
namespace {

TEST(Policy, EnumerationsComplete) {
  EXPECT_EQ(all_policies().size(), 7u);
  EXPECT_EQ(all_application_classes().size(), 5u);
  for (PolicyKind p : all_policies()) EXPECT_STRNE(to_string(p), "?");
  for (ApplicationClass a : all_application_classes())
    EXPECT_STRNE(to_string(a), "?");
  // With no extensions registered, the registry roster IS the classical
  // enum roster, in the same presentation order.
  const std::vector<std::string> names = all_policy_names();
  ASSERT_EQ(names.size(), all_policies().size());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(names[i], to_string(all_policies()[i]));
}

TEST(Policy, WorkloadsMatchClassShape) {
  const int m = 32;
  const JobSet seq = make_application_workload(
      ApplicationClass::kSequentialBatch, 40, m, 1);
  for (const Job& j : seq) EXPECT_EQ(j.max_procs, 1);

  const JobSet rigid =
      make_application_workload(ApplicationClass::kRigidParallel, 40, m, 1);
  for (const Job& j : rigid) EXPECT_EQ(j.kind, JobKind::kRigid);

  const JobSet param = make_application_workload(
      ApplicationClass::kMultiParametric, 40, m, 1);
  for (const Job& j : param) EXPECT_DOUBLE_EQ(j.model.time(1), 0.5);

  const JobSet mixed =
      make_application_workload(ApplicationClass::kMixedCampus, 40, m, 1);
  EXPECT_GE(mixed.size(), 36u);  // 4 quarters
  check_jobset(mixed, m);
}

// Every policy must produce a valid schedule on every application class —
// the precondition for the recommendation matrix to mean anything.
struct PolicyCase {
  PolicyKind policy;
  ApplicationClass app;
};

class PolicyMatrixProperty : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyMatrixProperty, ValidScheduleOnEveryClass) {
  const PolicyCase& param = GetParam();
  const int m = 24;
  const JobSet jobs = make_application_workload(param.app, 40, m, 7);
  const Schedule s = run_policy(param.policy, jobs, m);
  const auto violations = validate(jobs, s);
  EXPECT_TRUE(violations.empty())
      << to_string(param.policy) << " on " << to_string(param.app) << "\n"
      << describe(violations);
}

std::vector<PolicyCase> all_cases() {
  std::vector<PolicyCase> cases;
  for (PolicyKind p : all_policies())
    for (ApplicationClass a : all_application_classes())
      cases.push_back({p, a});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Full, PolicyMatrixProperty, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name = std::string(to_string(info.param.policy)) + "_" +
                         to_string(info.param.app);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Policy, MatrixHasAllRowsAndSaneRatios) {
  const auto matrix = evaluate_policy_matrix(16, 30, 3);
  ASSERT_EQ(matrix.size(), all_application_classes().size());
  for (const MatrixRow& row : matrix) {
    ASSERT_EQ(row.scores.size(), all_policies().size());
    for (const PolicyScore& score : row.scores) {
      EXPECT_GE(score.cmax_ratio, 1.0 - 1e-6)
          << score.policy << " on " << to_string(row.app);
      EXPECT_GE(score.sum_wc_ratio, 1.0 - 1e-6);
      EXPECT_GT(score.utilization, 0.0);
      EXPECT_LE(score.utilization, 1.0 + 1e-9);
    }
  }
}

TEST(Policy, RecommendationsAreFromTheScoreSet) {
  const auto matrix = evaluate_policy_matrix(16, 25, 5);
  const auto policies = all_policy_names();
  const auto member = [&](const std::string& p) {
    for (const std::string& q : policies)
      if (q == p) return true;
    return false;
  };
  for (const MatrixRow& row : matrix) {
    EXPECT_TRUE(member(row.best_for_cmax)) << row.best_for_cmax;
    EXPECT_TRUE(member(row.best_for_sum_wc)) << row.best_for_sum_wc;
    EXPECT_TRUE(member(row.best_for_max_flow)) << row.best_for_max_flow;
  }
}

TEST(Policy, GuidanceTextMentionsBothModels) {
  const std::string text = paper_guidance();
  EXPECT_NE(text.find("Parallel Tasks"), std::string::npos);
  EXPECT_NE(text.find("Divisible Load"), std::string::npos);
}

}  // namespace
}  // namespace lgs
