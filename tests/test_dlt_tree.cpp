// Tests for divisible load on tree networks (dlt/tree.h) — the setting of
// the paper's reference [4] (Cheng & Robertazzi).
#include <gtest/gtest.h>

#include <numeric>

#include "dlt/tree.h"

namespace lgs {
namespace {

double total(const DltTreePlan& p) {
  return std::accumulate(p.alpha.begin(), p.alpha.end(), 0.0);
}

DltTreeNode leaf(const std::string& name, double comm, double comp,
                 double latency = 0.0) {
  DltTreeNode n;
  n.name = name;
  n.comm = comm;
  n.comp = comp;
  n.latency = latency;
  return n;
}

TEST(DltTree, SingleLeafMatchesDirectComputation) {
  DltTreeNode root = leaf("root", 0.0, 2.0);
  const DltTreePlan plan = tree_distribute(root, 10.0);
  EXPECT_NEAR(plan.makespan, 20.0, 1e-9);
  EXPECT_NEAR(total(plan), 10.0, 1e-9);
  EXPECT_NEAR(plan.equivalent.comp, 2.0, 1e-9);
}

TEST(DltTree, FlatTreeMatchesStarClosedForm) {
  // A root that only forwards to three heterogeneous leaves must
  // reproduce the star solution exactly.
  DltTreeNode root;
  root.name = "master";
  root.comp = 0.0;
  root.children = {leaf("a", 0.05, 0.8), leaf("b", 0.2, 1.0),
                   leaf("c", 0.1, 2.0)};
  const DltTreePlan tree = tree_distribute(root, 60.0);

  DltPlatform star;
  star.workers = {{0.05, 0.8, 0.0}, {0.2, 1.0, 0.0}, {0.1, 2.0, 0.0}};
  const DltPlan flat = single_round_star(star, 60.0);

  EXPECT_NEAR(tree.makespan, flat.makespan, 1e-6);
  // Pre-order: master(0), a, b, c.
  EXPECT_NEAR(tree.alpha[1], flat.alpha[0], 1e-6);
  EXPECT_NEAR(tree.alpha[2], flat.alpha[1], 1e-6);
  EXPECT_NEAR(tree.alpha[3], flat.alpha[2], 1e-6);
  EXPECT_NEAR(total(tree), 60.0, 1e-6);
}

TEST(DltTree, ComputingRootTakesShare) {
  DltTreeNode root = leaf("root", 0.0, 1.0);
  root.children = {leaf("child", 0.1, 1.0)};
  const DltTreePlan plan = tree_distribute(root, 20.0);
  EXPECT_NEAR(total(plan), 20.0, 1e-9);
  EXPECT_GT(plan.alpha[0], plan.alpha[1])
      << "root computes without paying communication";
}

TEST(DltTree, TwoLevelBeatsWanOnlyDistribution) {
  // Two clusters behind a WAN: distributing through front-ends to local
  // aggregates must finish in finite simultaneous time and conserve load.
  DltTreeNode root;
  root.name = "wan";
  DltTreeNode site_a;
  site_a.name = "site-a";
  site_a.comm = 0.01;
  site_a.children = {leaf("a-nodes", 0.004, 0.01)};
  DltTreeNode site_b;
  site_b.name = "site-b";
  site_b.comm = 0.02;
  site_b.children = {leaf("b-nodes", 0.08, 0.02)};
  root.children = {site_a, site_b};

  const DltTreePlan plan = tree_distribute(root, 1000.0);
  EXPECT_NEAR(total(plan), 1000.0, 1e-6);
  EXPECT_GT(plan.makespan, 0.0);
  // The fast site gets the bigger share.
  double share_a = 0.0, share_b = 0.0;
  for (std::size_t i = 0; i < plan.node.size(); ++i) {
    if (plan.node[i].rfind("a-", 0) == 0 || plan.node[i] == "site-a")
      share_a += plan.alpha[i];
    if (plan.node[i].rfind("b-", 0) == 0 || plan.node[i] == "site-b")
      share_b += plan.alpha[i];
  }
  EXPECT_GT(share_a, share_b);
}

TEST(DltTree, DeeperTreesReduce) {
  // Chain: root -> mid -> leaf; the reduction must compose.
  DltTreeNode mid;
  mid.name = "mid";
  mid.comm = 0.05;
  mid.children = {leaf("deep", 0.05, 0.5)};
  DltTreeNode root;
  root.name = "root";
  root.comp = 0.0;
  root.children = {mid};
  const DltTreePlan plan = tree_distribute(root, 100.0);
  EXPECT_NEAR(total(plan), 100.0, 1e-6);
  // Equivalent rate slower than the leaf alone (links in the way).
  EXPECT_GT(plan.equivalent.comp, 0.5 - 1e-9);
}

TEST(DltTree, CimentTreeDistributes) {
  const DltTreeNode tree = ciment_tree();
  ASSERT_EQ(tree.children.size(), 4u);
  const DltTreePlan plan = tree_distribute(tree, 50000.0);
  EXPECT_NEAR(total(plan), 50000.0, 1e-4);
  EXPECT_GT(plan.makespan, 0.0);
  // 1 root + 4 front-ends + 4 node-aggregates.
  EXPECT_EQ(plan.node.size(), 9u);
}

TEST(DltTree, RejectsBadInput) {
  DltTreeNode bad = leaf("dead", 0.0, 0.0);  // leaf that cannot compute
  EXPECT_THROW(tree_distribute(bad, 1.0), std::invalid_argument);
  DltTreeNode ok = leaf("ok", 0.0, 1.0);
  EXPECT_THROW(tree_distribute(ok, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace lgs
