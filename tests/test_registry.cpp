// Tests for the scheduling-policy registry (policy/registry.h): the
// string-keyed factory behind run_policy, OnlineCluster dispatch and the
// sweep axes.
//
// The acceptance gate is differential: every registered built-in must
// produce output bit-identical to the pre-registry `run_policy` enum
// switch, whose bodies are reproduced here verbatim as the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "exp/sweep.h"
#include "policy/policy.h"
#include "policy/registry.h"
#include "pt/allotment.h"
#include "pt/backfill.h"
#include "pt/batch.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"
#include "pt/rigid_list.h"
#include "pt/shelves.h"
#include "pt/smart.h"
#include "sim/grid_sim.h"
#include "sim/online_cluster.h"

namespace lgs {
namespace {

// ---------------------------------------------------------------------------
// The pre-registry `run_policy` switch, kept verbatim as the differential
// oracle: the registry path must reproduce it bit for bit.
// ---------------------------------------------------------------------------

JobSet rigidize(const JobSet& jobs, int m) {
  return fix_canonical(jobs, cmax_lower_bound(jobs, m), m);
}

Schedule reference_run_policy(PolicyKind policy, const JobSet& jobs, int m) {
  switch (policy) {
    case PolicyKind::kFcfsList:
      return list_schedule_rigid(rigidize(jobs, m), m,
                                 {ListOrder::kSubmission, true});
    case PolicyKind::kEasyBackfill:
      return easy_backfill(rigidize(jobs, m), m);
    case PolicyKind::kConservativeBackfill:
      return conservative_backfill(rigidize(jobs, m), m);
    case PolicyKind::kFfdhShelves:
      return batch_schedule(jobs, m,
                            [](const JobSet& batch, int machines) {
                              return shelf_schedule_rigid(
                                  rigidize(batch, machines), machines,
                                  ShelfPolicy::kFirstFitDecreasing);
                            })
          .schedule;
    case PolicyKind::kMrtBatches:
      return online_moldable_schedule(jobs, m).schedule;
    case PolicyKind::kSmartShelves:
      return batch_schedule(jobs, m,
                            [](const JobSet& batch, int machines) {
                              return smart_schedule(rigidize(batch, machines),
                                                    machines);
                            })
          .schedule;
    case PolicyKind::kBicriteria:
      return bicriteria_schedule(jobs, m).schedule;
  }
  throw std::logic_error("unknown policy");
}

void expect_schedules_identical(const Schedule& a, const Schedule& b,
                                const std::string& label) {
  ASSERT_EQ(a.machines(), b.machines()) << label;
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Assignment& x = a.assignments()[i];
    const Assignment& y = b.assignments()[i];
    EXPECT_EQ(x.job, y.job) << label << " assignment " << i;
    EXPECT_EQ(x.start, y.start) << label << " job " << x.job;
    EXPECT_EQ(x.nprocs, y.nprocs) << label << " job " << x.job;
    EXPECT_EQ(x.duration, y.duration) << label << " job " << x.job;
  }
}

TEST(Registry, EveryBuiltinBitIdenticalToEnumPath) {
  const int m = 24;
  for (ApplicationClass app : all_application_classes()) {
    const JobSet jobs = make_application_workload(app, 40, m, 11);
    for (PolicyKind kind : all_policies()) {
      const std::string name = to_string(kind);
      const Schedule oracle = reference_run_policy(kind, jobs, m);
      const std::string label = name + " on " + to_string(app);
      // Enum shim, string shim, and direct registry instantiation must
      // all reproduce the old switch exactly.
      expect_schedules_identical(oracle, run_policy(kind, jobs, m), label);
      expect_schedules_identical(oracle, run_policy(name, jobs, m), label);
      expect_schedules_identical(oracle, make_policy(name)->schedule(jobs, m),
                                 label);
    }
  }
}

// ---------------------------------------------------------------------------
// Enum <-> string round trips: a policy added to the registry but missing
// a name (or vice versa) must fail here instead of printing garbage.
// ---------------------------------------------------------------------------

TEST(Registry, PolicyKindRoundTripsThroughStrings) {
  for (PolicyKind p : all_policies()) {
    const std::string name = to_string(p);
    EXPECT_NE(name, "?");
    EXPECT_EQ(policy_kind_from_string(name), p);
    EXPECT_TRUE(is_registered_policy(name)) << name;
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(policy_kind_from_string("no-such-policy"),
               std::invalid_argument);
  EXPECT_THROW(policy_kind_from_string(""), std::invalid_argument);
}

TEST(Registry, ApplicationClassRoundTripsThroughStrings) {
  for (ApplicationClass a : all_application_classes()) {
    const std::string name = to_string(a);
    EXPECT_NE(name, "?");
    EXPECT_EQ(application_class_from_string(name), a);
  }
  EXPECT_THROW(application_class_from_string("no-such-class"),
               std::invalid_argument);
}

TEST(Registry, RegisteredNamesAreUniqueAndResolvable) {
  const std::vector<std::string> names = registered_policy_names();
  EXPECT_GE(names.size(), all_policies().size());
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size()) << "duplicate registry names";
  for (const std::string& name : names) {
    const auto policy = make_policy(name);
    EXPECT_EQ(policy->name(), name);
    EXPECT_NE(policy->make_queue_policy(), nullptr) << name;
  }
}

TEST(Registry, UnknownAndInvalidRegistrationsRejected) {
  EXPECT_THROW(make_policy("no-such-policy"), std::invalid_argument);
  EXPECT_THROW(make_queue_policy("no-such-policy"), std::invalid_argument);
  EXPECT_THROW(register_policy("", [] {
                 return std::unique_ptr<SchedulingPolicy>();
               }),
               std::invalid_argument);
  EXPECT_THROW(register_policy("fcfs-list",
                               [] { return std::unique_ptr<SchedulingPolicy>(); }),
               std::invalid_argument)
      << "duplicate registration must be rejected";
}

// ---------------------------------------------------------------------------
// Every registered policy must run ON-LINE: on one OnlineCluster and
// inside a GridSim, draining a workload completely.
// ---------------------------------------------------------------------------

Cluster small_cluster(int nodes) {
  return {0, "reg", nodes, 1, 1.0, Interconnect::kGigabitEthernet, "Linux", 0};
}

TEST(Registry, EveryPolicyDrainsAnOnlineCluster) {
  for (const std::string& name : registered_policy_names()) {
    Simulator sim;
    OnlineCluster::Options opts;
    opts.policy = name;
    OnlineCluster cluster(sim, small_cluster(4), opts);
    // Staggered arrivals with a mix of widths: head-blocking for FCFS,
    // backfillable holes for the backfillers, several batches for the
    // §4.2 adapters.
    cluster.submit_local(Job::rigid(0, 3, 4.0));
    cluster.submit_local(Job::rigid(1, 4, 2.0, 0.5));
    cluster.submit_local(Job::sequential(2, 1.0, 0.5));
    cluster.submit_local(Job::rigid(3, 2, 3.0, 5.0));
    cluster.submit_local(Job::sequential(4, 2.0, 6.0, 2.0));
    sim.run();
    EXPECT_EQ(cluster.queued_jobs(), 0u) << name;
    EXPECT_EQ(cluster.running_local_jobs(), 0u) << name;
    const auto& recs = cluster.local_records();
    ASSERT_EQ(recs.size(), 5u) << name;
    for (const LocalJobRecord& r : recs) {
      EXPECT_GE(r.start + kTimeEps, r.submit) << name << " job " << r.id;
      EXPECT_GT(r.finish, r.start) << name << " job " << r.id;
    }
  }
}

TEST(Registry, EveryPolicyRunsInsideGridSim) {
  for (const std::string& name : registered_policy_names()) {
    const LightGrid grid = make_skewed_grid(2, 8, 2.0);
    GridSimOptions opts;
    opts.cluster.policy = name;
    opts.bags.push_back(ParametricBag{"campaign", 40, 0.1, 2, 1.0});
    GridSim sim(grid, opts);
    std::vector<JobSet> locals(2);
    for (int i = 0; i < 8; ++i) {
      Job j = Job::rigid(i, 1 + i % 3, 1.0 + 0.5 * (i % 4), 0.3 * i);
      j.community = i % 2;
      locals[static_cast<std::size_t>(i % 2)].push_back(j);
    }
    sim.submit_workloads(locals);
    const GridSimResult res = sim.run();
    const auto violations = validate_grid_result(sim, res);
    EXPECT_TRUE(violations.empty()) << name << ": " << violations.size()
                                    << " violations, first: "
                                    << (violations.empty() ? ""
                                                           : violations[0]);
    EXPECT_EQ(res.jobs_completed, 8) << name;
  }
}

// The FCFS and EASY queue policies must reproduce the engine's historical
// dispatch semantics exactly (these pin the refactor's behavior).
TEST(Registry, FcfsQueueKeepsStrictOrder) {
  Simulator sim;
  OnlineCluster cluster(sim, small_cluster(2));  // default fcfs-list
  cluster.submit_local(Job::rigid(0, 2, 5.0));
  cluster.submit_local(Job::rigid(1, 2, 3.0));
  cluster.submit_local(Job::sequential(2, 0.5));  // could backfill; must not
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_DOUBLE_EQ(recs[1].start, 5.0);
  EXPECT_DOUBLE_EQ(recs[2].start, 8.0) << "FCFS must not backfill";
}

TEST(Registry, ConservativeQueueBackfillsWithoutDelayingAnyone) {
  Simulator sim;
  OnlineCluster::Options opts;
  opts.policy = "conservative-bf";
  OnlineCluster cluster(sim, small_cluster(4), opts);
  cluster.submit_local(Job::rigid(0, 3, 10.0));        // runs at 0
  cluster.submit_local(Job::rigid(1, 4, 5.0, 1.0));    // stuck head, res @10
  cluster.submit_local(Job::sequential(2, 2.0, 1.0));  // hole until 10: OK
  cluster.submit_local(Job::rigid(3, 2, 12.0, 1.5));   // would delay 1: wait
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_DOUBLE_EQ(recs[2].start, 1.0) << "harmless backfill must start";
  EXPECT_DOUBLE_EQ(recs[1].start, 10.0) << "head must not be delayed";
  EXPECT_GE(recs[3].start, 15.0 - kTimeEps)
      << "a job that would delay the reservation chain must wait";
}

TEST(Registry, BatchQueueClosesBatchesLikeShmoysWeinWilliamson) {
  Simulator sim;
  OnlineCluster::Options opts;
  opts.policy = "bi-criteria";
  OnlineCluster cluster(sim, small_cluster(2), opts);
  cluster.submit_local(Job::sequential(0, 4.0));
  // Arrives while batch 1 runs: must wait for batch 1 to drain even
  // though a processor is idle (the §4.2 transformation's structure).
  cluster.submit_local(Job::sequential(1, 1.0, 1.0));
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_DOUBLE_EQ(recs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(recs[1].start, 4.0)
      << "mid-batch arrival must wait for the next batch";
}

// ---------------------------------------------------------------------------
// User extension: register a policy under a new name and run it through
// every engine — offline by name, online, and as a sweep axis.
// ---------------------------------------------------------------------------

/// Shortest-processing-time queue: always starts the shortest fitting job.
class SptQueue : public QueuePolicy {
 public:
  std::size_t pick_next(const DispatchContext& ctx) override {
    const std::vector<QueuedJobView>& queue = ctx.queue();
    std::size_t best = kNoPick;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].procs > ctx.available()) continue;
      if (best == kNoPick || queue[i].duration < queue[best].duration)
        best = i;
    }
    return best;
  }
};

class SptPolicy : public SchedulingPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "test-spt";
    return n;
  }
  Schedule schedule(const JobSet& jobs, int m) const override {
    return list_schedule_rigid(rigidize(jobs, m), m,
                               {ListOrder::kShortestFirst, false});
  }
  std::unique_ptr<QueuePolicy> make_queue_policy() const override {
    return std::make_unique<SptQueue>();
  }
};

LGS_REGISTER_POLICY(spt, "test-spt",
                    [] { return std::make_unique<SptPolicy>(); });

TEST(Registry, CustomPolicyJoinsTheRoster) {
  EXPECT_TRUE(is_registered_policy("test-spt"));
  const auto names = registered_policy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-spt"), names.end());
  // Outside the classical enum roster: no PolicyKind round trip.
  EXPECT_THROW(policy_kind_from_string("test-spt"), std::invalid_argument);
}

TEST(Registry, BuiltinsComeBeforeExtensions) {
  // "test-spt" registered in a static initializer — *before* the lazy
  // built-in registration ran — yet the roster must lead with the
  // built-ins in presentation order.
  const auto names = registered_policy_names();
  const auto builtins = all_policies();
  ASSERT_GE(names.size(), builtins.size() + 1);
  for (std::size_t i = 0; i < builtins.size(); ++i)
    EXPECT_EQ(names[i], to_string(builtins[i])) << "position " << i;
  EXPECT_EQ(names[builtins.size()], "test-spt");
}

TEST(Registry, CustomPolicyRunsOffline) {
  const JobSet jobs = make_application_workload(
      ApplicationClass::kMoldableParallel, 30, 16, 3);
  const Schedule s = run_policy("test-spt", jobs, 16);
  EXPECT_TRUE(validate(jobs, s).empty());
}

TEST(Registry, CustomPolicyRunsOnline) {
  Simulator sim;
  OnlineCluster::Options opts;
  opts.policy = "test-spt";
  OnlineCluster cluster(sim, small_cluster(1), opts);
  cluster.submit_local(Job::sequential(0, 5.0));  // starts immediately
  cluster.submit_local(Job::sequential(1, 3.0));
  cluster.submit_local(Job::sequential(2, 1.0));
  sim.run();
  const auto& recs = cluster.local_records();
  EXPECT_DOUBLE_EQ(recs[2].start, 5.0) << "SPT runs the shortest job first";
  EXPECT_DOUBLE_EQ(recs[1].start, 6.0);
}

TEST(Registry, CustomPolicyIsASweepAxis) {
  SweepSpec spec;
  spec.policies = {"fcfs-list", "test-spt"};
  spec.apps = {ApplicationClass::kRigidParallel};
  spec.machine_sizes = {16};
  spec.seeds = {9};
  spec.jobs_per_class = 20;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.violation_count, 0u);
  EXPECT_EQ(result.cells[1].cell.policy, "test-spt");
  EXPECT_GT(result.cells[1].cmax, 0.0);
}

}  // namespace
}  // namespace lgs
