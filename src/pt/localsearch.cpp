#include "pt/localsearch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "criteria/lower_bounds.h"
#include "pt/allotment.h"
#include "pt/shelves.h"

namespace lgs {

namespace {

Time evaluate(const JobSet& jobs, const std::vector<int>& allot, int m) {
  return shelf_schedule_rigid(fix_allotments(jobs, allot), m,
                              ShelfPolicy::kFirstFitDecreasing)
      .makespan();
}

}  // namespace

LocalSearchResult local_search_moldable(const JobSet& jobs, int m,
                                        const LocalSearchOptions& opts) {
  check_jobset(jobs, m);
  for (const Job& j : jobs)
    if (j.release > 0)
      throw std::invalid_argument("local search is off-line only");
  if (opts.iterations < 0) throw std::invalid_argument("negative iterations");

  LocalSearchResult res{Schedule(m), 0.0, 0};
  if (jobs.empty()) return res;

  // Start from the canonical allotment at the area bound — the same
  // a-priori point §5.1 suggests.
  const Time lb = cmax_lower_bound(jobs, m);
  std::vector<int> current(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    int k = canonical_allotment(jobs[i], lb, m);
    if (k == 0) k = best_time_allotment(jobs[i], m);
    current[i] = k;
  }
  Time cur_val = evaluate(jobs, current, m);
  res.initial_makespan = cur_val;
  std::vector<int> best = current;
  Time best_val = cur_val;

  Rng rng(opts.seed);
  double temp = opts.temperature * cur_val;
  const double cooling =
      opts.iterations > 0 ? std::pow(1e-3, 1.0 / opts.iterations) : 1.0;

  for (int it = 0; it < opts.iterations; ++it) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_int(0, jobs.size() - 1));
    const Job& j = jobs[pick];
    const int hi = std::min(j.max_procs, m);
    if (hi == j.min_procs) continue;  // rigid: nothing to move
    int proposal;
    if (rng.flip(0.5)) {
      // Nudge by one.
      proposal = current[pick] + (rng.flip(0.5) ? 1 : -1);
    } else {
      proposal = static_cast<int>(rng.uniform_int(j.min_procs, hi));
    }
    proposal = std::clamp(proposal, j.min_procs, hi);
    if (proposal == current[pick]) continue;

    const int saved = current[pick];
    current[pick] = proposal;
    const Time val = evaluate(jobs, current, m);
    const bool accept =
        val <= cur_val ||
        (temp > 0 && rng.uniform(0.0, 1.0) < std::exp((cur_val - val) / temp));
    if (accept) {
      cur_val = val;
      ++res.accepted_moves;
      if (val < best_val) {
        best_val = val;
        best = current;
      }
    } else {
      current[pick] = saved;
    }
    temp *= cooling;
  }

  res.schedule = shelf_schedule_rigid(fix_allotments(jobs, best), m,
                                      ShelfPolicy::kFirstFitDecreasing);
  return res;
}

}  // namespace lgs
