// Bi-criteria scheduling (§4.4 and Fig. 2).
//
// The paper's family of algorithms obtains simultaneous guarantees on Cmax
// and Σ wᵢCᵢ by running a makespan procedure A_Cmax in batches of doubling
// deadlines d, 2d, 4d, ...: each batch receives as many (as heavy) tasks
// as possible among those already released, so small/heavy jobs finish in
// early batches (good Σ wᵢCᵢ) while the geometric growth keeps the total
// length within 4·ρ_Cmax of the optimal makespan.
//
// A_Cmax here is "canonical allotment at the batch deadline + FFDH shelf
// packing", a ρ ≈ 2 heuristic; jobs are offered to a batch in decreasing
// weight-density order (weight / minimal work), a knapsack-style greedy
// for the max-weight selection the theory asks of A_Cmax.
#pragma once

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

struct BicriteriaOptions {
  /// Geometric growth factor of batch deadlines (paper: 2).
  double factor = 2.0;
  /// First deadline; 0 = auto (smallest best execution time among jobs).
  Time first_deadline = 0.0;
  /// Offer jobs to batches in weight-density order (true) or submission
  /// order (ablation).
  bool density_order = true;
};

struct BicriteriaResult {
  Schedule schedule;
  int batches = 0;
};

/// Schedule moldable/sequential jobs with release dates; every job is
/// placed in the first batch (after its release) where the makespan
/// procedure still fits it.
BicriteriaResult bicriteria_schedule(const JobSet& jobs, int m,
                                     const BicriteriaOptions& opts = {});

}  // namespace lgs
