// SMART shelf scheduling for average (weighted) completion time (§4.3).
//
// Schwiegelshohn, Ludwig, Wolf, Turek and Yu's algorithm for rigid
// parallel tasks: jobs are grouped into shelves whose heights are powers
// of two (of the smallest job duration), each shelf is filled first-fit,
// and the shelves are then sequenced like jobs on a single machine by
// Smith's rule (weighted shortest shelf first).  Performance ratio 8 for
// ΣCᵢ and 8.53 for ΣwᵢCᵢ, as quoted in the paper.
//
// The module also exposes a batched variant for moldable jobs: fix
// allotments first (see pt/allotment.h).
#pragma once

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

struct SmartOptions {
  /// Pack each power-of-two class with first-fit by decreasing processor
  /// demand (the "first fit" the paper quotes) — turning this off keeps
  /// submission order inside a class (ablation).
  bool sort_by_procs = true;
};

/// Schedule rigid jobs (release dates must be 0) to minimize Σ wᵢCᵢ.
Schedule smart_schedule(const JobSet& jobs, int m,
                        const SmartOptions& opts = {});

}  // namespace lgs
