// Admission control / task rejection (§3: "Other criteria may include
// rejection of tasks").
//
// With hard due dates a scheduler may be better off *rejecting* a job it
// cannot finish in time than admitting it and blowing every deadline
// behind it.  This module implements profile-based admission: jobs are
// considered FCFS; each is tentatively placed at its earliest fit and
// admitted only if it meets its due date (jobs without one are always
// admitted).  The resulting schedule is tardiness-free by construction —
// the property the tests pin down.
#pragma once

#include <vector>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

struct AdmissionResult {
  Schedule schedule;           ///< admitted jobs only
  std::vector<JobId> rejected; ///< jobs turned away
  double rejected_weight = 0.0;
};

/// Schedule rigid jobs (fix allotments first) with due-date admission.
/// Honors release dates; admitted jobs never finish late.
AdmissionResult schedule_with_admission(const JobSet& jobs, int m);

}  // namespace lgs
