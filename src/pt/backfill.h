// Backfilling schedulers (§5.2 mentions conservative backfilling as the
// mechanism the grid layer exploits to fill holes; §5.1 needs reservation
// support).
//
// * Conservative backfilling: every queued job gets a start-time
//   reservation in the availability profile; later jobs may slide into
//   holes only when they delay nobody.
// * EASY backfilling: only the queue head holds a reservation; shorter
//   jobs may jump ahead when they do not delay it.
//
// Both take rigid jobs (fix allotments first) and honor release dates.
// Conservative backfilling additionally honors fixed reservations
// (§5.1), which are committed into the profile before scheduling.
#pragma once

#include "core/job.h"
#include "core/schedule.h"
#include "core/validate.h"

namespace lgs {

/// Conservative backfilling; `reservations` are unavailable windows.
Schedule conservative_backfill(const JobSet& jobs, int m,
                               const std::vector<Reservation>& reservations = {});

/// EASY (aggressive) backfilling; no reservation support.
Schedule easy_backfill(const JobSet& jobs, int m);

}  // namespace lgs
