#include "pt/backfill.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "core/profile.h"

namespace lgs {

namespace {

std::vector<std::size_t> fcfs_order(const JobSet& jobs) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs[a].release != jobs[b].release)
                       return jobs[a].release < jobs[b].release;
                     return jobs[a].id < jobs[b].id;
                   });
  return order;
}

}  // namespace

Schedule conservative_backfill(const JobSet& jobs, int m,
                               const std::vector<Reservation>& reservations) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("backfilling needs fixed allotments");
  check_jobset(jobs, m);

  Profile profile(m);
  for (const Reservation& r : reservations) {
    if (r.procs > m) throw std::invalid_argument("reservation too large");
    profile.commit(r.start, r.end - r.start, r.procs);
  }

  Schedule s(m);
  for (std::size_t i : fcfs_order(jobs)) {
    const Job& j = jobs[i];
    const Time dur = j.time(j.min_procs);
    const Time start = profile.earliest_fit(j.release, dur, j.min_procs);
    profile.commit(start, dur, j.min_procs);
    s.add(j.id, start, j.min_procs, dur);
  }
  return s;
}

Schedule easy_backfill(const JobSet& jobs, int m) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("backfilling needs fixed allotments");
  check_jobset(jobs, m);

  const std::vector<std::size_t> order = fcfs_order(jobs);
  std::vector<bool> started(jobs.size(), false);

  struct Running {
    Time finish;
    int procs;
  };
  std::vector<Running> running;
  int free = m;
  Time now = 0.0;
  Schedule s(m);
  std::size_t remaining = jobs.size();

  const auto start_job = [&](std::size_t i) {
    const Job& j = jobs[i];
    const Time dur = j.time(j.min_procs);
    s.add(j.id, now, j.min_procs, dur);
    running.push_back({now + dur, j.min_procs});
    free -= j.min_procs;
    started[i] = true;
    --remaining;
  };

  while (remaining > 0) {
    // 1. Start queued jobs FCFS while the head fits.
    bool moved = true;
    while (moved) {
      moved = false;
      for (std::size_t i : order) {
        if (started[i]) continue;
        const Job& j = jobs[i];
        if (j.release > now + kTimeEps) continue;  // not yet in the queue
        if (j.min_procs <= free) {
          start_job(i);
          moved = true;
        }
        break;  // only the queue head may start in this phase
      }
    }

    // 2. Find the queue head (earliest unstarted released job).
    std::size_t head = jobs.size();
    for (std::size_t i : order) {
      if (!started[i] && jobs[i].release <= now + kTimeEps) {
        head = i;
        break;
      }
    }

    if (head != jobs.size()) {
      // Compute the head's shadow time: when enough processors free up.
      std::vector<Running> sorted = running;
      std::sort(sorted.begin(), sorted.end(),
                [](const Running& a, const Running& b) {
                  return a.finish < b.finish;
                });
      int avail = free;
      Time shadow = now;
      int surplus = free - jobs[head].min_procs;
      for (const Running& r : sorted) {
        if (avail >= jobs[head].min_procs) break;
        avail += r.procs;
        shadow = r.finish;
        surplus = avail - jobs[head].min_procs;
      }
      // 3. Backfill: later queued jobs may start now if they fit and do not
      // delay the head's reservation.
      for (std::size_t i : order) {
        if (started[i] || i == head) continue;
        const Job& j = jobs[i];
        if (j.release > now + kTimeEps) continue;
        if (j.min_procs > free) continue;
        const Time dur = j.time(j.min_procs);
        const bool fits_before_shadow = now + dur <= shadow + kTimeEps;
        const bool fits_beside = j.min_procs <= surplus;
        if (fits_before_shadow || fits_beside) {
          start_job(i);
          if (fits_beside && !fits_before_shadow) surplus -= j.min_procs;
        }
      }
    }
    if (remaining == 0) break;

    // 4. Advance to the next completion or release.
    Time next = kTimeInfinity;
    for (const Running& r : running) next = std::min(next, r.finish);
    for (std::size_t i : order)
      if (!started[i] && jobs[i].release > now + kTimeEps)
        next = std::min(next, jobs[i].release);
    if (next == kTimeInfinity)
      throw std::logic_error("EASY backfilling stalled");
    now = next;
    std::vector<Running> still;
    for (const Running& r : running) {
      if (r.finish <= now + kTimeEps)
        free += r.procs;
      else
        still.push_back(r);
    }
    running = std::move(still);
  }
  return s;
}

}  // namespace lgs
