#include "pt/backfill.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "core/profile.h"

namespace lgs {

namespace {

std::vector<std::size_t> fcfs_order(const JobSet& jobs) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs[a].release != jobs[b].release)
                       return jobs[a].release < jobs[b].release;
                     return jobs[a].id < jobs[b].id;
                   });
  return order;
}

}  // namespace

Schedule conservative_backfill(const JobSet& jobs, int m,
                               const std::vector<Reservation>& reservations) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("backfilling needs fixed allotments");
  check_jobset(jobs, m);

  Profile profile(m);
  profile.reserve(2 * (jobs.size() + reservations.size()));
  for (const Reservation& r : reservations) {
    if (r.procs > m) throw std::invalid_argument("reservation too large");
    profile.commit(r.start, r.end - r.start, r.procs);
  }

  Schedule s(m);
  s.reserve(jobs.size());
  for (std::size_t i : fcfs_order(jobs)) {
    const Job& j = jobs[i];
    const Time dur = j.time(j.min_procs);
    const Time start = profile.earliest_fit(j.release, dur, j.min_procs);
    profile.commit(start, dur, j.min_procs);
    s.add(j.id, start, j.min_procs, dur);
  }
  return s;
}

Schedule easy_backfill(const JobSet& jobs, int m) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("backfilling needs fixed allotments");
  check_jobset(jobs, m);

  const std::vector<std::size_t> order = fcfs_order(jobs);
  std::vector<bool> started(jobs.size(), false);

  // Started jobs (past and running) live in the availability profile; the
  // heap of pending finish times drives the event clock.
  Profile profile(m);
  profile.reserve(2 * jobs.size());
  std::priority_queue<Time, std::vector<Time>, std::greater<Time>> finishes;
  Time now = 0.0;
  Schedule s(m);
  s.reserve(jobs.size());
  std::size_t remaining = jobs.size();

  const auto start_job = [&](std::size_t i) {
    const Job& j = jobs[i];
    const Time dur = j.time(j.min_procs);
    s.add(j.id, now, j.min_procs, dur);
    profile.commit(now, dur, j.min_procs);
    finishes.push(now + dur);
    started[i] = true;
    --remaining;
  };

  while (remaining > 0) {
    // 1. Start queued jobs FCFS while the head fits.
    bool moved = true;
    while (moved) {
      moved = false;
      for (std::size_t i : order) {
        if (started[i]) continue;
        const Job& j = jobs[i];
        if (j.release > now + kTimeEps) continue;  // not yet in the queue
        if (j.min_procs <= profile.free_at(now)) {
          start_job(i);
          moved = true;
        }
        break;  // only the queue head may start in this phase
      }
    }

    // 2. Find the queue head (earliest unstarted released job).
    std::size_t head = jobs.size();
    for (std::size_t i : order) {
      if (!started[i] && jobs[i].release <= now + kTimeEps) {
        head = i;
        break;
      }
    }

    if (head != jobs.size()) {
      // 3. Reserve the head at its shadow time — usage is non-increasing
      // after `now` (only completions ahead), so earliest_fit is exactly
      // "when enough processors free up" — then backfill any released job
      // that fits around the reservation.  The profile query subsumes both
      // classic conditions (ends before the shadow / fits in the surplus).
      const Time head_dur = jobs[head].time(jobs[head].min_procs);
      const Time shadow =
          profile.earliest_fit(now, head_dur, jobs[head].min_procs);
      profile.commit(shadow, head_dur, jobs[head].min_procs);
      for (std::size_t i : order) {
        if (started[i] || i == head) continue;
        const Job& j = jobs[i];
        if (j.release > now + kTimeEps) continue;
        const Time dur = j.time(j.min_procs);
        if (profile.fits(now, dur, j.min_procs)) start_job(i);
      }
      profile.release(shadow, head_dur, jobs[head].min_procs);
    }
    if (remaining == 0) break;

    // 4. Advance to the next completion or release.
    Time next = kTimeInfinity;
    if (!finishes.empty()) next = finishes.top();
    for (std::size_t i : order)
      if (!started[i] && jobs[i].release > now + kTimeEps)
        next = std::min(next, jobs[i].release);
    if (next == kTimeInfinity)
      throw std::logic_error("EASY backfilling stalled");
    // Snap the clock to the latest finish within tolerance: used_at is
    // exact (right-continuous), so a job whose finish lands a few ulps
    // after `next` would otherwise be counted as running forever while
    // its wake-up event is already consumed.
    now = next;
    while (!finishes.empty() && finishes.top() <= now + kTimeEps) {
      now = std::max(now, finishes.top());
      finishes.pop();
    }
  }
  return s;
}

}  // namespace lgs
