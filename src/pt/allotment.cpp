#include "pt/allotment.h"

#include <algorithm>
#include <stdexcept>

namespace lgs {

int canonical_allotment(const Job& j, Time t, int m) {
  const int hi = std::min(j.max_procs, m);
  if (hi < j.min_procs) return 0;
  if (j.model.time(hi) > t + kTimeEps) return 0;
  // Binary search: time() is non-increasing, find the smallest k meeting t.
  int lo = j.min_procs, best = hi;
  int high = hi;
  while (lo <= high) {
    const int mid = lo + (high - lo) / 2;
    if (j.model.time(mid) <= t + kTimeEps) {
      best = mid;
      high = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

int min_work_allotment(const Job& j, int m) {
  if (j.min_procs > m)
    throw std::invalid_argument("job cannot run on this machine");
  return j.min_procs;
}

int best_time_allotment(const Job& j, int m) {
  const int hi = std::min(j.max_procs, m);
  if (hi < j.min_procs)
    throw std::invalid_argument("job cannot run on this machine");
  // The model may stop improving before hi; don't waste processors.
  const int useful = j.model.useful_limit(hi);
  return std::max(j.min_procs, useful);
}

JobSet fix_allotments(const JobSet& jobs, const std::vector<int>& allotments) {
  if (allotments.size() != jobs.size())
    throw std::invalid_argument("allotment vector size mismatch");
  JobSet rigid;
  rigid.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    int k = allotments[i];
    if (j.kind == JobKind::kRigid) k = j.min_procs;
    if (k < j.min_procs || k > j.max_procs)
      throw std::invalid_argument("allotment out of range");
    Job r = Job::rigid(j.id, k, j.time(k), j.release, j.weight);
    r.due = j.due;
    r.community = j.community;
    rigid.push_back(std::move(r));
  }
  return rigid;
}

JobSet fix_canonical(const JobSet& jobs, Time t, int m) {
  std::vector<int> allot(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    int k = canonical_allotment(j, t, m);
    if (k == 0) k = best_time_allotment(j, m);
    allot[i] = k;
  }
  return fix_allotments(jobs, allot);
}

}  // namespace lgs
