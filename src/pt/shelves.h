// Shelf algorithms / strip packing for rigid jobs (§2.2: "the allocation
// problem corresponds to a strip-packing problem").
//
// A shelf is a set of jobs starting at the same time whose processor
// demands sum to at most m; the shelf's height is its longest job.  NFDH
// and FFDH are the classical level (shelf) strip-packing heuristics; the
// shelf structure is also the backbone of SMART (§4.3) and of the MRT
// two-shelf algorithm (§4.1).
#pragma once

#include <vector>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

/// One shelf under construction: indices into the job set plus geometry.
struct Shelf {
  std::vector<std::size_t> items;
  int used_procs = 0;
  Time height = 0.0;
};

enum class ShelfPolicy {
  kNextFitDecreasing,   ///< NFDH: only the current (last) shelf is tried
  kFirstFitDecreasing,  ///< FFDH: first shelf with room wins
};

/// Pack rigid jobs into shelves by decreasing duration and stack the
/// shelves from time 0.  Ignores release dates (off-line, batch interior).
Schedule shelf_schedule_rigid(const JobSet& jobs, int m,
                              ShelfPolicy policy = ShelfPolicy::kFirstFitDecreasing);

/// Build the shelf decomposition without committing start times (used by
/// SMART, which orders shelves by weight rather than stacking greedily).
std::vector<Shelf> build_shelves(const JobSet& jobs, int m, ShelfPolicy policy);

}  // namespace lgs
