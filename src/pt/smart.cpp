#include "pt/smart.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lgs {

namespace {

struct SmartShelf {
  std::vector<std::size_t> items;
  int used_procs = 0;
  Time height = 0.0;    // power-of-two class height
  double weight = 0.0;  // Σ weights of members
};

}  // namespace

Schedule smart_schedule(const JobSet& jobs, int m, const SmartOptions& opts) {
  check_jobset(jobs, m);
  for (const Job& j : jobs) {
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("smart_schedule needs fixed allotments");
    if (j.release > 0)
      throw std::invalid_argument("smart_schedule is off-line");
  }
  Schedule s(m);
  if (jobs.empty()) return s;

  // Normalize durations by the smallest one; class of job j is
  // ceil(log2(p_j / p_min)), shelf height = p_min * 2^class.
  Time pmin = kTimeInfinity;
  for (const Job& j : jobs) pmin = std::min(pmin, j.time(j.min_procs));

  std::map<int, std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double ratio = jobs[i].time(jobs[i].min_procs) / pmin;
    const int cls = std::max(0, static_cast<int>(std::ceil(
                                    std::log2(ratio) - 1e-12)));
    classes[cls].push_back(i);
  }

  // Fill each class first-fit into shelves of m processors.
  std::vector<SmartShelf> shelves;
  for (auto& [cls, members] : classes) {
    const Time height = pmin * std::ldexp(1.0, cls);
    if (opts.sort_by_procs) {
      std::stable_sort(members.begin(), members.end(),
                       [&](std::size_t a, std::size_t b) {
                         return jobs[a].min_procs > jobs[b].min_procs;
                       });
    }
    const std::size_t first_new = shelves.size();
    for (std::size_t i : members) {
      const int need = jobs[i].min_procs;
      SmartShelf* target = nullptr;
      for (std::size_t si = first_new; si < shelves.size(); ++si) {
        if (shelves[si].used_procs + need <= m) {
          target = &shelves[si];
          break;
        }
      }
      if (target == nullptr) {
        shelves.push_back({});
        shelves.back().height = height;
        target = &shelves.back();
      }
      target->items.push_back(i);
      target->used_procs += need;
      target->weight += jobs[i].weight;
    }
  }

  // Sequence shelves by Smith's rule: increasing height / weight.
  std::vector<std::size_t> order(shelves.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shelves[a].height * shelves[b].weight <
           shelves[b].height * shelves[a].weight;
  });

  Time base = 0.0;
  for (std::size_t si : order) {
    const SmartShelf& sh = shelves[si];
    for (std::size_t i : sh.items) {
      const Job& j = jobs[i];
      s.add(j.id, base, j.min_procs, j.time(j.min_procs));
    }
    base += sh.height;
  }
  return s;
}

}  // namespace lgs
