// Non-clairvoyant on-line scheduling (§4.2).
//
// The paper distinguishes clairvoyant on-line algorithms (execution times
// known at submission — the case it develops) from non-clairvoyant ones
// (only partial knowledge).  This module implements the classical
// doubling-budget technique for the non-clairvoyant case so the price of
// clairvoyance can be measured (bench/bench_extensions):
//
// Jobs run with a *budget*; a job that exhausts its budget is killed and
// requeued with a doubled budget (its work so far is lost — the paper's
// best-effort kill/resubmit mechanic, applied to unknown durations).
// Each round is dispatched with greedy list scheduling.  Every job with
// true duration p is killed at most ⌈log2(p/b0)⌉ times, so the total
// wasted work is within a constant factor of the useful work.
#pragma once

#include <map>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

struct NonClairvoyantOptions {
  /// First budget b0 (doubled after every kill).
  Time initial_budget = 1.0;
  double growth = 2.0;
};

struct NonClairvoyantResult {
  /// All execution attempts, including killed ones (duration = the slice
  /// actually held).  Capacity-valid; jobs appear multiple times.
  Schedule attempts;
  /// Completion time of each job's successful run.
  std::map<JobId, Time> completion;
  /// Processor-seconds burnt by killed attempts.
  double wasted_work = 0.0;
  long kills = 0;
  Time makespan = 0.0;
};

/// Schedule rigid jobs (fix allotments first) without knowing durations.
/// Honors release dates.
NonClairvoyantResult nonclairvoyant_schedule(
    const JobSet& jobs, int m, const NonClairvoyantOptions& opts = {});

}  // namespace lgs
