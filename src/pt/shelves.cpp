#include "pt/shelves.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lgs {

std::vector<Shelf> build_shelves(const JobSet& jobs, int m,
                                 ShelfPolicy policy) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("shelf packing needs fixed allotments");

  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].time(jobs[a].min_procs) >
                            jobs[b].time(jobs[b].min_procs);
                   });

  std::vector<Shelf> shelves;
  for (std::size_t i : order) {
    const int need = jobs[i].min_procs;
    const Time dur = jobs[i].time(need);
    Shelf* target = nullptr;
    if (policy == ShelfPolicy::kNextFitDecreasing) {
      if (!shelves.empty() && shelves.back().used_procs + need <= m)
        target = &shelves.back();
    } else {
      for (Shelf& sh : shelves) {
        if (sh.used_procs + need <= m) {
          target = &sh;
          break;
        }
      }
    }
    if (target == nullptr) {
      shelves.push_back({});
      target = &shelves.back();
    }
    target->items.push_back(i);
    target->used_procs += need;
    target->height = std::max(target->height, dur);
  }
  return shelves;
}

Schedule shelf_schedule_rigid(const JobSet& jobs, int m, ShelfPolicy policy) {
  check_jobset(jobs, m);
  const std::vector<Shelf> shelves = build_shelves(jobs, m, policy);
  Schedule s(m);
  s.reserve(jobs.size());
  Time base = 0.0;
  for (const Shelf& sh : shelves) {
    for (std::size_t i : sh.items) {
      const Job& j = jobs[i];
      s.add(j.id, base, j.min_procs, j.time(j.min_procs));
    }
    base += sh.height;
  }
  return s;
}

}  // namespace lgs
