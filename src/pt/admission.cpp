#include "pt/admission.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/profile.h"

namespace lgs {

AdmissionResult schedule_with_admission(const JobSet& jobs, int m) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument("admission needs fixed allotments");
  check_jobset(jobs, m);

  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs[a].release != jobs[b].release)
                       return jobs[a].release < jobs[b].release;
                     return jobs[a].id < jobs[b].id;
                   });

  AdmissionResult res{Schedule(m), {}, 0.0};
  Profile profile(m);
  for (std::size_t i : order) {
    const Job& j = jobs[i];
    const Time dur = j.time(j.min_procs);
    const Time start = profile.earliest_fit(j.release, dur, j.min_procs);
    if (j.due != kNoDueDate && start + dur > j.due + kTimeEps) {
      res.rejected.push_back(j.id);
      res.rejected_weight += j.weight;
      continue;
    }
    profile.commit(start, dur, j.min_procs);
    res.schedule.add(j.id, start, j.min_procs, dur);
  }
  return res;
}

}  // namespace lgs
