#include "pt/mrt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "criteria/lower_bounds.h"
#include "pt/allotment.h"
#include "pt/shelves.h"

namespace lgs {

namespace {

/// One attempt at guess λ.  Returns the schedule on success.
///
/// Structure (see mrt.h): canonical allotments for the two shelf targets
/// λ and λ/2; a knapsack DP picks, for each job, the large-shelf or
/// small-shelf allotment so that total work is minimized under the
/// constraint that large-allotment jobs fit side by side (Σ k1 ≤ m).
/// Certified rejections — some job cannot meet λ at all, or minimal work
/// exceeds λm — prove λ < C*max.  The chosen allotments are then realized
/// with FFDH strip packing; if the packing exceeds 3λ/2 the guess is
/// rejected heuristically (see DESIGN.md for the deviation discussion).
std::optional<Schedule> try_lambda(const JobSet& jobs, int m, Time lambda) {
  const std::size_t n = jobs.size();

  std::vector<int> k1(n), k2(n);
  std::vector<double> w1(n), w2(n);
  for (std::size_t i = 0; i < n; ++i) {
    k1[i] = canonical_allotment(jobs[i], lambda, m);
    if (k1[i] == 0) return std::nullopt;  // λ < p_i(m) <= C*max: certified
    w1[i] = jobs[i].work(k1[i]);
    k2[i] = canonical_allotment(jobs[i], lambda / 2, m);
    w2[i] = k2[i] ? jobs[i].work(k2[i]) : 0.0;
  }

  // Knapsack DP over shelf-1 capacity: dp[c] = minimal total work with the
  // S1 jobs using exactly c processors.  Choices recorded exactly.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t width = static_cast<std::size_t>(m) + 1;
  std::vector<double> dp(width, kInf);
  dp[0] = 0.0;
  // choice[i][c]: job i goes to S1 in the optimum reaching capacity c
  // after processing jobs 0..i.
  std::vector<std::vector<bool>> choice(n, std::vector<bool>(width, false));
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> ndp(width, kInf);
    for (std::size_t c = 0; c < width; ++c) {
      if (dp[c] == kInf) continue;
      // Option S2 (needs a λ/2-feasible allotment).
      if (k2[i] != 0 && dp[c] + w2[i] < ndp[c]) {
        ndp[c] = dp[c] + w2[i];
        choice[i][c] = false;
      }
      // Option S1.
      const std::size_t nc = c + static_cast<std::size_t>(k1[i]);
      if (nc < width && dp[c] + w1[i] < ndp[nc]) {
        ndp[nc] = dp[c] + w1[i];
        choice[i][nc] = true;
      }
    }
    dp = std::move(ndp);
  }

  std::size_t best_c = 0;
  double best_w = kInf;
  for (std::size_t c = 0; c < width; ++c) {
    if (dp[c] < best_w) {
      best_w = dp[c];
      best_c = c;
    }
  }
  if (best_w == kInf) return std::nullopt;
  // Area argument: any schedule of makespan λ has total work ≤ λm.
  if (best_w > lambda * m * (1.0 + kRelEps) + kTimeEps) return std::nullopt;

  // Back-track the partition and fix allotments accordingly.
  std::vector<int> allot(n);
  {
    std::size_t c = best_c;
    for (std::size_t ii = n; ii-- > 0;) {
      if (choice[ii][c]) {
        allot[ii] = k1[ii];
        c -= static_cast<std::size_t>(k1[ii]);
      } else {
        allot[ii] = k2[ii];
      }
    }
  }

  // Realize with FFDH strip packing (jobs sorted by decreasing duration,
  // shelves stacked).  Capacity-safe by construction; accept iff the strip
  // stays within the two-shelf budget 3λ/2.
  JobSet rigid;
  rigid.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    rigid.push_back(Job::rigid(jobs[i].id, allot[i], jobs[i].time(allot[i])));
  Schedule s =
      shelf_schedule_rigid(rigid, m, ShelfPolicy::kFirstFitDecreasing);
  if (s.makespan() > 1.5 * lambda + kTimeEps) return std::nullopt;
  return s;
}

}  // namespace

MrtResult mrt_schedule(const JobSet& jobs, int m, const MrtOptions& opts) {
  check_jobset(jobs, m);
  for (const Job& j : jobs)
    if (j.release > 0)
      throw std::invalid_argument(
          "mrt_schedule is off-line; wrap with batch_schedule for releases");

  MrtResult res{Schedule(m), 0.0, 0.0};
  if (jobs.empty()) return res;

  const Time lb = cmax_lower_bound(jobs, m);
  res.lower_bound = lb;

  // Find a feasible upper guess by doubling.
  Time hi = lb;
  std::optional<Schedule> hi_sched = try_lambda(jobs, m, hi);
  while (!hi_sched) {
    hi *= 2.0;
    if (hi > lb * 1e6)
      throw std::logic_error("MRT could not find a feasible guess");
    hi_sched = try_lambda(jobs, m, hi);
  }

  // Binary search between lb and hi to relative precision eps.
  Time lo = lb;
  while (hi - lo > opts.eps * lo) {
    const Time mid = 0.5 * (lo + hi);
    std::optional<Schedule> mid_sched = try_lambda(jobs, m, mid);
    if (mid_sched) {
      hi = mid;
      hi_sched = std::move(mid_sched);
    } else {
      lo = mid;
    }
  }
  res.schedule = std::move(*hi_sched);
  res.lambda = hi;
  return res;
}

}  // namespace lgs
