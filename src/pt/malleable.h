// Malleable job scheduling (§2.2, third PT class).
//
// The paper defers malleability ("we will not consider malleability
// here") while noting it is "much more easily usable from the scheduling
// point of view" and should grow in importance — this module implements
// that future-work direction so the claim can be measured (see
// bench/bench_malleable).
//
// Model: a malleable job's processor count may change at any scheduler
// event.  Progress is tracked in sequential-time units: with allotment k
// the job advances at its *speedup* rate  s(k) = t(1) / t(k)  (monotone,
// from the job's ExecModel), and completes when the accumulated progress
// reaches t(1).  Reallocation is free (the paper's penalty-factor view:
// redistribution costs are already inside the model; an explicit cost can
// be enabled for ablation).
//
// Schedulers:
//  * EQUI — equi-partitioning: active jobs share the machine equally
//    (the classical non-clairvoyant-fair policy);
//  * MaxSpeedup — water-filling by marginal speedup: each processor goes
//    where it buys the most instantaneous progress (clairvoyant-greedy).
#pragma once

#include <map>
#include <vector>

#include "core/job.h"
#include "core/types.h"

namespace lgs {

/// One constant-allocation interval of a malleable execution.
struct MalleablePhase {
  Time start = 0.0;
  Time end = 0.0;
  /// job id -> processors during [start, end).
  std::map<JobId, int> allotment;
};

/// Completed malleable execution.
struct MalleableSchedule {
  std::vector<MalleablePhase> phases;
  std::map<JobId, Time> completion;
  Time makespan = 0.0;

  /// Largest Σ allotment over all phases (must be ≤ m).
  int peak_demand() const;
  /// Integrated processor-time consumed by one job.
  double consumed(JobId id) const;
};

enum class MalleablePolicy {
  kEqui,        ///< equal shares among active jobs
  kMaxSpeedup,  ///< processors to the best marginal speedup
};

const char* to_string(MalleablePolicy p);

struct MalleableOptions {
  MalleablePolicy policy = MalleablePolicy::kEqui;
  /// Progress lost at each reallocation of a job, in sequential-time
  /// units (0 = free malleability; > 0 models redistribution cost).
  double realloc_penalty = 0.0;
};

/// Schedule jobs (any kind; rigid jobs keep their fixed width, moldable/
/// malleable use [min_procs, max_procs]) with dynamic reallocation.
/// Release dates honored.  Throws on jobs wider than the machine.
MalleableSchedule malleable_schedule(const JobSet& jobs, int m,
                                     const MalleableOptions& opts = {});

/// Sanity checker mirroring core/validate.h for the malleable structure:
/// capacity respected in every phase, phases contiguous and ordered,
/// every job completed exactly once after its release, allotments within
/// bounds.  Returns human-readable problems (empty = valid).
std::vector<std::string> validate_malleable(const JobSet& jobs, int m,
                                            const MalleableSchedule& s);

}  // namespace lgs
