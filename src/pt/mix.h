// Mixing rigid and moldable jobs (§5.1).
//
// Real queues contain both: moldable applications plus jobs that must stay
// rigid (memory constraints, benchmarking runs, un-recoded programs).  The
// paper sketches three ideas, all implemented here for the E-MIX bench:
//   1. schedule the two categories one after the other,
//   2. fix an a-priori allotment for the moldable jobs and run a rigid
//      scheduler on the union,
//   3. modify the bi-criteria batch algorithm to put each rigid job in the
//      first batch where it fits (our bicriteria_schedule already treats a
//      rigid job as a degenerate moldable one, which is exactly that).
#pragma once

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

enum class MixStrategy {
  kSeparatePhases,    ///< moldable first (MRT), rigid afterwards (FFDH)
  kAprioriAllotment,  ///< canonical allotment at the area bound, then backfill
  kRigidIntoBatches,  ///< bi-criteria batches accepting rigid jobs as-is
};

const char* to_string(MixStrategy s);

/// Schedule a mixed rigid/moldable set.  kSeparatePhases is off-line only
/// (all releases 0); the other strategies honor release dates.
Schedule schedule_mixed(const JobSet& jobs, int m, MixStrategy strategy);

}  // namespace lgs
