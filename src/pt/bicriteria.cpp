#include "pt/bicriteria.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pt/allotment.h"

namespace lgs {

namespace {

/// Incremental A_Cmax: first-fit shelves bounded by the batch length.
/// Jobs are offered one at a time; a job is accepted iff it fits in an
/// existing shelf without pushing the stacked height beyond `len`, or a
/// fresh shelf for it still fits.  O(#shelves) per offer.
class BatchPacker {
 public:
  BatchPacker(int m, Time len) : m_(m), len_(len) {}

  /// Try to place (job, k procs, dur).  Returns true and records the
  /// placement on success.
  bool offer(JobId id, int k, Time dur) {
    if (dur > len_ + kTimeEps || k > m_) return false;
    // First fit: a shelf whose height won't grow past budget.
    for (std::size_t si = 0; si < shelves_.size(); ++si) {
      ShelfState& sh = shelves_[si];
      if (sh.used + k > m_) continue;
      const Time new_height = std::max(sh.height, dur);
      if (total_ - sh.height + new_height > len_ + kTimeEps) continue;
      total_ += new_height - sh.height;
      sh.height = new_height;
      sh.used += k;
      items_.push_back({id, si, k, dur});
      return true;
    }
    if (total_ + dur > len_ + kTimeEps) return false;
    shelves_.push_back({k, dur});
    total_ += dur;
    items_.push_back({id, shelves_.size() - 1, k, dur});
    return true;
  }

  /// Emit the batch-relative schedule (shelves stacked from 0).
  void emit(Time offset, Schedule* out) const {
    out->reserve(out->size() + items_.size());
    std::vector<Time> base(shelves_.size(), 0.0);
    Time acc = 0.0;
    for (std::size_t si = 0; si < shelves_.size(); ++si) {
      base[si] = acc;
      acc += shelves_[si].height;
    }
    for (const Item& it : items_)
      out->add(it.id, offset + base[it.shelf], it.procs, it.dur);
  }

  bool empty() const { return items_.empty(); }
  std::size_t count() const { return items_.size(); }

 private:
  struct ShelfState {
    int used = 0;
    Time height = 0.0;
  };
  struct Item {
    JobId id;
    std::size_t shelf;
    int procs;
    Time dur;
  };
  int m_;
  Time len_;
  Time total_ = 0.0;
  std::vector<ShelfState> shelves_;
  std::vector<Item> items_;
};

}  // namespace

BicriteriaResult bicriteria_schedule(const JobSet& jobs, int m,
                                     const BicriteriaOptions& opts) {
  check_jobset(jobs, m);
  if (opts.factor <= 1.0)
    throw std::invalid_argument("growth factor must exceed 1");
  BicriteriaResult res{Schedule(m), 0};
  res.schedule.reserve(jobs.size());
  if (jobs.empty()) return res;

  Time d0 = opts.first_deadline;
  if (d0 <= 0) {
    d0 = kTimeInfinity;
    for (const Job& j : jobs) d0 = std::min(d0, j.best_time(m));
  }

  std::vector<bool> done(jobs.size(), false);
  std::size_t remaining = jobs.size();

  Time batch_start = 0.0;
  Time deadline = d0;
  int guard = 0;
  while (remaining > 0) {
    if (++guard > 300)
      throw std::logic_error("bicriteria batches failed to converge");
    const Time len = deadline - batch_start;

    // Candidates released by the start of this batch, heaviest density
    // first (greedy stand-in for the max-weight selection of §4.4).
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (!done[i] && jobs[i].release <= batch_start + kTimeEps)
        candidates.push_back(i);
    if (opts.density_order) {
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](std::size_t a, std::size_t b) {
                         return jobs[a].weight * jobs[b].min_work() >
                                jobs[b].weight * jobs[a].min_work();
                       });
    }

    BatchPacker packer(m, len);
    std::vector<std::size_t> selected;
    for (std::size_t i : candidates) {
      const Job& j = jobs[i];
      const int k = canonical_allotment(j, len, m);
      if (k == 0) continue;  // cannot meet this deadline; wait for a later one
      if (packer.offer(j.id, k, j.time(k))) selected.push_back(i);
    }

    if (!selected.empty()) {
      packer.emit(batch_start, &res.schedule);
      for (std::size_t i : selected) done[i] = true;
      remaining -= selected.size();
      ++res.batches;
    }
    batch_start = deadline;
    deadline = batch_start * opts.factor;
    if (deadline <= batch_start) deadline = batch_start + d0;
  }
  return res;
}

}  // namespace lgs
