// Allotment selection for moldable jobs (§4).
//
// The moldable algorithms all reduce to: pick a processor count for each
// job (the *allotment*), then solve a rigid packing problem.  The canonical
// allotment γ(j, t) — the fewest processors bringing job j under time t —
// is the key primitive of the MRT dual-approximation (§4.1).
#pragma once

#include <vector>

#include "core/job.h"

namespace lgs {

/// Smallest admissible allotment k (min_procs <= k <= min(max_procs, m))
/// with time(k) <= t, or 0 when no admissible count meets t.  Well defined
/// because ExecModel times are monotone non-increasing.
int canonical_allotment(const Job& j, Time t, int m);

/// Allotment minimizing work = min_procs for monotone models (clamped to m).
int min_work_allotment(const Job& j, int m);

/// Allotment minimizing execution time (fastest, most wasteful).
int best_time_allotment(const Job& j, int m);

/// Turn a moldable job set into a rigid one by fixing allotments[i]
/// processors for jobs[i]; durations come from the execution model.
/// Rigid/sequential jobs keep their processor count (allotments entry
/// ignored).  Throws if an allotment is out of range.
JobSet fix_allotments(const JobSet& jobs, const std::vector<int>& allotments);

/// Convenience: fix every moldable job at its canonical allotment for
/// target time `t` (jobs that cannot meet `t` get their best-time
/// allotment instead — used by heuristic batch fillers).
JobSet fix_canonical(const JobSet& jobs, Time t, int m);

}  // namespace lgs
