#include "pt/malleable.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

namespace lgs {

namespace {

constexpr double kProgressEps = 1e-9;

/// Instantaneous speedup of job j on k processors (0 when unallocated).
double speedup(const Job& j, int k) {
  if (k <= 0) return 0.0;
  return j.model.time(1) / j.model.time(k);
}

struct Active {
  std::size_t idx;        // into jobs
  double remaining;       // sequential-time units left
  int allotment = 0;
};

/// EQUI: equal shares, respecting [min,max] bounds, deterministic in job
/// id order; leftovers water-filled one processor at a time.
void allocate_equi(const JobSet& jobs, std::vector<Active>& active, int m) {
  for (Active& a : active) a.allotment = 0;
  if (active.empty()) return;
  const int share = std::max(1, m / static_cast<int>(active.size()));
  int left = m;
  for (Active& a : active) {
    const Job& j = jobs[a.idx];
    const int hi = std::min(j.max_procs, m);
    const int want = std::min(hi, std::max(j.min_procs, share));
    if (want <= left) {
      a.allotment = want;
      left -= want;
    }
  }
  // Water-fill leftovers to jobs that can still grow.
  bool grew = true;
  while (left > 0 && grew) {
    grew = false;
    for (Active& a : active) {
      if (left == 0) break;
      const Job& j = jobs[a.idx];
      if (a.allotment == 0) {
        if (j.min_procs <= left) {
          a.allotment = j.min_procs;
          left -= j.min_procs;
          grew = true;
        }
      } else if (a.allotment < std::min(j.max_procs, m)) {
        ++a.allotment;
        --left;
        grew = true;
      }
    }
  }
}

/// MaxSpeedup: repeatedly spend processors where the marginal speedup per
/// processor is highest (activation of an idle job costs min_procs at
/// once).  Clairvoyant-greedy; deterministic (ties by job id).
void allocate_max_speedup(const JobSet& jobs, std::vector<Active>& active,
                          int m) {
  for (Active& a : active) a.allotment = 0;
  int left = m;
  while (left > 0) {
    double best_gain = 0.0;
    Active* best = nullptr;
    int best_cost = 0;
    for (Active& a : active) {
      const Job& j = jobs[a.idx];
      const int hi = std::min(j.max_procs, m);
      double gain = 0.0;
      int cost = 0;
      if (a.allotment == 0) {
        cost = j.min_procs;
        if (cost > left) continue;
        gain = speedup(j, j.min_procs) / cost;
      } else if (a.allotment < hi) {
        cost = 1;
        gain = speedup(j, a.allotment + 1) - speedup(j, a.allotment);
      } else {
        continue;
      }
      if (gain > best_gain + kProgressEps ||
          (gain > best_gain - kProgressEps && best != nullptr &&
           jobs[a.idx].id < jobs[best->idx].id)) {
        best_gain = gain;
        best = &a;
        best_cost = cost;
      }
    }
    if (best == nullptr || best_gain <= kProgressEps) break;
    best->allotment += best_cost == 1 ? 1 : best_cost;
    left -= best_cost;
  }
}

}  // namespace

const char* to_string(MalleablePolicy p) {
  switch (p) {
    case MalleablePolicy::kEqui:
      return "equi-partition";
    case MalleablePolicy::kMaxSpeedup:
      return "max-speedup";
  }
  return "?";
}

int MalleableSchedule::peak_demand() const {
  int peak = 0;
  for (const MalleablePhase& ph : phases) {
    int total = 0;
    for (const auto& [id, k] : ph.allotment) total += k;
    peak = std::max(peak, total);
  }
  return peak;
}

double MalleableSchedule::consumed(JobId id) const {
  double total = 0.0;
  for (const MalleablePhase& ph : phases) {
    const auto it = ph.allotment.find(id);
    if (it != ph.allotment.end())
      total += static_cast<double>(it->second) * (ph.end - ph.start);
  }
  return total;
}

MalleableSchedule malleable_schedule(const JobSet& jobs, int m,
                                     const MalleableOptions& opts) {
  check_jobset(jobs, m);
  MalleableSchedule out;
  if (jobs.empty()) return out;

  // Pending jobs sorted by release; active set with remaining progress.
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  std::stable_sort(pending.begin(), pending.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs[a].release != jobs[b].release)
                       return jobs[a].release < jobs[b].release;
                     return jobs[a].id < jobs[b].id;
                   });
  std::size_t next_pending = 0;
  std::vector<Active> active;
  Time now = 0.0;
  std::size_t done = 0;

  int guard = 0;
  const int guard_limit = static_cast<int>(jobs.size()) * 1000 + 1000;
  while (done < jobs.size()) {
    if (++guard > guard_limit)
      throw std::logic_error("malleable scheduler failed to converge");

    // Admit released jobs.
    while (next_pending < pending.size() &&
           jobs[pending[next_pending]].release <= now + kTimeEps) {
      active.push_back(
          {pending[next_pending], jobs[pending[next_pending]].model.time(1)});
      ++next_pending;
    }
    if (active.empty()) {
      // Idle until the next release.
      now = jobs[pending[next_pending]].release;
      continue;
    }

    // Reallocate.
    std::vector<int> before(active.size());
    for (std::size_t i = 0; i < active.size(); ++i)
      before[i] = active[i].allotment;
    if (opts.policy == MalleablePolicy::kEqui)
      allocate_equi(jobs, active, m);
    else
      allocate_max_speedup(jobs, active, m);
    if (opts.realloc_penalty > 0) {
      for (std::size_t i = 0; i < active.size(); ++i)
        if (before[i] != 0 && before[i] != active[i].allotment)
          active[i].remaining += opts.realloc_penalty;
    }

    // Time to the next event: completion or release.
    Time dt = kTimeInfinity;
    if (next_pending < pending.size())
      dt = jobs[pending[next_pending]].release - now;
    for (const Active& a : active) {
      const double s = speedup(jobs[a.idx], a.allotment);
      if (s > 0) dt = std::min(dt, a.remaining / s);
    }
    if (dt == kTimeInfinity)
      throw std::logic_error("malleable scheduler stalled");
    dt = std::max(dt, 0.0);

    // Record the phase and advance progress.
    if (dt > 0) {
      MalleablePhase ph;
      ph.start = now;
      ph.end = now + dt;
      for (const Active& a : active)
        if (a.allotment > 0) ph.allotment[jobs[a.idx].id] = a.allotment;
      if (!ph.allotment.empty()) out.phases.push_back(std::move(ph));
    }
    now += dt;
    std::vector<Active> still;
    for (Active& a : active) {
      a.remaining -= speedup(jobs[a.idx], a.allotment) * dt;
      if (a.remaining <= kProgressEps * (1.0 + jobs[a.idx].model.time(1))) {
        out.completion[jobs[a.idx].id] = now;
        ++done;
      } else {
        still.push_back(a);
      }
    }
    active = std::move(still);
  }
  out.makespan = now;
  return out;
}

std::vector<std::string> validate_malleable(const JobSet& jobs, int m,
                                            const MalleableSchedule& s) {
  std::vector<std::string> problems;
  const auto report = [&](const std::string& p) { problems.push_back(p); };

  Time prev_end = 0.0;
  for (const MalleablePhase& ph : s.phases) {
    if (ph.end < ph.start - kTimeEps) report("phase with negative length");
    if (ph.start < prev_end - kTimeEps) report("overlapping phases");
    prev_end = ph.end;
    int total = 0;
    for (const auto& [id, k] : ph.allotment) total += k;
    if (total > m) {
      std::ostringstream msg;
      msg << "phase demand " << total << " exceeds " << m;
      report(msg.str());
    }
  }

  for (const Job& j : jobs) {
    const auto it = s.completion.find(j.id);
    if (it == s.completion.end()) {
      report("job missing completion");
      continue;
    }
    double progress = 0.0;
    for (const MalleablePhase& ph : s.phases) {
      const auto a = ph.allotment.find(j.id);
      if (a == ph.allotment.end()) continue;
      if (ph.start < j.release - kTimeEps)
        report("job allocated before its release");
      if (a->second < j.min_procs || a->second > j.max_procs)
        report("allotment outside bounds");
      progress += (j.model.time(1) / j.model.time(a->second)) *
                  (ph.end - ph.start);
      if (ph.start > it->second + kTimeEps)
        report("job allocated after its completion");
    }
    if (progress < j.model.time(1) * (1.0 - 1e-6))
      report("job completed without enough progress");
  }
  return problems;
}

}  // namespace lgs
