#include "pt/batch.h"

#include <algorithm>
#include <stdexcept>

#include "pt/mrt.h"

namespace lgs {

BatchResult batch_schedule(const JobSet& jobs, int m,
                           const OfflineAlgo& offline) {
  check_jobset(jobs, m);
  BatchResult res{Schedule(m), 0};
  if (jobs.empty()) return res;

  std::vector<bool> scheduled(jobs.size(), false);
  std::size_t remaining = jobs.size();
  // First batch opens at the earliest release date.
  Time now = kTimeInfinity;
  for (const Job& j : jobs) now = std::min(now, j.release);

  while (remaining > 0) {
    JobSet batch;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (scheduled[i] || jobs[i].release > now + kTimeEps) continue;
      Job copy = jobs[i];
      copy.release = 0.0;  // off-line sub-problem
      batch.push_back(std::move(copy));
      members.push_back(i);
    }
    if (batch.empty()) {
      // Idle until the next arrival.
      Time next = kTimeInfinity;
      for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!scheduled[i]) next = std::min(next, jobs[i].release);
      now = next;
      continue;
    }
    Schedule sub = offline(batch, m);
    sub.shift(now);
    res.schedule.append(sub);
    for (std::size_t i : members) scheduled[i] = true;
    remaining -= members.size();
    now = std::max(now, sub.makespan());
    ++res.batches;
  }
  return res;
}

BatchResult online_moldable_schedule(const JobSet& jobs, int m, double eps) {
  MrtOptions opts;
  opts.eps = eps;
  return batch_schedule(jobs, m, [opts](const JobSet& batch, int machines) {
    return mrt_schedule(batch, machines, opts).schedule;
  });
}

}  // namespace lgs
