#include "pt/nonclairvoyant.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>
#include <vector>

namespace lgs {

NonClairvoyantResult nonclairvoyant_schedule(
    const JobSet& jobs, int m, const NonClairvoyantOptions& opts) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument(
          "nonclairvoyant_schedule needs fixed allotments");
  check_jobset(jobs, m);
  if (opts.initial_budget <= 0 || opts.growth <= 1.0)
    throw std::invalid_argument("bad budget parameters");

  NonClairvoyantResult res{Schedule(m), {}, 0.0, 0, 0.0};

  struct Attempt {
    std::size_t idx;
    Time budget;
  };
  struct Running {
    std::size_t idx;
    Time budget;
    Time finish;   // end of the slice
    bool completes;
    int procs;
  };

  // Arrival order; budget resets per job on kill (restart-from-scratch).
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs[a].release != jobs[b].release)
                       return jobs[a].release < jobs[b].release;
                     return jobs[a].id < jobs[b].id;
                   });

  std::deque<Attempt> queue;
  std::size_t next_arrival = 0;
  std::vector<Running> running;
  int free = m;
  Time now = 0.0;
  std::size_t remaining = jobs.size();

  while (remaining > 0) {
    // Admit releases.
    while (next_arrival < order.size() &&
           jobs[order[next_arrival]].release <= now + kTimeEps) {
      queue.push_back({order[next_arrival], opts.initial_budget});
      ++next_arrival;
    }

    // Greedy dispatch: start every queued attempt that fits.
    for (std::size_t qi = 0; qi < queue.size();) {
      const Attempt at = queue[qi];
      const Job& j = jobs[at.idx];
      if (j.min_procs <= free) {
        const Time truth = j.time(j.min_procs);
        const bool completes = at.budget >= truth - kTimeEps;
        const Time slice = completes ? truth : at.budget;
        res.attempts.add(j.id, now, j.min_procs, slice);
        running.push_back({at.idx, at.budget, now + slice, completes,
                           j.min_procs});
        free -= j.min_procs;
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
      } else {
        ++qi;
      }
    }

    // Advance to the next slice end or release.
    Time next = kTimeInfinity;
    for (const Running& r : running) next = std::min(next, r.finish);
    if (next_arrival < order.size())
      next = std::min(next, jobs[order[next_arrival]].release);
    if (next == kTimeInfinity) {
      if (remaining > 0)
        throw std::logic_error("non-clairvoyant scheduler stalled");
      break;
    }
    now = next;
    std::vector<Running> still;
    for (const Running& r : running) {
      if (r.finish > now + kTimeEps) {
        still.push_back(r);
        continue;
      }
      free += r.procs;
      if (r.completes) {
        res.completion[jobs[r.idx].id] = r.finish;
        --remaining;
      } else {
        ++res.kills;
        res.wasted_work += static_cast<double>(r.procs) * r.budget;
        queue.push_back({r.idx, r.budget * opts.growth});
      }
    }
    running = std::move(still);
  }
  res.makespan = res.attempts.makespan();
  return res;
}

}  // namespace lgs
