// Greedy list scheduling of rigid jobs (with release dates).
//
// The baseline rigid scheduler of §5.1 and the building block behind the
// a-priori-allotment strategy: jobs are kept in a priority order and
// started as soon as enough processors are free.  Event-driven, O(n log n)
// per event sweep.
#pragma once

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

/// Queue orders for list scheduling.
enum class ListOrder {
  kSubmission,    ///< FCFS by (release, id)
  kLongestFirst,  ///< LPT: decreasing duration
  kShortestFirst, ///< SPT: increasing duration
  kWidestFirst,   ///< decreasing processor demand (helps packing)
  kWeightDensity, ///< decreasing weight / work (ΣwC-oriented greedy)
  kEarliestDue,   ///< EDF: increasing due date (§3 tardiness criteria)
};

struct ListOptions {
  ListOrder order = ListOrder::kSubmission;
  /// Strict queue order (FCFS, no jumping): a job may only start when every
  /// earlier queued job has started.  Off = greedy list scheduling where
  /// any fitting released job may start (i.e. unlimited backfilling).
  bool strict_order = false;
};

/// Schedule rigid jobs (all kinds accepted, but moldable jobs must have
/// min_procs == max_procs — use fix_allotments first).  Returns an abstract
/// schedule (no concrete processor ids).
Schedule list_schedule_rigid(const JobSet& jobs, int m,
                             const ListOptions& opts = {});

}  // namespace lgs
