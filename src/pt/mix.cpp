#include "pt/mix.h"

#include <stdexcept>

#include "criteria/lower_bounds.h"
#include "pt/allotment.h"
#include "pt/backfill.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"
#include "pt/shelves.h"

namespace lgs {

const char* to_string(MixStrategy s) {
  switch (s) {
    case MixStrategy::kSeparatePhases:
      return "separate-phases";
    case MixStrategy::kAprioriAllotment:
      return "a-priori-allotment";
    case MixStrategy::kRigidIntoBatches:
      return "rigid-into-batches";
  }
  return "?";
}

Schedule schedule_mixed(const JobSet& jobs, int m, MixStrategy strategy) {
  check_jobset(jobs, m);
  switch (strategy) {
    case MixStrategy::kSeparatePhases: {
      for (const Job& j : jobs)
        if (j.release > 0)
          throw std::invalid_argument("kSeparatePhases is off-line only");
      JobSet moldable, rigid;
      for (const Job& j : jobs)
        (j.kind == JobKind::kRigid ? rigid : moldable).push_back(j);
      Schedule s(m);
      Time offset = 0.0;
      if (!moldable.empty()) {
        Schedule ms = mrt_schedule(moldable, m).schedule;
        offset = ms.makespan();
        s.append(ms);
      }
      if (!rigid.empty()) {
        Schedule rs =
            shelf_schedule_rigid(rigid, m, ShelfPolicy::kFirstFitDecreasing);
        rs.shift(offset);
        s.append(rs);
      }
      return s;
    }
    case MixStrategy::kAprioriAllotment: {
      // Allot every moldable job for the area lower bound — the natural
      // a-priori target — then run a rigid scheduler on the union.
      const Time target = cmax_lower_bound(jobs, m);
      const JobSet rigidized = fix_canonical(jobs, target, m);
      return conservative_backfill(rigidized, m);
    }
    case MixStrategy::kRigidIntoBatches:
      return bicriteria_schedule(jobs, m).schedule;
  }
  throw std::logic_error("unknown mix strategy");
}

}  // namespace lgs
