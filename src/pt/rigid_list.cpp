#include "pt/rigid_list.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

namespace lgs {

namespace {

std::vector<std::size_t> make_order(const JobSet& jobs,
                                    const ListOptions& opts) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  const auto dur = [&](std::size_t i) {
    return jobs[i].time(jobs[i].min_procs);
  };
  switch (opts.order) {
    case ListOrder::kSubmission:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (jobs[a].release != jobs[b].release)
                           return jobs[a].release < jobs[b].release;
                         return jobs[a].id < jobs[b].id;
                       });
      break;
    case ListOrder::kLongestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return dur(a) > dur(b);
                       });
      break;
    case ListOrder::kShortestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return dur(a) < dur(b);
                       });
      break;
    case ListOrder::kWidestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return jobs[a].min_procs > jobs[b].min_procs;
                       });
      break;
    case ListOrder::kWeightDensity:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return jobs[a].weight * jobs[b].min_work() >
                                jobs[b].weight * jobs[a].min_work();
                       });
      break;
    case ListOrder::kEarliestDue:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return jobs[a].due < jobs[b].due;
                       });
      break;
  }
  return order;
}

}  // namespace

Schedule list_schedule_rigid(const JobSet& jobs, int m,
                             const ListOptions& opts) {
  for (const Job& j : jobs)
    if (j.min_procs != j.max_procs)
      throw std::invalid_argument(
          "list_schedule_rigid needs fixed allotments (use fix_allotments)");
  check_jobset(jobs, m);

  Schedule s(m);
  std::vector<std::size_t> queue = make_order(jobs, opts);
  std::vector<bool> started(jobs.size(), false);

  // Min-heap of (finish time, procs) of running jobs.
  using Fin = std::pair<Time, int>;
  std::priority_queue<Fin, std::vector<Fin>, std::greater<>> running;
  int free = m;
  Time now = 0.0;

  std::size_t remaining = jobs.size();
  while (remaining > 0) {
    // Start everything that can start at `now`.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const std::size_t i = queue[qi];
        if (started[i]) continue;
        const Job& j = jobs[i];
        const bool ready = j.release <= now + kTimeEps;
        if (ready && j.min_procs <= free) {
          const Time dur = j.time(j.min_procs);
          s.add(j.id, std::max(now, j.release), j.min_procs, dur);
          running.push({std::max(now, j.release) + dur, j.min_procs});
          free -= j.min_procs;
          started[i] = true;
          --remaining;
          progress = true;
        } else if (opts.strict_order && !started[i]) {
          // Head of queue can't run: nobody may jump it.
          break;
        }
      }
    }
    if (remaining == 0) break;

    // Advance time to the next event: a completion or a release.
    Time next = kTimeInfinity;
    if (!running.empty()) next = running.top().first;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t i = queue[qi];
      if (!started[i] && jobs[i].release > now + kTimeEps)
        next = std::min(next, jobs[i].release);
    }
    if (next == kTimeInfinity)
      throw std::logic_error("list scheduling stalled (job too large?)");
    now = next;
    while (!running.empty() && running.top().first <= now + kTimeEps) {
      free += running.top().second;
      running.pop();
    }
  }
  return s;
}

}  // namespace lgs
