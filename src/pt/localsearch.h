// Local-search allotment optimizer for off-line moldable makespan.
//
// Not part of the paper's toolbox — a reference point for it.  The §4
// guarantees are stated against an unknowable OPT; this annealed local
// search over allotment vectors (evaluated with FFDH packing) produces a
// strong feasible schedule whose makespan upper-bounds OPT far more
// tightly than the analytic lower bound, letting the guarantee benches
// sandwich OPT from both sides (LB ≤ OPT ≤ local-search ≤ 1.5λ·…).
#pragma once

#include <cstdint>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

struct LocalSearchOptions {
  int iterations = 2000;
  std::uint64_t seed = 1;
  /// Initial acceptance temperature as a fraction of the starting
  /// makespan (simulated-annealing style; 0 = pure hill climbing).
  double temperature = 0.02;
};

struct LocalSearchResult {
  Schedule schedule;
  /// Makespan of the canonical-allotment starting point, for reporting
  /// the improvement.
  Time initial_makespan = 0.0;
  int accepted_moves = 0;
};

/// Optimize allotments of moldable jobs (all releases must be 0) for
/// makespan.  Deterministic in the seed.
LocalSearchResult local_search_moldable(const JobSet& jobs, int m,
                                        const LocalSearchOptions& opts = {});

}  // namespace lgs
