// MRT two-shelf dual-approximation for off-line moldable makespan (§4.1).
//
// The algorithm guesses the optimal makespan λ (dual approximation,
// Hochbaum–Shmoys), refines the guess by binary search, and for each guess
// builds a schedule of length at most 3λ/2:
//
//   * every job gets its canonical allotment for either shelf S1 (length
//     λ, starts at 0) or shelf S2 (length λ/2, starts at λ);
//   * the S1/S2 partition is chosen by a knapsack DP minimizing total work
//     subject to Σ_{S1} procs ≤ m — mirroring the optimal schedule's
//     structure: at most m processors run jobs longer than λ/2 (§4.1);
//   * a guess is *rejected* (λ too small) when some job cannot meet λ on m
//     processors, or when the minimal work exceeds λm — both certified
//     lower-bound arguments — or when the shelf-2 repair below fails.
//
// Repair (documented deviation from [8], see DESIGN.md): when shelf S2
// overflows m processors, jobs are moved back to S1 while capacity allows,
// cheapest work-increase first; S2 jobs are then further packed with FFDH
// inside the λ/2 strip, so several short jobs can share processors.  If
// the packing still exceeds λ/2 in height the guess is rejected.  The
// returned schedule always satisfies makespan ≤ (3/2)·λ_final with
// λ_final ≤ (1+ε)·λ_feasible.
#pragma once

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

struct MrtOptions {
  /// Relative precision of the λ binary search — the ε of 3/2 + ε.
  double eps = 0.02;
};

struct MrtResult {
  Schedule schedule;
  /// Final accepted guess; the schedule has makespan ≤ 1.5 · lambda.
  Time lambda = 0.0;
  /// Lower bound used to seed the search (area / critical job).
  Time lower_bound = 0.0;
};

/// Schedule moldable jobs (all release dates must be 0 — wrap with
/// batch_schedule for on-line instances) for the makespan criterion.
MrtResult mrt_schedule(const JobSet& jobs, int m, const MrtOptions& opts = {});

}  // namespace lgs
