// On-line batch scheduling (§4.2).
//
// Shmoys, Wein and Williamson's generic transformation: run an off-line
// algorithm with performance ratio ρ on successive *batches* — all jobs
// that arrived while the previous batch was executing — and obtain a
// 2ρ-competitive algorithm for on-line release dates.  With the MRT
// (3/2 + ε) off-line algorithm this yields the paper's 3 + ε result for
// on-line moldable jobs.
#pragma once

#include <functional>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

/// Off-line makespan scheduler: jobs all released at 0, m machines.
using OfflineAlgo = std::function<Schedule(const JobSet&, int)>;

struct BatchResult {
  Schedule schedule;
  int batches = 0;
};

/// Batch-scheduling wrapper: collect released jobs, run `offline` on them,
/// execute the batch, repeat with everything that arrived meanwhile.
BatchResult batch_schedule(const JobSet& jobs, int m,
                           const OfflineAlgo& offline);

/// The paper's on-line moldable scheduler: batch wrapper around the MRT
/// algorithm (performance ratio 3 + ε for Cmax with release dates).
BatchResult online_moldable_schedule(const JobSet& jobs, int m,
                                     double eps = 0.02);

}  // namespace lgs
