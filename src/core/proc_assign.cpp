#include "core/proc_assign.h"

#include <algorithm>
#include <vector>

#include "core/proc_interval.h"

namespace lgs {

namespace {

struct Ev {
  Time t;
  bool is_start;
  std::size_t idx;  // index into assignments
};

// Ends strictly before starts at equal times so shelves can be stacked
// back-to-back; ties broken by job id for determinism.
std::vector<Ev> sorted_events(const std::vector<Assignment>& items) {
  std::vector<Ev> events;
  events.reserve(items.size() * 2);
  for (std::size_t i = 0; i < items.size(); ++i) {
    events.push_back({items[i].start, true, i});
    events.push_back({items[i].end(), false, i});
  }
  std::sort(events.begin(), events.end(), [&](const Ev& a, const Ev& b) {
    if (!almost_equal(a.t, b.t)) return a.t < b.t;
    if (a.is_start != b.is_start) return !a.is_start;
    return items[a.idx].job < items[b.idx].job;
  });
  return events;
}

// Expand each job's acquired runs into its ascending id list.  Done only
// after the sweep succeeded, so a failed sweep leaves `s` untouched.
void write_assignments(std::vector<Assignment>& items,
                       const std::vector<std::vector<ProcRun>>& chosen) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].procs.clear();
    items[i].procs.reserve(static_cast<std::size_t>(items[i].nprocs));
    expand_runs(chosen[i], items[i].procs);
  }
}

}  // namespace

bool assign_processors(Schedule& s) {
  auto& items = s.assignments();
  const std::vector<Ev> events = sorted_events(items);

  ProcIntervalSet free(s.machines());
  std::vector<std::vector<ProcRun>> chosen(items.size());
  for (const Ev& ev : events) {
    const Assignment& a = items[ev.idx];
    if (ev.is_start) {
      if (!free.acquire_lowest(a.nprocs, chosen[ev.idx])) return false;
    } else {
      free.release_all(chosen[ev.idx]);
    }
  }
  write_assignments(items, chosen);
  return true;
}

bool assign_processors_contiguous(Schedule& s) {
  auto& items = s.assignments();
  const std::vector<Ev> events = sorted_events(items);

  ProcIntervalSet free(s.machines());
  std::vector<std::vector<ProcRun>> chosen(items.size());
  for (const Ev& ev : events) {
    const Assignment& a = items[ev.idx];
    if (!ev.is_start) {
      free.release_all(chosen[ev.idx]);
      continue;
    }
    const ProcId base = free.acquire_contiguous(a.nprocs);
    if (base < 0) return false;  // fragmented (or overcommitted)
    chosen[ev.idx].push_back(ProcRun{base, base + a.nprocs});
  }
  write_assignments(items, chosen);
  return true;
}

}  // namespace lgs
