#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lgs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("row width differs from header");
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::vector<double>& row,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string ascii_plot(const std::vector<Series>& series, int width,
                       int height, const std::string& title) {
  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  bool first = true;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (first) {
        xmin = xmax = s.x[i];
        ymin = ymax = s.y[i];
        first = false;
      }
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1;
  if (ymax - ymin < 1e-12) ymax = ymin + 1;

  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));
  static const char kGlyphs[] = "*+ox#@%&";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = static_cast<int>(
          std::round((s.x[i] - xmin) / (xmax - xmin) * (width - 1)));
      const int row = static_cast<int>(
          std::round((s.y[i] - ymin) / (ymax - ymin) * (height - 1)));
      grid[static_cast<std::size_t>(height - 1 - row)]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  out << fmt(ymax) << "\n";
  for (const auto& line : grid) out << "|" << line << "\n";
  out << fmt(ymin) << " +" << std::string(static_cast<std::size_t>(width), '-')
      << "\n";
  out << "   x: " << fmt(xmin) << " .. " << fmt(xmax) << "\n";
  for (std::size_t si = 0; si < series.size(); ++si)
    out << "   '" << kGlyphs[si % (sizeof(kGlyphs) - 1)]
        << "' = " << series[si].name << "\n";
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << content;
  out.flush();
  if (!out) throw std::runtime_error("short write to " + path);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  before_item();
  out_ += "{";
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (has_items_.empty()) throw std::logic_error("end_object with no object");
  const bool had = has_items_.back();
  has_items_.pop_back();
  if (had && !compact_) {
    out_ += "\n";
    indent();
  }
  out_ += "}";
  if (has_items_.empty() && !compact_) out_ += "\n";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_item();
  out_ += "[";
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (has_items_.empty()) throw std::logic_error("end_array with no array");
  const bool had = has_items_.back();
  has_items_.pop_back();
  if (had && !compact_) {
    out_ += "\n";
    indent();
  }
  out_ += "]";
  if (has_items_.empty() && !compact_) out_ += "\n";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  before_item();
  out_ += "\"" + json_escape(k) + (compact_ ? "\":" : "\": ");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_item();
  out_ += "\"" + json_escape(v) + "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_item();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  std::ostringstream s;
  s.precision(std::numeric_limits<double>::max_digits10);
  s << v;
  out_ += s.str();
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  before_item();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_item();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_item();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const { return out_; }

void JsonWriter::before_item() {
  if (pending_key_) {
    // The key() call already positioned us; this item is its value.
    pending_key_ = false;
    return;
  }
  if (has_items_.empty()) return;
  if (has_items_.back()) out_ += ",";
  has_items_.back() = true;
  if (compact_) return;
  out_ += "\n";
  indent();
}

void JsonWriter::indent() {
  out_.append(2 * has_items_.size(), ' ');
}

std::string fmt(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  std::string s = out.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace lgs
