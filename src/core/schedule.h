// Schedule representation: the output of every PT scheduling algorithm.
//
// A schedule is a list of assignments (job, start, allotment, duration),
// optionally refined with concrete processor ids by assign_processors()
// (src/core/proc_assign.h).  Algorithms produce *abstract* schedules —
// only processor counts — which is the level at which the paper's packing
// arguments live; concrete ids are a post-processing step.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/types.h"

namespace lgs {

/// One scheduled job occurrence.
struct Assignment {
  JobId job = kInvalidJob;
  Time start = 0.0;
  int nprocs = 1;
  Time duration = 0.0;
  /// Concrete processor ids; empty until assign_processors() runs.
  std::vector<ProcId> procs;

  Time end() const { return start + duration; }
};

/// A complete schedule on `machines()` identical processors.
class Schedule {
 public:
  explicit Schedule(int machines);

  int machines() const { return machines_; }

  /// Append an assignment.  No validation here — see validate().
  void add(Assignment a);
  void add(JobId job, Time start, int nprocs, Time duration);

  const std::vector<Assignment>& assignments() const { return items_; }
  std::vector<Assignment>& assignments() { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Latest completion time (0 for an empty schedule).
  Time makespan() const;

  /// First assignment of the given job, if any.
  const Assignment* find(JobId job) const;

  /// Completion time of the given job; throws if the job is absent.
  Time completion(JobId job) const;

  /// Maximum simultaneous processor demand, by sweep over start/end events.
  int peak_demand() const;

  /// Shift every assignment by `delta` (used when concatenating batches).
  void shift(Time delta);

  /// Append all assignments of `other` (same machine count required).
  void append(const Schedule& other);

  void clear() { items_.clear(); }

 private:
  int machines_;
  std::vector<Assignment> items_;
};

/// Render an ASCII Gantt chart (rows = processors after proc assignment,
/// or demand profile when ids are absent).  Width is the number of
/// character columns used for the time axis.
std::string gantt_ascii(const Schedule& s, int width = 78);

/// Render an SVG Gantt chart: one rectangle per (assignment × processor)
/// when concrete ids are present, or stacked demand rectangles otherwise.
/// Self-contained SVG document, suitable for write_file().
std::string gantt_svg(const Schedule& s, int width_px = 800,
                      int row_px = 14);

}  // namespace lgs
