// Schedule representation: the output of every PT scheduling algorithm.
//
// A schedule is a list of assignments (job, start, allotment, duration),
// optionally refined with concrete processor ids by assign_processors()
// (src/core/proc_assign.h).  Algorithms produce *abstract* schedules —
// only processor counts — which is the level at which the paper's packing
// arguments live; concrete ids are a post-processing step.
//
// Lookup and aggregate queries are cached so the hot scheduler loops stay
// cheap: find()/completion() go through a JobId→index map (O(1) amortized
// instead of a linear scan), makespan() is maintained incrementally on
// add/shift/append, and peak_demand() is memoized.  Mutating assignments
// through the non-const assignments() accessor invalidates the caches;
// they rebuild lazily on the next query.  Because const queries may fill
// the caches, they are NOT safe to call concurrently on a shared
// Schedule — parallel code (src/exp) must give each thread its own
// instance, as the sweep engine's per-cell schedules do.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/job.h"
#include "core/types.h"

namespace lgs {

/// One scheduled job occurrence.
struct Assignment {
  JobId job = kInvalidJob;
  Time start = 0.0;
  int nprocs = 1;
  Time duration = 0.0;
  /// Concrete processor ids; empty until assign_processors() runs.
  std::vector<ProcId> procs;

  Time end() const { return start + duration; }
};

/// A complete schedule on `machines()` identical processors.
class Schedule {
 public:
  explicit Schedule(int machines);

  int machines() const { return machines_; }

  /// Append an assignment.  No validation here — see validate().
  void add(Assignment a);
  void add(JobId job, Time start, int nprocs, Time duration);

  const std::vector<Assignment>& assignments() const { return items_; }
  /// Mutable access; invalidates the lookup/aggregate caches (they are
  /// rebuilt lazily).  Callers must not interleave mutation through a
  /// retained reference with queries on this schedule.
  std::vector<Assignment>& assignments();
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Pre-size for `n` assignments.
  void reserve(std::size_t n);

  /// Latest completion time (0 for an empty schedule).  O(1) when the
  /// cache is warm.
  Time makespan() const;

  /// First assignment of the given job, if any.  O(1) amortized.
  const Assignment* find(JobId job) const;

  /// Completion time of the given job; throws if the job is absent.
  Time completion(JobId job) const;

  /// Maximum simultaneous processor demand (event sweep; memoized).
  int peak_demand() const;

  /// Shift every assignment by `delta` (used when concatenating batches).
  void shift(Time delta);

  /// Append all assignments of `other` (same machine count required).
  void append(const Schedule& other);

  void clear();

 private:
  void rebuild_index() const;

  int machines_;
  std::vector<Assignment> items_;

  // Lazily maintained caches; `mutable` so const queries can (re)fill
  // them.  *_valid_ false means "recompute on next use".
  mutable std::unordered_map<JobId, std::size_t> index_;  // first occurrence
  mutable Time makespan_ = -kTimeInfinity;  // raw latest end; clamped on read
  mutable int peak_ = 0;
  mutable bool index_valid_ = true;
  mutable bool makespan_valid_ = true;
  mutable bool peak_valid_ = true;
};

/// Render an ASCII Gantt chart (rows = processors after proc assignment,
/// or demand profile when ids are absent).  Width is the number of
/// character columns used for the time axis.
std::string gantt_ascii(const Schedule& s, int width = 78);

/// Render an SVG Gantt chart: one rectangle per (assignment × processor)
/// when concrete ids are present, or stacked demand rectangles otherwise.
/// Self-contained SVG document, suitable for write_file().
std::string gantt_svg(const Schedule& s, int width_px = 800,
                      int row_px = 14);

}  // namespace lgs
