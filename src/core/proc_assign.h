// Mapping abstract allotments to concrete processor ids.
//
// The paper's packing algorithms reason about processor *counts*; actual
// dispatch needs ids.  A schedule whose simultaneous demand never exceeds m
// can always be realized on m processors when jobs may run on arbitrary
// (non-contiguous) processor sets — this module performs that realization
// with a deterministic sweep.
#pragma once

#include "core/schedule.h"

namespace lgs {

/// Assign concrete processor ids to every assignment of `s`.
///
/// Deterministic: events are processed in (time, job id) order and the
/// lowest-numbered free processors are taken first.  Returns false (leaving
/// `s` untouched) if at some instant demand exceeds s.machines() — i.e. the
/// abstract schedule was invalid.
bool assign_processors(Schedule& s);

/// Like assign_processors, but every job must receive a *contiguous*
/// range of processor ids (first-fit over free intervals) — the
/// constraint torus/mesh interconnects impose.  Unlike the unconstrained
/// variant this can fail on a capacity-valid schedule when the free set
/// is fragmented; callers fall back to assign_processors or resequence.
/// Returns false (schedule untouched) on fragmentation or overcommit.
bool assign_processors_contiguous(Schedule& s);

}  // namespace lgs
