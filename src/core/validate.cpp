#include "core/validate.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lgs {

namespace {

void check_capacity(const Schedule& s, const ValidateOptions& opts,
                    std::vector<Violation>& out) {
  // Flat sorted event sweep (same shape as the Profile skyline) instead of
  // a std::map of deltas: one sort, then a grouped walk over unique times.
  std::vector<std::pair<Time, int>> events;
  events.reserve(s.size() * 2 + opts.reservations.size() * 2);
  for (const Assignment& a : s.assignments()) {
    events.emplace_back(a.start, a.nprocs);
    events.emplace_back(a.end(), -a.nprocs);
  }
  for (const Reservation& r : opts.reservations) {
    events.emplace_back(r.start, r.procs);
    events.emplace_back(r.end, -r.procs);
  }
  std::sort(events.begin(), events.end());
  int cur = 0;
  for (std::size_t i = 0; i < events.size();) {
    const Time t = events[i].first;
    for (; i < events.size() && events[i].first == t; ++i)
      cur += events[i].second;
    if (cur > s.machines()) {
      // Ignore sub-tolerance slivers: a job ending at t+1e-13 while the
      // next starts at t is a floating-point artifact, not an overlap.
      const Time span =
          i == events.size() ? kTimeInfinity : events[i].first - t;
      if (span <= kTimeEps * (1.0 + std::abs(t))) continue;
      std::ostringstream msg;
      msg << "demand " << cur << " exceeds " << s.machines()
          << " machines at t=" << t;
      out.push_back({kInvalidJob, msg.str()});
      return;  // one capacity report is enough
    }
  }
}

void check_concrete_procs(const Schedule& s, std::vector<Violation>& out) {
  // Per-processor interval overlap check, only for assignments that carry
  // concrete ids.
  struct Slot {
    Time start, end;
    JobId job;
  };
  std::unordered_map<ProcId, std::vector<Slot>> per_proc;
  for (const Assignment& a : s.assignments()) {
    if (a.procs.empty()) continue;
    if (static_cast<int>(a.procs.size()) != a.nprocs)
      out.push_back({a.job, "procs list size differs from nprocs"});
    for (ProcId p : a.procs) {
      if (p < 0 || p >= s.machines())
        out.push_back({a.job, "processor id out of range"});
      else
        per_proc[p].push_back({a.start, a.end(), a.job});
    }
  }
  for (auto& [p, slots] : per_proc) {
    std::sort(slots.begin(), slots.end(),
              [](const Slot& x, const Slot& y) { return x.start < y.start; });
    for (std::size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].start < slots[i - 1].end - kTimeEps) {
        std::ostringstream msg;
        msg << "processor " << p << " double-booked by jobs "
            << slots[i - 1].job << " and " << slots[i].job;
        out.push_back({slots[i].job, msg.str()});
      }
    }
  }
}

}  // namespace

std::vector<Violation> validate(const JobSet& jobs, const Schedule& s,
                                const ValidateOptions& opts) {
  std::vector<Violation> out;

  std::unordered_map<JobId, const Job*> by_id;
  for (const Job& j : jobs) by_id[j.id] = &j;

  std::unordered_map<JobId, int> occurrences;
  for (const Assignment& a : s.assignments()) {
    ++occurrences[a.job];
    const auto it = by_id.find(a.job);
    if (it == by_id.end()) {
      out.push_back({a.job, "scheduled job not in job set"});
      continue;
    }
    const Job& j = *it->second;
    if (a.nprocs < j.min_procs || a.nprocs > j.max_procs)
      out.push_back({a.job, "allotment outside [min_procs, max_procs]"});
    else if (!geq_eps(a.duration, j.time(a.nprocs)))
      out.push_back({a.job, "duration shorter than the execution model time"});
    if (a.nprocs > s.machines())
      out.push_back({a.job, "allotment larger than the machine"});
    if (opts.check_release_dates && a.start < j.release - kTimeEps)
      out.push_back({a.job, "started before its release date"});
    if (a.start < -kTimeEps) out.push_back({a.job, "negative start time"});
  }

  for (const auto& [id, count] : occurrences)
    if (count > 1) out.push_back({id, "scheduled more than once"});
  if (opts.require_all_jobs) {
    for (const Job& j : jobs)
      if (occurrences.find(j.id) == occurrences.end())
        out.push_back({j.id, "job missing from schedule"});
  }

  check_capacity(s, opts, out);
  check_concrete_procs(s, out);
  return out;
}

bool is_valid(const JobSet& jobs, const Schedule& s,
              const ValidateOptions& opts) {
  return validate(jobs, s, opts).empty();
}

std::string describe(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations) {
    if (v.job == kInvalidJob)
      out << "[global] ";
    else
      out << "[job " << v.job << "] ";
    out << v.what << "\n";
  }
  return out.str();
}

}  // namespace lgs
