#include "core/job.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace lgs {

namespace {
std::atomic<std::uint64_t> g_job_copies{0};
}  // namespace

Job::Job(const Job& other)
    : id(other.id),
      kind(other.kind),
      release(other.release),
      weight(other.weight),
      due(other.due),
      min_procs(other.min_procs),
      max_procs(other.max_procs),
      model(other.model),
      community(other.community) {
  g_job_copies.fetch_add(1, std::memory_order_relaxed);
}

Job& Job::operator=(const Job& other) {
  id = other.id;
  kind = other.kind;
  release = other.release;
  weight = other.weight;
  due = other.due;
  min_procs = other.min_procs;
  max_procs = other.max_procs;
  model = other.model;
  community = other.community;
  g_job_copies.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

std::uint64_t job_copy_count() {
  return g_job_copies.load(std::memory_order_relaxed);
}

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kRigid:
      return "rigid";
    case JobKind::kMoldable:
      return "moldable";
    case JobKind::kMalleable:
      return "malleable";
  }
  return "?";
}

Time Job::time(int k) const {
  if (k < min_procs || k > max_procs)
    throw std::invalid_argument("allotment outside [min_procs, max_procs]");
  return model.time(k);
}

Time Job::best_time(int m) const {
  const int k = std::min(max_procs, m);
  if (k < min_procs)
    throw std::invalid_argument("job cannot run on this machine count");
  return model.time(k);
}

Job Job::rigid(JobId id, int procs, Time duration, Time release,
               double weight) {
  Job j;
  j.id = id;
  j.kind = JobKind::kRigid;
  j.release = release;
  j.weight = weight;
  j.min_procs = procs;
  j.max_procs = procs;
  // A rigid job's "model" is constant: a one-entry table answers
  // `duration` for every admissible k (table lookup clamps to the last
  // entry), with useful_limit 1 — behaviorally identical to a
  // `procs`-entry constant table without the O(procs) heap payload that
  // used to dominate million-job trace RSS.
  j.model = ExecModel::table(std::vector<Time>(1, duration));
  return j;
}

Job Job::moldable(JobId id, ExecModel model, int min_procs, int max_procs,
                  Time release, double weight) {
  Job j;
  j.id = id;
  j.kind = JobKind::kMoldable;
  j.release = release;
  j.weight = weight;
  j.min_procs = min_procs;
  j.max_procs = max_procs;
  j.model = std::move(model);
  return j;
}

Job Job::sequential(JobId id, Time duration, Time release, double weight) {
  Job j;
  j.id = id;
  j.kind = JobKind::kRigid;
  j.release = release;
  j.weight = weight;
  j.min_procs = 1;
  j.max_procs = 1;
  j.model = ExecModel::sequential(duration);
  return j;
}

double total_min_work(const JobSet& jobs) {
  double total = 0.0;
  for (const Job& j : jobs) total += j.min_work();
  return total;
}

Time max_release(const JobSet& jobs) {
  Time r = 0.0;
  for (const Job& j : jobs) r = std::max(r, j.release);
  return r;
}

void check_jobset(const JobSet& jobs, int machines) {
  if (machines < 1) throw std::invalid_argument("machine count must be >= 1");
  for (const Job& j : jobs) {
    if (j.id == kInvalidJob) throw std::invalid_argument("job without id");
    if (j.release < 0) throw std::invalid_argument("negative release date");
    if (j.weight < 0) throw std::invalid_argument("negative weight");
    if (j.min_procs < 1 || j.min_procs > j.max_procs)
      throw std::invalid_argument("bad allotment range");
    if (j.min_procs > machines)
      throw std::invalid_argument("job needs more processors than available");
    if (j.kind == JobKind::kRigid && j.min_procs != j.max_procs)
      throw std::invalid_argument("rigid job with non-degenerate range");
    if (j.model.time(j.min_procs) <= 0)
      throw std::invalid_argument("non-positive execution time");
  }
}

}  // namespace lgs
