// Schedule validation: the invariant checker behind all property tests.
//
// Every algorithm in src/pt is tested by generating random instances and
// running this validator on its output; the checks mirror the constraints
// listed in §4.1 of the paper plus the submission rules of §1.2.
#pragma once

#include <string>
#include <vector>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

/// A processor reservation (§5.1): `procs` processors are unavailable to
/// the scheduler during [start, end).
struct Reservation {
  Time start = 0.0;
  Time end = 0.0;
  int procs = 0;
};

/// One validation failure, human-readable.
struct Violation {
  JobId job = kInvalidJob;  // kInvalidJob for global violations
  std::string what;
};

struct ValidateOptions {
  /// Require every job of the set to appear exactly once.
  bool require_all_jobs = true;
  /// Check release dates (off-line algorithms on batches already shifted).
  bool check_release_dates = true;
  /// Reservations the schedule must avoid.
  std::vector<Reservation> reservations;
};

/// Check `s` against `jobs`.  Verifies per job: scheduled at most (exactly,
/// if required) once, allotment within [min,max], duration covers the model
/// time, release respected.  Globally: simultaneous demand (including
/// reservations) never exceeds machines; concrete processor ids, when
/// present, are disjoint per instant and consistent with nprocs.
std::vector<Violation> validate(const JobSet& jobs, const Schedule& s,
                                const ValidateOptions& opts = {});

/// Convenience: true iff validate() returns no violations.
bool is_valid(const JobSet& jobs, const Schedule& s,
              const ValidateOptions& opts = {});

/// Format violations for gtest failure messages.
std::string describe(const std::vector<Violation>& violations);

}  // namespace lgs
