#include "core/profile.h"

#include <stdexcept>

namespace lgs {

Profile::Profile(int machines) : machines_(machines) {
  if (machines < 1) throw std::invalid_argument("machine count must be >= 1");
}

int Profile::used_at(Time t) const {
  int used = 0;
  for (const auto& [when, d] : delta_) {
    if (when > t) break;
    used += d;
  }
  return used;
}

bool Profile::fits(Time start, Time duration, int procs) const {
  if (procs > machines_) return false;
  const Time end = start + duration;
  // The usage step function can only increase at breakpoints, so it
  // suffices to test the level at `start` and at every breakpoint strictly
  // inside (start, end).
  if (used_at(start) + procs > machines_) return false;
  int used = 0;
  for (const auto& [when, d] : delta_) {
    used += d;
    if (when <= start + kTimeEps) continue;
    if (when >= end - kTimeEps) break;
    if (used + procs > machines_) return false;
  }
  return true;
}

Time Profile::earliest_fit(Time from, Time duration, int procs) const {
  if (procs > machines_)
    throw std::invalid_argument("request exceeds machine size");
  // Candidate starts: `from` and every breakpoint after it.
  if (fits(from, duration, procs)) return from;
  for (const auto& [when, d] : delta_) {
    (void)d;
    if (when <= from) continue;
    if (fits(when, duration, procs)) return when;
  }
  // After the last event everything is free.
  return delta_.empty() ? from : std::max(from, delta_.rbegin()->first);
}

void Profile::commit(Time start, Time duration, int procs) {
  if (!fits(start, duration, procs))
    throw std::logic_error("commit would exceed profile capacity");
  delta_[start] += procs;
  delta_[start + duration] -= procs;
}

void Profile::release(Time start, Time duration, int procs) {
  delta_[start] -= procs;
  delta_[start + duration] += procs;
  // Drop zero entries to keep the map compact.
  for (auto it = delta_.begin(); it != delta_.end();) {
    if (it->second == 0)
      it = delta_.erase(it);
    else
      ++it;
  }
}

std::vector<Time> Profile::breakpoints() const {
  std::vector<Time> out;
  out.reserve(delta_.size());
  for (const auto& [when, d] : delta_) {
    (void)d;
    out.push_back(when);
  }
  return out;
}

}  // namespace lgs
