#include "core/profile.h"

#include <algorithm>
#include <stdexcept>

namespace lgs {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}  // namespace

Profile::Profile(int machines) : machines_(machines) {
  if (machines < 1) throw std::invalid_argument("machine count must be >= 1");
}

std::size_t Profile::segment_of(Time t) const {
  // First step with step.t > t, then back one: the segment containing t.
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const Step& s) { return value < s.t; });
  if (it == steps_.begin()) return kNone;
  return static_cast<std::size_t>(it - steps_.begin()) - 1;
}

int Profile::used_at(Time t) const {
  const std::size_t i = segment_of(t);
  return i == kNone ? 0 : steps_[i].used;
}

bool Profile::fits(Time start, Time duration, int procs) const {
  if (procs > machines_) return false;
  const Time end = start + duration;
  const std::size_t at = segment_of(start);
  if ((at == kNone ? 0 : steps_[at].used) + procs > machines_) return false;
  // Every breakpoint strictly inside (start, end - eps) must also leave
  // room; a level change at (or within eps of) `end` cannot conflict.
  for (std::size_t j = (at == kNone ? 0 : at + 1);
       j < steps_.size() && steps_[j].t < end - kTimeEps; ++j) {
    if (steps_[j].used + procs > machines_) return false;
  }
  return true;
}

Time Profile::earliest_fit(Time from, Time duration, int procs) const {
  if (procs > machines_)
    throw std::invalid_argument("request exceeds machine size");
  // Single skyline sweep: walk segments left to right keeping the earliest
  // still-viable candidate start.  A segment without room pushes the
  // candidate to the segment's end; the candidate wins as soon as the
  // remaining segments start at or beyond candidate + duration (minus the
  // end-boundary tolerance).
  Time cand = from;
  std::size_t j = segment_of(from);
  if (j == kNone) {
    if (procs <= machines_ && (steps_.empty() || steps_[0].t >= from + duration - kTimeEps))
      return cand;
    j = 0;
  }
  for (; j < steps_.size(); ++j) {
    if (steps_[j].used + procs > machines_) {
      // Segment j is full: restart just past it.
      if (j + 1 == steps_.size()) {
        // Final segment overloaded — cannot happen (levels return to 0),
        // but keep the sweep total anyway.
        return std::max(cand, steps_[j].t);
      }
      cand = std::max(cand, steps_[j + 1].t);
    } else if (j + 1 == steps_.size() ||
               steps_[j + 1].t >= cand + duration - kTimeEps) {
      return cand;
    }
  }
  return cand;
}

std::size_t Profile::ensure_breakpoint(Time t) {
  const auto it = std::lower_bound(
      steps_.begin(), steps_.end(), t,
      [](const Step& s, Time value) { return s.t < value; });
  const std::size_t i = static_cast<std::size_t>(it - steps_.begin());
  if (it != steps_.end() && it->t == t) return i;
  const int level = i == 0 ? 0 : steps_[i - 1].used;
  steps_.insert(it, Step{t, level});
  return i;
}

void Profile::compact_at(std::size_t i) {
  if (i >= steps_.size()) return;
  const int prev = i == 0 ? 0 : steps_[i - 1].used;
  if (steps_[i].used == prev)
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(i));
}

void Profile::commit(Time start, Time duration, int procs) {
  if (!fits(start, duration, procs))
    throw std::logic_error("commit would exceed profile capacity");
  const std::size_t a = ensure_breakpoint(start);
  const std::size_t b = ensure_breakpoint(start + duration);
  for (std::size_t i = a; i < b; ++i) steps_[i].used += procs;
  // Only the two spliced boundaries can have become redundant.
  compact_at(b);
  compact_at(a);
}

void Profile::release(Time start, Time duration, int procs) {
  const std::size_t a = ensure_breakpoint(start);
  const std::size_t b = ensure_breakpoint(start + duration);
  for (std::size_t i = a; i < b; ++i) steps_[i].used -= procs;
  // Erase only the two keys this release touched (the interior keeps its
  // relative levels, so no other step can have become redundant).
  compact_at(b);
  compact_at(a);
}

std::vector<Time> Profile::breakpoints() const {
  std::vector<Time> out;
  out.reserve(steps_.size());
  for (const Step& s : steps_) out.push_back(s.t);
  return out;
}

}  // namespace lgs
