// Versioned binary snapshot framing for checkpoint/restore.
//
// The streaming service mode (sim/stream_sim.h) runs open-ended: a grid
// replay that never drains must be restartable, so the engines serialize
// their live state — simulator clock, pending events, per-cluster queues
// and running sets, job-store slabs — into one self-contained snapshot
// blob.  This header provides the framing those engines share:
//
//   * CheckpointWriter: append-only little-endian-agnostic primitive
//     encoder (fixed-width integers, raw IEEE doubles, length-prefixed
//     byte runs) that seals the blob with a magic, a format version and
//     a trailing FNV-1a checksum;
//   * CheckpointReader: the mirror decoder — verifies magic, version and
//     checksum up front and bounds-checks every read, so a truncated,
//     corrupted or version-skewed snapshot is rejected with a
//     CheckpointError before any engine state is touched.
//
// Format rule (docs/ARCHITECTURE.md "Streaming service mode"): any
// change to what an engine writes bumps kCheckpointVersion; readers
// reject every version other than their own.  Snapshots are restart
// artifacts, not archives — cross-version migration is out of scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace lgs {

/// Malformed snapshot: bad magic, version skew, checksum mismatch,
/// truncation, or engine-level incompatibility (config digest mismatch,
/// unsupported pending event).
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

/// Leading magic of every snapshot blob (8 bytes, no terminator).
inline constexpr char kCheckpointMagic[8] = {'L', 'G', 'S', 'S',
                                             'N', 'A', 'P', '\n'};
/// Bumped on ANY layout change of the serialized engine state.
inline constexpr std::uint32_t kCheckpointVersion = 1;

class CheckpointWriter {
 public:
  /// Starts the blob with the magic and format version.
  CheckpointWriter();

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed raw byte run (for POD row slabs).
  void bytes(const void* data, std::size_t n);
  void str(const std::string& s) { bytes(s.data(), s.size()); }

  /// Seal the blob: append the FNV-1a checksum of everything written and
  /// return the buffer.  The writer must not be reused afterwards.
  std::vector<unsigned char> finish();

  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<unsigned char> buf_;
};

class CheckpointReader {
 public:
  /// Verifies magic, version and trailing checksum before any field
  /// read; throws CheckpointError on truncation, corruption or skew.
  CheckpointReader(const unsigned char* data, std::size_t n);
  explicit CheckpointReader(const std::vector<unsigned char>& blob)
      : CheckpointReader(blob.data(), blob.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  /// Read a length-prefixed byte run of exactly `n` payload bytes into
  /// `out` (the expected size is the caller's schema knowledge — a
  /// mismatched prefix is a format error).
  void bytes(void* out, std::size_t n);
  /// Read a length-prefixed byte run of any size.
  std::vector<unsigned char> blob();
  std::string str();

  /// Every payload byte consumed?  Engines assert this after the last
  /// field so trailing garbage cannot hide.
  bool exhausted() const { return pos_ == end_; }
  std::size_t remaining() const { return end_ - pos_; }

 private:
  void need(std::size_t n) const {
    if (end_ - pos_ < n) throw CheckpointError("truncated snapshot");
  }
  const unsigned char* data_;
  std::size_t pos_ = 0;  ///< next unread payload byte
  std::size_t end_ = 0;  ///< payload end (checksum excluded)
};

/// FNV-1a over raw bytes — the snapshot checksum (and the config-digest
/// fold the engines use to reject restoring into a different setup).
std::uint64_t checkpoint_fnv1a(std::uint64_t h, const void* data,
                               std::size_t n);
inline constexpr std::uint64_t kCheckpointFnvBasis = 0xcbf29ce484222325ull;

}  // namespace lgs
