#include "core/exec_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lgs {

ExecModel ExecModel::sequential(Time t) {
  if (t <= 0) throw std::invalid_argument("sequential time must be positive");
  return ExecModel(Rep(Seq{t}));
}

ExecModel ExecModel::amdahl(Time t1, double serial_fraction) {
  if (t1 <= 0) throw std::invalid_argument("t1 must be positive");
  if (serial_fraction < 0.0 || serial_fraction > 1.0)
    throw std::invalid_argument("serial fraction must be in [0,1]");
  return ExecModel(Rep(Amdahl{t1, serial_fraction}));
}

ExecModel ExecModel::power_law(Time t1, double alpha) {
  if (t1 <= 0) throw std::invalid_argument("t1 must be positive");
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("alpha must be in (0,1]");
  return ExecModel(Rep(Power{t1, alpha}));
}

ExecModel ExecModel::comm_penalty(Time t1, double overhead_per_proc) {
  if (t1 <= 0) throw std::invalid_argument("t1 must be positive");
  if (overhead_per_proc < 0)
    throw std::invalid_argument("overhead must be non-negative");
  // Unclamped curve t1/k + c(k-1) is minimized near k* = sqrt(t1/c).
  int best_k = 1;
  if (overhead_per_proc > 0) {
    const double kstar = std::sqrt(t1 / overhead_per_proc);
    const int lo = std::max(1, static_cast<int>(std::floor(kstar)));
    const int hi = lo + 1;
    const auto value = [&](int k) {
      return t1 / k + overhead_per_proc * (k - 1);
    };
    best_k = value(lo) <= value(hi) ? lo : hi;
  } else {
    best_k = std::numeric_limits<int>::max();
  }
  return ExecModel(Rep(CommPenalty{t1, overhead_per_proc, best_k}));
}

ExecModel ExecModel::table(std::vector<Time> times) {
  if (times.empty()) throw std::invalid_argument("empty time table");
  for (Time t : times)
    if (t <= 0) throw std::invalid_argument("table times must be positive");
  // Prefix-min monotonization: using k processors can always emulate using
  // fewer, so the effective time is the best over all counts <= k.
  for (std::size_t i = 1; i < times.size(); ++i)
    times[i] = std::min(times[i], times[i - 1]);
  return ExecModel(Rep(Table{std::move(times)}));
}

Time ExecModel::time(int k) const {
  if (k < 1) throw std::invalid_argument("processor count must be >= 1");
  return std::visit(
      [k](const auto& m) -> Time {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Seq>) {
          return m.t;
        } else if constexpr (std::is_same_v<T, Amdahl>) {
          return m.t1 * (m.f + (1.0 - m.f) / k);
        } else if constexpr (std::is_same_v<T, Power>) {
          return m.t1 / std::pow(static_cast<double>(k), m.alpha);
        } else if constexpr (std::is_same_v<T, CommPenalty>) {
          const int kk = std::min(k, m.best_k);
          return m.t1 / kk + m.c * (kk - 1);
        } else {
          const auto& tab = m.times;
          const std::size_t idx =
              std::min<std::size_t>(static_cast<std::size_t>(k), tab.size());
          return tab[idx - 1];
        }
      },
      rep_);
}

int ExecModel::useful_limit(int limit) const {
  if (limit < 1) throw std::invalid_argument("limit must be >= 1");
  return std::visit(
      [limit](const auto& m) -> int {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Seq>) {
          return 1;
        } else if constexpr (std::is_same_v<T, Amdahl>) {
          return m.f < 1.0 ? limit : 1;
        } else if constexpr (std::is_same_v<T, Power>) {
          return limit;
        } else if constexpr (std::is_same_v<T, CommPenalty>) {
          return std::min(limit, m.best_k);
        } else {
          // First index achieving the (monotone) table minimum.
          const auto& tab = m.times;
          const std::size_t n =
              std::min<std::size_t>(tab.size(), static_cast<std::size_t>(limit));
          const Time best = tab[n - 1];
          for (std::size_t i = 0; i < n; ++i)
            if (tab[i] <= best) return static_cast<int>(i + 1);
          return static_cast<int>(n);
        }
      },
      rep_);
}

bool ExecModel::is_sequential() const {
  return std::holds_alternative<Seq>(rep_);
}

std::uint32_t TablePool::intern(const Time* times, std::size_t n) {
  Desc d;
  d.off = static_cast<std::uint32_t>(times_.size());
  d.len = static_cast<std::uint32_t>(n);
  times_.insert(times_.end(), times, times + n);
  descs_.push_back(d);
  return static_cast<std::uint32_t>(descs_.size() - 1);
}

ExecRef ExecModel::compact(TablePool& pool) const {
  return std::visit(
      [&pool](const auto& m) -> ExecRef {
        using T = std::decay_t<decltype(m)>;
        ExecRef r;
        if constexpr (std::is_same_v<T, Seq>) {
          r.kind = ExecKind::kSeq;
          r.a = m.t;
        } else if constexpr (std::is_same_v<T, Amdahl>) {
          r.kind = ExecKind::kAmdahl;
          r.a = m.t1;
          r.b = m.f;
        } else if constexpr (std::is_same_v<T, Power>) {
          r.kind = ExecKind::kPower;
          r.a = m.t1;
          r.b = m.alpha;
        } else if constexpr (std::is_same_v<T, CommPenalty>) {
          r.kind = ExecKind::kCommPenalty;
          r.a = m.t1;
          r.b = m.c;
          r.c = static_cast<std::uint32_t>(m.best_k);
        } else {
          // A one-entry table is constant in k (min(k, 1) == 1 for every
          // admissible k): no pool entry needed.  This is the shape every
          // rigid job takes.
          if (m.times.size() == 1) {
            r.kind = ExecKind::kRigidConst;
            r.a = m.times[0];
          } else {
            r.kind = ExecKind::kTable;
            r.c = pool.intern(m.times.data(), m.times.size());
          }
        }
        return r;
      },
      rep_);
}

ExecModel ExecModel::from_ref(const ExecRef& ref, const TablePool& pool) {
  switch (ref.kind) {
    case ExecKind::kSeq:
      return sequential(ref.a);
    case ExecKind::kAmdahl:
      return amdahl(ref.a, ref.b);
    case ExecKind::kPower:
      return power_law(ref.a, ref.b);
    case ExecKind::kCommPenalty:
      // comm_penalty recomputes best_k from (t1, c) with the same
      // deterministic formula that produced ref.c, so the rebuilt model
      // is identical.
      return comm_penalty(ref.a, ref.b);
    case ExecKind::kTable: {
      const Time* t = pool.data(ref.c);
      // table() re-monotonizes; the pool holds already-monotone times,
      // so the pass is an identity.
      return table(std::vector<Time>(t, t + pool.len(ref.c)));
    }
    case ExecKind::kRigidConst:
      return table(std::vector<Time>(1, ref.a));
  }
  throw std::invalid_argument("bad ExecRef kind");
}

Time exec_time(const ExecRef& ref, const TablePool& pool, int k) {
  if (k < 1) throw std::invalid_argument("processor count must be >= 1");
  switch (ref.kind) {
    case ExecKind::kSeq:
      return ref.a;
    case ExecKind::kAmdahl:
      return ref.a * (ref.b + (1.0 - ref.b) / k);
    case ExecKind::kPower:
      return ref.a / std::pow(static_cast<double>(k), ref.b);
    case ExecKind::kCommPenalty: {
      const int kk = std::min(k, static_cast<int>(ref.c));
      return ref.a / kk + ref.b * (kk - 1);
    }
    case ExecKind::kTable: {
      const std::size_t idx = std::min<std::size_t>(
          static_cast<std::size_t>(k), pool.len(ref.c));
      return pool.data(ref.c)[idx - 1];
    }
    case ExecKind::kRigidConst:
      return ref.a;
  }
  throw std::invalid_argument("bad ExecRef kind");
}

int exec_useful_limit(const ExecRef& ref, const TablePool& pool, int limit) {
  if (limit < 1) throw std::invalid_argument("limit must be >= 1");
  switch (ref.kind) {
    case ExecKind::kSeq:
      return 1;
    case ExecKind::kAmdahl:
      return ref.b < 1.0 ? limit : 1;
    case ExecKind::kPower:
      return limit;
    case ExecKind::kCommPenalty:
      return std::min(limit, static_cast<int>(ref.c));
    case ExecKind::kTable: {
      const Time* tab = pool.data(ref.c);
      const std::size_t n = std::min<std::size_t>(
          pool.len(ref.c), static_cast<std::size_t>(limit));
      const Time best = tab[n - 1];
      for (std::size_t i = 0; i < n; ++i)
        if (tab[i] <= best) return static_cast<int>(i + 1);
      return static_cast<int>(n);
    }
    case ExecKind::kRigidConst:
      return 1;
  }
  throw std::invalid_argument("bad ExecRef kind");
}

}  // namespace lgs
