#include "core/proc_interval.h"

#include <stdexcept>

namespace lgs {

ProcIntervalSet::ProcIntervalSet(int nprocs) {
  if (nprocs < 0)
    throw std::invalid_argument("negative processor count");
  if (nprocs > 0) runs_.emplace(0, nprocs);
  free_count_ = nprocs;
}

bool ProcIntervalSet::acquire_lowest(int n, std::vector<ProcRun>& out) {
  if (n < 0) throw std::invalid_argument("negative acquisition");
  if (n > free_count_) return false;
  free_count_ -= n;
  auto it = runs_.begin();
  while (n > 0) {
    const int len = it->second - it->first;
    if (len <= n) {
      out.push_back(ProcRun{it->first, it->second});
      n -= len;
      it = runs_.erase(it);
    } else {
      // Take the low prefix; the remainder keeps its hi with a new lo.
      const ProcId taken_hi = it->first + n;
      const ProcId hi = it->second;
      out.push_back(ProcRun{it->first, taken_hi});
      it = runs_.erase(it);
      runs_.emplace_hint(it, taken_hi, hi);
      n = 0;
    }
  }
  return true;
}

ProcId ProcIntervalSet::acquire_contiguous(int n) {
  if (n <= 0) throw std::invalid_argument("non-positive acquisition");
  for (auto it = runs_.begin(); it != runs_.end(); ++it) {
    if (it->second - it->first < n) continue;
    const ProcId base = it->first;
    const ProcId hi = it->second;
    const auto next = runs_.erase(it);
    if (base + n < hi) runs_.emplace_hint(next, base + n, hi);
    free_count_ -= n;
    return base;
  }
  return -1;
}

void ProcIntervalSet::release(ProcRun run) {
  if (run.lo >= run.hi) throw std::invalid_argument("empty release");
  ProcId lo = run.lo;
  ProcId hi = run.hi;
  auto next = runs_.upper_bound(lo);  // first run with key > lo
  if (next != runs_.begin()) {
    const auto prev = std::prev(next);
    if (prev->second > lo)
      throw std::logic_error("releasing processors that are already free");
    if (prev->second == lo) {  // adjacent on the left: merge
      lo = prev->first;
      runs_.erase(prev);
    }
  }
  if (next != runs_.end()) {
    if (next->first < hi)
      throw std::logic_error("releasing processors that are already free");
    if (next->first == hi) {  // adjacent on the right: merge
      hi = next->second;
      next = runs_.erase(next);
    }
  }
  runs_.emplace_hint(next, lo, hi);
  free_count_ += run.length();
}

void ProcIntervalSet::release_all(const std::vector<ProcRun>& runs) {
  for (const ProcRun& r : runs) release(r);
}

std::vector<ProcRun> ProcIntervalSet::runs() const {
  std::vector<ProcRun> out;
  out.reserve(runs_.size());
  for (const auto& [lo, hi] : runs_) out.push_back(ProcRun{lo, hi});
  return out;
}

void expand_runs(const std::vector<ProcRun>& runs, std::vector<ProcId>& out) {
  for (const ProcRun& r : runs)
    for (ProcId p = r.lo; p < r.hi; ++p) out.push_back(p);
}

}  // namespace lgs
