// Bounded lock-free single-producer/single-consumer ring (the cross-
// shard mailbox of sim/shard_sim.h).
//
// One producer thread pushes, one consumer thread peeks/pops; the two
// never share an index: each side owns its own atomic position and keeps
// a cached copy of the other side's, so the hot path is a store-release
// on the own index and an occasional load-acquire of the opposite one
// (the classic Lamport queue with index caching, cf. the SPSC/SPMC
// queues in lock-free work-distribution libraries).  `close()` publishes
// "no more items": a consumer blocked in wait_peek() drains the residue
// and then observes end-of-stream.
//
// The element type must be trivially copyable — slots are raw copies,
// never constructed or destroyed, so a crossed slot is published by the
// index store alone.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <type_traits>

namespace lgs {

template <class T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing slots are raw copies; T must be trivially copyable");

 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    mask_ = cap - 1;
    buf_ = std::make_unique<T[]>(cap);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // ---- producer side -----------------------------------------------------

  /// Non-blocking push; false when the ring is full.
  bool try_push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buf_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push: spin-yield until the consumer makes room.  The
  /// producer must not call this after close().
  void push(const T& v) {
    while (!try_push(v)) std::this_thread::yield();
  }

  /// Publish end-of-stream (producer side, after the last push).
  void close() { closed_.store(true, std::memory_order_release); }

  // ---- consumer side -----------------------------------------------------

  /// Pointer to the oldest element, or nullptr when the ring is
  /// currently empty.  The slot stays valid until pop().
  const T* peek() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &buf_[head & mask_];
  }

  /// Blocking peek: spin-yield until an element is available or the
  /// producer closed the stream.  nullptr means closed AND drained —
  /// the consumer's definitive end-of-stream signal.
  const T* wait_peek() {
    for (;;) {
      if (const T* p = peek()) return p;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: items pushed between the failed peek and the close
        // flag must not be dropped.
        return peek();
      }
      std::this_thread::yield();
    }
  }

  /// Consume the element last returned by peek()/wait_peek().
  void pop() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

 private:
  std::unique_ptr<T[]> buf_;
  std::size_t mask_ = 0;
  /// Producer-owned: its index, plus a cached copy of the consumer's.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  /// Consumer-owned mirror image.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace lgs
