// Bounded lock-free single-producer/single-consumer ring (the cross-
// shard mailbox of sim/shard_sim.h).
//
// One producer thread pushes, one consumer thread peeks/pops; the two
// never share an index: each side owns its own atomic position and keeps
// a cached copy of the other side's, so the hot path is a store-release
// on the own index and an occasional load-acquire of the opposite one
// (the classic Lamport queue with index caching, cf. the SPSC/SPMC
// queues in lock-free work-distribution libraries).  `close()` publishes
// "no more items": a consumer blocked in wait_peek() drains the residue
// and then observes end-of-stream.
//
// The element type must be trivially copyable — slots are raw copies,
// never constructed or destroyed, so a crossed slot is published by the
// index store alone.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <thread>
#include <type_traits>

namespace lgs {

template <class T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing slots are raw copies; T must be trivially copyable");

 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    mask_ = cap - 1;
    buf_ = std::make_unique<T[]>(cap);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // ---- producer side -----------------------------------------------------

  /// Non-blocking push; false when the ring is full.
  bool try_push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buf_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push: spin-yield until the consumer makes room.  The
  /// producer must not call this after close().
  void push(const T& v) {
    while (!try_push(v)) std::this_thread::yield();
  }

  /// Bulk push: copy up to `n` items in at most two memcpy segments
  /// (wrap-around split) and publish them with ONE release store —
  /// amortizing the atomic traffic that per-item try_push pays on every
  /// element.  Returns the number actually pushed (0 when full).
  std::size_t try_push_n(const T* items, std::size_t n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - (tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - (tail - head_cache_);
    }
    const std::size_t count = std::min(n, free);
    if (count == 0) return 0;
    const std::size_t start = tail & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    std::memcpy(buf_.get() + start, items, first * sizeof(T));
    if (count > first)
      std::memcpy(buf_.get(), items + first, (count - first) * sizeof(T));
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Blocking bulk push: spin-yield until all `n` items are in.  The
  /// producer must not call this after close().
  void push_n(const T* items, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const std::size_t pushed = try_push_n(items + done, n - done);
      if (pushed == 0) std::this_thread::yield();
      done += pushed;
    }
  }

  /// Publish end-of-stream (producer side, after the last push).
  void close() { closed_.store(true, std::memory_order_release); }

  // ---- consumer side -----------------------------------------------------

  /// Pointer to the oldest element, or nullptr when the ring is
  /// currently empty.  The slot stays valid until pop().
  const T* peek() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &buf_[head & mask_];
  }

  /// Blocking peek: spin-yield until an element is available or the
  /// producer closed the stream.  nullptr means closed AND drained —
  /// the consumer's definitive end-of-stream signal.
  const T* wait_peek() {
    for (;;) {
      if (const T* p = peek()) return p;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: items pushed between the failed peek and the close
        // flag must not be dropped.
        return peek();
      }
      std::this_thread::yield();
    }
  }

  /// Consume the element last returned by peek()/wait_peek().
  void pop() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Bulk pop: copy up to `max_n` available items into `out` (two
  /// memcpy segments on wrap-around) and consume them with ONE release
  /// store.  Returns the number popped (0 when currently empty).
  std::size_t pop_n(T* out, std::size_t max_n) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail < max_n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const std::size_t count = std::min(max_n, avail);
    if (count == 0) return 0;
    const std::size_t start = head & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    std::memcpy(out, buf_.get() + start, first * sizeof(T));
    if (count > first)
      std::memcpy(out + first, buf_.get(), (count - first) * sizeof(T));
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Blocking bulk pop: spin-yield until at least one item arrives or
  /// the producer closed the stream.  Returns the number popped; 0 means
  /// closed AND drained (end-of-stream) — items pushed between an empty
  /// poll and the close flag are never dropped (same re-check as
  /// wait_peek).
  std::size_t wait_pop_n(T* out, std::size_t max_n) {
    for (;;) {
      if (const std::size_t n = pop_n(out, max_n)) return n;
      if (closed_.load(std::memory_order_acquire)) return pop_n(out, max_n);
      std::this_thread::yield();
    }
  }

 private:
  std::unique_ptr<T[]> buf_;
  std::size_t mask_ = 0;
  /// Producer-owned: its index, plus a cached copy of the consumer's.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  /// Consumer-owned mirror image.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace lgs
