#include "core/job_store.h"

#include <algorithm>
#include <stdexcept>

namespace lgs {

void JobStore::append(const Job& j) {
  HotJob h;
  h.release = j.release;
  h.weight = j.weight;
  h.due = j.due;
  h.id = j.id;
  h.min_procs = j.min_procs;
  h.max_procs = j.max_procs;
  h.community = j.community;
  h.kind = j.kind;
  h.set_exec_ref(j.model.compact(pool_));
  hot_.push_back(h);
}

void JobStore::append_rigid(JobId id, int procs, Time duration, Time release,
                            double weight) {
  // Same validation ExecModel::table applies on the Job::rigid path.
  if (duration <= 0) throw std::invalid_argument("table times must be positive");
  if (procs < 1) throw std::invalid_argument("processor count must be >= 1");
  HotJob h;
  h.release = release;
  h.weight = weight;
  h.id = id;
  h.min_procs = procs;
  h.max_procs = procs;
  h.kind = JobKind::kRigid;
  h.exec_kind = ExecKind::kRigidConst;
  h.exec_a = duration;
  hot_.push_back(h);
}

Time JobStore::best_time(std::size_t i, int m) const {
  const HotJob& h = hot_[i];
  const int k = std::min(h.max_procs, m);
  return exec_time(h.exec_ref(), pool_, k);
}

Job JobStore::job(std::size_t i) const {
  const HotJob& h = hot_[i];
  Job j;
  j.id = h.id;
  j.kind = h.kind;
  j.release = h.release;
  j.weight = h.weight;
  j.due = h.due;
  j.min_procs = h.min_procs;
  j.max_procs = h.max_procs;
  j.community = h.community;
  j.model = ExecModel::from_ref(h.exec_ref(), pool_);
  return j;
}

JobSet JobStore::to_jobset() const {
  JobSet out;
  out.reserve(hot_.size());
  for (std::size_t i = 0; i < hot_.size(); ++i) out.push_back(job(i));
  return out;
}

JobStore to_job_store(const JobSet& jobs, ArenaRef arena) {
  JobStore store(arena);
  store.reserve(jobs.size());
  for (const Job& j : jobs) store.append(j);
  return store;
}

}  // namespace lgs
