#include "core/job_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"

namespace lgs {

void JobStore::append(const Job& j) {
  HotJob h;
  h.release = j.release;
  h.weight = j.weight;
  h.due = j.due;
  h.id = j.id;
  h.min_procs = j.min_procs;
  h.max_procs = j.max_procs;
  h.community = j.community;
  h.kind = j.kind;
  h.set_exec_ref(j.model.compact(pool_));
  hot_.push_back(h);
}

void JobStore::append_rigid(JobId id, int procs, Time duration, Time release,
                            double weight) {
  // Same validation ExecModel::table applies on the Job::rigid path.
  if (duration <= 0) throw std::invalid_argument("table times must be positive");
  if (procs < 1) throw std::invalid_argument("processor count must be >= 1");
  HotJob h;
  h.release = release;
  h.weight = weight;
  h.id = id;
  h.min_procs = procs;
  h.max_procs = procs;
  h.kind = JobKind::kRigid;
  h.exec_kind = ExecKind::kRigidConst;
  h.exec_a = duration;
  hot_.push_back(h);
}

Time JobStore::best_time(std::size_t i, int m) const {
  const HotJob& h = hot_[i];
  const int k = std::min(h.max_procs, m);
  return exec_time(h.exec_ref(), pool_, k);
}

Job JobStore::job(std::size_t i) const {
  const HotJob& h = hot_[i];
  Job j;
  j.id = h.id;
  j.kind = h.kind;
  j.release = h.release;
  j.weight = h.weight;
  j.due = h.due;
  j.min_procs = h.min_procs;
  j.max_procs = h.max_procs;
  j.community = h.community;
  j.model = ExecModel::from_ref(h.exec_ref(), pool_);
  return j;
}

JobSet JobStore::to_jobset() const {
  JobSet out;
  out.reserve(hot_.size());
  for (std::size_t i = 0; i < hot_.size(); ++i) out.push_back(job(i));
  return out;
}

JobStore to_job_store(const JobSet& jobs, ArenaRef arena) {
  JobStore store(arena);
  store.reserve(jobs.size());
  for (const Job& j : jobs) store.append(j);
  return store;
}

void save_hot_job(CheckpointWriter& w, const HotJob& h) {
  w.f64(h.release);
  w.f64(h.weight);
  w.f64(h.due);
  w.f64(h.exec_a);
  w.f64(h.exec_b);
  w.u32(h.id);
  w.i32(h.min_procs);
  w.i32(h.max_procs);
  w.i32(h.community);
  w.u32(h.exec_c);
  w.u8(static_cast<std::uint8_t>(h.exec_kind));
  w.u8(static_cast<std::uint8_t>(h.kind));
}

HotJob load_hot_job(CheckpointReader& r) {
  HotJob h;
  h.release = r.f64();
  h.weight = r.f64();
  h.due = r.f64();
  h.exec_a = r.f64();
  h.exec_b = r.f64();
  h.id = r.u32();
  h.min_procs = r.i32();
  h.max_procs = r.i32();
  h.community = r.i32();
  h.exec_c = r.u32();
  h.exec_kind = static_cast<ExecKind>(r.u8());
  h.kind = static_cast<JobKind>(r.u8());
  return h;
}

void save_table_pool(CheckpointWriter& w, const TablePool& pool) {
  const std::vector<Time>& times = pool.times_raw();
  w.u64(times.size());
  for (Time t : times) w.f64(t);
  w.u64(pool.tables());
  for (std::uint32_t ref = 0; ref < pool.tables(); ++ref) {
    w.u32(pool.off(ref));
    w.u32(pool.len(ref));
  }
}

void load_table_pool(CheckpointReader& r, TablePool& pool) {
  std::vector<Time> times(r.u64());
  for (Time& t : times) t = r.f64();
  pool.restore_times(std::move(times));
  const std::uint64_t descs = r.u64();
  for (std::uint64_t i = 0; i < descs; ++i) {
    const std::uint32_t off = r.u32();
    const std::uint32_t len = r.u32();
    pool.restore_desc(off, len);
  }
}

void save_job_store(CheckpointWriter& w, const JobStore& store) {
  save_table_pool(w, store.tables());
  w.u64(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) save_hot_job(w, store[i]);
}

void load_job_store(CheckpointReader& r, JobStore& store) {
  if (!store.empty())
    throw CheckpointError("job store restore requires an empty store");
  load_table_pool(r, store.mutable_tables());
  const std::uint64_t n = r.u64();
  store.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) store.append_raw(load_hot_job(r));
}

}  // namespace lgs
