#include "core/checkpoint.h"

namespace lgs {

std::uint64_t checkpoint_fnv1a(std::uint64_t h, const void* data,
                               std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Fixed little-endian layout: snapshots written on any host restore on
/// any other (the CI runners and dev boxes are all little-endian, but
/// the explicit byte order keeps the format well-defined regardless).
void put_u32(std::vector<unsigned char>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back((v >> (8 * i)) & 0xff);
}
void put_u64(std::vector<unsigned char>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back((v >> (8 * i)) & 0xff);
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

}  // namespace

CheckpointWriter::CheckpointWriter() {
  raw(kCheckpointMagic, sizeof kCheckpointMagic);
  u32(kCheckpointVersion);
}

void CheckpointWriter::u32(std::uint32_t v) { put_u32(buf_, v); }
void CheckpointWriter::u64(std::uint64_t v) { put_u64(buf_, v); }

void CheckpointWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void CheckpointWriter::bytes(const void* data, std::size_t n) {
  u64(static_cast<std::uint64_t>(n));
  raw(data, n);
}

std::vector<unsigned char> CheckpointWriter::finish() {
  const std::uint64_t sum =
      checkpoint_fnv1a(kCheckpointFnvBasis, buf_.data(), buf_.size());
  put_u64(buf_, sum);
  return std::move(buf_);
}

CheckpointReader::CheckpointReader(const unsigned char* data, std::size_t n)
    : data_(data) {
  constexpr std::size_t kHeader = sizeof kCheckpointMagic + 4;
  constexpr std::size_t kTrailer = 8;  // checksum
  if (n < kHeader + kTrailer) throw CheckpointError("truncated snapshot");
  if (std::memcmp(data, kCheckpointMagic, sizeof kCheckpointMagic) != 0)
    throw CheckpointError("bad magic (not an lgs snapshot)");
  const std::uint64_t stored = get_u64(data + n - kTrailer);
  const std::uint64_t actual =
      checkpoint_fnv1a(kCheckpointFnvBasis, data, n - kTrailer);
  if (stored != actual)
    throw CheckpointError("checksum mismatch (corrupted snapshot)");
  const std::uint32_t version = get_u32(data + sizeof kCheckpointMagic);
  if (version != kCheckpointVersion)
    throw CheckpointError("format version " + std::to_string(version) +
                          " (this build reads version " +
                          std::to_string(kCheckpointVersion) + ")");
  pos_ = kHeader;
  end_ = n - kTrailer;
}

std::uint8_t CheckpointReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t CheckpointReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t CheckpointReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(data_ + pos_);
  pos_ += 8;
  return v;
}

double CheckpointReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void CheckpointReader::bytes(void* out, std::size_t n) {
  const std::uint64_t len = u64();
  if (len != n) throw CheckpointError("byte-run length mismatch");
  need(n);
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::vector<unsigned char> CheckpointReader::blob() {
  const std::uint64_t len = u64();
  need(len);
  std::vector<unsigned char> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string CheckpointReader::str() {
  const std::uint64_t len = u64();
  need(len);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace lgs
