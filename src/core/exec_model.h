// Execution-time models for Parallel Tasks.
//
// The PT model (paper §2.2, §4) folds all communication costs into a global
// penalty on the parallel execution time p_j(k).  The moldable algorithms of
// §4 additionally assume *monotony*:
//   - p_j(k) is non-increasing in the number of processors k, and
//   - the work  W_j(k) = k * p_j(k)  is non-decreasing in k.
// Analytic models here are monotone by construction (communication-penalty
// models are clamped at their optimum processor count), so the canonical
// allotment used by the MRT algorithm is always well defined.
#pragma once

#include <variant>
#include <vector>

#include "core/types.h"

namespace lgs {

/// Parallel execution-time model: maps a processor count k >= 1 to a time.
///
/// Value type; cheap to copy for the analytic variants.  Construct through
/// the named factories.
class ExecModel {
 public:
  /// Strictly sequential task: p(1) = t and no speedup whatsoever.
  static ExecModel sequential(Time t);

  /// Amdahl's law: p(k) = t1 * (f + (1 - f)/k), serial fraction f in [0,1].
  static ExecModel amdahl(Time t1, double serial_fraction);

  /// Power-law speedup: p(k) = t1 / k^alpha, alpha in (0, 1].
  /// alpha = 1 is perfect (linear) speedup.
  static ExecModel power_law(Time t1, double alpha);

  /// Communication-penalty model: p(k) = t1/k + overhead * (k - 1),
  /// clamped at the processor count minimizing it so the model stays
  /// monotone (adding processors never hurts, it just stops helping).
  static ExecModel comm_penalty(Time t1, double overhead_per_proc);

  /// Tabulated model: times[k-1] is the execution time on k processors.
  /// The table is prefix-min monotonized; for k beyond the table the last
  /// (best) value is used.
  static ExecModel table(std::vector<Time> times);

  /// Execution time on k >= 1 processors (monotone non-increasing).
  Time time(int k) const;

  /// Work (processor-time area) on k processors: k * time(k).
  double work(int k) const { return static_cast<double>(k) * time(k); }

  /// Sequential time p(1).
  Time seq_time() const { return time(1); }

  /// Smallest processor count achieving the minimum execution time; adding
  /// processors beyond this is pure waste.  Returns `limit` if the model
  /// keeps improving through `limit` processors.
  int useful_limit(int limit) const;

  /// True for the strictly sequential variant.
  bool is_sequential() const;

 private:
  struct Seq {
    Time t;
  };
  struct Amdahl {
    Time t1;
    double f;
  };
  struct Power {
    Time t1;
    double alpha;
  };
  struct CommPenalty {
    Time t1;
    double c;
    int best_k;  // argmin of the unclamped curve
  };
  struct Table {
    std::vector<Time> times;  // prefix-min monotonized
  };
  using Rep = std::variant<Seq, Amdahl, Power, CommPenalty, Table>;

  explicit ExecModel(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

}  // namespace lgs
