// Execution-time models for Parallel Tasks.
//
// The PT model (paper §2.2, §4) folds all communication costs into a global
// penalty on the parallel execution time p_j(k).  The moldable algorithms of
// §4 additionally assume *monotony*:
//   - p_j(k) is non-increasing in the number of processors k, and
//   - the work  W_j(k) = k * p_j(k)  is non-decreasing in k.
// Analytic models here are monotone by construction (communication-penalty
// models are clamped at their optimum processor count), so the canonical
// allotment used by the MRT algorithm is always well defined.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "core/types.h"

namespace lgs {

class TablePool;
struct ExecRef;

/// Parallel execution-time model: maps a processor count k >= 1 to a time.
///
/// Value type; cheap to copy for the analytic variants.  Construct through
/// the named factories.
class ExecModel {
 public:
  /// Strictly sequential task: p(1) = t and no speedup whatsoever.
  static ExecModel sequential(Time t);

  /// Amdahl's law: p(k) = t1 * (f + (1 - f)/k), serial fraction f in [0,1].
  static ExecModel amdahl(Time t1, double serial_fraction);

  /// Power-law speedup: p(k) = t1 / k^alpha, alpha in (0, 1].
  /// alpha = 1 is perfect (linear) speedup.
  static ExecModel power_law(Time t1, double alpha);

  /// Communication-penalty model: p(k) = t1/k + overhead * (k - 1),
  /// clamped at the processor count minimizing it so the model stays
  /// monotone (adding processors never hurts, it just stops helping).
  static ExecModel comm_penalty(Time t1, double overhead_per_proc);

  /// Tabulated model: times[k-1] is the execution time on k processors.
  /// The table is prefix-min monotonized; for k beyond the table the last
  /// (best) value is used.
  static ExecModel table(std::vector<Time> times);

  /// Execution time on k >= 1 processors (monotone non-increasing).
  Time time(int k) const;

  /// Work (processor-time area) on k processors: k * time(k).
  double work(int k) const { return static_cast<double>(k) * time(k); }

  /// Sequential time p(1).
  Time seq_time() const { return time(1); }

  /// Smallest processor count achieving the minimum execution time; adding
  /// processors beyond this is pure waste.  Returns `limit` if the model
  /// keeps improving through `limit` processors.
  int useful_limit(int limit) const;

  /// True for the strictly sequential variant.
  bool is_sequential() const;

  /// Compact this model into a 24-byte POD handle for the hot job slab
  /// (see ExecRef).  Table variants intern their times into `pool`;
  /// analytic variants carry their parameters inline and leave the pool
  /// untouched.  The handle evaluates bit-identically to this model.
  ExecRef compact(TablePool& pool) const;

  /// Rebuild a full ExecModel from a compact handle — the bridge back to
  /// the offline `pt/` algorithms, which keep consuming fat Jobs.
  static ExecModel from_ref(const ExecRef& ref, const TablePool& pool);

 private:
  struct Seq {
    Time t;
  };
  struct Amdahl {
    Time t1;
    double f;
  };
  struct Power {
    Time t1;
    double alpha;
  };
  struct CommPenalty {
    Time t1;
    double c;
    int best_k;  // argmin of the unclamped curve
  };
  struct Table {
    std::vector<Time> times;  // prefix-min monotonized
  };
  using Rep = std::variant<Seq, Amdahl, Power, CommPenalty, Table>;

  explicit ExecModel(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

// ---------------------------------------------------------------------------
// Compact exec-model handles: the hot/cold split of the arena refactor.
//
// The fat ExecModel embeds a std::vector for the Table variant, which is
// what made `Job` heap-allocate per job (a rigid job's constant "table"
// used to be `procs` identical entries).  The replay stack instead stores
// a 24-byte POD `ExecRef` per job in the hot slab and keeps all table
// payloads in one shared cold `TablePool`.  Evaluation (`exec_time`,
// `exec_useful_limit`) reuses the exact arithmetic of ExecModel::time /
// ::useful_limit, so replays stay bit-identical to the fat path.

/// Discriminator for ExecRef.  kRigidConst is the compact form of a
/// rigid job's constant one-entry table: time(k) == a for every k,
/// useful_limit == 1 — no pool entry needed at all.
enum class ExecKind : std::uint8_t {
  kSeq,
  kAmdahl,
  kPower,
  kCommPenalty,
  kTable,
  kRigidConst,
};

/// 24-byte POD exec-model handle stored inline in the hot job slab.
/// Parameter packing mirrors the ExecModel variants:
///   kSeq         a = t
///   kAmdahl      a = t1, b = serial fraction f
///   kPower       a = t1, b = alpha
///   kCommPenalty a = t1, b = overhead c, c = best_k
///   kTable       c = TablePool descriptor index
///   kRigidConst  a = constant duration
struct ExecRef {
  double a = 0.0;
  double b = 0.0;
  std::uint32_t c = 0;
  ExecKind kind = ExecKind::kSeq;
};
static_assert(sizeof(ExecRef) == 24, "ExecRef is sized for the 64B hot row");

/// Cold slab of tabulated execution times: one contiguous times vector
/// plus {offset, length} descriptors.  Append-only; owned by a JobStore
/// and shared by every ExecRef of kind kTable in that store.
class TablePool {
 public:
  /// Intern a (already monotonized) time table; returns the descriptor
  /// index an ExecRef carries in `c`.
  std::uint32_t intern(const Time* times, std::size_t n);

  const Time* data(std::uint32_t ref) const {
    return times_.data() + descs_[ref].off;
  }
  std::uint32_t len(std::uint32_t ref) const { return descs_[ref].len; }

  std::size_t tables() const { return descs_.size(); }
  std::size_t bytes() const {
    return times_.capacity() * sizeof(Time) + descs_.capacity() * sizeof(Desc);
  }

  // Checkpoint surface (core/checkpoint): the slabs are dumped and
  // restored verbatim — intern() is append-only, so a restored pool
  // keeps handing out the exact descriptor indices and offsets the
  // uninterrupted run would have.
  /// The flat time slab (serialized raw; offsets index into it).
  const std::vector<Time>& times_raw() const { return times_; }
  /// Offset of descriptor `ref` into times_raw().
  std::uint32_t off(std::uint32_t ref) const { return descs_[ref].off; }
  /// Drop everything and install a restored time slab (descriptors
  /// follow via restore_desc, in index order).
  void restore_times(std::vector<Time> times) {
    times_ = std::move(times);
    descs_.clear();
  }
  /// Append descriptor (off, len) verbatim — bypasses intern's copy.
  void restore_desc(std::uint32_t off, std::uint32_t len) {
    descs_.push_back(Desc{off, len});
  }

 private:
  struct Desc {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };
  std::vector<Desc> descs_;
  std::vector<Time> times_;
};

/// Execution time on k >= 1 processors — bit-identical to
/// ExecModel::time on the model the ref was compacted from.
Time exec_time(const ExecRef& ref, const TablePool& pool, int k);

/// Smallest processor count achieving the minimum time — bit-identical
/// to ExecModel::useful_limit.
int exec_useful_limit(const ExecRef& ref, const TablePool& pool, int limit);

inline bool exec_is_sequential(const ExecRef& ref) {
  return ref.kind == ExecKind::kSeq;
}

}  // namespace lgs
