// Core scalar types and constants shared by every lgs module.
//
// The library models time as a continuous quantity (`Time`, a double):
// the paper's algorithms (two-shelf moldable scheduling, batch doubling,
// divisible-load closed forms) are all stated over the reals, and the
// discrete-event simulator only needs a totally ordered clock.
#pragma once

#include <cstdint>
#include <limits>

namespace lgs {

/// Continuous simulated time, in abstract seconds.
using Time = double;

/// Job identifier. Dense, assigned by the workload generator / submitter.
using JobId = std::uint32_t;

/// Processor identifier inside one cluster (0..m-1).
using ProcId = std::int32_t;

/// Cluster identifier inside a light grid.
using ClusterId = std::int32_t;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();
inline constexpr Time kNoDueDate = kTimeInfinity;
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

/// Tolerance used when comparing times that were produced by closed-form
/// arithmetic (divisible-load fractions, shelf boundaries, ...).
inline constexpr double kTimeEps = 1e-9;

/// Relative tolerance for validating durations against execution models.
inline constexpr double kRelEps = 1e-7;

/// True when `a` and `b` are equal up to kTimeEps scaled by magnitude.
inline bool almost_equal(double a, double b) {
  const double scale = 1.0 + (a < 0 ? -a : a) + (b < 0 ? -b : b);
  const double d = a - b;
  return (d < 0 ? -d : d) <= kTimeEps * scale;
}

/// True when `a <= b` up to tolerance.
inline bool leq_eps(double a, double b) { return a <= b || almost_equal(a, b); }

/// True when `a >= b` up to tolerance.
inline bool geq_eps(double a, double b) { return a >= b || almost_equal(a, b); }

}  // namespace lgs
