// Job model: the Parallel Tasks taxonomy of the paper (§2.2).
//
// A job is rigid (fixed processor count), moldable (count chosen once,
// before execution) or malleable (count may change during execution).  The
// scheduling algorithms in src/pt consume `JobSet`s; the divisible-load
// library (src/dlt) has its own finer-grain load description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/exec_model.h"
#include "core/types.h"

namespace lgs {

/// The three Parallel Task classes of §2.2.  One byte wide so the hot
/// job slab (core/job_store.h) packs a row into a single cache line.
enum class JobKind : std::uint8_t { kRigid, kMoldable, kMalleable };

const char* to_string(JobKind kind);

/// One submitted job.
///
/// For rigid jobs min_procs == max_procs.  `weight` is the priority used by
/// the ΣwᵢCᵢ criteria (§3); `due` feeds the tardiness criteria and is
/// kNoDueDate when absent.
struct Job {
  JobId id = kInvalidJob;
  JobKind kind = JobKind::kMoldable;
  Time release = 0.0;
  double weight = 1.0;
  Time due = kNoDueDate;
  int min_procs = 1;
  int max_procs = 1;
  ExecModel model = ExecModel::sequential(1.0);
  /// Which community submitted the job (grid fairness accounting, §5.2).
  int community = 0;

  Job() = default;
  Job(const Job& other);
  Job& operator=(const Job& other);
  Job(Job&&) = default;
  Job& operator=(Job&&) = default;
  ~Job() = default;

  /// Execution time on k processors.  `k` must lie in [min_procs, max_procs].
  Time time(int k) const;

  /// Work (processor-time product) on k processors.
  double work(int k) const { return static_cast<double>(k) * time(k); }

  /// Smallest admissible allotment's work — a lower bound on the resources
  /// the job consumes in any schedule (monotone models: work grows with k).
  double min_work() const { return work(min_procs); }

  /// Fastest achievable execution time given at most `m` processors.
  Time best_time(int m) const;

  /// Named constructors ------------------------------------------------

  /// Rigid job: exactly `procs` processors for `duration`.
  static Job rigid(JobId id, int procs, Time duration, Time release = 0.0,
                   double weight = 1.0);

  /// Moldable job with the given model and allotment range.
  static Job moldable(JobId id, ExecModel model, int min_procs, int max_procs,
                      Time release = 0.0, double weight = 1.0);

  /// Sequential (non-parallel) job — the "Non Parallel" series of Fig. 2.
  static Job sequential(JobId id, Time duration, Time release = 0.0,
                        double weight = 1.0);
};

/// A set of submitted jobs.  Algorithms never reorder the caller's vector;
/// they work on index views.
using JobSet = std::vector<Job>;

/// Sum over the set of the minimal work of each job — the "area" used by
/// the W <= λm feasibility test of §4.1 and by the area lower bound.
double total_min_work(const JobSet& jobs);

/// Largest release date in the set (0 for an empty set).
Time max_release(const JobSet& jobs);

/// Validate basic well-formedness (positive times, procs ranges, rigid
/// consistency).  Throws std::invalid_argument on the first problem.
void check_jobset(const JobSet& jobs, int machines);

/// Process-wide count of Job copy constructions/assignments (moves are
/// free and not counted).  Instrumentation for the arena refactor's
/// no-full-trace-copy regression tests: a grid replay over a borrowed
/// JobStore must not deep-copy the trace, and the counter proves it.
/// Relaxed atomic — a coarse tripwire, not a profiler.
std::uint64_t job_copy_count();

}  // namespace lgs
