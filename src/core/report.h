// Reporting utilities shared by the benchmark harnesses: aligned text
// tables, CSV dumps and terminal ASCII plots used to regenerate the paper's
// figures in a headless environment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lgs {

/// Fixed-column text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One data series for AsciiPlot.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Minimal scatter/line plot rendered in ASCII, one glyph per series —
/// enough to see the *shape* of Fig. 2's ratio curves in a terminal.
std::string ascii_plot(const std::vector<Series>& series, int width = 72,
                       int height = 20, const std::string& title = "");

/// Write CSV content to a file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

/// Format a double compactly (fixed, trimmed trailing zeros).
std::string fmt(double v, int precision = 3);

/// Escape a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

/// Minimal streaming JSON builder shared by the bench harnesses and the
/// experiment report sink (src/exp/report_sink.h).  Emits pretty-printed
/// JSON with two-space indentation; commas and quoting are handled so
/// callers only state structure:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("cells").begin_array();
///   w.begin_object().key("m").value(32).end_object();
///   w.end_array().end_object();
///   write_file("report.json", w.str());
///
/// Doubles are serialized with enough digits to round-trip exactly
/// (max_digits10), because sweep reports feed differential tests that
/// compare results bit-for-bit.  Non-finite doubles become null.
class JsonWriter {
 public:
  /// `compact` emits no whitespace at all (single-line documents) — the
  /// newline-delimited-JSON mode of the streaming sink
  /// (sim/stream_sim.h), where one record must be exactly one line.
  explicit JsonWriter(bool compact = false) : compact_(compact) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit "key": — must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(int v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// The document built so far (with a trailing newline once all
  /// containers are closed).
  std::string str() const;

 private:
  void before_item();
  void indent();

  std::string out_;
  std::vector<bool> has_items_;  // per open container
  bool pending_key_ = false;
  bool compact_ = false;
};

}  // namespace lgs
