// Reporting utilities shared by the benchmark harnesses: aligned text
// tables, CSV dumps and terminal ASCII plots used to regenerate the paper's
// figures in a headless environment.
#pragma once

#include <string>
#include <vector>

namespace lgs {

/// Fixed-column text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 3);

  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One data series for AsciiPlot.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Minimal scatter/line plot rendered in ASCII, one glyph per series —
/// enough to see the *shape* of Fig. 2's ratio curves in a terminal.
std::string ascii_plot(const std::vector<Series>& series, int width = 72,
                       int height = 20, const std::string& title = "");

/// Write CSV content to a file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

/// Format a double compactly (fixed, trimmed trailing zeros).
std::string fmt(double v, int precision = 3);

}  // namespace lgs
