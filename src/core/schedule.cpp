#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

namespace lgs {

Schedule::Schedule(int machines) : machines_(machines) {
  if (machines < 1) throw std::invalid_argument("machine count must be >= 1");
}

void Schedule::add(Assignment a) { items_.push_back(std::move(a)); }

void Schedule::add(JobId job, Time start, int nprocs, Time duration) {
  Assignment a;
  a.job = job;
  a.start = start;
  a.nprocs = nprocs;
  a.duration = duration;
  items_.push_back(std::move(a));
}

Time Schedule::makespan() const {
  Time end = 0.0;
  for (const Assignment& a : items_) end = std::max(end, a.end());
  return end;
}

const Assignment* Schedule::find(JobId job) const {
  for (const Assignment& a : items_)
    if (a.job == job) return &a;
  return nullptr;
}

Time Schedule::completion(JobId job) const {
  const Assignment* a = find(job);
  if (a == nullptr) throw std::invalid_argument("job not in schedule");
  return a->end();
}

int Schedule::peak_demand() const {
  // Sweep start/end events; ends processed before starts at equal time so
  // back-to-back shelves do not double count.
  std::map<Time, int> delta;
  for (const Assignment& a : items_) {
    delta[a.start] += a.nprocs;
    delta[a.end()] -= a.nprocs;
  }
  int cur = 0, peak = 0;
  for (const auto& [t, d] : delta) {
    cur += d;
    peak = std::max(peak, cur);
  }
  return peak;
}

void Schedule::shift(Time delta) {
  for (Assignment& a : items_) a.start += delta;
}

void Schedule::append(const Schedule& other) {
  if (other.machines_ != machines_)
    throw std::invalid_argument("appending schedule for different machine count");
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

std::string gantt_ascii(const Schedule& s, int width) {
  std::ostringstream out;
  const Time span = s.makespan();
  if (span <= 0 || s.empty()) return "(empty schedule)\n";
  const double scale = (width - 1) / span;
  const auto col = [&](Time t) {
    return std::min(width - 1, static_cast<int>(std::floor(t * scale)));
  };

  const bool concrete =
      std::all_of(s.assignments().begin(), s.assignments().end(),
                  [](const Assignment& a) { return !a.procs.empty(); });
  if (concrete) {
    std::vector<std::string> rows(static_cast<std::size_t>(s.machines()),
                                  std::string(static_cast<std::size_t>(width), '.'));
    for (const Assignment& a : s.assignments()) {
      const char glyph = static_cast<char>('A' + a.job % 26);
      for (ProcId p : a.procs)
        for (int c = col(a.start); c <= col(a.end() - kTimeEps); ++c)
          rows[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)] = glyph;
    }
    for (int p = s.machines() - 1; p >= 0; --p)
      out << "p" << p << "\t|" << rows[static_cast<std::size_t>(p)] << "|\n";
  } else {
    // Demand profile: one line, digits = utilization deciles.
    std::vector<double> demand(static_cast<std::size_t>(width), 0.0);
    for (const Assignment& a : s.assignments())
      for (int c = col(a.start); c <= col(a.end() - kTimeEps); ++c)
        demand[static_cast<std::size_t>(c)] += a.nprocs;
    out << "demand\t|";
    for (double d : demand) {
      const int decile =
          std::min(9, static_cast<int>(std::floor(10.0 * d / s.machines())));
      out << (d <= 0 ? '.' : static_cast<char>('0' + decile));
    }
    out << "|\n";
  }
  out << "t\t 0";
  for (int i = 0; i < width - 10; ++i) out << ' ';
  out << span << "\n";
  return out.str();
}

std::string gantt_svg(const Schedule& s, int width_px, int row_px) {
  std::ostringstream out;
  const Time span = std::max(s.makespan(), kTimeEps);
  const double xscale = static_cast<double>(width_px) / span;
  const int height_px = s.machines() * row_px;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
      << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << width_px
      << " " << height_px << "\">\n";
  out << "<rect width=\"" << width_px << "\" height=\"" << height_px
      << "\" fill=\"#f8f8f8\"/>\n";

  // Deterministic palette keyed by job id.
  const auto color = [](JobId id) {
    static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759",
                                     "#76b7b2", "#59a14f", "#edc948",
                                     "#b07aa1", "#ff9da7", "#9c755f",
                                     "#bab0ac"};
    return kPalette[id % 10];
  };

  const bool concrete =
      !s.empty() &&
      std::all_of(s.assignments().begin(), s.assignments().end(),
                  [](const Assignment& a) { return !a.procs.empty(); });
  for (const Assignment& a : s.assignments()) {
    const double x = a.start * xscale;
    const double w = std::max(1.0, a.duration * xscale);
    if (concrete) {
      for (ProcId p : a.procs) {
        const int y = (s.machines() - 1 - p) * row_px;
        out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
            << "\" height=\"" << row_px - 1 << "\" fill=\"" << color(a.job)
            << "\"><title>job " << a.job << "</title></rect>\n";
      }
    } else {
      // Without ids: draw the assignment as a block anchored at row 0 —
      // an area-true (if overlapping) picture of the load.
      out << "<rect x=\"" << x << "\" y=\"0\" width=\"" << w
          << "\" height=\"" << a.nprocs * row_px - 1 << "\" fill=\""
          << color(a.job) << "\" fill-opacity=\"0.45\"><title>job " << a.job
          << "</title></rect>\n";
    }
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace lgs
