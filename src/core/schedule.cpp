#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lgs {

Schedule::Schedule(int machines) : machines_(machines) {
  if (machines < 1) throw std::invalid_argument("machine count must be >= 1");
}

void Schedule::add(Assignment a) {
  if (index_valid_) index_.emplace(a.job, items_.size());
  if (makespan_valid_) makespan_ = std::max(makespan_, a.end());
  peak_valid_ = false;
  items_.push_back(std::move(a));
}

void Schedule::add(JobId job, Time start, int nprocs, Time duration) {
  Assignment a;
  a.job = job;
  a.start = start;
  a.nprocs = nprocs;
  a.duration = duration;
  add(std::move(a));
}

std::vector<Assignment>& Schedule::assignments() {
  index_valid_ = false;
  makespan_valid_ = false;
  peak_valid_ = false;
  return items_;
}

void Schedule::reserve(std::size_t n) {
  items_.reserve(n);
  index_.reserve(n);
}

Time Schedule::makespan() const {
  if (!makespan_valid_) {
    makespan_ = -kTimeInfinity;
    for (const Assignment& a : items_) makespan_ = std::max(makespan_, a.end());
    makespan_valid_ = true;
  }
  // The cache holds the raw latest end (-inf when empty) so shift() can
  // adjust it exactly even through negative time; clamp only here.
  return items_.empty() ? 0.0 : std::max(0.0, makespan_);
}

void Schedule::rebuild_index() const {
  index_.clear();
  index_.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i)
    index_.emplace(items_[i].job, i);  // emplace keeps the first occurrence
  index_valid_ = true;
}

const Assignment* Schedule::find(JobId job) const {
  if (!index_valid_) rebuild_index();
  const auto it = index_.find(job);
  return it == index_.end() ? nullptr : &items_[it->second];
}

Time Schedule::completion(JobId job) const {
  const Assignment* a = find(job);
  if (a == nullptr) throw std::invalid_argument("job not in schedule");
  return a->end();
}

int Schedule::peak_demand() const {
  if (!peak_valid_) {
    // Sweep start/end events on a flat sorted array; ends processed before
    // starts at equal time so back-to-back shelves do not double count
    // (the -nprocs delta sorts first at a tied timestamp).
    std::vector<std::pair<Time, int>> events;
    events.reserve(items_.size() * 2);
    for (const Assignment& a : items_) {
      events.emplace_back(a.start, a.nprocs);
      events.emplace_back(a.end(), -a.nprocs);
    }
    std::sort(events.begin(), events.end(),
              [](const std::pair<Time, int>& x, const std::pair<Time, int>& y) {
                if (x.first != y.first) return x.first < y.first;
                return x.second < y.second;
              });
    int cur = 0, peak = 0;
    for (const auto& [t, d] : events) {
      (void)t;
      cur += d;
      peak = std::max(peak, cur);
    }
    peak_ = peak;
    peak_valid_ = true;
  }
  return peak_;
}

void Schedule::shift(Time delta) {
  for (Assignment& a : items_) a.start += delta;
  // Index (job → position) and peak demand are unaffected; the raw latest
  // end shifts with the assignments (-inf + delta stays -inf when empty).
  if (makespan_valid_) makespan_ += delta;
}

void Schedule::append(const Schedule& other) {
  if (other.machines_ != machines_)
    throw std::invalid_argument("appending schedule for different machine count");
  reserve(items_.size() + other.items_.size());
  for (const Assignment& a : other.items_) {
    if (index_valid_) index_.emplace(a.job, items_.size());
    if (makespan_valid_) makespan_ = std::max(makespan_, a.end());
    items_.push_back(a);
  }
  peak_valid_ = false;
}

void Schedule::clear() {
  items_.clear();
  index_.clear();
  index_valid_ = true;
  makespan_ = -kTimeInfinity;
  makespan_valid_ = true;
  peak_ = 0;
  peak_valid_ = true;
}

std::string gantt_ascii(const Schedule& s, int width) {
  std::ostringstream out;
  const Time span = s.makespan();
  if (span <= 0 || s.empty()) return "(empty schedule)\n";
  const double scale = (width - 1) / span;
  const auto col = [&](Time t) {
    return std::min(width - 1, static_cast<int>(std::floor(t * scale)));
  };

  const bool concrete =
      std::all_of(s.assignments().begin(), s.assignments().end(),
                  [](const Assignment& a) { return !a.procs.empty(); });
  if (concrete) {
    std::vector<std::string> rows(static_cast<std::size_t>(s.machines()),
                                  std::string(static_cast<std::size_t>(width), '.'));
    for (const Assignment& a : s.assignments()) {
      const char glyph = static_cast<char>('A' + a.job % 26);
      for (ProcId p : a.procs)
        for (int c = col(a.start); c <= col(a.end() - kTimeEps); ++c)
          rows[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)] = glyph;
    }
    for (int p = s.machines() - 1; p >= 0; --p)
      out << "p" << p << "\t|" << rows[static_cast<std::size_t>(p)] << "|\n";
  } else {
    // Demand profile: one line, digits = utilization deciles.
    std::vector<double> demand(static_cast<std::size_t>(width), 0.0);
    for (const Assignment& a : s.assignments())
      for (int c = col(a.start); c <= col(a.end() - kTimeEps); ++c)
        demand[static_cast<std::size_t>(c)] += a.nprocs;
    out << "demand\t|";
    for (double d : demand) {
      const int decile =
          std::min(9, static_cast<int>(std::floor(10.0 * d / s.machines())));
      out << (d <= 0 ? '.' : static_cast<char>('0' + decile));
    }
    out << "|\n";
  }
  out << "t\t 0";
  for (int i = 0; i < width - 10; ++i) out << ' ';
  out << span << "\n";
  return out.str();
}

std::string gantt_svg(const Schedule& s, int width_px, int row_px) {
  std::ostringstream out;
  const Time span = std::max(s.makespan(), kTimeEps);
  const double xscale = static_cast<double>(width_px) / span;
  const int height_px = s.machines() * row_px;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
      << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << width_px
      << " " << height_px << "\">\n";
  out << "<rect width=\"" << width_px << "\" height=\"" << height_px
      << "\" fill=\"#f8f8f8\"/>\n";

  // Deterministic palette keyed by job id.
  const auto color = [](JobId id) {
    static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759",
                                     "#76b7b2", "#59a14f", "#edc948",
                                     "#b07aa1", "#ff9da7", "#9c755f",
                                     "#bab0ac"};
    return kPalette[id % 10];
  };

  const bool concrete =
      !s.empty() &&
      std::all_of(s.assignments().begin(), s.assignments().end(),
                  [](const Assignment& a) { return !a.procs.empty(); });
  for (const Assignment& a : s.assignments()) {
    const double x = a.start * xscale;
    const double w = std::max(1.0, a.duration * xscale);
    if (concrete) {
      for (ProcId p : a.procs) {
        const int y = (s.machines() - 1 - p) * row_px;
        out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
            << "\" height=\"" << row_px - 1 << "\" fill=\"" << color(a.job)
            << "\"><title>job " << a.job << "</title></rect>\n";
      }
    } else {
      // Without ids: draw the assignment as a block anchored at row 0 —
      // an area-true (if overlapping) picture of the load.
      out << "<rect x=\"" << x << "\" y=\"0\" width=\"" << w
          << "\" height=\"" << a.nprocs * row_px - 1 << "\" fill=\""
          << color(a.job) << "\" fill-opacity=\"0.45\"><title>job " << a.job
          << "</title></rect>\n";
    }
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace lgs
