// Processor-availability profile: a step function of used processors over
// time.  This is the workhorse behind conservative/EASY backfilling and
// reservation support (§5.1): schedulers query the earliest interval where
// a job fits and commit allotments into the profile.
//
// Representation: a flat, sorted array of breakpoints, each carrying the
// *absolute* usage level on [t, next t) — a skyline — rather than a
// std::map of usage deltas.  Consequences for the hot paths:
//   * used_at        O(log B) binary search;
//   * fits           O(log B + k), k = breakpoints inside the interval;
//   * earliest_fit   one left-to-right sweep, O(B) (was O(B²): a
//                    candidate loop re-running fits per breakpoint);
//   * commit/release splice at most two breakpoints and adjust levels in
//                    between (O(log B + k) work after the splice; the
//                    vector splice itself is a memmove).
// The old map-based implementation is kept as an executable spec in
// tests/reference_profile.h for differential tests and benchmarks.
//
// Epsilon rule at interval boundaries: for a query over [start, start+d),
// breakpoints within kTimeEps of the *end* are ignored (a job ending
// exactly there cannot conflict), while every breakpoint strictly after
// `start` counts.  The historical code also skipped breakpoints in
// (start, start + kTimeEps], which let fits() approve intervals that
// exceed capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace lgs {

class Profile {
 public:
  /// A profile over `machines` identical processors, initially all free.
  explicit Profile(int machines);

  int machines() const { return machines_; }

  /// Processors in use at time t (right-continuous: a job ending at t no
  /// longer counts, a job starting at t does).
  int used_at(Time t) const;
  int free_at(Time t) const { return machines_ - used_at(t); }

  /// True if `procs` processors are continuously free over [start,
  /// start+duration).
  bool fits(Time start, Time duration, int procs) const;

  /// Earliest start >= from where `procs` processors stay free for
  /// `duration`.  Always exists (the profile is finite), possibly after the
  /// last event.
  Time earliest_fit(Time from, Time duration, int procs) const;

  /// Commit `procs` processors over [start, start+duration).  Throws
  /// std::logic_error if that would exceed capacity.
  void commit(Time start, Time duration, int procs);

  /// Remove a previously committed block (exact same parameters).  Only
  /// the two breakpoints bounding the released interval are candidates
  /// for compaction — no full rescan.
  void release(Time start, Time duration, int procs);

  /// All event times (profile breakpoints), sorted.
  std::vector<Time> breakpoints() const;

  /// Number of breakpoints currently stored.
  std::size_t breakpoint_count() const { return steps_.size(); }

  /// Pre-size the breakpoint array for `n` expected events.
  void reserve(std::size_t n) { steps_.reserve(n); }

 private:
  // Usage is `used` on [t, next step's t); 0 before the first step.
  struct Step {
    Time t;
    int used;
  };

  /// Index of the step whose segment contains t, or npos when t precedes
  /// every breakpoint (usage 0).
  std::size_t segment_of(Time t) const;

  /// Ensure a breakpoint exists exactly at t (splitting the containing
  /// segment if needed); returns its index.
  std::size_t ensure_breakpoint(Time t);

  /// Drop step `i` if its level equals its predecessor's (compaction).
  void compact_at(std::size_t i);

  int machines_;
  std::vector<Step> steps_;
};

}  // namespace lgs
