// Processor-availability profile: a step function of used processors over
// time.  This is the workhorse behind conservative/EASY backfilling and
// reservation support (§5.1): schedulers query the earliest interval where
// a job fits and commit allotments into the profile.
#pragma once

#include <map>
#include <vector>

#include "core/types.h"

namespace lgs {

class Profile {
 public:
  /// A profile over `machines` identical processors, initially all free.
  explicit Profile(int machines);

  int machines() const { return machines_; }

  /// Processors in use at time t (right-continuous: a job ending at t no
  /// longer counts, a job starting at t does).
  int used_at(Time t) const;
  int free_at(Time t) const { return machines_ - used_at(t); }

  /// True if `procs` processors are continuously free over [start,
  /// start+duration).
  bool fits(Time start, Time duration, int procs) const;

  /// Earliest start >= from where `procs` processors stay free for
  /// `duration`.  Always exists (the profile is finite), possibly after the
  /// last event.
  Time earliest_fit(Time from, Time duration, int procs) const;

  /// Commit `procs` processors over [start, start+duration).  Throws
  /// std::logic_error if that would exceed capacity.
  void commit(Time start, Time duration, int procs);

  /// Remove a previously committed block (exact same parameters).
  void release(Time start, Time duration, int procs);

  /// All event times (profile breakpoints), sorted.
  std::vector<Time> breakpoints() const;

 private:
  int machines_;
  // Map time -> usage delta at that instant; running prefix sum = usage.
  std::map<Time, int> delta_;
};

}  // namespace lgs
