// JobStore: hot/cold SoA job storage — the trace representation of the
// arena-backed replay stack.
//
// The legacy `JobSet` (std::vector<Job>) stays the interchange type for
// the offline pt/ algorithms, but a fat Job embeds an ExecModel variant
// with a potentially heap-allocated table, so a million-job trace paid a
// million small allocations — and every deep copy across the grid stack
// (split_by_community, GridSim pending, per-cluster submitted) paid them
// again.  A JobStore keeps:
//
//   * a HOT slab: one 64-byte POD `HotJob` row per job, carrying every
//     field the dynamic engines touch per event (release, weight, due,
//     allotment range, community) plus a compact 24-byte ExecRef exec
//     handle — allocated from a replay arena when one is attached;
//   * a COLD slab: one shared TablePool holding all tabulated execution
//     times ({off,len} descriptors into one contiguous vector).
//
// The store is append-only.  `job(i)` materializes a fat Job on demand
// and `to_jobset()` converts wholesale — the bridge to pt/ code — while
// the engines read HotJob rows in place and evaluate through exec_time /
// exec_useful_limit, bit-identically to the fat path.
#pragma once

#include <cstdint>

#include "core/arena.h"
#include "core/exec_model.h"
#include "core/job.h"

namespace lgs {

/// One hot-slab row.  The ExecRef handle is stored flattened (exec_a /
/// exec_b / exec_c / exec_kind) so the row packs to exactly 64 bytes —
/// one cache line per job.  POD: rows are memcpy-safe and
/// arena-allocatable.
struct HotJob {
  Time release = 0.0;
  double weight = 1.0;
  Time due = kNoDueDate;
  double exec_a = 0.0;
  double exec_b = 0.0;
  JobId id = kInvalidJob;
  std::int32_t min_procs = 1;
  std::int32_t max_procs = 1;
  std::int32_t community = 0;
  std::uint32_t exec_c = 0;
  ExecKind exec_kind = ExecKind::kSeq;
  JobKind kind = JobKind::kMoldable;

  ExecRef exec_ref() const { return ExecRef{exec_a, exec_b, exec_c, exec_kind}; }
  void set_exec_ref(const ExecRef& r) {
    exec_a = r.a;
    exec_b = r.b;
    exec_c = r.c;
    exec_kind = r.kind;
  }
};
static_assert(sizeof(HotJob) == 64, "one cache line per hot job row");

class JobStore {
 public:
  /// Standalone store (hot slab on the global heap) — workload builders
  /// construct traces this way.
  JobStore() = default;
  /// Arena-backed store: the hot slab lives in `arena` and is released
  /// with it.  The cold TablePool stays on the heap (append-only, sized
  /// by distinct tables, not by jobs).
  explicit JobStore(ArenaRef arena) : hot_(ArenaAllocator<HotJob>(arena)) {}

  JobStore(JobStore&&) = default;
  JobStore& operator=(JobStore&&) = default;
  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  /// Append a fat Job (compacting its ExecModel into the slabs).
  void append(const Job& j);

  /// Append a rigid job directly: no ExecModel, no table — the constant
  /// duration lives inline in the ExecRef (kind kRigidConst).
  /// Bit-identical to append(Job::rigid(...)).
  void append_rigid(JobId id, int procs, Time duration, Time release = 0.0,
                    double weight = 1.0);

  std::size_t size() const { return hot_.size(); }
  bool empty() const { return hot_.empty(); }

  const HotJob& operator[](std::size_t i) const { return hot_[i]; }
  HotJob& operator[](std::size_t i) { return hot_[i]; }
  const TablePool& tables() const { return pool_; }

  void reserve(std::size_t n) { hot_.reserve(n); }

  /// Pass-2 arrival assignment in the trace generators mutates releases
  /// in place.
  void set_release(std::size_t i, Time r) { hot_[i].release = r; }

  /// Execution time of row `i` on k processors (bit-identical to
  /// Job::time on the fat equivalent, minus the range check the engines
  /// already guarantee).
  Time time(std::size_t i, int k) const {
    return exec_time(hot_[i].exec_ref(), pool_, k);
  }

  /// Fastest achievable time given at most m processors — Job::best_time.
  Time best_time(std::size_t i, int m) const;

  /// ExecModel::useful_limit through the compact handle.
  int useful_limit(std::size_t i, int limit) const {
    return exec_useful_limit(hot_[i].exec_ref(), pool_, limit);
  }

  /// Materialize row `i` as a fat Job (rebuilding its ExecModel).
  Job job(std::size_t i) const;

  /// Whole-store conversion — the JobSet view for offline pt/ algorithms
  /// and legacy call sites.
  JobSet to_jobset() const;

  /// Checkpoint surface (core/checkpoint): append one restored row
  /// verbatim (its exec_c already indexes this store's restored pool)
  /// and expose the pool for slab restoration.
  void append_raw(const HotJob& h) { hot_.push_back(h); }
  TablePool& mutable_tables() { return pool_; }

  /// Hot-slab footprint in bytes (capacity, the figure that lands in the
  /// arena or on the heap).
  std::size_t hot_bytes() const { return hot_.capacity() * sizeof(HotJob); }
  /// Cold-slab footprint in bytes.
  std::size_t cold_bytes() const { return pool_.bytes(); }

 private:
  ArenaVec<HotJob> hot_;
  TablePool pool_;
};

/// Build a store from a legacy JobSet (compacting every model).
JobStore to_job_store(const JobSet& jobs, ArenaRef arena = {});

// ---------------------------------------------------------------------------
// Checkpoint serialization helpers (core/checkpoint) shared by every
// engine that snapshots job rows.  All FIELD-WISE — HotJob and the pool
// descriptors carry padding, and raw struct dumps would embed
// nondeterministic bytes into a checksummed snapshot.
// ---------------------------------------------------------------------------

class CheckpointReader;
class CheckpointWriter;

void save_hot_job(CheckpointWriter& w, const HotJob& h);
HotJob load_hot_job(CheckpointReader& r);

void save_table_pool(CheckpointWriter& w, const TablePool& pool);
/// Restores into `pool` (dropping its previous slabs).
void load_table_pool(CheckpointReader& r, TablePool& pool);

/// Whole-store snapshot: pool + every hot row.
void save_job_store(CheckpointWriter& w, const JobStore& store);
/// Restore into an EMPTY store (throws CheckpointError otherwise).
void load_job_store(CheckpointReader& r, JobStore& store);

}  // namespace lgs
