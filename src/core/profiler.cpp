#include "core/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "core/report.h"

namespace lgs::prof {

namespace {

void write_zone_json(JsonWriter& w, const ZoneReport& z) {
  w.begin_object();
  w.key("name").value(z.name);
  w.key("calls").value(z.calls);
  w.key("wall_s").value(z.wall_s);
  w.key("self_s").value(z.self_s);
  if (!z.children.empty()) {
    w.key("children").begin_array();
    for (const ZoneReport& c : z.children) write_zone_json(w, c);
    w.end_array();
  }
  w.end_object();
}

void summarize_zone(std::ostringstream& out, const ZoneReport& z,
                    int depth) {
  std::string label(static_cast<std::size_t>(2 * depth), ' ');
  label += z.name;
  if (label.size() < 44) label.resize(44, ' ');
  char line[128];
  std::snprintf(line, sizeof(line), "%s %12llu %11.6f %11.6f\n",
                label.c_str(), static_cast<unsigned long long>(z.calls),
                z.wall_s, z.self_s);
  out << line;
  for (const ZoneReport& c : z.children) summarize_zone(out, c, depth + 1);
}

}  // namespace

const ZoneReport* Snapshot::find_zone(const std::string& path) const {
  const std::vector<ZoneReport>* level = &roots;
  const ZoneReport* found = nullptr;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t end = std::min(path.find('/', begin), path.size());
    const std::string part = path.substr(begin, end - begin);
    found = nullptr;
    for (const ZoneReport& z : *level)
      if (z.name == part) {
        found = &z;
        break;
      }
    if (found == nullptr) return nullptr;
    level = &found->children;
    begin = end + 1;
  }
  return found;
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  for (const CounterReport& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

void write_json(JsonWriter& w, const Snapshot& s) {
  w.begin_object();
  w.key("enabled").value(s.enabled);
  w.key("threads_merged").value(s.threads_merged);
  w.key("zones").begin_array();
  for (const ZoneReport& z : s.roots) write_zone_json(w, z);
  w.end_array();
  w.key("counters").begin_object();
  for (const CounterReport& c : s.counters) w.key(c.name).value(c.value);
  w.end_object();
  w.end_object();
}

std::string summary(const Snapshot& s) {
  std::ostringstream out;
  if (!s.enabled) {
    out << "profiler compiled out (LGS_PROFILING=OFF)\n";
    return out.str();
  }
  out << "zone                                              "
         "calls      wall_s      self_s\n";
  for (const ZoneReport& z : s.roots) summarize_zone(out, z, 0);
  if (!s.counters.empty()) {
    out << "counters:\n";
    for (const CounterReport& c : s.counters)
      out << "  " << c.name << (c.high_water ? " (high water)" : "") << " = "
          << c.value << "\n";
  }
  return out.str();
}

}  // namespace lgs::prof

#if LGS_PROFILING

#include <memory>
#include <mutex>

namespace lgs::prof {

namespace detail {

namespace {

/// Process-wide site + thread registry.  Mutated only on cold paths
/// (site registration, thread birth/death, snapshot/reset).
struct Registry {
  std::mutex mutex;
  std::vector<std::string> zone_names;
  std::vector<std::string> counter_names;
  std::vector<bool> counter_high_water;
  /// Live thread states, owned here (never freed while the thread runs).
  std::vector<std::unique_ptr<ThreadState>> live;
  /// Aggregate of exited threads, merged at thread destruction.
  ThreadState retired;
  int retired_count = 0;
  /// Tick-frequency calibration anchor (taken at registry birth).
  Ticks tick0;
  std::chrono::steady_clock::time_point time0;

  Registry() : tick0(now_ticks()), time0(std::chrono::steady_clock::now()) {}
};

Registry& registry() {
  static Registry* r = new Registry;  // immortal: threads may outlive main
  return *r;
}

/// Merge `src`'s subtree children into the node-owning `dst` state under
/// `dst_parent` (site-keyed).  Used for thread retirement (tick domain).
void merge_tree(ThreadState& dst, Node* dst_parent, const Node* src_child) {
  for (const Node* s = src_child; s != nullptr; s = s->next_sibling) {
    Node* d = nullptr;
    for (Node* c = dst_parent->first_child; c != nullptr;
         c = c->next_sibling)
      if (c->site == s->site) {
        d = c;
        break;
      }
    if (d == nullptr) {
      Node* prev_current = dst.current;
      dst.current = dst_parent;
      d = dst.enter(s->site);  // allocates + links under dst_parent
      dst.current = prev_current;
    }
    d->calls += s->calls;
    d->total += s->total;
    merge_tree(dst, d, s->first_child);
  }
}

/// True when no node of the sibling list (or its descendants) ever
/// accumulated anything — the shape left behind by reset() in live
/// threads, which must not resurface as zero-call zones.
bool subtree_empty(const Node* n) {
  for (; n != nullptr; n = n->next_sibling)
    if (n->calls != 0 || n->total != 0 || !subtree_empty(n->first_child))
      return false;
  return true;
}

/// Merge one thread's tree into the report (seconds domain).  Children
/// keep first-entry order; threads merge in registration order.
void merge_report(std::vector<ZoneReport>& out, const Node* child,
                  const std::vector<std::string>& names,
                  double seconds_per_tick) {
  for (const Node* s = child; s != nullptr; s = s->next_sibling) {
    if (s->calls == 0 && s->total == 0 && subtree_empty(s->first_child))
      continue;
    ZoneReport* dst = nullptr;
    for (ZoneReport& z : out)
      if (z.name == names[s->site]) {
        dst = &z;
        break;
      }
    if (dst == nullptr) {
      out.emplace_back();
      dst = &out.back();
      dst->name = names[s->site];
    }
    dst->calls += s->calls;
    dst->wall_s += static_cast<double>(s->total) * seconds_per_tick;
    merge_report(dst->children, s->first_child, names, seconds_per_tick);
  }
}

void fill_self_times(std::vector<ZoneReport>& zones) {
  for (ZoneReport& z : zones) {
    double child_wall = 0.0;
    for (const ZoneReport& c : z.children) child_wall += c.wall_s;
    // An open child (zone torn down by exception mid-run) can make the
    // sum overshoot by rounding; clamp rather than report negatives.
    z.self_s = std::max(0.0, z.wall_s - child_wall);
    fill_self_times(z.children);
  }
}

void clear_state(ThreadState& ts) {
  // Zero totals but keep the node structure: live threads may hold
  // `current` pointers into their tree mid-zone (reset is documented
  // quiescent, but a stale pointer must still not dangle).
  struct Walker {
    static void zero(Node* n) {
      for (; n != nullptr; n = n->next_sibling) {
        n->calls = 0;
        n->total = 0;
        zero(n->first_child);
      }
    }
  };
  Walker::zero(ts.root.first_child);
  for (CounterCell& c : ts.counters) c.value = 0;
}

void merge_counters(std::vector<std::uint64_t>& totals,
                    const std::vector<bool>& high_water,
                    const ThreadState& ts) {
  for (std::size_t i = 0; i < ts.counters.size() && i < totals.size(); ++i) {
    if (high_water[i])
      totals[i] = std::max(totals[i], ts.counters[i].value);
    else
      totals[i] += ts.counters[i].value;
  }
}

}  // namespace

#if !(defined(__x86_64__) || defined(__i386__))
Ticks now_ticks() {
  return static_cast<Ticks>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

ZoneSite::ZoneSite(const char* name) {
  // A name IS the zone: several textual macro sites may share one (e.g.
  // the same phase instrumented in two branches), so reuse the id —
  // otherwise the merged report would depend on which site ran first.
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (std::size_t i = 0; i < r.zone_names.size(); ++i)
    if (r.zone_names[i] == name) {
      id = static_cast<std::uint32_t>(i);
      return;
    }
  id = static_cast<std::uint32_t>(r.zone_names.size());
  r.zone_names.emplace_back(name);
}

CounterSite::CounterSite(const char* name, bool high_water) {
  // Same dedup as zones: two textual sites bumping one counter name
  // must share a cell, or each would report only its own share.  The
  // merge kind has to match too — a name used both as a sum counter
  // and a high-water mark stays two counters (and a naming bug).
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (std::size_t i = 0; i < r.counter_names.size(); ++i)
    if (r.counter_names[i] == name && r.counter_high_water[i] == high_water) {
      id = static_cast<std::uint32_t>(i);
      return;
    }
  id = static_cast<std::uint32_t>(r.counter_names.size());
  r.counter_names.emplace_back(name);
  r.counter_high_water.push_back(high_water);
}

void ThreadState::release_all() {
  root.first_child = nullptr;
  current = &root;
  nodes_.clear();
  counters.clear();
}

Node* ThreadState::enter_cold(std::uint32_t site) {
  nodes_.push_back(std::make_unique<Node>());
  Node* n = nodes_.back().get();
  n->site = site;
  n->parent = current;
  // Append (not prepend) so first-entry order survives into reports.
  Node** tail = &current->first_child;
  while (*tail != nullptr) tail = &(*tail)->next_sibling;
  *tail = n;
  current = n;
  return n;
}

void ThreadState::grow_counters(std::size_t id) {
  counters.resize(std::max(id + 1, counters.size() * 2));
}

ThreadState& make_thread_state() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.live.push_back(std::make_unique<ThreadState>());
  return *r.live.back();
}

namespace {
/// Guard whose destructor retires the thread.  Separate from the
/// tls_cache() pointer so the fast path never pays the guard's
/// init/dtor bookkeeping.
struct Retirer {
  ThreadState* state = nullptr;
  ~Retirer() {
    if (state != nullptr) {
      tls_cache() = nullptr;
      retire_thread_state(state);
    }
  }
};
thread_local Retirer retirer;
}  // namespace

ThreadState& tls_register() {
  ThreadState& ts = make_thread_state();
  retirer.state = &ts;
  tls_cache() = &ts;
  return ts;
}

void retire_thread_state(ThreadState* ts) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  merge_tree(r.retired, &r.retired.root, ts->root.first_child);
  if (ts->counters.size() > r.retired.counters.size())
    r.retired.counters.resize(ts->counters.size());
  for (std::size_t i = 0; i < ts->counters.size(); ++i) {
    if (i < r.counter_high_water.size() && r.counter_high_water[i])
      r.retired.counters[i].value =
          std::max(r.retired.counters[i].value, ts->counters[i].value);
    else
      r.retired.counters[i].value += ts->counters[i].value;
  }
  ++r.retired_count;
  for (auto it = r.live.begin(); it != r.live.end(); ++it)
    if (it->get() == ts) {
      r.live.erase(it);
      break;
    }
}

}  // namespace detail

Snapshot snapshot() {
  using namespace detail;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);

  // Calibrate ticks -> seconds against the wall clock span since the
  // registry was born (microsecond-exact over any bench-scale run).
  const double span_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - r.time0)
                            .count();
  const double span_ticks = static_cast<double>(now_ticks() - r.tick0);
  const double seconds_per_tick =
      span_ticks > 0.0 && span_s > 0.0 ? span_s / span_ticks : 0.0;

  Snapshot s;
  s.enabled = true;
  s.threads_merged = static_cast<int>(r.live.size()) + r.retired_count;

  std::vector<std::uint64_t> totals(r.counter_names.size(), 0);
  merge_counters(totals, r.counter_high_water, r.retired);
  merge_report(s.roots, r.retired.root.first_child, r.zone_names,
               seconds_per_tick);
  for (const auto& ts : r.live) {
    merge_counters(totals, r.counter_high_water, *ts);
    merge_report(s.roots, ts->root.first_child, r.zone_names,
                 seconds_per_tick);
  }
  fill_self_times(s.roots);

  s.counters.reserve(totals.size());
  for (std::size_t i = 0; i < totals.size(); ++i)
    s.counters.push_back(
        CounterReport{r.counter_names[i], totals[i], r.counter_high_water[i]});
  std::sort(s.counters.begin(), s.counters.end(),
            [](const CounterReport& a, const CounterReport& b) {
              return a.name < b.name;
            });
  return s;
}

void reset() {
  using namespace detail;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  // Live threads keep their node structure (their `current` pointers
  // stay valid) with totals zeroed; the retired aggregate has no live
  // pointers and is dropped outright.
  for (const auto& ts : r.live) clear_state(*ts);
  r.retired.release_all();
  r.retired_count = 0;
}

}  // namespace lgs::prof

#endif  // LGS_PROFILING
