// Arena-backed replay memory: one allocation lifetime per replay.
//
// The dynamic engines (sim/, exp/) used to allocate per-replay state —
// job slabs, queues, dispatch scratch, grid bookkeeping — piecemeal with
// process-lifetime `new`, so a million-job replay's memory cost scaled
// with allocator jitter and fragmentation instead of with live data.
// This module makes a replay ONE contiguous allocation lifetime:
//
//   * `Arena`      — a bump allocator over geometrically-growing malloc
//                    blocks.  alloc() is a pointer bump; the whole
//                    lifetime is released in O(blocks) (`reset()` keeps
//                    the blocks for reuse, the destructor returns them).
//                    Requests larger than a block get a dedicated
//                    oversized block, so any size works.
//   * mark/rewind  — a nestable scratch facility: take a `Mark`, allocate
//                    freely, `rewind()` to drop everything since (see
//                    `ArenaScratch` for the RAII form).  Rewinds nest.
//   * `ArenaRef`   — a nullable arena handle: code written against it
//                    allocates from the referenced arena when one is
//                    attached and falls back to the global heap when not,
//                    so arena-aware containers work standalone.
//   * `ArenaAllocator<T>` — std-compatible allocator over an ArenaRef;
//                    `ArenaVec<T>` is the vector typedef the engines use.
//   * `RingVec<T>` — a POD ring deque (push/pop both ends, middle
//                    insert/erase, random access) whose single buffer
//                    grows geometrically from the arena — the queue
//                    representation for OnlineCluster's priority files.
//
// ASan integration: when built under AddressSanitizer (the CI sanitize
// job), arena memory is manually poisoned — a fresh block is poisoned
// wall to wall, alloc() unpoisons exactly the returned range, and
// reset()/rewind() re-poison what they reclaim.  Use-after-reset and
// intra-arena overflows (every allocation keeps a poisoned redzone gap)
// therefore fault exactly like heap bugs instead of being masked by
// block reuse.  Define LGS_ARENA_NO_ASAN to opt out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

// Feature detection: manual poisoning is active when ASan compiled the
// TU (gcc defines __SANITIZE_ADDRESS__, clang exposes __has_feature).
#if !defined(LGS_ARENA_NO_ASAN)
#  if defined(__SANITIZE_ADDRESS__)
#    define LGS_ARENA_ASAN 1
#  elif defined(__has_feature)
#    if __has_feature(address_sanitizer)
#      define LGS_ARENA_ASAN 1
#    endif
#  endif
#endif
#ifndef LGS_ARENA_ASAN
#  define LGS_ARENA_ASAN 0
#endif

#if LGS_ARENA_ASAN
#  include <sanitizer/asan_interface.h>
#  define LGS_ARENA_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#  define LGS_ARENA_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#  define LGS_ARENA_POISON(addr, size) ((void)(addr), (void)(size))
#  define LGS_ARENA_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace lgs {

/// Allocator introspection, exported into BENCH_scale.json (the first
/// slice of the always-on observability roadmap item).  All byte counts
/// are payload capacity, excluding the block headers.
struct ArenaStats {
  std::size_t bytes_reserved = 0;  ///< capacity of all blocks currently held
  std::size_t bytes_used = 0;      ///< bytes currently bump-allocated
  std::size_t bytes_peak = 0;      ///< high-water of bytes_used over lifetime
  std::size_t blocks = 0;          ///< chained normal blocks
  std::size_t oversized_blocks = 0;  ///< dedicated blocks (> block capacity)
  std::uint64_t resets = 0;          ///< whole-lifetime releases (reset())
};

/// Bump arena.  Not thread-safe: one arena per replay / per sweep cell /
/// per simulator, which is exactly what keeps parallel cells from
/// contending on the global allocator.
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockSize = std::size_t{1} << 20;
  /// Poisoned gap kept between consecutive allocations under ASan so an
  /// overflow into the *next* arena object faults (zero otherwise — the
  /// layout only changes when the sanitizer is watching).
  static constexpr std::size_t kRedzone = LGS_ARENA_ASAN ? 16 : 0;

  explicit Arena(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size < kMinBlockSize ? kMinBlockSize : block_size) {}
  ~Arena() { free_all(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `size` bytes aligned to `align` (any power of two,
  /// including over-aligned requests past alignof(max_align_t)).  The
  /// memory is uninitialized and lives until reset()/rewind()/dtor.
  void* alloc(std::size_t size, std::size_t align = alignof(std::max_align_t));

  /// Typed array allocation (uninitialized; T must be trivially
  /// destructible — the arena never runs destructors).
  template <class T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without running destructors");
    return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
  }

  /// Rewind the whole arena: O(blocks), keeps every block for reuse (the
  /// reset-churn pattern of repeated replays), drops oversized blocks
  /// (they were sized for one specific request).  All prior allocations
  /// become invalid — and poisoned under ASan.
  void reset();

  /// Nestable scratch: capture the current position...
  struct Mark {
    void* block = nullptr;        ///< current block at mark time
    std::size_t offset = 0;       ///< bump offset inside it
    std::size_t used = 0;         ///< bytes_used at mark time
    void* oversized_head = nullptr;  ///< oversized chain at mark time
  };
  Mark mark() const {
    return Mark{current_, current_ ? used_in_current_ : 0, stats_.bytes_used,
                oversized_head_};
  }

  /// ...and drop everything allocated since `m` (poisoning it under
  /// ASan).  Marks must be rewound innermost-first; rewinding an outer
  /// mark discards inner ones.
  void rewind(const Mark& m);

  const ArenaStats& stats() const { return stats_; }
  std::size_t block_size() const { return block_size_; }

 private:
  static constexpr std::size_t kMinBlockSize = 4096;

  struct BlockHeader {
    BlockHeader* next = nullptr;  ///< chain of same-kind blocks
    std::size_t capacity = 0;     ///< payload bytes after the header
  };
  static unsigned char* payload(BlockHeader* b) {
    return reinterpret_cast<unsigned char*>(b + 1);
  }

  void* alloc_oversized(std::size_t size, std::size_t align);
  BlockHeader* new_block(std::size_t capacity);
  void free_all();

  std::size_t block_size_;
  BlockHeader* head_ = nullptr;     ///< first normal block in chain order
  BlockHeader* current_ = nullptr;  ///< block being bumped (tail of chain)
  std::size_t used_in_current_ = 0;
  BlockHeader* oversized_head_ = nullptr;  ///< LIFO chain of oversized blocks
  ArenaStats stats_;
};

/// RAII nested scratch scope: everything allocated from `arena` during
/// the scope's lifetime is dropped (and poisoned) on exit.
class ArenaScratch {
 public:
  explicit ArenaScratch(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScratch() { arena_.rewind(mark_); }
  ArenaScratch(const ArenaScratch&) = delete;
  ArenaScratch& operator=(const ArenaScratch&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Nullable arena handle: the allocation interface arena-aware code is
/// written against.  With an arena attached, allocations come from it
/// (and deallocation is a no-op — the replay lifetime owns the memory);
/// detached, it falls back to the global heap so the same container
/// types work outside any replay.
class ArenaRef {
 public:
  ArenaRef() = default;
  /*implicit*/ ArenaRef(Arena& arena) : arena_(&arena) {}
  /*implicit*/ ArenaRef(Arena* arena) : arena_(arena) {}

  bool attached() const { return arena_ != nullptr; }
  Arena* arena() const { return arena_; }

  void* allocate(std::size_t size, std::size_t align) const {
    if (arena_ != nullptr) return arena_->alloc(size, align);
    return ::operator new(size, std::align_val_t(align));
  }
  void deallocate(void* p, std::size_t size, std::size_t align) const {
    if (arena_ != nullptr) return;  // whole-lifetime release
    (void)size;
    ::operator delete(p, std::align_val_t(align));
  }

  friend bool operator==(const ArenaRef& a, const ArenaRef& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaRef& a, const ArenaRef& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

/// std-compatible allocator over an ArenaRef.  Stateful; containers
/// constructed with different refs compare unequal (per-replay arenas
/// never silently mix).
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  /// The arena outlives every container of a replay by construction;
  /// keeping the ref on swap/move is both correct and cheapest.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  /*implicit*/ ArenaAllocator(ArenaRef ref) : ref_(ref) {}
  template <class U>
  /*implicit*/ ArenaAllocator(const ArenaAllocator<U>& other)
      : ref_(other.ref()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(ref_.allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    ref_.deallocate(p, n * sizeof(T), alignof(T));
  }

  ArenaRef ref() const { return ref_; }

  template <class U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) {
    return a.ref() == b.ref();
  }
  template <class U>
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator<U>& b) {
    return !(a == b);
  }

 private:
  ArenaRef ref_;
};

/// The vector type of the arena-backed engines: a plain std::vector
/// whose buffers come from the replay arena (or the heap when the ref is
/// detached).  Geometric growth abandons old buffers in the arena; they
/// are reclaimed wholesale at reset, bounding waste at ~2x peak.
template <class T>
using ArenaVec = std::vector<T, ArenaAllocator<T>>;

/// POD ring deque on an arena: random access by logical index, O(1)
/// amortized push at both ends, middle insert/erase by shifting the tail
/// side (what a replay queue actually needs: FCFS head pops, §1.2
/// priority-file insertions, policy picks from the middle).  The single
/// power-of-two buffer grows geometrically; with a bump arena the
/// abandoned buffers are reclaimed at reset, so total waste is bounded
/// by ~2x the peak footprint.
template <class T>
class RingVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "RingVec is for POD entries");

 public:
  RingVec() = default;
  explicit RingVec(ArenaRef ref) : ref_(ref) {}
  RingVec(const RingVec&) = delete;
  RingVec& operator=(const RingVec&) = delete;
  ~RingVec() {
    if (buf_ != nullptr) ref_.deallocate(buf_, cap_ * sizeof(T), alignof(T));
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
  const T& operator[](std::size_t i) const { return buf_[wrap(head_ + i)]; }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() { head_ = 0; size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) regrow(size_ + 1);
    buf_[wrap(head_ + size_)] = v;
    ++size_;
  }

  void push_front(const T& v) {
    if (size_ == cap_) regrow(size_ + 1);
    head_ = cap_ ? wrap(head_ + cap_ - 1) : 0;
    buf_[head_] = v;
    ++size_;
  }

  void pop_front() {
    head_ = wrap(head_ + 1);
    --size_;
    if (size_ == 0) head_ = 0;
  }

  void pop_back() {
    --size_;
    if (size_ == 0) head_ = 0;
  }

  /// Insert before logical index `i` (i == size() appends), shifting
  /// whichever side of the ring is shorter — O(min(i, size - i)), so
  /// head- and tail-adjacent insertions are O(1).
  void insert(std::size_t i, const T& v) {
    if (size_ == cap_) regrow(size_ + 1);
    if (i < size_ - i) {
      // Shift [0, i) one slot toward the front and move the head back.
      head_ = wrap(head_ + cap_ - 1);
      ++size_;
      for (std::size_t j = 0; j < i; ++j)
        buf_[wrap(head_ + j)] = buf_[wrap(head_ + j + 1)];
    } else {
      for (std::size_t j = size_; j > i; --j)
        buf_[wrap(head_ + j)] = buf_[wrap(head_ + j - 1)];
      ++size_;
    }
    buf_[wrap(head_ + i)] = v;
  }

  /// Erase logical index `i`, shifting whichever side is shorter —
  /// O(min(i, size - i - 1)).  In particular erase(0) IS pop_front: the
  /// O(1) head pop the FCFS replay hot path relies on (an always-tail
  /// shift here turns a deep-backlog replay quadratic).
  void erase(std::size_t i) {
    if (i < size_ - i - 1) {
      // Shift [0, i) one slot toward the back and advance the head.
      for (std::size_t j = i; j > 0; --j)
        buf_[wrap(head_ + j)] = buf_[wrap(head_ + j - 1)];
      pop_front();
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j)
        buf_[wrap(head_ + j)] = buf_[wrap(head_ + j + 1)];
      pop_back();
    }
  }

  std::size_t capacity() const { return cap_; }

 private:
  std::size_t wrap(std::size_t i) const { return i & (cap_ - 1); }

  void regrow(std::size_t need) {
    std::size_t cap = cap_ ? cap_ * 2 : 8;
    while (cap < need) cap *= 2;
    T* fresh = static_cast<T*>(ref_.allocate(cap * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = (*this)[i];
    if (buf_ != nullptr) ref_.deallocate(buf_, cap_ * sizeof(T), alignof(T));
    buf_ = fresh;
    cap_ = cap;
    head_ = 0;
  }

  ArenaRef ref_;
  T* buf_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lgs
