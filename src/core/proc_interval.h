// Interval-run free-list of processor ids.
//
// The sweep in core/proc_assign used to track free processors as a
// std::set<ProcId> — O(n log n) to acquire n processors and one
// tree node per *processor*.  Free sets are overwhelmingly runs of
// consecutive ids, so this allocator stores maximal disjoint runs
// [lo, hi) keyed by lo: acquire/release cost O(log k) in the number of
// *fragments* k (plus the runs actually consumed), independent of the
// processor count.  Acquisition order is bit-identical to the set-based
// sweep (lowest ids first; contiguous first-fit at the lowest base) —
// tests/test_proc_interval.cpp proves it differentially against a
// std::set oracle under randomized churn.
#pragma once

#include <map>
#include <vector>

#include "core/types.h"

namespace lgs {

/// A run of consecutive processor ids, half-open: [lo, hi).
struct ProcRun {
  ProcId lo = 0;
  ProcId hi = 0;

  int length() const { return hi - lo; }
  bool operator==(const ProcRun& o) const { return lo == o.lo && hi == o.hi; }
};

class ProcIntervalSet {
 public:
  /// Empty set (no processors free).
  ProcIntervalSet() = default;

  /// All of [0, nprocs) free.
  explicit ProcIntervalSet(int nprocs);

  int free_count() const { return free_count_; }

  /// Number of maximal free runs — the k in the O(log k) bounds.
  std::size_t fragment_count() const { return runs_.size(); }

  /// Take the `n` lowest-numbered free processors (possibly spanning
  /// several runs), appending the taken runs to `out` in ascending
  /// order.  Returns false (taking nothing) when fewer than n are free.
  bool acquire_lowest(int n, std::vector<ProcRun>& out);

  /// First-fit contiguous acquisition: carve [base, base+n) out of the
  /// lowest-based run of length >= n.  Returns the base, or -1 when no
  /// run is long enough (fragmentation) — the caller's fallback story,
  /// see assign_processors_contiguous.
  ProcId acquire_contiguous(int n);

  /// Return a previously acquired run, merging with free neighbors.
  /// Throws std::logic_error if any id in the run is already free.
  void release(ProcRun run);

  /// Release every run of `runs` (a job's full allocation).
  void release_all(const std::vector<ProcRun>& runs);

  /// The free runs in ascending order (for tests and introspection).
  std::vector<ProcRun> runs() const;

 private:
  std::map<ProcId, ProcId> runs_;  ///< lo -> hi, disjoint, non-adjacent
  int free_count_ = 0;
};

/// Append every id of `run` (ascending) to `out` — how a job's acquired
/// runs expand into the Assignment::procs id list.
void expand_runs(const std::vector<ProcRun>& runs, std::vector<ProcId>& out);

}  // namespace lgs
