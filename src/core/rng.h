// Deterministic random number generation.
//
// Every stochastic component of the library (workload generators, arrival
// processes, work stealing, tie-breaking ablations) draws from an `Rng`
// seeded explicitly, so that tests and benchmark figures are reproducible
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <random>

namespace lgs {

/// Mix a base seed with a stream index into an independent seed
/// (splitmix64 finalizer over the combined key).  Keyed purely on
/// (base, index): derived streams never depend on the order they are
/// created in, which is what makes parallel sweeps and multi-cluster
/// simulations bit-identical at any thread count — see
/// docs/ARCHITECTURE.md, "The determinism contract".
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + index * 0x9e3779b97f4a7c15ull;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Thin deterministic wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Exponential with given rate (mean 1/rate). Used for Poisson arrivals.
  double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  /// Log-normal draw; classic model for job runtimes in cluster traces.
  double lognormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  /// Bernoulli draw.
  bool flip(double p_true) {
    std::bernoulli_distribution d(p_true);
    return d(engine_);
  }

  /// Derive an independent child stream (for splitting generators across
  /// sub-components without correlating their draws).
  Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lgs
