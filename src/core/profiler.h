// Embedded always-on profiler (ROADMAP item 4): scoped zones, monotonic
// counters and high-water marks compiled into the engine hot paths.
//
//   void OnlineCluster::dispatch() {
//     LGS_PROF_ZONE("cluster.dispatch");            // RAII wall-time zone
//     LGS_PROF_COUNT("cluster.dispatch_cycles", 1); // monotonic counter
//     LGS_PROF_HIGHWATER("cluster.queue_depth_highwater", queue_.size());
//     ...
//   }
//
// Design (after the thread-local scoped-zone profilers of lightweight C
// perf libraries): every macro site owns a lazily registered *site* (one
// mutex-protected registration per site per process, then a plain id),
// and all accumulation is thread-local — a zone edge costs one timestamp
// read (TSC on x86, steady_clock elsewhere) plus a pointer walk over the
// current node's children, a counter costs one indexed add.  No locks, no
// allocation on the hot path once a site's node exists.  Zones nest into
// a per-thread call tree, so the same site reached through different
// parents stays separate ("grid.run / sim.run / cluster.dispatch" vs a
// sweep cell's private subtree) and parallel sweep cells on different
// worker threads never interleave.
//
// Aggregation happens only at report time: snapshot() merges every
// thread's tree (plus the retired aggregate of threads that already
// exited, e.g. sweep-pool workers) path-by-path into one Snapshot, and
// converts ticks to seconds with a frequency calibrated against
// steady_clock over the process lifetime.  snapshot()/reset() must run at
// a quiescent point — no other thread inside a zone — which every bench
// guarantees by joining its pool first.
//
// Compile-out: configure with -DLGS_PROFILING=OFF and every macro expands
// to nothing (counter value expressions are NOT evaluated — profiling
// arguments must be side-effect free), the disabled ZoneScope is an empty
// type (static_assert below), and src/core/profiler.cpp drops the whole
// detail machinery from the library (CI greps the archive for
// lgs::prof::detail symbols to prove it).  The report-side API
// (snapshot/reset/write_json/summary) stays link-compatible and returns
// empty data, so callers need no #ifdefs.
#pragma once

#ifndef LGS_PROFILING
#define LGS_PROFILING 1
#endif

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace lgs {
class JsonWriter;
}

namespace lgs::prof {

/// One aggregated zone of the merged call tree.
struct ZoneReport {
  std::string name;            ///< site name ("cluster.dispatch")
  std::uint64_t calls = 0;     ///< completed entries
  double wall_s = 0.0;         ///< inclusive wall time
  double self_s = 0.0;         ///< wall_s minus the children's wall_s
  std::vector<ZoneReport> children;
};

/// One aggregated counter.  `value` is the sum across threads for
/// LGS_PROF_COUNT sites and the max across threads for
/// LGS_PROF_HIGHWATER sites.
struct CounterReport {
  std::string name;
  std::uint64_t value = 0;
  bool high_water = false;
};

/// Merged, tick-converted view of every thread's accumulation.
struct Snapshot {
  bool enabled = false;
  int threads_merged = 0;
  std::vector<ZoneReport> roots;
  std::vector<CounterReport> counters;  ///< sorted by name

  /// Look up a zone by '/'-joined path from a root ("grid.run/sim.run");
  /// nullptr when absent.
  const ZoneReport* find_zone(const std::string& path) const;
  /// Counter value by name (0 when absent).
  std::uint64_t counter(const std::string& name) const;
};

constexpr bool enabled() { return LGS_PROFILING != 0; }

/// Render `s` as a JSON *value* (an object) through `w` — the "profile"
/// section of BENCH_*.json.  Keys inside deliberately avoid the gated
/// `*_per_sec` / `*_bytes` suffixes: raw zone walls are noisy, so the
/// benches derive their gated per-phase metrics from counter deltas
/// instead.
void write_json(JsonWriter& w, const Snapshot& s);

/// Human-readable zone tree + counter table (the --profile run summary).
std::string summary(const Snapshot& s);

#if LGS_PROFILING

/// Merge every thread's tree and counters (quiescent callers only).
Snapshot snapshot();
/// Zero all accumulation, live and retired (quiescent callers only).
void reset();

namespace detail {

using Ticks = std::uint64_t;

#if defined(__x86_64__) || defined(__i386__)
inline Ticks now_ticks() { return __builtin_ia32_rdtsc(); }
#else
Ticks now_ticks();  // steady_clock fallback (profiler.cpp)
#endif

/// Registered zone macro site: one per LGS_PROF_ZONE textual occurrence,
/// constructed on first execution (thread-safe function-local static).
struct ZoneSite {
  explicit ZoneSite(const char* name);
  std::uint32_t id;
};

/// Registered counter site; `high_water` picks max-merge over sum-merge.
struct CounterSite {
  CounterSite(const char* name, bool high_water);
  std::uint32_t id;
};

/// Node of one thread's private call tree.  Children are a singly linked
/// list scanned linearly on entry — fanout per parent is a handful of
/// sites, and the match is a single integer compare per hop.
struct Node {
  std::uint32_t site = 0;
  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* next_sibling = nullptr;
  std::uint64_t calls = 0;
  Ticks total = 0;
};

struct CounterCell {
  std::uint64_t value = 0;
};

/// All accumulation of one thread.  Owned by the global registry; when
/// the thread exits its totals merge into the retired aggregate so sweep
/// pools (fresh std::threads per sweep) neither lose data nor leak one
/// state per short-lived thread.
struct ThreadState {
  Node root;               ///< sentinel: the top-of-stack anchor
  Node* current = &root;   ///< innermost open zone
  std::vector<CounterCell> counters;  ///< indexed by counter-site id

  Node* enter(std::uint32_t site) {
    for (Node* c = current->first_child; c != nullptr; c = c->next_sibling)
      if (c->site == site) {
        current = c;
        return c;
      }
    return enter_cold(site);
  }
  void exit(Node* n, Ticks elapsed) {
    ++n->calls;
    n->total += elapsed;
    current = n->parent;
  }
  void count(std::uint32_t id, std::uint64_t n) {
    if (id >= counters.size()) grow_counters(id);
    counters[id].value += n;
  }
  void high_water(std::uint32_t id, std::uint64_t v) {
    if (id >= counters.size()) grow_counters(id);
    if (v > counters[id].value) counters[id].value = v;
  }
  /// Drop the whole tree and all counters (retired aggregate only — a
  /// live thread's `current` may point into its tree).
  void release_all();

 private:
  Node* enter_cold(std::uint32_t site);  ///< allocate + link a new child
  void grow_counters(std::size_t id);

  std::vector<std::unique_ptr<Node>> nodes_;  ///< stable node storage
};

ThreadState& make_thread_state();           ///< register this thread (cold)
void retire_thread_state(ThreadState* ts);  ///< merge + drop at thread exit

/// Plain-pointer cache of this thread's state.  A raw pointer (not the
/// registering guard object itself) keeps the hot path to one TLS load
/// and a null test — no thread-local init guard on every counter bump.
/// Function-local so the constant-initialized, trivially-destructible
/// definition is visible in every TU: the compiler emits a direct TLS
/// access with neither an init guard nor the extern-variable thread
/// wrapper call (which GCC's UBSan null check misfires on).
inline ThreadState*& tls_cache() {
  static thread_local ThreadState* cache = nullptr;
  return cache;
}
ThreadState& tls_register();  ///< cold: register + install cache/retirement

inline ThreadState& tls() {
  ThreadState* s = tls_cache();
  if (s == nullptr) return tls_register();
  return *s;
}

/// The RAII zone guard.  One timestamp read per edge; the thread state
/// pointer is cached so the destructor skips the TLS lookup.
class ZoneScope {
 public:
  explicit ZoneScope(const ZoneSite& site)
      : ts_(&tls()), node_(ts_->enter(site.id)), start_(now_ticks()) {}
  ~ZoneScope() { ts_->exit(node_, now_ticks() - start_); }
  ZoneScope(const ZoneScope&) = delete;
  ZoneScope& operator=(const ZoneScope&) = delete;

 private:
  ThreadState* ts_;
  Node* node_;
  Ticks start_;
};

}  // namespace detail

#else  // !LGS_PROFILING

inline Snapshot snapshot() { return Snapshot{}; }
inline void reset() {}

namespace detail {
/// Disabled stand-in, so the compile-out contract is checkable: zones
/// must cost literally nothing, starting with their storage.
struct ZoneScope {};
static_assert(std::is_empty_v<ZoneScope>,
              "disabled profiler zones must occupy no storage");
}  // namespace detail

#endif  // LGS_PROFILING

}  // namespace lgs::prof

#define LGS_PROF_CAT2(a, b) a##b
#define LGS_PROF_CAT(a, b) LGS_PROF_CAT2(a, b)

#if LGS_PROFILING

/// Open a wall-time zone named `name` (a string literal) until the end of
/// the enclosing scope.
#define LGS_PROF_ZONE(name)                                       \
  static ::lgs::prof::detail::ZoneSite LGS_PROF_CAT(              \
      lgs_prof_site_, __LINE__){name};                            \
  ::lgs::prof::detail::ZoneScope LGS_PROF_CAT(lgs_prof_zone_,     \
                                              __LINE__) {         \
    LGS_PROF_CAT(lgs_prof_site_, __LINE__)                        \
  }

/// Add `n` to the monotonic counter `name` (sum-merged across threads).
#define LGS_PROF_COUNT(name, n)                                          \
  do {                                                                   \
    static ::lgs::prof::detail::CounterSite lgs_prof_csite{name, false}; \
    ::lgs::prof::detail::tls().count(lgs_prof_csite.id,                  \
                                     static_cast<std::uint64_t>(n));     \
  } while (0)

/// Raise the high-water mark `name` to `v` (max-merged across threads).
#define LGS_PROF_HIGHWATER(name, v)                                     \
  do {                                                                  \
    static ::lgs::prof::detail::CounterSite lgs_prof_hsite{name, true}; \
    ::lgs::prof::detail::tls().high_water(                              \
        lgs_prof_hsite.id, static_cast<std::uint64_t>(v));              \
  } while (0)

#else  // !LGS_PROFILING

// Compiled out: no site, no storage, and the value expressions are never
// evaluated (sizeof keeps the names odr-used so -Werror=unused stays
// quiet without costing a cycle).
#define LGS_PROF_ZONE(name) ((void)0)
#define LGS_PROF_COUNT(name, n) ((void)sizeof(n))
#define LGS_PROF_HIGHWATER(name, v) ((void)sizeof(v))

#endif  // LGS_PROFILING
