#include "core/arena.h"

#include <cstdlib>

namespace lgs {
namespace {

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::BlockHeader* Arena::new_block(std::size_t capacity) {
  // The payload must be able to serve any alignment request up to the
  // allocation granularity of malloc itself; over-aligned requests are
  // handled by bumping inside the payload.
  void* raw = std::malloc(sizeof(BlockHeader) + capacity);
  if (raw == nullptr) throw std::bad_alloc();
  BlockHeader* b = new (raw) BlockHeader;
  b->capacity = capacity;
  stats_.bytes_reserved += capacity;
  LGS_ARENA_POISON(payload(b), capacity);
  return b;
}

void* Arena::alloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  // Worst case inside a fresh block: alignment slack for an over-aligned
  // request plus the trailing redzone.  Anything that cannot fit goes to
  // a dedicated block.
  if (size + align + kRedzone > block_size_) return alloc_oversized(size, align);

  if (current_ != nullptr) {
    std::uintptr_t base = reinterpret_cast<std::uintptr_t>(payload(current_));
    std::uintptr_t at = align_up(base + used_in_current_, align);
    std::size_t end = (at - base) + size + kRedzone;
    if (end <= current_->capacity) {
      stats_.bytes_used += end - used_in_current_;
      used_in_current_ = end;
      if (stats_.bytes_used > stats_.bytes_peak)
        stats_.bytes_peak = stats_.bytes_used;
      LGS_ARENA_UNPOISON(reinterpret_cast<void*>(at), size);
      return reinterpret_cast<void*>(at);
    }
    if (current_->next != nullptr) {
      // reset() kept this block; reuse it.
      stats_.bytes_used += current_->capacity - used_in_current_;
      current_ = current_->next;
      used_in_current_ = 0;
      return alloc(size, align);
    }
  }

  BlockHeader* b = new_block(block_size_);
  ++stats_.blocks;
  if (current_ != nullptr) {
    // Account the tail we abandon in the previous block so bytes_used
    // stays monotone between resets (it measures arena consumption, not
    // live payload).
    stats_.bytes_used += current_->capacity - used_in_current_;
    current_->next = b;
  } else {
    head_ = b;
  }
  current_ = b;
  used_in_current_ = 0;
  return alloc(size, align);
}

void* Arena::alloc_oversized(std::size_t size, std::size_t align) {
  // Dedicated block sized for exactly this request (plus alignment
  // slack); chained LIFO so rewind() can drop the ones taken after a
  // mark.
  std::size_t capacity = size + align + kRedzone;
  BlockHeader* b = new_block(capacity);
  ++stats_.oversized_blocks;
  b->next = oversized_head_;
  oversized_head_ = b;
  stats_.bytes_used += capacity;
  if (stats_.bytes_used > stats_.bytes_peak)
    stats_.bytes_peak = stats_.bytes_used;
  std::uintptr_t at =
      align_up(reinterpret_cast<std::uintptr_t>(payload(b)), align);
  LGS_ARENA_UNPOISON(reinterpret_cast<void*>(at), size);
  return reinterpret_cast<void*>(at);
}

void Arena::reset() {
  for (BlockHeader* b = head_; b != nullptr; b = b->next)
    LGS_ARENA_POISON(payload(b), b->capacity);
  while (oversized_head_ != nullptr) {
    BlockHeader* b = oversized_head_;
    oversized_head_ = b->next;
    stats_.bytes_reserved -= b->capacity;
    --stats_.oversized_blocks;
    std::free(b);
  }
  current_ = head_;
  used_in_current_ = 0;
  stats_.bytes_used = 0;
  ++stats_.resets;
}

void Arena::rewind(const Mark& m) {
  if (m.block == nullptr && head_ != nullptr) {
    // Mark taken before the first allocation: rewind everything but keep
    // normal blocks (same reclamation policy as reset, without counting
    // as a whole-lifetime release).
    for (BlockHeader* b = head_; b != nullptr; b = b->next)
      LGS_ARENA_POISON(payload(b), b->capacity);
    current_ = head_;
    used_in_current_ = 0;
  } else if (m.block != nullptr) {
    BlockHeader* mb = static_cast<BlockHeader*>(m.block);
    LGS_ARENA_POISON(payload(mb) + m.offset, mb->capacity - m.offset);
    for (BlockHeader* b = mb->next; b != nullptr; b = b->next)
      LGS_ARENA_POISON(payload(b), b->capacity);
    current_ = mb;
    used_in_current_ = m.offset;
  }
  while (oversized_head_ != nullptr && oversized_head_ != m.oversized_head) {
    BlockHeader* b = oversized_head_;
    oversized_head_ = b->next;
    stats_.bytes_reserved -= b->capacity;
    --stats_.oversized_blocks;
    std::free(b);
  }
  stats_.bytes_used = m.used;
}

void Arena::free_all() {
  while (head_ != nullptr) {
    BlockHeader* b = head_;
    head_ = b->next;
    LGS_ARENA_UNPOISON(payload(b), b->capacity);
    std::free(b);
  }
  while (oversized_head_ != nullptr) {
    BlockHeader* b = oversized_head_;
    oversized_head_ = b->next;
    LGS_ARENA_UNPOISON(payload(b), b->capacity);
    std::free(b);
  }
  current_ = nullptr;
  used_in_current_ = 0;
}

}  // namespace lgs
