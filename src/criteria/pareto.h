// Pareto analysis for bi-criteria comparisons (§4.4).
//
// The paper's point about Cmax vs Σ wᵢCᵢ is that no schedule optimizes
// both ("it is easy to find examples where there is no schedule reaching
// the optimal value for both criteria").  This helper extracts the
// non-dominated subset of scored alternatives so benches and tests can
// state that claim precisely: the bi-criteria algorithm should sit on or
// near the front, and on antagonistic instances the front has > 1 point.
#pragma once

#include <string>
#include <vector>

namespace lgs {

/// One alternative scored on two minimization criteria.
struct BiPoint {
  std::string label;
  double a = 0.0;  ///< first criterion (e.g. Cmax)
  double b = 0.0;  ///< second criterion (e.g. Σ wᵢCᵢ)
};

/// True iff x dominates y: no worse on both, strictly better on one.
bool dominates(const BiPoint& x, const BiPoint& y);

/// Non-dominated subset, sorted by increasing `a` (ties by `b`, then
/// label for determinism).  Duplicate coordinates are kept once (first
/// label wins).
std::vector<BiPoint> pareto_front(std::vector<BiPoint> points);

/// Distance-to-front diagnostic: 0 when `p` is on the front, otherwise
/// the smallest relative slack ε such that scaling p by 1/(1+ε) makes it
/// non-dominated.
double pareto_slack(const BiPoint& p, const std::vector<BiPoint>& front);

}  // namespace lgs
