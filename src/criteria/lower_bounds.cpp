#include "criteria/lower_bounds.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace lgs {

Time cmax_lower_bound(const JobSet& jobs, int m) {
  Time area = total_min_work(jobs) / m;
  Time critical = 0.0;
  for (const Job& j : jobs)
    critical = std::max(critical, j.release + j.best_time(m));
  return std::max(area, critical);
}

double sum_weighted_completion_lower_bound(const JobSet& jobs, int m) {
  // (a) release + best-time bound.
  double lb_release = 0.0;
  for (const Job& j : jobs)
    lb_release += j.weight * (j.release + j.best_time(m));

  // (b) squashed-area bound: relax to one machine of speed m running the
  // minimal work of each job, ordered by WSPT (optimal for 1 machine, no
  // releases); the resulting Σ wᵢCᵢ lower-bounds any m-machine schedule
  // because C_j ≥ (work finished by C_j)/m for every prefix.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // WSPT: increasing minwork/weight.
    return jobs[a].min_work() * jobs[b].weight <
           jobs[b].min_work() * jobs[a].weight;
  });
  double prefix = 0.0, lb_squash = 0.0;
  for (std::size_t idx : order) {
    prefix += jobs[idx].min_work();
    lb_squash += jobs[idx].weight * prefix / m;
  }
  return std::max(lb_release, lb_squash);
}

double sum_completion_lower_bound(const JobSet& jobs, int m) {
  JobSet unit = jobs;
  for (Job& j : unit) j.weight = 1.0;
  return sum_weighted_completion_lower_bound(unit, m);
}

}  // namespace lgs
