// Lower bounds on the optimal value of the §3 criteria.
//
// The simulation ratios of Fig. 2 — and our guarantee benches — compare a
// schedule's criteria to *lower bounds* on the off-line optimum, because
// computing the optimum is NP-hard for every problem in the paper.  All
// bounds here are provably valid for moldable jobs with monotone models.
#pragma once

#include "core/job.h"

namespace lgs {

/// Lower bound on the optimal makespan of `jobs` on `m` machines:
///   max( total minimal work / m,  max_j (r_j + best_time_j(m)) ).
/// The first term is the area argument of §4.1 (W ≤ λm), the second the
/// critical-job argument (∀j, p_j ≤ λ, shifted by release dates).
Time cmax_lower_bound(const JobSet& jobs, int m);

/// Lower bound on the optimal Σ wᵢCᵢ on `m` machines: the max of
///  (a) Σ wᵢ (rᵢ + best_timeᵢ(m))            — each job must run, and
///  (b) the squashed-area bound: jobs sorted by WSPT on minimal work on a
///      single machine of speed m (Eastman–Even–Isaacs relaxation).
double sum_weighted_completion_lower_bound(const JobSet& jobs, int m);

/// Lower bound on Σ Cᵢ (the unweighted specialization of the above).
double sum_completion_lower_bound(const JobSet& jobs, int m);

}  // namespace lgs
