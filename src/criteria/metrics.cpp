#include "criteria/metrics.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace lgs {

Metrics compute_metrics(const JobSet& jobs, const Schedule& s) {
  std::unordered_map<JobId, const Assignment*> by_id;
  for (const Assignment& a : s.assignments()) by_id[a.job] = &a;

  Metrics m;
  m.jobs = static_cast<int>(jobs.size());
  double total_work = 0.0;
  for (const Job& j : jobs) {
    const auto it = by_id.find(j.id);
    if (it == by_id.end())
      throw std::invalid_argument("job missing from schedule in metrics");
    const Assignment& a = *it->second;
    const Time c = a.end();
    m.cmax = std::max(m.cmax, c);
    m.sum_completion += c;
    m.sum_weighted += j.weight * c;
    const double flow = c - j.release;
    m.mean_flow += flow;
    m.max_flow = std::max(m.max_flow, flow);
    const double best = j.best_time(s.machines());
    const double slow = flow / best;
    m.mean_slowdown += slow;
    m.max_slowdown = std::max(m.max_slowdown, slow);
    if (j.due != kNoDueDate && c > j.due) {
      ++m.late_count;
      const double tard = c - j.due;
      m.sum_tardiness += tard;
      m.max_tardiness = std::max(m.max_tardiness, tard);
    }
    total_work += static_cast<double>(a.nprocs) * a.duration;
  }
  if (!jobs.empty()) {
    m.mean_flow /= static_cast<double>(jobs.size());
    m.mean_slowdown /= static_cast<double>(jobs.size());
  }
  if (m.cmax > 0)
    m.utilization = total_work / (static_cast<double>(s.machines()) * m.cmax);
  return m;
}

double throughput(const Schedule& s, Time horizon) {
  if (horizon <= 0) throw std::invalid_argument("horizon must be positive");
  int done = 0;
  for (const Assignment& a : s.assignments())
    if (leq_eps(a.end(), horizon)) ++done;
  return done / horizon;
}

}  // namespace lgs
