#include "criteria/pareto.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lgs {

bool dominates(const BiPoint& x, const BiPoint& y) {
  return x.a <= y.a && x.b <= y.b && (x.a < y.a || x.b < y.b);
}

std::vector<BiPoint> pareto_front(std::vector<BiPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const BiPoint& x, const BiPoint& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.label < y.label;
            });
  std::vector<BiPoint> front;
  double best_b = std::numeric_limits<double>::infinity();
  for (const BiPoint& p : points) {
    if (p.b < best_b) {
      // Drop exact duplicates of the previous front point.
      if (!front.empty() && front.back().a == p.a && front.back().b == p.b)
        continue;
      front.push_back(p);
      best_b = p.b;
    }
  }
  return front;
}

double pareto_slack(const BiPoint& p, const std::vector<BiPoint>& front) {
  double slack = 0.0;
  for (const BiPoint& f : front) {
    if (!dominates(f, p)) continue;
    // Smallest ε with p/(1+ε) undominated by f: need p.a/(1+ε) < f.a or
    // p.b/(1+ε) < f.b → ε > min(p.a/f.a, p.b/f.b) − 1.
    const double need_a = f.a > 0 ? p.a / f.a : 0.0;
    const double need_b = f.b > 0 ? p.b / f.b : 0.0;
    slack = std::max(slack, std::min(need_a, need_b) - 1.0);
  }
  return std::max(0.0, slack);
}

}  // namespace lgs
