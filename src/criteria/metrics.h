// Optimization criteria (paper §3): makespan, average (weighted) completion
// time, stretch, throughput, tardiness, and normalized variants.
//
// All metrics are computed from a (JobSet, Schedule) pair so that every
// scheduling algorithm can be scored on every criterion — the heart of the
// "which policy for which application" matrix.
#pragma once

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

/// All §3 criteria for one schedule.
struct Metrics {
  Time cmax = 0.0;                 ///< max completion time
  double sum_completion = 0.0;     ///< Σ Cᵢ
  double sum_weighted = 0.0;       ///< Σ wᵢCᵢ
  double mean_flow = 0.0;          ///< mean of Cᵢ − rᵢ (the paper's "stretch")
  double max_flow = 0.0;           ///< max of Cᵢ − rᵢ (longest user wait)
  double mean_slowdown = 0.0;      ///< mean of (Cᵢ − rᵢ)/best_timeᵢ, ≥ 1
  double max_slowdown = 0.0;
  int late_count = 0;              ///< jobs finishing after their due date
  double sum_tardiness = 0.0;      ///< Σ max(0, Cᵢ − dᵢ)
  double max_tardiness = 0.0;
  double utilization = 0.0;        ///< Σ work / (m · Cmax)
  int jobs = 0;
};

/// Compute all criteria.  Jobs absent from the schedule are an error
/// (validate first); the slowdown normalizer is the job's best time on the
/// full machine.
Metrics compute_metrics(const JobSet& jobs, const Schedule& s);

/// Throughput (§3 steady state): completed jobs per unit time within
/// [0, horizon].
double throughput(const Schedule& s, Time horizon);

}  // namespace lgs
