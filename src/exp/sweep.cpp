#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/profiler.h"
#include "core/rng.h"
#include "core/validate.h"
#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"

namespace lgs {

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index) {
  // The shared splitmix64 mixer (core/rng.h) — also used by the grid
  // engine for per-cluster workload and volatility streams, so every
  // layer derives independent streams the same order-free way.
  return mix_seed(base_seed, cell_index);
}

std::vector<std::uint64_t> SweepSpec::replicate_seeds() const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> derived;
  derived.reserve(static_cast<std::size_t>(std::max(0, replicates)));
  for (int r = 0; r < replicates; ++r)
    derived.push_back(derive_cell_seed(base_seed, static_cast<std::uint64_t>(r)));
  return derived;
}

std::size_t SweepSpec::cell_count() const {
  return replicate_seeds().size() * machine_sizes.size() * apps.size() *
         policies.size();
}

std::vector<SweepCell> expand_cells(const SweepSpec& spec) {
  std::vector<SweepCell> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (std::uint64_t seed : spec.replicate_seeds())
    for (int m : spec.machine_sizes)
      for (ApplicationClass app : spec.apps)
        for (const std::string& policy : spec.policies)
          cells.push_back(SweepCell{index++, policy, app, seed, m});
  return cells;
}

int resolved_worker_count(std::size_t n, int threads) {
  int workers = threads > 0
                    ? threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers), n));
}

void parallel_for_index(std::size_t n, int threads,
                        const std::function<void(std::size_t)>& fn) {
  const int workers = resolved_worker_count(n, threads);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining indices so sibling workers stop promptly.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

/// Workload context shared by every policy cell of one
/// (seed, machines, app) row: the JobSet and the §3 lower bounds are
/// functions of the row coordinates only, so computing them once per row
/// instead of once per cell removes a |policies|-fold redundancy.
struct RowContext {
  JobSet jobs;
  Time cmax_lb = 0.0;
  double wc_lb = 0.0;
};

RowContext make_row_context(const SweepSpec& spec, ApplicationClass app,
                            int machines, std::uint64_t seed) {
  RowContext ctx;
  ctx.jobs =
      make_application_workload(app, spec.jobs_per_class, machines, seed);
  ctx.cmax_lb = cmax_lower_bound(ctx.jobs, machines);
  ctx.wc_lb = sum_weighted_completion_lower_bound(ctx.jobs, machines);
  return ctx;
}

CellResult evaluate_cell_with_context(const SweepSpec& spec,
                                      const SweepCell& cell,
                                      const RowContext& ctx) {
  LGS_PROF_ZONE("sweep.cell");
  const auto t0 = std::chrono::steady_clock::now();
  CellResult result;
  result.cell = cell;

  const Schedule s = run_policy(cell.policy, ctx.jobs, cell.machines);

  if (spec.validate_schedules) {
    for (const Violation& v : validate(ctx.jobs, s)) {
      result.violations.push_back(
          (v.job == kInvalidJob ? std::string("global")
                                : "job " + std::to_string(v.job)) +
          ": " + v.what);
    }
  }

  const Metrics metrics = compute_metrics(ctx.jobs, s);
  result.cmax = metrics.cmax;
  result.sum_weighted = metrics.sum_weighted;
  result.score.policy = cell.policy;
  result.score.cmax_ratio = metrics.cmax / std::max(ctx.cmax_lb, kTimeEps);
  result.score.sum_wc_ratio =
      metrics.sum_weighted / std::max(ctx.wc_lb, kTimeEps);
  result.score.mean_flow = metrics.mean_flow;
  result.score.max_flow = metrics.max_flow;
  result.score.utilization = metrics.utilization;

  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace

CellResult evaluate_cell(const SweepSpec& spec, const SweepCell& cell) {
  // Standalone entry point: rebuild the row context from the cell's own
  // coordinates.  Bit-identical to the pooled path in run_sweep, which
  // shares one context across the row's cells — the context is a pure
  // function of (spec, cell) either way.
  const RowContext ctx =
      make_row_context(spec, cell.app, cell.machines, cell.seed);
  return evaluate_cell_with_context(spec, cell, ctx);
}

SweepResult run_sweep(const SweepSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepCell> cells = expand_cells(spec);
  const std::size_t per_row = spec.policies.size();
  const std::size_t n_rows = per_row ? cells.size() / per_row : 0;

  SweepResult result;
  result.cells.resize(cells.size());
  result.threads_used = resolved_worker_count(
      std::max<std::size_t>(cells.size(), 1), spec.threads);

  // Phase 1: one workload + lower-bound context per row, in parallel.
  // Grid order puts a row's cells at [r*per_row, (r+1)*per_row), so the
  // row's coordinates are those of its first cell.
  std::vector<RowContext> contexts(n_rows);
  parallel_for_index(n_rows, spec.threads, [&](std::size_t r) {
    const SweepCell& first = cells[r * per_row];
    contexts[r] =
        make_row_context(spec, first.app, first.machines, first.seed);
  });

  // Phase 2: every cell, against its row's shared (read-only) context.
  parallel_for_index(cells.size(), spec.threads, [&](std::size_t i) {
    result.cells[i] =
        evaluate_cell_with_context(spec, cells[i], contexts[i / per_row]);
  });

  for (const CellResult& c : result.cells)
    result.violation_count += c.violations.size();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

std::vector<MatrixRow> evaluate_policy_matrix(int m, int jobs_per_class,
                                              std::uint64_t seed) {
  SweepSpec spec;
  spec.machine_sizes = {m};
  spec.seeds = {seed};
  spec.jobs_per_class = jobs_per_class;
  // The matrix is the user-facing artifact: always validated.
  spec.validate_schedules = true;
  const SweepResult result = run_sweep(spec);
  return matrix_from_sweep(spec, result, m, seed);
}

std::vector<MatrixRow> matrix_from_sweep(const SweepSpec& spec,
                                         const SweepResult& result,
                                         int machines, std::uint64_t seed) {
  const std::vector<std::uint64_t> seeds = spec.replicate_seeds();
  const auto seed_it = std::find(seeds.begin(), seeds.end(), seed);
  const auto m_it = std::find(spec.machine_sizes.begin(),
                              spec.machine_sizes.end(), machines);
  if (seed_it == seeds.end() || m_it == spec.machine_sizes.end())
    throw std::invalid_argument("matrix_from_sweep: replicate not in spec");
  const std::size_t seed_pos =
      static_cast<std::size_t>(seed_it - seeds.begin());
  const std::size_t m_pos =
      static_cast<std::size_t>(m_it - spec.machine_sizes.begin());

  const std::size_t per_app = spec.policies.size();
  const std::size_t per_m = spec.apps.size() * per_app;
  const std::size_t per_seed = spec.machine_sizes.size() * per_m;

  std::vector<MatrixRow> rows;
  rows.reserve(spec.apps.size());
  for (std::size_t a = 0; a < spec.apps.size(); ++a) {
    MatrixRow row;
    row.app = spec.apps[a];
    double best_cmax = kTimeInfinity, best_wc = kTimeInfinity,
           best_maxflow = kTimeInfinity;
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      const CellResult& cell =
          result.cells[seed_pos * per_seed + m_pos * per_m + a * per_app + p];
      row.scores.push_back(cell.score);
      // Same strict-< / first-wins tie-breaking over the same raw
      // criteria as the serial oracle.
      if (cell.cmax < best_cmax) {
        best_cmax = cell.cmax;
        row.best_for_cmax = cell.cell.policy;
      }
      if (cell.sum_weighted < best_wc) {
        best_wc = cell.sum_weighted;
        row.best_for_sum_wc = cell.cell.policy;
      }
      if (cell.score.max_flow < best_maxflow) {
        best_maxflow = cell.score.max_flow;
        row.best_for_max_flow = cell.cell.policy;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace lgs
