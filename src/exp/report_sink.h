// JSON report sink for experiment sweeps.
//
// Serializes a (SweepSpec, SweepResult) pair into a single JSON document
// (built on core/report's JsonWriter): the spec echo, every cell with
// its scores, raw criteria, per-cell wall-clock timing and validator
// violations, and the aggregated recommendation matrix per
// (machine size, seed) replicate.  Schema (see README "Running
// experiment sweeps"):
//
//   {
//     "spec": { jobs_per_class, threads, machine_sizes, seeds,
//               policies, apps },
//     "threads_used": N, "wall_ms": T, "violation_count": V,
//     "cells": [ { app, policy, m, seed, cmax, sum_weighted,
//                  cmax_ratio, sum_wc_ratio, mean_flow, max_flow,
//                  utilization, wall_ms, violations: [..] } ],
//     "matrix": [ { m, seed, rows: [ { app, best_for_cmax,
//                  best_for_sum_wc, best_for_max_flow } ] } ]
//   }
//
// Doubles round-trip exactly (max_digits10) so a report can serve as a
// golden file for the determinism tests.
#pragma once

#include <string>

#include "exp/sweep.h"

namespace lgs {

/// Render the full report document.
std::string sweep_report_json(const SweepSpec& spec, const SweepResult& result);

/// Render and write to `path` (throws std::runtime_error on I/O failure).
void write_sweep_report(const std::string& path, const SweepSpec& spec,
                        const SweepResult& result);

}  // namespace lgs
