#include "exp/grid_sweep.h"

#include <algorithm>
#include <chrono>

#include "core/profiler.h"
#include "core/report.h"
#include "core/rng.h"
#include "exp/sweep.h"
#include "sim/shard_sim.h"

namespace lgs {

std::vector<std::uint64_t> GridSweepSpec::replicate_seeds() const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> derived;
  derived.reserve(static_cast<std::size_t>(std::max(0, replicates)));
  for (int r = 0; r < replicates; ++r)
    derived.push_back(mix_seed(base_seed, static_cast<std::uint64_t>(r)));
  return derived;
}

std::vector<std::string> GridSweepSpec::effective_policies() const {
  if (!policies.empty()) return policies;
  return {cluster.policy};
}

std::size_t GridSweepSpec::cell_count() const {
  return replicate_seeds().size() * cluster_counts.size() * skews.size() *
         routings.size() * effective_policies().size();
}

std::vector<GridCell> expand_grid_cells(const GridSweepSpec& spec) {
  std::vector<GridCell> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (std::uint64_t seed : spec.replicate_seeds())
    for (int n : spec.cluster_counts)
      for (double skew : spec.skews)
        for (GridRouting routing : spec.routings)
          for (const std::string& policy : spec.effective_policies())
            cells.push_back(GridCell{index++, n, skew, routing, policy, seed});
  return cells;
}

std::vector<JobSet> make_grid_workloads(const GridSweepSpec& spec,
                                        const GridCell& cell) {
  std::vector<JobSet> locals(static_cast<std::size_t>(cell.clusters));
  for (int i = 0; i < cell.clusters; ++i) {
    Rng rng(mix_seed(cell.seed, static_cast<std::uint64_t>(i)));
    locals[static_cast<std::size_t>(i)] = make_community_workload(
        static_cast<Community>(i % 4), spec.jobs_per_cluster, rng,
        static_cast<JobId>(i) * static_cast<JobId>(spec.jobs_per_cluster),
        spec.time_scale, spec.arrival_window);
  }
  return locals;
}

GridCellResult evaluate_grid_cell(const GridSweepSpec& spec,
                                  const GridCell& cell) {
  LGS_PROF_ZONE("grid_sweep.cell");
  const auto t0 = std::chrono::steady_clock::now();
  GridCellResult result;
  result.cell = cell;

  const LightGrid grid =
      make_skewed_grid(cell.clusters, spec.base_procs, cell.skew);

  GridSimOptions opts;
  opts.routing = cell.routing;
  opts.wait_threshold = spec.wait_threshold;
  opts.migration_penalty = spec.migration_penalty;
  opts.cluster = spec.cluster;
  opts.cluster.policy = cell.policy;
  if (spec.besteffort_runs > 0)
    opts.bags.push_back(ParametricBag{"grid-campaign", spec.besteffort_runs,
                                      spec.besteffort_run_time, 2, 1.0});
  opts.volatility = spec.volatility;
  // Decorrelated from the workload streams (which use indices 0..n-1).
  opts.volatility_seed = mix_seed(cell.seed, 0x564f4cull);

  // Per-cell replay arena: every allocation of this cell's replay —
  // kernel queue, job store, cluster bookkeeping — bumps a private
  // arena, so parallel cells never contend on the global allocator.
  Arena arena;
  GridSimResult r;
  if (spec.grid_threads == 1) {
    GridSim sim(grid, opts, &arena);
    sim.submit_workloads(make_grid_workloads(spec, cell));
    r = sim.run();
    result.violations = validate_grid_result(sim, r);
    result.arena_peak_bytes = sim.arena_stats().bytes_peak;
  } else {
    // Inner-parallel replay: shard this cell's clusters across
    // grid_threads workers.  Bit-identical to the serial branch (the
    // sharding determinism contract), so the axis changes wall-clock
    // only — tests/test_grid_sweep.cpp compares the reports.
    ShardGridSim sim(grid, opts, spec.grid_threads, &arena,
                     spec.shard_placement);
    sim.submit_workloads(make_grid_workloads(spec, cell));
    r = sim.run();
    result.violations = validate_grid_result(sim, r);
    result.arena_peak_bytes = sim.arena_peak_bytes();
  }

  result.horizon = r.horizon;
  result.jobs = r.jobs_completed;
  result.migrations = r.migrations;
  result.mean_flow = r.mean_flow;
  result.mean_wait = r.mean_wait;
  result.mean_slowdown = r.mean_slowdown;
  result.global_utilization = r.global_utilization;
  result.grid_runs_completed = r.grid_runs_completed;
  result.grid_resubmissions = r.grid_resubmissions;
  for (const GridClusterOutcome& c : r.clusters) {
    result.be_kills += c.be.killed;
    result.local_preemptions += c.volatility.local_preemptions;
  }

  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

GridSweepResult run_grid_sweep(const GridSweepSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<GridCell> cells = expand_grid_cells(spec);

  GridSweepResult result;
  result.cells.resize(cells.size());
  result.threads_used = resolved_worker_count(
      std::max<std::size_t>(cells.size(), 1), spec.threads);

  parallel_for_index(cells.size(), spec.threads, [&](std::size_t i) {
    result.cells[i] = evaluate_grid_cell(spec, cells[i]);
  });

  for (const GridCellResult& c : result.cells)
    result.violation_count += c.violations.size();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

std::string grid_report_json(const GridSweepSpec& spec,
                             const GridSweepResult& result,
                             const prof::Snapshot* profile) {
  JsonWriter w;
  w.begin_object();

  w.key("spec").begin_object();
  w.key("base_procs").value(spec.base_procs);
  w.key("jobs_per_cluster").value(spec.jobs_per_cluster);
  w.key("besteffort_runs").value(spec.besteffort_runs);
  w.key("volatility_events").value(spec.volatility.events);
  w.key("threads").value(spec.threads);
  w.key("grid_threads").value(spec.grid_threads);
  w.key("shard_placement").value(to_string(spec.shard_placement));
  w.key("cluster_counts").begin_array();
  for (int n : spec.cluster_counts) w.value(n);
  w.end_array();
  w.key("skews").begin_array();
  for (double s : spec.skews) w.value(s);
  w.end_array();
  w.key("routings").begin_array();
  for (GridRouting r : spec.routings) w.value(to_string(r));
  w.end_array();
  w.key("policies").begin_array();
  for (const std::string& p : spec.effective_policies()) w.value(p);
  w.end_array();
  w.key("seeds").begin_array();
  for (std::uint64_t s : spec.replicate_seeds()) w.value(s);
  w.end_array();
  w.end_object();

  w.key("threads_used").value(result.threads_used);
  w.key("wall_ms").value(result.wall_ms);
  w.key("violation_count").value(
      static_cast<std::uint64_t>(result.violation_count));

  w.key("cells").begin_array();
  for (const GridCellResult& c : result.cells) {
    w.begin_object();
    w.key("clusters").value(c.cell.clusters);
    w.key("skew").value(c.cell.skew);
    w.key("routing").value(to_string(c.cell.routing));
    w.key("policy").value(c.cell.policy);
    w.key("seed").value(c.cell.seed);
    w.key("horizon").value(c.horizon);
    w.key("jobs").value(static_cast<std::uint64_t>(c.jobs));
    w.key("migrations").value(static_cast<std::uint64_t>(c.migrations));
    w.key("mean_flow").value(c.mean_flow);
    w.key("mean_wait").value(c.mean_wait);
    w.key("mean_slowdown").value(c.mean_slowdown);
    w.key("global_utilization").value(c.global_utilization);
    w.key("grid_runs_completed")
        .value(static_cast<std::uint64_t>(c.grid_runs_completed));
    w.key("grid_resubmissions")
        .value(static_cast<std::uint64_t>(c.grid_resubmissions));
    w.key("be_kills").value(static_cast<std::uint64_t>(c.be_kills));
    w.key("local_preemptions")
        .value(static_cast<std::uint64_t>(c.local_preemptions));
    w.key("arena_peak_bytes")
        .value(static_cast<std::uint64_t>(c.arena_peak_bytes));
    w.key("wall_ms").value(c.wall_ms);
    w.key("violations").begin_array();
    for (const std::string& v : c.violations) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  if (profile != nullptr) {
    w.key("profile");
    prof::write_json(w, *profile);
  }

  w.end_object();
  return w.str();
}

void write_grid_report(const std::string& path, const GridSweepSpec& spec,
                       const GridSweepResult& result,
                       const prof::Snapshot* profile) {
  write_file(path, grid_report_json(spec, result, profile));
}

}  // namespace lgs
