#include "exp/report_sink.h"

#include "core/report.h"

namespace lgs {

std::string sweep_report_json(const SweepSpec& spec,
                              const SweepResult& result) {
  JsonWriter w;
  w.begin_object();

  w.key("spec").begin_object();
  w.key("jobs_per_class").value(spec.jobs_per_class);
  w.key("threads").value(spec.threads);
  w.key("machine_sizes").begin_array();
  for (int m : spec.machine_sizes) w.value(m);
  w.end_array();
  w.key("seeds").begin_array();
  for (std::uint64_t s : spec.replicate_seeds()) w.value(s);
  w.end_array();
  w.key("policies").begin_array();
  for (const std::string& p : spec.policies) w.value(p);
  w.end_array();
  w.key("apps").begin_array();
  for (ApplicationClass a : spec.apps) w.value(to_string(a));
  w.end_array();
  w.end_object();

  w.key("threads_used").value(result.threads_used);
  w.key("wall_ms").value(result.wall_ms);
  w.key("violation_count").value(
      static_cast<std::uint64_t>(result.violation_count));

  w.key("cells").begin_array();
  for (const CellResult& c : result.cells) {
    w.begin_object();
    w.key("app").value(to_string(c.cell.app));
    w.key("policy").value(c.cell.policy);
    w.key("m").value(c.cell.machines);
    w.key("seed").value(c.cell.seed);
    w.key("cmax").value(c.cmax);
    w.key("sum_weighted").value(c.sum_weighted);
    w.key("cmax_ratio").value(c.score.cmax_ratio);
    w.key("sum_wc_ratio").value(c.score.sum_wc_ratio);
    w.key("mean_flow").value(c.score.mean_flow);
    w.key("max_flow").value(c.score.max_flow);
    w.key("utilization").value(c.score.utilization);
    w.key("wall_ms").value(c.wall_ms);
    w.key("violations").begin_array();
    for (const std::string& v : c.violations) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("matrix").begin_array();
  for (std::uint64_t seed : spec.replicate_seeds()) {
    for (int m : spec.machine_sizes) {
      w.begin_object();
      w.key("m").value(m);
      w.key("seed").value(seed);
      w.key("rows").begin_array();
      for (const MatrixRow& row : matrix_from_sweep(spec, result, m, seed)) {
        w.begin_object();
        w.key("app").value(to_string(row.app));
        w.key("best_for_cmax").value(row.best_for_cmax);
        w.key("best_for_sum_wc").value(row.best_for_sum_wc);
        w.key("best_for_max_flow").value(row.best_for_max_flow);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
  }
  w.end_array();

  w.end_object();
  return w.str();
}

void write_sweep_report(const std::string& path, const SweepSpec& spec,
                        const SweepResult& result) {
  write_file(path, sweep_report_json(spec, result));
}

}  // namespace lgs
