// Grid axes for the parallel experiment engine: cluster count ×
// heterogeneity skew × routing policy × replicate seed.
//
// Each cell builds a skewed grid (sim/grid_sim `make_skewed_grid`),
// generates one community workload per cluster from order-free
// cell-index-keyed seeds (core/rng.h `mix_seed`), runs a full
// multi-cluster GridSim (best-effort campaign + optional volatility),
// validates the outcome, and scores it.  Exactly like the policy sweep
// in exp/sweep.h, a cell is a pure function of (spec, cell) and results
// land in pre-assigned slots of a grid-ordered vector — so a grid sweep
// is **bit-identical at any thread count** (tests/test_grid_sweep.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/grid_sim.h"
#include "sim/shard_sim.h"

namespace lgs {

/// The cluster-count × skew × routing × queue-policy × seed grid.
struct GridSweepSpec {
  std::vector<int> cluster_counts = {2, 4};
  std::vector<double> skews = {1.0, 2.0};
  std::vector<GridRouting> routings = {GridRouting::kIsolated,
                                       GridRouting::kThreshold,
                                       GridRouting::kEconomic,
                                       GridRouting::kGlobalPlan};
  /// Per-cluster queue policies, by registry name (policy/registry.h):
  /// any registered policy — classical submission systems or batch
  /// policies through the §4.2 adapter — becomes a sweep axis.  Empty
  /// (the default) = a single-point axis of `cluster.policy`, so setting
  /// only the base submission system never gets silently overridden.
  std::vector<std::string> policies;
  /// Replicate seeds.  Empty = derive `replicates` seeds from
  /// `base_seed` via mix_seed(base_seed, replicate_index).
  std::vector<std::uint64_t> seeds;
  std::uint64_t base_seed = 2004;
  int replicates = 1;

  /// Largest cluster's processors (the skew ladder shrinks from here).
  int base_procs = 32;
  /// Local jobs per cluster; cluster i draws the §5.2 community i % 4.
  int jobs_per_cluster = 30;
  Time arrival_window = 40.0;
  /// make_community_workload time scale (hours -> simulated units).
  double time_scale = 0.05;

  /// Best-effort campaign pushed by the central server (0 runs = none).
  int besteffort_runs = 1500;
  Time besteffort_run_time = 0.1;

  /// Capacity churn per cluster (events = 0 -> stable nodes).
  VolatilityProfile volatility;

  /// Per-cluster submission system defaults: kill policy, and the queue
  /// policy used when the `policies` axis above is left empty.
  OnlineCluster::Options cluster;
  /// kThreshold routing parameters.
  double wait_threshold = 2.0;
  double migration_penalty = 0.1;

  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;

  /// Inner per-replay worker threads: each cell runs its grid through
  /// the sharded engine (sim/shard_sim.h) with this many shard workers.
  /// 1 (the default) keeps the serial GridSim; 0 = hardware
  /// concurrency.  Bit-identical at every value by the sharding
  /// determinism contract — a sweep axis for scaling studies, never for
  /// results.
  int grid_threads = 1;

  /// Cluster -> shard placement when grid_threads != 1 (outcome-neutral
  /// by the determinism contract; LPT balances the skewed ladders).
  ShardPlacement shard_placement = ShardPlacement::kLpt;

  /// The replicate seeds actually used (explicit list or derived).
  std::vector<std::uint64_t> replicate_seeds() const;
  /// The queue-policy axis actually swept (explicit list, or the
  /// single-point `cluster.policy` when `policies` is empty).
  std::vector<std::string> effective_policies() const;
  std::size_t cell_count() const;
};

/// One grid point, identified by its coordinates.
struct GridCell {
  std::size_t index = 0;  ///< linear index in grid order
  int clusters = 0;
  double skew = 1.0;
  GridRouting routing{};
  std::string policy;  ///< queue-policy registry name
  std::uint64_t seed = 0;
};

/// Outcome of one cell: the grid-level §5.2 signals plus wall-clock cost
/// and any validate_grid_result violations (empty when clean).
struct GridCellResult {
  GridCell cell;
  Time horizon = 0.0;
  long jobs = 0;
  long migrations = 0;
  double mean_flow = 0.0;
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;
  double global_utilization = 0.0;
  long grid_runs_completed = 0;
  long grid_resubmissions = 0;
  long be_kills = 0;
  long local_preemptions = 0;
  double wall_ms = 0.0;
  /// High-water of the cell's private replay arena (observability; the
  /// deterministic counterpart of bench_scale's process-wide RSS).
  std::size_t arena_peak_bytes = 0;
  std::vector<std::string> violations;
};

struct GridSweepResult {
  /// One entry per cell, in grid order (seed-major, then cluster count,
  /// skew, routing, policy) — independent of thread interleaving.
  std::vector<GridCellResult> cells;
  double wall_ms = 0.0;
  int threads_used = 1;
  std::size_t violation_count = 0;
};

/// Expand the grid into cells, in the deterministic grid order the
/// result vector uses.
std::vector<GridCell> expand_grid_cells(const GridSweepSpec& spec);

/// The per-cluster workloads of one cell: cluster i draws community
/// i % 4 from Rng(mix_seed(cell_seed, i)) — pure in (spec, cell).
std::vector<JobSet> make_grid_workloads(const GridSweepSpec& spec,
                                        const GridCell& cell);

/// Evaluate one cell: build the grid, run the simulation, validate,
/// score.  Pure in (spec, cell).
GridCellResult evaluate_grid_cell(const GridSweepSpec& spec,
                                  const GridCell& cell);

/// Run the whole grid on the thread pool (exp/sweep's
/// parallel_for_index).
GridSweepResult run_grid_sweep(const GridSweepSpec& spec);

namespace prof {
struct Snapshot;  // core/profiler.h
}

/// JSON report (schema in README, "Multi-cluster grid simulation";
/// doubles round-trip exactly, so — after stripping the wall-clock
/// `wall_ms`/`threads` lines, the only nondeterministic fields — reports
/// can serve as golden files for the determinism tests).
///
/// `profile` (optional) appends the embedded profiler's zone tree and
/// counters under a "profile" key.  The default (nullptr) emits the
/// legacy report byte-for-byte — profiler walls are nondeterministic,
/// so the determinism golden tests must never see them.
std::string grid_report_json(const GridSweepSpec& spec,
                             const GridSweepResult& result,
                             const prof::Snapshot* profile = nullptr);

/// Render and write to `path` (throws std::runtime_error on I/O failure).
void write_grid_report(const std::string& path, const GridSweepSpec& spec,
                       const GridSweepResult& result,
                       const prof::Snapshot* profile = nullptr);

}  // namespace lgs
