// Parallel experiment engine: the machinery behind the recommendation
// matrix at scale.
//
// The paper's central artifact is a policy × application matrix; growing
// it (more seeds, more machine sizes, more policies) multiplies the cell
// count, and each cell — generate a workload, run a scheduler, validate,
// score — is embarrassingly parallel.  `SweepSpec` describes the grid,
// `run_sweep` expands it into independent cells executed on a
// std::thread pool, and the result is **bit-identical regardless of
// thread count or scheduling order**: every cell derives its inputs
// purely from its own grid coordinates (cell-index-keyed seeding, no
// shared Rng whose split() order would depend on execution order), and
// results land in pre-assigned slots of a grid-ordered vector.
//
// The old serial path survives as `evaluate_policy_matrix_serial`
// (policy/policy.h) and is the oracle of the differential test in
// tests/test_sweep.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "policy/policy.h"

namespace lgs {

/// Mix a base seed with a cell index into an independent stream seed
/// (splitmix64 finalizer).  Keyed purely on (base, index): two cells
/// never share a generator, and the derivation does not depend on the
/// order cells happen to execute in — unlike chained `Rng::split()`.
std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index);

/// A policy × application-class × seed × machine-size grid.  Policies
/// are addressed by registry name (policy/registry.h), so the axis is
/// user-extensible: register a policy and put its name here.
struct SweepSpec {
  std::vector<std::string> policies = all_policy_names();
  std::vector<ApplicationClass> apps = all_application_classes();
  /// Workload replicate seeds.  Empty = derive `replicates` seeds from
  /// `base_seed` via derive_cell_seed(base_seed, replicate_index).
  std::vector<std::uint64_t> seeds;
  std::uint64_t base_seed = 2004;
  int replicates = 1;
  std::vector<int> machine_sizes = {32};
  int jobs_per_class = 150;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Run core/validate on every cell's schedule and record violations.
  bool validate_schedules = true;

  /// The replicate seeds actually used (explicit list or derived).
  std::vector<std::uint64_t> replicate_seeds() const;

  std::size_t cell_count() const;
};

/// One grid point, identified by its coordinates.
struct SweepCell {
  std::size_t index = 0;  ///< linear index in grid order
  std::string policy;     ///< registry name
  ApplicationClass app{};
  std::uint64_t seed = 0;  ///< workload replicate seed
  int machines = 0;
};

/// Outcome of one cell: the §3 scores plus the raw criteria the
/// recommendation argmins run on, wall-clock cost, and any validator
/// violations (empty when the schedule is clean).
struct CellResult {
  SweepCell cell;
  PolicyScore score;
  Time cmax = 0.0;            ///< raw makespan (argmin for best_for_cmax)
  double sum_weighted = 0.0;  ///< raw Σ wᵢCᵢ (argmin for best_for_sum_wc)
  double wall_ms = 0.0;
  std::vector<std::string> violations;
};

struct SweepResult {
  /// One entry per cell, in grid order (seed-major, then machine size,
  /// application class, policy) — independent of thread interleaving.
  std::vector<CellResult> cells;
  double wall_ms = 0.0;
  int threads_used = 1;
  std::size_t violation_count = 0;
};

/// Expand the grid into cells, in the deterministic grid order the
/// result vector uses.
std::vector<SweepCell> expand_cells(const SweepSpec& spec);

/// Workers a pool will actually use for `n` items: `threads` if
/// positive, else hardware_concurrency, at least 1, clamped to n.
/// Shared by parallel_for_index and the sweep engines' threads_used
/// reporting, so the two can never drift apart.
int resolved_worker_count(std::size_t n, int threads);

/// Run fn(i) for every i in [0, n) on a pool of `threads` std::threads
/// (0 = hardware_concurrency, clamped to n).  Work is handed out by an
/// atomic counter; callers write results into slot i, so output order
/// never depends on scheduling.  The first exception thrown by fn is
/// rethrown on the calling thread after the pool joins.
void parallel_for_index(std::size_t n, int threads,
                        const std::function<void(std::size_t)>& fn);

/// Evaluate one cell: generate the workload from the cell's coordinates,
/// run the policy, validate, score.  Pure in (spec, cell).
CellResult evaluate_cell(const SweepSpec& spec, const SweepCell& cell);

/// Run the whole grid on the thread pool.
SweepResult run_sweep(const SweepSpec& spec);

/// Assemble the recommendation rows for one (machines, seed) replicate
/// from a sweep result — same scores and argmin tie-breaking as the
/// serial oracle, so the two are comparable field-for-field.
std::vector<MatrixRow> matrix_from_sweep(const SweepSpec& spec,
                                         const SweepResult& result,
                                         int machines, std::uint64_t seed);

}  // namespace lgs
