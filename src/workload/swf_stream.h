// Incremental (streaming) SWF parser.
//
// The batch parser (workload/swf.h) needs the whole trace in memory;
// the streaming service mode (sim/stream_sim.h) ingests a live
// submission log that may never end.  SwfStreamParser accepts the trace
// in arbitrary chunks — any split, even mid-line or mid-field — and
// produces exactly the JobStore and SwfParseStats of
// parse_swf_store(whole_text): it IS the primary implementation, the
// batch entry points delegate to it (one feed + finish), so the
// byte-for-byte equivalence holds by construction and is pinned by the
// randomized-chunk differential in tests/test_swf_stream.cpp.
//
// Usage:
//   SwfStreamParser p(opts);
//   while (read(chunk)) p.feed(chunk.data(), chunk.size());
//   p.finish();                       // handles a final unterminated line
//   use(p.stats(), p.store());        // or take_store() to keep the slab
//
// Rows become visible in store() as soon as their line is complete, so
// a service can hand parsed rows onward between feed() calls.
#pragma once

#include <string>

#include "core/job_store.h"
#include "workload/swf.h"

namespace lgs {

class SwfStreamParser {
 public:
  explicit SwfStreamParser(const SwfOptions& opts = {}, ArenaRef arena = {});

  /// Consume the next chunk (any byte split; '\n' terminates lines,
  /// CRLF tolerated).  No-op once done() — the batch parser stops
  /// reading at max_jobs, and so does this one.
  void feed(const char* data, std::size_t n);
  void feed(const std::string& chunk) { feed(chunk.data(), chunk.size()); }

  /// End of input: parses a final unterminated line, exactly like
  /// std::getline on a text without a trailing newline.  Idempotent;
  /// feed() afterwards throws.
  void finish();

  /// True once max_jobs rows were produced (further input is ignored).
  bool done() const { return done_; }

  const SwfParseStats& stats() const { return stats_; }
  /// Rows parsed so far (grows during feed; final after finish).
  const JobStore& store() const { return store_; }
  /// Move the finished store out (call after finish()).
  JobStore take_store();

 private:
  void process_line(std::string line);

  SwfOptions opts_;
  JobStore store_;
  SwfParseStats stats_;
  std::string carry_;  ///< partial line awaiting its terminator
  JobId next_id_ = 0;
  bool done_ = false;
  bool finished_ = false;
};

}  // namespace lgs
