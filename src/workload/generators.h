// Synthetic workload generators.
//
// The paper evaluates by simulation on synthetic workloads ("a cluster of
// 100 machines, parallel and non-parallel jobs", Fig. 2) and motivates the
// grid layer with the CIMENT communities of §5.2 (long sequential physics
// jobs, short computer-science debug jobs, huge multi-parametric
// campaigns).  These generators produce all of those, deterministically
// from an explicit Rng.
#pragma once

#include <string>
#include <vector>

#include "core/job.h"
#include "core/job_store.h"
#include "core/rng.h"

namespace lgs {

/// Parameters for the generic moldable workload (Fig. 2 "Parallel" series).
struct MoldableWorkloadSpec {
  int count = 100;
  /// Sequential times drawn log-uniformly in [t1_min, t1_max].
  Time t1_min = 1.0;
  Time t1_max = 100.0;
  /// Fraction of jobs that are strictly sequential (non-parallel).
  double sequential_fraction = 0.0;
  /// Moldable jobs get a power-law model with alpha in [alpha_min, alpha_max]
  /// (1 = perfect speedup) or, with probability `amdahl_fraction`, an Amdahl
  /// model with serial fraction in [serial_min, serial_max].
  double alpha_min = 0.5;
  double alpha_max = 1.0;
  double amdahl_fraction = 0.5;
  double serial_min = 0.01;
  double serial_max = 0.25;
  /// Allotment cap, as a fraction of the machine (paper: jobs rarely span
  /// the whole cluster).
  int max_procs = 32;
  /// Release dates: uniform in [0, arrival_window] (0 = off-line, all at 0).
  Time arrival_window = 0.0;
  /// Weights uniform in [w_min, w_max] (1,1 = unweighted).
  double w_min = 1.0;
  double w_max = 1.0;
};

/// Generic moldable/sequential mix.  Ids are 0..count-1 in creation order.
JobSet make_moldable_workload(const MoldableWorkloadSpec& spec, Rng& rng);

/// Strictly sequential workload (Fig. 2 "Non Parallel" series): the same
/// spec with every job forced to one processor.
JobSet make_sequential_workload(const MoldableWorkloadSpec& spec, Rng& rng);

/// Rigid workload: processor counts log-uniform in [1, max_procs], durations
/// log-uniform in [t_min, t_max] — the SMART / strip-packing input class.
struct RigidWorkloadSpec {
  int count = 100;
  Time t_min = 1.0;
  Time t_max = 100.0;
  int max_procs = 32;
  Time arrival_window = 0.0;
  double w_min = 1.0;
  double w_max = 1.0;
};
JobSet make_rigid_workload(const RigidWorkloadSpec& spec, Rng& rng);

/// The CIMENT communities of §5.2.
enum class Community {
  kNumericalPhysics,   // long (up to weeks) sequential jobs
  kAstrophysics,       // medium moldable parallel jobs
  kMedicalResearch,    // multi-parametric campaigns (many short runs)
  kComputerScience,    // short debug jobs, bursty
};

const char* to_string(Community c);

/// Jobs matching one community's qualitative profile.  `time_scale` maps
/// "one hour" of the description to simulated time units (default 1 unit =
/// one hour, so physics jobs run hundreds of units).
JobSet make_community_workload(Community c, int count, Rng& rng,
                               JobId first_id = 0, double time_scale = 1.0,
                               Time arrival_window = 0.0);

/// A multi-parametric campaign (§5.2): `runs` executions of the same
/// program, each lasting `run_time` — the paper's canonical best-effort /
/// divisible-load workload.
struct ParametricBag {
  std::string name;
  int runs = 1000;
  Time run_time = 0.25;
  int community = 2;
  double weight = 1.0;
};

/// Expand a bag into individual sequential jobs (ids from `first_id`).
JobSet expand_bag(const ParametricBag& bag, JobId first_id, Time release = 0.0);

/// Shape of a large synthetic replay trace (see make_large_trace).
struct LargeTraceSpec {
  int max_procs = 64;          ///< widest job (powers of two up to this)
  int communities = 4;         ///< community labels in [0, communities)
  int target_capacity = 1024;  ///< total processors the load is sized for
  double load = 0.85;          ///< offered load on target_capacity
  /// Lublin-style arrival bursts: runs of ~mean_burst_jobs arrivals at
  /// burst_intensity times the average rate, separated by matching lulls
  /// (overall rate is preserved, so the offered load stays `load`).
  double burst_intensity = 8.0;
  double mean_burst_jobs = 64.0;
};

/// Large SWF-like trace for the million-job replay bench
/// (bench/bench_scale.cpp): `n` rigid jobs in arrival order (ids
/// 0..n-1, releases non-decreasing), power-of-two widths, per-community
/// log-normal runtimes (long physics tails down to short debug jobs),
/// and bursty arrivals whose overall rate offers `spec.load` on
/// `spec.target_capacity` processors.  Deterministic in (n, seed, spec).
JobSet make_large_trace(std::size_t n, std::uint64_t seed,
                        const LargeTraceSpec& spec = {});

/// Store-building variant of make_large_trace: same RNG draws, same jobs,
/// but rows are written straight into a JobStore hot slab (arena-backed
/// when `arena` is attached) — no per-job ExecModel, no million small
/// heap allocations.  make_large_trace is a to_jobset() view of this.
JobStore make_large_trace_store(std::size_t n, std::uint64_t seed,
                                const LargeTraceSpec& spec = {},
                                ArenaRef arena = {});

/// Renumber ids of `extra` to follow `base` and append (convenience when
/// composing workloads from several generators).
void append_workload(JobSet& base, JobSet extra);

}  // namespace lgs
