#include "workload/swf_stream.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace lgs {

namespace {

struct SwfLine {
  long job_id = -1;
  double submit = -1;
  double wait = -1;
  double run = -1;
  long procs_alloc = -1;
  long procs_req = -1;
  double req_time = -1;
  long status = -1;
  long user = -1;
};

/// Parse one data line; returns false for blank lines.
bool parse_line(const std::string& line, SwfLine* out) {
  std::istringstream in(line);
  std::vector<double> fields;
  double v;
  while (in >> v) fields.push_back(v);
  if (fields.empty()) return false;
  if (fields.size() < 5)
    throw std::invalid_argument("SWF line with fewer than 5 fields: " + line);
  const auto get = [&](std::size_t idx1) {
    return idx1 <= fields.size() ? fields[idx1 - 1] : -1.0;
  };
  out->job_id = static_cast<long>(get(1));
  out->submit = get(2);
  out->wait = get(3);
  out->run = get(4);
  out->procs_alloc = static_cast<long>(get(5));
  out->procs_req = static_cast<long>(get(8));
  out->req_time = get(9);
  out->status = static_cast<long>(get(11));
  out->user = static_cast<long>(get(12));
  return true;
}

}  // namespace

SwfStreamParser::SwfStreamParser(const SwfOptions& opts, ArenaRef arena)
    : opts_(opts), store_(arena) {}

void SwfStreamParser::feed(const char* data, std::size_t n) {
  if (finished_)
    throw std::logic_error("SwfStreamParser::feed after finish()");
  // Past max_jobs the batch parser stops reading lines entirely (stats
  // freeze mid-file); mirror that by dropping the rest of the stream.
  if (done_) return;
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != '\n') continue;
    if (carry_.empty()) {
      process_line(std::string(data + start, i - start));
    } else {
      carry_.append(data + start, i - start);
      process_line(std::move(carry_));
      carry_.clear();
    }
    start = i + 1;
    if (done_) return;
  }
  carry_.append(data + start, n - start);
}

void SwfStreamParser::finish() {
  if (finished_) return;
  finished_ = true;
  // std::getline semantics: a final line without a terminator is still a
  // line.  (After a trailing '\n' the carry is empty and nothing runs.)
  if (!done_ && !carry_.empty()) process_line(std::move(carry_));
  carry_.clear();
  carry_.shrink_to_fit();
}

JobStore SwfStreamParser::take_store() {
  if (!finished_)
    throw std::logic_error("SwfStreamParser::take_store before finish()");
  return std::move(store_);
}

void SwfStreamParser::process_line(std::string line) {
  // CRLF tolerance: line splitting keeps the '\r' of a CRLF ending.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // Header/comment lines start with ';'.  Separators may be any mix of
  // spaces and tabs (parse_line extracts with operator>>).
  const std::size_t first = line.find_first_not_of(" \t");
  if (first == std::string::npos || line[first] == ';') return;
  ++stats_.data_lines;
  SwfLine rec;
  if (!parse_line(line, &rec)) {
    // Content but no leading numeric field (e.g. a header line that
    // lost its ';'): malformed, counted — never silently skipped.
    if (opts_.skip_invalid) {
      ++stats_.dropped_invalid;
      return;
    }
    throw std::invalid_argument("SWF line without numeric fields: " + line);
  }

  long procs = opts_.prefer_requested_procs && rec.procs_req > 0
                   ? rec.procs_req
                   : rec.procs_alloc;
  if (procs <= 0) procs = rec.procs_req;  // fall back either way
  const double run = rec.run;
  if (procs <= 0 || run <= 0) {
    if (opts_.skip_invalid) {
      ++stats_.dropped_invalid;
      return;
    }
    throw std::invalid_argument("SWF job without processors or run time");
  }
  store_.append_rigid(next_id_, static_cast<int>(procs),
                      run * opts_.time_scale,
                      std::max(0.0, rec.submit) * opts_.time_scale);
  store_[store_.size() - 1].community =
      rec.user > 0 ? static_cast<int>(rec.user) : 0;
  ++next_id_;
  ++stats_.parsed;
  if (opts_.max_jobs > 0 &&
      static_cast<int>(store_.size()) >= opts_.max_jobs)
    done_ = true;
}

}  // namespace lgs
