#include "workload/swf.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lgs {

namespace {

struct SwfLine {
  long job_id = -1;
  double submit = -1;
  double wait = -1;
  double run = -1;
  long procs_alloc = -1;
  long procs_req = -1;
  double req_time = -1;
  long status = -1;
  long user = -1;
};

/// Parse one data line; returns false for blank lines.
bool parse_line(const std::string& line, SwfLine* out) {
  std::istringstream in(line);
  std::vector<double> fields;
  double v;
  while (in >> v) fields.push_back(v);
  if (fields.empty()) return false;
  if (fields.size() < 5)
    throw std::invalid_argument("SWF line with fewer than 5 fields: " + line);
  const auto get = [&](std::size_t idx1) {
    return idx1 <= fields.size() ? fields[idx1 - 1] : -1.0;
  };
  out->job_id = static_cast<long>(get(1));
  out->submit = get(2);
  out->wait = get(3);
  out->run = get(4);
  out->procs_alloc = static_cast<long>(get(5));
  out->procs_req = static_cast<long>(get(8));
  out->req_time = get(9);
  out->status = static_cast<long>(get(11));
  out->user = static_cast<long>(get(12));
  return true;
}

}  // namespace

JobStore parse_swf_store(const std::string& text, const SwfOptions& opts,
                         SwfParseStats* stats, ArenaRef arena) {
  JobStore jobs(arena);
  SwfParseStats local;
  std::istringstream in(text);
  std::string line;
  JobId next_id = 0;
  while (std::getline(in, line)) {
    // CRLF tolerance: getline leaves the '\r' of a CRLF ending in place.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Header/comment lines start with ';'.  Separators may be any mix of
    // spaces and tabs (parse_line extracts with operator>>).
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == ';') continue;
    ++local.data_lines;
    SwfLine rec;
    if (!parse_line(line, &rec)) {
      // Content but no leading numeric field (e.g. a header line that
      // lost its ';'): malformed, counted — never silently skipped.
      if (opts.skip_invalid) {
        ++local.dropped_invalid;
        continue;
      }
      throw std::invalid_argument("SWF line without numeric fields: " + line);
    }

    long procs = opts.prefer_requested_procs && rec.procs_req > 0
                     ? rec.procs_req
                     : rec.procs_alloc;
    if (procs <= 0) procs = rec.procs_req;  // fall back either way
    const double run = rec.run;
    if (procs <= 0 || run <= 0) {
      if (opts.skip_invalid) {
        ++local.dropped_invalid;
        continue;
      }
      throw std::invalid_argument("SWF job without processors or run time");
    }
    jobs.append_rigid(next_id, static_cast<int>(procs),
                      run * opts.time_scale,
                      std::max(0.0, rec.submit) * opts.time_scale);
    jobs[jobs.size() - 1].community =
        rec.user > 0 ? static_cast<int>(rec.user) : 0;
    ++next_id;
    ++local.parsed;
    if (opts.max_jobs > 0 &&
        static_cast<int>(jobs.size()) >= opts.max_jobs)
      break;
  }
  if (stats != nullptr) *stats = local;
  return jobs;
}

JobSet parse_swf(const std::string& text, const SwfOptions& opts,
                 SwfParseStats* stats) {
  // The store parser is the primary implementation; the ExecRef round
  // trip through to_jobset() is exact, so this view stays bit-identical
  // to the historical direct-JobSet parse.
  return parse_swf_store(text, opts, stats).to_jobset();
}

JobStore load_swf_file_store(const std::string& path, const SwfOptions& opts,
                             SwfParseStats* stats, ArenaRef arena) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF trace: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_swf_store(buf.str(), opts, stats, arena);
}

JobSet load_swf_file(const std::string& path, const SwfOptions& opts,
                     SwfParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF trace: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_swf(buf.str(), opts, stats);
}

std::string to_swf(const JobSet& jobs, const Schedule* s,
                   const std::string& header_comment) {
  std::ostringstream out;
  // Enough digits for doubles to survive a write -> parse round trip
  // bit-for-bit (same rationale as core/report's JsonWriter).
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "; " << header_comment << "\n";
  out << "; Fields: id submit wait run procs -1 -1 req_procs -1 -1 status "
         "user -1 -1 -1 -1 -1 -1\n";
  for (const Job& j : jobs) {
    double wait = -1, run = j.time(j.min_procs);
    int status = -1;
    if (s != nullptr) {
      const Assignment* a = s->find(j.id);
      if (a != nullptr) {
        wait = a->start - j.release;
        run = a->duration;
        status = 1;  // completed
      }
    }
    out << (j.id + 1) << " " << j.release << " " << wait << " " << run
        << " " << j.min_procs << " -1 -1 " << j.max_procs << " -1 -1 "
        << status << " " << j.community << " -1 -1 -1 -1 -1 -1\n";
  }
  return out.str();
}

}  // namespace lgs
