#include "workload/swf.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "workload/swf_stream.h"

namespace lgs {

JobStore parse_swf_store(const std::string& text, const SwfOptions& opts,
                         SwfParseStats* stats, ArenaRef arena) {
  // The incremental parser is the primary implementation; feeding the
  // whole text as one chunk makes the batch path identical to any
  // chunked feed by construction (tests/test_swf_stream.cpp pins it).
  SwfStreamParser parser(opts, arena);
  parser.feed(text.data(), text.size());
  parser.finish();
  if (stats != nullptr) *stats = parser.stats();
  return parser.take_store();
}

JobSet parse_swf(const std::string& text, const SwfOptions& opts,
                 SwfParseStats* stats) {
  // The store parser is the primary implementation; the ExecRef round
  // trip through to_jobset() is exact, so this view stays bit-identical
  // to the historical direct-JobSet parse.
  return parse_swf_store(text, opts, stats).to_jobset();
}

JobStore load_swf_file_store(const std::string& path, const SwfOptions& opts,
                             SwfParseStats* stats, ArenaRef arena) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF trace: " + path);
  // Stream the file through the incremental parser in fixed chunks — a
  // multi-GB archive trace never materialises as one string.
  SwfStreamParser parser(opts, arena);
  std::vector<char> buf(1 << 16);
  while (in && !parser.done()) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    parser.feed(buf.data(), static_cast<std::size_t>(got));
  }
  parser.finish();
  if (stats != nullptr) *stats = parser.stats();
  return parser.take_store();
}

JobSet load_swf_file(const std::string& path, const SwfOptions& opts,
                     SwfParseStats* stats) {
  return load_swf_file_store(path, opts, stats).to_jobset();
}

std::string to_swf(const JobSet& jobs, const Schedule* s,
                   const std::string& header_comment) {
  std::ostringstream out;
  // Enough digits for doubles to survive a write -> parse round trip
  // bit-for-bit (same rationale as core/report's JsonWriter).
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "; " << header_comment << "\n";
  out << "; Fields: id submit wait run procs -1 -1 req_procs -1 -1 status "
         "user -1 -1 -1 -1 -1 -1\n";
  for (const Job& j : jobs) {
    double wait = -1, run = j.time(j.min_procs);
    int status = -1;
    if (s != nullptr) {
      const Assignment* a = s->find(j.id);
      if (a != nullptr) {
        wait = a->start - j.release;
        run = a->duration;
        status = 1;  // completed
      }
    }
    out << (j.id + 1) << " " << j.release << " " << wait << " " << run
        << " " << j.min_procs << " -1 -1 " << j.max_procs << " -1 -1 "
        << status << " " << j.community << " -1 -1 -1 -1 -1 -1\n";
  }
  return out.str();
}

}  // namespace lgs
