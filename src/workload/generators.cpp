#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lgs {

namespace {

/// Log-uniform draw in [lo, hi].
double log_uniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

Time draw_release(Rng& rng, Time window) {
  return window > 0 ? rng.uniform(0.0, window) : 0.0;
}

double draw_weight(Rng& rng, double lo, double hi) {
  return hi > lo ? rng.uniform(lo, hi) : lo;
}

}  // namespace

JobSet make_moldable_workload(const MoldableWorkloadSpec& spec, Rng& rng) {
  if (spec.count < 0) throw std::invalid_argument("negative job count");
  JobSet jobs;
  jobs.reserve(static_cast<std::size_t>(spec.count));
  for (int i = 0; i < spec.count; ++i) {
    const Time t1 = log_uniform(rng, spec.t1_min, spec.t1_max);
    const Time release = draw_release(rng, spec.arrival_window);
    const double weight = draw_weight(rng, spec.w_min, spec.w_max);
    const JobId id = static_cast<JobId>(i);
    if (rng.flip(spec.sequential_fraction)) {
      jobs.push_back(Job::sequential(id, t1, release, weight));
      continue;
    }
    ExecModel model =
        rng.flip(spec.amdahl_fraction)
            ? ExecModel::amdahl(t1,
                                rng.uniform(spec.serial_min, spec.serial_max))
            : ExecModel::power_law(
                  t1, rng.uniform(spec.alpha_min, spec.alpha_max));
    const int max_p = std::max(
        1, static_cast<int>(rng.uniform_int(1, std::max(1, spec.max_procs))));
    jobs.push_back(
        Job::moldable(id, std::move(model), 1, max_p, release, weight));
  }
  return jobs;
}

JobSet make_sequential_workload(const MoldableWorkloadSpec& spec, Rng& rng) {
  MoldableWorkloadSpec seq = spec;
  seq.sequential_fraction = 1.0;
  return make_moldable_workload(seq, rng);
}

JobSet make_rigid_workload(const RigidWorkloadSpec& spec, Rng& rng) {
  if (spec.count < 0) throw std::invalid_argument("negative job count");
  JobSet jobs;
  jobs.reserve(static_cast<std::size_t>(spec.count));
  for (int i = 0; i < spec.count; ++i) {
    const Time t = log_uniform(rng, spec.t_min, spec.t_max);
    const int procs = std::max(
        1, static_cast<int>(std::lround(
               log_uniform(rng, 1.0, static_cast<double>(spec.max_procs)))));
    jobs.push_back(Job::rigid(static_cast<JobId>(i), procs, t,
                              draw_release(rng, spec.arrival_window),
                              draw_weight(rng, spec.w_min, spec.w_max)));
  }
  return jobs;
}

const char* to_string(Community c) {
  switch (c) {
    case Community::kNumericalPhysics:
      return "numerical-physics";
    case Community::kAstrophysics:
      return "astrophysics";
    case Community::kMedicalResearch:
      return "medical-research";
    case Community::kComputerScience:
      return "computer-science";
  }
  return "?";
}

JobSet make_community_workload(Community c, int count, Rng& rng,
                               JobId first_id, double time_scale,
                               Time arrival_window) {
  JobSet jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const JobId id = first_id + static_cast<JobId>(i);
    const Time release = draw_release(rng, arrival_window);
    switch (c) {
      case Community::kNumericalPhysics: {
        // Long sequential jobs: 1 day .. 3 weeks (in hours).
        const Time t = time_scale * log_uniform(rng, 24.0, 24.0 * 21);
        Job j = Job::sequential(id, t, release);
        j.community = 0;
        jobs.push_back(std::move(j));
        break;
      }
      case Community::kAstrophysics: {
        // Moldable simulations: hours to days, decent scalability.
        const Time t1 = time_scale * log_uniform(rng, 4.0, 96.0);
        Job j = Job::moldable(
            id, ExecModel::amdahl(t1, rng.uniform(0.02, 0.10)), 1,
            static_cast<int>(rng.uniform_int(8, 64)), release);
        j.community = 1;
        jobs.push_back(std::move(j));
        break;
      }
      case Community::kMedicalResearch: {
        // One short run of a parametric campaign (bags are expanded
        // separately; lone runs model interactive exploration).
        const Time t = time_scale * log_uniform(rng, 0.05, 0.5);
        Job j = Job::sequential(id, t, release);
        j.community = 2;
        jobs.push_back(std::move(j));
        break;
      }
      case Community::kComputerScience: {
        // Short debug jobs, sometimes small-parallel.
        const Time t1 = time_scale * log_uniform(rng, 0.02, 2.0);
        if (rng.flip(0.5)) {
          Job j = Job::sequential(id, t1, release);
          j.community = 3;
          jobs.push_back(std::move(j));
        } else {
          Job j = Job::moldable(
              id, ExecModel::power_law(t1, rng.uniform(0.6, 0.95)), 1,
              static_cast<int>(rng.uniform_int(2, 16)), release);
          j.community = 3;
          jobs.push_back(std::move(j));
        }
        break;
      }
    }
  }
  return jobs;
}

JobSet expand_bag(const ParametricBag& bag, JobId first_id, Time release) {
  if (bag.runs < 0) throw std::invalid_argument("negative run count");
  JobSet jobs;
  jobs.reserve(static_cast<std::size_t>(bag.runs));
  for (int i = 0; i < bag.runs; ++i) {
    Job j = Job::sequential(first_id + static_cast<JobId>(i), bag.run_time,
                            release, bag.weight);
    j.community = bag.community;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

JobSet make_large_trace(std::size_t n, std::uint64_t seed,
                        const LargeTraceSpec& spec) {
  // The store builder is the primary implementation; the ExecRef round
  // trip through to_jobset() is exact, so this view stays bit-identical
  // to the historical direct-JobSet construction.
  return make_large_trace_store(n, seed, spec).to_jobset();
}

JobStore make_large_trace_store(std::size_t n, std::uint64_t seed,
                                const LargeTraceSpec& spec, ArenaRef arena) {
  if (spec.max_procs < 1)
    throw std::invalid_argument("max_procs must be >= 1");
  if (spec.communities < 1)
    throw std::invalid_argument("communities must be >= 1");
  if (spec.target_capacity < 1)
    throw std::invalid_argument("target_capacity must be >= 1");
  if (spec.load <= 0.0)
    throw std::invalid_argument("load must be positive");
  if (spec.burst_intensity < 1.0)
    throw std::invalid_argument("burst_intensity must be >= 1");
  if (spec.mean_burst_jobs < 1.0)
    throw std::invalid_argument("mean_burst_jobs must be >= 1");

  Rng rng(seed);
  int width_exponents = 0;
  while ((2LL << width_exponents) <= spec.max_procs) ++width_exponents;

  // Pass 1: job shapes.  Widths are powers of two (the classical rigid
  // trace bias), runtimes log-normal with a per-community flavor: long
  // sequential physics tails down to short bursty debug jobs.
  JobStore store(arena);
  store.reserve(n);
  double total_work = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int community =
        static_cast<int>(rng.uniform_int(0, spec.communities - 1));
    int procs = 1;
    if (!rng.flip(0.35))  // 35% strictly sequential
      procs = 1 << rng.uniform_int(0, width_exponents);
    // Flavor by community class (mod 4, echoing the §5.2 four).
    static constexpr double kMu[4] = {3.6, 2.8, 1.2, 0.2};
    static constexpr double kSigma[4] = {1.1, 0.9, 0.6, 1.0};
    const Time duration =
        rng.lognormal(kMu[community % 4], kSigma[community % 4]);
    store.append_rigid(static_cast<JobId>(i), procs, duration);
    store[i].community = community;
    total_work += static_cast<double>(procs) * duration;
  }

  // Pass 2: arrivals.  The window is sized so the trace offers
  // spec.load on spec.target_capacity; inside a burst the gap shrinks
  // by burst_intensity, and the following lull stretches so that one
  // burst+lull cycle preserves the average gap.
  const double window =
      total_work / (spec.load * static_cast<double>(spec.target_capacity));
  const double mean_gap = n > 0 ? window / static_cast<double>(n) : 0.0;
  const double burst_gap = mean_gap / spec.burst_intensity;
  const double lull_gap = 2.0 * mean_gap - burst_gap;
  Time clock = 0.0;
  bool in_burst = true;
  std::size_t phase_left =
      1 + static_cast<std::size_t>(rng.exponential(1.0 / spec.mean_burst_jobs));
  for (std::size_t i = 0; i < n; ++i) {
    if (phase_left == 0) {
      in_burst = !in_burst;
      phase_left = 1 + static_cast<std::size_t>(
                           rng.exponential(1.0 / spec.mean_burst_jobs));
    }
    const double gap = in_burst ? burst_gap : lull_gap;
    if (gap > 0.0) clock += rng.exponential(1.0 / gap);
    store.set_release(i, clock);
    --phase_left;
  }
  return store;
}

void append_workload(JobSet& base, JobSet extra) {
  JobId next = 0;
  for (const Job& j : base) next = std::max(next, j.id + 1);
  for (Job& j : extra) {
    j.id = next++;
    base.push_back(std::move(j));
  }
}

}  // namespace lgs
