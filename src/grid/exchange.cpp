#include "grid/exchange.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

namespace lgs {

const char* to_string(ExchangePolicy p) {
  switch (p) {
    case ExchangePolicy::kIsolated:
      return "isolated";
    case ExchangePolicy::kThreshold:
      return "threshold";
    case ExchangePolicy::kEconomic:
      return "economic";
  }
  return "?";
}

namespace {

/// Expected completion of `j` on cluster `c`: queue wait plus the job's
/// own speed-adjusted execution time.  Jobs wider than the cluster bid
/// infinity.
double bid(const OnlineCluster& c, const Job& j) {
  if (j.min_procs > c.processors()) return kTimeInfinity;
  return c.expected_wait() + j.best_time(c.processors()) / c.speed();
}

}  // namespace

ExchangeResult run_exchange(const LightGrid& grid,
                            const std::vector<JobSet>& workload_per_cluster,
                            const ExchangeOptions& opts) {
  if (workload_per_cluster.size() > grid.clusters.size())
    throw std::invalid_argument("more workloads than clusters");

  Simulator sim;
  std::vector<std::unique_ptr<OnlineCluster>> clusters;
  for (const Cluster& c : grid.clusters)
    clusters.push_back(std::make_unique<OnlineCluster>(sim, c));

  ExchangeResult res;

  // Route each job at its release date.
  for (std::size_t home = 0; home < workload_per_cluster.size(); ++home) {
    for (const Job& job : workload_per_cluster[home]) {
      sim.at(job.release, [&, home, job] {
        Job j = job;
        j.release = 0.0;  // submit_local runs at the release instant
        std::size_t target = home;
        switch (opts.policy) {
          case ExchangePolicy::kIsolated:
            break;
          case ExchangePolicy::kThreshold: {
            const double home_wait = clusters[home]->expected_wait();
            if (home_wait > opts.wait_threshold) {
              double best = home_wait - opts.migration_penalty;
              for (std::size_t c = 0; c < clusters.size(); ++c) {
                if (c == home) continue;
                if (j.min_procs > clusters[c]->processors()) continue;
                const double w = clusters[c]->expected_wait();
                if (w < best) {
                  best = w;
                  target = c;
                }
              }
            }
            break;
          }
          case ExchangePolicy::kEconomic: {
            double best = bid(*clusters[home], j);
            for (std::size_t c = 0; c < clusters.size(); ++c) {
              if (c == home) continue;
              const double b = bid(*clusters[c], j);
              if (b < best - kTimeEps) {
                best = b;
                target = c;
              }
            }
            break;
          }
        }
        if (target != home) ++res.migrations;
        clusters[target]->submit_local(j);
      });
    }
  }
  sim.run();

  res.horizon = sim.now();
  double busy = 0.0;
  double capacity = 0.0;
  std::map<int, CommunityOutcome> by_community;
  double flow_sum = 0.0;
  long jobs_total = 0;
  for (const auto& c : clusters) {
    busy += c->busy_integral();
    capacity += static_cast<double>(c->processors()) * res.horizon;
    for (const LocalJobRecord& r : c->local_records()) {
      CommunityOutcome& out = by_community[r.community];
      out.community = r.community;
      ++out.jobs;
      out.mean_wait += r.wait();
      out.mean_slowdown += r.slowdown();
      out.mean_flow += r.flow();
      flow_sum += r.flow();
      ++jobs_total;
    }
  }
  for (auto& [id, out] : by_community) {
    out.mean_wait /= std::max(1, out.jobs);
    out.mean_slowdown /= std::max(1, out.jobs);
    out.mean_flow /= std::max(1, out.jobs);
    res.communities.push_back(out);
  }
  res.global_utilization = capacity > 0 ? busy / capacity : 0.0;
  res.mean_flow = jobs_total > 0 ? flow_sum / jobs_total : 0.0;
  return res;
}

}  // namespace lgs
