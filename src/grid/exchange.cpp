#include "grid/exchange.h"

#include <algorithm>

#include "sim/grid_sim.h"

namespace lgs {

const char* to_string(ExchangePolicy p) {
  switch (p) {
    case ExchangePolicy::kIsolated:
      return "isolated";
    case ExchangePolicy::kThreshold:
      return "threshold";
    case ExchangePolicy::kEconomic:
      return "economic";
  }
  return "?";
}

namespace {

/// Expected completion of `j` on cluster `c`: the width-aware queue wait
/// for the job's minimal allotment plus the job's own speed-adjusted
/// execution time.  Jobs wider than the cluster bid infinity.
double bid(const OnlineCluster& c, const Job& j) {
  if (j.min_procs > c.processors()) return kTimeInfinity;
  return c.expected_wait(j.min_procs) +
         j.best_time(c.processors()) / c.speed();
}

}  // namespace

std::size_t exchange_target(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters,
    std::size_t home, const Job& j, const ExchangeOptions& opts) {
  std::size_t target = home;
  switch (opts.policy) {
    case ExchangePolicy::kIsolated:
      break;
    case ExchangePolicy::kThreshold: {
      const double home_wait = clusters[home]->expected_wait(j.min_procs);
      if (home_wait > opts.wait_threshold) {
        double best = home_wait - opts.migration_penalty;
        for (std::size_t c = 0; c < clusters.size(); ++c) {
          if (c == home) continue;
          if (j.min_procs > clusters[c]->processors()) continue;
          const double w = clusters[c]->expected_wait(j.min_procs);
          if (w < best) {
            best = w;
            target = c;
          }
        }
      }
      break;
    }
    case ExchangePolicy::kEconomic: {
      double best = bid(*clusters[home], j);
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (c == home) continue;
        const double b = bid(*clusters[c], j);
        if (b < best - kTimeEps) {
          best = b;
          target = c;
        }
      }
      break;
    }
  }
  return target;
}

ExchangeResult run_exchange(const LightGrid& grid,
                            const std::vector<JobSet>& workload_per_cluster,
                            const ExchangeOptions& opts) {
  GridSimOptions gopts;
  switch (opts.policy) {
    case ExchangePolicy::kIsolated:
      gopts.routing = GridRouting::kIsolated;
      break;
    case ExchangePolicy::kThreshold:
      gopts.routing = GridRouting::kThreshold;
      break;
    case ExchangePolicy::kEconomic:
      gopts.routing = GridRouting::kEconomic;
      break;
  }
  gopts.wait_threshold = opts.wait_threshold;
  gopts.migration_penalty = opts.migration_penalty;

  GridSim sim(grid, gopts);
  sim.submit_workloads(workload_per_cluster);
  const GridSimResult r = sim.run();

  ExchangeResult res;
  res.horizon = r.horizon;
  res.global_utilization = r.global_utilization;
  res.migrations = r.migrations;
  res.communities = r.communities;
  res.mean_flow = r.mean_flow;
  return res;
}

}  // namespace lgs
