#include "grid/global.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/profile.h"

namespace lgs {

Schedule GlobalSchedule::cluster_view(const LightGrid& grid,
                                      ClusterId id) const {
  Schedule s(grid.cluster(id).processors());
  for (const GlobalAssignment& a : items)
    if (a.cluster == id) s.add(a.job, a.start, a.nprocs, a.duration);
  return s;
}

const GlobalAssignment* GlobalSchedule::find(JobId job) const {
  for (const GlobalAssignment& a : items)
    if (a.job == job) return &a;
  return nullptr;
}

GlobalSchedule global_ect_schedule(const LightGrid& grid, const JobSet& jobs,
                                   GlobalOrder order) {
  if (grid.clusters.empty()) throw std::invalid_argument("empty grid");
  check_jobset(jobs, grid.total_processors());

  // One availability profile per cluster.
  std::vector<Profile> profiles;
  for (const Cluster& c : grid.clusters) profiles.emplace_back(c.processors());

  std::vector<std::size_t> seq(jobs.size());
  std::iota(seq.begin(), seq.end(), 0);
  const double fastest =
      std::max_element(grid.clusters.begin(), grid.clusters.end(),
                       [](const Cluster& a, const Cluster& b) {
                         return a.speed < b.speed;
                       })
          ->speed;
  if (order == GlobalOrder::kSubmission) {
    std::stable_sort(seq.begin(), seq.end(), [&](std::size_t a, std::size_t b) {
      if (jobs[a].release != jobs[b].release)
        return jobs[a].release < jobs[b].release;
      return jobs[a].id < jobs[b].id;
    });
  } else {
    std::stable_sort(seq.begin(), seq.end(), [&](std::size_t a, std::size_t b) {
      return jobs[a].best_time(1024) / fastest >
             jobs[b].best_time(1024) / fastest;
    });
  }

  GlobalSchedule out;
  for (std::size_t i : seq) {
    const Job& j = jobs[i];
    Time best_end = kTimeInfinity;
    GlobalAssignment chosen;
    for (std::size_t ci = 0; ci < grid.clusters.size(); ++ci) {
      const Cluster& c = grid.clusters[ci];
      if (j.min_procs > c.processors()) continue;
      const int hi = std::min(j.max_procs, c.processors());
      const int k = std::max(j.min_procs, j.model.useful_limit(hi));
      const Time dur = j.model.time(k) / c.speed;
      const Time start = profiles[ci].earliest_fit(j.release, dur, k);
      if (start + dur < best_end - kTimeEps) {
        best_end = start + dur;
        chosen = {j.id, c.id, start, k, dur};
      }
    }
    if (best_end == kTimeInfinity)
      throw std::invalid_argument("job fits no cluster");
    const std::size_t ci = static_cast<std::size_t>(chosen.cluster);
    profiles[ci].commit(chosen.start, chosen.duration, chosen.nprocs);
    out.items.push_back(chosen);
    out.makespan = std::max(out.makespan, chosen.end());
  }
  return out;
}

Time global_cmax_lower_bound(const LightGrid& grid, const JobSet& jobs) {
  double capacity = 0.0;  // speed-weighted processors
  for (const Cluster& c : grid.clusters)
    capacity += static_cast<double>(c.processors()) * c.speed;
  // Minimal work interprets a unit of model time as one unit-speed
  // processor-second; the grid processes `capacity` of those per second.
  const Time area = total_min_work(jobs) / capacity;

  Time critical = 0.0;
  for (const Job& j : jobs) {
    Time best = kTimeInfinity;
    for (const Cluster& c : grid.clusters) {
      if (j.min_procs > c.processors()) continue;
      best = std::min(best, j.best_time(c.processors()) / c.speed);
    }
    if (best == kTimeInfinity)
      throw std::invalid_argument("job fits no cluster");
    critical = std::max(critical, j.release + best);
  }
  return std::max(area, critical);
}

}  // namespace lgs
