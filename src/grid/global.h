// Global heterogeneous scheduling across the whole light grid.
//
// §5.2 lists "view it as a big global optimization problem" among the
// decentralized-exchange alternatives.  This module is that baseline: an
// omniscient scheduler that sees every job and every cluster and places
// each job greedily where it completes earliest (ECT — the heterogeneous
// list-scheduling rule under uniform cluster speeds).  It bounds from
// above what any decentralized protocol can hope to reach, and is what
// the E-DEC bench compares the exchange policies against.
#pragma once

#include <vector>

#include "core/job.h"
#include "core/schedule.h"
#include "platform/platform.h"

namespace lgs {

/// One placed job: cluster plus the usual schedule fields (duration is
/// wall-clock, i.e. already divided by the cluster speed).
struct GlobalAssignment {
  JobId job = kInvalidJob;
  ClusterId cluster = -1;
  Time start = 0.0;
  int nprocs = 1;
  Time duration = 0.0;

  Time end() const { return start + duration; }
};

struct GlobalSchedule {
  std::vector<GlobalAssignment> items;
  Time makespan = 0.0;

  /// Per-cluster view as a plain Schedule (durations wall-clock).
  Schedule cluster_view(const LightGrid& grid, ClusterId id) const;
  const GlobalAssignment* find(JobId job) const;
};

enum class GlobalOrder {
  kSubmission,  ///< FCFS by release
  kLongestFirst ///< LPT on best wall-clock time over the fastest cluster
};

/// Greedy earliest-completion-time placement over all clusters.  Moldable
/// jobs take their best-time allotment on each candidate cluster
/// (clamped by the cluster size).  Honors release dates.
GlobalSchedule global_ect_schedule(const LightGrid& grid, const JobSet& jobs,
                                   GlobalOrder order = GlobalOrder::kSubmission);

/// Makespan lower bound on a heterogeneous grid: total minimal work over
/// aggregate speed-weighted capacity, and the critical job on the fastest
/// adequate cluster.
Time global_cmax_lower_bound(const LightGrid& grid, const JobSet& jobs);

}  // namespace lgs
