// Decentralized light-grid management (§5.2, "Decentralized").
//
// All jobs — grid and local — enter through their home cluster's
// submission system; clusters may then exchange work to balance load.
// The paper leaves the protocol open and lists candidate directions; we
// implement three placement policies for the E-DEC bench:
//   * isolated      — no exchange (the fairness baseline),
//   * threshold     — migrate a job at submission when the home queue's
//                     expected wait exceeds a threshold and some other
//                     cluster is substantially less loaded,
//   * economic      — every cluster "bids" its expected completion time
//                     (wait + speed-adjusted run time) and the job goes to
//                     the cheapest bidder (each job optimizes for itself).
#pragma once

#include <memory>
#include <vector>

#include "core/job.h"
#include "platform/platform.h"
#include "sim/online_cluster.h"

namespace lgs {

enum class ExchangePolicy { kIsolated, kThreshold, kEconomic };

const char* to_string(ExchangePolicy p);

struct ExchangeOptions {
  ExchangePolicy policy = ExchangePolicy::kIsolated;
  /// kThreshold: migrate when home wait exceeds this (seconds).
  double wait_threshold = 10.0;
  /// kThreshold: required advantage of the target over home (seconds),
  /// modeling the migration cost (data transfer, requeue).
  double migration_penalty = 1.0;
};

/// Per-community fairness outcome.
struct CommunityOutcome {
  int community = 0;
  int jobs = 0;
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;
  double mean_flow = 0.0;
};

struct ExchangeResult {
  Time horizon = 0.0;
  double global_utilization = 0.0;
  long migrations = 0;
  std::vector<CommunityOutcome> communities;
  /// Mean flow over all jobs (global performance signal).
  double mean_flow = 0.0;
};

/// The routing decision itself, shared by run_exchange and the
/// multi-cluster engine (sim/grid_sim): the cluster index that `j` —
/// arriving now at `home` — should be submitted to under `opts.policy`.
/// Pure in the clusters' current load signals (expected_wait).
std::size_t exchange_target(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters,
    std::size_t home, const Job& j, const ExchangeOptions& opts);

/// Simulate the grid under the given policy: workload `i` is the local
/// workload of cluster `i`; jobs carry their community.  A thin wrapper
/// over sim/grid_sim's GridSim (no best-effort layer, no volatility).
ExchangeResult run_exchange(const LightGrid& grid,
                            const std::vector<JobSet>& workload_per_cluster,
                            const ExchangeOptions& opts = {});

}  // namespace lgs
