// Centralized light-grid management (§5.2, "Centralized").
//
// Each cluster keeps its own submission system for local jobs; one central
// server holds the grid jobs — multi-parametric bags of short runs — and
// pushes them onto idle processors as *best-effort* jobs.  A best-effort
// run is killed whenever a local job needs its processor and is then
// resubmitted by the server.  Local users keep their exact service: the
// defining property (tested!) is that local job records are identical with
// and without grid jobs.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/job.h"
#include "platform/platform.h"
#include "sim/online_cluster.h"
#include "workload/generators.h"

namespace lgs {

/// The central server: a queue of best-effort run durations (unit speed).
/// Killed runs return to the front (they are retried first).
class CentralServer {
 public:
  explicit CentralServer(const std::vector<ParametricBag>& bags);

  /// Source handed to each cluster.
  BestEffortSource make_source();

  long total_runs() const { return total_runs_; }
  long completed() const { return completed_; }
  long resubmissions() const { return resubmissions_; }
  long pending() const { return static_cast<long>(pending_.size()); }

  /// Checkpoint surface (core/checkpoint): the pending deque in order
  /// plus the counters — the server's entire state.
  void save_checkpoint(CheckpointWriter& w) const;
  void restore_checkpoint(CheckpointReader& r);

 private:
  std::deque<Time> pending_;
  long total_runs_ = 0;
  long completed_ = 0;
  long resubmissions_ = 0;
};

/// Per-cluster outcome of the centralized experiment.
struct ClusterOutcome {
  ClusterId id = 0;
  double local_mean_wait = 0.0;
  double local_mean_slowdown = 0.0;
  double utilization_local = 0.0;  ///< local work only
  double utilization_total = 0.0;  ///< local + best-effort
  BestEffortStats be;
};

struct CentralizedResult {
  Time horizon = 0.0;
  std::vector<ClusterOutcome> clusters;
  long grid_runs_total = 0;
  long grid_runs_completed = 0;
  long grid_resubmissions = 0;
  /// True when every local job has identical (submit, start, finish) with
  /// and without the grid jobs — the §5.2 non-disturbance guarantee.
  bool local_unaffected = false;
};

/// Run the centralized scenario on `grid`: `local_per_cluster[i]` is the
/// local workload of cluster i (release dates honored), `bags` the grid
/// campaigns.  The experiment is run twice (with and without grid jobs) to
/// check the non-disturbance property.
CentralizedResult run_centralized(
    const LightGrid& grid, const std::vector<JobSet>& local_per_cluster,
    const std::vector<ParametricBag>& bags,
    OnlineCluster::Options cluster_opts = {});

}  // namespace lgs
