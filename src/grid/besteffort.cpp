#include "grid/besteffort.h"

#include <algorithm>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/profiler.h"

namespace lgs {

CentralServer::CentralServer(const std::vector<ParametricBag>& bags) {
  for (const ParametricBag& bag : bags) {
    for (int i = 0; i < bag.runs; ++i) pending_.push_back(bag.run_time);
    total_runs_ += bag.runs;
  }
}

BestEffortSource CentralServer::make_source() {
  BestEffortSource src;
  src.request = [this](int max_runs) {
    std::vector<Time> grants;
    while (static_cast<int>(grants.size()) < max_runs && !pending_.empty()) {
      grants.push_back(pending_.front());
      pending_.pop_front();
    }
    return grants;
  };
  src.on_kill = [this](Time duration) {
    pending_.push_front(duration);
    ++resubmissions_;
    LGS_PROF_COUNT("grid.be_resubmits", 1);
  };
  src.on_done = [this] { ++completed_; };
  return src;
}

void CentralServer::save_checkpoint(CheckpointWriter& w) const {
  w.u64(pending_.size());
  for (Time t : pending_) w.f64(t);
  w.i64(total_runs_);
  w.i64(completed_);
  w.i64(resubmissions_);
}

void CentralServer::restore_checkpoint(CheckpointReader& r) {
  pending_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) pending_.push_back(r.f64());
  total_runs_ = static_cast<long>(r.i64());
  completed_ = static_cast<long>(r.i64());
  resubmissions_ = static_cast<long>(r.i64());
}

namespace {

/// One full simulation pass; returns the clusters (owning pointers kept
/// alive by the caller's vector) after the event queue drains.
struct Pass {
  Simulator sim;
  std::vector<std::unique_ptr<OnlineCluster>> clusters;
};

void run_pass(Pass& pass, const LightGrid& grid,
              const std::vector<JobSet>& local_per_cluster,
              CentralServer* server, OnlineCluster::Options opts) {
  for (std::size_t i = 0; i < grid.clusters.size(); ++i) {
    pass.clusters.push_back(
        std::make_unique<OnlineCluster>(pass.sim, grid.clusters[i], opts));
    if (server != nullptr)
      pass.clusters.back()->set_besteffort_source(server->make_source());
  }
  for (std::size_t i = 0; i < local_per_cluster.size(); ++i) {
    if (i >= pass.clusters.size())
      throw std::invalid_argument("more workloads than clusters");
    for (const Job& j : local_per_cluster[i])
      pass.clusters[i]->submit_local(j);
  }
  pass.sim.run();
}

bool same_local_records(const std::vector<std::unique_ptr<OnlineCluster>>& a,
                        const std::vector<std::unique_ptr<OnlineCluster>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a[i]->local_records();
    const auto& rb = b[i]->local_records();
    if (ra.size() != rb.size()) return false;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (ra[k].id != rb[k].id || !almost_equal(ra[k].submit, rb[k].submit) ||
          !almost_equal(ra[k].start, rb[k].start) ||
          !almost_equal(ra[k].finish, rb[k].finish))
        return false;
    }
  }
  return true;
}

}  // namespace

CentralizedResult run_centralized(const LightGrid& grid,
                                  const std::vector<JobSet>& local_per_cluster,
                                  const std::vector<ParametricBag>& bags,
                                  OnlineCluster::Options cluster_opts) {
  // Pass A: grid jobs enabled.
  CentralServer server(bags);
  Pass with_grid;
  run_pass(with_grid, grid, local_per_cluster, &server, cluster_opts);

  // Pass B: the baseline without grid jobs, for the non-disturbance check.
  Pass baseline;
  run_pass(baseline, grid, local_per_cluster, nullptr, cluster_opts);

  CentralizedResult res;
  res.horizon = with_grid.sim.now();
  res.grid_runs_total = server.total_runs();
  res.grid_runs_completed = server.completed();
  res.grid_resubmissions = server.resubmissions();
  res.local_unaffected =
      same_local_records(with_grid.clusters, baseline.clusters);

  for (std::size_t i = 0; i < with_grid.clusters.size(); ++i) {
    const OnlineCluster& c = *with_grid.clusters[i];
    ClusterOutcome out;
    out.id = c.id();
    out.be = c.besteffort_stats();
    double wait = 0.0, slow = 0.0;
    for (const LocalJobRecord& r : c.local_records()) {
      wait += r.wait();
      slow += r.slowdown();
    }
    const double n = std::max<std::size_t>(1, c.local_records().size());
    out.local_mean_wait = wait / n;
    out.local_mean_slowdown = slow / n;
    const double denom = c.processors() * std::max(res.horizon, kTimeEps);
    out.utilization_local = c.local_busy_integral() / denom;
    out.utilization_total = c.busy_integral() / denom;
    res.clusters.push_back(out);
  }
  return res;
}

}  // namespace lgs
