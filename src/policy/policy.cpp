#include "policy/policy.h"

#include <algorithm>
#include <stdexcept>

#include "criteria/lower_bounds.h"
#include "criteria/metrics.h"
#include "policy/registry.h"
#include "workload/generators.h"

namespace lgs {

const char* to_string(ApplicationClass app) {
  switch (app) {
    case ApplicationClass::kSequentialBatch:
      return "sequential-batch";
    case ApplicationClass::kRigidParallel:
      return "rigid-parallel";
    case ApplicationClass::kMoldableParallel:
      return "moldable-parallel";
    case ApplicationClass::kMultiParametric:
      return "multi-parametric";
    case ApplicationClass::kMixedCampus:
      return "mixed-campus";
  }
  return "?";
}

const char* to_string(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kFcfsList:
      return "fcfs-list";
    case PolicyKind::kEasyBackfill:
      return "easy-backfill";
    case PolicyKind::kConservativeBackfill:
      return "conservative-bf";
    case PolicyKind::kFfdhShelves:
      return "ffdh-shelves";
    case PolicyKind::kMrtBatches:
      return "mrt-batches";
    case PolicyKind::kSmartShelves:
      return "smart-shelves";
    case PolicyKind::kBicriteria:
      return "bi-criteria";
  }
  return "?";
}

PolicyKind policy_kind_from_string(const std::string& name) {
  for (PolicyKind p : all_policies())
    if (name == to_string(p)) return p;
  throw std::invalid_argument("unknown policy name '" + name + "'");
}

ApplicationClass application_class_from_string(const std::string& name) {
  for (ApplicationClass a : all_application_classes())
    if (name == to_string(a)) return a;
  throw std::invalid_argument("unknown application class '" + name + "'");
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::kFcfsList,      PolicyKind::kEasyBackfill,
          PolicyKind::kConservativeBackfill, PolicyKind::kFfdhShelves,
          PolicyKind::kMrtBatches,    PolicyKind::kSmartShelves,
          PolicyKind::kBicriteria};
}

std::vector<std::string> all_policy_names() {
  return registered_policy_names();
}

std::vector<ApplicationClass> all_application_classes() {
  return {ApplicationClass::kSequentialBatch,
          ApplicationClass::kRigidParallel,
          ApplicationClass::kMoldableParallel,
          ApplicationClass::kMultiParametric,
          ApplicationClass::kMixedCampus};
}

Schedule run_policy(const std::string& policy, const JobSet& jobs, int m) {
  return make_policy(policy)->schedule(jobs, m);
}

Schedule run_policy(PolicyKind policy, const JobSet& jobs, int m) {
  return run_policy(std::string(to_string(policy)), jobs, m);
}

JobSet make_application_workload(ApplicationClass app, int jobs, int m,
                                 std::uint64_t seed) {
  Rng rng(seed);
  switch (app) {
    case ApplicationClass::kSequentialBatch: {
      MoldableWorkloadSpec spec;
      spec.count = jobs;
      spec.t1_min = 20.0;
      spec.t1_max = 500.0;
      spec.arrival_window = 50.0;
      spec.w_min = 1.0;
      spec.w_max = 8.0;
      return make_sequential_workload(spec, rng);
    }
    case ApplicationClass::kRigidParallel: {
      RigidWorkloadSpec spec;
      spec.count = jobs;
      spec.max_procs = std::max(2, m / 4);
      spec.arrival_window = 50.0;
      spec.w_min = 1.0;
      spec.w_max = 8.0;
      return make_rigid_workload(spec, rng);
    }
    case ApplicationClass::kMoldableParallel: {
      MoldableWorkloadSpec spec;
      spec.count = jobs;
      spec.max_procs = std::max(2, m / 2);
      spec.arrival_window = 50.0;
      spec.w_min = 1.0;
      spec.w_max = 8.0;
      return make_moldable_workload(spec, rng);
    }
    case ApplicationClass::kMultiParametric: {
      ParametricBag bag;
      bag.runs = jobs;
      bag.run_time = 0.5;
      return expand_bag(bag, 0);
    }
    case ApplicationClass::kMixedCampus: {
      const int quarter = std::max(1, jobs / 4);
      JobSet mixed = make_community_workload(Community::kNumericalPhysics,
                                             quarter, rng, 0, 0.05, 100.0);
      append_workload(mixed,
                      make_community_workload(Community::kAstrophysics,
                                              quarter, rng, 0, 0.05, 100.0));
      append_workload(mixed,
                      make_community_workload(Community::kComputerScience,
                                              quarter, rng, 0, 0.05, 100.0));
      append_workload(mixed,
                      make_community_workload(Community::kMedicalResearch,
                                              quarter, rng, 0, 0.05, 100.0));
      return mixed;
    }
  }
  throw std::logic_error("unknown application class");
}

std::vector<MatrixRow> evaluate_policy_matrix_serial(int m, int jobs_per_class,
                                                     std::uint64_t seed) {
  std::vector<MatrixRow> rows;
  for (ApplicationClass app : all_application_classes()) {
    MatrixRow row;
    row.app = app;
    const JobSet jobs = make_application_workload(app, jobs_per_class, m, seed);
    const Time cmax_lb = cmax_lower_bound(jobs, m);
    const double wc_lb = sum_weighted_completion_lower_bound(jobs, m);

    double best_cmax = kTimeInfinity, best_wc = kTimeInfinity,
           best_maxflow = kTimeInfinity;
    for (const std::string& policy : all_policy_names()) {
      const Schedule s = run_policy(policy, jobs, m);
      const Metrics metrics = compute_metrics(jobs, s);
      PolicyScore score;
      score.policy = policy;
      score.cmax_ratio = metrics.cmax / std::max(cmax_lb, kTimeEps);
      score.sum_wc_ratio = metrics.sum_weighted / std::max(wc_lb, kTimeEps);
      score.mean_flow = metrics.mean_flow;
      score.max_flow = metrics.max_flow;
      score.utilization = metrics.utilization;
      row.scores.push_back(score);
      if (metrics.cmax < best_cmax) {
        best_cmax = metrics.cmax;
        row.best_for_cmax = policy;
      }
      if (metrics.sum_weighted < best_wc) {
        best_wc = metrics.sum_weighted;
        row.best_for_sum_wc = policy;
      }
      if (metrics.max_flow < best_maxflow) {
        best_maxflow = metrics.max_flow;
        row.best_for_max_flow = policy;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string paper_guidance() {
  return
      "Paper guidance (qualitative, §2):\n"
      "  parallel applications, slow networks      -> Parallel Tasks model\n"
      "  moldable codes, clairvoyant runtimes      -> MRT batches / bi-criteria\n"
      "  multi-user clusters (fair response time)  -> bi-criteria or SMART\n"
      "  multi-parametric campaigns (fine grain)   -> Divisible Load + best-effort\n"
      "  rigid legacy jobs                         -> backfilling / first batch that fits\n";
}

}  // namespace lgs
