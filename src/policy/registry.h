// Pluggable scheduling-policy registry: ONE polymorphic interface from
// the off-line pt/ algorithms to the on-line grid.
//
// The paper's central question — which policy for which application? —
// needs every policy runnable in every setting.  `SchedulingPolicy`
// carries both facets of a policy: the off-line `schedule(JobSet, m)`
// entry point the recommendation matrix scores, and an on-line
// `QueuePolicy` factory the submission system (sim/online_cluster)
// injects into its dispatch loop.  Policies are addressed by string
// through a process-wide registry, so sweep axes (exp/sweep,
// exp/grid_sweep) are user-extensible: register a policy under a new
// name and every engine — matrix, OnlineCluster, GridSim, grid sweep —
// can run it without touching an enum.
//
// Layering: this header depends only on src/core.  The built-in
// registrations (policy/builtin.cpp) pull in src/pt; the on-line engine
// (src/sim) includes only this header, never policy/policy.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/profile.h"
#include "core/schedule.h"

namespace lgs {

/// A queued local job as the on-line dispatcher sees it: the allotment is
/// already fixed (sim/online_cluster's a-priori strategy) and the
/// duration is speed-adjusted wall time on this cluster.
struct QueuedJobView {
  JobId id = kInvalidJob;
  std::size_t record = 0;  ///< stable per-submission key (record index)
  int procs = 1;           ///< fixed allotment on this cluster
  Time duration = 0.0;     ///< speed-adjusted execution time
  Time submit = 0.0;
  int priority = 0;        ///< §1.2 priority file (queue is ordered by it)
};

/// A running local job (best-effort runs are killable and therefore
/// transparent to queue policies — they never appear here).
struct RunningJobView {
  std::size_t record = 0;
  int procs = 1;
  Time finish = 0.0;
};

/// pick_next() sentinel: nothing can start now.
constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

/// The dispatch state handed to a QueuePolicy: free processors, the
/// killable best-effort width, the priority-ordered queue, the running
/// local jobs, and a *shared* availability skyline.  The engine keeps
/// one context alive across all picks of a dispatch cycle.  Everything
/// beyond the scalar counters is lazy: the queue/running views
/// materialize on first access (FCFS, which only needs `head_procs`,
/// never pays for them), and the skyline is built at most once per
/// cycle and updated incrementally as picks start — policies never
/// rebuild a `Profile` from scratch per event.
class DispatchContext {
 public:
  /// Engine callback that fills the job views from its current state.
  using ViewFiller = std::function<void(std::vector<QueuedJobView>&,
                                        std::vector<RunningJobView>&)>;

  explicit DispatchContext(ViewFiller fill) : fill_(std::move(fill)) {}

  Time now = 0.0;
  int free_procs = 0;      ///< truly idle processors
  int killable_procs = 0;  ///< processors held by killable best-effort runs
  int capacity = 0;        ///< usable processors right now (volatility)
  int total_procs = 0;     ///< the cluster's full size
  double speed = 1.0;
  int head_procs = 0;  ///< width of the queue head — O(1), always valid

  /// Processors a local job can claim immediately (idle + killable).
  int available() const { return free_procs + killable_procs; }

  /// The queue (priority order, FCFS within a level) and the running
  /// local jobs, materialized from the engine on first access.
  const std::vector<QueuedJobView>& queue() const;
  const std::vector<RunningJobView>& running() const;

  /// Skyline of the running local jobs over `capacity` processors from
  /// `now` on, built lazily on first access and then kept in sync by
  /// `on_started`.  Shared across picks: policies that commit
  /// reservations (EASY's shadow, conservative's chain) must copy it.
  const Profile& local_profile() const;

  /// Engine-side maintenance after a pick started: drops the view
  /// caches (they re-materialize lazily from the engine's updated
  /// state) and commits the started job into the cached skyline, so
  /// the profile survives the whole cycle.  The engine refreshes the
  /// scalar counters itself.
  void on_started(const QueuedJobView& started);

  /// Engine-side reset at the start of a dispatch cycle: drops the view
  /// caches (keeping their vector capacity, so one context is reused
  /// across every cycle of a cluster's lifetime) and the skyline.  The
  /// skyline is rebuilt lazily per cycle — only policies that consult
  /// local_profile() (EASY, conservative) pay that allocation; FCFS
  /// cycles allocate nothing here.
  void reset();

 private:
  void materialize() const;

  ViewFiller fill_;
  mutable bool views_built_ = false;
  mutable std::vector<QueuedJobView> queue_;
  mutable std::vector<RunningJobView> running_;
  mutable std::unique_ptr<Profile> profile_;
};

/// On-line facet of a policy: the brain of OnlineCluster::dispatch().
/// The engine calls pick_next() in a loop; a returned index is started
/// immediately (so stateful policies may commit internal bookkeeping —
/// e.g. pop a batch plan entry — before returning it).
class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;

  /// A job entered the queue (fresh submission or volatility resubmit).
  virtual void on_submit(const QueuedJobView& job) { (void)job; }

  /// A running local job completed (or was preempted by volatility).
  virtual void on_completion(std::size_t record) { (void)record; }

  /// Index into ctx.queue of a job to start *now* (its procs must fit
  /// ctx.available()), or kNoPick when nothing may start yet.
  virtual std::size_t pick_next(const DispatchContext& ctx) = 0;

  /// Checkpoint support (core/checkpoint): persistent CROSS-CYCLE state
  /// as opaque 64-bit words.  Most builtins (FCFS, EASY, conservative)
  /// derive every decision from the DispatchContext and keep none — the
  /// default empty save is exact for them.  A policy that does carry
  /// state across dispatch cycles (the §4.2 batch adapter's release
  /// plan) overrides both sides; the words mean whatever the policy
  /// wrote, versioned with the snapshot as a whole.
  virtual void save_state(std::vector<std::uint64_t>& out) const {
    (void)out;
  }
  /// Restore words written by save_state on an identically-constructed
  /// policy.  The default (stateless) accepts only an empty blob: words
  /// reaching a policy that never wrote any means a snapshot/engine
  /// mismatch, not data to ignore.
  virtual void restore_state(const std::uint64_t* words, std::size_t n) {
    (void)words;
    if (n != 0)
      throw std::invalid_argument(
          "queue policy received checkpoint state it never saves");
  }
};

/// One scheduling policy, both facets.  Stateless and reusable off-line;
/// make_queue_policy() returns a fresh per-cluster on-line instance.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// The registry name (also the report/JSON label).
  virtual const std::string& name() const = 0;

  /// Off-line facet: schedule `jobs` (release dates honored — off-line
  /// algorithms are wrapped in the §4.2 batch transformation) on m
  /// processors.
  virtual Schedule schedule(const JobSet& jobs, int m) const = 0;

  /// On-line facet: a fresh queue policy driving one cluster's dispatch.
  virtual std::unique_ptr<QueuePolicy> make_queue_policy() const = 0;
};

using PolicyFactory = std::function<std::unique_ptr<SchedulingPolicy>()>;

/// Register a policy under `name`.  Returns true; throws
/// std::invalid_argument on a duplicate or empty name.  Thread-safe.
bool register_policy(const std::string& name, PolicyFactory factory);

/// Static-initializer-safe variant (what LGS_REGISTER_POLICY expands
/// to): instead of throwing — which before main() means an opaque
/// std::terminate — a failed registration is recorded, and every later
/// registry accessor throws one clear diagnosis naming the policy.
bool register_policy_or_defer(const std::string& name,
                              PolicyFactory factory) noexcept;

bool is_registered_policy(const std::string& name);

/// Every registered name, in registration order (built-ins first, in the
/// paper's presentation order, then user extensions).
std::vector<std::string> registered_policy_names();

/// Instantiate a policy by name; throws std::invalid_argument with the
/// known names when `name` is not registered.
std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name);

/// Shorthand for make_policy(name)->make_queue_policy().
std::unique_ptr<QueuePolicy> make_queue_policy(const std::string& name);

namespace detail {
/// Defined in policy/builtin.cpp; called once by the registry accessors.
/// The explicit call forces the linker to keep builtin.cpp even though
/// it is only reachable through static registration.
void register_builtin_policies();
}  // namespace detail

/// Self-registration for user extensions (place at namespace scope in a
/// .cpp of the final binary; object files in static libraries are only
/// linked when referenced, which is why the built-ins register through
/// detail::register_builtin_policies instead).
#define LGS_REGISTER_POLICY(ident, name, ...)                 \
  [[maybe_unused]] static const bool lgs_policy_reg_##ident = \
      ::lgs::register_policy_or_defer((name), __VA_ARGS__)

}  // namespace lgs
