// The paper's title question: which policy for which application?
//
// This module runs every scheduling policy of the library against every
// application class the paper discusses and scores them on every §3
// criterion, producing the recommendation matrix that the paper argues
// cannot be collapsed into a single global optimization problem.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/schedule.h"

namespace lgs {

/// Application classes motivated in the paper (§2, §5.2).
enum class ApplicationClass {
  kSequentialBatch,   ///< long sequential jobs (numerical physics)
  kRigidParallel,     ///< historically rigid parallel jobs
  kMoldableParallel,  ///< moldable parallel applications
  kMultiParametric,   ///< bags of short identical runs (divisible-load-like)
  kMixedCampus,       ///< the CIMENT reality: everything at once
};

const char* to_string(ApplicationClass app);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
ApplicationClass application_class_from_string(const std::string& name);

/// The classical policy roster, kept as an enum shim for callers that
/// enumerate the paper's presentation order.  The source of truth is the
/// string-keyed registry (policy/registry.h): `to_string(PolicyKind)` is
/// a registry name, and `run_policy` dispatches through `make_policy`.
enum class PolicyKind {
  kFcfsList,              ///< greedy list scheduling, submission order
  kEasyBackfill,          ///< EASY backfilling
  kConservativeBackfill,  ///< conservative backfilling
  kFfdhShelves,           ///< batched FFDH strip packing
  kMrtBatches,            ///< on-line MRT batches (3 + ε for Cmax)
  kSmartShelves,          ///< batched SMART (Σ wᵢCᵢ)
  kBicriteria,            ///< doubling-deadline bi-criteria batches
};

const char* to_string(PolicyKind policy);

/// Inverse of to_string; throws std::invalid_argument on unknown names
/// (a registered policy outside the classical roster has no PolicyKind).
PolicyKind policy_kind_from_string(const std::string& name);

/// The classical policies, in presentation order.
std::vector<PolicyKind> all_policies();

/// Every *registered* policy name (built-ins in presentation order, then
/// user extensions) — the default sweep axis.
std::vector<std::string> all_policy_names();

std::vector<ApplicationClass> all_application_classes();

/// Run one policy on a workload (release dates honored by every policy —
/// off-line algorithms are wrapped in the §4.2 batch transformation).
/// Thin shim over make_policy(name)->schedule(jobs, m).
Schedule run_policy(const std::string& policy, const JobSet& jobs, int m);
Schedule run_policy(PolicyKind policy, const JobSet& jobs, int m);

/// Scores of one policy on one application class.
struct PolicyScore {
  std::string policy;         ///< registry name
  double cmax_ratio = 0.0;    ///< Cmax / lower bound
  double sum_wc_ratio = 0.0;  ///< Σ wᵢCᵢ / lower bound
  double mean_flow = 0.0;
  double max_flow = 0.0;
  double utilization = 0.0;
};

struct MatrixRow {
  ApplicationClass app{};
  std::vector<PolicyScore> scores;
  std::string best_for_cmax;
  std::string best_for_sum_wc;
  std::string best_for_max_flow;
};

/// Generate the workload of one application class (deterministic in seed).
JobSet make_application_workload(ApplicationClass app, int jobs, int m,
                                 std::uint64_t seed);

/// The full matrix: every class × every policy on an m-processor cluster.
/// Cells run in parallel on the experiment engine (src/exp/sweep.h, where
/// this is defined); the result is bit-identical to the serial oracle
/// below at any thread count.
std::vector<MatrixRow> evaluate_policy_matrix(int m, int jobs_per_class,
                                              std::uint64_t seed);

/// Single-threaded reference implementation — the differential-test
/// oracle the parallel engine is checked against (tests/test_sweep.cpp)
/// and the timing baseline of bench/bench_policy_matrix.cpp.
std::vector<MatrixRow> evaluate_policy_matrix_serial(int m, int jobs_per_class,
                                                     std::uint64_t seed);

/// The paper's qualitative guidance (§2): which *model* fits which
/// application — rendered as text for the bench output.
std::string paper_guidance();

}  // namespace lgs
