#include "policy/registry.h"

#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/profiler.h"

namespace lgs {

void DispatchContext::materialize() const {
  if (views_built_) return;
  queue_.clear();
  running_.clear();
  fill_(queue_, running_);
  views_built_ = true;
}

const std::vector<QueuedJobView>& DispatchContext::queue() const {
  materialize();
  return queue_;
}

const std::vector<RunningJobView>& DispatchContext::running() const {
  materialize();
  return running_;
}

const Profile& DispatchContext::local_profile() const {
  if (!profile_) {
    LGS_PROF_COUNT("policy.skyline_rebuilds", 1);
    const std::vector<RunningJobView>& run = running();
    profile_ = std::make_unique<Profile>(capacity);
    profile_->reserve(2 * (run.size() + 1));
    for (const RunningJobView& r : run)
      if (r.finish > now + kTimeEps)
        profile_->commit(now, r.finish - now, r.procs);
  }
  return *profile_;
}

void DispatchContext::on_started(const QueuedJobView& started) {
  views_built_ = false;  // re-materialized from the engine on demand
  if (profile_ && started.duration > kTimeEps)
    profile_->commit(now, started.duration, started.procs);
}

void DispatchContext::reset() {
  views_built_ = false;
  queue_.clear();    // keeps capacity for the next materialization
  running_.clear();
  profile_.reset();  // rebuilt lazily from the new cycle's running set
}

namespace {

struct Registry {
  struct Entry {
    std::string name;
    bool builtin = false;
  };
  std::mutex mutex;
  bool builtin_phase = false;  ///< true while register_builtin_policies runs
  std::vector<Entry> order;
  std::unordered_map<std::string, PolicyFactory> factories;
  /// Deferred failures (static-init registrations, built-in collisions):
  /// reported by every accessor instead of aborting before main().
  std::vector<std::string> errors;
};

Registry& registry() {
  // Meyers singleton: constructed on first use, so registrations from
  // other translation units' static initializers are always safe.
  static Registry r;
  return r;
}

void ensure_builtins() {
  // One attempt, never retried.  If a user's static registration grabbed
  // a built-in name, the first accessor would otherwise leave the static
  // initializer half-done and every later call would re-run registration
  // into a misleading duplicate error — instead, remember the failure
  // and report the same clear diagnosis on every access.
  struct Boot {
    Boot() {
      {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.builtin_phase = true;
      }
      try {
        detail::register_builtin_policies();
      } catch (const std::exception& e) {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.errors.push_back(e.what());
      }
      Registry& r = registry();
      std::lock_guard<std::mutex> lock(r.mutex);
      r.builtin_phase = false;
    }
  };
  static const Boot boot;
  (void)boot;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.errors.empty()) {
    std::string all;
    for (const std::string& e : r.errors)
      all += (all.empty() ? "" : "; ") + e;
    throw std::logic_error("policy registry unusable: " + all);
  }
}

}  // namespace

bool register_policy(const std::string& name, PolicyFactory factory) {
  if (name.empty())
    throw std::invalid_argument("cannot register a policy without a name");
  if (!factory)
    throw std::invalid_argument("cannot register policy '" + name +
                                "' without a factory");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.factories.emplace(name, std::move(factory)).second) {
    if (r.builtin_phase)
      throw std::invalid_argument(
          "the built-in policy '" + name +
          "' collides with an earlier user registration of the same name");
    throw std::invalid_argument("policy '" + name + "' already registered");
  }
  r.order.push_back(Registry::Entry{name, r.builtin_phase});
  return true;
}

bool register_policy_or_defer(const std::string& name,
                              PolicyFactory factory) noexcept {
  try {
    return register_policy(name, std::move(factory));
  } catch (const std::exception& e) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.errors.push_back(e.what());
  } catch (...) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.errors.push_back("registration of policy '" + name +
                       "' failed with an unknown error");
  }
  return false;
}

bool is_registered_policy(const std::string& name) {
  ensure_builtins();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.factories.count(name) != 0;
}

std::vector<std::string> registered_policy_names() {
  ensure_builtins();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  // Built-ins first (presentation order), then user extensions in their
  // registration order — static LGS_REGISTER_POLICY initializers may run
  // before the lazy built-in registration, so raw order is not enough.
  std::vector<std::string> names;
  names.reserve(r.order.size());
  for (const Registry::Entry& e : r.order)
    if (e.builtin) names.push_back(e.name);
  for (const Registry::Entry& e : r.order)
    if (!e.builtin) names.push_back(e.name);
  return names;
}

std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name) {
  ensure_builtins();
  Registry& r = registry();
  PolicyFactory factory;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it != r.factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : registered_policy_names())
      known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("unknown policy '" + name +
                                "' (registered: " + known + ")");
  }
  std::unique_ptr<SchedulingPolicy> policy = factory();
  if (!policy)
    throw std::logic_error("factory for policy '" + name +
                           "' returned nullptr");
  return policy;
}

std::unique_ptr<QueuePolicy> make_queue_policy(const std::string& name) {
  std::unique_ptr<QueuePolicy> q = make_policy(name)->make_queue_policy();
  if (!q)
    throw std::logic_error("policy '" + name + "' has no on-line facet");
  return q;
}

}  // namespace lgs
