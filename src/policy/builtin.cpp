// Built-in policy registrations: every pt/ algorithm, both facets.
//
// Off-line facets are the bodies the old `run_policy` enum switch
// dispatched to (policy/policy.h keeps the enum as a thin shim over this
// registry).  On-line facets plug into OnlineCluster::dispatch():
//   * fcfs-list       -> strict FCFS head-of-queue dispatch,
//   * easy-backfill   -> EASY on the shared dispatch-context skyline,
//   * conservative-bf -> a reservation chain over the same skyline,
//   * every batch/shelf policy -> the §4.2 batch transformation adapter
//     (collect the queue while the previous batch drains, plan the batch
//     with the off-line algorithm, release the plan in start order).
#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "criteria/lower_bounds.h"
#include "policy/registry.h"
#include "pt/allotment.h"
#include "pt/backfill.h"
#include "pt/batch.h"
#include "pt/bicriteria.h"
#include "pt/mrt.h"
#include "pt/rigid_list.h"
#include "pt/shelves.h"
#include "pt/smart.h"

namespace lgs {
namespace {

/// Fix moldable allotments for rigid-only policies: canonical allotment at
/// the area lower bound, the a-priori strategy of §5.1.
JobSet rigidize(const JobSet& jobs, int m) {
  return fix_canonical(jobs, cmax_lower_bound(jobs, m), m);
}

// --------------------------------------------------------------------------
// On-line facets.
// --------------------------------------------------------------------------

/// Strict FCFS: the head starts as soon as it fits; nothing ever jumps
/// it.  Decides on the O(1) head_procs scalar alone — the job views are
/// never materialized, keeping the engine's historical fast path.
class FcfsQueue : public QueuePolicy {
 public:
  std::size_t pick_next(const DispatchContext& ctx) override {
    return ctx.head_procs <= ctx.available() ? 0 : kNoPick;
  }
};

/// EASY backfilling: reserve the stuck head at its shadow on the shared
/// skyline, let any queued job that fits around the reservation start.
/// Best-effort runs are killable, hence transparent: the head fits
/// whenever free + killable >= procs, and the skyline covers local jobs
/// only.  The profile query subsumes both classic EASY conditions (ends
/// before the shadow / fits in the surplus).
class EasyQueue : public QueuePolicy {
 public:
  std::size_t pick_next(const DispatchContext& ctx) override {
    if (ctx.head_procs <= ctx.available()) return 0;

    const std::vector<QueuedJobView>& queue = ctx.queue();
    const Time now = ctx.now;
    // Copy: the head's shadow reservation is this policy's scratch state.
    Profile prof = ctx.local_profile();
    const int head_procs = queue.front().procs;
    const Time head_dur = queue.front().duration;
    // A head wider than the volatility-shrunk capacity cannot be reserved
    // at all — it waits for capacity to return.  Backfilling is then only
    // allowed up to the last running completion, so the head is not
    // pushed back further.
    const bool reservable = head_procs <= ctx.capacity;
    Time shadow = now;
    if (reservable) {
      shadow = prof.earliest_fit(now, head_dur, head_procs);
      prof.commit(shadow, head_dur, head_procs);
    } else {
      for (const RunningJobView& r : ctx.running())
        shadow = std::max(shadow, r.finish);
    }
    for (std::size_t qi = 1; qi < queue.size(); ++qi) {
      const QueuedJobView& q = queue[qi];
      if (q.procs > ctx.available()) continue;
      if (!prof.fits(now, q.duration, q.procs)) continue;
      if (!reservable && now + q.duration > shadow + kTimeEps) continue;
      return qi;
    }
    return kNoPick;
  }
};

/// Conservative backfilling, on-line: walk the queue in order, give every
/// job a reservation on a copy of the shared skyline, and start the first
/// job whose reservation is now — later jobs slide into holes only when
/// they delay nobody ahead of them.
class ConservativeQueue : public QueuePolicy {
 public:
  std::size_t pick_next(const DispatchContext& ctx) override {
    const std::vector<QueuedJobView>& queue = ctx.queue();
    Profile prof = ctx.local_profile();  // copy: reservations are scratch
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const QueuedJobView& q = queue[qi];
      // Unreservable under the volatility-shrunk capacity: everything
      // behind it waits too (no leapfrogging an unplannable job).
      if (q.procs > ctx.capacity) return kNoPick;
      const Time start = prof.earliest_fit(ctx.now, q.duration, q.procs);
      if (start <= ctx.now + kTimeEps && q.procs <= ctx.available())
        return qi;
      prof.commit(start, q.duration, q.procs);
    }
    return kNoPick;
  }
};

/// The §4.2 batch transformation, on-line: when the previous batch has
/// fully drained, plan everything queued with the off-line algorithm
/// (over the jobs' fixed allotments) and release the plan in planned
/// start order.  Jobs arriving mid-batch wait for the next one — the
/// construction behind the 2ρ competitiveness argument.
class BatchQueue : public QueuePolicy {
 public:
  explicit BatchQueue(OfflineAlgo offline) : offline_(std::move(offline)) {}

  std::size_t pick_next(const DispatchContext& ctx) override {
    if (plan_.empty() && ctx.running().empty()) form_batch(ctx);
    const std::vector<QueuedJobView>& queue = ctx.queue();
    while (!plan_.empty()) {
      const std::size_t record = plan_.front();
      std::size_t qi = kNoPick;
      for (std::size_t i = 0; i < queue.size(); ++i)
        if (queue[i].record == record) {
          qi = i;
          break;
        }
      if (qi == kNoPick) {
        // Planned job no longer queued (volatility preemption recycled
        // it): drop the stale entry, it re-enters with the next batch.
        plan_.pop_front();
        continue;
      }
      if (queue[qi].procs > ctx.available()) return kNoPick;
      plan_.pop_front();  // the engine starts a returned pick immediately
      return qi;
    }
    return kNoPick;
  }

 private:
  void form_batch(const DispatchContext& ctx) {
    JobSet batch;
    batch.reserve(ctx.queue().size());
    for (const QueuedJobView& q : ctx.queue()) {
      // Allotments are fixed by the cluster; jobs wider than the current
      // capacity wait for the capacity (and the next batch) to return.
      if (q.procs > ctx.capacity) continue;
      batch.push_back(Job::rigid(static_cast<JobId>(q.record), q.procs,
                                 q.duration));
    }
    if (batch.empty()) return;
    const Schedule plan = offline_(batch, ctx.capacity);
    std::vector<const Assignment*> order;
    order.reserve(plan.size());
    for (const Assignment& a : plan.assignments()) order.push_back(&a);
    std::sort(order.begin(), order.end(),
              [](const Assignment* a, const Assignment* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->job < b->job;
              });
    for (const Assignment* a : order)
      plan_.push_back(static_cast<std::size_t>(a->job));
  }

  OfflineAlgo offline_;
  std::deque<std::size_t> plan_;  ///< record keys, planned start order

 public:
  // The release plan is the one piece of cross-cycle state any builtin
  // carries: serialize the record keys in plan order so a restored
  // cluster keeps releasing the interrupted batch instead of re-planning
  // mid-flight (which could reorder starts and break bit-identity).
  void save_state(std::vector<std::uint64_t>& out) const override {
    out.reserve(out.size() + plan_.size());
    for (const std::size_t record : plan_)
      out.push_back(static_cast<std::uint64_t>(record));
  }
  void restore_state(const std::uint64_t* words, std::size_t n) override {
    plan_.clear();
    for (std::size_t i = 0; i < n; ++i)
      plan_.push_back(static_cast<std::size_t>(words[i]));
  }
};

// --------------------------------------------------------------------------
// The policy wrapper and the registrations.
// --------------------------------------------------------------------------

class BuiltinPolicy : public SchedulingPolicy {
 public:
  using QueueFactory = std::function<std::unique_ptr<QueuePolicy>()>;

  BuiltinPolicy(std::string name, OfflineAlgo offline, QueueFactory queue)
      : name_(std::move(name)),
        offline_(std::move(offline)),
        queue_(std::move(queue)) {}

  const std::string& name() const override { return name_; }

  Schedule schedule(const JobSet& jobs, int m) const override {
    return offline_(jobs, m);
  }

  std::unique_ptr<QueuePolicy> make_queue_policy() const override {
    return queue_();
  }

 private:
  std::string name_;
  OfflineAlgo offline_;
  QueueFactory queue_;
};

void add(const std::string& name, OfflineAlgo offline,
         BuiltinPolicy::QueueFactory queue) {
  register_policy(name, [name, offline = std::move(offline),
                         queue = std::move(queue)] {
    return std::make_unique<BuiltinPolicy>(name, offline, queue);
  });
}

/// A batch policy: the same off-line body serves both facets — directly
/// off-line (wrapped in batch_schedule for release dates), and as the
/// per-batch planner of the on-line adapter.
void add_batched(const std::string& name, const OfflineAlgo& offline) {
  add(name,
      [offline](const JobSet& jobs, int m) {
        return batch_schedule(jobs, m, offline).schedule;
      },
      [offline] { return std::make_unique<BatchQueue>(offline); });
}

}  // namespace

namespace detail {

void register_builtin_policies() {
  // Presentation order of the paper's policy roster (policy/policy.h's
  // PolicyKind mirrors this list — the enum round-trip test pins it).
  add(
      "fcfs-list",
      [](const JobSet& jobs, int m) {
        // Strict FCFS: no queue jumping at all — the baseline every
        // backfilling study compares against.
        return list_schedule_rigid(rigidize(jobs, m), m,
                                   {ListOrder::kSubmission, true});
      },
      [] { return std::make_unique<FcfsQueue>(); });
  add(
      "easy-backfill",
      [](const JobSet& jobs, int m) {
        return easy_backfill(rigidize(jobs, m), m);
      },
      [] { return std::make_unique<EasyQueue>(); });
  add(
      "conservative-bf",
      [](const JobSet& jobs, int m) {
        return conservative_backfill(rigidize(jobs, m), m);
      },
      [] { return std::make_unique<ConservativeQueue>(); });
  add_batched("ffdh-shelves", [](const JobSet& batch, int machines) {
    return shelf_schedule_rigid(rigidize(batch, machines), machines,
                                ShelfPolicy::kFirstFitDecreasing);
  });
  add(
      "mrt-batches",
      [](const JobSet& jobs, int m) {
        return online_moldable_schedule(jobs, m).schedule;
      },
      [] {
        // Same ε as online_moldable_schedule's default, so both facets
        // plan a batch identically.
        MrtOptions opts;
        opts.eps = 0.02;
        return std::make_unique<BatchQueue>(
            [opts](const JobSet& batch, int machines) {
              return mrt_schedule(batch, machines, opts).schedule;
            });
      });
  add_batched("smart-shelves", [](const JobSet& batch, int machines) {
    return smart_schedule(rigidize(batch, machines), machines);
  });
  add(
      "bi-criteria",
      [](const JobSet& jobs, int m) {
        return bicriteria_schedule(jobs, m).schedule;
      },
      [] {
        return std::make_unique<BatchQueue>(
            [](const JobSet& batch, int machines) {
              return bicriteria_schedule(batch, machines).schedule;
            });
      });
}

}  // namespace detail
}  // namespace lgs
