// Platform model (paper §1.2 and Fig. 3).
//
// A *light grid* is a small set of clusters in one geographic area:
// strongly heterogeneous between clusters (processor type, count, network,
// OS), weakly heterogeneous inside a cluster (same OS, similar processors
// with different clock speeds).  No global topology is assumed; each
// cluster exposes a node count, a relative speed, and a local interconnect.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"

namespace lgs {

/// Local interconnect technology of a cluster, as in Fig. 3.
enum class Interconnect { kMyrinet, kGigabitEthernet, kFastEthernet };

const char* to_string(Interconnect net);

/// Link parameters used by the DLT library and the simulator: latency in
/// seconds and bandwidth in work-units per second.
struct Link {
  double latency = 0.0;
  double bandwidth = 1.0;

  /// Time to push `volume` units through the link.
  double transfer_time(double volume) const {
    return latency + volume / bandwidth;
  }
};

Link link_for(Interconnect net);

/// One cluster: `nodes` machines with `cpus_per_node` processors each, all
/// running at `speed` (relative to a reference processor = 1.0).
struct Cluster {
  ClusterId id = 0;
  std::string name;
  int nodes = 0;
  int cpus_per_node = 1;
  double speed = 1.0;
  Interconnect net = Interconnect::kFastEthernet;
  std::string os = "Linux";
  /// Community owning the cluster (fairness accounting, §5.2).
  int owner_community = 0;

  int processors() const { return nodes * cpus_per_node; }
  Link link() const { return link_for(net); }
};

/// A light grid: a few clusters plus the WAN link between them (fast,
/// possibly hierarchical — modeled as one shared link).
struct LightGrid {
  std::string name;
  std::vector<Cluster> clusters;
  Link wan{1e-3, 100.0};

  int total_processors() const;
  const Cluster& cluster(ClusterId id) const;

  /// Human-readable inventory (used to regenerate Fig. 3).
  std::string inventory() const;
};

/// The 4 largest clusters of the CIMENT project exactly as in Fig. 3:
///   104 bi-Itanium2 / Myrinet, 48 bi-P4 Xeon / GigE,
///   40 bi-Athlon / 100 Mb Ethernet, 24 bi-Athlon / 100 Mb Ethernet.
/// Speeds are relative estimates for 2004-era hardware.
LightGrid ciment_grid();

/// Homogeneous single cluster of `processors` unit-speed CPUs — the setting
/// of the Fig. 2 simulation (100 machines).
LightGrid single_cluster(int processors, const std::string& name = "cluster");

}  // namespace lgs
