#include "platform/platform.h"

#include <sstream>
#include <stdexcept>

namespace lgs {

const char* to_string(Interconnect net) {
  switch (net) {
    case Interconnect::kMyrinet:
      return "Myrinet";
    case Interconnect::kGigabitEthernet:
      return "Giga Eth";
    case Interconnect::kFastEthernet:
      return "Eth 100";
  }
  return "?";
}

Link link_for(Interconnect net) {
  // Latency/bandwidth in seconds and work-units/second; calibrated to the
  // relative order Myrinet > GigE > 100 Mb Ethernet of 2004-era hardware.
  switch (net) {
    case Interconnect::kMyrinet:
      return {7e-6, 250.0};
    case Interconnect::kGigabitEthernet:
      return {60e-6, 125.0};
    case Interconnect::kFastEthernet:
      return {100e-6, 12.5};
  }
  return {};
}

int LightGrid::total_processors() const {
  int total = 0;
  for (const Cluster& c : clusters) total += c.processors();
  return total;
}

const Cluster& LightGrid::cluster(ClusterId id) const {
  for (const Cluster& c : clusters)
    if (c.id == id) return c;
  throw std::invalid_argument("unknown cluster id");
}

std::string LightGrid::inventory() const {
  std::ostringstream out;
  out << "light grid '" << name << "': " << clusters.size() << " clusters, "
      << total_processors() << " processors\n";
  for (const Cluster& c : clusters) {
    out << "  [" << c.id << "] " << c.name << ": " << c.nodes << " nodes x "
        << c.cpus_per_node << " cpus @ speed " << c.speed << " ("
        << to_string(c.net) << ", " << c.os << ", community "
        << c.owner_community << ")\n";
  }
  return out.str();
}

LightGrid ciment_grid() {
  LightGrid g;
  g.name = "CIMENT";
  g.clusters = {
      {0, "bi-Itanium2", 104, 2, 1.6, Interconnect::kMyrinet, "Linux", 0},
      {1, "bi-P4-Xeon", 48, 2, 1.2, Interconnect::kGigabitEthernet, "Linux",
       1},
      {2, "bi-Athlon-A", 40, 2, 1.0, Interconnect::kFastEthernet, "Linux", 2},
      {3, "bi-Athlon-B", 24, 2, 1.0, Interconnect::kFastEthernet, "Linux", 3},
  };
  return g;
}

LightGrid single_cluster(int processors, const std::string& name) {
  if (processors < 1)
    throw std::invalid_argument("cluster needs at least one processor");
  LightGrid g;
  g.name = name;
  g.clusters = {{0, name, processors, 1, 1.0, Interconnect::kGigabitEthernet,
                 "Linux", 0}};
  return g;
}

}  // namespace lgs
