#include "dlt/dlt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace lgs {

namespace {

void check_platform(const DltPlatform& p) {
  if (p.workers.empty()) throw std::invalid_argument("no workers");
  for (const DltWorker& w : p.workers) {
    if (w.comm < 0 || w.comp <= 0 || w.latency < 0)
      throw std::invalid_argument("bad worker rates");
  }
}

/// Indices of workers sorted by increasing comm rate (optimal single-
/// installment service order on a star).
std::vector<std::size_t> service_order(const DltPlatform& p) {
  std::vector<std::size_t> order(p.workers.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return p.workers[a].comm < p.workers[b].comm;
                   });
  return order;
}

}  // namespace

DltPlatform DltPlatform::homogeneous_bus(int n, double comm, double comp,
                                         double latency) {
  if (n < 1) throw std::invalid_argument("need at least one worker");
  DltPlatform p;
  p.workers.assign(static_cast<std::size_t>(n), {comm, comp, latency});
  return p;
}

DltPlatform DltPlatform::from_grid(const LightGrid& grid) {
  DltPlatform p;
  for (const Cluster& c : grid.clusters) {
    DltWorker w;
    const Link link = c.link();
    w.comm = 1.0 / link.bandwidth;
    w.latency = link.latency;
    // The whole cluster acts as one aggregate worker.
    w.comp = 1.0 / (static_cast<double>(c.processors()) * c.speed);
    p.workers.push_back(w);
  }
  return p;
}

DltPlan single_round_bus(const DltPlatform& p, double volume,
                         double gather_ratio) {
  check_platform(p);
  if (volume <= 0) throw std::invalid_argument("volume must be positive");
  const double c = p.workers.front().comm;
  const double w = p.workers.front().comp;
  const double lat = p.workers.front().latency;
  for (const DltWorker& wk : p.workers)
    if (wk.comm != c || wk.comp != w || wk.latency != lat)
      throw std::invalid_argument("bus platform must be homogeneous");
  if (lat > 0) {
    // Latency breaks the pure geometric form; reuse the star solver, which
    // handles affine terms (identical links = a bus).
    DltPlan plan = single_round_star(p, volume, gather_ratio);
    plan.strategy = "single-round-bus";
    return plan;
  }

  const std::size_t n = p.workers.size();
  DltPlan plan;
  plan.strategy = "single-round-bus";
  plan.alpha.resize(n);
  if (c == 0.0) {
    // Infinite bandwidth: equal shares, perfect parallelism.
    std::fill(plan.alpha.begin(), plan.alpha.end(), volume / n);
    plan.makespan = w * volume / n;
    return plan;
  }
  // α_{i+1} = α_i · w/(c+w): every worker finishes at the same instant.
  const double q = w / (c + w);
  const double denom = q == 1.0 ? static_cast<double>(n)
                                : (1.0 - std::pow(q, n)) / (1.0 - q);
  const double alpha1 = volume / denom;
  double cur = alpha1;
  for (std::size_t i = 0; i < n; ++i) {
    plan.alpha[i] = cur;
    cur *= q;
  }
  plan.makespan = alpha1 * (c + w);
  // Non-overlapped mirror gather: results flow back sequentially.
  if (gather_ratio > 0) plan.makespan += c * gather_ratio * volume;
  return plan;
}

DltPlan single_round_star(const DltPlatform& p, double volume,
                          double gather_ratio) {
  check_platform(p);
  if (volume <= 0) throw std::invalid_argument("volume must be positive");
  std::vector<std::size_t> order = service_order(p);

  DltPlan plan;
  plan.strategy = "single-round-star";
  plan.alpha.assign(p.workers.size(), 0.0);

  // Solve with the first k workers of the order; shrink while the last
  // participant's share is negative (its link is too slow to help).
  for (std::size_t k = order.size(); k >= 1; --k) {
    // α_i = (T - S_{i-1} - lat_i)/(c_i + w_i) with S_i the bus busy time:
    // express α_i and S_i as affine functions a·T + b.
    std::vector<double> a(k), b(k);
    double su = 0.0, sv = 0.0;  // S_{i-1} = sv·T + su
    for (std::size_t idx = 0; idx < k; ++idx) {
      const DltWorker& wk = p.workers[order[idx]];
      const double inv = 1.0 / (wk.comm + wk.comp);
      a[idx] = (1.0 - sv) * inv;
      b[idx] = (-su - wk.latency) * inv;
      su += wk.latency + wk.comm * b[idx];
      sv += wk.comm * a[idx];
    }
    const double sum_a = std::accumulate(a.begin(), a.end(), 0.0);
    const double sum_b = std::accumulate(b.begin(), b.end(), 0.0);
    if (sum_a <= 0) continue;  // degenerate; try fewer workers
    const double T = (volume - sum_b) / sum_a;
    bool ok = true;
    for (std::size_t idx = 0; idx < k; ++idx)
      if (a[idx] * T + b[idx] < -kTimeEps) ok = false;
    if (!ok && k > 1) continue;
    double gather = 0.0;
    for (std::size_t idx = 0; idx < k; ++idx) {
      const double alpha = std::max(0.0, a[idx] * T + b[idx]);
      plan.alpha[order[idx]] = alpha;
      gather += p.workers[order[idx]].comm * gather_ratio * alpha;
    }
    plan.makespan = T + gather;
    return plan;
  }
  throw std::logic_error("star closed form failed");
}

DltPlan multi_round(const DltPlatform& p, double volume, int rounds,
                    double growth) {
  check_platform(p);
  if (volume <= 0) throw std::invalid_argument("volume must be positive");
  if (rounds < 1) throw std::invalid_argument("need at least one round");
  if (growth <= 0) throw std::invalid_argument("growth must be positive");
  const std::size_t n = p.workers.size();

  // Per-worker share follows the steady-state rates; per-round share grows
  // geometrically so early rounds are small (latency hiding).
  SteadyState ss = steady_state(p);
  double rate_sum = std::accumulate(ss.rate.begin(), ss.rate.end(), 0.0);
  std::vector<double> share(n);
  for (std::size_t i = 0; i < n; ++i)
    share[i] = rate_sum > 0 ? ss.rate[i] / rate_sum : 1.0 / n;

  std::vector<double> round_weight(static_cast<std::size_t>(rounds));
  double rw = 1.0, rw_sum = 0.0;
  for (int r = 0; r < rounds; ++r) {
    round_weight[static_cast<std::size_t>(r)] = rw;
    rw_sum += rw;
    rw *= growth;
  }

  // Exact one-port simulation: the master sends chunks round by round in
  // service order; each worker computes its chunks in arrival order.
  DltPlan plan;
  plan.strategy = growth == 1.0 ? "multi-round-uniform" : "multi-round-geometric";
  plan.rounds = rounds;
  plan.alpha.assign(n, 0.0);
  std::vector<std::size_t> order = service_order(p);
  double master_free = 0.0;
  std::vector<double> worker_free(n, 0.0);
  double makespan = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t i = order[idx];
      const DltWorker& wk = p.workers[i];
      const double chunk =
          volume * share[i] * round_weight[static_cast<std::size_t>(r)] / rw_sum;
      if (chunk <= 0) continue;
      plan.alpha[i] += chunk;
      const double send_end = master_free + wk.latency + wk.comm * chunk;
      master_free = send_end;
      const double start = std::max(send_end, worker_free[i]);
      worker_free[i] = start + wk.comp * chunk;
      makespan = std::max(makespan, worker_free[i]);
    }
  }
  plan.makespan = makespan;
  return plan;
}

SteadyState steady_state(const DltPlatform& p) {
  check_platform(p);
  SteadyState ss;
  ss.rate.assign(p.workers.size(), 0.0);
  double bus_budget = 1.0;  // fraction of time the one-port master can send
  for (std::size_t i : service_order(p)) {
    const DltWorker& wk = p.workers[i];
    const double compute_cap = 1.0 / wk.comp;
    const double bw_cap =
        wk.comm > 0 ? bus_budget / wk.comm : compute_cap;
    const double x = std::min(compute_cap, bw_cap);
    ss.rate[i] = x;
    bus_budget -= wk.comm * x;
    if (bus_budget <= 1e-15) break;
  }
  ss.throughput = std::accumulate(ss.rate.begin(), ss.rate.end(), 0.0);
  return ss;
}

DltPlan work_stealing(const DltPlatform& p, double volume, double chunk,
                      ChunkPolicy policy) {
  check_platform(p);
  if (volume <= 0) throw std::invalid_argument("volume must be positive");
  if (chunk <= 0) throw std::invalid_argument("chunk must be positive");
  const std::size_t n = p.workers.size();

  DltPlan plan;
  plan.rounds = 0;
  plan.alpha.assign(n, 0.0);
  switch (policy) {
    case ChunkPolicy::kFixed:
      plan.strategy = "steal-fixed";
      break;
    case ChunkPolicy::kGuided:
      plan.strategy = "steal-guided";
      break;
    case ChunkPolicy::kFactoring:
      plan.strategy = "steal-factoring";
      break;
  }

  // Event loop: min-heap of (idle time, worker); master serves FIFO
  // (one-port).  Ties broken by worker index for determinism.
  using Ev = std::pair<double, std::size_t>;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> idle;
  for (std::size_t i = 0; i < n; ++i) idle.push({0.0, i});

  double remaining = volume;
  double master_free = 0.0;
  double makespan = 0.0;
  // Factoring state: batches of n chunks, each batch = half the remainder.
  double batch_chunk = 0.0;
  int batch_left = 0;

  while (remaining > kTimeEps) {
    const auto [t, i] = idle.top();
    idle.pop();
    double s = chunk;
    if (policy == ChunkPolicy::kGuided) {
      s = std::max(chunk, remaining / (2.0 * static_cast<double>(n)));
    } else if (policy == ChunkPolicy::kFactoring) {
      if (batch_left == 0) {
        batch_chunk =
            std::max(chunk, remaining / (2.0 * static_cast<double>(n)));
        batch_left = static_cast<int>(n);
      }
      s = batch_chunk;
      --batch_left;
    }
    s = std::min(s, remaining);
    remaining -= s;
    const DltWorker& wk = p.workers[i];
    const double send_start = std::max(t, master_free);
    const double send_end = send_start + wk.latency + wk.comm * s;
    master_free = send_end;
    const double finish = send_end + wk.comp * s;
    plan.alpha[i] += s;
    ++plan.rounds;  // total chunks served
    makespan = std::max(makespan, finish);
    idle.push({finish, i});
  }
  plan.makespan = makespan;
  return plan;
}

}  // namespace lgs
