// Divisible Load Theory library (§2.1, used by §5.2 for multi-parametric
// grid jobs).
//
// A divisible load is a volume V of arbitrarily partitionable, independent
// fine-grain computation.  The master distributes fractions α_i to workers
// over a one-port medium (bus or star); worker i spends c_i seconds of
// communication and w_i seconds of computation per unit.  The classical
// results implemented here:
//   * single-round closed forms on a bus (homogeneous) and a star
//     (heterogeneous, served in increasing-c_i order), with optional
//     per-message latency and result gather-back (mirror) phase;
//   * multi-round distribution (uniform or geometric chunks);
//   * steady-state throughput (optimal asymptotic rate, polynomial as the
//     paper notes for multi-parametric jobs);
//   * dynamic distribution by work stealing / self-scheduling chunks.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "platform/platform.h"

namespace lgs {

/// One worker of a star (or bus) platform.
struct DltWorker {
  double comm = 1.0;  ///< c_i: seconds per load unit on this worker's link
  double comp = 1.0;  ///< w_i: seconds per load unit of computation
  double latency = 0.0;  ///< per-message latency (seconds)
};

/// Master + workers.  On a bus all comm rates must be equal (the medium is
/// shared); on a star they are per-link.
struct DltPlatform {
  std::vector<DltWorker> workers;

  static DltPlatform homogeneous_bus(int n, double comm, double comp,
                                     double latency = 0.0);
  /// Build a star from a light grid: one worker per cluster, aggregate
  /// compute rate = 1 / (processors · speed), link from the cluster NIC.
  static DltPlatform from_grid(const LightGrid& grid);
};

/// Outcome of a distribution plan.
struct DltPlan {
  std::vector<double> alpha;  ///< load fraction per worker (sums to volume)
  Time makespan = 0.0;
  int rounds = 1;
  std::string strategy;
};

/// Single-round distribution on a shared bus (homogeneous workers),
/// closed-form geometric fractions; all workers finish simultaneously.
/// `gather_ratio` > 0 adds a mirror result-collection phase transferring
/// gather_ratio · α_i per worker in reverse order.
DltPlan single_round_bus(const DltPlatform& p, double volume,
                         double gather_ratio = 0.0);

/// Single-round distribution on a heterogeneous star.  Workers are served
/// in increasing c_i order (the optimal single-installment order); workers
/// whose participation would be counter-productive receive nothing.
DltPlan single_round_star(const DltPlatform& p, double volume,
                          double gather_ratio = 0.0);

/// Multi-round distribution: `rounds` installments per worker.  Chunk
/// growth factor 1 = uniform rounds; > 1 = geometric (later rounds bigger,
/// hiding latency at the start).  Makespan via exact one-port simulation.
DltPlan multi_round(const DltPlatform& p, double volume, int rounds,
                    double growth = 1.0);

/// Steady-state throughput (load units per second) of the star under the
/// one-port model: maximize Σ x_i s.t. Σ c_i x_i ≤ 1 and w_i x_i ≤ 1.
/// Returns per-worker rates in `alpha` (units/second) and throughput in
/// 1/makespan (makespan = time to process `volume` asymptotically).
struct SteadyState {
  std::vector<double> rate;
  double throughput = 0.0;
};
SteadyState steady_state(const DltPlatform& p);

/// Dynamic distribution: workers self-schedule chunks from the master
/// (one-port FIFO service).  Chunking policies for the ablation bench.
enum class ChunkPolicy {
  kFixed,      ///< constant chunk size
  kGuided,     ///< remaining / (2n), floor at `chunk`
  kFactoring,  ///< batches of n chunks, each batch = half the remainder
};
DltPlan work_stealing(const DltPlatform& p, double volume, double chunk,
                      ChunkPolicy policy = ChunkPolicy::kFixed);

}  // namespace lgs
