#include "dlt/tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lgs {

namespace {

/// Affine completion model of a subtree: T(V) = w·V + lat.
struct Equivalent {
  double w = 0.0;
  double lat = 0.0;
};

struct StarSolve {
  double master_alpha = 0.0;
  std::vector<double> child_alpha;
  double T = 0.0;
};

/// Solve the one-port star where the master may compute (rate w0, 0 =
/// none) and child i is an affine worker behind link (c_i, lat_i).  All
/// participants finish simultaneously; children whose share would be
/// negative are dropped (served none).  Children must be pre-sorted by
/// increasing c.
StarSolve solve_star(double w0, const std::vector<Equivalent>& eq,
                     const std::vector<double>& comm,
                     const std::vector<double>& link_lat, double volume) {
  const std::size_t n = eq.size();
  for (std::size_t active = n + 1; active >= 1; --active) {
    // Master: alpha0 = T / w0 (a = 1/w0).  Child i (i < active):
    // finishes at S_{i-1} + lat_i + c_i·α_i + w_i·α_i + lat_eq_i = T
    // → α_i = (T - S_{i-1} - lat_i - lat_eq_i) / (c_i + w_i).
    double sum_a = w0 > 0 ? 1.0 / w0 : 0.0;
    double sum_b = 0.0;
    std::vector<double> a(n, 0.0), b(n, 0.0);
    double su = 0.0, sv = 0.0;  // S = sv·T + su (bus busy time)
    const std::size_t kids = active - 1;
    for (std::size_t i = 0; i < kids; ++i) {
      const double inv = 1.0 / (comm[i] + eq[i].w);
      a[i] = (1.0 - sv) * inv;
      b[i] = (-su - link_lat[i] - eq[i].lat) * inv;
      su += link_lat[i] + comm[i] * b[i];
      sv += comm[i] * a[i];
      sum_a += a[i];
      sum_b += b[i];
    }
    if (sum_a <= 0) continue;
    const double T = (volume - sum_b) / sum_a;
    bool ok = T > 0;
    for (std::size_t i = 0; i < kids && ok; ++i)
      if (a[i] * T + b[i] < -kTimeEps) ok = false;
    if (!ok && active > 1) continue;
    StarSolve out;
    out.T = T;
    out.master_alpha = w0 > 0 ? T / w0 : 0.0;
    out.child_alpha.assign(n, 0.0);
    for (std::size_t i = 0; i < kids; ++i)
      out.child_alpha[i] = std::max(0.0, a[i] * T + b[i]);
    // Renormalize the master share for rounding (conservation).
    double assigned = out.master_alpha +
                      std::accumulate(out.child_alpha.begin(),
                                      out.child_alpha.end(), 0.0);
    if (w0 > 0) out.master_alpha += volume - assigned;
    return out;
  }
  throw std::logic_error("tree star solve failed");
}

/// Children of `node` sorted by increasing link comm (service order).
std::vector<std::size_t> child_order(const DltTreeNode& node) {
  std::vector<std::size_t> order(node.children.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return node.children[x].comm < node.children[y].comm;
                   });
  return order;
}

/// Bottom-up reduction: the affine completion model of the whole subtree.
Equivalent reduce(const DltTreeNode& node) {
  if (node.is_leaf()) {
    if (node.comp <= 0)
      throw std::invalid_argument("leaf node without computing rate");
    return {node.comp, 0.0};
  }
  const auto order = child_order(node);
  std::vector<Equivalent> eq;
  std::vector<double> comm, lat;
  for (std::size_t i : order) {
    eq.push_back(reduce(node.children[i]));
    comm.push_back(node.children[i].comm);
    lat.push_back(node.children[i].latency);
  }
  // Symbolic solve at reference volume 1 and 2 to recover the affine
  // coefficients T(V) = w·V + lat.
  const double t1 = solve_star(node.comp, eq, comm, lat, 1.0).T;
  const double t2 = solve_star(node.comp, eq, comm, lat, 2.0).T;
  Equivalent out;
  out.w = t2 - t1;
  out.lat = t1 - out.w;
  if (out.w <= 0) throw std::logic_error("non-increasing subtree model");
  return out;
}

void distribute(const DltTreeNode& node, double volume, DltTreePlan* plan) {
  plan->node.push_back(node.name);
  const std::size_t own_slot = plan->alpha.size();
  plan->alpha.push_back(0.0);
  if (node.is_leaf()) {
    plan->alpha[own_slot] = volume;
    return;
  }
  const auto order = child_order(node);
  std::vector<Equivalent> eq;
  std::vector<double> comm, lat;
  for (std::size_t i : order) {
    eq.push_back(reduce(node.children[i]));
    comm.push_back(node.children[i].comm);
    lat.push_back(node.children[i].latency);
  }
  const StarSolve solve = solve_star(node.comp, eq, comm, lat, volume);
  plan->alpha[own_slot] = solve.master_alpha;
  // Recurse in the node's declared child order (pre-order output), using
  // the share computed for each child's position in the service order.
  std::vector<double> share(node.children.size(), 0.0);
  for (std::size_t k = 0; k < order.size(); ++k)
    share[order[k]] = solve.child_alpha[k];
  for (std::size_t i = 0; i < node.children.size(); ++i)
    distribute(node.children[i], share[i], plan);
}

}  // namespace

DltTreePlan tree_distribute(const DltTreeNode& root, double volume) {
  if (volume <= 0) throw std::invalid_argument("volume must be positive");
  const Equivalent eq = reduce(root);
  DltTreePlan plan;
  plan.makespan = eq.w * volume + eq.lat;
  plan.equivalent = {0.0, eq.w, eq.lat};
  distribute(root, volume, &plan);
  return plan;
}

DltTreeNode ciment_tree() {
  const LightGrid grid = ciment_grid();
  DltTreeNode root;
  root.name = "ciment-wan";
  root.comp = 0.0;  // the WAN head node only forwards
  for (const Cluster& c : grid.clusters) {
    DltTreeNode frontend;
    frontend.name = c.name;
    const Link wan = grid.wan;
    frontend.comm = 1.0 / wan.bandwidth;
    frontend.latency = wan.latency;
    frontend.comp = 0.0;  // front-end forwards to the nodes
    // One leaf per cluster aggregating its nodes behind the local link.
    DltTreeNode nodes;
    nodes.name = c.name + "-nodes";
    const Link local = c.link();
    nodes.comm = 1.0 / local.bandwidth;
    nodes.latency = local.latency;
    nodes.comp = 1.0 / (static_cast<double>(c.processors()) * c.speed);
    frontend.children.push_back(std::move(nodes));
    root.children.push_back(std::move(frontend));
  }
  return root;
}

}  // namespace lgs
