// Divisible load on tree networks.
//
// The DLT model entered the literature through tree networks — the
// paper's reference [4] is Cheng & Robertazzi, "Distributed computation
// for a tree network with communication delays".  A light grid is itself
// a two-level tree (master → cluster front-ends → nodes), so this module
// solves the hierarchical distribution the CIMENT platform actually
// needs: each subtree is collapsed into an *equivalent worker* (the
// classical bottom-up reduction), then the root runs the star closed
// form and shares are pushed back down.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dlt/dlt.h"

namespace lgs {

/// A node of the distribution tree.  Leaves compute; internal nodes
/// forward load to their children over per-child links and may compute
/// themselves (front-end model).
struct DltTreeNode {
  std::string name;
  /// Link from the parent (ignored for the root).
  double comm = 0.0;
  double latency = 0.0;
  /// Own computing rate, seconds per unit (0 = pure forwarder).
  double comp = 0.0;
  std::vector<DltTreeNode> children;

  bool is_leaf() const { return children.empty(); }
};

/// Result of a tree distribution: load per node, in pre-order.
struct DltTreePlan {
  std::vector<std::string> node;   ///< pre-order names
  std::vector<double> alpha;       ///< load fraction per node (same order)
  Time makespan = 0.0;
  /// Equivalent (comm, comp) of the whole tree seen from above — the
  /// bottom-up reduction result, useful for composing grids.
  DltWorker equivalent;
};

/// Single-installment distribution of `volume` over the tree: children of
/// each node are served in increasing equivalent-comm order, every branch
/// finishes simultaneously (the Cheng–Robertazzi optimality condition).
DltTreePlan tree_distribute(const DltTreeNode& root, double volume);

/// The CIMENT grid as a two-level tree: a WAN root forwarding to each
/// cluster's front-end, which spreads over its nodes' shared local link.
DltTreeNode ciment_tree();

}  // namespace lgs
