#include "sim/stream_sim.h"

#include <algorithm>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/report.h"

namespace lgs {

StreamGridSim::StreamGridSim(const LightGrid& grid, const GridSimOptions& opts,
                             Options stream_opts, SinkFn sink)
    : sim_(grid, opts),
      opts_(stream_opts),
      sink_(std::move(sink)),
      ring_(std::max<std::size_t>(2, stream_opts.ring_capacity)),
      batch_buf_(std::max<std::size_t>(1, stream_opts.batch)) {}

void StreamGridSim::begin_if_needed() {
  if (begun_) return;
  begun_ = true;
  if (!sim_.streaming()) sim_.begin_streaming();
  emit_cursor_.assign(sim_.cluster_count(), 0);
  next_metrics_ = opts_.metrics_interval;
}

bool StreamGridSim::poll(const TablePool& tables) {
  if (done_) return false;
  begin_if_needed();
  const std::size_t n = ring_.wait_pop_n(batch_buf_.data(), batch_buf_.size());
  if (n == 0) {
    // Closed and drained: run the engine dry and publish the aggregate.
    result_ = sim_.finish_streaming(opts_.horizon);
    emit_completions(/*drain_all=*/true);
    if (opts_.metrics_interval > 0.0) emit_metrics();
    done_ = true;
    return false;
  }
  const std::size_t clusters = sim_.cluster_count();
  Time frontier = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const HotJob& h = batch_buf_[i];
    // Home rule of GridSim::submit_store: community % cluster count.
    const std::size_t home =
        static_cast<std::size_t>(h.community < 0 ? 0 : h.community) % clusters;
    sim_.ingest(h, tables, home);
    frontier = std::max(frontier, effective_grid_release(h.release));
  }
  // The frontier instant stays pending (advance_to's contract), so jobs
  // of the next batch releasing exactly at the frontier still route in
  // the batch replay's tie-break position.
  if (frontier > sim_.simulator().now()) sim_.advance_to(frontier);
  emit_completions(/*drain_all=*/false);
  if (opts_.metrics_interval > 0.0) emit_metrics();
  return true;
}

GridSimResult StreamGridSim::serve(const TablePool& tables) {
  while (poll(tables)) {
  }
  return result_;
}

const GridSimResult& StreamGridSim::result() const {
  if (!done_) throw std::logic_error("result() before the stream finished");
  return result_;
}

Time StreamGridSim::clock() const { return sim_.simulator().now(); }

void StreamGridSim::emit_completions(bool drain_all) {
  const Time now = sim_.simulator().now();
  for (std::size_t c = 0; c < sim_.cluster_count(); ++c) {
    const OnlineCluster& cl = sim_.cluster(c);
    const auto& recs = cl.local_records();
    std::size_t& cursor = emit_cursor_[c];
    while (cursor < recs.size()) {
      const LocalJobRecord& r = recs[cursor];
      // Completed iff started (positive durations: a started record has
      // finish > 0, a queued one has finish == 0) and its completion
      // event — at (finish, priority 0), behind the advance_to frontier
      // — already fired.  A queued/running record at the cursor holds
      // the line: records emit in per-cluster submission order, each
      // exactly once.
      if (!drain_all && !(r.finish > 0.0 && r.finish < now)) break;
      if (sink_) {
        JsonWriter w(/*compact=*/true);
        w.begin_object();
        w.key("type").value("job");
        w.key("cluster").value(static_cast<int>(cl.id()));
        w.key("job").value(static_cast<std::uint64_t>(r.id));
        w.key("community").value(r.community);
        w.key("procs").value(r.procs);
        w.key("submit").value(r.submit);
        w.key("start").value(r.start);
        w.key("finish").value(r.finish);
        w.key("wait").value(r.wait());
        w.key("flow").value(r.flow());
        w.end_object();
        sink_(w.str());
      }
      ++cursor;
      ++records_emitted_;
    }
  }
}

void StreamGridSim::emit_metrics() {
  const Time now = sim_.simulator().now();
  if (now + kTimeEps < next_metrics_) return;
  next_metrics_ = now + opts_.metrics_interval;
  if (!sink_) return;
  std::uint64_t queued = 0, running = 0, be_running = 0;
  for (std::size_t c = 0; c < sim_.cluster_count(); ++c) {
    const OnlineCluster& cl = sim_.cluster(c);
    queued += cl.queued_jobs();
    running += cl.running_local_jobs();
    be_running += cl.running_besteffort_jobs();
  }
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.key("type").value("metrics");
  w.key("t").value(now);
  w.key("ingested").value(static_cast<std::uint64_t>(sim_.ingested()));
  w.key("emitted").value(records_emitted_);
  w.key("queued").value(queued);
  w.key("running_local").value(running);
  w.key("running_besteffort").value(be_running);
  w.key("pending_events").value(
      static_cast<std::uint64_t>(sim_.simulator().pending_count()));
  w.end_object();
  sink_(w.str());
}

std::vector<unsigned char> StreamGridSim::checkpoint() const {
  if (done_)
    throw std::logic_error("checkpoint() after the stream finished");
  CheckpointWriter w;
  w.str("streamsim");
  w.u64(emit_cursor_.size());
  for (const std::size_t c : emit_cursor_) w.u64(c);
  w.f64(next_metrics_);
  w.u64(records_emitted_);
  w.u8(begun_ ? 1 : 0);
  const std::vector<unsigned char> inner = sim_.checkpoint();
  w.bytes(inner.data(), inner.size());
  return w.finish();
}

void StreamGridSim::restore(const std::vector<unsigned char>& blob) {
  if (begun_ || done_)
    throw std::logic_error("restore() needs a fresh service");
  CheckpointReader r(blob);
  if (r.str() != "streamsim")
    throw CheckpointError("snapshot was not written by the streaming service");
  const std::uint64_t n = r.u64();
  if (n != sim_.cluster_count())
    throw CheckpointError("snapshot cluster count mismatch");
  emit_cursor_.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < emit_cursor_.size(); ++i)
    emit_cursor_[i] = static_cast<std::size_t>(r.u64());
  next_metrics_ = r.f64();
  records_emitted_ = r.u64();
  begun_ = r.u8() != 0;
  const std::vector<unsigned char> inner = r.blob();
  if (!r.exhausted())
    throw CheckpointError("trailing bytes after the streaming snapshot");
  sim_.restore(inner);
}

}  // namespace lgs
