// Minimal discrete-event simulation kernel (SimGrid-lite).
//
// The grid-level policies of §5.2 (centralized best-effort filling,
// decentralized load exchange) are dynamic: jobs arrive over time, grid
// jobs get killed and resubmitted.  This kernel provides the event queue
// those simulations run on: callbacks at simulated times, deterministic
// ordering (time, priority, insertion sequence), and event cancellation
// (needed to kill a best-effort job's completion event).
//
// Hot-path representation (the million-job replay bar of BENCH_scale):
// the priority queue holds trivially-copyable 24-byte entries, and the
// callback of each pending event lives in a slab of reusable *slots* —
// captures up to kInlineCallback bytes are stored inline in the slot,
// larger ones in pooled overflow blocks recycled through a free list.
// After the first few events warm the slab, at()/run() perform no heap
// allocation at all (slot count tracks the number of *concurrently*
// pending events, not the number of events ever scheduled).  The
// std::function-based kernel this replaces survives as the differential
// oracle in tests/reference_simulator.h.
//
// Memory: construct with an ArenaRef to place the queue, the slot slab
// chunks and the pooled overflow blocks in a per-replay arena (the
// allocation-lifetime contract of docs/ARCHITECTURE.md "Memory model");
// default-constructed simulators fall back to the heap and behave as
// before.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/arena.h"
#include "core/types.h"

namespace lgs {

using EventId = std::uint64_t;

class Simulator {
 public:
  /// Captures up to this many bytes are stored inline in a slot.
  static constexpr std::size_t kInlineCallback = 48;
  /// Larger captures (up to this size) use pooled overflow blocks.
  static constexpr std::size_t kOverflowBlock = 512;

  Simulator() = default;
  /// Arena-backed kernel: event queue, slot slab and overflow pool live
  /// in `ref`'s arena (released with the replay, not event by event).
  explicit Simulator(ArenaRef ref)
      : ref_(ref),
        queue_(Later{}, ArenaVec<QEntry>(ArenaAllocator<QEntry>(ref))),
        slot_chunks_(ArenaAllocator<Slot*>(ref)),
        free_slots_(ArenaAllocator<std::uint32_t>(ref)),
        overflow_free_(ArenaAllocator<void*>(ref)) {}
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` (any void() callable) at absolute time `t` (>= now).
  /// Events at equal times fire by increasing priority, then insertion
  /// order.
  template <class F>
  EventId at(Time t, F&& cb, int priority = 0) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "Simulator callbacks must be callable as void()");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callback captures are not supported");
    if (t < now_ - kTimeEps)
      throw std::invalid_argument("cannot schedule an event in the past");
    const std::uint32_t slot_index = acquire_slot();
    Slot& slot = slot_at(slot_index);
    constexpr bool kInline = sizeof(Fn) <= kInlineCallback;
    try {
      if constexpr (kInline) {
        ::new (static_cast<void*>(slot.buf)) Fn(std::forward<F>(cb));
      } else {
        void* mem = acquire_overflow(sizeof(Fn));
        try {
          ::new (mem) Fn(std::forward<F>(cb));
        } catch (...) {
          release_overflow(mem, sizeof(Fn));
          throw;
        }
        slot.heap = mem;
      }
    } catch (...) {
      free_slots_.push_back(slot_index);
      throw;
    }
    slot.ops = &OpsFor<Fn, kInline>::value;
    const EventId id = shared_ids_
                           ? shared_ids_->fetch_add(1, std::memory_order_relaxed)
                           : next_id_++;
    if (shared_ids_ && id >= next_id_) next_id_ = id + 1;
    try {
      queue_.push(QEntry{t, id, slot_index, priority});
    } catch (...) {
      release_slot(slot_index);  // destroy the payload, recycle the slot
      throw;
    }
    return id;
  }

  /// Schedule `cb` after a delay.
  template <class F>
  EventId after(Time delay, F&& cb, int priority = 0) {
    return at(now_ + delay, std::forward<F>(cb), priority);
  }

  /// Cancel a pending event (no-op if it already fired, or if `id` was
  /// never returned by at()/after() — ids of future events must not be
  /// pre-cancelled).  Cancels of already-consumed ids stay bounded even
  /// when the queue never drains (the streaming-mode shape): ids below
  /// the consumed-id watermark are rejected outright, and the set is
  /// pruned against the actual pending ids when it outgrows them, so
  /// repeated cancel-after-fire cannot grow it without bound.
  void cancel(EventId id) {
    if (id == 0 || id >= next_id_ || id < watermark_) return;
    cancelled_.insert(id);
    if (cancelled_.size() >= next_prune_) prune_cancellations();
  }

  /// Draw insertion ids from a shared atomic counter instead of the
  /// private sequence.  This is how the coupled sharded engine
  /// (sim/shard_sim.h) reproduces the serial engine's global id
  /// assignment across several per-shard kernels: while the coordinator
  /// executes events one at a time in merged (time, priority, id) order,
  /// every at() call allocates the exact id the serial replay would have
  /// used.  The counter must be monotone and >= every id this kernel has
  /// handed out (enable it before the first at()).  Pass nullptr to
  /// return to the private sequence.  The kernel keeps a local upper
  /// bound mirror so cancel()'s never-issued-id guard stays exact.
  void share_ids(std::atomic<EventId>* counter) { shared_ids_ = counter; }

  /// Peek the next live event without executing it: prunes cancelled
  /// entries off the queue head, then reports the (time, priority, id)
  /// key of the true head.  Returns false when nothing live is pending.
  /// This is the merge key the coupled sharded engine compares across
  /// shards to pick the globally next event.
  bool peek_next(Time* t, int* priority, EventId* id);

  /// Execute exactly one live event (skipping cancelled entries), or
  /// return false if the queue holds none.  Does not advance now_ past
  /// the executed event's time.
  bool step_one();

  /// Run until the queue drains (or `horizon` is reached, if finite).
  void run(Time horizon = kTimeInfinity);

  /// One live (not cancelled) pending event, as the introspection
  /// iterator reports it.  The callback payload stays opaque — owners of
  /// the event (the engines) know what they scheduled under each id.
  struct PendingEvent {
    Time t = 0.0;
    int priority = 0;
    EventId id = 0;
  };

  /// Const forward iterator over the live pending events, in HEAP order
  /// (an implementation detail — callers needing (t, priority, id) order
  /// must sort).  Entries whose id was cancelled are skipped, so the
  /// count seen equals the events a full drain would still execute.
  /// This is the serialization surface of core/checkpoint: an engine
  /// enumerates the pending set to prove every event is accounted for
  /// before writing a snapshot — and tests assert queue contents
  /// directly instead of via side effects.
  class PendingIterator {
   public:
    using value_type = PendingEvent;

    PendingEvent operator*() const {
      const QEntry& e = sim_->queue_.entries()[index_];
      return PendingEvent{e.t, e.priority, e.id};
    }
    PendingIterator& operator++() {
      ++index_;
      skip_cancelled();
      return *this;
    }
    bool operator==(const PendingIterator& o) const {
      return index_ == o.index_;
    }
    bool operator!=(const PendingIterator& o) const { return !(*this == o); }

   private:
    friend class Simulator;
    PendingIterator(const Simulator* sim, std::size_t index)
        : sim_(sim), index_(index) {
      skip_cancelled();
    }
    void skip_cancelled() {
      const auto& entries = sim_->queue_.entries();
      while (index_ < entries.size() &&
             sim_->cancelled_.count(entries[index_].id) > 0)
        ++index_;
    }
    const Simulator* sim_;
    std::size_t index_;
  };

  struct PendingRange {
    PendingIterator begin_, end_;
    PendingIterator begin() const { return begin_; }
    PendingIterator end() const { return end_; }
  };

  /// Live pending events (cancelled entries excluded), heap order.
  PendingRange pending_events() const {
    return PendingRange{PendingIterator(this, 0),
                        PendingIterator(this, queue_.entries().size())};
  }

  /// Live pending events, counted through the same filter.
  std::size_t pending_count() const {
    std::size_t n = 0;
    for ([[maybe_unused]] const PendingEvent& e : pending_events()) ++n;
    return n;
  }

  /// The id the next at()/after() call will hand out (snapshot field:
  /// restoring it replays the uninterrupted run's id sequence, which is
  /// what keeps same-instant tie-breaks bit-identical after a restore).
  EventId next_event_id() const { return next_id_; }

  /// Checkpoint-restore entry point: drop EVERY pending event (payloads
  /// destroyed, slots recycled) and all cancellations, pin the clock to
  /// `now` and the id sequence to `next_id` (>= every id about to be
  /// re-scheduled), and restore the executed-event count.  Followed by
  /// one restore_event() per serialized pending event.
  void reset_for_restore(Time now, EventId next_id, std::uint64_t executed);

  /// Re-schedule a serialized pending event under its ORIGINAL id (must
  /// be < next_event_id(); only valid after reset_for_restore).  The
  /// (t, priority, id) queue key is reproduced exactly, so the restored
  /// run pops events in the uninterrupted run's order.
  template <class F>
  void restore_event(Time t, int priority, EventId id, F&& cb) {
    if (id == 0 || id >= next_id_)
      throw std::invalid_argument("restore_event id outside [1, next_id)");
    if (t < now_ - kTimeEps)
      throw std::invalid_argument("restore_event in the past");
    const EventId keep_next = next_id_;
    next_id_ = id;  // let at() assign exactly `id`
    std::atomic<EventId>* shared = shared_ids_;
    shared_ids_ = nullptr;
    try {
      at(t, std::forward<F>(cb), priority);
    } catch (...) {
      next_id_ = keep_next;
      shared_ids_ = shared;
      throw;
    }
    next_id_ = keep_next;
    shared_ids_ = shared;
    watermark_ = std::min(watermark_, id);
  }

  /// Advance the clock to exactly `t` (>= now), executing every pending
  /// event strictly ordered before the queue position (t,
  /// before_priority): all events at earlier times, plus events at `t`
  /// whose priority is < before_priority.  Events at (t, >=
  /// before_priority) stay pending, and now() == t afterwards even if
  /// nothing fired.  This is the quiescence primitive of the sharded
  /// grid engine (sim/shard_sim.h): each shard's clock is pinned to a
  /// global synchronization instant before cross-shard state is read,
  /// replaying exactly the serial pump's position in the tie-break
  /// order (time, priority, insertion id).
  void run_until(Time t, int before_priority);

  /// Number of events executed so far (for the micro bench).
  std::uint64_t executed() const { return executed_; }

  /// Cancellations not yet matched against a popped event.  Bounded by
  /// O(pending events + prune threshold) even without a drain: ids are
  /// erased when their event pops, ids below the consumed-id watermark
  /// are never admitted, the set is pruned against the pending ids when
  /// it outgrows them, and it is flushed whenever the queue drains.
  std::size_t pending_cancellations() const { return cancelled_.size(); }

  /// Lower bound on live event ids: every id below it has been consumed
  /// (fired or cancelled), so cancelling it is an immediate no-op.
  /// Advanced opportunistically on in-order pops, exactly on drain and
  /// at each cancellation prune.
  EventId consumed_watermark() const { return watermark_; }

  /// Callback slots ever created — tracks the peak number of
  /// *concurrently* pending events, not the events ever scheduled
  /// (tests/bench assert this stays flat across million-event replays).
  std::size_t slot_capacity() const { return slot_count_; }

  /// Pooled overflow blocks ever allocated (captures past
  /// kInlineCallback bytes); recycled through a free list, so this too
  /// tracks concurrency, not event count.
  std::size_t overflow_blocks_allocated() const { return overflow_blocks_; }

 private:
  /// Per-callback-type dispatch table (static storage, one per type).
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    std::size_t size;     ///< sizeof the stored callable
    bool inline_stored;   ///< payload lives in Slot::buf, not Slot::heap
  };
  template <class Fn, bool Inline>
  struct OpsFor {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops value{&invoke, &destroy, sizeof(Fn), Inline};
  };

  /// One slab slot: the callback payload of one pending event.  Slots
  /// live in fixed-size chunks (stable addresses; grows chunk by chunk
  /// from ref_) and are recycled through free_slots_.
  struct Slot {
    const Ops* ops = nullptr;
    void* heap = nullptr;
    alignas(std::max_align_t) unsigned char buf[kInlineCallback];
  };

  /// Priority-queue entry: trivially copyable (heap sift operations
  /// never touch the callback payload) and packed to 24 bytes — the
  /// field order avoids alignment padding.
  struct QEntry {
    Time t;
    EventId id;
    std::uint32_t slot;
    int priority;
  };
  static_assert(sizeof(QEntry) == 24, "QEntry must stay padding-free");
  struct Later {
    bool operator()(const QEntry& a, const QEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };
  /// priority_queue with its container exposed: the cancellation pruner
  /// needs to enumerate the pending ids (read-only, heap order is fine).
  struct EventQueue : std::priority_queue<QEntry, ArenaVec<QEntry>, Later> {
    using priority_queue::priority_queue;
    const ArenaVec<QEntry>& entries() const { return c; }
  };

  /// Slots per slab chunk.  64 slots x 64 bytes of Slot ≈ 4 KiB chunks.
  static constexpr std::size_t kSlotChunk = 64;

  /// Pop + execute the queue head (shared body of run/run_until).
  void step();
  /// Drained-queue bookkeeping shared by run/run_until: flush the
  /// cancellation set and jump the consumed-id watermark.
  void note_if_drained();

  std::uint32_t acquire_slot();
  /// Destroy the payload of `index` and recycle slot + overflow block.
  void release_slot(std::uint32_t index);
  /// Drop cancelled ids that no longer match any pending event and
  /// advance the consumed-id watermark to the smallest pending id.
  /// Amortized O(1) per cancel: runs only when the set doubled since the
  /// last prune, costs O(pending + cancelled) when it does.
  void prune_cancellations();
  Slot& slot_at(std::uint32_t i) {
    return slot_chunks_[i / kSlotChunk][i % kSlotChunk];
  }
  void* acquire_overflow(std::size_t size);
  void release_overflow(void* mem, std::size_t size);

  /// Cancellation-set prune trigger (see prune_cancellations).
  static constexpr std::size_t kMinPrune = 64;

  ArenaRef ref_;
  Time now_ = 0.0;
  std::atomic<EventId>* shared_ids_ = nullptr;
  EventId next_id_ = 1;
  EventId watermark_ = 1;  ///< every id below this has been consumed
  std::size_t next_prune_ = kMinPrune;
  std::uint64_t executed_ = 0;
  EventQueue queue_;
  std::unordered_set<EventId> cancelled_;
  ArenaVec<Slot*> slot_chunks_;
  std::size_t slot_count_ = 0;  ///< slots constructed across all chunks
  ArenaVec<std::uint32_t> free_slots_;
  ArenaVec<void*> overflow_free_;
  std::size_t overflow_blocks_ = 0;
};

}  // namespace lgs
