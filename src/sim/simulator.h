// Minimal discrete-event simulation kernel (SimGrid-lite).
//
// The grid-level policies of §5.2 (centralized best-effort filling,
// decentralized load exchange) are dynamic: jobs arrive over time, grid
// jobs get killed and resubmitted.  This kernel provides the event queue
// those simulations run on: callbacks at simulated times, deterministic
// ordering (time, priority, insertion sequence), and event cancellation
// (needed to kill a best-effort job's completion event).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace lgs {

using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now).  Events at equal times
  /// fire by increasing priority, then insertion order.
  EventId at(Time t, Callback cb, int priority = 0);

  /// Schedule `cb` after a delay.
  EventId after(Time delay, Callback cb, int priority = 0) {
    return at(now_ + delay, std::move(cb), priority);
  }

  /// Cancel a pending event (no-op if it already fired).
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Run until the queue drains (or `horizon` is reached, if finite).
  void run(Time horizon = kTimeInfinity);

  /// Number of events executed so far (for the micro bench).
  std::uint64_t executed() const { return executed_; }

  /// Cancellations not yet matched against a popped event.  Bounded:
  /// ids are erased when their event pops, and the set is flushed
  /// whenever the queue drains (any survivors reference fired or
  /// never-existing events) — so repeated cancel/run cycles cannot
  /// grow it without bound.
  std::size_t pending_cancellations() const { return cancelled_.size(); }

 private:
  struct Ev {
    Time t;
    int priority;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace lgs
