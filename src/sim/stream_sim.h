// Streaming service mode: live job ingestion over a bounded pipeline.
//
// GridSim replays a trace it was handed up front; this driver turns the
// same engine into a long-running *service*.  A producer thread feeds
// 64-byte HotJob rows (release-ordered, like any submission log) into a
// bounded SPSC ring (core/spsc_ring.h) — a full ring blocks the
// producer, which is the backpressure contract: the simulator, not an
// unbounded buffer, paces ingestion.  The service thread drains the
// ring in batches, ingests each row into the grid engine and advances
// the simulated clock to the newest release frontier; because the
// frontier instant itself stays pending (GridSim::advance_to), the
// streamed replay is bit-identical to the equivalent batch run.
//
// Results stream out as newline-delimited JSON through a caller sink:
// one `{"type":"job",...}` record per completed local job (per-cluster
// submission order) plus periodic `{"type":"metrics",...}` snapshots of
// the live engine.  The whole service — engine plus driver cursors —
// checkpoints into one versioned snapshot (core/checkpoint): restore
// into a fresh service, re-feed the not-yet-ingested suffix of the
// stream, and the drained result matches the uninterrupted run's golden
// digest exactly.
//
// Thread boundaries: push/push_n/close on ONE producer thread,
// everything else (poll/serve/checkpoint/restore/result) on ONE service
// thread.  Single-threaded use (push then poll from the same thread) is
// fine as long as pushes between polls stay under the ring capacity.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/spsc_ring.h"
#include "sim/grid_sim.h"

namespace lgs {

class StreamGridSim {
 public:
  struct Options {
    /// Ring slots (rounded up to a power of two).  Full ring = blocked
    /// producer: this bound is the whole backpressure mechanism.
    std::size_t ring_capacity = 1024;
    /// Max rows ingested per poll() step.
    std::size_t batch = 256;
    /// Simulated-time period of `{"type":"metrics"}` snapshot lines
    /// (sampled at poll quiescent points); 0 disables them.
    Time metrics_interval = 0.0;
    /// Horizon passed to the final drain once the stream closes.
    Time horizon = kTimeInfinity;
  };

  /// Receives one complete JSON document per call (no trailing
  /// newline); the sink owns the "\n" framing and any I/O.  Called from
  /// the service thread only.  May be empty (records are dropped).
  using SinkFn = std::function<void(const std::string& line)>;

  StreamGridSim(const LightGrid& grid, const GridSimOptions& opts,
                Options stream_opts, SinkFn sink);

  // ---- producer side (one thread) --------------------------------------

  /// Blocking push with backpressure; rows must arrive in release order
  /// for batch-identical replay.  Table-model rows must reference the
  /// pool later passed to poll()/serve().
  void push(const HotJob& h) { ring_.push(h); }
  /// Bulk variant (one atomic publish for the whole span).
  void push_n(const HotJob* rows, std::size_t n) { ring_.push_n(rows, n); }
  /// End of stream (after the last push).
  void close() { ring_.close(); }

  // ---- service side (one thread) ---------------------------------------

  /// One service step: wait for stream input, ingest up to
  /// Options::batch rows (tables resolved against `tables`), advance
  /// the clock to the release frontier and emit completions/metrics.
  /// Returns false exactly once — when the stream is closed, drained
  /// and the final result is ready.  Quiescent between calls:
  /// checkpoint() is legal.
  bool poll(const TablePool& tables);

  /// Run poll() to completion and return the aggregated result.
  GridSimResult serve(const TablePool& tables);

  bool done() const { return done_; }
  /// The aggregate outcome; valid once done().
  const GridSimResult& result() const;

  /// Rows consumed from the stream so far — after restore(), the
  /// producer re-feeds the stream starting at this index.
  std::size_t ingested() const { return sim_.ingested(); }
  /// Per-job completion records emitted so far.
  std::uint64_t records_emitted() const { return records_emitted_; }
  Time clock() const;

  /// Snapshot the whole service (engine + driver cursors).  Call
  /// between poll() steps on the service thread.
  std::vector<unsigned char> checkpoint() const;
  /// Restore into a FRESH service built with the same grid, options and
  /// sink.  The producer then pushes the remaining rows (from
  /// ingested() on) and the service continues bit-identically.
  void restore(const std::vector<unsigned char>& blob);

  GridSim& grid_sim() { return sim_; }
  const GridSim& grid_sim() const { return sim_; }

 private:
  void begin_if_needed();
  void emit_completions(bool drain_all);
  void emit_metrics();

  GridSim sim_;
  Options opts_;
  SinkFn sink_;
  SpscRing<HotJob> ring_;
  std::vector<HotJob> batch_buf_;
  /// Per-cluster emission cursor into local_records() — records are
  /// emitted in per-cluster submission order, each exactly once.
  std::vector<std::size_t> emit_cursor_;
  Time next_metrics_ = 0.0;
  std::uint64_t records_emitted_ = 0;
  bool begun_ = false;
  bool done_ = false;
  GridSimResult result_;
};

}  // namespace lgs
