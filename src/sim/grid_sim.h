// Multi-cluster grid simulation engine (§5, the paper's headline
// scenario).
//
// Instantiates N `OnlineCluster`s on ONE shared DES `Simulator` and runs
// the whole light grid online: local jobs arrive at their home cluster
// and are routed by a grid policy (grid/exchange for the decentralized
// protocols, grid/global for the omniscient plan), while killable
// best-effort runs from a central server (grid/besteffort) fill the idle
// holes — a kill notifies the source so the run is resubmitted
// (§1.2/§5.2).  Heterogeneous cluster sizes/speeds and per-cluster node
// volatility are first-class: `make_skewed_grid` builds geometric
// size/speed ladders for the sweep axes in exp/grid_sweep, and
// `VolatilityProfile` drives capacity churn from an order-free seeded
// stream (core/rng.h `mix_seed`), so a whole grid simulation is a pure
// function of its inputs — the determinism contract of
// docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arena.h"
#include "core/job.h"
#include "core/job_store.h"
#include "grid/besteffort.h"
#include "grid/exchange.h"
#include "platform/platform.h"
#include "sim/online_cluster.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace lgs {

/// How an arriving local job is routed to a cluster (the §5.2 exchange
/// alternatives plus the "big global optimization" baseline).
enum class GridRouting {
  kIsolated,    ///< stay at the home cluster (fairness baseline)
  kThreshold,   ///< migrate when the home queue is over a wait threshold
  kEconomic,    ///< every cluster bids its expected completion time
  kGlobalPlan,  ///< omniscient ECT plan over all submissions (grid/global)
};

const char* to_string(GridRouting r);

/// The three decentralized routings map onto grid/exchange policies;
/// kGlobalPlan has no exchange equivalent (throws std::invalid_argument).
ExchangePolicy to_exchange_policy(GridRouting r);

/// Node-volatility scenario applied to every cluster (§1: "some nodes can
/// appear or disappear").  Each cluster draws its own event stream from
/// `mix_seed(volatility_seed, cluster_index)`: `events` capacity drops at
/// uniform times in [0, window], each to a uniform level not below
/// `floor_fraction` of the cluster, restored after a uniform outage in
/// [outage_min, outage_max].  Overlapping outages compose: the usable
/// capacity at any instant is the minimum over the active ones, so a
/// restore never cancels another outage still in progress.
struct VolatilityProfile {
  int events = 0;  ///< 0 = no churn
  Time window = 0.0;
  double floor_fraction = 0.5;
  Time outage_min = 0.5;
  Time outage_max = 3.0;
};

struct GridSimOptions {
  GridRouting routing = GridRouting::kIsolated;
  /// kThreshold parameters (see ExchangeOptions).
  double wait_threshold = 10.0;
  double migration_penalty = 1.0;
  /// Per-cluster submission system (EASY backfilling, kill policy).
  OnlineCluster::Options cluster;
  /// Grid campaigns served best-effort by a central server (empty = no
  /// best-effort layer).
  std::vector<ParametricBag> bags;
  /// Capacity churn, applied per cluster with independent seeded streams.
  VolatilityProfile volatility;
  std::uint64_t volatility_seed = 0;
};

/// Per-cluster outcome of one grid simulation.
struct GridClusterOutcome {
  ClusterId id = 0;
  int processors = 0;
  long local_jobs = 0;
  double local_mean_wait = 0.0;
  double local_mean_slowdown = 0.0;
  double utilization_local = 0.0;  ///< local work only
  double utilization_total = 0.0;  ///< local + best-effort
  BestEffortStats be;
  VolatilityStats volatility;
};

struct GridSimResult {
  Time horizon = 0.0;
  long jobs_completed = 0;
  long migrations = 0;  ///< jobs routed away from their home cluster
  double global_utilization = 0.0;
  double mean_flow = 0.0;
  double mean_wait = 0.0;
  double mean_slowdown = 0.0;
  std::vector<CommunityOutcome> communities;
  std::vector<GridClusterOutcome> clusters;
  long grid_runs_total = 0;
  long grid_runs_completed = 0;
  long grid_resubmissions = 0;
};

/// One registered submission of a grid engine: 8 bytes, indexing the
/// active job store.  Shared by the serial (GridSim) and sharded
/// (sim/shard_sim.h) engines so their routing preludes stay one code
/// path.
struct GridPending {
  std::uint32_t home;
  std::uint32_t index;  ///< row in the active JobStore
};

/// Same-instant priority of the grid arrival pump.  The per-job route
/// events the pump replaced were all scheduled before run() fired
/// anything, so their insertion ids won every same-time tie against the
/// priority-0 events created during the run (completions, volatility)
/// and their priority won against the +1 best-effort bootstrap.
/// Priority -2 reproduces exactly that: ahead of all of those at the
/// same instant.  (OnlineCluster's -1 release timers never arise inside
/// the grid engines — routing zeroes j.release — but note -2 would fire
/// before them, where an old priority-0 route event fired after; if
/// grid jobs ever keep deferred releases, revisit this ordering and the
/// golden digests together.)
constexpr int kGridArrivalPriority = -2;

/// Arrival instant of a registered job: negative releases clamp to the
/// start of the replay.
inline Time effective_grid_release(Time release) {
  return release > 0.0 ? release : 0.0;
}

/// submit_store prelude shared by both engines: group `store`'s rows by
/// home cluster (community % n), preserving store order inside each
/// group — the exact order submit_workloads(split_by_community(...))
/// produces, so the release-date stable sort breaks ties identically.
/// Returns the per-home counts (for reserve_submissions).
std::vector<std::size_t> group_pending_by_home(const JobStore& store,
                                               std::size_t n,
                                               ArenaVec<GridPending>& pending);

/// One scheduled set_capacity event of the volatility stream — recorded
/// so a checkpoint can tell which churn events are still ahead and
/// re-schedule exactly those under their original ids.
struct GridCapacityEvent {
  Time t = 0.0;
  EventId id = 0;
  std::uint32_t cluster = 0;
  std::int32_t cap = 0;
};

/// Schedule the §1 capacity-churn events of cluster `cluster_index` on
/// `sim`.  One independent stream per cluster, keyed on
/// mix_seed(seed, cluster_index) ONLY — never on schedule order or on
/// which engine (or shard) owns the cluster — so churn is bit-identical
/// across serial and sharded execution and adding a cluster never
/// perturbs the others.  When `out` is given, every scheduled event is
/// appended to it (the checkpoint bookkeeping of GridSim).
void schedule_cluster_volatility(Simulator& sim, OnlineCluster& cl,
                                 const VolatilityProfile& vol,
                                 std::uint64_t seed,
                                 std::size_t cluster_index,
                                 std::vector<GridCapacityEvent>* out = nullptr);

/// kGlobalPlan prelude shared by both engines: place every registered
/// submission with the heterogeneous ECT list scheduler of grid/global
/// and write the target cluster index of pending[i] to targets[i].
void plan_global_targets(const LightGrid& grid, const JobStore& jobs,
                         const GridPending* pending, std::size_t n,
                         std::uint32_t* targets);

/// Aggregate the outcome of a finished replay from the drained clusters
/// (cluster-index order).  Shared by both engines.
GridSimResult aggregate_grid_result(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters, Time horizon,
    long migrations, const CentralServer* server);

/// Engine-agnostic body of validate_grid_result (see below).
std::vector<std::string> validate_grid_clusters(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters,
    const GridSimResult& result);

/// The engine.  Usage: construct, `submit` / `submit_workloads` /
/// `submit_store`, `run()` once; the clusters stay inspectable
/// afterwards (local records, stats).
///
/// Memory: every per-replay allocation — the job store, the pending and
/// routing tables, the DES kernel's queue and slots, each cluster's
/// bookkeeping — lives in ONE replay arena.  By default the engine owns
/// it (released with the engine); pass an external Arena to reuse its
/// blocks across repeated replays (`arena.reset()` between runs), which
/// is how bench_scale amortizes warm-up and how each parallel sweep cell
/// keeps its allocations off the global allocator.
class GridSim {
 public:
  GridSim(const LightGrid& grid, const GridSimOptions& opts,
          Arena* arena = nullptr);

  /// Register `j` with home cluster index `home`.  Routing happens at
  /// j.release simulated time, inside `run()`.  The job is compacted
  /// into the engine's own store — no fat copy is kept.
  void submit(std::size_t home, const Job& j);

  /// Register `per_cluster[i]` as the local workload of cluster i.
  void submit_workloads(const std::vector<JobSet>& per_cluster);

  /// Borrow an already-built trace: every job of `store` is registered
  /// with home cluster `community % cluster_count()`, grouped by home in
  /// store order — exactly the submission order of
  /// submit_workloads(split_by_community(jobs, cluster_count())) — with
  /// zero per-job copies (the regression bar of tests/test_job_store.cpp).
  /// The caller keeps `store` alive through run().
  void submit_store(const JobStore& store);

  /// Route every submission, drive the event queue until it drains (or
  /// `horizon`), and aggregate the outcome.  Callable once.
  GridSimResult run(Time horizon = kTimeInfinity);

  // ---- checkpoint/restore (core/checkpoint) ----------------------------

  /// Batch-mode partial run: the full run() prelude, then drive the
  /// queue to exactly time `t` (every event strictly before `t`
  /// executed; events AT `t` stay pending).  Follow with checkpoint()
  /// and/or resume().  Callable once, like run().
  void run_to(Time t);

  /// Continue a run_to()/restore()d batch replay to completion and
  /// aggregate — `run_to(T); resume(h)` is bit-identical to `run(h)`.
  GridSimResult resume(Time horizon = kTimeInfinity);

  /// Serialize the complete engine state — simulator clock/id cursor,
  /// job store, routing tables, per-cluster engines, central server,
  /// every pending event's semantic payload — into a versioned snapshot
  /// (core/checkpoint framing: magic, version, FNV-1a checksum).  The
  /// engine must be at a quiescent point (between events): after
  /// run_to(), or between streaming advance_to() calls.  Throws
  /// CheckpointError if any pending event cannot be accounted for.
  std::vector<unsigned char> checkpoint() const;

  /// Restore a snapshot into this FRESHLY constructed engine.  The grid
  /// and options must match the snapshotting engine exactly (a config
  /// digest is embedded and verified).  After restore the replay
  /// continues bit-identically to the uninterrupted run: resume() for
  /// batch snapshots, ingest()/advance_to()/finish_streaming() for
  /// streaming ones.
  void restore(const std::vector<unsigned char>& blob);

  // ---- streaming service mode (sim/stream_sim.h drives this) -----------

  /// Enter streaming mode: jobs arrive via ingest() instead of a
  /// pre-registered trace.  Schedules volatility churn; global-plan
  /// routing needs the whole trace up front and is rejected.
  void begin_streaming();

  /// Ingest one job row (tables resolved against `tables`) with home
  /// cluster `home`.  The job is copied into the engine's own store and
  /// its routing decision fires at max(now, release) — ingest in
  /// release order to reproduce the batch replay exactly.
  void ingest(const HotJob& h, const TablePool& tables, std::size_t home);

  /// Advance the stream clock to exactly `t`: every event strictly
  /// ordered before (t, arrival-priority) executes; route events AT `t`
  /// stay pending, so jobs ingested later with release == t still route
  /// ahead of same-instant completions — the batch pump's tie-break
  /// order.  Quiescent afterwards: checkpoint() is legal.
  void advance_to(Time t);

  /// End of stream: drain the queue (or stop at `horizon`) and
  /// aggregate, exactly like the tail of run().
  GridSimResult finish_streaming(Time horizon = kTimeInfinity);

  bool streaming() const { return streaming_; }
  /// Jobs ingested so far (streaming mode).
  std::size_t ingested() const { return pending_.size(); }

  std::size_t cluster_count() const { return clusters_.size(); }
  const OnlineCluster& cluster(std::size_t i) const { return *clusters_[i]; }
  /// The clusters in index order (the currency of the shared helpers
  /// above and of grid/exchange bidding).
  const std::vector<std::unique_ptr<OnlineCluster>>& clusters() const {
    return clusters_;
  }
  const LightGrid& grid() const { return grid_; }
  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }

  /// Replay-arena introspection (exported into BENCH_scale.json).
  const ArenaStats& arena_stats() const { return arena_.stats(); }

 private:
  using Pending = GridPending;

  /// The active trace: borrowed when submit_store was used, else the
  /// engine-owned store fed by submit().
  const JobStore& jobs() const {
    return borrowed_ != nullptr ? *borrowed_ : store_;
  }

  /// Clusters too small for a `min_procs`-wide job fall back to the
  /// first cluster wide enough (throws when none is).
  std::size_t fallback_target(std::size_t target, int min_procs) const;
  void schedule_volatility();
  void route(std::size_t pending_index);
  /// The run() prelude (plan, release sort, arrival pump, volatility) —
  /// shared by run() and run_to().
  void prepare_run();
  /// Digest of everything that must match between the snapshotting and
  /// the restoring engine: grid shape and options.
  std::uint64_t config_digest() const;
  /// Arrival pump: ONE pending simulator event walks the submissions in
  /// release order, instead of one pre-scheduled event per job (which
  /// made the event queue — and its memory — scale with the whole trace
  /// before the first event fired).  Fires at kArrivalPriority so
  /// same-instant ordering against completions/volatility/best-effort
  /// events matches the per-job scheduling it replaced.
  void pump_arrivals();
  void schedule_next_arrival();

  LightGrid grid_;
  GridSimOptions opts_;
  Arena owned_arena_;  ///< unused (empty) when an external arena is given
  Arena& arena_;       ///< the replay arena; every member below draws on it
  Simulator sim_;
  std::vector<std::unique_ptr<OnlineCluster>> clusters_;
  std::unique_ptr<CentralServer> server_;
  JobStore store_;  ///< submissions via submit(); empty when borrowing
  const JobStore* borrowed_ = nullptr;
  ArenaVec<Pending> pending_;
  ArenaVec<std::uint32_t> plan_;  ///< kGlobalPlan: pending index -> target
  ArenaVec<std::uint32_t> route_order_;  ///< pending indices by release
  std::size_t route_cursor_ = 0;
  long migrations_ = 0;
  bool ran_ = false;
  bool streaming_ = false;
  /// Arrival-pump bookkeeping for checkpoints: the (time, id) of the one
  /// pump event schedule_next_arrival keeps in flight (stale once fired
  /// without re-scheduling — a checkpoint filters on the live pending
  /// set, ids are never reused).
  EventId pump_event_ = 0;
  Time pump_time_ = 0.0;
  /// Every scheduled volatility event; checkpoint keeps the still-
  /// pending subset.
  std::vector<GridCapacityEvent> capacity_events_;
  /// Streaming per-job route events: {t, id, pending index}; checkpoint
  /// keeps the still-pending subset.
  struct RouteEvent {
    Time t = 0.0;
    EventId id = 0;
    std::uint64_t pending_index = 0;
  };
  std::vector<RouteEvent> route_events_;
};

/// Split a workload across `n` home clusters by community
/// (community % n) — how an SWF trace (workload/swf) is replayed on a
/// grid: each user community keeps submitting to "its" cluster.  Takes
/// the set by value and MOVES each job into its bucket: pass an rvalue
/// (std::move) and no job is deep-copied at all.  Grid replays over a
/// JobStore should use GridSim::submit_store instead, which needs no
/// split at all.
std::vector<JobSet> split_by_community(JobSet jobs, std::size_t n);

/// Heterogeneous grid for the sweep axes: `n` clusters, cluster i with
/// round(base_procs * skew^(-i/(n-1))) unit processors and speed
/// skew^(i/(2(n-1))) — a geometric ladder from the big slow cluster 0 to
/// the small fast cluster n-1.  skew = 1 is homogeneous; interconnects
/// cycle through the Fig. 3 kinds and owner communities through the §5.2
/// four.
LightGrid make_skewed_grid(int n, int base_procs, double skew);

/// Internal-consistency check of a finished (fully drained) simulation:
/// nothing left queued or running, per-record time sanity, utilization
/// and best-effort accounting invariants, every grid run completed.
/// Returns human-readable violations (empty = clean).
std::vector<std::string> validate_grid_result(const GridSim& sim,
                                              const GridSimResult& result);

}  // namespace lgs
